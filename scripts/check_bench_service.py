#!/usr/bin/env python3
"""Record / check the HTTP-service throughput records of bench_service.

The bench prints two tracing phases, a threaded-mode reference phase, one
line per client count (against the epoll reactor), an idle-session spill
phase, and a summary:

    BENCH_SERVICE tracing_off {"clients": 1, "requests": ..., "errors": 0,
                               "rps": ..., "p50Ms": ..., "p95Ms": ...,
                               "hardwareConcurrency": ..., ...}
    BENCH_SERVICE tracing_on  {...}
    BENCH_SERVICE threaded_c1 {...}            (thread-per-connection mode)
    BENCH_SERVICE steps_c1 {...}               (epoll reactor)
    BENCH_SERVICE steps_c4 {...}
    BENCH_SERVICE steps_c8 {...}
    BENCH_SERVICE steps_c16 {...}
    BENCH_SERVICE steps_c64 {...}
    BENCH_SERVICE idle_spill {"sessions": 10000, "spilled": ...,
                              "rssPerIdleSessionBytes": ...,
                              "restoreTouches": ..., "errors": 0, ...}
    BENCH_SERVICE summary  {"totalRequests": ..., "errors": 0,
                            "serverRequests": ..., "scale4": ...,
                            "scale8": ..., "scale64": ..., ...}

Modes:
  --record OUT    parse bench output from stdin (or --input FILE) and write
                  the records as a JSON baseline file (BENCH_SERVICE.json).
  --check BASE    parse bench output, validate it, and enforce the gates.

Hard gates (any machine, any core count):
  * every BENCH_SERVICE line parses as JSON with the expected fields;
  * errors is 0 everywhere — the server never dropped or mangled a request;
  * latency percentiles are sane (0 < p50 <= p95);
  * serverRequests >= totalRequests — the server-side request counter saw
    every client-side request (drift means lost accounting);
  * tracing overhead: the tracing-on single-client p50 stays within
    --max-tracing-overhead (default 10%) of the tracing-off p50, plus a
    0.05 ms absolute slack so micro-jitter on sub-millisecond requests
    does not flip the gate. Both phases come from the same run on the
    same machine, so this gate applies everywhere.
  * net parity: the epoll reactor's single-client p50 (steps_c1) stays
    within --max-net-overhead (default 10%) of the thread-per-connection
    p50 (threaded_c1), plus the same 0.05 ms absolute slack — the reactor
    handoff must not tax an unloaded client. Fires on full >= 200-request
    runs (a 60-sample --quick p50 is scheduling noise); --record always
    runs full, so the committed baseline is always gated.
  * idle spill: every created idle session was spilled to disk with zero
    errors and every restore touch succeeded — everywhere, including
    --quick. Where the bench could measure RSS (Linux /proc/self/statm),
    full-fleet (10k-session) runs additionally gate the resident cost per
    spilled idle session under --max-idle-rss bytes (default 4096); the
    --quick 1.5k fleet skips only the ceiling, since fixed process
    overhead dominates the per-session figure at that scale.

Core-count-gated (a 1-core container serializes everything, so throughput
scaling only gates where the hardware can show it):
  * hardwareConcurrency >= 8: scale8 (rps at 8 clients / rps at 1 client)
    must reach --min-scale8 (default 2.0);
  * with --check, rps at 1 client must additionally stay above
    (1 - --max-regression) of the baseline's, whenever both runs had the
    same core count and at least 2 cores (on a 1-core container the client
    threads and server workers oversubscribe the same core, so absolute
    rps is scheduling noise — the correctness gates still run there).
"""

import argparse
import json
import sys

RUN_FIELDS = ("clients", "requests", "errors", "rps", "p50Ms", "p95Ms",
              "hardwareConcurrency")
SUMMARY_FIELDS = ("totalRequests", "errors", "serverRequests", "scale4",
                  "scale8", "scale64", "hardwareConcurrency")
RUN_LABELS = ("tracing_off", "tracing_on", "threaded_c1", "steps_c1",
              "steps_c4", "steps_c8", "steps_c16", "steps_c64")
SPILL_FIELDS = ("sessions", "spilled", "rssPerIdleSessionBytes",
                "restoreTouches", "errors")

TRACING_SLACK_MS = 0.05


def parse_records(stream):
    """Returns ({label: record}, parse error count)."""
    records = {}
    errors = 0
    for line in stream:
        line = line.strip()
        if not line.startswith("BENCH_SERVICE "):
            continue
        try:
            _, label, payload = line.split(" ", 2)
            record = json.loads(payload)
        except (ValueError, json.JSONDecodeError) as exc:
            print(f"PARSE ERROR in BENCH_SERVICE line: {exc}\n  {line}",
                  file=sys.stderr)
            errors += 1
            continue
        records[label] = record
    return records, errors


def validate(records):
    """Field presence + machine-independent correctness gates."""
    failures = 0
    for label in RUN_LABELS:
        record = records.get(label)
        if record is None:
            print(f"FAIL: missing BENCH_SERVICE record '{label}'",
                  file=sys.stderr)
            failures += 1
            continue
        missing = [f for f in RUN_FIELDS if f not in record]
        if missing:
            print(f"FAIL: {label}: missing field(s) {missing}",
                  file=sys.stderr)
            failures += 1
            continue
        if record["errors"] != 0:
            print(f"FAIL: {label}: {record['errors']} failed request(s)",
                  file=sys.stderr)
            failures += 1
        if not (0 < record["p50Ms"] <= record["p95Ms"]):
            print(f"FAIL: {label}: latency percentiles not sane "
                  f"(p50 {record['p50Ms']}, p95 {record['p95Ms']})",
                  file=sys.stderr)
            failures += 1

    spill = records.get("idle_spill")
    if spill is None:
        print("FAIL: missing BENCH_SERVICE record 'idle_spill'",
              file=sys.stderr)
        failures += 1
    else:
        missing = [f for f in SPILL_FIELDS if f not in spill]
        if missing:
            print(f"FAIL: idle_spill: missing field(s) {missing}",
                  file=sys.stderr)
            failures += 1
        else:
            if spill["errors"] != 0:
                print(f"FAIL: idle_spill: {spill['errors']} error(s) "
                      "(failed create, touch, or restore)", file=sys.stderr)
                failures += 1
            if spill["spilled"] <= 0:
                print("FAIL: idle_spill: no sessions were spilled to disk",
                      file=sys.stderr)
                failures += 1
            if spill["restoreTouches"] <= 0:
                print("FAIL: idle_spill: no spilled session was ever "
                      "restored", file=sys.stderr)
                failures += 1

    summary = records.get("summary")
    if summary is None:
        print("FAIL: missing BENCH_SERVICE record 'summary'",
              file=sys.stderr)
        return failures + 1
    missing = [f for f in SUMMARY_FIELDS if f not in summary]
    if missing:
        print(f"FAIL: summary: missing field(s) {missing}", file=sys.stderr)
        return failures + 1
    if summary["errors"] != 0:
        print(f"FAIL: summary: {summary['errors']} failed request(s)",
              file=sys.stderr)
        failures += 1
    if summary["serverRequests"] < summary["totalRequests"]:
        print(f"FAIL: server accounted {summary['serverRequests']} requests "
              f"but clients issued {summary['totalRequests']}",
              file=sys.stderr)
        failures += 1
    return failures


def check_tracing_overhead(records, max_overhead):
    """Tracing-on p50 vs tracing-off p50, same run, same machine."""
    off = records.get("tracing_off", {})
    on = records.get("tracing_on", {})
    p50_off = off.get("p50Ms", 0.0)
    p50_on = on.get("p50Ms", 0.0)
    ceiling = p50_off * (1.0 + max_overhead) + TRACING_SLACK_MS
    status = "ok" if p50_on <= ceiling else "FAIL"
    print(f"  tracing: p50 on {p50_on:.4f} ms vs off {p50_off:.4f} ms "
          f"(ceiling {ceiling:.4f}) {status}")
    return 0 if p50_on <= ceiling else 1


def check_net_parity(records, max_overhead):
    """Epoll reactor p50 vs thread-per-connection p50, single client.

    A p50 over the --quick run's 60 requests is scheduling noise on an
    oversubscribed container, so the gate only fires on full runs (the
    configuration the committed baseline was recorded with); --record
    always takes the full path, so the baseline cannot dodge it.
    """
    threaded = records.get("threaded_c1", {})
    epoll = records.get("steps_c1", {})
    requests = min(threaded.get("requests", 0), epoll.get("requests", 0))
    if requests < 200:
        print(f"  net parity: {requests} request(s) — gate skipped "
              "(needs a full >= 200-request run)")
        return 0
    p50_threaded = threaded.get("p50Ms", 0.0)
    p50_epoll = epoll.get("p50Ms", 0.0)
    ceiling = p50_threaded * (1.0 + max_overhead) + TRACING_SLACK_MS
    status = "ok" if p50_epoll <= ceiling else "FAIL"
    print(f"  net parity: epoll p50 {p50_epoll:.4f} ms vs threaded "
          f"{p50_threaded:.4f} ms (ceiling {ceiling:.4f}) {status}")
    return 0 if p50_epoll <= ceiling else 1


def check_idle_rss(records, max_idle_rss):
    """Resident bytes per spilled idle session, where measurable.

    Fixed process overhead (allocator arenas retained from the create
    burst) only amortizes over the full 10k fleet — the --quick 1.5k
    fleet reads several KiB/session of pure fixed cost — so the ceiling
    gates full-fleet runs, which includes every --record.
    """
    spill = records.get("idle_spill", {})
    per_session = spill.get("rssPerIdleSessionBytes", 0.0)
    sessions = spill.get("sessions", 0)
    if per_session <= 0:
        print("  idle rss: not measurable on this platform — gate skipped")
        return 0
    if sessions < 10000:
        print(f"  idle rss: {per_session:.1f} bytes/spilled session at "
              f"{sessions} sessions — ceiling skipped (fixed overhead "
              "only amortizes over the full 10k fleet)")
        return 0
    status = "ok" if per_session <= max_idle_rss else "FAIL"
    print(f"  idle rss: {per_session:.1f} bytes/spilled session "
          f"(ceiling {max_idle_rss:.0f}) {status}")
    return 0 if per_session <= max_idle_rss else 1


def check_scaling(records, min_scale8):
    """Core-count-gated throughput gates against this machine."""
    failures = 0
    summary = records.get("summary", {})
    cores = summary.get("hardwareConcurrency", 0)
    if cores >= 8:
        scale8 = summary.get("scale8", 0.0)
        status = "ok" if scale8 >= min_scale8 else "FAIL"
        print(f"  steps: scale8 {scale8:.2f}x on {cores} cores "
              f"(floor {min_scale8:.2f}x) {status}")
        if scale8 < min_scale8:
            failures += 1
    else:
        print(f"  steps: {cores} core(s) — scale8 gate skipped "
              "(needs >= 8 cores)")
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--record", metavar="OUT",
                      help="write parsed BENCH_SERVICE records to OUT")
    mode.add_argument("--check", metavar="BASELINE",
                      help="validate records and compare against a baseline")
    parser.add_argument("--input", default="-",
                        help="bench output file (default: stdin)")
    parser.add_argument("--min-scale8", type=float, default=2.0,
                        help="throughput scaling floor at 8 clients on >= 8 "
                             "cores (default 2.0)")
    parser.add_argument("--max-regression", type=float, default=0.5,
                        help="allowed relative single-client rps loss vs the "
                             "baseline when core counts match (default 0.5)")
    parser.add_argument("--max-tracing-overhead", type=float, default=0.10,
                        help="allowed relative p50 latency cost of request "
                             "tracing (default 0.10 = 10%%)")
    parser.add_argument("--max-net-overhead", type=float, default=0.10,
                        help="allowed relative single-client p50 cost of the "
                             "epoll reactor vs thread-per-connection "
                             "(default 0.10 = 10%%)")
    parser.add_argument("--max-idle-rss", type=float, default=4096.0,
                        help="resident-byte ceiling per spilled idle session "
                             "(default 4096)")
    args = parser.parse_args()

    stream = sys.stdin if args.input == "-" else open(args.input)
    with stream:
        records, errors = parse_records(stream)
    if errors:
        print(f"FAIL: {errors} malformed BENCH_SERVICE record(s)",
              file=sys.stderr)
        return 1
    if not records:
        print("FAIL: no BENCH_SERVICE records found in input",
              file=sys.stderr)
        return 1

    failures = validate(records)
    failures += check_tracing_overhead(records, args.max_tracing_overhead)
    failures += check_net_parity(records, args.max_net_overhead)
    failures += check_idle_rss(records, args.max_idle_rss)
    if failures:
        print(f"FAIL: {failures} validation failure(s)", file=sys.stderr)
        return 1

    if args.record:
        with open(args.record, "w") as out:
            json.dump({"records": records}, out, indent=2, sort_keys=True)
            out.write("\n")
        print(f"wrote {len(records)} BENCH_SERVICE record(s) to "
              f"{args.record}")
        return 0

    failures = check_scaling(records, args.min_scale8)

    with open(args.check) as f:
        baseline = json.load(f)["records"]
    base = baseline.get("steps_c1", {})
    cur = records.get("steps_c1", {})
    base_cores = base.get("hardwareConcurrency", 0)
    if base_cores >= 2 and base_cores == cur.get("hardwareConcurrency", -1):
        current = cur.get("rps", 0.0)
        expected = base.get("rps", 0.0)
        floor = expected * (1.0 - args.max_regression)
        status = "ok" if current >= floor else "REGRESSION"
        print(f"  steps_c1: {current:.1f} rps vs baseline {expected:.1f} rps "
              f"(floor {floor:.1f}) {status}")
        if current < floor:
            failures += 1
    else:
        print("  baseline rps comparison skipped (needs matching core "
              "counts on >= 2 cores)")

    if failures:
        print(f"FAIL: {failures} service gate(s) failed", file=sys.stderr)
        return 1
    print("OK: all applicable service gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
