#!/usr/bin/env python3
"""Record / check the cache-layout microbenchmarks emitted by bench_layout.

The bench prints one line per probe:

    BENCH_LAYOUT <label> {"nsPerOp": ..., "vNodeBytes": ..., ...}

Record mode freezes a comparison between the seed build (pre layout work)
and the current build, both measured on the same machine. Pass each bench
output file once per run; with several runs per side the per-metric minimum
is taken, which suppresses frequency-state noise:

    check_bench_layout.py --record BENCH_LAYOUT.json \
        --seed seed_run1.txt --seed seed_run2.txt \
        --input post_run1.txt --input post_run2.txt

Check mode replays a fresh bench output against the committed baseline.
Two gate classes:

  * Machine-independent gates (always enforced — they hold on any host):
      - node geometry is exact: vNode 64 B / 64 B aligned, mNode 128 B /
        64 B aligned;
      - simd_cross_validation reports rootsMatch == true (SIMD and scalar
        kernels canonicalize to pointer-identical roots);
      - deterministic work counters from the QFT-14 probe match the
        baseline: multiply2Calls and uniqueLookups exactly, realLookups at
        most the recorded value (the canonical fast paths must keep eliding
        RealTable walks), maxProbeLength at most OPEN_ADDRESS_PROBE_CEILING;
      - the recorded speedup arithmetic is internally consistent and the
        recorded geomean clears MIN_GEOMEAN_SPEEDUP.
  * Timing gates (only with --strict, for runs on the recording host):
      - each timing metric stays within --max-regression of the recorded
        current-build time.
"""

import argparse
import json
import math
import sys


TIMING_METRICS = [
    ("multiply_cached_ghz32", "nsPerOp"),
    ("add_cached_32", "nsPerOp"),
    ("multiply_qft_14", "nsPerMultiply2"),
    ("add_uncached_12", "nsPerNodePair"),
]

# The layout work packs vNode into one cache line and mNode into two; any
# other size means the packing regressed.
NODE_GEOMETRY = {
    "vNodeBytes": 64,
    "vNodeAlign": 64,
    "mNodeBytes": 128,
    "mNodeAlign": 64,
}

# The open-addressed unique table resizes at 50% load; probe chains beyond
# this bound mean the hash or the resize policy regressed.
OPEN_ADDRESS_PROBE_CEILING = 16

# Tentpole target: geometric mean over the four timing metrics, seed build
# vs current build on the same container.
MIN_GEOMEAN_SPEEDUP = 1.3


def parse_records(path):
    records = {}
    errors = 0
    with open(path) as stream:
        for line in stream:
            line = line.strip()
            if not line.startswith("BENCH_LAYOUT "):
                continue
            try:
                _, label, payload = line.split(" ", 2)
                records[label] = json.loads(payload)
            except (ValueError, json.JSONDecodeError) as exc:
                print(f"PARSE ERROR in BENCH_LAYOUT line: {exc}\n  {line}",
                      file=sys.stderr)
                errors += 1
    return records, errors


def best_of(paths):
    """Merges several runs: timing metrics take the minimum, probe lengths
    the maximum (node addresses vary with ASLR, so the pointer-hash probe
    chains do too), everything else must agree (deterministic)."""
    merged = {}
    errors = 0
    timing_keys = {(label, key) for label, key in TIMING_METRICS}
    timing_keys.add(("add_uncached_12", "nsPerOp"))
    timing_keys.add(("multiply_qft_14", "ms"))
    timing_keys.add(("multiply_qft_14", "nsPerGate"))
    probe_keys = {"avgProbeLength", "maxProbeLength"}
    for path in paths:
        records, errs = parse_records(path)
        errors += errs
        for label, record in records.items():
            record = {k: v for k, v in record.items() if k != "resources"}
            if label not in merged:
                merged[label] = dict(record)
                continue
            for key, value in record.items():
                if (label, key) in timing_keys:
                    merged[label][key] = min(merged[label][key], value)
                elif key in probe_keys:
                    merged[label][key] = max(merged[label][key], value)
                elif merged[label].get(key) != value:
                    print(f"NONDETERMINISM: {label}.{key} = "
                          f"{merged[label].get(key)} vs {value} across runs",
                          file=sys.stderr)
                    errors += 1
    return merged, errors


def geomean(values):
    return math.exp(sum(math.log(v) for v in values) / len(values))


def record_baseline(args):
    seed, errs_a = best_of(args.seed)
    current, errs_b = best_of(args.input)
    if errs_a or errs_b:
        return 1
    speedups = {}
    for label, key in TIMING_METRICS:
        seed_ns = seed[label][key]
        cur_ns = current[label][key]
        speedups[label] = {
            "metric": key,
            "seedNs": seed_ns,
            "currentNs": cur_ns,
            "speedup": round(seed_ns / cur_ns, 4),
        }
    gm = round(geomean([s["speedup"] for s in speedups.values()]), 4)
    baseline = {
        "note": ("seed build vs current build, interleaved best-of runs on "
                 "one container; regenerate with --record on timing-relevant "
                 "changes"),
        "seed": seed,
        "current": current,
        "speedups": speedups,
        "geomeanSpeedup": gm,
    }
    with open(args.record, "w") as out:
        json.dump(baseline, out, indent=2, sort_keys=True)
        out.write("\n")
    print(f"wrote {args.record}: geomean speedup {gm:.3f}x over "
          f"{len(speedups)} metrics")
    return 0


def check_baseline(args):
    with open(args.check) as f:
        baseline = json.load(f)
    current, errors = best_of(args.input)
    failures = 0

    def fail(msg):
        nonlocal failures
        print(f"  REGRESSION: {msg}")
        failures += 1

    def ok(msg):
        print(f"  ok: {msg}")

    # --- machine-independent gates --------------------------------------
    layout = current.get("node_layout")
    if layout is None:
        fail("no node_layout record in bench output")
    else:
        for key, want in NODE_GEOMETRY.items():
            if layout.get(key) != want:
                fail(f"node_layout.{key} = {layout.get(key)}, want {want}")
            else:
                ok(f"node_layout.{key} = {want}")

    xval = current.get("simd_cross_validation")
    if xval is None:
        fail("no simd_cross_validation record in bench output")
    elif xval.get("rootsMatch") is not True:
        fail(f"simd_cross_validation.rootsMatch = {xval.get('rootsMatch')} "
             f"(mode {xval.get('mode')})")
    else:
        ok(f"simd/scalar roots match (mode {xval.get('mode')})")

    qft = current.get("multiply_qft_14")
    qft_base = baseline["current"].get("multiply_qft_14", {})
    if qft is None:
        fail("no multiply_qft_14 record in bench output")
    else:
        for key in ("multiply2Calls", "uniqueLookups"):
            if qft.get(key) != qft_base.get(key):
                fail(f"multiply_qft_14.{key} = {qft.get(key)}, baseline "
                     f"{qft_base.get(key)} (deterministic counter)")
            else:
                ok(f"multiply_qft_14.{key} = {qft.get(key)}")
        if qft.get("realLookups", 0) > qft_base.get("realLookups", 0):
            fail(f"multiply_qft_14.realLookups = {qft.get('realLookups')}, "
                 f"baseline {qft_base.get('realLookups')} — canonical fast "
                 f"paths stopped eliding RealTable walks")
        else:
            ok(f"multiply_qft_14.realLookups = {qft.get('realLookups')} <= "
               f"{qft_base.get('realLookups')}")
        if qft.get("maxProbeLength", 0) > OPEN_ADDRESS_PROBE_CEILING:
            fail(f"multiply_qft_14.maxProbeLength = "
                 f"{qft.get('maxProbeLength')} > ceiling "
                 f"{OPEN_ADDRESS_PROBE_CEILING}")
        else:
            ok(f"multiply_qft_14.maxProbeLength = "
               f"{qft.get('maxProbeLength')} <= "
               f"{OPEN_ADDRESS_PROBE_CEILING}")

    # Recorded-arithmetic validation: the committed speedups must be
    # self-consistent and clear the tentpole floor.
    recorded = []
    for label, key in TIMING_METRICS:
        entry = baseline["speedups"].get(label)
        if entry is None:
            fail(f"baseline has no speedup entry for {label}")
            continue
        derived = entry["seedNs"] / entry["currentNs"]
        if abs(derived - entry["speedup"]) > 1e-3:
            fail(f"{label}: recorded speedup {entry['speedup']} != "
                 f"seedNs/currentNs = {derived:.4f}")
        recorded.append(entry["speedup"])
    if recorded:
        gm = geomean(recorded)
        if abs(gm - baseline.get("geomeanSpeedup", 0.0)) > 1e-3:
            fail(f"recorded geomeanSpeedup {baseline.get('geomeanSpeedup')} "
                 f"!= derived {gm:.4f}")
        elif gm < MIN_GEOMEAN_SPEEDUP:
            fail(f"recorded geomean speedup {gm:.3f}x below the "
                 f"{MIN_GEOMEAN_SPEEDUP}x tentpole floor")
        else:
            ok(f"recorded geomean speedup {gm:.3f}x >= "
               f"{MIN_GEOMEAN_SPEEDUP}x")

    # --- timing gates (recording host only) -----------------------------
    if args.strict:
        for label, key in TIMING_METRICS:
            cur = current.get(label, {}).get(key)
            base = baseline["current"].get(label, {}).get(key)
            if cur is None or base is None:
                fail(f"{label}.{key} missing from bench output or baseline")
                continue
            ceiling = base * (1.0 + args.max_regression)
            if cur > ceiling:
                fail(f"{label}.{key} = {cur:.2f} ns vs recorded "
                     f"{base:.2f} ns (ceiling {ceiling:.2f})")
            else:
                ok(f"{label}.{key} = {cur:.2f} ns <= {ceiling:.2f} ns")
    else:
        print("  (timing gates skipped; pass --strict on the recording "
              "host)")

    if errors or failures:
        print(f"FAIL: {errors} parse error(s), {failures} gate failure(s)",
              file=sys.stderr)
        return 1
    print("OK: all layout gates passed")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--record", metavar="OUT",
                      help="write a seed-vs-current baseline JSON")
    mode.add_argument("--check", metavar="BASELINE",
                      help="validate bench output against the baseline")
    parser.add_argument("--input", action="append", default=[],
                        help="current-build bench output (repeatable)")
    parser.add_argument("--seed", action="append", default=[],
                        help="seed-build bench output (record mode, "
                             "repeatable)")
    parser.add_argument("--strict", action="store_true",
                        help="also enforce wall-clock gates (same host as "
                             "the recording)")
    parser.add_argument("--max-regression", type=float, default=0.5,
                        help="allowed relative slowdown vs the recorded "
                             "times in --strict mode (default 0.5)")
    args = parser.parse_args()
    if not args.input:
        parser.error("at least one --input file is required")
    if args.record and not args.seed:
        parser.error("--record requires at least one --seed file")
    return record_baseline(args) if args.record else check_baseline(args)


if __name__ == "__main__":
    sys.exit(main())
