#!/usr/bin/env python3
"""Drive a live `qdd-tool serve` instance through the documented API and
validate every response (see docs/SERVICE.md).

Pure stdlib (urllib); exercised by the CI service-smoke job against a
server started in the background:

  * /healthz reports ok;
  * a session created from a .qasm file steps forward gate by gate, each
    response carrying a well-formed DD document (nodes/edges/root) and a
    monotonically advancing position;
  * stepping back rewinds the position;
  * the DD exports in dot and svg;
  * /v1/verify decides GHZ-4 == decomposed GHZ-4 (portfolio checker);
  * a run with deadlineMs=0 answers a structured 408 without killing the
    session;
  * requests echo a `traceparent` response header that keeps the caller's
    trace id but allocates a fresh span id (W3C trace context);
  * the 408 is captured by the flight recorder: /v1/incidents lists it
    with the request's trace id, and /v1/incidents/{id} serves a Chrome
    trace whose spans all carry that trace id (optionally written to
    --incident-out for qdd-trace-check --incident);
  * /metrics accounts for every request this script made (request totals,
    the 408, the deadline timeout, created sessions, the incident).

Exits non-zero with a FAIL line on the first violated expectation.
"""

import argparse
import json
import sys
import urllib.error
import urllib.request


class Client:
    def __init__(self, base):
        self.base = base
        self.last_headers = {}

    def request(self, method, path, body=None, headers=None):
        """Returns (status, parsed-or-raw body); response headers land in
        self.last_headers."""
        data = None
        if body is not None:
            data = json.dumps(body).encode()
        req = urllib.request.Request(self.base + path, data=data,
                                     method=method)
        if data is not None:
            req.add_header("Content-Type", "application/json")
        for name, value in (headers or {}).items():
            req.add_header(name, value)
        try:
            with urllib.request.urlopen(req, timeout=30) as resp:
                raw = resp.read().decode()
                status = resp.status
                self.last_headers = dict(resp.headers)
        except urllib.error.HTTPError as err:
            raw = err.read().decode()
            status = err.code
            self.last_headers = dict(err.headers or {})
        try:
            return status, json.loads(raw)
        except json.JSONDecodeError:
            return status, raw


def expect(cond, message):
    if not cond:
        print(f"FAIL: {message}", file=sys.stderr)
        sys.exit(1)


def expect_dd(doc, context):
    dd = doc.get("dd")
    expect(isinstance(dd, dict), f"{context}: response has no dd document")
    expect(dd.get("kind") == "vector", f"{context}: dd.kind != vector")
    expect(isinstance(dd.get("nodes"), list) and dd["nodes"],
           f"{context}: dd.nodes missing or empty")
    expect(isinstance(dd.get("edges"), list),
           f"{context}: dd.edges missing")
    for edge in dd["edges"]:
        expect("from" in edge and "port" in edge,
               f"{context}: edge missing from/port")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--qasm", default="examples/circuits/bell.qasm",
                        help="circuit the stepping walkthrough loads")
    parser.add_argument("--incident-out", default="",
                        help="write the fetched incident trace JSON here "
                             "(for qdd-trace-check --incident)")
    args = parser.parse_args()
    client = Client(f"http://{args.host}:{args.port}")
    made = 0  # requests this script issued (cross-checked against /metrics)

    status, doc = client.request("GET", "/healthz")
    made += 1
    expect(status == 200, f"/healthz -> {status}")
    expect(doc.get("status") == "ok", f"/healthz status {doc.get('status')}")

    # --- session from a .qasm file, stepped gate by gate -------------------
    with open(args.qasm) as f:
        source = f.read()
    status, doc = client.request("POST", "/v1/sessions", {"qasm": source})
    made += 1
    expect(status == 201, f"create session -> {status}: {doc}")
    sid = doc.get("id")
    operations = doc.get("operations", 0)
    expect(sid, "create session: no id")
    expect(operations >= 1, f"create session: operations {operations}")
    expect_dd(doc, "create session")

    for k in range(1, operations + 1):
        status, doc = client.request("POST", f"/v1/sessions/{sid}/step", {})
        made += 1
        expect(status == 200, f"step {k} -> {status}: {doc}")
        expect(doc.get("position") == k,
               f"step {k}: position {doc.get('position')}")
        expect_dd(doc, f"step {k}")
    expect(doc.get("atEnd") is True, "not atEnd after stepping every gate")

    status, doc = client.request("POST", f"/v1/sessions/{sid}/back", {})
    made += 1
    expect(status == 200, f"back -> {status}")
    expect(doc.get("position") == operations - 1,
           f"back: position {doc.get('position')}")

    status, dot = client.request("GET", f"/v1/sessions/{sid}/dd?fmt=dot")
    made += 1
    expect(status == 200 and "digraph" in dot, "dot export failed")
    status, svg = client.request("GET", f"/v1/sessions/{sid}/dd?fmt=svg")
    made += 1
    expect(status == 200 and "<svg" in svg, "svg export failed")

    # --- one-shot portfolio verification -----------------------------------
    status, doc = client.request("POST", "/v1/verify", {
        "left": {"builder": {"name": "ghz", "qubits": 4}},
        "right": {"builder": {"name": "ghz", "qubits": 4},
                  "decompose": True},
    })
    made += 1
    expect(status == 200, f"/v1/verify -> {status}: {doc}")
    expect(doc.get("equivalence") == "equivalent",
           f"/v1/verify equivalence {doc.get('equivalence')}")
    expect(doc.get("entries"), "/v1/verify: no portfolio entries")

    # --- structured deadline timeout, traced end to end --------------------
    status, doc = client.request("POST", "/v1/sessions", {
        "builder": {"name": "qft", "qubits": 10, "repeat": 50},
    })
    made += 1
    expect(status == 201, f"create deadline session -> {status}")
    did = doc["id"]
    caller_trace = "ab" * 16
    caller_span = "cd" * 8
    status, doc = client.request(
        "POST", f"/v1/sessions/{did}/run", {"deadlineMs": 0},
        headers={"traceparent": f"00-{caller_trace}-{caller_span}-01"})
    made += 1
    expect(status == 408, f"deadline run -> {status} (want 408)")
    expect(doc.get("error", {}).get("code") == "deadline_exceeded",
           f"deadline run error {doc.get('error')}")
    echoed = client.last_headers.get("traceparent", "")
    parts = echoed.split("-")
    expect(len(parts) == 4 and parts[1] == caller_trace,
           f"traceparent does not keep the caller's trace id: {echoed!r}")
    expect(parts[2] != caller_span and len(parts[2]) == 16,
           f"traceparent did not allocate a fresh span id: {echoed!r}")
    # the session survives the timeout
    status, doc = client.request("GET", f"/v1/sessions/{did}")
    made += 1
    expect(status == 200, f"session after 408 -> {status}")

    # --- the 408 landed in the flight recorder -----------------------------
    status, doc = client.request("GET", "/v1/incidents")
    made += 1
    expect(status == 200, f"/v1/incidents -> {status}")
    expect(doc.get("captured", 0) >= 1, "/v1/incidents captured nothing")
    matching = [i for i in doc.get("incidents", [])
                if i.get("traceId") == caller_trace]
    expect(matching,
           f"/v1/incidents has no incident with trace id {caller_trace}")
    incident = matching[0]
    expect(incident.get("reason") == "deadline",
           f"incident reason {incident.get('reason')} (want deadline)")
    expect(incident.get("status") == 408,
           f"incident status {incident.get('status')} (want 408)")
    expect(incident.get("spans", 0) >= 1, "incident recorded no spans")
    status, trace = client.request("GET",
                                   f"/v1/incidents/{incident['id']}")
    made += 1
    expect(status == 200, f"/v1/incidents/{incident['id']} -> {status}")
    expect(trace.get("traceId") == caller_trace,
           f"incident trace id {trace.get('traceId')}")
    spans = [e for e in trace.get("traceEvents", [])
             if e.get("ph") == "X"]
    expect(spans, "incident trace has no spans")
    for event in spans:
        expect(event.get("args", {}).get("trace_id") == caller_trace,
               "incident span carries a foreign trace id")
    if args.incident_out:
        with open(args.incident_out, "w") as f:
            json.dump(trace, f)

    # --- metrics account for everything this script did --------------------
    status, doc = client.request("GET", "/metrics")
    made += 1
    expect(status == 200, f"/metrics -> {status}")
    svc = doc.get("service", {})
    # the /metrics request itself is recorded after its handler runs
    expect(svc.get("requests", 0) >= made - 1,
           f"/metrics requests {svc.get('requests')} < {made - 1} issued")
    by_status = svc.get("byStatus", {})
    expect(by_status.get("408", 0) >= 1, "/metrics byStatus missing the 408")
    expect(svc.get("deadlineTimeouts", 0) >= 1,
           "/metrics deadlineTimeouts not incremented")
    expect(svc.get("sessionsCreated", 0) >= 2,
           f"/metrics sessionsCreated {svc.get('sessionsCreated')}")
    expect(doc.get("sessions", {}).get("live", 0) >= 2,
           "/metrics live session count")
    expect(isinstance(doc.get("dd"), dict) and doc["dd"],
           "/metrics dd table stats missing")
    expect(doc.get("incidents", {}).get("captured", 0) >= 1,
           "/metrics incidents.captured not incremented")
    health_route = svc.get("routes", {}).get("GET /healthz", {})
    expect(health_route.get("count", 0) >= 1
           and 0 < health_route.get("p50Ms", 0)
           <= health_route.get("p95Ms", 0),
           f"/metrics route histogram percentiles not sane: {health_route}")

    for cleanup in (sid, did):
        status, _ = client.request("DELETE", f"/v1/sessions/{cleanup}")
        expect(status == 200, f"delete {cleanup} -> {status}")

    print(f"OK: service API walkthrough passed ({made} requests, "
          f"{operations} gates stepped)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
