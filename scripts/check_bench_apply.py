#!/usr/bin/env python3
"""Record / check the apply-path ablation emitted by bench_fig8_simulation.

The bench prints one line per workload:

    BENCH_APPLY <label> {"n": ..., "fastMs": ..., "generalMs": ...,
                         "speedupFastVsGeneral": ..., ...}

Modes:
  --record OUT    parse bench output from stdin (or --input FILE) and write
                  the records as a JSON baseline file.
  --check BASE    parse bench output and compare each record against the
                  committed baseline; exit nonzero if any shared label
                  regressed by more than --max-regression (default 0.25,
                  i.e. current speedup must stay above 75% of the baseline
                  speedup). Gated columns: speedupFastVsGeneral (floor vs
                  baseline AND an absolute floor of 1.0: the direct apply
                  path must never lose to the general multiply it
                  replaces), peakNodes / stripPeakNodes (at most
                  baseline * (1 + --max-regression)), and for funcbuild
                  records nodeReduction (floor vs baseline AND an absolute
                  floor of 2.0: identity-skipping must keep at least a 2x
                  gate-DD node reduction) plus rootsMatch == true (strip and
                  materialize builds must canonicalize identically).

Either mode also validates that every BENCH_APPLY / BENCH_STATS /
BENCH_PROFILE line in the input parses as JSON, so malformed records fail CI
even when the timing is fine.
"""

import argparse
import json
import sys


BENCH_PREFIXES = ("BENCH_APPLY", "BENCH_STATS", "BENCH_PROFILE")


def parse_records(stream):
    """Returns ({label: record} for BENCH_APPLY lines, parse error count)."""
    apply_records = {}
    errors = 0
    for line in stream:
        line = line.strip()
        prefix = next((p for p in BENCH_PREFIXES if line.startswith(p + " ")),
                      None)
        if prefix is None:
            continue
        try:
            _, label, payload = line.split(" ", 2)
            record = json.loads(payload)
        except (ValueError, json.JSONDecodeError) as exc:
            print(f"PARSE ERROR in {prefix} line: {exc}\n  {line}",
                  file=sys.stderr)
            errors += 1
            continue
        if prefix == "BENCH_APPLY":
            apply_records[label] = record
    return apply_records, errors


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--record", metavar="OUT",
                      help="write parsed BENCH_APPLY records to OUT")
    mode.add_argument("--check", metavar="BASELINE",
                      help="compare records against a committed baseline")
    parser.add_argument("--input", default="-",
                        help="bench output file (default: stdin)")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="allowed relative speedup loss (default 0.25)")
    args = parser.parse_args()

    stream = sys.stdin if args.input == "-" else open(args.input)
    with stream:
        records, errors = parse_records(stream)
    if errors:
        print(f"FAIL: {errors} malformed BENCH_* record(s)", file=sys.stderr)
        return 1
    if not records:
        print("FAIL: no BENCH_APPLY records found in input", file=sys.stderr)
        return 1

    if args.record:
        with open(args.record, "w") as out:
            json.dump({"records": records}, out, indent=2, sort_keys=True)
            out.write("\n")
        print(f"wrote {len(records)} BENCH_APPLY record(s) to {args.record}")
        return 0

    with open(args.check) as f:
        baseline = json.load(f)["records"]
    failures = 0
    compared = 0
    for label, record in sorted(records.items()):
        base = baseline.get(label)
        if base is None:
            print(f"  {label}: no baseline entry, skipping")
            continue
        compared += 1

        def gate_floor(key, unit="x"):
            """current must stay above baseline * (1 - max_regression)."""
            if key not in record or key not in base:
                return 0
            current, expected = record[key], base[key]
            floor = expected * (1.0 - args.max_regression)
            ok = current >= floor
            print(f"  {label}: {key} {current:.2f}{unit} vs baseline "
                  f"{expected:.2f}{unit} (floor {floor:.2f}{unit}) "
                  f"{'ok' if ok else 'REGRESSION'}")
            return 0 if ok else 1

        def gate_ceiling(key):
            """current must stay below baseline * (1 + max_regression)."""
            if key not in record or key not in base:
                return 0
            current, expected = record[key], base[key]
            ceiling = expected * (1.0 + args.max_regression)
            ok = current <= ceiling
            print(f"  {label}: {key} {current} vs baseline {expected} "
                  f"(ceiling {ceiling:.0f}) {'ok' if ok else 'REGRESSION'}")
            return 0 if ok else 1

        failures += gate_floor("speedupFastVsGeneral")
        if record.get("speedupFastVsGeneral", 1.0) < 1.0:
            # The direct apply path must never lose to the general
            # matrix-vector multiply it replaces, no matter what the
            # recorded baseline says.
            print(f"  {label}: speedupFastVsGeneral "
                  f"{record['speedupFastVsGeneral']:.2f}x below the "
                  f"absolute 1.0x fast-path floor REGRESSION")
            failures += 1
        failures += gate_ceiling("peakNodes")
        failures += gate_ceiling("stripPeakNodes")
        if "nodeReduction" in record:
            failures += gate_floor("nodeReduction")
            if record["nodeReduction"] < 2.0:
                print(f"  {label}: nodeReduction "
                      f"{record['nodeReduction']:.2f}x below the absolute "
                      f"2.0x identity-skipping floor REGRESSION")
                failures += 1
            if record.get("rootsMatch") is not True:
                print(f"  {label}: rootsMatch is "
                      f"{record.get('rootsMatch')} — strip and materialize "
                      f"builds disagree REGRESSION")
                failures += 1
    if compared == 0:
        print("FAIL: no records matched the baseline labels",
              file=sys.stderr)
        return 1
    if failures:
        print(f"FAIL: {failures} workload(s) regressed more than "
              f"{args.max_regression:.0%} vs {args.check}", file=sys.stderr)
        return 1
    print(f"OK: {compared} workload(s) within {args.max_regression:.0%} of "
          f"baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
