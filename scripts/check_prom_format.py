#!/usr/bin/env python3
"""Validates Prometheus text exposition scraped from /metrics?fmt=prom.

Usage: check_prom_format.py <exposition.txt>   (or '-' for stdin)

Checks, line by line:
  * every line is a comment (# HELP / # TYPE), a sample, or blank;
  * metric names match the Prometheus grammar;
  * every sample belongs to a family announced by a # TYPE line;
  * HELP/TYPE lines precede the family's first sample;
  * label lists parse ("name=\"value\"" pairs, escaped values);
  * sample values parse as floats (or +Inf/-Inf/NaN);
  * histogram families come as _bucket/_sum/_count triplets whose `le`
    buckets increase, whose cumulative counts are non-decreasing, and whose
    last bucket is le="+Inf" matching _count;
  * the families the qdd service always exposes are present.

Exit code 0 when the exposition is valid, 1 otherwise.
"""

import math
import re
import sys

METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>\S+)(?: (?P<ts>-?\d+))?$"
)

REQUIRED_FAMILIES = [
    "qdd_http_requests_total",
    "qdd_http_responses_total",
    "qdd_http_request_duration_seconds",
    "qdd_sessions_live",
    "qdd_sessions_capacity",
    "qdd_dd_unique_table_entries",
    "qdd_dd_unique_table_probe_length_avg",
    "qdd_dd_unique_table_probe_length_max",
    "qdd_dd_unique_table_hit_ratio",
    "qdd_dd_compute_hit_ratio",
    "qdd_dd_unique_table_shard_contention",
    "qdd_dd_parallel_forks_total",
    "qdd_dd_realtable_cas_retries_total",
    "qdd_incidents_total",
    "qdd_net_open_connections",
    "qdd_service_sessions_resident",
    "qdd_service_sessions_spilled",
    "qdd_service_sessions_spilled_total",
    "qdd_service_session_restores_total",
    "qdd_service_session_restore_failures_total",
    "qdd_service_spill_bytes_total",
    "qdd_service_shard_sessions",
]


def fail(lineno, line, message):
    sys.stderr.write(f"INVALID line {lineno}: {message}\n  {line}\n")
    sys.exit(1)


def parse_labels(lineno, line, raw):
    """Returns the label dict of one rendered label list."""
    labels = {}
    pos = 0
    while pos < len(raw):
        eq = raw.find("=", pos)
        if eq < 0:
            fail(lineno, line, "label without '='")
        name = raw[pos:eq]
        if not LABEL_NAME.match(name):
            fail(lineno, line, f"bad label name {name!r}")
        if eq + 1 >= len(raw) or raw[eq + 1] != '"':
            fail(lineno, line, "label value not quoted")
        value = []
        i = eq + 2
        while i < len(raw) and raw[i] != '"':
            if raw[i] == "\\":
                if i + 1 >= len(raw) or raw[i + 1] not in '\\"n':
                    fail(lineno, line, "bad escape in label value")
                value.append({"\\": "\\", '"': '"', "n": "\n"}[raw[i + 1]])
                i += 2
            else:
                value.append(raw[i])
                i += 1
        if i >= len(raw):
            fail(lineno, line, "unterminated label value")
        labels[name] = "".join(value)
        pos = i + 1
        if pos < len(raw):
            if raw[pos] != ",":
                fail(lineno, line, "expected ',' between labels")
            pos += 1
    return labels


def parse_value(lineno, line, raw):
    if raw in ("+Inf", "Inf"):
        return math.inf
    if raw == "-Inf":
        return -math.inf
    if raw == "NaN":
        return math.nan
    try:
        return float(raw)
    except ValueError:
        fail(lineno, line, f"unparsable value {raw!r}")


def family_of(name, types):
    """Maps a sample name to its announced family (histogram suffixes)."""
    if name in types:
        return name
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix) and name[: -len(suffix)] in types:
            return name[: -len(suffix)]
    return None


def main():
    if len(sys.argv) != 2:
        sys.stderr.write(f"usage: {sys.argv[0]} <exposition.txt|->\n")
        return 2
    if sys.argv[1] == "-":
        text = sys.stdin.read()
    else:
        with open(sys.argv[1], encoding="utf-8") as f:
            text = f.read()

    types = {}  # family -> type
    helped = set()
    samples = []  # (lineno, line, name, labels, value)
    seen_sample_of = set()

    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                fail(lineno, line, "comment is neither # HELP nor # TYPE")
            name = parts[2]
            if not METRIC_NAME.match(name):
                fail(lineno, line, f"bad metric name {name!r}")
            if parts[1] == "TYPE":
                if len(parts) != 4 or parts[3] not in (
                    "counter",
                    "gauge",
                    "histogram",
                    "summary",
                    "untyped",
                ):
                    fail(lineno, line, "bad TYPE line")
                if name in types:
                    fail(lineno, line, f"duplicate TYPE for {name}")
                if name in seen_sample_of:
                    fail(lineno, line, f"TYPE after samples of {name}")
                types[name] = parts[3]
            else:
                helped.add(name)
            continue
        m = SAMPLE.match(line)
        if not m:
            fail(lineno, line, "not a valid sample line")
        name = m.group("name")
        family = family_of(name, types)
        if family is None:
            fail(lineno, line, f"sample {name!r} has no # TYPE line")
        seen_sample_of.add(family)
        labels = parse_labels(lineno, line, m.group("labels") or "")
        value = parse_value(lineno, line, m.group("value"))
        samples.append((lineno, line, name, labels, value))

    # histogram structure
    for family, ftype in types.items():
        if ftype != "histogram":
            continue
        buckets = [
            (ln, l, lab, v)
            for (ln, l, n, lab, v) in samples
            if n == family + "_bucket"
        ]
        sums = [v for (_, _, n, _, v) in samples if n == family + "_sum"]
        counts = [v for (_, _, n, _, v) in samples if n == family + "_count"]
        if not buckets or len(sums) != 1 or len(counts) != 1:
            sys.stderr.write(
                f"INVALID: histogram {family} needs buckets plus exactly "
                f"one _sum and one _count\n"
            )
            return 1
        last_le = -math.inf
        last_count = -1.0
        for lineno, line, labels, value in buckets:
            if "le" not in labels:
                fail(lineno, line, "bucket without le label")
            le = parse_value(lineno, line, labels["le"])
            if not le > last_le:
                fail(lineno, line, "le buckets not strictly increasing")
            if value < last_count:
                fail(lineno, line, "cumulative bucket counts decreased")
            last_le, last_count = le, value
        if not math.isinf(last_le):
            sys.stderr.write(
                f"INVALID: histogram {family} does not end with le=\"+Inf\"\n"
            )
            return 1
        if last_count != counts[0]:
            sys.stderr.write(
                f"INVALID: histogram {family} +Inf bucket ({last_count}) != "
                f"_count ({counts[0]})\n"
            )
            return 1

    missing = [f for f in REQUIRED_FAMILIES if f not in types]
    if missing:
        sys.stderr.write(f"INVALID: missing required families: {missing}\n")
        return 1
    unhelped = [f for f in types if f not in helped]
    if unhelped:
        sys.stderr.write(f"INVALID: families without # HELP: {unhelped}\n")
        return 1

    print(
        f"OK: {len(samples)} samples across {len(types)} families "
        f"({sum(1 for t in types.values() if t == 'histogram')} histograms)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
