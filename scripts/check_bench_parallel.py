#!/usr/bin/env python3
"""Record / check the parallel-execution records of bench_parallel_batch
and bench_parallel_dd.

The benches print one line per workload:

    BENCH_PARALLEL batch_sim {"workerMs": {...}, "speedup8": ...,
                              "identicalResults": true,
                              "hardwareConcurrency": ..., ...}
    BENCH_PARALLEL sample    {...}
    BENCH_PARALLEL portfolio {"overheadVsBestSerial": ..., "agrees": true,
                              ...}
    BENCH_PARALLEL intra_circuit {"serialMs": ..., "workerMs": {...},
                              "speedup8": ..., "rootsMatch": true, ...}

Modes:
  --record OUT    parse bench output from stdin (or --input FILE) and write
                  the records as a JSON baseline file (BENCH_PARALLEL.json).
  --check BASE    parse bench output, validate it, and enforce the scaling
                  gates against the record's own machine:

Hard gates (any machine, any core count):
  * every BENCH_PARALLEL line parses as JSON with the expected fields;
  * identicalResults is true for batch_sim and sample — per-task results
    must be bit-identical for every worker count;
  * the portfolio verdict agrees with both serial directions;
  * intra_circuit rootsMatch is true — a concurrent package's parallel
    multiply/add must land on the same canonical roots as the serial engine
    for every workload and worker count.

Core-count-gated (a 1-core container cannot exhibit parallel speedup, so
these only fire where the hardware can show them):
  * hardwareConcurrency >= 8: batch_sim speedup8 must reach --min-speedup8
    (default 3.0);
  * hardwareConcurrency >= 2: portfolio overheadVsBestSerial must stay
    under --max-portfolio-overhead (default 1.10, i.e. within 10% of the
    better serial direction);
  * hardwareConcurrency >= 8: intra_circuit speedup8 must reach
    --min-intra-speedup8 (default 2.0) — the one-package fork/join engine
    must at least halve the wall time of the heavy workloads at 8 workers.

With --check, the speedup is additionally compared against the baseline:
it must stay above (1 - --max-regression) of the recorded speedup whenever
both runs had >= 8 cores.
"""

import argparse
import json
import sys

REQUIRED_FIELDS = {
    "batch_sim": ("workerMs", "speedup2", "speedup4", "speedup8",
                  "identicalResults", "hardwareConcurrency"),
    "sample": ("workerMs", "speedup2", "speedup4", "speedup8",
               "identicalResults", "hardwareConcurrency"),
    "portfolio": ("serialLrMs", "serialRlMs", "portfolioMs",
                  "overheadVsBestSerial", "agrees", "hardwareConcurrency"),
    "intra_circuit": ("serialMs", "workerMs", "speedup2", "speedup4",
                      "speedup8", "rootsMatch", "hardwareConcurrency"),
}


def parse_records(stream):
    """Returns ({label: record}, parse error count)."""
    records = {}
    errors = 0
    for line in stream:
        line = line.strip()
        if not line.startswith("BENCH_PARALLEL "):
            continue
        try:
            _, label, payload = line.split(" ", 2)
            record = json.loads(payload)
        except (ValueError, json.JSONDecodeError) as exc:
            print(f"PARSE ERROR in BENCH_PARALLEL line: {exc}\n  {line}",
                  file=sys.stderr)
            errors += 1
            continue
        records[label] = record
    return records, errors


def validate(records):
    """Field presence + machine-independent correctness gates."""
    failures = 0
    for label, fields in REQUIRED_FIELDS.items():
        record = records.get(label)
        if record is None:
            print(f"FAIL: missing BENCH_PARALLEL record '{label}'",
                  file=sys.stderr)
            failures += 1
            continue
        missing = [f for f in fields if f not in record]
        if missing:
            print(f"FAIL: {label}: missing field(s) {missing}",
                  file=sys.stderr)
            failures += 1
    for label in ("batch_sim", "sample"):
        record = records.get(label, {})
        if record.get("identicalResults") is not True:
            print(f"FAIL: {label}: results differ across worker counts "
                  "(determinism contract violated)", file=sys.stderr)
            failures += 1
    if records.get("portfolio", {}).get("agrees") is not True:
        print("FAIL: portfolio verdict disagrees with the serial checkers",
              file=sys.stderr)
        failures += 1
    if records.get("intra_circuit", {}).get("rootsMatch") is not True:
        print("FAIL: intra_circuit: parallel and serial runs disagree on "
              "canonical roots (canonicity contract violated)",
              file=sys.stderr)
        failures += 1
    return failures


def check_scaling(records, min_speedup8, max_portfolio_overhead,
                  min_intra_speedup8):
    """Core-count-gated performance gates against the record's own machine."""
    failures = 0
    batch = records.get("batch_sim", {})
    cores = batch.get("hardwareConcurrency", 0)
    if cores >= 8:
        speedup = batch.get("speedup8", 0.0)
        status = "ok" if speedup >= min_speedup8 else "FAIL"
        print(f"  batch_sim: speedup8 {speedup:.2f}x on {cores} cores "
              f"(floor {min_speedup8:.2f}x) {status}")
        if speedup < min_speedup8:
            failures += 1
    else:
        print(f"  batch_sim: {cores} core(s) — speedup8 gate skipped "
              "(needs >= 8 cores)")

    portfolio = records.get("portfolio", {})
    cores = portfolio.get("hardwareConcurrency", 0)
    if cores >= 2:
        overhead = portfolio.get("overheadVsBestSerial", 0.0)
        status = "ok" if overhead <= max_portfolio_overhead else "FAIL"
        print(f"  portfolio: overhead {overhead:.2f}x on {cores} cores "
              f"(ceiling {max_portfolio_overhead:.2f}x) {status}")
        if overhead > max_portfolio_overhead:
            failures += 1
    else:
        print(f"  portfolio: {cores} core(s) — overhead gate skipped "
              "(needs >= 2 cores)")

    intra = records.get("intra_circuit", {})
    cores = intra.get("hardwareConcurrency", 0)
    if cores >= 8:
        speedup = intra.get("speedup8", 0.0)
        status = "ok" if speedup >= min_intra_speedup8 else "FAIL"
        print(f"  intra_circuit: speedup8 {speedup:.2f}x on {cores} cores "
              f"(floor {min_intra_speedup8:.2f}x) {status}")
        if speedup < min_intra_speedup8:
            failures += 1
    else:
        print(f"  intra_circuit: {cores} core(s) — speedup8 gate skipped "
              "(needs >= 8 cores)")
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--record", metavar="OUT",
                      help="write parsed BENCH_PARALLEL records to OUT")
    mode.add_argument("--check", metavar="BASELINE",
                      help="validate records and compare against a baseline")
    parser.add_argument("--input", default="-",
                        help="bench output file (default: stdin)")
    parser.add_argument("--min-speedup8", type=float, default=3.0,
                        help="batch speedup floor at 8 workers on >= 8 "
                             "cores (default 3.0)")
    parser.add_argument("--max-portfolio-overhead", type=float, default=1.10,
                        help="portfolio wall-time ceiling relative to the "
                             "better serial direction on >= 2 cores "
                             "(default 1.10)")
    parser.add_argument("--min-intra-speedup8", type=float, default=2.0,
                        help="intra-circuit speedup floor at 8 workers on "
                             ">= 8 cores (default 2.0)")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="allowed relative speedup loss vs the baseline "
                             "(default 0.25)")
    args = parser.parse_args()

    stream = sys.stdin if args.input == "-" else open(args.input)
    with stream:
        records, errors = parse_records(stream)
    if errors:
        print(f"FAIL: {errors} malformed BENCH_PARALLEL record(s)",
              file=sys.stderr)
        return 1
    if not records:
        print("FAIL: no BENCH_PARALLEL records found in input",
              file=sys.stderr)
        return 1

    failures = validate(records)
    if failures:
        print(f"FAIL: {failures} validation failure(s)", file=sys.stderr)
        return 1

    if args.record:
        with open(args.record, "w") as out:
            json.dump({"records": records}, out, indent=2, sort_keys=True)
            out.write("\n")
        print(f"wrote {len(records)} BENCH_PARALLEL record(s) to "
              f"{args.record}")
        return 0

    failures = check_scaling(records, args.min_speedup8,
                             args.max_portfolio_overhead,
                             args.min_intra_speedup8)

    with open(args.check) as f:
        baseline = json.load(f)["records"]
    base_batch = baseline.get("batch_sim", {})
    cur_batch = records.get("batch_sim", {})
    if (base_batch.get("hardwareConcurrency", 0) >= 8
            and cur_batch.get("hardwareConcurrency", 0) >= 8):
        current = cur_batch.get("speedup8", 0.0)
        expected = base_batch.get("speedup8", 0.0)
        floor = expected * (1.0 - args.max_regression)
        status = "ok" if current >= floor else "REGRESSION"
        print(f"  batch_sim: speedup8 {current:.2f}x vs baseline "
              f"{expected:.2f}x (floor {floor:.2f}x) {status}")
        if current < floor:
            failures += 1
    else:
        print("  baseline comparison skipped (needs >= 8 cores on both "
              "machines)")
    base_intra = baseline.get("intra_circuit", {})
    cur_intra = records.get("intra_circuit", {})
    if (base_intra.get("hardwareConcurrency", 0) >= 8
            and cur_intra.get("hardwareConcurrency", 0) >= 8):
        current = cur_intra.get("speedup8", 0.0)
        expected = base_intra.get("speedup8", 0.0)
        floor = expected * (1.0 - args.max_regression)
        status = "ok" if current >= floor else "REGRESSION"
        print(f"  intra_circuit: speedup8 {current:.2f}x vs baseline "
              f"{expected:.2f}x (floor {floor:.2f}x) {status}")
        if current < floor:
            failures += 1

    if failures:
        print(f"FAIL: {failures} scaling gate(s) failed", file=sys.stderr)
        return 1
    print("OK: all applicable parallel gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
