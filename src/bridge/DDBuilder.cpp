#include "qdd/bridge/DDBuilder.hpp"

#include "qdd/bridge/GateDDCache.hpp"
#include "qdd/dd/GateMatrix.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace qdd::bridge {

namespace {

GateMatrix matrixFor(ir::OpType t, const std::vector<double>& p) {
  switch (t) {
  case ir::OpType::I:
    return I_MAT;
  case ir::OpType::H:
    return H_MAT;
  case ir::OpType::X:
    return X_MAT;
  case ir::OpType::Y:
    return Y_MAT;
  case ir::OpType::Z:
    return Z_MAT;
  case ir::OpType::S:
    return S_MAT;
  case ir::OpType::Sdg:
    return SDG_MAT;
  case ir::OpType::T:
    return T_MAT;
  case ir::OpType::Tdg:
    return TDG_MAT;
  case ir::OpType::V:
    return V_MAT;
  case ir::OpType::Vdg:
    return VDG_MAT;
  case ir::OpType::SX:
    return SX_MAT;
  case ir::OpType::SXdg:
    return SXDG_MAT;
  case ir::OpType::RX:
    return rxMatrix(p.at(0));
  case ir::OpType::RY:
    return ryMatrix(p.at(0));
  case ir::OpType::RZ:
    return rzMatrix(p.at(0));
  case ir::OpType::Phase:
    return phaseMatrix(p.at(0));
  case ir::OpType::U2:
    return u2Matrix(p.at(0), p.at(1));
  case ir::OpType::U3:
    return u3Matrix(p.at(0), p.at(1), p.at(2));
  default:
    throw std::invalid_argument("getDD: no matrix for operation type '" +
                                ir::toString(t) + "'");
  }
}

mEdge getStandardDD(const ir::Operation& op, std::size_t n, Package& pkg) {
  if (op.type() == ir::OpType::SWAP) {
    return pkg.makeSWAPDD(n, op.controls(), op.targets().at(0),
                          op.targets().at(1));
  }
  if (op.type() == ir::OpType::iSWAP || op.type() == ir::OpType::iSWAPdg ||
      op.type() == ir::OpType::DCX) {
    if (!op.controls().empty()) {
      throw std::invalid_argument("getDD: controlled " +
                                  ir::toString(op.type()) +
                                  " is not supported");
    }
    const TwoQubitGateMatrix& mat = op.type() == ir::OpType::iSWAP
                                        ? ISWAP_MAT
                                        : (op.type() == ir::OpType::iSWAPdg
                                               ? ISWAPDG_MAT
                                               : DCX_MAT);
    return pkg.makeTwoQubitGateDD(mat, n, op.targets().at(0),
                                  op.targets().at(1));
  }
  const GateMatrix mat = matrixFor(op.type(), op.parameters());
  return pkg.makeGateDD(mat, n, op.controls(), op.targets().at(0));
}

// Atomic because worker threads (qdd::exec) read the mode concurrently while
// a test or tool may flip it between runs. Relaxed ordering suffices: the
// mode is a standalone configuration value with no dependent data.
std::atomic<ApplyMode>& globalModeRef() {
  static std::atomic<ApplyMode> mode{applyModeFromEnv()};
  return mode;
}

} // namespace

std::string toString(ApplyMode mode) {
  switch (mode) {
  case ApplyMode::Fast:
    return "fast";
  case ApplyMode::Cached:
    return "cached";
  case ApplyMode::General:
    return "general";
  case ApplyMode::Parallel:
    return "parallel";
  }
  return "?";
}

ApplyMode applyModeFromEnv() {
  const char* env = std::getenv("QDD_APPLY");
  if (env == nullptr) {
    return ApplyMode::Fast;
  }
  const std::string value(env);
  if (value == "general") {
    return ApplyMode::General;
  }
  if (value == "cached") {
    return ApplyMode::Cached;
  }
  if (value == "parallel") {
    return ApplyMode::Parallel;
  }
  return ApplyMode::Fast;
}

ApplyMode globalApplyMode() {
  return globalModeRef().load(std::memory_order_relaxed);
}

void setGlobalApplyMode(ApplyMode mode) {
  globalModeRef().store(mode, std::memory_order_relaxed);
}

mEdge getDD(const ir::Operation& op, std::size_t n, Package& pkg) {
  if (op.type() == ir::OpType::Barrier) {
    return pkg.makeIdent(n);
  }
  if (const auto* comp = dynamic_cast<const ir::CompoundOperation*>(&op)) {
    mEdge e = pkg.makeIdent(n);
    for (const auto& sub : comp->operations()) {
      e = pkg.multiply(getDD(*sub, n, pkg), e);
    }
    return e;
  }
  if (!op.isUnitary() || !op.isStandardOperation()) {
    throw std::invalid_argument("getDD: operation '" + op.name() +
                                "' has no unitary matrix");
  }
  return getStandardDD(op, n, pkg);
}

mEdge getInverseDD(const ir::Operation& op, std::size_t n, Package& pkg) {
  auto inverse = op.clone();
  inverse->invert();
  return getDD(*inverse, n, pkg);
}

vEdge applyOperation(const ir::Operation& op, std::size_t n,
                     const vEdge& state, Package& pkg, GateDDCache* cache) {
  return applyOperation(op, n, state, pkg, globalApplyMode(), cache);
}

vEdge applyOperation(const ir::Operation& op, std::size_t n,
                     const vEdge& state, Package& pkg, ApplyMode mode,
                     GateDDCache* cache) {
  if (op.type() == ir::OpType::Barrier) {
    return state;
  }
  if (const auto* comp = dynamic_cast<const ir::CompoundOperation*>(&op)) {
    vEdge e = state;
    for (const auto& sub : comp->operations()) {
      e = applyOperation(*sub, n, e, pkg, mode, cache);
    }
    return e;
  }
  if (!op.isUnitary() || !op.isStandardOperation()) {
    throw std::invalid_argument("applyOperation: operation '" + op.name() +
                                "' has no unitary matrix");
  }
  if (mode == ApplyMode::Fast) {
    if (op.type() == ir::OpType::SWAP) {
      return pkg.applySwap(op.targets().at(0), op.targets().at(1),
                           op.controls(), state);
    }
    if (op.type() != ir::OpType::iSWAP && op.type() != ir::OpType::iSWAPdg &&
        op.type() != ir::OpType::DCX) {
      const GateMatrix mat = matrixFor(op.type(), op.parameters());
      return pkg.applyGate(mat, op.targets().at(0), op.controls(), state);
    }
    // Two-qubit unitaries have no direct kernel; fall through to the matrix
    // path (served by the cache when one is available).
  }
  pkg.noteApplyFallback();
  const mEdge gate = (cache != nullptr && mode != ApplyMode::General)
                         ? cache->getDD(op, n)
                         : getDD(op, n, pkg);
  return pkg.multiply(gate, state);
}

mEdge buildFunctionality(const ir::QuantumComputation& qc, Package& pkg) {
  BuildStats stats;
  return buildFunctionality(qc, pkg, stats);
}

mEdge buildFunctionality(const ir::QuantumComputation& qc, Package& pkg,
                         BuildStats& stats) {
  const std::size_t n = qc.numQubits();
  if (n == 0) {
    throw std::invalid_argument("buildFunctionality: empty circuit");
  }
  pkg.resize(n);
  const ApplyMode mode = globalApplyMode();
  GateDDCache cache(pkg);
  mEdge e = pkg.makeIdent(n);
  pkg.incRef(e);
  stats.maxNodes = std::max(stats.maxNodes, Package::size(e));
  for (const auto& op : qc) {
    if (op->type() == ir::OpType::Barrier) {
      continue;
    }
    const mEdge gate = mode == ApplyMode::General ? getDD(*op, n, pkg)
                                                  : cache.getDD(*op, n);
    const mEdge next = pkg.multiply(gate, e);
    pkg.incRef(next);
    pkg.decRef(e);
    e = next;
    ++stats.appliedGates;
    stats.maxNodes = std::max(stats.maxNodes, Package::size(e));
    pkg.garbageCollect();
  }
  stats.finalNodes = Package::size(e);
  pkg.decRef(e);
  return e;
}

vEdge simulate(const ir::QuantumComputation& qc, const vEdge& initial,
               Package& pkg) {
  BuildStats stats;
  return simulate(qc, initial, pkg, stats);
}

vEdge simulate(const ir::QuantumComputation& qc, const vEdge& initial,
               Package& pkg, BuildStats& stats) {
  const std::size_t n = qc.numQubits();
  if (n == 0) {
    throw std::invalid_argument("simulate: empty circuit");
  }
  pkg.resize(n);
  const ApplyMode mode = globalApplyMode();
  GateDDCache cache(pkg);
  vEdge state = initial;
  pkg.incRef(state);
  stats.maxNodes = std::max(stats.maxNodes, Package::size(state));
  for (const auto& op : qc) {
    if (op->type() == ir::OpType::Barrier) {
      continue;
    }
    const vEdge next = applyOperation(*op, n, state, pkg, mode, &cache);
    pkg.incRef(next);
    pkg.decRef(state);
    state = next;
    ++stats.appliedGates;
    stats.maxNodes = std::max(stats.maxNodes, Package::size(state));
    pkg.garbageCollect();
  }
  stats.finalNodes = Package::size(state);
  pkg.decRef(state);
  return state;
}

} // namespace qdd::bridge
