#include "qdd/bridge/GateDDCache.hpp"

#include "qdd/bridge/DDBuilder.hpp"
#include "qdd/complex/ComplexValue.hpp"
#include "qdd/obs/Obs.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

namespace qdd::bridge {

namespace {

std::size_t combine(std::size_t seed, std::size_t h) noexcept {
  return seed ^ (h + 0x9e3779b97f4a7c15ULL + (seed << 6U) + (seed >> 2U));
}

} // namespace

std::size_t GateDDCache::KeyHash::operator()(const Key& k) const noexcept {
  std::size_t h = combine(static_cast<std::size_t>(k.type),
                          (static_cast<std::size_t>(k.n) << 1U) |
                              static_cast<std::size_t>(k.inverse));
  for (const Qubit t : k.targets) {
    h = combine(h, static_cast<std::size_t>(t));
  }
  for (const auto& c : k.controls) {
    h = combine(h, (static_cast<std::size_t>(c.qubit) << 1U) |
                       static_cast<std::size_t>(c.positive));
  }
  for (const FixedPointAngle p : k.params) {
    h = combine(h, std::hash<FixedPointAngle>{}(p));
  }
  return h;
}

mEdge GateDDCache::getDD(const ir::Operation& op, std::size_t n) {
  return lookupOrBuild(op, n, false);
}

mEdge GateDDCache::getInverseDD(const ir::Operation& op, std::size_t n) {
  return lookupOrBuild(op, n, true);
}

mEdge GateDDCache::lookupOrBuild(const ir::Operation& op, std::size_t n,
                                 bool inverse) {
  if (!op.isStandardOperation() || !op.isUnitary()) {
    // Compound / barrier / non-unitary: defer to the builder's own handling.
    return inverse ? bridge::getInverseDD(op, n, pkg)
                   : bridge::getDD(op, n, pkg);
  }
  ++numLookups;
  Key key;
  key.type = op.type();
  key.n = static_cast<std::uint32_t>(n);
  key.inverse = inverse;
  key.targets = op.targets();
  key.controls = op.controls();
  std::sort(key.controls.begin(), key.controls.end());
  key.params.reserve(op.parameters().size());
  for (const double p : op.parameters()) {
    key.params.emplace_back(p);
  }

  if (const auto it = entries.find(key); it != entries.end()) {
    ++numHits;
    QDD_OBS_COUNTER("bridge.gateCache.hits", numHits);
    return it->second;
  }
  const mEdge dd = inverse ? bridge::getInverseDD(op, n, pkg)
                           : bridge::getDD(op, n, pkg);
  if (entries.size() >= maxEntries) {
    clear();
    ++numFlushes;
  }
  pkg.incRef(dd); // pin: cached gate DDs survive garbage collection
  entries.emplace(std::move(key), dd);
  return dd;
}

void GateDDCache::clear() {
  for (const auto& [key, dd] : entries) {
    pkg.decRef(dd);
  }
  entries.clear();
}

} // namespace qdd::bridge
