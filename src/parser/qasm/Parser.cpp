#include "qdd/parser/qasm/Parser.hpp"

#include "qdd/obs/Obs.hpp"

#include <cmath>
#include <fstream>
#include <sstream>

namespace qdd::qasm {

ir::QuantumComputation parse(const std::string& source,
                             const std::string& name) {
  obs::ScopedSpan span("parser", "qasm.parse");
  detail::Parser p(source, name);
  ir::QuantumComputation qc = p.parse();
  span.arg("bytes", source.size());
  span.arg("qubits", qc.numQubits());
  span.arg("operations", qc.size());
  return qc;
}

ir::QuantumComputation parseFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open file: " + path);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  std::string name = path;
  if (const auto slash = name.find_last_of('/'); slash != std::string::npos) {
    name = name.substr(slash + 1);
  }
  if (const auto dot = name.find_last_of('.'); dot != std::string::npos) {
    name = name.substr(0, dot);
  }
  return parse(ss.str(), name);
}

namespace detail {

namespace {
constexpr double PI_LOCAL = 3.14159265358979323846;
}

double evaluate(const Expr& e, const std::map<std::string, double>& env,
                std::size_t line, std::size_t col) {
  switch (e.kind) {
  case Expr::Kind::Number:
    return e.number;
  case Expr::Kind::Pi:
    return PI_LOCAL;
  case Expr::Kind::Param: {
    const auto it = env.find(e.param);
    if (it == env.end()) {
      throw ParseError("unknown parameter '" + e.param + "'", line, col);
    }
    return it->second;
  }
  case Expr::Kind::Add:
    return evaluate(*e.lhs, env, line, col) + evaluate(*e.rhs, env, line, col);
  case Expr::Kind::Sub:
    return evaluate(*e.lhs, env, line, col) - evaluate(*e.rhs, env, line, col);
  case Expr::Kind::Mul:
    return evaluate(*e.lhs, env, line, col) * evaluate(*e.rhs, env, line, col);
  case Expr::Kind::Div: {
    const double d = evaluate(*e.rhs, env, line, col);
    if (d == 0.) {
      throw ParseError("division by zero in parameter expression", line, col);
    }
    return evaluate(*e.lhs, env, line, col) / d;
  }
  case Expr::Kind::Pow:
    return std::pow(evaluate(*e.lhs, env, line, col),
                    evaluate(*e.rhs, env, line, col));
  case Expr::Kind::Neg:
    return -evaluate(*e.lhs, env, line, col);
  case Expr::Kind::Sin:
    return std::sin(evaluate(*e.lhs, env, line, col));
  case Expr::Kind::Cos:
    return std::cos(evaluate(*e.lhs, env, line, col));
  case Expr::Kind::Tan:
    return std::tan(evaluate(*e.lhs, env, line, col));
  case Expr::Kind::Exp:
    return std::exp(evaluate(*e.lhs, env, line, col));
  case Expr::Kind::Ln:
    return std::log(evaluate(*e.lhs, env, line, col));
  case Expr::Kind::Sqrt:
    return std::sqrt(evaluate(*e.lhs, env, line, col));
  }
  throw ParseError("invalid expression", line, col);
}

Parser::Parser(std::string source, std::string name)
    : lexer(std::move(source)) {
  qc.setName(std::move(name));
  advanceToken();
}

void Parser::advanceToken() { cur = lexer.next(); }

Token Parser::expect(TokenKind k, const std::string& context) {
  if (cur.kind != k) {
    fail("expected " + qasm::toString(k) + " " + context + ", got " +
         qasm::toString(cur.kind));
  }
  Token t = cur;
  advanceToken();
  return t;
}

bool Parser::accept(TokenKind k) {
  if (cur.kind == k) {
    advanceToken();
    return true;
  }
  return false;
}

void Parser::fail(const std::string& message) const {
  throw ParseError(message, cur.line, cur.col);
}

ir::QuantumComputation Parser::parse() {
  parseHeader();
  while (!check(TokenKind::EndOfFile)) {
    parseStatement();
  }
  return std::move(qc);
}

void Parser::parseHeader() {
  expect(TokenKind::KwOpenqasm, "at start of file");
  const Token version = cur;
  if (!accept(TokenKind::Real) && !accept(TokenKind::Integer)) {
    fail("expected version number after OPENQASM");
  }
  if (version.realValue < 2. || version.realValue >= 3.) {
    throw ParseError("unsupported OpenQASM version (expected 2.x)",
                     version.line, version.col);
  }
  expect(TokenKind::Semicolon, "after version");
}

void Parser::parseStatement() {
  switch (cur.kind) {
  case TokenKind::KwInclude:
    parseInclude();
    break;
  case TokenKind::KwQreg:
    parseQreg();
    break;
  case TokenKind::KwCreg:
    parseCreg();
    break;
  case TokenKind::KwGate:
    parseGateDecl(false);
    break;
  case TokenKind::KwOpaque:
    parseGateDecl(true);
    break;
  case TokenKind::KwMeasure:
    parseMeasure();
    break;
  case TokenKind::KwReset:
    parseReset();
    break;
  case TokenKind::KwBarrier:
    parseBarrier();
    break;
  case TokenKind::KwIf:
    parseIf();
    break;
  case TokenKind::Identifier:
  case TokenKind::KwU:
  case TokenKind::KwCX:
    parseGateCall();
    break;
  default:
    fail("unexpected " + qasm::toString(cur.kind));
  }
}

void Parser::parseInclude() {
  advanceToken();
  const Token file = expect(TokenKind::StringLiteral, "after include");
  expect(TokenKind::Semicolon, "after include");
  if (file.text != "qelib1.inc") {
    throw ParseError("only qelib1.inc includes are supported (got \"" +
                         file.text + "\")",
                     file.line, file.col);
  }
  // qelib1 gates are built in; nothing to do.
}

void Parser::parseQreg() {
  advanceToken();
  const Token name = expect(TokenKind::Identifier, "after qreg");
  expect(TokenKind::LBracket, "in qreg declaration");
  const Token size = expect(TokenKind::Integer, "as register size");
  expect(TokenKind::RBracket, "in qreg declaration");
  expect(TokenKind::Semicolon, "after qreg declaration");
  if (size.intValue == 0) {
    throw ParseError("register size must be positive", size.line, size.col);
  }
  qc.addQubitRegister(size.intValue, name.text);
}

void Parser::parseCreg() {
  advanceToken();
  const Token name = expect(TokenKind::Identifier, "after creg");
  expect(TokenKind::LBracket, "in creg declaration");
  const Token size = expect(TokenKind::Integer, "as register size");
  expect(TokenKind::RBracket, "in creg declaration");
  expect(TokenKind::Semicolon, "after creg declaration");
  if (size.intValue == 0) {
    throw ParseError("register size must be positive", size.line, size.col);
  }
  qc.addClassicalRegister(size.intValue, name.text);
}

void Parser::parseGateDecl(bool opaque) {
  advanceToken();
  const Token name = expect(TokenKind::Identifier, "as gate name");
  GateDecl decl;
  decl.opaque = opaque;
  if (accept(TokenKind::LParen)) {
    if (!check(TokenKind::RParen)) {
      do {
        decl.paramNames.push_back(
            expect(TokenKind::Identifier, "as gate parameter").text);
      } while (accept(TokenKind::Comma));
    }
    expect(TokenKind::RParen, "after gate parameters");
  }
  do {
    decl.argNames.push_back(
        expect(TokenKind::Identifier, "as gate argument").text);
  } while (accept(TokenKind::Comma));

  if (opaque) {
    expect(TokenKind::Semicolon, "after opaque declaration");
  } else {
    expect(TokenKind::LBrace, "to open gate body");
    while (!check(TokenKind::RBrace)) {
      if (check(TokenKind::KwBarrier)) {
        advanceToken();
        GateCall call;
        call.name = "barrier";
        call.line = cur.line;
        call.col = cur.col;
        if (!check(TokenKind::Semicolon)) {
          do {
            call.operands.push_back(parseOperand(true));
          } while (accept(TokenKind::Comma));
        }
        expect(TokenKind::Semicolon, "after barrier");
        decl.body.push_back(std::move(call));
        continue;
      }
      std::string gateName;
      if (check(TokenKind::KwU)) {
        gateName = "U";
        advanceToken();
      } else if (check(TokenKind::KwCX)) {
        gateName = "CX";
        advanceToken();
      } else {
        gateName = expect(TokenKind::Identifier, "as gate name").text;
      }
      decl.body.push_back(parseCallTail(std::move(gateName), true));
    }
    expect(TokenKind::RBrace, "to close gate body");
  }
  if (gateDecls.contains(name.text)) {
    throw ParseError("redefinition of gate '" + name.text + "'", name.line,
                     name.col);
  }
  gateDecls.emplace(name.text, std::move(decl));
}

Parser::Operand Parser::parseOperand(bool inGateBody) {
  Operand op;
  op.line = cur.line;
  op.col = cur.col;
  op.reg = expect(TokenKind::Identifier, "as operand").text;
  if (accept(TokenKind::LBracket)) {
    if (inGateBody) {
      throw ParseError("indexed operands are not allowed inside gate bodies",
                       op.line, op.col);
    }
    const Token idx = expect(TokenKind::Integer, "as operand index");
    expect(TokenKind::RBracket, "after operand index");
    op.indexed = true;
    op.index = idx.intValue;
  }
  return op;
}

Parser::GateCall Parser::parseCallTail(std::string gateName, bool inGateBody) {
  GateCall call;
  call.name = std::move(gateName);
  call.line = cur.line;
  call.col = cur.col;
  if (accept(TokenKind::LParen)) {
    if (!check(TokenKind::RParen)) {
      do {
        call.params.push_back(parseExpr());
      } while (accept(TokenKind::Comma));
    }
    expect(TokenKind::RParen, "after gate parameters");
  }
  do {
    call.operands.push_back(parseOperand(inGateBody));
  } while (accept(TokenKind::Comma));
  expect(TokenKind::Semicolon, "after gate call");
  return call;
}

// --- expressions --------------------------------------------------------------

ExprPtr Parser::parseExpr() { return parseAddSub(); }

ExprPtr Parser::parseAddSub() {
  ExprPtr lhs = parseMulDiv();
  while (check(TokenKind::Plus) || check(TokenKind::Minus)) {
    const bool add = check(TokenKind::Plus);
    advanceToken();
    auto node = std::make_unique<Expr>();
    node->kind = add ? Expr::Kind::Add : Expr::Kind::Sub;
    node->lhs = std::move(lhs);
    node->rhs = parseMulDiv();
    lhs = std::move(node);
  }
  return lhs;
}

ExprPtr Parser::parseMulDiv() {
  ExprPtr lhs = parseUnary();
  while (check(TokenKind::Star) || check(TokenKind::Slash)) {
    const bool mul = check(TokenKind::Star);
    advanceToken();
    auto node = std::make_unique<Expr>();
    node->kind = mul ? Expr::Kind::Mul : Expr::Kind::Div;
    node->lhs = std::move(lhs);
    node->rhs = parseUnary();
    lhs = std::move(node);
  }
  return lhs;
}

// Unary minus binds looser than '^', so -pi^2 parses as -(pi^2).
ExprPtr Parser::parseUnary() {
  if (accept(TokenKind::Minus)) {
    auto node = std::make_unique<Expr>();
    node->kind = Expr::Kind::Neg;
    node->lhs = parseUnary();
    return node;
  }
  if (accept(TokenKind::Plus)) {
    return parseUnary();
  }
  return parsePow();
}

ExprPtr Parser::parsePow() {
  ExprPtr lhs = parsePrimary();
  if (check(TokenKind::Caret)) {
    advanceToken();
    auto node = std::make_unique<Expr>();
    node->kind = Expr::Kind::Pow;
    node->lhs = std::move(lhs);
    node->rhs = parseUnary(); // right-associative, signed exponents allowed
    return node;
  }
  return lhs;
}

ExprPtr Parser::parsePrimary() {
  if (check(TokenKind::Real) || check(TokenKind::Integer)) {
    auto node = std::make_unique<Expr>();
    node->kind = Expr::Kind::Number;
    node->number = cur.realValue;
    advanceToken();
    return node;
  }
  if (accept(TokenKind::KwPi)) {
    auto node = std::make_unique<Expr>();
    node->kind = Expr::Kind::Pi;
    return node;
  }
  if (accept(TokenKind::LParen)) {
    ExprPtr inner = parseExpr();
    expect(TokenKind::RParen, "in parameter expression");
    return inner;
  }
  if (check(TokenKind::Identifier)) {
    const std::string name = cur.text;
    const std::size_t line = cur.line;
    const std::size_t col = cur.col;
    advanceToken();
    static const std::map<std::string, Expr::Kind> FUNCS = {
        {"sin", Expr::Kind::Sin}, {"cos", Expr::Kind::Cos},
        {"tan", Expr::Kind::Tan}, {"exp", Expr::Kind::Exp},
        {"ln", Expr::Kind::Ln},   {"sqrt", Expr::Kind::Sqrt}};
    if (const auto it = FUNCS.find(name); it != FUNCS.end()) {
      expect(TokenKind::LParen, "after function name");
      auto node = std::make_unique<Expr>();
      node->kind = it->second;
      node->lhs = parseExpr();
      expect(TokenKind::RParen, "after function argument");
      return node;
    }
    auto node = std::make_unique<Expr>();
    node->kind = Expr::Kind::Param;
    node->param = name;
    (void)line;
    (void)col;
    return node;
  }
  fail("expected parameter expression");
}

// --- statements -----------------------------------------------------------------

void Parser::parseMeasure() {
  advanceToken();
  const Operand qop = parseOperand(false);
  expect(TokenKind::Arrow, "in measure statement");
  const Operand cop = parseOperand(false);
  expect(TokenKind::Semicolon, "after measure statement");
  const auto qubits = resolveQubit(qop);
  const auto clbits = resolveClbit(cop);
  if (qubits.size() != clbits.size()) {
    throw ParseError("measure: register size mismatch", qop.line, qop.col);
  }
  qc.emplaceBack(std::make_unique<ir::NonUnitaryOperation>(qubits, clbits));
}

void Parser::parseReset() {
  advanceToken();
  const Operand op = parseOperand(false);
  expect(TokenKind::Semicolon, "after reset statement");
  qc.emplaceBack(std::make_unique<ir::NonUnitaryOperation>(ir::OpType::Reset,
                                                           resolveQubit(op)));
}

void Parser::parseBarrier() {
  advanceToken();
  std::vector<Qubit> qubits;
  if (!check(TokenKind::Semicolon)) {
    do {
      const auto resolved = resolveQubit(parseOperand(false));
      qubits.insert(qubits.end(), resolved.begin(), resolved.end());
    } while (accept(TokenKind::Comma));
  } else {
    for (std::size_t k = 0; k < qc.numQubits(); ++k) {
      qubits.push_back(static_cast<Qubit>(k));
    }
  }
  expect(TokenKind::Semicolon, "after barrier statement");
  qc.emplaceBack(std::make_unique<ir::NonUnitaryOperation>(
      ir::OpType::Barrier, std::move(qubits)));
}

void Parser::parseIf() {
  advanceToken();
  expect(TokenKind::LParen, "after if");
  const Token reg = expect(TokenKind::Identifier, "as classical register");
  expect(TokenKind::Equals, "in if condition");
  const Token value = expect(TokenKind::Integer, "as comparison value");
  expect(TokenKind::RParen, "after if condition");

  const ir::Register* creg = qc.classicalRegister(reg.text);
  if (creg == nullptr) {
    throw ParseError("unknown classical register '" + reg.text + "'",
                     reg.line, reg.col);
  }

  // the controlled operation: a gate call
  std::string gateName;
  if (check(TokenKind::KwU)) {
    gateName = "U";
    advanceToken();
  } else if (check(TokenKind::KwCX)) {
    gateName = "CX";
    advanceToken();
  } else {
    gateName = expect(TokenKind::Identifier, "as gate name after if").text;
  }
  const GateCall call = parseCallTail(std::move(gateName), false);
  emitCall(call, [&](std::unique_ptr<ir::Operation> op) {
    qc.classicControlled(std::move(op), creg->start, creg->size,
                         value.intValue);
  });
}

void Parser::parseGateCall() {
  std::string gateName;
  if (check(TokenKind::KwU)) {
    gateName = "U";
    advanceToken();
  } else if (check(TokenKind::KwCX)) {
    gateName = "CX";
    advanceToken();
  } else {
    gateName = cur.text;
    advanceToken();
  }
  // Multi-control prefix `c(N) gate ...` — the form the OpenQASM writer
  // emits for gates with more controls than qelib1 covers.
  std::size_t extraControls = 0;
  if (gateName == "c" && check(TokenKind::LParen)) {
    advanceToken();
    const Token count = expect(TokenKind::Integer, "as control count");
    expect(TokenKind::RParen, "after control count");
    extraControls = count.intValue;
    if (extraControls == 0) {
      fail("control count must be positive");
    }
    if (check(TokenKind::KwU)) {
      gateName = "U";
      advanceToken();
    } else if (check(TokenKind::KwCX)) {
      gateName = "CX";
      advanceToken();
    } else {
      gateName = expect(TokenKind::Identifier, "as controlled gate").text;
    }
  }
  GateCall call = parseCallTail(std::move(gateName), false);
  call.extraControls = extraControls;
  emitCall(call, [&](std::unique_ptr<ir::Operation> op) {
    qc.emplaceBack(std::move(op));
  });
}

// --- resolution & expansion --------------------------------------------------------

std::vector<Qubit> Parser::resolveQubit(const Operand& op) const {
  for (const auto& r : qc.qubitRegisters()) {
    if (r.name != op.reg) {
      continue;
    }
    if (op.indexed) {
      if (op.index >= r.size) {
        throw ParseError("qubit index out of range for register '" + op.reg +
                             "'",
                         op.line, op.col);
      }
      return {static_cast<Qubit>(r.start + op.index)};
    }
    std::vector<Qubit> all;
    for (std::size_t k = 0; k < r.size; ++k) {
      all.push_back(static_cast<Qubit>(r.start + k));
    }
    return all;
  }
  throw ParseError("unknown quantum register '" + op.reg + "'", op.line,
                   op.col);
}

std::vector<std::size_t> Parser::resolveClbit(const Operand& op) const {
  for (const auto& r : qc.classicalRegisters()) {
    if (r.name != op.reg) {
      continue;
    }
    if (op.indexed) {
      if (op.index >= r.size) {
        throw ParseError("bit index out of range for register '" + op.reg +
                             "'",
                         op.line, op.col);
      }
      return {r.start + op.index};
    }
    std::vector<std::size_t> all;
    for (std::size_t k = 0; k < r.size; ++k) {
      all.push_back(r.start + k);
    }
    return all;
  }
  throw ParseError("unknown classical register '" + op.reg + "'", op.line,
                   op.col);
}

void Parser::emitCall(
    const GateCall& call,
    const std::function<void(std::unique_ptr<ir::Operation>)>& sink) {
  // Resolve operands (with broadcasting over same-size registers).
  std::vector<std::vector<Qubit>> resolved;
  std::size_t broadcast = 1;
  for (const auto& op : call.operands) {
    resolved.push_back(resolveQubit(op));
    if (resolved.back().size() > 1) {
      if (broadcast != 1 && resolved.back().size() != broadcast) {
        throw ParseError("register size mismatch in broadcast", op.line,
                         op.col);
      }
      broadcast = resolved.back().size();
    }
  }
  std::map<std::string, double> emptyEnv;
  for (std::size_t b = 0; b < broadcast; ++b) {
    std::vector<Qubit> qubits;
    qubits.reserve(resolved.size());
    for (const auto& r : resolved) {
      qubits.push_back(r.size() == 1 ? r[0] : r[b]);
    }
    // duplicate-operand check
    for (std::size_t i = 0; i < qubits.size(); ++i) {
      for (std::size_t j = i + 1; j < qubits.size(); ++j) {
        if (qubits[i] == qubits[j]) {
          throw ParseError("duplicate qubit operand in gate call", call.line,
                           call.col);
        }
      }
    }
    expandCall(call, qubits, emptyEnv, sink);
  }
}

void Parser::expandCall(
    const GateCall& call, const std::vector<Qubit>& qubits,
    const std::map<std::string, double>& env,
    const std::function<void(std::unique_ptr<ir::Operation>)>& sink) {
  std::vector<double> params;
  params.reserve(call.params.size());
  for (const auto& p : call.params) {
    params.push_back(evaluate(*p, env, call.line, call.col));
  }
  if (call.name == "barrier") {
    sink(std::make_unique<ir::NonUnitaryOperation>(ir::OpType::Barrier,
                                                   qubits));
    return;
  }
  if (tryBuiltin(call.name, params, qubits, call.extraControls, call.line,
                 call.col, sink)) {
    return;
  }
  if (call.extraControls > 0) {
    throw ParseError("the c(N) control prefix only applies to builtin gates",
                     call.line, call.col);
  }
  const auto it = gateDecls.find(call.name);
  if (it == gateDecls.end()) {
    throw ParseError("unknown gate '" + call.name + "'", call.line, call.col);
  }
  const GateDecl& decl = it->second;
  if (decl.opaque) {
    throw ParseError("cannot apply opaque gate '" + call.name + "'",
                     call.line, call.col);
  }
  if (params.size() != decl.paramNames.size()) {
    throw ParseError("gate '" + call.name + "' expects " +
                         std::to_string(decl.paramNames.size()) +
                         " parameter(s)",
                     call.line, call.col);
  }
  if (qubits.size() != decl.argNames.size()) {
    throw ParseError("gate '" + call.name + "' expects " +
                         std::to_string(decl.argNames.size()) + " operand(s)",
                     call.line, call.col);
  }
  std::map<std::string, double> innerEnv;
  for (std::size_t k = 0; k < params.size(); ++k) {
    innerEnv[decl.paramNames[k]] = params[k];
  }
  std::map<std::string, Qubit> argMap;
  for (std::size_t k = 0; k < qubits.size(); ++k) {
    argMap[decl.argNames[k]] = qubits[k];
  }
  // Expand the body into a labelled compound operation, so that steppers and
  // visualizers treat one source-level gate as one step (as the tool does).
  auto compound = std::make_unique<ir::CompoundOperation>(call.name);
  for (const auto& bodyCall : decl.body) {
    std::vector<Qubit> bodyQubits;
    bodyQubits.reserve(bodyCall.operands.size());
    for (const auto& formal : bodyCall.operands) {
      const auto mapped = argMap.find(formal.reg);
      if (mapped == argMap.end()) {
        throw ParseError("unknown gate argument '" + formal.reg + "'",
                         formal.line, formal.col);
      }
      bodyQubits.push_back(mapped->second);
    }
    expandCall(bodyCall, bodyQubits, innerEnv,
               [&](std::unique_ptr<ir::Operation> op) {
                 compound->emplaceBack(std::move(op));
               });
  }
  if (compound->size() == 1) {
    // single-operation gates need no grouping
    sink(compound->operations().front()->clone());
  } else {
    sink(std::move(compound));
  }
}

bool Parser::tryBuiltin(
    const std::string& name, const std::vector<double>& params,
    const std::vector<Qubit>& qubits, std::size_t extraControls,
    std::size_t line, std::size_t col,
    const std::function<void(std::unique_ptr<ir::Operation>)>& sink) {
  using ir::OpType;
  using ir::StandardOperation;

  struct Builtin {
    OpType type;
    std::size_t numParams;
    std::size_t numControls;
    std::size_t numTargets;
  };
  static const std::map<std::string, Builtin> BUILTINS = {
      {"U", {OpType::U3, 3, 0, 1}},      {"u3", {OpType::U3, 3, 0, 1}},
      {"u2", {OpType::U2, 2, 0, 1}},     {"u1", {OpType::Phase, 1, 0, 1}},
      {"p", {OpType::Phase, 1, 0, 1}},   {"id", {OpType::I, 0, 0, 1}},
      {"x", {OpType::X, 0, 0, 1}},       {"y", {OpType::Y, 0, 0, 1}},
      {"z", {OpType::Z, 0, 0, 1}},       {"h", {OpType::H, 0, 0, 1}},
      {"s", {OpType::S, 0, 0, 1}},       {"sdg", {OpType::Sdg, 0, 0, 1}},
      {"t", {OpType::T, 0, 0, 1}},       {"tdg", {OpType::Tdg, 0, 0, 1}},
      {"sx", {OpType::SX, 0, 0, 1}},     {"sxdg", {OpType::SXdg, 0, 0, 1}},
      {"v", {OpType::V, 0, 0, 1}},       {"vdg", {OpType::Vdg, 0, 0, 1}},
      {"rx", {OpType::RX, 1, 0, 1}},     {"ry", {OpType::RY, 1, 0, 1}},
      {"rz", {OpType::RZ, 1, 0, 1}},     {"CX", {OpType::X, 0, 1, 1}},
      {"cx", {OpType::X, 0, 1, 1}},      {"cy", {OpType::Y, 0, 1, 1}},
      {"cz", {OpType::Z, 0, 1, 1}},      {"ch", {OpType::H, 0, 1, 1}},
      {"cs", {OpType::S, 0, 1, 1}},      {"csdg", {OpType::Sdg, 0, 1, 1}},
      {"crx", {OpType::RX, 1, 1, 1}},    {"cry", {OpType::RY, 1, 1, 1}},
      {"crz", {OpType::RZ, 1, 1, 1}},    {"cp", {OpType::Phase, 1, 1, 1}},
      {"cu1", {OpType::Phase, 1, 1, 1}}, {"cu3", {OpType::U3, 3, 1, 1}},
      {"ccx", {OpType::X, 0, 2, 1}},     {"swap", {OpType::SWAP, 0, 0, 2}},
      {"cswap", {OpType::SWAP, 0, 1, 2}},
      {"iswap", {OpType::iSWAP, 0, 0, 2}},
      {"iswapdg", {OpType::iSWAPdg, 0, 0, 2}},
      {"dcx", {OpType::DCX, 0, 0, 2}},
  };
  const auto it = BUILTINS.find(name);
  if (it == BUILTINS.end()) {
    return false;
  }
  const Builtin& b = it->second;
  const std::size_t numControls = b.numControls + extraControls;
  if (params.size() != b.numParams) {
    throw ParseError("gate '" + name + "' expects " +
                         std::to_string(b.numParams) + " parameter(s)",
                     line, col);
  }
  if (qubits.size() != numControls + b.numTargets) {
    throw ParseError("gate '" + name + "' expects " +
                         std::to_string(numControls + b.numTargets) +
                         " operand(s)",
                     line, col);
  }
  QubitControls controls;
  for (std::size_t k = 0; k < numControls; ++k) {
    controls.push_back({qubits[k], true});
  }
  std::vector<Qubit> targets(qubits.begin() +
                                 static_cast<std::ptrdiff_t>(numControls),
                             qubits.end());
  sink(std::make_unique<StandardOperation>(b.type, controls,
                                           std::move(targets), params));
  return true;
}

} // namespace detail
} // namespace qdd::qasm
