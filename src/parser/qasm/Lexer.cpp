#include "qdd/parser/qasm/Lexer.hpp"

#include <cctype>
#include <cstdlib>
#include <unordered_map>

namespace qdd::qasm {

std::string toString(TokenKind k) {
  switch (k) {
  case TokenKind::EndOfFile:
    return "end of file";
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::Real:
    return "real literal";
  case TokenKind::Integer:
    return "integer literal";
  case TokenKind::StringLiteral:
    return "string literal";
  case TokenKind::KwOpenqasm:
    return "'OPENQASM'";
  case TokenKind::KwInclude:
    return "'include'";
  case TokenKind::KwQreg:
    return "'qreg'";
  case TokenKind::KwCreg:
    return "'creg'";
  case TokenKind::KwGate:
    return "'gate'";
  case TokenKind::KwOpaque:
    return "'opaque'";
  case TokenKind::KwMeasure:
    return "'measure'";
  case TokenKind::KwReset:
    return "'reset'";
  case TokenKind::KwBarrier:
    return "'barrier'";
  case TokenKind::KwIf:
    return "'if'";
  case TokenKind::KwPi:
    return "'pi'";
  case TokenKind::KwU:
    return "'U'";
  case TokenKind::KwCX:
    return "'CX'";
  case TokenKind::Semicolon:
    return "';'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::LBracket:
    return "'['";
  case TokenKind::RBracket:
    return "']'";
  case TokenKind::Arrow:
    return "'->'";
  case TokenKind::Equals:
    return "'=='";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::Slash:
    return "'/'";
  case TokenKind::Caret:
    return "'^'";
  }
  return "unknown token";
}

Lexer::Lexer(std::string source) : src(std::move(source)) {}

char Lexer::peek(std::size_t ahead) const {
  return pos + ahead < src.size() ? src[pos + ahead] : '\0';
}

char Lexer::advance() {
  const char c = peek();
  ++pos;
  if (c == '\n') {
    ++line;
    col = 1;
  } else {
    ++col;
  }
  return c;
}

void Lexer::skipWhitespaceAndComments() {
  while (true) {
    const char c = peek();
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance();
    } else if (c == '/' && peek(1) == '/') {
      while (peek() != '\n' && peek() != '\0') {
        advance();
      }
    } else {
      return;
    }
  }
}

Token Lexer::makeToken(TokenKind k) const {
  Token t;
  t.kind = k;
  t.line = tokLine;
  t.col = tokCol;
  return t;
}

Token Lexer::next() {
  skipWhitespaceAndComments();
  tokLine = line;
  tokCol = col;
  const char c = peek();
  if (c == '\0') {
    return makeToken(TokenKind::EndOfFile);
  }
  if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
      (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))) != 0)) {
    return lexNumber();
  }
  if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
    return lexIdentifierOrKeyword();
  }
  if (c == '"') {
    return lexString();
  }
  advance();
  switch (c) {
  case ';':
    return makeToken(TokenKind::Semicolon);
  case ',':
    return makeToken(TokenKind::Comma);
  case '(':
    return makeToken(TokenKind::LParen);
  case ')':
    return makeToken(TokenKind::RParen);
  case '{':
    return makeToken(TokenKind::LBrace);
  case '}':
    return makeToken(TokenKind::RBrace);
  case '[':
    return makeToken(TokenKind::LBracket);
  case ']':
    return makeToken(TokenKind::RBracket);
  case '+':
    return makeToken(TokenKind::Plus);
  case '*':
    return makeToken(TokenKind::Star);
  case '/':
    return makeToken(TokenKind::Slash);
  case '^':
    return makeToken(TokenKind::Caret);
  case '-':
    if (peek() == '>') {
      advance();
      return makeToken(TokenKind::Arrow);
    }
    return makeToken(TokenKind::Minus);
  case '=':
    if (peek() == '=') {
      advance();
      return makeToken(TokenKind::Equals);
    }
    throw ParseError("unexpected '='; did you mean '=='?", tokLine, tokCol);
  default:
    throw ParseError(std::string("unexpected character '") + c + "'", tokLine,
                     tokCol);
  }
}

Token Lexer::lexNumber() {
  std::string text;
  bool isReal = false;
  while (std::isdigit(static_cast<unsigned char>(peek())) != 0) {
    text += advance();
  }
  if (peek() == '.') {
    isReal = true;
    text += advance();
    while (std::isdigit(static_cast<unsigned char>(peek())) != 0) {
      text += advance();
    }
  }
  if (peek() == 'e' || peek() == 'E') {
    isReal = true;
    text += advance();
    if (peek() == '+' || peek() == '-') {
      text += advance();
    }
    if (std::isdigit(static_cast<unsigned char>(peek())) == 0) {
      throw ParseError("malformed exponent in numeric literal", tokLine,
                       tokCol);
    }
    while (std::isdigit(static_cast<unsigned char>(peek())) != 0) {
      text += advance();
    }
  }
  Token t = makeToken(isReal ? TokenKind::Real : TokenKind::Integer);
  t.text = text;
  if (isReal) {
    t.realValue = std::strtod(text.c_str(), nullptr);
  } else {
    t.intValue = std::strtoull(text.c_str(), nullptr, 10);
    t.realValue = static_cast<double>(t.intValue);
  }
  return t;
}

Token Lexer::lexIdentifierOrKeyword() {
  std::string text;
  while (std::isalnum(static_cast<unsigned char>(peek())) != 0 ||
         peek() == '_') {
    text += advance();
  }
  static const std::unordered_map<std::string, TokenKind> KEYWORDS = {
      {"OPENQASM", TokenKind::KwOpenqasm},
      {"include", TokenKind::KwInclude},
      {"qreg", TokenKind::KwQreg},
      {"creg", TokenKind::KwCreg},
      {"gate", TokenKind::KwGate},
      {"opaque", TokenKind::KwOpaque},
      {"measure", TokenKind::KwMeasure},
      {"reset", TokenKind::KwReset},
      {"barrier", TokenKind::KwBarrier},
      {"if", TokenKind::KwIf},
      {"pi", TokenKind::KwPi},
      {"U", TokenKind::KwU},
      {"CX", TokenKind::KwCX},
  };
  Token t;
  if (const auto it = KEYWORDS.find(text); it != KEYWORDS.end()) {
    t = makeToken(it->second);
  } else {
    t = makeToken(TokenKind::Identifier);
  }
  t.text = text;
  return t;
}

Token Lexer::lexString() {
  advance(); // opening quote
  std::string text;
  while (peek() != '"') {
    if (peek() == '\0' || peek() == '\n') {
      throw ParseError("unterminated string literal", tokLine, tokCol);
    }
    text += advance();
  }
  advance(); // closing quote
  Token t = makeToken(TokenKind::StringLiteral);
  t.text = text;
  return t;
}

} // namespace qdd::qasm
