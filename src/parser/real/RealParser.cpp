#include "qdd/parser/real/RealParser.hpp"

#include "qdd/obs/Obs.hpp"

#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace qdd::real {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& message) {
  throw std::runtime_error("real:" + std::to_string(line) + ": " + message);
}

std::vector<std::string> tokenize(const std::string& text) {
  std::istringstream ss(text);
  std::vector<std::string> tokens;
  std::string tok;
  while (ss >> tok) {
    tokens.push_back(tok);
  }
  return tokens;
}

} // namespace

ir::QuantumComputation parse(const std::string& source,
                             const std::string& name) {
  obs::ScopedSpan span("parser", "real.parse");
  ir::QuantumComputation qc;
  qc.setName(name);

  std::map<std::string, Qubit> variables;
  std::size_t numvars = 0;
  bool inBody = false;
  bool ended = false;

  std::istringstream in(source);
  std::string lineText;
  std::size_t lineNo = 0;
  while (std::getline(in, lineText)) {
    ++lineNo;
    // strip comments
    if (const auto hash = lineText.find('#'); hash != std::string::npos) {
      lineText.resize(hash);
    }
    const auto tokens = tokenize(lineText);
    if (tokens.empty() || ended) {
      continue;
    }
    const std::string& head = tokens[0];

    if (head[0] == '.') {
      if (head == ".version" || head == ".inputs" || head == ".outputs" ||
          head == ".constants" || head == ".garbage" ||
          head == ".inputbus" || head == ".outputbus" || head == ".define") {
        continue; // metadata we do not act on
      }
      if (head == ".numvars") {
        if (tokens.size() != 2) {
          fail(lineNo, ".numvars expects one argument");
        }
        numvars = std::stoul(tokens[1]);
        if (numvars == 0) {
          fail(lineNo, "number of variables must be positive");
        }
        qc.addQubitRegister(numvars, "q");
        continue;
      }
      if (head == ".variables") {
        if (numvars == 0) {
          fail(lineNo, ".variables before .numvars");
        }
        if (tokens.size() != numvars + 1) {
          fail(lineNo, "variable count does not match .numvars");
        }
        for (std::size_t k = 1; k < tokens.size(); ++k) {
          // first variable = topmost line = most-significant qubit
          const auto q = static_cast<Qubit>(numvars - k);
          if (!variables.emplace(tokens[k], q).second) {
            fail(lineNo, "duplicate variable '" + tokens[k] + "'");
          }
        }
        continue;
      }
      if (head == ".begin") {
        if (variables.empty()) {
          fail(lineNo, ".begin before variable declarations");
        }
        inBody = true;
        continue;
      }
      if (head == ".end") {
        ended = true;
        continue;
      }
      fail(lineNo, "unknown directive '" + head + "'");
    }

    if (!inBody) {
      fail(lineNo, "gate line before .begin");
    }

    // gate line: mnemonic operand...
    const std::string& mnemonic = head;
    QubitControls controls;
    std::vector<Qubit> operands;
    for (std::size_t k = 1; k < tokens.size(); ++k) {
      std::string var = tokens[k];
      bool positive = true;
      if (!var.empty() && var[0] == '-') {
        positive = false;
        var = var.substr(1);
      }
      const auto it = variables.find(var);
      if (it == variables.end()) {
        fail(lineNo, "unknown variable '" + var + "'");
      }
      operands.push_back(it->second);
      if (!positive) {
        // remember polarity positionally; resolved below
        controls.push_back({it->second, false});
      }
    }
    const auto isNegative = [&](Qubit q) {
      for (const auto& c : controls) {
        if (c.qubit == q) {
          return true;
        }
      }
      return false;
    };

    const auto makeControls = [&](std::size_t count) {
      QubitControls cs;
      for (std::size_t k = 0; k < count; ++k) {
        cs.push_back({operands[k], !isNegative(operands[k])});
      }
      return cs;
    };

    if (mnemonic.size() >= 2 && mnemonic[0] == 't') {
      const std::size_t arity = std::stoul(mnemonic.substr(1));
      if (arity == 0 || operands.size() != arity) {
        fail(lineNo, "gate '" + mnemonic + "' expects " +
                         std::to_string(arity) + " operands");
      }
      qc.addStandard(ir::OpType::X, makeControls(arity - 1),
                     {operands[arity - 1]});
      continue;
    }
    if (mnemonic.size() >= 2 && mnemonic[0] == 'f') {
      const std::size_t arity = std::stoul(mnemonic.substr(1));
      if (arity < 2 || operands.size() != arity) {
        fail(lineNo, "gate '" + mnemonic + "' expects " +
                         std::to_string(arity) + " operands");
      }
      qc.addStandard(ir::OpType::SWAP, makeControls(arity - 2),
                     {operands[arity - 2], operands[arity - 1]});
      continue;
    }
    if (mnemonic == "v" || mnemonic == "v+") {
      if (operands.size() < 1) {
        fail(lineNo, "gate 'v' expects at least one operand");
      }
      qc.addStandard(mnemonic == "v" ? ir::OpType::V : ir::OpType::Vdg,
                     makeControls(operands.size() - 1), {operands.back()});
      continue;
    }
    fail(lineNo, "unsupported gate '" + mnemonic + "'");
  }
  if (inBody && !ended) {
    fail(lineNo, "missing .end");
  }
  if (qc.numQubits() == 0) {
    fail(lineNo, "no variables declared");
  }
  return qc;
}

ir::QuantumComputation parseFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open file: " + path);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  std::string name = path;
  if (const auto slash = name.find_last_of('/'); slash != std::string::npos) {
    name = name.substr(slash + 1);
  }
  if (const auto dot = name.find_last_of('.'); dot != std::string::npos) {
    name = name.substr(0, dot);
  }
  return parse(ss.str(), name);
}

} // namespace qdd::real
