// qdd-tool: console counterpart of the paper's web tool
// (https://iic.jku.at/eda/research/quantum_dd/tool), substituting the
// browser UI with a terminal REPL (see DESIGN.md). Three modes mirror the
// tool's tabs:
//
//   qdd-tool sim <circuit.{qasm,real}>        interactive simulation
//   qdd-tool verify <left.qasm> <right.qasm>  interactive verification
//   qdd-tool show <circuit.{qasm,real}>       one-shot: final DD + exports
//
// Interactive commands (simulation):
//   f / step      step one operation forward        (the -> button)
//   b / back      step one operation backward       (the <- button)
//   e / end       run to end or next breakpoint     (the >>| button)
//   s / start     rewind to the start               (the |<< button)
//   d / dd        print the current DD
//   v / state     print the state in Dirac notation
//   x / export    write dd.dot / dd.svg / dd.json
//   q / quit
//
// Measurement/reset outcomes are resolved via a prompt showing the
// probabilities — the console version of the tool's pop-up dialog.

#include "qdd/bridge/DDBuilder.hpp"
#include "qdd/exec/Batch.hpp"
#include "qdd/exec/DDForker.hpp"
#include "qdd/exec/Portfolio.hpp"
#include "qdd/exec/ThreadPool.hpp"
#include "qdd/ir/Builders.hpp"
#include "qdd/ir/Mapping.hpp"
#include "qdd/obs/Obs.hpp"
#include "qdd/obs/Sinks.hpp"
#include "qdd/parser/qasm/Parser.hpp"
#include "qdd/parser/real/RealParser.hpp"
#include "qdd/service/Api.hpp"
#include "qdd/service/HttpServer.hpp"
#include "qdd/synth/Synthesis.hpp"
#include "qdd/sim/SimulationSession.hpp"
#include "qdd/verify/VerificationSession.hpp"
#include "qdd/viz/CircuitDiagram.hpp"
#include "qdd/viz/DotExporter.hpp"
#include "qdd/viz/TraceExporter.hpp"
#include "qdd/viz/JsonExporter.hpp"
#include "qdd/viz/SvgExporter.hpp"
#include "qdd/viz/TextDump.hpp"

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <thread>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

namespace {

using namespace qdd;

/// Set by the global --stats flag: dump the package's statistics registry
/// (unique/compute/real-table counters, GC generations) as JSON on exit.
bool statsRequested = false;

/// Set by the global `--out <path>` flag: where machine-readable JSON goes.
/// Output hygiene contract: stdout carries only the human-readable summaries,
/// machine-readable JSON goes to `--out` when given and to stderr otherwise,
/// so piping stdout never mixes formats.
std::string outPath;

/// Writes a stats registry JSON to the machine-readable channel. Throws on
/// IO failure (surfaces as a nonzero exit code in main).
void maybePrintStats(const mem::StatsRegistry& stats) {
  if (!statsRequested) {
    return;
  }
  const std::string json = stats.toJson();
  if (outPath.empty()) {
    std::fprintf(stderr, "%s\n", json.c_str());
    return;
  }
  std::ofstream out(outPath);
  if (!out) {
    throw std::runtime_error("cannot open --out file for writing: " + outPath);
  }
  out << json << "\n";
  if (!out) {
    throw std::runtime_error("failed writing --out file: " + outPath);
  }
}

void maybePrintStats(const Package& pkg) {
  if (statsRequested) {
    maybePrintStats(pkg.statistics());
  }
}

ir::QuantumComputation load(const std::string& path) {
  if (path.size() >= 5 && path.substr(path.size() - 5) == ".real") {
    return real::parseFile(path);
  }
  return qasm::parseFile(path);
}

void exportAll(const viz::Graph& g, const std::string& prefix) {
  viz::DotExporter({.style = viz::Style::Classic}).writeFile(prefix + ".dot",
                                                             g);
  viz::SvgExporter({.style = viz::Style::Classic,
                    .edgeLabels = false,
                    .colored = true,
                    .magnitudeThickness = true})
      .writeFile(prefix + ".svg", g);
  viz::JsonExporter().writeFile(prefix + ".json", g);
  std::printf("wrote %s.dot, %s.svg, %s.json\n", prefix.c_str(),
              prefix.c_str(), prefix.c_str());
}

int promptOutcome(Qubit q, double p0, double p1) {
  std::printf("qubit q%d is in superposition:\n"
              "  [0] measure |0>  (probability %.2f%%)\n"
              "  [1] measure |1>  (probability %.2f%%)\n"
              "choice> ",
              q, 100. * p0, 100. * p1);
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line == "0" || line == "1") {
      return line[0] - '0';
    }
    std::printf("please answer 0 or 1> ");
  }
  return p1 >= p0 ? 1 : 0; // EOF: deterministic fallback
}

void printState(Package& pkg, const vEdge& state) {
  std::printf("state: %s  (%zu nodes)\n",
              viz::toDirac(pkg, state).c_str(), Package::size(state));
}

int runSim(const std::string& path) {
  const auto qc = load(path);
  std::printf("loaded '%s': %zu qubits, %zu operations\n", path.c_str(),
              qc.numQubits(), qc.size());
  std::printf("%s\n", viz::circuitToAscii(qc).c_str());
  Package pkg(qc.numQubits());
  exec::attachSharedForker(pkg);
  sim::SimulationSession session(qc, pkg);
  session.setOutcomeChooser(promptOutcome);

  printState(pkg, session.state());
  std::printf("(f)orward (b)ack (e)nd (s)tart (d)d (v)state e(x)port "
              "(q)uit\n");
  std::string line;
  std::printf("> ");
  while (std::getline(std::cin, line)) {
    if (line.empty()) {
      std::printf("> ");
      continue;
    }
    const char c = line[0];
    if (c == 'q') {
      break;
    }
    switch (c) {
    case 'f': {
      if (const auto* op = session.nextOperation()) {
        std::printf("applying: %s\n", op->name().c_str());
      }
      if (!session.stepForward()) {
        std::printf("(already at the end)\n");
      }
      printState(pkg, session.state());
      break;
    }
    case 'b':
      if (!session.stepBackward()) {
        std::printf("(already at the start)\n");
      }
      printState(pkg, session.state());
      break;
    case 'e': {
      const std::size_t steps = session.runToEnd();
      std::printf("advanced %zu operation(s); position %zu/%zu\n", steps,
                  session.position(), session.numOperations());
      printState(pkg, session.state());
      break;
    }
    case 's':
      session.runToStart();
      printState(pkg, session.state());
      break;
    case 'd':
      std::printf("%s",
                  viz::asciiDump(viz::buildGraph(session.state())).c_str());
      break;
    case 'v':
      printState(pkg, session.state());
      break;
    case 'x':
      exportAll(viz::buildGraph(session.state()), "dd");
      break;
    default:
      std::printf("unknown command '%c'\n", c);
      break;
    }
    std::printf("> ");
  }
  maybePrintStats(pkg);
  return 0;
}

int runVerify(const std::string& leftPath, const std::string& rightPath) {
  const auto left = load(leftPath);
  const auto right = load(rightPath);
  std::printf("left  '%s': %zu qubits, %zu operations\n", leftPath.c_str(),
              left.numQubits(), left.size());
  std::printf("right '%s': %zu qubits, %zu operations\n", rightPath.c_str(),
              right.numQubits(), right.size());
  Package pkg(left.numQubits());
  exec::attachSharedForker(pkg);
  verify::VerificationSession session(left, right, pkg);
  std::printf("starting from the identity (%zu nodes)\n",
              session.currentNodes());
  std::printf("(l)eft-step (r)ight-step (R)ight-to-barrier (b)ack (a)uto "
              "(d)d e(x)port (q)uit\n");

  std::string line;
  std::printf("> ");
  while (std::getline(std::cin, line)) {
    if (line.empty()) {
      std::printf("> ");
      continue;
    }
    const char c = line[0];
    if (c == 'q') {
      break;
    }
    switch (c) {
    case 'l':
      if (!session.stepLeft()) {
        std::printf("(left circuit exhausted)\n");
      }
      break;
    case 'r':
      if (!session.stepRight()) {
        std::printf("(right circuit exhausted)\n");
      }
      break;
    case 'R':
      std::printf("applied %zu right gate(s)\n", session.runRightToBarrier());
      break;
    case 'b':
      if (!session.stepBack()) {
        std::printf("(at the start)\n");
      }
      break;
    case 'a': {
      const auto result = session.runToCompletion();
      std::printf("result: %s (peak %zu nodes)\n",
                  toString(result.equivalence).c_str(), result.maxNodes);
      break;
    }
    case 'd':
      std::printf("%s",
                  viz::asciiDump(viz::buildGraph(session.state())).c_str());
      break;
    case 'x':
      exportAll(viz::buildGraph(session.state()), "dd");
      break;
    default:
      std::printf("unknown command '%c'\n", c);
      break;
    }
    std::printf("[L %zu/%zu | R %zu/%zu] %zu nodes%s\n",
                session.leftPosition(), session.leftSize(),
                session.rightPosition(), session.rightSize(),
                session.currentNodes(),
                session.currentVerdict() ==
                        verify::Equivalence::Equivalent
                    ? " = identity"
                    : "");
    if (session.finished()) {
      std::printf("both circuits exhausted; verdict: %s\n",
                  toString(session.currentVerdict()).c_str());
    }
    std::printf("> ");
  }
  maybePrintStats(pkg);
  return 0;
}

int runMap(const std::string& path, const std::string& device) {
  const auto qc = load(path);
  ir::CouplingMap cm = ir::CouplingMap::linear(qc.numQubits());
  if (device == "ring") {
    cm = ir::CouplingMap::ring(qc.numQubits());
  } else if (device.rfind("grid", 0) == 0) {
    // gridRxC, e.g. grid2x3
    const auto xPos = device.find('x');
    if (xPos == std::string::npos) {
      std::fprintf(stderr, "grid device needs the form gridRxC\n");
      return 2;
    }
    const auto rows = std::strtoul(device.c_str() + 4, nullptr, 10);
    const auto cols = std::strtoul(device.c_str() + xPos + 1, nullptr, 10);
    cm = ir::CouplingMap::grid(rows, cols);
  } else if (device != "linear") {
    std::fprintf(stderr, "unknown device '%s' (linear | ring | gridRxC)\n",
                 device.c_str());
    return 2;
  }
  const auto result = ir::mapToCoupling(qc, cm);
  std::printf("// mapped '%s' onto %s: %zu -> %zu gates (%zu SWAPs "
              "inserted)\n",
              path.c_str(), device.c_str(), qc.gateCount(),
              result.mapped.gateCount(), result.addedSwaps);
  std::printf("%s", result.mapped.toOpenQASM().c_str());

  // verify the flow end to end (paper ref. [28])
  if (qc.isPurelyUnitary() && cm.size() == qc.numQubits()) {
    Package pkg(qc.numQubits());
  exec::attachSharedForker(pkg);
    const verify::EquivalenceChecker checker(qc,
                                             result.mappedWithRestore());
    std::printf("// verification (alternating scheme): %s\n",
                toString(checker.checkAlternating(pkg).equivalence).c_str());
  }
  return 0;
}

int runSynth(const std::string& path) {
  // the file lists the permutation images f(0) f(1) ... f(2^n - 1),
  // whitespace separated; '#' starts a comment
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::vector<std::uint64_t> perm;
  std::string line;
  while (std::getline(in, line)) {
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.resize(hash);
    }
    std::istringstream ss(line);
    std::uint64_t v = 0;
    while (ss >> v) {
      perm.push_back(v);
    }
  }
  const auto qc = synth::synthesizePermutation(perm);
  const auto stats = synth::analyze(qc);
  std::printf("// synthesized %zu-entry permutation: %zu gates (max %zu "
              "controls)\n",
              perm.size(), stats.gates, stats.maxControls);
  std::printf("%s", qc.toOpenQASM().c_str());
  // verify against the spec via canonical DDs
  Package pkg(qc.numQubits());
  exec::attachSharedForker(pkg);
  const mEdge spec = synth::buildPermutationDD(pkg, perm);
  const mEdge impl = bridge::buildFunctionality(qc, pkg);
  std::printf("// verification: %s\n",
              spec.p == impl.p && spec.w.approximatelyEquals(impl.w, 1e-9)
                  ? "cascade realizes the specification (canonical DDs)"
                  : "MISMATCH");
  return 0;
}

int runTrace(const std::string& path, const std::string& tracePath) {
  const auto qc = load(path);
  Package pkg(qc.numQubits());
  exec::attachSharedForker(pkg);
  viz::writeSimulationTrace(qc, pkg, tracePath);
  std::printf("wrote step-by-step simulation trace of '%s' (%zu operations) "
              "to %s\n",
              path.c_str(), qc.size(), tracePath.c_str());
  maybePrintStats(pkg);
  return 0;
}

/// `qdd-tool profile <circuit>`: runs the circuit once with the
/// observability layer enabled, writes a Chrome-trace-event JSON (loadable
/// by ui.perfetto.dev / chrome://tracing, with the stats registry embedded
/// as "qddStats"), and prints a per-operation latency profile to stdout.
int runProfile(const std::string& path) {
  const std::string tracePath = outPath.empty() ? "trace.json" : outPath;
  auto chrome = std::make_shared<obs::ChromeTraceSink>();
  auto agg = std::make_shared<obs::AggregatorSink>();
  auto& registry = obs::Registry::instance();
  registry.addSink(chrome);
  registry.addSink(agg);
  registry.setEnabled(true);

  int exitCode = 0;
  try {
    const auto qc = load(path); // parser spans land in the trace
    Package pkg(qc.numQubits());
  exec::attachSharedForker(pkg);
    sim::SimulationSession session(qc, pkg);
    // deterministic profile runs: always take the more probable outcome
    session.setOutcomeChooser(
        [](Qubit, double p0, double p1) { return p1 > p0 ? 1 : 0; });
    while (session.stepForward()) {
    }
    registry.setEnabled(false);

    chrome->setStatsJson(pkg.statistics().toJson(false));
    chrome->writeFile(tracePath);

    std::printf("profiled '%s': %zu qubits, %zu operations, peak %zu nodes\n",
                path.c_str(), qc.numQubits(), qc.size(), session.peakNodes());
    const mem::ApplyPathStats& apply = pkg.applyPathCounters();
    const bridge::GateDDCache& gateCache = session.gateCache();
    std::printf("apply path (%s): %zu kernel calls (%zu diagonal, %zu "
                "permutation, %zu generic), %zu fallback -> %.1f%% fast-path "
                "coverage\n",
                bridge::toString(session.applyMode()).c_str(), apply.fast(),
                apply.diagonal, apply.permutation, apply.generic,
                apply.fallback, apply.coverage() * 100.);
    if (gateCache.lookups() > 0) {
      std::printf("gate-DD cache: %zu lookups, %zu hits (%.1f%%), %zu "
                  "entries\n",
                  gateCache.lookups(), gateCache.hits(),
                  gateCache.hitRatio() * 100., gateCache.size());
    }
    std::printf("%s", agg->summaryTable().c_str());
    std::printf("wrote Chrome trace (%zu events) to %s — open in "
                "ui.perfetto.dev or chrome://tracing\n",
                chrome->eventCount(), tracePath.c_str());
    if (statsRequested) {
      // stats are embedded in the trace; --stats additionally streams them
      // to stderr (the trace file already occupies --out)
      std::fprintf(stderr, "%s\n", pkg.statistics().toJson().c_str());
    }
  } catch (...) {
    registry.setEnabled(false);
    registry.clearSinks();
    throw;
  }
  registry.clearSinks();
  return exitCode;
}

/// Shared flags of the parallel modes, parsed from the arguments after the
/// positional ones: --workers N, --shots N, --seed N.
struct ExecFlags {
  std::size_t workers = 0; ///< 0 = one per hardware thread
  std::size_t shots = 0;
  std::uint64_t seed = 0;
};

ExecFlags parseExecFlags(int argc, char** argv, int first) {
  ExecFlags flags;
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto numeric = [&](const char* what) -> std::uint64_t {
      if (i + 1 >= argc) {
        throw std::runtime_error(std::string(what) +
                                 " requires a numeric argument");
      }
      return std::strtoull(argv[++i], nullptr, 10);
    };
    if (arg == "--workers") {
      flags.workers = static_cast<std::size_t>(numeric("--workers"));
    } else if (arg == "--shots") {
      flags.shots = static_cast<std::size_t>(numeric("--shots"));
    } else if (arg == "--seed") {
      flags.seed = numeric("--seed");
    } else {
      throw std::runtime_error("unknown flag '" + arg + "'");
    }
  }
  return flags;
}

/// `qdd-tool batch <dir>`: parses and simulates every .qasm/.real file in the
/// directory across a work-stealing worker pool, one private DD package per
/// worker. Prints one summary line per file (in name order, independent of
/// scheduling) and exits nonzero if any file failed.
int runBatch(const std::string& directory, const ExecFlags& flags) {
  const auto files = exec::collectCircuitFiles(directory);
  if (files.empty()) {
    std::fprintf(stderr, "no .qasm/.real files in %s\n", directory.c_str());
    return 2;
  }
  exec::BatchOptions options;
  options.workers = flags.workers;
  options.shots = flags.shots;
  options.seed = flags.seed;
  const exec::BatchResult result = exec::runSuite(files, options);

  for (const auto& c : result.circuits) {
    if (!c.error.empty()) {
      std::printf("FAIL %-40s %s\n", c.name.c_str(), c.error.c_str());
      continue;
    }
    if (flags.shots > 0) {
      std::printf("ok   %-40s %zu qubits, %zu ops, %zu shots, %zu distinct "
                  "outcomes  (%.2f ms, worker %zu)\n",
                  c.name.c_str(), c.qubits, c.operations, c.sampling.shots,
                  c.sampling.counts.size(), c.wallMs, c.worker);
    } else {
      std::printf("ok   %-40s %zu qubits, %zu ops, %zu nodes final, %zu peak "
                  " (%.2f ms, worker %zu)\n",
                  c.name.c_str(), c.qubits, c.operations, c.finalNodes,
                  c.peakNodes, c.wallMs, c.worker);
    }
  }
  std::printf("batch: %zu file(s), %zu failure(s), %zu worker(s), %.2f ms\n",
              result.circuits.size(), result.failures(), result.workers,
              result.wallMs);
  maybePrintStats(result.stats);
  return result.failures() == 0 ? 0 : 1;
}

/// `qdd-tool pverify <left> <right>`: portfolio equivalence checking — both
/// alternating directions (and a simulation prover) race on private packages;
/// the first conclusive entry cancels the rest.
int runPverify(const std::string& leftPath, const std::string& rightPath,
               const ExecFlags& flags) {
  const auto left = load(leftPath);
  const auto right = load(rightPath);
  std::printf("left  '%s': %zu qubits, %zu operations\n", leftPath.c_str(),
              left.numQubits(), left.size());
  std::printf("right '%s': %zu qubits, %zu operations\n", rightPath.c_str(),
              right.numQubits(), right.size());

  exec::PortfolioOptions options;
  options.workers = flags.workers;
  options.seed = flags.seed;
  const exec::PortfolioResult result = exec::checkPortfolio(left, right,
                                                            options);
  for (const auto& entry : result.entries) {
    std::printf("  %-24s %-12s %8.2f ms  peak %zu nodes, %zu gates\n",
                entry.name.c_str(),
                entry.result.cancelled
                    ? "(cancelled)"
                    : toString(entry.result.equivalence).c_str(),
                entry.wallMs, entry.result.maxNodes,
                entry.result.gatesApplied);
  }
  std::printf("winner: %s (%.2f ms total)\n", result.winner.c_str(),
              result.wallMs);
  std::printf("result: %s\n", toString(result.result.equivalence).c_str());
  return 0;
}

int runShow(const std::string& path) {
  const auto qc = load(path);
  Package pkg(qc.numQubits());
  exec::attachSharedForker(pkg);
  if (qc.isPurelyUnitary()) {
    const mEdge u = bridge::buildFunctionality(qc, pkg);
    std::printf("functionality DD of '%s': %zu nodes\n", path.c_str(),
                Package::size(u));
    const viz::Graph g = viz::buildGraph(u, qc.numQubits());
    std::printf("%s", viz::asciiDump(g).c_str());
    exportAll(g, "dd");
  } else {
    sim::SimulationSession session(qc, pkg);
    while (session.stepForward()) {
    }
    printState(pkg, session.state());
    exportAll(viz::buildGraph(session.state()), "dd");
  }
  maybePrintStats(pkg);
  return 0;
}

// --- serve mode ---------------------------------------------------------------

/// SIGINT counter: the first signal starts a graceful drain, the second
/// aborts the wait and stops immediately.
std::atomic<int> serveSignals{0};

void onServeSignal(int /*signum*/) {
  serveSignals.fetch_add(1, std::memory_order_relaxed);
}

int runServe(int argc, char** argv, int first) {
  service::ServerOptions serverOpts;
  service::ApiOptions apiOpts;
  bool enableObs = false;
  int drainMs = 5000;
  for (int i = first; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto intArg = [&](const char* name) -> long {
      if (i + 1 >= argc) {
        throw std::runtime_error(std::string(name) +
                                 " requires a numeric argument");
      }
      return std::strtol(argv[++i], nullptr, 10);
    };
    const auto strArg = [&](const char* name) -> std::string {
      if (i + 1 >= argc) {
        throw std::runtime_error(std::string(name) +
                                 " requires an argument");
      }
      return argv[++i];
    };
    if (flag == "--port") {
      serverOpts.port = static_cast<std::uint16_t>(intArg("--port"));
    } else if (flag == "--workers") {
      serverOpts.workers = static_cast<std::size_t>(intArg("--workers"));
    } else if (flag == "--max-sessions") {
      apiOpts.maxSessions = static_cast<std::size_t>(intArg("--max-sessions"));
    } else if (flag == "--max-qubits") {
      apiOpts.maxQubits = static_cast<std::size_t>(intArg("--max-qubits"));
    } else if (flag == "--max-body") {
      serverOpts.maxBodyBytes = static_cast<std::size_t>(intArg("--max-body"));
    } else if (flag == "--ttl") {
      apiOpts.sessionTtlMs = intArg("--ttl") * 1000;
    } else if (flag == "--deadline") {
      apiOpts.defaultDeadlineMs = intArg("--deadline");
    } else if (flag == "--drain-timeout") {
      drainMs = static_cast<int>(intArg("--drain-timeout"));
    } else if (flag == "--obs") {
      enableObs = true;
    } else if (flag == "--access-log") {
      serverOpts.accessLogPath = strArg("--access-log");
    } else if (flag == "--incident-dir") {
      apiOpts.incidentDir = strArg("--incident-dir");
    } else if (flag == "--max-incidents") {
      apiOpts.maxIncidents = static_cast<std::size_t>(intArg("--max-incidents"));
    } else if (flag == "--slow-ms") {
      serverOpts.slowRequestMs = static_cast<double>(intArg("--slow-ms"));
    } else if (flag == "--no-tracing") {
      serverOpts.tracing = false;
    } else if (flag == "--net") {
      const std::string mode = strArg("--net");
      if (mode == "epoll") {
        serverOpts.net = service::NetMode::Epoll;
      } else if (mode == "poll") {
        serverOpts.net = service::NetMode::Poll;
      } else if (mode == "threaded") {
        serverOpts.net = service::NetMode::Threaded;
      } else {
        std::fprintf(stderr,
                     "serve: --net must be epoll, poll, or threaded\n");
        return 2;
      }
    } else if (flag == "--idle-timeout") {
      serverOpts.idleTimeoutMs = intArg("--idle-timeout");
    } else if (flag == "--spill-dir") {
      apiOpts.spillDir = strArg("--spill-dir");
    } else if (flag == "--spill-after") {
      apiOpts.spillAfterMs = intArg("--spill-after");
    } else if (flag == "--spill-budget") {
      apiOpts.maxResidentSessions =
          static_cast<std::size_t>(intArg("--spill-budget"));
    } else if (flag == "--shards") {
      apiOpts.sessionShards = static_cast<std::size_t>(intArg("--shards"));
    } else {
      std::fprintf(stderr, "serve: unknown flag '%s'\n", flag.c_str());
      return 2;
    }
  }

  service::ServiceMetrics metrics;
  service::Api api(apiOpts, metrics);
  std::shared_ptr<obs::AggregatorSink> aggregator;
  if (enableObs) {
    aggregator = std::make_shared<obs::AggregatorSink>();
    obs::Registry::instance().addSink(aggregator);
    obs::Registry::instance().setEnabled(true);
    api.setAggregator(aggregator);
  }
  service::Router router;
  api.install(router);
  service::HttpServer server(serverOpts, router, metrics);
  api.setDrainingProbe([&server] { return server.draining(); });
  api.setOpenConnectionsProbe([&server] { return server.openConnections(); });
  if (serverOpts.tracing) {
    server.setIncidentLog(&api.incidents());
  }
  server.start();

  // grep-able startup line: scripted drivers read the actual (possibly
  // ephemeral) port from here
  std::printf("SERVE_READY port=%u workers=%zu max-sessions=%zu net=%s\n",
              static_cast<unsigned>(server.port()), serverOpts.workers,
              apiOpts.maxSessions, server.netName());
  std::fflush(stdout);

  std::signal(SIGINT, onServeSignal);
  std::signal(SIGTERM, onServeSignal);
  while (serveSignals.load(std::memory_order_relaxed) == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  std::printf("SERVE_DRAINING (new requests get 503; Ctrl-C again to force)\n");
  std::fflush(stdout);
  server.drain();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(drainMs);
  while (std::chrono::steady_clock::now() < deadline &&
         serveSignals.load(std::memory_order_relaxed) < 2) {
    if (server.awaitIdle(100)) {
      break;
    }
  }
  server.stop();

  const std::string summary = metrics.toJson().dump();
  std::printf("SERVE_STOPPED requests=%zu\n", metrics.requests());
  if (outPath.empty()) {
    std::fprintf(stderr, "%s\n", summary.c_str());
  } else {
    std::ofstream out(outPath);
    if (!out) {
      throw std::runtime_error("cannot open --out file for writing: " +
                               outPath);
    }
    out << summary << "\n";
  }
  if (aggregator) {
    obs::Registry::instance().setEnabled(false);
    obs::Registry::instance().removeSink(aggregator);
  }
  return 0;
}

} // namespace

int main(int argc, char** argv) {
  // Extract the global --stats / --out flags before positional parsing.
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--stats") == 0) {
      statsRequested = true;
    } else if (std::strcmp(argv[i], "--out") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--out requires a file path argument\n");
        return 2;
      }
      outPath = argv[++i];
    } else {
      args.push_back(argv[i]);
    }
  }
  argc = static_cast<int>(args.size());
  argv = args.data();
  if (argc >= 2 && std::strcmp(argv[1], "serve") == 0) {
    try {
      return runServe(argc, argv, 2);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  }
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage:\n"
                 "  %s sim <circuit.{qasm,real}>\n"
                 "  %s verify <left.{qasm,real}> <right.{qasm,real}>\n"
                 "  %s show <circuit.{qasm,real}>\n"
                 "  %s trace <circuit.{qasm,real}> [out.json]\n"
                 "  %s profile <circuit.{qasm,real}>\n"
                 "  %s map <circuit.{qasm,real}> [linear|ring|gridRxC]\n"
                 "  %s synth <permutation.txt>\n"
                 "  %s batch <directory> [--workers N --shots S --seed X]\n"
                 "  %s pverify <left.{qasm,real}> <right.{qasm,real}> "
                 "[--workers N --seed X]\n"
                 "  %s serve [--port N --workers W --max-sessions S "
                 "--max-qubits Q\n"
                 "            --max-body BYTES --ttl SECONDS --deadline MS "
                 "--obs\n"
                 "            --access-log FILE --incident-dir DIR "
                 "--max-incidents N\n"
                 "            --slow-ms MS --no-tracing "
                 "--net epoll|poll|threaded\n"
                 "            --idle-timeout MS --spill-dir DIR "
                 "--spill-after MS\n"
                 "            --spill-budget N --shards N]\n"
                 "global flags: --stats (dump stats JSON), --out <file>\n"
                 "  (--out routes machine-readable JSON to <file>; without it,\n"
                 "   JSON goes to stderr and stdout stays human-readable)\n",
                 argv[0], argv[0], argv[0], argv[0], argv[0], argv[0],
                 argv[0], argv[0], argv[0], argv[0]);
    return 2;
  }
  try {
    const std::string mode = argv[1];
    if (mode == "sim") {
      return runSim(argv[2]);
    }
    if (mode == "verify") {
      if (argc < 4) {
        std::fprintf(stderr, "verify needs two circuit files\n");
        return 2;
      }
      return runVerify(argv[2], argv[3]);
    }
    if (mode == "show") {
      return runShow(argv[2]);
    }
    if (mode == "trace") {
      return runTrace(argv[2], argc > 3 ? argv[3] : "trace.json");
    }
    if (mode == "profile") {
      return runProfile(argv[2]);
    }
    if (mode == "map") {
      return runMap(argv[2], argc > 3 ? argv[3] : "linear");
    }
    if (mode == "synth") {
      return runSynth(argv[2]);
    }
    if (mode == "batch") {
      return runBatch(argv[2], parseExecFlags(argc, argv, 3));
    }
    if (mode == "pverify") {
      if (argc < 4) {
        std::fprintf(stderr, "pverify needs two circuit files\n");
        return 2;
      }
      return runPverify(argv[2], argv[3], parseExecFlags(argc, argv, 4));
    }
    std::fprintf(stderr, "unknown mode '%s'\n", mode.c_str());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
