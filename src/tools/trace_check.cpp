// qdd-trace-check: validates a Chrome trace-event JSON file produced by
// `qdd-tool profile` (or any tool emitting the trace-event format).
//
//   qdd-trace-check <trace.json> [--require-steps] [--incident]
//
// Exit code 0 if the file is a well-formed trace (valid JSON, `traceEvents`
// array, monotonically non-decreasing timestamps, stack-disciplined span
// nesting); nonzero otherwise. With --require-steps, the trace must also
// carry per-step DD metrics (sim.step instants with node counts, cache-hit
// deltas, GC runs, and a nodes-per-level breakdown). With --incident, the
// file is checked as a flight-recorder incident dump (GET /v1/incidents/{id}):
// a top-level 32-hex "traceId" that every span's args.trace_id matches.
// Used by the CI smoke jobs and handy for checking traces before loading
// them into Perfetto.

#include "qdd/obs/TraceCheck.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

int main(int argc, char** argv) {
  std::string path;
  bool requireSteps = false;
  bool incident = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--require-steps") == 0) {
      requireSteps = true;
    } else if (std::strcmp(argv[i], "--incident") == 0) {
      incident = true;
    } else if (path.empty()) {
      path = argv[i];
    } else {
      path.clear();
      break;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr,
                 "usage: %s <trace.json> [--require-steps] [--incident]\n",
                 argv[0]);
    return 2;
  }

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
    return 1;
  }
  std::ostringstream ss;
  ss << in.rdbuf();

  const auto result =
      incident ? qdd::obs::validateIncidentTrace(ss.str())
               : qdd::obs::validateChromeTrace(ss.str(), requireSteps);
  if (!result.valid) {
    std::fprintf(stderr, "INVALID %s: %s\n", path.c_str(),
                 result.error.c_str());
    return 1;
  }
  std::printf("OK %s: %zu events (%zu spans, %zu counters, %zu step "
              "instants)%s%s\n",
              path.c_str(), result.events, result.spans, result.counters,
              result.stepInstants, incident ? ", incident checks passed" : "",
              result.hasStats ? ", stats embedded" : "");
  return 0;
}
