#include "qdd/obs/TraceContext.hpp"

#include <atomic>
#include <chrono>

namespace qdd::obs {

namespace {

thread_local TraceContext tCurrent;

constexpr char HEX[] = "0123456789abcdef";

void appendHex64(std::string& out, std::uint64_t v) {
  for (int shift = 60; shift >= 0; shift -= 4) {
    out.push_back(HEX[(v >> static_cast<unsigned>(shift)) & 0xFU]);
  }
}

/// -1 for non-hex characters.
int hexValue(char c) noexcept {
  if (c >= '0' && c <= '9') {
    return c - '0';
  }
  if (c >= 'a' && c <= 'f') {
    return c - 'a' + 10;
  }
  if (c >= 'A' && c <= 'F') {
    return c - 'A' + 10;
  }
  return -1;
}

/// Parses exactly `digits` hex chars at `s[pos]`; false on any non-hex.
bool parseHex(const std::string& s, std::size_t pos, std::size_t digits,
              std::uint64_t& out) noexcept {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < digits; ++i) {
    const int d = hexValue(s[pos + i]);
    if (d < 0) {
      return false;
    }
    v = (v << 4U) | static_cast<std::uint64_t>(d);
  }
  out = v;
  return true;
}

std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30U)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27U)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31U);
}

} // namespace

std::string TraceContext::traceIdHex() const {
  std::string out;
  out.reserve(32);
  appendHex64(out, traceHi);
  appendHex64(out, traceLo);
  return out;
}

std::string TraceContext::spanIdHex() const {
  std::string out;
  out.reserve(16);
  appendHex64(out, spanId);
  return out;
}

std::string TraceContext::traceparent() const {
  std::string out;
  out.reserve(55);
  out += "00-";
  appendHex64(out, traceHi);
  appendHex64(out, traceLo);
  out += '-';
  appendHex64(out, spanId);
  out += '-';
  out.push_back(HEX[(flags >> 4U) & 0xFU]);
  out.push_back(HEX[flags & 0xFU]);
  return out;
}

bool TraceContext::parseTraceparent(const std::string& header,
                                    TraceContext& out) {
  // version(2) '-' trace-id(32) '-' parent-id(16) '-' flags(2)
  if (header.size() != 55 || header[2] != '-' || header[35] != '-' ||
      header[52] != '-') {
    return false;
  }
  std::uint64_t version = 0;
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;
  std::uint64_t span = 0;
  std::uint64_t flags = 0;
  if (!parseHex(header, 0, 2, version) || !parseHex(header, 3, 16, hi) ||
      !parseHex(header, 19, 16, lo) || !parseHex(header, 36, 16, span) ||
      !parseHex(header, 53, 2, flags)) {
    return false;
  }
  // "ff" is forbidden by the spec; all-zero ids are invalid.
  if (version == 0xFF || (hi | lo) == 0 || span == 0) {
    return false;
  }
  out.traceHi = hi;
  out.traceLo = lo;
  out.spanId = span;
  out.flags = static_cast<std::uint8_t>(flags);
  return true;
}

std::uint64_t TraceContext::nextId() noexcept {
  // Seeded once per process from the clock; every id is one splitmix64 step
  // of a shared counter — unique within the process, well-mixed bits, and
  // cheap enough for the per-request path.
  static std::atomic<std::uint64_t> counter{[] {
    const auto now = std::chrono::steady_clock::now().time_since_epoch();
    const auto wall = std::chrono::system_clock::now().time_since_epoch();
    return splitmix64(static_cast<std::uint64_t>(now.count()) ^
                      (static_cast<std::uint64_t>(wall.count()) << 1U));
  }()};
  std::uint64_t id = 0;
  do {
    id = splitmix64(counter.fetch_add(1, std::memory_order_relaxed));
  } while (id == 0);
  return id;
}

TraceContext TraceContext::make() {
  TraceContext ctx;
  ctx.traceHi = nextId();
  ctx.traceLo = nextId();
  ctx.spanId = nextId();
  ctx.flags = 1;
  return ctx;
}

const TraceContext& currentTrace() noexcept { return tCurrent; }

TraceScope::TraceScope(const TraceContext& ctx) noexcept : saved(tCurrent) {
  tCurrent = ctx;
}

TraceScope::~TraceScope() { tCurrent = saved; }

} // namespace qdd::obs
