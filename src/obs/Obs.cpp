#include "qdd/obs/Obs.hpp"

#include "qdd/obs/SpanGate.hpp"

#include <algorithm>

namespace qdd::obs {

namespace detail {
// Constant-initialized (no SIOF): a pre-main read sees 0, i.e. "both off",
// which matches both subsystems' initial state.
std::atomic<unsigned> spanGate{0U};
} // namespace detail

Registry& Registry::instance() {
  // Intentionally leaked: worker threads of the (equally leaked) shared
  // exec pool touch the registry during startup/labeling, so destroying
  // it in static teardown would race with threads that outlive main.
  static Registry* registry = new Registry();
  return *registry;
}

std::uint32_t Registry::currentThreadId() noexcept {
  static std::atomic<std::uint32_t> nextId{0};
  thread_local const std::uint32_t id =
      nextId.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void Registry::labelCurrentThread(std::string label) {
  const std::uint32_t id = currentThreadId();
  Registry& reg = instance();
  const std::lock_guard<std::mutex> lock(reg.labelMutex);
  for (auto& [tid, name] : reg.labels) {
    if (tid == id) {
      name = std::move(label);
      return;
    }
  }
  reg.labels.emplace_back(id, std::move(label));
}

std::vector<std::pair<std::uint32_t, std::string>>
Registry::threadLabels() const {
  const std::lock_guard<std::mutex> lock(labelMutex);
  return labels;
}

void Registry::addSink(std::shared_ptr<Sink> sink) {
  const std::lock_guard<std::mutex> lock(mutex);
  sinks.push_back(std::move(sink));
}

void Registry::removeSink(const std::shared_ptr<Sink>& sink) {
  const std::lock_guard<std::mutex> lock(mutex);
  sinks.erase(std::remove(sinks.begin(), sinks.end(), sink), sinks.end());
}

void Registry::clearSinks() {
  const std::lock_guard<std::mutex> lock(mutex);
  sinks.clear();
}

void Registry::flush() {
  const std::lock_guard<std::mutex> lock(mutex);
  for (const auto& sink : sinks) {
    sink->flush();
  }
}

void Registry::recordSpan(SpanRecord&& span) {
  span.tid = currentThreadId();
  const TraceContext& trace = currentTrace();
  span.traceHi = trace.traceHi;
  span.traceLo = trace.traceLo;
  const std::lock_guard<std::mutex> lock(mutex);
  for (const auto& sink : sinks) {
    sink->onSpan(span);
  }
}

void Registry::recordCounter(const char* name, double value) {
  CounterRecord record{name, value, nowUs(), currentThreadId(),
                       currentTrace().traceHi, currentTrace().traceLo};
  const std::lock_guard<std::mutex> lock(mutex);
  for (const auto& sink : sinks) {
    sink->onCounter(record);
  }
}

void Registry::recordStep(StepMetrics&& step) {
  step.tid = currentThreadId();
  const std::lock_guard<std::mutex> lock(mutex);
  for (const auto& sink : sinks) {
    sink->onStep(step);
  }
}

} // namespace qdd::obs
