#include "qdd/obs/Obs.hpp"

#include <algorithm>

namespace qdd::obs {

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

void Registry::addSink(std::shared_ptr<Sink> sink) {
  const std::lock_guard<std::mutex> lock(mutex);
  sinks.push_back(std::move(sink));
}

void Registry::removeSink(const std::shared_ptr<Sink>& sink) {
  const std::lock_guard<std::mutex> lock(mutex);
  sinks.erase(std::remove(sinks.begin(), sinks.end(), sink), sinks.end());
}

void Registry::clearSinks() {
  const std::lock_guard<std::mutex> lock(mutex);
  sinks.clear();
}

void Registry::flush() {
  const std::lock_guard<std::mutex> lock(mutex);
  for (const auto& sink : sinks) {
    sink->flush();
  }
}

void Registry::recordSpan(SpanRecord&& span) {
  const std::lock_guard<std::mutex> lock(mutex);
  for (const auto& sink : sinks) {
    sink->onSpan(span);
  }
}

void Registry::recordCounter(const char* name, double value) {
  CounterRecord record{name, value, nowUs()};
  const std::lock_guard<std::mutex> lock(mutex);
  for (const auto& sink : sinks) {
    sink->onCounter(record);
  }
}

void Registry::recordStep(StepMetrics&& step) {
  const std::lock_guard<std::mutex> lock(mutex);
  for (const auto& sink : sinks) {
    sink->onStep(step);
  }
}

} // namespace qdd::obs
