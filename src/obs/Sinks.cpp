#include "qdd/obs/Sinks.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace qdd::obs {

namespace {

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
    case '"':
      out += "\\\"";
      break;
    case '\\':
      out += "\\\\";
      break;
    case '\n':
      out += "\\n";
      break;
    case '\t':
      out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(c) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof(buf), "\\u%04x", c);
        out += buf;
      } else {
        out += c;
      }
      break;
    }
  }
  return out;
}

/// Fixed, locale-independent float formatting (same contract as the stats
/// registry): %.9g via snprintf, with a decimal comma — should a caller have
/// installed a locale that uses one — normalized back to a point.
std::string formatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  std::string s(buf);
  for (char& c : s) {
    if (c == ',') {
      c = '.';
    }
  }
  return s;
}

void appendArg(std::string& out, const Arg& a) {
  out += '"';
  out += jsonEscape(a.key);
  out += "\":";
  switch (a.kind) {
  case Arg::Kind::UInt:
    out += std::to_string(a.u);
    break;
  case Arg::Kind::Double:
    out += formatDouble(a.d);
    break;
  case Arg::Kind::Str:
    out += '"';
    out += jsonEscape(a.s);
    out += '"';
    break;
  }
}

std::string argsJson(const std::vector<Arg>& args) {
  std::string out = "{";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i > 0) {
      out += ',';
    }
    appendArg(out, args[i]);
  }
  out += '}';
  return out;
}

std::vector<Arg> stepArgs(const StepMetrics& step) {
  std::vector<Arg> args;
  args.push_back(Arg::uintArg("index", step.index));
  args.push_back(Arg::strArg("op", step.op));
  args.push_back(Arg::uintArg("nodes", step.nodes));
  args.push_back(Arg::uintArg("cacheLookups", step.cacheLookups));
  args.push_back(Arg::uintArg("cacheHits", step.cacheHits));
  args.push_back(Arg::doubleArg("cacheHitRatioDelta", step.cacheHitRatioDelta));
  args.push_back(Arg::uintArg("realEntries", step.realEntries));
  args.push_back(Arg::uintArg("gcRuns", step.gcRuns));
  args.push_back(Arg::doubleArg("durUs", step.durUs));
  return args;
}

/// 32-hex-char trace id, empty when none was attached.
std::string traceHex(std::uint64_t hi, std::uint64_t lo) {
  if ((hi | lo) == 0) {
    return {};
  }
  TraceContext ctx;
  ctx.traceHi = hi;
  ctx.traceLo = lo;
  return ctx.traceIdHex();
}

std::string levelsJson(const std::vector<std::size_t>& nodesPerLevel) {
  std::string out = "[";
  for (std::size_t i = 0; i < nodesPerLevel.size(); ++i) {
    if (i > 0) {
      out += ',';
    }
    out += std::to_string(nodesPerLevel[i]);
  }
  out += ']';
  return out;
}

} // namespace

// --- ChromeTraceSink --------------------------------------------------------

void ChromeTraceSink::onSpan(const SpanRecord& span) {
  Event e;
  e.phase = 'X';
  e.name = span.name;
  e.category = span.category;
  e.tsUs = span.startUs;
  e.durUs = span.durUs;
  e.tid = span.tid;
  e.args = span.args;
  const std::string trace = traceHex(span.traceHi, span.traceLo);
  if (!trace.empty()) {
    e.args.push_back(Arg::strArg("trace_id", trace));
  }
  events.push_back(std::move(e));
}

void ChromeTraceSink::onCounter(const CounterRecord& counter) {
  Event e;
  e.phase = 'C';
  e.name = counter.name;
  e.category = "counter";
  e.tsUs = counter.tsUs;
  e.tid = counter.tid;
  e.args.push_back(Arg::doubleArg("value", counter.value));
  events.push_back(std::move(e));
}

void ChromeTraceSink::onStep(const StepMetrics& step) {
  // Counter tracks give Perfetto plottable time series ...
  const std::array<std::pair<const char*, double>, 4> tracks{{
      {"dd.nodes", static_cast<double>(step.nodes)},
      {"dd.cacheHitRatio", step.cacheHitRatioDelta},
      {"dd.realEntries", static_cast<double>(step.realEntries)},
      {"dd.gcRuns", static_cast<double>(step.gcRuns)},
  }};
  for (const auto& [name, value] : tracks) {
    Event c;
    c.phase = 'C';
    c.name = name;
    c.category = "counter";
    c.tsUs = step.tsUs;
    c.tid = step.tid;
    c.args.push_back(Arg::doubleArg("value", value));
    events.push_back(std::move(c));
  }
  // ... and one instant event carries the full per-step metrics as args,
  // including the active-nodes-per-level breakdown (serialized as a string
  // arg since trace-event args are flat).
  Event e;
  e.phase = 'i';
  e.name = "sim.step";
  e.category = "sim";
  e.tsUs = step.tsUs;
  e.tid = step.tid;
  e.args = stepArgs(step);
  e.args.push_back(Arg::strArg("nodesPerLevel", levelsJson(step.nodesPerLevel)));
  events.push_back(std::move(e));
}

std::string ChromeTraceSink::toJson() const {
  std::vector<const Event*> ordered;
  ordered.reserve(events.size());
  for (const auto& e : events) {
    ordered.push_back(&e);
  }
  // Monotonic ts; at equal ts the longer (enclosing) span comes first so
  // viewers open parents before children.
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const Event* a, const Event* b) {
                     if (a->tsUs != b->tsUs) {
                       return a->tsUs < b->tsUs;
                     }
                     return a->durUs > b->durUs;
                   });

  std::string out = "{\"traceEvents\":[\n";
  bool first = true;

  // One `thread_name` metadata event per known thread, so viewers label the
  // per-thread tracks. Labels come from Registry::labelCurrentThread; tid 0
  // (the first thread that ever recorded) defaults to "main".
  std::vector<std::pair<std::uint32_t, std::string>> names =
      Registry::instance().threadLabels();
  const bool tidZeroLabeled =
      std::any_of(names.begin(), names.end(),
                  [](const auto& p) { return p.first == 0; });
  if (!tidZeroLabeled) {
    names.emplace_back(0, "main");
  }
  std::sort(names.begin(), names.end());
  for (const auto& [tid, label] : names) {
    if (!first) {
      out += ",\n";
    }
    first = false;
    out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":";
    out += std::to_string(tid);
    out += ",\"args\":{\"name\":\"";
    out += jsonEscape(label);
    out += "\"}}";
  }

  for (const Event* e : ordered) {
    if (!first) {
      out += ",\n";
    }
    first = false;
    out += "{\"name\":\"";
    out += jsonEscape(e->name);
    out += "\",\"cat\":\"";
    out += jsonEscape(e->category);
    out += "\",\"ph\":\"";
    out += e->phase;
    out += "\",\"pid\":1,\"tid\":";
    out += std::to_string(e->tid);
    out += ",\"ts\":";
    out += formatDouble(e->tsUs);
    if (e->phase == 'X') {
      out += ",\"dur\":";
      out += formatDouble(e->durUs);
    }
    if (e->phase == 'i') {
      out += ",\"s\":\"t\"";
    }
    if (!e->args.empty()) {
      out += ",\"args\":";
      out += argsJson(e->args);
    }
    out += '}';
  }
  out += "\n],\"displayTimeUnit\":\"ms\"";
  if (!statsJson.empty()) {
    out += ",\"qddStats\":";
    out += statsJson;
  }
  out += "}\n";
  return out;
}

void ChromeTraceSink::writeFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot open trace file for writing: " + path);
  }
  out << toJson();
  out.flush();
  if (!out) {
    throw std::runtime_error("failed writing trace file: " + path);
  }
}

// --- JsonlSink --------------------------------------------------------------

void JsonlSink::onSpan(const SpanRecord& span) {
  out << "{\"type\":\"span\",\"cat\":\"" << jsonEscape(span.category)
      << "\",\"name\":\"" << jsonEscape(span.name)
      << "\",\"ts\":" << formatDouble(span.startUs)
      << ",\"dur\":" << formatDouble(span.durUs) << ",\"depth\":" << span.depth
      << ",\"tid\":" << span.tid;
  const std::string trace = traceHex(span.traceHi, span.traceLo);
  if (!trace.empty()) {
    out << ",\"traceId\":\"" << trace << "\"";
  }
  if (!span.args.empty()) {
    out << ",\"args\":" << argsJson(span.args);
  }
  out << "}\n";
}

void JsonlSink::onCounter(const CounterRecord& counter) {
  out << "{\"type\":\"counter\",\"name\":\"" << jsonEscape(counter.name)
      << "\",\"ts\":" << formatDouble(counter.tsUs)
      << ",\"value\":" << formatDouble(counter.value)
      << ",\"tid\":" << counter.tid;
  const std::string trace = traceHex(counter.traceHi, counter.traceLo);
  if (!trace.empty()) {
    out << ",\"traceId\":\"" << trace << "\"";
  }
  out << "}\n";
}

void JsonlSink::onStep(const StepMetrics& step) {
  out << "{\"type\":\"step\",\"ts\":" << formatDouble(step.tsUs)
      << ",\"tid\":" << step.tid << ",\"args\":"
      << argsJson(stepArgs(step))
      << ",\"nodesPerLevel\":" << levelsJson(step.nodesPerLevel) << "}\n";
}

void JsonlSink::flush() { out.flush(); }

// --- AggregatorSink ---------------------------------------------------------

AggregatorSink::Bucket& AggregatorSink::resolve(const SpanRecord& span) {
  Bucket& bucket = buckets[{span.category, span.name}];
  if (bucket.durations == nullptr) {
    const std::string key = std::string(span.category) + "/" + span.name;
    // std::map nodes are stable, so the vector address survives inserts
    bucket.durations = &samples[key];
    bucket.isGc = key == "dd/gc";
  }
  return bucket;
}

void AggregatorSink::onSpan(const SpanRecord& span) {
  const std::lock_guard<std::recursive_mutex> lock(mutex);
  const Bucket& bucket = resolve(span);
  if (bucket.durations->size() < MAX_SAMPLES) {
    bucket.durations->push_back(span.durUs);
  }
  if (bucket.isGc && gcPauses.size() < MAX_SAMPLES) {
    gcPauses.push_back(span.durUs);
  }
}

void AggregatorSink::onStep(const StepMetrics& step) {
  const std::lock_guard<std::recursive_mutex> lock(mutex);
  stepSeries.push_back(step);
}

double AggregatorSink::percentileUs(const std::string& key, double p) const {
  const std::lock_guard<std::recursive_mutex> lock(mutex);
  const auto it = samples.find(key);
  if (it == samples.end() || it->second.empty()) {
    return 0.;
  }
  std::vector<double> sorted = it->second;
  std::sort(sorted.begin(), sorted.end());
  // nearest-rank: smallest value such that at least p% of samples are <= it
  const double clamped = std::min(std::max(p, 0.), 100.);
  const auto n = sorted.size();
  std::size_t rank = static_cast<std::size_t>(
      std::max(1.0, std::ceil(clamped / 100. * static_cast<double>(n))));
  rank = std::min(rank, n);
  return sorted[rank - 1];
}

LatencySummary AggregatorSink::summary(const std::string& key) const {
  const std::lock_guard<std::recursive_mutex> lock(mutex);
  LatencySummary s;
  const auto it = samples.find(key);
  if (it == samples.end() || it->second.empty()) {
    return s;
  }
  s.count = it->second.size();
  for (const double d : it->second) {
    s.totalUs += d;
    s.maxUs = std::max(s.maxUs, d);
  }
  s.p50Us = percentileUs(key, 50.);
  s.p95Us = percentileUs(key, 95.);
  s.p99Us = percentileUs(key, 99.);
  return s;
}

std::vector<std::string> AggregatorSink::keys() const {
  const std::lock_guard<std::recursive_mutex> lock(mutex);
  std::vector<std::string> out;
  out.reserve(samples.size());
  for (const auto& [key, bucket] : samples) {
    if (!bucket.empty()) {
      out.push_back(key);
    }
  }
  return out;
}

std::size_t AggregatorSink::peakStepNodes() const noexcept {
  const std::lock_guard<std::recursive_mutex> lock(mutex);
  std::size_t peak = 0;
  for (const auto& step : stepSeries) {
    peak = std::max(peak, step.nodes);
  }
  return peak;
}

std::string AggregatorSink::summaryTable() const {
  const std::lock_guard<std::recursive_mutex> lock(mutex);
  std::ostringstream out;
  char line[256];
  std::snprintf(line, sizeof(line), "%-24s %8s %12s %10s %10s %10s %10s\n",
                "span", "count", "total ms", "p50 us", "p95 us", "p99 us",
                "max us");
  out << line;
  out << std::string(90, '-') << "\n";
  for (const auto& key : keys()) {
    const LatencySummary s = summary(key);
    std::snprintf(line, sizeof(line),
                  "%-24s %8zu %12.3f %10.1f %10.1f %10.1f %10.1f\n",
                  key.c_str(), s.count, s.totalUs / 1000., s.p50Us, s.p95Us,
                  s.p99Us, s.maxUs);
    out << line;
  }
  if (!stepSeries.empty()) {
    double gcTotal = 0.;
    for (const double p : gcPauses) {
      gcTotal += p;
    }
    std::snprintf(line, sizeof(line),
                  "steps: %zu   peak transient DD: %zu nodes   GC pauses: "
                  "%zu (%.3f ms total)\n",
                  stepSeries.size(), peakStepNodes(), gcPauses.size(),
                  gcTotal / 1000.);
    out << line;
  }
  return out.str();
}

std::string AggregatorSink::toJson() const {
  const std::lock_guard<std::recursive_mutex> lock(mutex);
  std::string out = "{\"spans\":{";
  bool first = true;
  for (const auto& key : keys()) {
    const LatencySummary s = summary(key);
    if (!first) {
      out += ',';
    }
    first = false;
    out += '"';
    out += jsonEscape(key);
    out += "\":{\"count\":" + std::to_string(s.count);
    out += ",\"totalUs\":" + formatDouble(s.totalUs);
    out += ",\"p50Us\":" + formatDouble(s.p50Us);
    out += ",\"p95Us\":" + formatDouble(s.p95Us);
    out += ",\"p99Us\":" + formatDouble(s.p99Us);
    out += ",\"maxUs\":" + formatDouble(s.maxUs);
    out += '}';
  }
  out += "},\"steps\":" + std::to_string(stepSeries.size());
  out += ",\"peakStepNodes\":" + std::to_string(peakStepNodes());
  double gcTotal = 0.;
  for (const double p : gcPauses) {
    gcTotal += p;
  }
  out += ",\"gcPauses\":" + std::to_string(gcPauses.size());
  out += ",\"gcPauseTotalUs\":" + formatDouble(gcTotal);
  out += '}';
  return out;
}

} // namespace qdd::obs
