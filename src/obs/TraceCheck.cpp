#include "qdd/obs/TraceCheck.hpp"

#include <cctype>
#include <map>
#include <memory>
#include <stdexcept>
#include <vector>

namespace qdd::obs {

namespace {

// Minimal strict JSON parser — just enough structure to validate traces
// without pulling a JSON library into the repository.

struct Value;
using ValuePtr = std::unique_ptr<Value>;

struct Value {
  enum class Kind : std::uint8_t { Null, Bool, Number, String, Array, Object };
  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.;
  std::string string;
  std::vector<ValuePtr> array;
  std::map<std::string, ValuePtr> object;

  [[nodiscard]] const Value* member(const std::string& key) const {
    const auto it = object.find(key);
    return it == object.end() ? nullptr : it->second.get();
  }
};

class Parser {
public:
  explicit Parser(const std::string& text) : text(text) {}

  ValuePtr parse() {
    ValuePtr v = parseValue();
    skipWhitespace();
    if (pos != text.size()) {
      fail("trailing characters after top-level value");
    }
    return v;
  }

private:
  [[noreturn]] void fail(const std::string& message) const {
    throw std::runtime_error("JSON error at offset " + std::to_string(pos) +
                             ": " + message);
  }

  void skipWhitespace() {
    while (pos < text.size() && (text[pos] == ' ' || text[pos] == '\t' ||
                                 text[pos] == '\n' || text[pos] == '\r')) {
      ++pos;
    }
  }

  char peek() {
    if (pos >= text.size()) {
      fail("unexpected end of input");
    }
    return text[pos];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos;
  }

  bool consume(const std::string& word) {
    if (text.compare(pos, word.size(), word) == 0) {
      pos += word.size();
      return true;
    }
    return false;
  }

  ValuePtr parseValue() {
    skipWhitespace();
    const char c = peek();
    switch (c) {
    case '{':
      return parseObject();
    case '[':
      return parseArray();
    case '"':
      return parseString();
    case 't':
    case 'f':
      return parseBool();
    case 'n':
      if (!consume("null")) {
        fail("invalid literal");
      }
      return std::make_unique<Value>();
    default:
      return parseNumber();
    }
  }

  ValuePtr parseObject() {
    auto v = std::make_unique<Value>();
    v->kind = Value::Kind::Object;
    expect('{');
    skipWhitespace();
    if (peek() == '}') {
      ++pos;
      return v;
    }
    while (true) {
      skipWhitespace();
      ValuePtr key = parseString();
      skipWhitespace();
      expect(':');
      v->object[key->string] = parseValue();
      skipWhitespace();
      if (peek() == ',') {
        ++pos;
        continue;
      }
      expect('}');
      return v;
    }
  }

  ValuePtr parseArray() {
    auto v = std::make_unique<Value>();
    v->kind = Value::Kind::Array;
    expect('[');
    skipWhitespace();
    if (peek() == ']') {
      ++pos;
      return v;
    }
    while (true) {
      v->array.push_back(parseValue());
      skipWhitespace();
      if (peek() == ',') {
        ++pos;
        continue;
      }
      expect(']');
      return v;
    }
  }

  ValuePtr parseString() {
    auto v = std::make_unique<Value>();
    v->kind = Value::Kind::String;
    expect('"');
    while (true) {
      if (pos >= text.size()) {
        fail("unterminated string");
      }
      const char c = text[pos++];
      if (c == '"') {
        return v;
      }
      if (c == '\\') {
        if (pos >= text.size()) {
          fail("unterminated escape");
        }
        const char esc = text[pos++];
        switch (esc) {
        case '"':
        case '\\':
        case '/':
          v->string += esc;
          break;
        case 'n':
          v->string += '\n';
          break;
        case 't':
          v->string += '\t';
          break;
        case 'r':
          v->string += '\r';
          break;
        case 'b':
        case 'f':
          break;
        case 'u': {
          if (pos + 4 > text.size()) {
            fail("truncated \\u escape");
          }
          for (int k = 0; k < 4; ++k) {
            if (std::isxdigit(static_cast<unsigned char>(text[pos + static_cast<std::size_t>(k)])) == 0) {
              fail("invalid \\u escape");
            }
          }
          pos += 4;
          v->string += '?'; // code point not needed for validation
          break;
        }
        default:
          fail("invalid escape");
        }
      } else {
        v->string += c;
      }
    }
  }

  ValuePtr parseBool() {
    auto v = std::make_unique<Value>();
    v->kind = Value::Kind::Bool;
    if (consume("true")) {
      v->boolean = true;
    } else if (consume("false")) {
      v->boolean = false;
    } else {
      fail("invalid literal");
    }
    return v;
  }

  ValuePtr parseNumber() {
    const std::size_t start = pos;
    if (peek() == '-') {
      ++pos;
    }
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) != 0 ||
            text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
            text[pos] == '+' || text[pos] == '-')) {
      ++pos;
    }
    if (pos == start || (pos == start + 1 && text[start] == '-')) {
      fail("invalid number");
    }
    auto v = std::make_unique<Value>();
    v->kind = Value::Kind::Number;
    try {
      v->number = std::stod(text.substr(start, pos - start));
    } catch (const std::exception&) {
      fail("unparsable number");
    }
    return v;
  }

  const std::string& text;
  std::size_t pos = 0;
};

bool isNumber(const Value* v) {
  return v != nullptr && v->kind == Value::Kind::Number;
}
bool isString(const Value* v) {
  return v != nullptr && v->kind == Value::Kind::String;
}

TraceCheckResult failure(std::string error) {
  TraceCheckResult r;
  r.error = std::move(error);
  return r;
}

} // namespace

TraceCheckResult validateChromeTrace(const std::string& json,
                                     bool requireStepMetrics) {
  ValuePtr root;
  try {
    root = Parser(json).parse();
  } catch (const std::exception& e) {
    return failure(e.what());
  }
  if (root->kind != Value::Kind::Object) {
    return failure("top-level value is not an object");
  }
  const Value* eventsVal = root->member("traceEvents");
  if (eventsVal == nullptr || eventsVal->kind != Value::Kind::Array) {
    return failure("missing \"traceEvents\" array");
  }

  TraceCheckResult result;
  result.hasStats = root->member("qddStats") != nullptr &&
                    root->member("qddStats")->kind == Value::Kind::Object;

  double lastTs = -1.;
  // Open "X" spans as (start, end) intervals, tracked per thread id: spans
  // on different worker tracks legitimately overlap in wall time, but within
  // one track each span must begin after the start of — and end within —
  // every still-open enclosing span.
  std::map<double, std::vector<std::pair<double, double>>> openSpansPerTid;
  bool sawStepMetrics = false;

  for (std::size_t i = 0; i < eventsVal->array.size(); ++i) {
    const Value& ev = *eventsVal->array[i];
    const std::string at = "event " + std::to_string(i);
    if (ev.kind != Value::Kind::Object) {
      return failure(at + ": not an object");
    }
    const Value* name = ev.member("name");
    const Value* phase = ev.member("ph");
    const Value* ts = ev.member("ts");
    if (!isString(name) || !isString(phase)) {
      return failure(at + ": missing name/ph");
    }
    if (phase->string == "M") {
      // Metadata events (thread_name, process_name, ...) carry no timestamp.
      ++result.events;
      ++result.metadata;
      continue;
    }
    if (!isNumber(ts)) {
      return failure(at + ": missing name/ph/ts");
    }
    if (ts->number < lastTs) {
      return failure(at + ": ts not monotonically non-decreasing");
    }
    lastTs = ts->number;
    ++result.events;
    const Value* tid = ev.member("tid");
    const double track = isNumber(tid) ? tid->number : 0.;

    if (phase->string == "X") {
      const Value* dur = ev.member("dur");
      if (!isNumber(dur) || dur->number < 0.) {
        return failure(at + ": \"X\" event without non-negative dur");
      }
      const double start = ts->number;
      const double end = start + dur->number;
      auto& openSpans = openSpansPerTid[track];
      while (!openSpans.empty() && openSpans.back().second <= start) {
        openSpans.pop_back();
      }
      if (!openSpans.empty() && end > openSpans.back().second) {
        return failure(at + ": span overlaps but is not nested in its parent");
      }
      openSpans.emplace_back(start, end);
      ++result.spans;
    } else if (phase->string == "C") {
      ++result.counters;
    } else if (phase->string == "i" && name->string == "sim.step") {
      ++result.stepInstants;
      const Value* args = ev.member("args");
      if (args != nullptr && args->kind == Value::Kind::Object &&
          isNumber(args->member("nodes")) &&
          isNumber(args->member("cacheHitRatioDelta")) &&
          isNumber(args->member("gcRuns")) &&
          isString(args->member("nodesPerLevel"))) {
        sawStepMetrics = true;
      }
    }
  }

  if (result.spans == 0) {
    return failure("trace contains no \"X\" span events");
  }
  if (requireStepMetrics && !sawStepMetrics) {
    return failure("no \"sim.step\" instant with per-step DD metric args "
                   "(nodes, cacheHitRatioDelta, gcRuns, nodesPerLevel)");
  }
  result.valid = true;
  return result;
}

TraceCheckResult validateIncidentTrace(const std::string& json) {
  TraceCheckResult result = validateChromeTrace(json);
  if (!result.valid) {
    return result;
  }
  // The chrome validation parsed successfully, so this re-parse cannot
  // throw; incident dumps are small (ring-bounded), so parsing twice is
  // cheaper than threading incident rules through the main walk.
  const ValuePtr root = Parser(json).parse();
  const Value* traceId = root->member("traceId");
  if (!isString(traceId)) {
    return failure("incident dump missing top-level \"traceId\"");
  }
  const std::string& id = traceId->string;
  if (id.size() != 32) {
    return failure("\"traceId\" is not 32 hex digits: \"" + id + "\"");
  }
  bool nonzero = false;
  for (const char c : id) {
    const bool hex = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
    if (!hex) {
      return failure("\"traceId\" is not lowercase hex: \"" + id + "\"");
    }
    nonzero = nonzero || c != '0';
  }
  if (!nonzero) {
    return failure("\"traceId\" is all-zero");
  }
  const Value* events = root->member("traceEvents");
  for (std::size_t i = 0; i < events->array.size(); ++i) {
    const Value& ev = *events->array[i];
    const Value* phase = ev.member("ph");
    if (!isString(phase) || phase->string != "X") {
      continue;
    }
    const Value* args = ev.member("args");
    const Value* spanTrace =
        args != nullptr && args->kind == Value::Kind::Object
            ? args->member("trace_id")
            : nullptr;
    if (!isString(spanTrace)) {
      return failure("event " + std::to_string(i) +
                     ": span without args.trace_id");
    }
    if (spanTrace->string != id) {
      return failure("event " + std::to_string(i) + ": trace_id \"" +
                     spanTrace->string + "\" differs from incident \"" + id +
                     "\"");
    }
  }
  return result;
}

} // namespace qdd::obs
