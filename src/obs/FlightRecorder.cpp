#include "qdd/obs/FlightRecorder.hpp"

#include "qdd/obs/Obs.hpp"
#include "qdd/obs/SpanGate.hpp"

#include <algorithm>

namespace qdd::obs {

namespace {

std::atomic<bool> gArmed{false};

} // namespace

FlightRecorder& FlightRecorder::instance() {
  // Leaked for the same reason as Registry::instance(): per-thread rings
  // are written by shared-pool workers that outlive static teardown.
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

bool FlightRecorder::armed() noexcept {
  return gArmed.load(std::memory_order_relaxed);
}

void FlightRecorder::setArmed(bool on) noexcept {
  gArmed.store(on, std::memory_order_relaxed);
  detail::setSpanGateBit(detail::SPAN_GATE_FLIGHT, on);
}

FlightRecorder::Ring& FlightRecorder::localRing() {
  thread_local Ring* ring = nullptr;
  if (ring == nullptr) {
    auto owned = std::make_unique<Ring>();
    owned->tid = Registry::currentThreadId();
    Ring* raw = owned.get();
    {
      const std::lock_guard<std::mutex> lock(ringsMutex);
      rings.push_back(std::move(owned));
    }
    ring = raw;
  }
  return *ring;
}

void FlightRecorder::record(const char* category, const char* name,
                            double startUs, double durUs,
                            int depth) noexcept {
  const TraceContext& ctx = currentTrace();
  Ring& ring = localRing();
  const std::uint64_t n = ring.cursor.load(std::memory_order_relaxed);
  Slot& slot = ring.slots[n % RING_CAPACITY];
  slot.category.store(category, std::memory_order_relaxed);
  slot.name.store(name, std::memory_order_relaxed);
  slot.startUs.store(startUs, std::memory_order_relaxed);
  slot.durUs.store(durUs, std::memory_order_relaxed);
  slot.traceHi.store(ctx.traceHi, std::memory_order_relaxed);
  slot.traceLo.store(ctx.traceLo, std::memory_order_relaxed);
  slot.depth.store(depth, std::memory_order_relaxed);
  // Publish: readers treat a slot as valid only once the cursor covers it.
  ring.cursor.store(n + 1, std::memory_order_release);
}

std::vector<FlightEvent> FlightRecorder::capture(std::uint64_t traceHi,
                                                 std::uint64_t traceLo) const {
  std::vector<FlightEvent> out;
  const std::lock_guard<std::mutex> lock(ringsMutex);
  for (const auto& ringPtr : rings) {
    const Ring& ring = *ringPtr;
    const std::uint64_t before = ring.cursor.load(std::memory_order_acquire);
    const std::uint64_t first =
        before > RING_CAPACITY ? before - RING_CAPACITY : 0;
    std::vector<FlightEvent> local;
    local.reserve(static_cast<std::size_t>(before - first));
    for (std::uint64_t w = first; w < before; ++w) {
      const Slot& slot = ring.slots[w % RING_CAPACITY];
      FlightEvent ev;
      ev.category = slot.category.load(std::memory_order_relaxed);
      ev.name = slot.name.load(std::memory_order_relaxed);
      ev.startUs = slot.startUs.load(std::memory_order_relaxed);
      ev.durUs = slot.durUs.load(std::memory_order_relaxed);
      ev.traceHi = slot.traceHi.load(std::memory_order_relaxed);
      ev.traceLo = slot.traceLo.load(std::memory_order_relaxed);
      ev.depth = slot.depth.load(std::memory_order_relaxed);
      ev.tid = ring.tid;
      local.push_back(ev);
    }
    // The owner may have kept writing while we read. A write of index w+N
    // begins as soon as the cursor reaches w+N, so every copied slot whose
    // index is not strictly above after-N may be torn — discard it.
    const std::uint64_t after = ring.cursor.load(std::memory_order_acquire);
    const std::uint64_t safeFirst =
        after >= RING_CAPACITY ? after - RING_CAPACITY + 1 : 0;
    for (std::uint64_t w = first; w < before; ++w) {
      if (w < safeFirst) {
        continue;
      }
      const FlightEvent& ev = local[static_cast<std::size_t>(w - first)];
      if (ev.traceHi == traceHi && ev.traceLo == traceLo &&
          ev.category != nullptr && ev.name != nullptr) {
        out.push_back(ev);
      }
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const FlightEvent& a, const FlightEvent& b) {
                     if (a.startUs != b.startUs) {
                       return a.startUs < b.startUs;
                     }
                     return a.durUs > b.durUs;
                   });
  return out;
}

std::uint64_t FlightRecorder::totalRecorded() const {
  std::uint64_t total = 0;
  const std::lock_guard<std::mutex> lock(ringsMutex);
  for (const auto& ring : rings) {
    total += ring->cursor.load(std::memory_order_acquire);
  }
  return total;
}

} // namespace qdd::obs
