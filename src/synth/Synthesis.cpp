#include "qdd/synth/Synthesis.hpp"

#include <algorithm>
#include <complex>
#include <stdexcept>

namespace qdd::synth {

namespace {

std::size_t log2Exact(std::size_t len) {
  std::size_t n = 0;
  while ((1ULL << n) < len) {
    ++n;
  }
  if ((1ULL << n) != len) {
    throw std::invalid_argument(
        "synthesizePermutation: table length must be a power of two");
  }
  return n;
}

void validatePermutation(const std::vector<std::uint64_t>& permutation) {
  std::vector<bool> seen(permutation.size(), false);
  for (const std::uint64_t v : permutation) {
    if (v >= permutation.size() || seen[v]) {
      throw std::invalid_argument(
          "synthesizePermutation: not a permutation");
    }
    seen[v] = true;
  }
}

/// A multi-controlled X recorded during the MMD sweep.
struct Gate {
  std::uint64_t controls = 0; ///< bit mask of (positive) control qubits
  Qubit target = 0;
};

void applyToTable(std::vector<std::uint64_t>& f, const Gate& g) {
  for (auto& y : f) {
    if ((y & g.controls) == g.controls) {
      y ^= (1ULL << static_cast<unsigned>(g.target));
    }
  }
}

} // namespace

ir::QuantumComputation
synthesizePermutation(const std::vector<std::uint64_t>& permutation) {
  if (permutation.size() < 2) {
    throw std::invalid_argument("synthesizePermutation: empty table");
  }
  const std::size_t n = log2Exact(permutation.size());
  if (n > 20) {
    throw std::invalid_argument("synthesizePermutation: table too large");
  }
  validatePermutation(permutation);

  std::vector<std::uint64_t> f = permutation;
  std::vector<Gate> gates;

  // Miller-Maslov-Dueck: walk the truth table in increasing input order and
  // fix f(x) = x by applying gates on the *output side*; rows already fixed
  // are provably untouched (their value x' < x can never contain the
  // control set of any gate emitted while fixing row x).
  for (std::uint64_t x = 0; x < f.size(); ++x) {
    std::uint64_t y = f[x];
    if (y == x) {
      continue;
    }
    // step 1: set every bit of x missing in y (controls = ones(y))
    for (std::size_t p = 0; p < n; ++p) {
      const std::uint64_t bit = 1ULL << p;
      if ((x & bit) != 0 && (y & bit) == 0) {
        const Gate g{y, static_cast<Qubit>(p)};
        applyToTable(f, g);
        gates.push_back(g);
        y |= bit;
      }
    }
    // step 2: clear every surplus bit of y (controls = ones(x))
    for (std::size_t p = 0; p < n; ++p) {
      const std::uint64_t bit = 1ULL << p;
      if ((x & bit) == 0 && (y & bit) != 0) {
        const Gate g{x, static_cast<Qubit>(p)};
        applyToTable(f, g);
        gates.push_back(g);
        y &= ~bit;
      }
    }
  }

  // The recorded gates transform f into the identity from the output side;
  // the circuit realizing f is their reverse (all gates are self-inverse).
  ir::QuantumComputation qc(n, 0, "synthesized");
  for (auto it = gates.rbegin(); it != gates.rend(); ++it) {
    QubitControls controls;
    for (std::size_t p = 0; p < n; ++p) {
      if ((it->controls >> p) & 1ULL) {
        controls.push_back({static_cast<Qubit>(p), true});
      }
    }
    qc.addStandard(ir::OpType::X, controls, {it->target});
  }
  return qc;
}

mEdge buildPermutationDD(Package& pkg,
                         const std::vector<std::uint64_t>& permutation) {
  const std::size_t n = log2Exact(permutation.size());
  validatePermutation(permutation);
  if (n > 12) {
    throw std::invalid_argument("buildPermutationDD: too many qubits for "
                                "dense construction");
  }
  const std::size_t dim = permutation.size();
  std::vector<std::complex<double>> mat(dim * dim, {0., 0.});
  for (std::size_t col = 0; col < dim; ++col) {
    mat[permutation[col] * dim + col] = {1., 0.};
  }
  return pkg.makeMatrixFromDense(mat, n);
}

SynthesisStats analyze(const ir::QuantumComputation& qc) {
  SynthesisStats stats;
  for (const auto& op : qc) {
    if (op->type() == ir::OpType::Barrier) {
      continue;
    }
    ++stats.gates;
    stats.maxControls = std::max(stats.maxControls, op->controls().size());
  }
  return stats;
}

} // namespace qdd::synth
