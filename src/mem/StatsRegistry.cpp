#include "qdd/mem/StatsRegistry.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace qdd::mem {

void AllocatorStats::merge(const AllocatorStats& other) noexcept {
  live += other.live;
  peakLive += other.peakLive;
  allocated += other.allocated;
  chunks += other.chunks;
  bytes += other.bytes;
}

void UniqueTableStats::merge(const UniqueTableStats& other) noexcept {
  entries += other.entries;
  peakEntries += other.peakEntries;
  lookups += other.lookups;
  hits += other.hits;
  collisions += other.collisions;
  longestChain = std::max(longestChain, other.longestChain);
  probes += other.probes;
  levels = std::max(levels, other.levels);
  buckets += other.buckets;
  rehashes += other.rehashes;
  shards = std::max(shards, other.shards);
  shardContention += other.shardContention;
  memory.merge(other.memory);
}

void RealTableStats::merge(const RealTableStats& other) noexcept {
  entries += other.entries;
  peakEntries += other.peakEntries;
  lookups += other.lookups;
  hits += other.hits;
  collisions += other.collisions;
  buckets += other.buckets;
  rehashes += other.rehashes;
  casRetries += other.casRetries;
  memory.merge(other.memory);
}

void ComputeTableStats::merge(const ComputeTableStats& other) noexcept {
  lookups += other.lookups;
  hits += other.hits;
  inserts += other.inserts;
  staleRejections += other.staleRejections;
}

void ApplyPathStats::merge(const ApplyPathStats& other) noexcept {
  diagonal += other.diagonal;
  permutation += other.permutation;
  generic += other.generic;
  fallback += other.fallback;
}

void ParallelStats::merge(const ParallelStats& other) noexcept {
  forks += other.forks;
  regions += other.regions;
  cancelled += other.cancelled;
}

void GcStats::merge(const GcStats& other) noexcept {
  runs += other.runs;
  generation = std::max(generation, other.generation);
  collectedVectorNodes += other.collectedVectorNodes;
  collectedMatrixNodes += other.collectedMatrixNodes;
  collectedReals += other.collectedReals;
}

void StatsRegistry::merge(const StatsRegistry& other) {
  vectorTable.merge(other.vectorTable);
  matrixTable.merge(other.matrixTable);
  reals.merge(other.reals);
  for (const auto& table : other.computeTables) {
    bool found = false;
    for (auto& mine : computeTables) {
      if (mine.name == table.name) {
        mine.merge(table);
        found = true;
        break;
      }
    }
    if (!found) {
      computeTables.push_back(table);
    }
  }
  apply.merge(other.apply);
  parallel.merge(other.parallel);
  gc.merge(other.gc);
}

const ComputeTableStats*
StatsRegistry::computeTable(const std::string& name) const {
  for (const auto& table : computeTables) {
    if (table.name == name) {
      return &table;
    }
  }
  return nullptr;
}

ComputeTableStats StatsRegistry::computeTotals() const {
  ComputeTableStats total;
  total.name = "total";
  for (const auto& table : computeTables) {
    total.lookups += table.lookups;
    total.hits += table.hits;
    total.inserts += table.inserts;
    total.staleRejections += table.staleRejections;
  }
  return total;
}

TablePressure StatsRegistry::pressure() const {
  TablePressure p;
  p.vectorNodes = vectorTable.entries;
  p.matrixNodes = matrixTable.entries;
  p.realEntries = reals.entries;
  const ComputeTableStats totals = computeTotals();
  p.cacheLookups = totals.lookups;
  p.cacheHits = totals.hits;
  p.gcRuns = gc.runs;
  return p;
}

namespace {

/// Minimal structured JSON writer: tracks nesting and whether a separator is
/// due, so emission code reads like the document it produces.
class JsonWriter {
public:
  explicit JsonWriter(bool pretty) : pretty(pretty) {}

  void openObject(const char* key = nullptr) { open(key, '{'); }
  void closeObject() { close('}'); }
  void openArray(const char* key) { open(key, '['); }
  void closeArray() { close(']'); }

  void field(const char* key, std::size_t value) {
    separator();
    emitKey(key);
    out << value;
  }
  void field(const char* key, double value) {
    separator();
    emitKey(key);
    // Deterministic across platforms and locales: fixed %.9g formatting
    // (ostream would honor the global locale and its precision settings),
    // with any locale-specific decimal comma normalized to a dot so the
    // output is always valid JSON.
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", value);
    for (char* c = buf; *c != '\0'; ++c) {
      if (*c == ',') {
        *c = '.';
      }
    }
    out << buf;
  }
  void field(const char* key, const std::string& value) {
    separator();
    emitKey(key);
    out << '"' << value << '"';
  }

  [[nodiscard]] std::string str() const { return out.str() + (pretty ? "\n" : ""); }

private:
  void open(const char* key, char brace) {
    separator();
    if (key != nullptr) {
      emitKey(key);
    }
    out << brace;
    ++depth;
    pending = false;
  }
  void close(char brace) {
    --depth;
    if (pretty) {
      out << '\n';
      indent();
    }
    out << brace;
    pending = true;
  }
  void separator() {
    if (pending) {
      out << ',';
    }
    if (pretty && depth > 0) {
      out << '\n';
      indent();
    }
    pending = true;
  }
  void emitKey(const char* key) { out << '"' << key << "\":" << (pretty ? " " : ""); }
  void indent() {
    for (int k = 0; k < depth; ++k) {
      out << "  ";
    }
  }

  std::ostringstream out;
  bool pretty;
  bool pending = false;
  int depth = 0;
};

void writeAllocator(JsonWriter& w, const AllocatorStats& a) {
  w.openObject("memory");
  w.field("live", a.live);
  w.field("peakLive", a.peakLive);
  w.field("allocated", a.allocated);
  w.field("chunks", a.chunks);
  w.field("bytes", a.bytes);
  w.closeObject();
}

void writeUniqueTable(JsonWriter& w, const char* key,
                      const UniqueTableStats& t) {
  w.openObject(key);
  w.field("entries", t.entries);
  w.field("peakEntries", t.peakEntries);
  w.field("lookups", t.lookups);
  w.field("hits", t.hits);
  w.field("hitRatio", t.hitRatio());
  w.field("collisions", t.collisions);
  w.field("longestChain", t.longestChain);
  w.field("probes", t.probes);
  w.field("avgProbeLength", t.avgProbeLength());
  w.field("levels", t.levels);
  w.field("buckets", t.buckets);
  w.field("loadFactor", t.loadFactor());
  w.field("rehashes", t.rehashes);
  w.field("shards", t.shards);
  w.field("shardContention", t.shardContention);
  writeAllocator(w, t.memory);
  w.closeObject();
}

} // namespace

std::string StatsRegistry::toJson(bool pretty) const {
  JsonWriter w(pretty);
  w.openObject();

  w.openObject("uniqueTables");
  writeUniqueTable(w, "vector", vectorTable);
  writeUniqueTable(w, "matrix", matrixTable);
  w.closeObject();

  w.openObject("realTable");
  w.field("entries", reals.entries);
  w.field("peakEntries", reals.peakEntries);
  w.field("lookups", reals.lookups);
  w.field("hits", reals.hits);
  w.field("hitRatio", reals.hitRatio());
  w.field("collisions", reals.collisions);
  w.field("buckets", reals.buckets);
  w.field("rehashes", reals.rehashes);
  w.field("casRetries", reals.casRetries);
  writeAllocator(w, reals.memory);
  w.closeObject();

  w.openArray("computeTables");
  for (const auto& table : computeTables) {
    w.openObject();
    w.field("name", table.name);
    w.field("lookups", table.lookups);
    w.field("hits", table.hits);
    w.field("hitRatio", table.hitRatio());
    w.field("inserts", table.inserts);
    w.field("staleRejections", table.staleRejections);
    w.closeObject();
  }
  w.closeArray();

  {
    const ComputeTableStats totals = computeTotals();
    w.openObject("computeTotals");
    w.field("lookups", totals.lookups);
    w.field("hits", totals.hits);
    w.field("hitRatio", totals.hitRatio());
    w.field("staleRejections", totals.staleRejections);
    w.closeObject();
  }

  w.openObject("apply");
  w.field("diagonal", apply.diagonal);
  w.field("permutation", apply.permutation);
  w.field("generic", apply.generic);
  w.field("fallback", apply.fallback);
  w.field("coverage", apply.coverage());
  w.closeObject();

  w.openObject("parallel");
  w.field("forks", parallel.forks);
  w.field("regions", parallel.regions);
  w.field("cancelled", parallel.cancelled);
  w.closeObject();

  w.openObject("gc");
  w.field("runs", gc.runs);
  w.field("generation", static_cast<std::size_t>(gc.generation));
  w.field("collectedVectorNodes", gc.collectedVectorNodes);
  w.field("collectedMatrixNodes", gc.collectedMatrixNodes);
  w.field("collectedReals", gc.collectedReals);
  w.closeObject();

  w.closeObject();
  return w.str();
}

} // namespace qdd::mem
