#pragma once

#include "qdd/obs/Obs.hpp"

// Internal to src/dd: span guard shared by the DD-operation entry points.

namespace qdd::detail {

/// DD operations recurse through each other (applyGate -> add -> add ...);
/// a span per recursive call would swamp any trace. This guard opens a span
/// only for the *outermost* DD operation on the current thread — nested
/// calls ride inside the parent's span. The depth counter is shared across
/// all DD-operation translation units (defined in PackageOps.cpp).
extern thread_local int ddOpDepth;

struct DDOpSpan {
  explicit DDOpSpan(const char* name) : span("dd", name, ddOpDepth == 0) {
    ++ddOpDepth;
  }
  ~DDOpSpan() { --ddOpDepth; }
  DDOpSpan(const DDOpSpan&) = delete;
  DDOpSpan& operator=(const DDOpSpan&) = delete;

  obs::ScopedSpan span;
};

} // namespace qdd::detail
