#include "DDOpSpan.hpp"
#include "qdd/complex/Simd.hpp"
#include "qdd/dd/Package.hpp"
#include "qdd/obs/Obs.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <cstddef>
#include <stdexcept>
#include <utility>

// Direct gate application: Package::applyGate recurses on the *state* DD
// instead of building the gate's matrix DD and running the general
// matrix-vector multiply. One unified kernel covers every (multi-)controlled
// 2x2 gate:
//
//   * levels above the target are rebuilt structurally (identity levels copy
//     both children, control levels reuse the inactive child untouched and
//     recurse only into the active one), memoized per state node;
//   * at the target, the children combine as z_i = m_i0*c_0 + m_i1*c_1 with
//     exact-one multiplications and ~zero terms elided — for diagonal gates
//     both off-terms vanish (pure edge-weight rescale, no additions), for
//     antidiagonal gates both diagonal terms vanish (pure child swap);
//   * controls *below* the target turn the applied child z and the original
//     child x into the graft (1-P)x + P z, where P projects onto the
//     remaining controls being satisfied. Because P is diagonal and
//     factorizes per qubit, the graft is a pure structural splice — no
//     additions — that descends only until the last control is consumed and
//     short-circuits whole subtrees whenever x == z (which is how a
//     controlled phase touches nothing outside its satisfied path).
//
// Results go through the same makeVecNode normalization and weight-table
// lookups as the general path, so they are bit-identical to
// multiply(makeGateDD(...), v) — asserted by tests/test_apply.cpp.

namespace qdd {

namespace {

/// Memo key of the splice combiner: both edges, compared exactly. The level
/// and the remaining-control index are deterministic per key (any non-zero
/// edge pins the level via its node; two zero edges never reach the memo), so
/// they need not be part of it.
struct SpliceKey {
  vEdge x;
  vEdge z;

  friend bool operator==(const SpliceKey& a, const SpliceKey& b) noexcept {
    return a.x == b.x && a.z == b.z;
  }
};

std::size_t hashEdgeInto(std::size_t seed, const vEdge& e) noexcept {
  seed = detail::combineHash(seed, detail::ptrHash(e.p));
  seed = detail::combineHash(seed, detail::ptrHash(e.w.r));
  return detail::combineHash(seed, detail::ptrHash(e.w.i));
}

struct SpliceKeyHash {
  std::size_t operator()(const SpliceKey& k) const noexcept {
    return hashEdgeInto(hashEdgeInto(0, k.x), k.z);
  }
};

struct NodePtrHash {
  std::size_t operator()(const vNode* p) const noexcept {
    return detail::combineHash(0, detail::ptrHash(p));
  }
};

/// Open-addressed scratch memo reused across applyGate calls: `reset()` is
/// O(1) (a stamp bump invalidates every slot), so per-gate invocations on
/// small states pay no allocation or clearing — the dominant cost of the
/// node-based maps this replaces. Slots are valid only when their stamp
/// matches the current round; linear probing, doubling at 3/4 load.
template <class Key, class Value, class Hasher>
class ScratchMemo {
public:
  void reset() {
    ++stamp;
    entries = 0;
    if (stamp == 0) { // stamp wrapped: old rounds become ambiguous, clear
      for (auto& s : slots) {
        s.stamp = 0;
      }
      stamp = 1;
    }
  }

  [[nodiscard]] const Value* find(const Key& key) const noexcept {
    const std::size_t mask = slots.size() - 1;
    for (std::size_t idx = Hasher{}(key) & mask;; idx = (idx + 1) & mask) {
      const Slot& s = slots[idx];
      if (s.stamp != stamp) {
        return nullptr;
      }
      if (s.key == key) {
        return &s.value;
      }
    }
  }

  void insert(const Key& key, const Value& value) {
    if ((entries + 1) * 4 >= slots.size() * 3) {
      grow();
    }
    const std::size_t mask = slots.size() - 1;
    std::size_t idx = Hasher{}(key) & mask;
    while (slots[idx].stamp == stamp) {
      idx = (idx + 1) & mask;
    }
    slots[idx] = Slot{key, value, stamp};
    ++entries;
  }

private:
  struct Slot {
    Key key{};
    Value value{};
    std::uint32_t stamp = 0;
  };

  void grow() {
    std::vector<Slot> old = std::move(slots);
    slots.assign(old.size() * 2, Slot{});
    const std::size_t mask = slots.size() - 1;
    for (const Slot& s : old) {
      if (s.stamp != stamp) {
        continue;
      }
      std::size_t idx = Hasher{}(s.key) & mask;
      while (slots[idx].stamp == stamp) {
        idx = (idx + 1) & mask;
      }
      slots[idx] = s;
    }
  }

  std::vector<Slot> slots = std::vector<Slot>(64);
  std::uint32_t stamp = 0;
  std::size_t entries = 0;
};

enum Polarity : signed char { None, Positive, Negative };

/// Reusable per-thread scratch for applyGate: the memo tables and the small
/// vectors survive across invocations, so a gate application allocates
/// nothing in steady state (the per-gate unordered_map churn used to
/// dominate small-state circuits such as Grover).
struct ApplyScratch {
  ScratchMemo<const vNode*, vEdge, NodePtrHash> down;
  ScratchMemo<SpliceKey, vEdge, SpliceKeyHash> splice;
  std::vector<Polarity> polarity;
  QubitControls below;
};

/// State of one applyGate invocation: the gate, the control partition, and
/// the per-call memo tables. Uses only the public Package interface, so the
/// kernel shares makeVecNode normalization and add() semantics with the
/// general path by construction.
class ApplyCtx {
public:
  ApplyCtx(Package& pkg, const GateMatrix& gate, Qubit targetQubit,
           const QubitControls& sortedControls, Qubit rootLevel,
           ApplyScratch& scratch)
      : p(pkg), mat(gate), target(targetQubit), tol(pkg.tolerance()),
        polarity(scratch.polarity), below(scratch.below),
        downMemo(scratch.down), spliceMemo(scratch.splice) {
    downMemo.reset();
    spliceMemo.reset();
    // polarity[z] for control levels above the target; controls below the
    // target are consumed top-down by the splice, so keep them descending.
    polarity.assign(static_cast<std::size_t>(rootLevel) + 1, None);
    below.clear();
    for (const auto& c : sortedControls) {
      if (c.qubit > target) {
        polarity[static_cast<std::size_t>(c.qubit)] =
            c.positive ? Positive : Negative;
      } else {
        below.push_back(c);
      }
    }
    std::reverse(below.begin(), below.end());
  }

  /// Applies the gate to `node` (taken with weight one); the caller composes
  /// the incoming edge weight on top.
  vEdge run(vNode* node) { return down(vEdge{node, Complex::one}); }

private:
  /// Descends from the root to the target level.
  vEdge down(const vEdge& e) {
    if (e.w.exactlyZero()) {
      return vEdge::zero();
    }
    assert(!e.isTerminal() && e.p->v >= target && "applyGate: level underrun");
    vEdge nodeResult;
    if (const vEdge* hit = downMemo.find(e.p)) {
      nodeResult = *hit;
    } else {
      const Qubit z = e.p->v;
      if (z == target) {
        nodeResult = atTarget(e.p);
      } else {
        std::array<vEdge, 2> r{};
        switch (polarity[static_cast<std::size_t>(z)]) {
        case Positive:
          r = {e.p->e[0], down(e.p->e[1])};
          break;
        case Negative:
          r = {down(e.p->e[0]), e.p->e[1]};
          break;
        case None:
          r = {down(e.p->e[0]), down(e.p->e[1])};
          break;
        }
        nodeResult = p.makeVecNode(z, r);
      }
      downMemo.insert(e.p, nodeResult);
    }
    return compose(nodeResult, e.w);
  }

  /// Combines the target node's children through the 2x2 matrix, then grafts
  /// the result onto the original wherever a below-target control is idle.
  vEdge atTarget(vNode* node) {
    const vEdge c0 = node->e[0];
    const vEdge c1 = node->e[1];
    std::array<vEdge, 2> r{};
    for (std::size_t i = 0; i < 2; ++i) {
      const vEdge t0 = scale(mat[2 * i], c0);
      const vEdge t1 = scale(mat[2 * i + 1], c1);
      if (t0.w.exactlyZero()) {
        r[i] = t1;
      } else if (t1.w.exactlyZero()) {
        r[i] = t0;
      } else {
        r[i] = p.add(t0, t1);
      }
    }
    if (!below.empty()) {
      r[0] = splice(c0, r[0], static_cast<Qubit>(target - 1), 0);
      r[1] = splice(c1, r[1], static_cast<Qubit>(target - 1), 0);
    }
    return p.makeVecNode(target, r);
  }

  /// (1-P)x + P z, with P the projector onto the below-target controls
  /// below[ci..] being satisfied. x and z are sibling edges at `level`.
  vEdge splice(const vEdge& x, const vEdge& z, Qubit level, std::size_t ci) {
    if (ci == below.size()) {
      return z; // P = identity
    }
    if (x == z) {
      return x; // (1-P)x + P x = x, whatever P
    }
    const SpliceKey key{x, z};
    if (const vEdge* hit = spliceMemo.find(key)) {
      return *hit;
    }
    assert(level >= 0 && "applyGate: splice descended past a control");
    std::array<vEdge, 2> r{};
    const QubitControl& c = below[ci];
    if (c.qubit == level) {
      const std::size_t active = c.positive ? 1 : 0;
      const auto next = static_cast<Qubit>(level - 1);
      r[1 - active] = childOf(x, 1 - active, level);
      r[active] = splice(childOf(x, active, level), childOf(z, active, level),
                         next, ci + 1);
    } else {
      const auto next = static_cast<Qubit>(level - 1);
      r[0] = splice(childOf(x, 0, level), childOf(z, 0, level), next, ci);
      r[1] = splice(childOf(x, 1, level), childOf(z, 1, level), next, ci);
    }
    const vEdge result = p.makeVecNode(level, r);
    spliceMemo.insert(key, result);
    return result;
  }

  /// k-th child of `e` with the edge weight multiplied through (zero edges
  /// have no children; their restriction is zero).
  vEdge childOf(const vEdge& e, std::size_t k, [[maybe_unused]] Qubit level) {
    if (e.w.exactlyZero()) {
      return vEdge::zero();
    }
    assert(!e.isTerminal() && e.p->v == level &&
           "applyGate: state not fully expanded");
    return compose(e.p->e[k], e.w);
  }

  /// m * e with exact-one elision and ~zero dropping, mirroring multiply2's
  /// term handling so weights land on the same table entries.
  vEdge scale(const ComplexValue& m, const vEdge& e) {
    if (e.w.exactlyZero() || m.approximatelyZero(tol)) {
      return vEdge::zero();
    }
    if (m.exactlyOne()) {
      return e;
    }
    const ComplexValue w = simd::mul(m, e.w.toValue());
    if (w.approximatelyZero(tol)) {
      return vEdge::zero();
    }
    return {e.p, p.lookup(w)};
  }

  /// Edge weight composed onto a (weight-canonical) node result.
  vEdge compose(const vEdge& nodeResult, const Complex& w) {
    if (nodeResult.w.exactlyZero()) {
      return vEdge::zero();
    }
    if (w.exactlyOne()) {
      return nodeResult;
    }
    if (nodeResult.w.exactlyOne()) {
      // Both weights are canonical: 1 * w is value-exact and
      // lookup(val(w)) == w, so the multiply and the lookup are elided. A
      // canonical non-zero weight never falls in the zero window.
      return {nodeResult.p, w};
    }
    // Both weights canonical and non-trivial: go through the package's
    // weight-product memo (same multiply + zero-window + intern sequence,
    // with the cache in front).
    const Complex product = p.mulWeightsCached(nodeResult.w, w);
    if (product.exactlyZero()) {
      return vEdge::zero();
    }
    return {nodeResult.p, product};
  }

  Package& p;
  const GateMatrix& mat;
  Qubit target;
  double tol;
  std::vector<Polarity>& polarity;
  QubitControls& below; ///< controls below the target, descending
  ScratchMemo<const vNode*, vEdge, NodePtrHash>& downMemo;
  ScratchMemo<SpliceKey, vEdge, SpliceKeyHash>& spliceMemo;
};

} // namespace

vEdge Package::applyGate(const GateMatrix& mat, Qubit target, const vEdge& v) {
  return applyGate(mat, target, QubitControls{}, v);
}

vEdge Package::applyGate(const GateMatrix& mat, Qubit target,
                         const QubitControls& controls, const vEdge& v) {
  const detail::DDOpSpan span("applyGate");
  if (v.isTerminal()) {
    throw std::invalid_argument("applyGate: terminal state has no qubits");
  }
  if (target < 0 || target > v.p->v) {
    throw std::invalid_argument("applyGate: target outside the state");
  }
  QubitControls ctrls = controls;
  std::sort(ctrls.begin(), ctrls.end());
  for (std::size_t k = 0; k < ctrls.size(); ++k) {
    const Qubit q = ctrls[k].qubit;
    if (q < 0 || q > v.p->v || q == target ||
        (k > 0 && ctrls[k - 1].qubit == q)) {
      throw std::invalid_argument("applyGate: invalid control qubit");
    }
  }
  if (v.w.exactlyZero()) {
    return vEdge::zero();
  }

  const double tol = tolerance();
  if (mat[1].approximatelyZero(tol) && mat[2].approximatelyZero(tol)) {
    ++applyCounters.diagonal;
  } else if (mat[0].approximatelyZero(tol) && mat[3].approximatelyZero(tol)) {
    ++applyCounters.permutation;
  } else {
    ++applyCounters.generic;
  }
  QDD_OBS_COUNTER("dd.apply.fast", applyCounters.fast());

  static thread_local ApplyScratch scratch;
  ApplyCtx ctx(*this, mat, target, ctrls, v.p->v, scratch);
  const vEdge r = ctx.run(v.p);
  if (r.w.exactlyZero()) {
    return vEdge::zero();
  }
  const Complex w = mulWeights(r.w, v.w);
  if (w.exactlyZero()) {
    return vEdge::zero();
  }
  return {r.p, w};
}

vEdge Package::applySwap(Qubit t1, Qubit t2, const QubitControls& controls,
                         const vEdge& v) {
  if (t1 == t2) {
    throw std::invalid_argument("applySwap: identical targets");
  }
  // Same decomposition as makeSWAPDD — SWAP = CX(t1->t2) . CX(t2->t1) .
  // CX(t1->t2) with the extra controls on the middle CX — so the result
  // matches multiply(makeSWAPDD(...), v) node for node. Each CX is a pure
  // child splice.
  const vEdge a = applyGate(X_MAT, t2, {{t1, true}}, v);
  QubitControls middleControls = controls;
  middleControls.push_back({t2, true});
  const vEdge b = applyGate(X_MAT, t1, middleControls, a);
  return applyGate(X_MAT, t2, {{t1, true}}, b);
}

} // namespace qdd
