#include "qdd/dd/Reordering.hpp"

#include <algorithm>
#include <stdexcept>

namespace qdd {

ComplexValue OrderedVector::amplitude(Package& pkg,
                                      std::uint64_t logicalIndex) const {
  // translate the logical basis index into the DD's level indexing
  std::uint64_t physical = 0;
  for (std::size_t q = 0; q < levelOfQubit.size(); ++q) {
    if ((logicalIndex >> q) & 1ULL) {
      physical |= 1ULL << static_cast<unsigned>(levelOfQubit[q]);
    }
  }
  return pkg.getValueByIndex(dd, physical);
}

OrderedVector withIdentityOrder(const vEdge& e) {
  OrderedVector state;
  state.dd = e;
  if (!e.isTerminal()) {
    const auto n = static_cast<std::size_t>(e.p->v) + 1;
    state.levelOfQubit.resize(n);
    for (std::size_t q = 0; q < n; ++q) {
      state.levelOfQubit[q] = static_cast<Qubit>(q);
    }
  }
  return state;
}

void exchangeAdjacent(Package& pkg, OrderedVector& state, Qubit level) {
  const auto n = state.levelOfQubit.size();
  if (level < 0 || static_cast<std::size_t>(level) + 1 >= n) {
    throw std::invalid_argument("exchangeAdjacent: level out of range");
  }
  // Exchanging the *contents* of two adjacent wires while also swapping
  // their labels leaves the represented function unchanged. The caller is
  // expected to hold a reference on state.dd; the invariant is maintained.
  const mEdge swap = pkg.makeSWAPDD(n, {}, level, level + 1);
  const vEdge next = pkg.multiply(swap, state.dd);
  pkg.incRef(next);
  pkg.decRef(state.dd);
  state.dd = next;
  for (auto& l : state.levelOfQubit) {
    if (l == level) {
      l = static_cast<Qubit>(level + 1);
    } else if (l == level + 1) {
      l = level;
    }
  }
  pkg.garbageCollect();
}

void moveQubitToLevel(Package& pkg, OrderedVector& state, Qubit q,
                      Qubit target) {
  if (q < 0 || static_cast<std::size_t>(q) >= state.levelOfQubit.size() ||
      target < 0 ||
      static_cast<std::size_t>(target) >= state.levelOfQubit.size()) {
    throw std::invalid_argument("moveQubitToLevel: out of range");
  }
  while (state.levelOfQubit[static_cast<std::size_t>(q)] < target) {
    exchangeAdjacent(pkg, state,
                     state.levelOfQubit[static_cast<std::size_t>(q)]);
  }
  while (state.levelOfQubit[static_cast<std::size_t>(q)] > target) {
    exchangeAdjacent(
        pkg, state,
        static_cast<Qubit>(
            state.levelOfQubit[static_cast<std::size_t>(q)] - 1));
  }
}

namespace {
/// Shared Rudell-style sweep over both ordered representations.
template <class State>
std::size_t siftImpl(Package& pkg, State& state) {
  const auto n = state.levelOfQubit.size();
  if (n < 2) {
    return 0;
  }
  std::size_t improvements = 0;
  for (std::size_t q = 0; q < n; ++q) {
    const auto qubit = static_cast<Qubit>(q);
    const std::size_t before = Package::size(state.dd);
    std::size_t bestSize = before;
    Qubit bestLevel = state.levelOfQubit[q];
    // sweep the qubit through every level, recording the best position
    for (Qubit level = 0; level < static_cast<Qubit>(n); ++level) {
      moveQubitToLevel(pkg, state, qubit, level);
      const std::size_t size = Package::size(state.dd);
      if (size < bestSize) {
        bestSize = size;
        bestLevel = level;
      }
    }
    moveQubitToLevel(pkg, state, qubit, bestLevel);
    if (bestSize < before) {
      ++improvements;
    }
  }
  return improvements;
}
} // namespace

std::size_t sift(Package& pkg, OrderedVector& state) {
  return siftImpl(pkg, state);
}

// --- matrices ------------------------------------------------------------------

ComplexValue OrderedMatrix::entry(Package& pkg, std::uint64_t logicalRow,
                                  std::uint64_t logicalCol) const {
  std::uint64_t physRow = 0;
  std::uint64_t physCol = 0;
  for (std::size_t q = 0; q < levelOfQubit.size(); ++q) {
    const auto level = static_cast<unsigned>(levelOfQubit[q]);
    if ((logicalRow >> q) & 1ULL) {
      physRow |= 1ULL << level;
    }
    if ((logicalCol >> q) & 1ULL) {
      physCol |= 1ULL << level;
    }
  }
  return pkg.getMatrixEntry(dd, physRow, physCol);
}

OrderedMatrix withIdentityOrder(const mEdge& e) {
  return withIdentityOrder(
      e, e.isTerminal() ? 0 : static_cast<std::size_t>(e.p->v) + 1);
}

OrderedMatrix withIdentityOrder(const mEdge& e, std::size_t n) {
  if (!e.isTerminal() && static_cast<std::size_t>(e.p->v) >= n) {
    throw std::invalid_argument(
        "withIdentityOrder: root level exceeds the span");
  }
  OrderedMatrix state;
  state.dd = e;
  state.levelOfQubit.resize(n);
  for (std::size_t q = 0; q < n; ++q) {
    state.levelOfQubit[q] = static_cast<Qubit>(q);
  }
  return state;
}

void exchangeAdjacent(Package& pkg, OrderedMatrix& state, Qubit level) {
  const auto n = state.levelOfQubit.size();
  if (level < 0 || static_cast<std::size_t>(level) + 1 >= n) {
    throw std::invalid_argument("exchangeAdjacent: level out of range");
  }
  const mEdge swap = pkg.makeSWAPDD(n, {}, level, level + 1);
  const mEdge next = pkg.multiply(swap, pkg.multiply(state.dd, swap));
  pkg.incRef(next);
  pkg.decRef(state.dd);
  state.dd = next;
  for (auto& l : state.levelOfQubit) {
    if (l == level) {
      l = static_cast<Qubit>(level + 1);
    } else if (l == level + 1) {
      l = level;
    }
  }
  pkg.garbageCollect();
}

void moveQubitToLevel(Package& pkg, OrderedMatrix& state, Qubit q,
                      Qubit target) {
  if (q < 0 || static_cast<std::size_t>(q) >= state.levelOfQubit.size() ||
      target < 0 ||
      static_cast<std::size_t>(target) >= state.levelOfQubit.size()) {
    throw std::invalid_argument("moveQubitToLevel: out of range");
  }
  while (state.levelOfQubit[static_cast<std::size_t>(q)] < target) {
    exchangeAdjacent(pkg, state,
                     state.levelOfQubit[static_cast<std::size_t>(q)]);
  }
  while (state.levelOfQubit[static_cast<std::size_t>(q)] > target) {
    exchangeAdjacent(
        pkg, state,
        static_cast<Qubit>(
            state.levelOfQubit[static_cast<std::size_t>(q)] - 1));
  }
}

std::size_t sift(Package& pkg, OrderedMatrix& state) {
  return siftImpl(pkg, state);
}

} // namespace qdd
