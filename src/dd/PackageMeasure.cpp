#include "qdd/dd/Package.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

namespace qdd {

// Squared norm of the sub-DD rooted at `p` (assuming a weight-1 incoming
// edge). Memoized per call; works under any normalization scheme.
double Package::nodeNorm(vNode* p, std::map<vNode*, double>& cache) {
  if (p->isTerminal()) {
    return 1.;
  }
  if (const auto it = cache.find(p); it != cache.end()) {
    return it->second;
  }
  double sum = 0.;
  for (const auto& child : p->e) {
    if (child.w.exactlyZero()) {
      continue;
    }
    sum += child.w.toValue().mag2() * nodeNorm(child.p, cache);
  }
  cache.emplace(p, sum);
  return sum;
}

double Package::probabilityOfOne(const vEdge& e, Qubit q) {
  if (e.w.exactlyZero()) {
    throw std::invalid_argument("probabilityOfOne: zero state");
  }
  std::map<vNode*, double> normCache;
  const double total = nodeNorm(e.p, normCache);
  if (total <= 0.) {
    throw std::invalid_argument("probabilityOfOne: zero state");
  }
  // g(p) = unnormalized probability mass of paths through the |1>-branch of
  // level q, for the sub-DD rooted at p with weight 1.
  std::unordered_map<vNode*, double> gCache;
  auto g = [&](auto&& self, vNode* p) -> double {
    if (p->isTerminal()) {
      return 0.; // qubit level q never reached (zero-stub path)
    }
    if (const auto it = gCache.find(p); it != gCache.end()) {
      return it->second;
    }
    double result = 0.;
    if (p->v == q) {
      const auto& oneChild = p->e[1];
      if (!oneChild.w.exactlyZero()) {
        result = oneChild.w.toValue().mag2() * nodeNorm(oneChild.p, normCache);
      }
    } else {
      assert(p->v > q && "probabilityOfOne: qubit level skipped");
      for (const auto& child : p->e) {
        if (child.w.exactlyZero()) {
          continue;
        }
        result += child.w.toValue().mag2() * self(self, child.p);
      }
    }
    gCache.emplace(p, result);
    return result;
  };
  return g(g, e.p) / total;
}

void Package::applyCollapse(vEdge& root, Qubit q, bool outcome,
                            bool shiftToZero, double outcomeProbability) {
  if (outcomeProbability <= tolerance()) {
    throw std::invalid_argument("collapse: outcome has zero probability");
  }
  std::unordered_map<vNode*, vEdge> memo;
  auto rec = [&](auto&& self, vNode* p) -> vEdge {
    assert(!p->isTerminal() && "collapse: qubit level not present");
    if (const auto it = memo.find(p); it != memo.end()) {
      return it->second;
    }
    vEdge result;
    if (p->v == q) {
      const vEdge& kept = p->e[outcome ? 1 : 0];
      if (kept.w.exactlyZero()) {
        result = vEdge::zero();
      } else if (shiftToZero || !outcome) {
        // reset semantics: surviving branch becomes the |0> branch
        result = makeVecNode(q, {kept, vEdge::zero()});
      } else {
        result = makeVecNode(q, {vEdge::zero(), kept});
      }
    } else {
      assert(p->v > q && "collapse: qubit level skipped");
      std::array<vEdge, 2> children{};
      for (std::size_t k = 0; k < 2; ++k) {
        const vEdge& child = p->e[k];
        if (child.w.exactlyZero()) {
          children[k] = vEdge::zero();
          continue;
        }
        const vEdge sub = self(self, child.p);
        if (sub.w.exactlyZero()) {
          children[k] = vEdge::zero();
          continue;
        }
        children[k] = {sub.p,
                       lookup(sub.w.toValue() * child.w.toValue())};
      }
      result = makeVecNode(p->v, children);
    }
    memo.emplace(p, result);
    return result;
  };

  const vEdge collapsed = rec(rec, root.p);
  if (collapsed.w.exactlyZero()) {
    throw std::logic_error("collapse: state vanished");
  }
  const ComplexValue newWeight = root.w.toValue() * collapsed.w.toValue() *
                                 ComplexValue{1. / std::sqrt(outcomeProbability),
                                              0.};
  const vEdge newRoot{collapsed.p, lookup(newWeight)};
  incRef(newRoot);
  decRef(root);
  root = newRoot;
  garbageCollect();
}

int Package::measureOneCollapsing(vEdge& root, Qubit q,
                                  std::mt19937_64& rng) {
  const double p1 = probabilityOfOne(root, q);
  std::uniform_real_distribution<double> dist(0., 1.);
  const bool outcome = dist(rng) < p1;
  applyCollapse(root, q, outcome, /*shiftToZero=*/false,
                outcome ? p1 : 1. - p1);
  return outcome ? 1 : 0;
}

void Package::forceMeasureOne(vEdge& root, Qubit q, bool outcome) {
  const double p1 = probabilityOfOne(root, q);
  applyCollapse(root, q, outcome, /*shiftToZero=*/false,
                outcome ? p1 : 1. - p1);
}

int Package::resetQubit(vEdge& root, Qubit q, std::mt19937_64& rng) {
  const double p1 = probabilityOfOne(root, q);
  std::uniform_real_distribution<double> dist(0., 1.);
  const bool outcome = dist(rng) < p1;
  applyCollapse(root, q, outcome, /*shiftToZero=*/true,
                outcome ? p1 : 1. - p1);
  return outcome ? 1 : 0;
}

void Package::resetQubitTo(vEdge& root, Qubit q, bool outcome) {
  const double p1 = probabilityOfOne(root, q);
  applyCollapse(root, q, outcome, /*shiftToZero=*/true,
                outcome ? p1 : 1. - p1);
}

std::string Package::sample(const vEdge& root, std::mt19937_64& rng) {
  if (root.isTerminal()) {
    throw std::invalid_argument("sample: terminal edge has no qubits");
  }
  std::map<vNode*, double> normCache;
  std::uniform_real_distribution<double> dist(0., 1.);
  const auto n = static_cast<std::size_t>(root.p->v) + 1;
  std::string bits(n, '0');
  const vNode* p = root.p;
  while (p != nullptr && !p->isTerminal()) {
    // Randomized single-path traversal ([16]): the squared magnitude of each
    // successor (weighted by its subtree norm) gives the branch probability.
    double mass[2] = {0., 0.};
    for (std::size_t k = 0; k < 2; ++k) {
      const auto& child = p->e[k];
      if (child.w.exactlyZero()) {
        continue;
      }
      mass[k] = child.w.toValue().mag2() * nodeNorm(child.p, normCache);
    }
    const double total = mass[0] + mass[1];
    if (total <= 0.) {
      throw std::logic_error("sample: zero-norm subtree");
    }
    const bool one = dist(rng) * total >= mass[0];
    // string is printed q_{n-1} ... q_0 (big-endian, paper Sec. II)
    bits[n - 1 - static_cast<std::size_t>(p->v)] = one ? '1' : '0';
    p = p->e[one ? 1 : 0].p;
  }
  return bits;
}

std::map<std::string, std::size_t> Package::sampleCounts(const vEdge& root,
                                                         std::size_t shots,
                                                         std::mt19937_64& rng) {
  std::map<std::string, std::size_t> counts;
  for (std::size_t s = 0; s < shots; ++s) {
    ++counts[sample(root, rng)];
  }
  return counts;
}

std::string Package::measureAll(vEdge& root, bool collapse,
                                std::mt19937_64& rng) {
  const std::string bits = sample(root, rng);
  if (collapse) {
    const auto n = bits.size();
    std::vector<bool> state(n, false);
    std::uint64_t index = 0;
    for (std::size_t k = 0; k < n; ++k) {
      const bool one = bits[n - 1 - k] == '1';
      state[k] = one;
      if (one) {
        index |= (1ULL << k);
      }
    }
    // Preserve the global phase of the measured amplitude (as the paper's
    // tool does when collapsing on measurement).
    const ComplexValue amp = getValueByIndex(root, index);
    vEdge basis = makeBasisState(n, state);
    const double mag = amp.mag();
    if (mag > tolerance()) {
      basis.w = lookup(amp * (1. / mag));
    }
    incRef(basis);
    decRef(root);
    root = basis;
    garbageCollect();
  }
  return bits;
}

} // namespace qdd
