#include "qdd/dd/Serialization.hpp"

#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace qdd {

namespace {

template <class Node>
void serializeImpl(const Edge<Node>& root, std::ostream& os, const char* kind,
                   int version, long span) {
  os << kind << " " << version << "\n";
  if (span >= 0) {
    os << "span " << span << "\n";
  }
  if (root.w.exactlyZero() || root.isTerminal()) {
    os << "root -1 " << root.w.real() << " " << root.w.imag() << "\n";
    os << "end\n";
    return;
  }
  // post-order ids: children appear before parents
  std::unordered_map<const Node*, long> ids;
  std::ostringstream body;
  long nextId = 0;
  auto visit = [&](auto&& self, const Node* p) -> long {
    if (p->isTerminal()) {
      return -1;
    }
    if (const auto it = ids.find(p); it != ids.end()) {
      return it->second;
    }
    std::array<long, RADIX<Node>> childIds{};
    for (std::size_t k = 0; k < RADIX<Node>; ++k) {
      childIds[k] =
          p->e[k].w.exactlyZero() ? -1 : self(self, p->e[k].p);
    }
    const long id = nextId++;
    ids.emplace(p, id);
    body << "node " << id << " " << p->v;
    body.precision(17);
    for (std::size_t k = 0; k < RADIX<Node>; ++k) {
      body << " " << childIds[k] << " " << p->e[k].w.real() << " "
           << p->e[k].w.imag();
    }
    body << "\n";
    return id;
  };
  const long rootId = visit(visit, root.p);
  os.precision(17);
  os << "root " << rootId << " " << root.w.real() << " " << root.w.imag()
     << "\n";
  os << body.str();
  os << "end\n";
}

[[noreturn]] void malformed(const std::string& what) {
  throw std::runtime_error("deserialize: malformed input (" + what + ")");
}

struct ParsedDD {
  int version = 1;
  long span = -1; ///< declared qubit span (matrix v2), -1 if absent
  long rootId = -1;
  ComplexValue rootWeight;
  struct NodeLine {
    long id;
    Qubit level;
    std::vector<long> children;
    std::vector<ComplexValue> weights;
  };
  std::vector<NodeLine> nodes;
};

ParsedDD parseBody(std::istream& is, const char* kind, std::size_t radix,
                   int maxVersion) {
  std::string word;
  if (!(is >> word) || word != kind) {
    malformed("expected header '" + std::string(kind) + "'");
  }
  ParsedDD dd;
  if (!(is >> dd.version) || dd.version < 1 || dd.version > maxVersion) {
    malformed("unsupported version");
  }
  if (!(is >> word)) {
    malformed("truncated input");
  }
  if (word == "span") {
    if (dd.version < 2) {
      malformed("span line requires version 2");
    }
    if (!(is >> dd.span) || dd.span < 0) {
      malformed("bad span line");
    }
    if (!(is >> word)) {
      malformed("truncated input");
    }
  }
  if (word != "root") {
    malformed("expected root line");
  }
  if (!(is >> dd.rootId >> dd.rootWeight.re >> dd.rootWeight.im)) {
    malformed("bad root line");
  }
  while (is >> word) {
    if (word == "end") {
      return dd;
    }
    if (word != "node") {
      malformed("unexpected token '" + word + "'");
    }
    ParsedDD::NodeLine line;
    long level = 0;
    if (!(is >> line.id >> level)) {
      malformed("bad node line");
    }
    line.level = static_cast<Qubit>(level);
    for (std::size_t k = 0; k < radix; ++k) {
      long child = 0;
      ComplexValue w;
      if (!(is >> child >> w.re >> w.im)) {
        malformed("bad edge in node line");
      }
      line.children.push_back(child);
      line.weights.push_back(w);
    }
    dd.nodes.push_back(std::move(line));
  }
  malformed("missing 'end'");
}

/// Wraps `e` in explicit identity levels up to (excluding) `to`, so a
/// Materialize-mode package can ingest identity-skipping (v2) input.
mEdge padIdentity(Package& pkg, mEdge e, Qubit to) {
  const Qubit from = e.isTerminal() ? 0 : static_cast<Qubit>(e.p->v + 1);
  for (Qubit lev = from; lev < to; ++lev) {
    e = pkg.makeMatNode(lev, {e, mEdge::zero(), mEdge::zero(), e});
  }
  return e;
}

} // namespace

void serialize(const vEdge& e, std::ostream& os) {
  serializeImpl(e, os, "qdd-vector", 1, -1);
}
void serialize(const mEdge& e, std::ostream& os) {
  serialize(e, os,
            e.isTerminal() ? 0 : static_cast<std::size_t>(e.p->v) + 1);
}
void serialize(const mEdge& e, std::ostream& os, std::size_t span) {
  if (!e.isTerminal() && static_cast<std::size_t>(e.p->v) >= span) {
    throw std::invalid_argument("serialize: matrix exceeds the declared span");
  }
  serializeImpl(e, os, "qdd-matrix", 2, static_cast<long>(span));
}

std::string serializeToString(const vEdge& e) {
  std::ostringstream ss;
  serialize(e, ss);
  return ss.str();
}
std::string serializeToString(const mEdge& e) {
  std::ostringstream ss;
  serialize(e, ss);
  return ss.str();
}
std::string serializeToString(const mEdge& e, std::size_t span) {
  std::ostringstream ss;
  serialize(e, ss, span);
  return ss.str();
}

vEdge deserializeVector(Package& pkg, std::istream& is) {
  const ParsedDD dd = parseBody(is, "qdd-vector", 2, 1);
  if (dd.rootId == -1) {
    return dd.rootWeight.exactlyZero() ? vEdge::zero()
                                       : vEdge::terminal(pkg.lookup(dd.rootWeight));
  }
  std::map<long, vEdge> built;
  for (const auto& line : dd.nodes) {
    if (line.level >= 0) {
      pkg.resize(static_cast<std::size_t>(line.level) + 1);
    }
    std::array<vEdge, 2> children{};
    for (std::size_t k = 0; k < 2; ++k) {
      const long childId = line.children[k];
      const ComplexValue w = line.weights[k];
      vEdge child;
      if (childId == -1) {
        child = w.exactlyZero() ? vEdge::zero()
                                : vEdge::terminal(pkg.lookup(w));
      } else {
        const auto it = built.find(childId);
        if (it == built.end()) {
          malformed("child referenced before definition");
        }
        child = it->second;
        child.w = pkg.lookup(child.w.toValue() * w);
      }
      children[k] = child;
    }
    if (built.contains(line.id)) {
      malformed("duplicate node id");
    }
    built.emplace(line.id, pkg.makeVecNode(line.level, children));
  }
  const auto it = built.find(dd.rootId);
  if (it == built.end()) {
    malformed("root id not defined");
  }
  vEdge root = it->second;
  root.w = pkg.lookup(root.w.toValue() * dd.rootWeight);
  return root;
}

mEdge deserializeMatrix(Package& pkg, std::istream& is) {
  const ParsedDD dd = parseBody(is, "qdd-matrix", 4, 2);
  const bool materialize = pkg.identityMode() == IdentityMode::Materialize;
  if (dd.rootId == -1) {
    mEdge root = dd.rootWeight.exactlyZero()
                     ? mEdge::zero()
                     : mEdge::terminal(pkg.lookup(dd.rootWeight));
    if (materialize && dd.span > 0 && !root.w.exactlyZero()) {
      // v2 terminal root = identity on `span` qubits
      pkg.resize(static_cast<std::size_t>(dd.span));
      root = padIdentity(pkg, root, static_cast<Qubit>(dd.span));
    }
    return root;
  }
  std::map<long, mEdge> built;
  for (const auto& line : dd.nodes) {
    if (line.level >= 0) {
      pkg.resize(static_cast<std::size_t>(line.level) + 1);
    }
    std::array<mEdge, 4> children{};
    for (std::size_t k = 0; k < 4; ++k) {
      const long childId = line.children[k];
      const ComplexValue w = line.weights[k];
      mEdge child;
      if (childId == -1) {
        child = w.exactlyZero() ? mEdge::zero()
                                : mEdge::terminal(pkg.lookup(w));
      } else {
        const auto it = built.find(childId);
        if (it == built.end()) {
          malformed("child referenced before definition");
        }
        child = it->second;
        child.w = pkg.lookup(child.w.toValue() * w);
      }
      if (materialize && !child.w.exactlyZero()) {
        // re-expand any level gap the (v2) input skipped
        child = padIdentity(pkg, child, line.level);
      }
      children[k] = child;
    }
    if (built.contains(line.id)) {
      malformed("duplicate node id");
    }
    built.emplace(line.id, pkg.makeMatNode(line.level, children));
  }
  const auto it = built.find(dd.rootId);
  if (it == built.end()) {
    malformed("root id not defined");
  }
  mEdge root = it->second;
  root.w = pkg.lookup(root.w.toValue() * dd.rootWeight);
  if (materialize && dd.span > 0 && !root.w.exactlyZero()) {
    pkg.resize(static_cast<std::size_t>(dd.span));
    root = padIdentity(pkg, root, static_cast<Qubit>(dd.span));
  }
  return root;
}

vEdge deserializeVectorFromString(Package& pkg, const std::string& text) {
  std::istringstream ss(text);
  return deserializeVector(pkg, ss);
}
mEdge deserializeMatrixFromString(Package& pkg, const std::string& text) {
  std::istringstream ss(text);
  return deserializeMatrix(pkg, ss);
}

} // namespace qdd
