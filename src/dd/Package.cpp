#include "qdd/dd/Package.hpp"
#include "qdd/obs/Obs.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <unordered_set>

namespace qdd {

vNode vNode::terminalNode{};
mNode mNode::terminalNode{};

// --- identity-representation mode (QDD_DD_IDENTITY, same pattern as the
// --- QDD_APPLY ablation switch in bridge/DDBuilder) --------------------------

IdentityMode parseIdentityMode(const char* value) noexcept {
  if (value != nullptr && std::strcmp(value, "materialize") == 0) {
    return IdentityMode::Materialize;
  }
  return IdentityMode::Strip;
}

IdentityMode identityModeFromEnv() {
  return parseIdentityMode(std::getenv("QDD_DD_IDENTITY"));
}

namespace {
std::atomic<IdentityMode>& globalIdentityModeRef() {
  static std::atomic<IdentityMode> mode{identityModeFromEnv()};
  return mode;
}
} // namespace

IdentityMode globalIdentityMode() {
  return globalIdentityModeRef().load(std::memory_order_relaxed);
}

void setGlobalIdentityMode(IdentityMode mode) {
  globalIdentityModeRef().store(mode, std::memory_order_relaxed);
}

const char* toString(IdentityMode mode) noexcept {
  return mode == IdentityMode::Strip ? "strip" : "materialize";
}

// --- table concurrency mode (QDD_APPLY=parallel; docs/PARALLELISM.md) -------

ConcurrencyMode parseConcurrencyMode(const char* value) noexcept {
  if (value != nullptr && std::strcmp(value, "parallel") == 0) {
    return ConcurrencyMode::Concurrent;
  }
  return ConcurrencyMode::Serial;
}

ConcurrencyMode concurrencyModeFromEnv() {
  // QDD_APPLY is primarily the bridge's apply-engine switch; "parallel" is
  // the one value that also changes how packages are built, so the dd layer
  // reads it directly (same pattern as QDD_DD_IDENTITY above).
  return parseConcurrencyMode(std::getenv("QDD_APPLY"));
}

namespace {
std::atomic<ConcurrencyMode>& globalConcurrencyModeRef() {
  static std::atomic<ConcurrencyMode> mode{concurrencyModeFromEnv()};
  return mode;
}
} // namespace

ConcurrencyMode globalConcurrencyMode() {
  return globalConcurrencyModeRef().load(std::memory_order_relaxed);
}

void setGlobalConcurrencyMode(ConcurrencyMode mode) {
  globalConcurrencyModeRef().store(mode, std::memory_order_relaxed);
}

const char* toString(ConcurrencyMode mode) noexcept {
  return mode == ConcurrencyMode::Concurrent ? "concurrent" : "serial";
}

Package::Package(std::size_t numQubits, NormalizationScheme normScheme,
                 double tolerance, IdentityMode identityMode,
                 ConcurrencyMode concurrencyMode)
    : nqubits(numQubits), scheme(normScheme), idMode(identityMode),
      concurrency(concurrencyMode), cTable(tolerance),
      vTable(vMem, numQubits,
             concurrencyMode == ConcurrencyMode::Concurrent ? CONCURRENT_SHARDS
                                                            : 1),
      mTable(mMem, numQubits,
             concurrencyMode == ConcurrencyMode::Concurrent ? CONCURRENT_SHARDS
                                                            : 1) {
  if (concurrency == ConcurrencyMode::Concurrent) {
    // Flip every table layer into its shared-safe variant once, up front:
    // node/entry pools take a spinlock, compute caches stripe-lock their
    // slots, the real table publishes entries by CAS.
    vMem.setConcurrent(true);
    mMem.setConcurrent(true);
    cTable.realTable().setConcurrent(true);
    addVecTable.setConcurrent(true);
    addMatTable.setConcurrent(true);
    multMatVecTable.setConcurrent(true);
    multMatMatTable.setConcurrent(true);
    conjTransTable.setConcurrent(true);
    innerProductTable.setConcurrent(true);
    mulWeightTable.setConcurrent(true);
    mulWeight3Table.setConcurrent(true);
  }
  idTable.reserve(nqubits + 1);
  idTable.push_back(mEdge::one());
}

void Package::resize(std::size_t n) {
  if (n <= nqubits) {
    return;
  }
  nqubits = n;
  vTable.resize(n);
  mTable.resize(n);
}

void Package::shrink(std::size_t n) {
  if (n >= nqubits) {
    return;
  }
  // Unpin the cached identity DDs that span the removed levels so the
  // subsequent sweep can reclaim them.
  while (idTable.size() > n + 1) {
    decRef(idTable.back());
    idTable.pop_back();
  }
  // Published nodes are about to be freed: open a new allocation epoch first
  // so compute-table entries stamped earlier reject recycled pointers.
  ++generation;
  vMem.setGeneration(generation);
  mMem.setGeneration(generation);
  cTable.realTable().setAllocationGeneration(generation);
  setComputeEpochs();

  const auto releaseV = [this](vNode* node) {
    for (const auto& child : node->e) {
      decRefEdge(child);
    }
  };
  const auto releaseM = [this](mNode* node) {
    for (const auto& child : node->e) {
      decRefEdge(child);
    }
  };
  vTable.resize(n, releaseV);
  mTable.resize(n, releaseM);
  nqubits = n;
  // Sweep nodes at surviving levels that just lost their last reference
  // (children of the removed levels) and unreferenced weights.
  garbageCollect(true);
}

// --- reference counting ------------------------------------------------------

// Reference counts are 16-bit and saturate at IMMORTAL_REF: a node that
// ever accumulates 65535 parents is pinned for the package's lifetime
// (inc/dec become no-ops, GC never reclaims it). This is what lets the
// count live in the node's packed cache line.
template <class Node> void Package::incRefEdge(const Edge<Node>& e) noexcept {
  if (concurrency == ConcurrencyMode::Concurrent) {
    // Forked subtasks pin children of freshly inserted nodes from many
    // threads at once. The saturation bound must hold under contention, so
    // the increment is a CAS loop instead of a blind fetch_add (which could
    // carry a racing count past IMMORTAL_REF). Relaxed ordering suffices:
    // counts are only *consulted* at quiescent GC points.
    ComplexTable::incRefAtomic(e.w);
    if (!e.isTerminal()) {
      auto cur = __atomic_load_n(&e.p->ref, __ATOMIC_RELAXED);
      while (cur < IMMORTAL_REF &&
             !__atomic_compare_exchange_n(&e.p->ref, &cur,
                                          static_cast<std::uint16_t>(cur + 1),
                                          true, __ATOMIC_RELAXED,
                                          __ATOMIC_RELAXED)) {
      }
    }
    return;
  }
  ComplexTable::incRef(e.w);
  if (!e.isTerminal() && e.p->ref < IMMORTAL_REF) {
    ++e.p->ref;
  }
}

template <class Node> void Package::decRefEdge(const Edge<Node>& e) noexcept {
  if (concurrency == ConcurrencyMode::Concurrent) {
    ComplexTable::decRefAtomic(e.w);
    if (!e.isTerminal()) {
      auto cur = __atomic_load_n(&e.p->ref, __ATOMIC_RELAXED);
      while (cur < IMMORTAL_REF && cur > 0 &&
             !__atomic_compare_exchange_n(&e.p->ref, &cur,
                                          static_cast<std::uint16_t>(cur - 1),
                                          true, __ATOMIC_RELAXED,
                                          __ATOMIC_RELAXED)) {
      }
      assert(cur > 0 && "node reference count underflow");
    }
    return;
  }
  ComplexTable::decRef(e.w);
  if (!e.isTerminal() && e.p->ref < IMMORTAL_REF) {
    assert(e.p->ref > 0 && "node reference count underflow");
    --e.p->ref;
  }
}

void Package::incRef(const vEdge& e) noexcept { incRefEdge(e); }
void Package::decRef(const vEdge& e) noexcept { decRefEdge(e); }
void Package::incRef(const mEdge& e) noexcept { incRefEdge(e); }
void Package::decRef(const mEdge& e) noexcept { decRefEdge(e); }

bool Package::garbageCollect(bool force) {
  if (parallelDepth > 0) {
    // Fork/join region in flight: forked subtasks hold edges to nodes whose
    // reference counts are still zero, and every table layer assumes GC only
    // runs at quiescent points. Refuse — even when forced.
    return false;
  }
  if (!force && !vTable.possiblyNeedsCollection() &&
      !mTable.possiblyNeedsCollection() &&
      !cTable.realTable().possiblyNeedsCollection()) {
    return false;
  }
  // GC pauses are exactly what a latency profile must surface; the span
  // carries the per-run reclaim counts as args.
  obs::ScopedSpan span("dd", "gc");
  ++gcRuns;
  // Open a new allocation epoch before any node is freed. Compute-table
  // entries keep their old stamps; any entry referencing a pointer freed or
  // recycled from here on fails its generation check and is rejected lazily
  // at lookup — entries whose operands and result all survive keep serving
  // hits, so the caches stay warm across collections.
  ++generation;
  vMem.setGeneration(generation);
  mMem.setGeneration(generation);
  cTable.realTable().setAllocationGeneration(generation);
  setComputeEpochs();
  const auto releaseV = [this](vNode* n) {
    for (const auto& child : n->e) {
      decRefEdge(child);
    }
  };
  const auto releaseM = [this](mNode* n) {
    for (const auto& child : n->e) {
      decRefEdge(child);
    }
  };
  const std::size_t dv = vTable.garbageCollect(releaseV);
  const std::size_t dm = mTable.garbageCollect(releaseM);
  const std::size_t dr = cTable.garbageCollect();
  collectedVectorNodes += dv;
  collectedMatrixNodes += dm;
  collectedReals += dr;
  span.arg("generation", static_cast<std::size_t>(generation));
  span.arg("collectedVectorNodes", dv);
  span.arg("collectedMatrixNodes", dm);
  span.arg("collectedReals", dr);
  return true;
}

void Package::setComputeEpochs() noexcept {
  addVecTable.setEpoch(generation);
  addMatTable.setEpoch(generation);
  multMatVecTable.setEpoch(generation);
  multMatMatTable.setEpoch(generation);
  conjTransTable.setEpoch(generation);
  innerProductTable.setEpoch(generation);
  mulWeightTable.setEpoch(generation);
  mulWeight3Table.setEpoch(generation);
}

// --- node construction / normalization --------------------------------------

vEdge Package::makeVecNode(Qubit v, const std::array<vEdge, 2>& edges) {
  assert(v >= 0 && static_cast<std::size_t>(v) < vTable.numLevels());
  std::array<vEdge, 2> e = edges;
  for (auto& edge : e) {
    if (edge.w.exactlyZero()) {
      edge = vEdge::zero(); // canonical 0-stub (paper Ex. 6)
    } else {
      assert((edge.p->v == v - 1 || (edge.isTerminal() && v == 0)) &&
             "level misalignment");
    }
  }
  if (e[0].w.exactlyZero() && e[1].w.exactlyZero()) {
    return vEdge::zero();
  }
  if (scheme == NormalizationScheme::Norm) {
    return normalizeNorm(v, e);
  }
  return normalizeLargest(v, e);
}

vEdge Package::normalizeLargest(Qubit v, std::array<vEdge, 2> e) {
  const ComplexValue w0 = e[0].w.toValue();
  const ComplexValue w1 = e[1].w.toValue();
  // First index whose magnitude is within tolerance of the maximum. The
  // tolerance matters for canonicity: ties (equal magnitudes) must resolve
  // to the same representative regardless of rounding noise, or equal
  // states/matrices built along different computation paths would end up
  // with different nodes.
  const std::size_t top =
      (w1.mag2() > w0.mag2() + tolerance()) ? 1 : 0;
  const ComplexValue topWeight = (top == 0) ? w0 : w1;
  // The weight pulled out of the node is already a canonical table pointer;
  // returning it directly is bit-identical to (and much cheaper than)
  // re-interning its value: table entries are pairwise more than the
  // tolerance apart, so lookup(topWeight) could only ever find this entry.
  const Complex topCanonical = e[top].w;
  const std::size_t other = 1 - top;
  const ComplexValue otherWeight = (top == 0) ? w1 : w0;

  e[top].w = Complex::one;
  if (e[other].w.exactlyZero()) {
    // keep the 0-stub
  } else if (e[other].w == topCanonical) {
    // Equal canonical weights: same-value division is IEEE-exact one
    // (identical numerator/denominator expressions), so the quotient is
    // exactly (1, 0) — elide the divide and both table lookups.
    e[other].w = Complex::one;
  } else if (topCanonical.exactlyOne()) {
    // Division by exact one is value-preserving and the weight is already
    // a canonical pointer: lookup(val(w)) == w. Keep it untouched.
  } else {
    e[other].w = lookup(otherWeight / topWeight);
    if (e[other].w.exactlyZero()) {
      e[other] = vEdge::zero();
    }
  }

  vNode* candidate = vTable.getNode();
  candidate->v = v;
  candidate->e = e;
  candidate->ref = 0;
  bool inserted = false;
  vNode* node = vTable.lookup(candidate, inserted);
  if (inserted) {
    for (const auto& child : node->e) {
      incRefEdge(child);
    }
  }
  return {node, topCanonical};
}

vEdge Package::normalizeNorm(Qubit v, std::array<vEdge, 2> e) {
  const ComplexValue w0 = e[0].w.toValue();
  const ComplexValue w1 = e[1].w.toValue();
  const double mag = std::sqrt(w0.mag2() + w1.mag2());
  // Pull the phase of the first non-zero weight out as well, so the first
  // non-zero outgoing weight is real and non-negative (canonical).
  const ComplexValue first = e[0].w.exactlyZero() ? w1 : w0;
  const ComplexValue topWeight = ComplexValue::fromPolar(mag, first.arg());

  if (!e[0].w.exactlyZero()) {
    e[0].w = lookup(w0 / topWeight);
    if (e[0].w.exactlyZero()) {
      e[0] = vEdge::zero();
    }
  }
  if (!e[1].w.exactlyZero()) {
    e[1].w = lookup(w1 / topWeight);
    if (e[1].w.exactlyZero()) {
      e[1] = vEdge::zero();
    }
  }

  vNode* candidate = vTable.getNode();
  candidate->v = v;
  candidate->e = e;
  candidate->ref = 0;
  bool inserted = false;
  vNode* node = vTable.lookup(candidate, inserted);
  if (inserted) {
    for (const auto& child : node->e) {
      incRefEdge(child);
    }
  }
  return {node, lookup(topWeight)};
}

mEdge Package::makeMatNode(Qubit v, const std::array<mEdge, 4>& edges) {
  assert(v >= 0 && static_cast<std::size_t>(v) < mTable.numLevels());
  std::array<mEdge, 4> e = edges;
  for (auto& edge : e) {
    if (edge.w.exactlyZero()) {
      edge = mEdge::zero();
      continue;
    }
    // Under Strip, successors may sit any number of levels below `v`
    // (the gap is implicit identity); Materialize keeps strict alignment.
    assert((idMode == IdentityMode::Strip
                ? (edge.isTerminal() || edge.p->v < v)
                : (edge.p->v == v - 1 || (edge.isTerminal() && v == 0))) &&
           "level misalignment");
  }
  if (idMode == IdentityMode::Strip && e[1].w.exactlyZero() &&
      e[2].w.exactlyZero() && e[0].p == e[3].p && e[0].w == e[3].w) {
    // Identity-skipping reduction (arXiv:2406.11959): successors [a, 0, 0, a]
    // represent I (x) A, so the level is skipped and `a` returned directly.
    // The weight comparison is exact — weights are canonical table pointers.
    return e[0];
  }
  std::array<double, 4> mag2{};
  double topMag2 = 0.;
  for (std::size_t k = 0; k < 4; ++k) {
    if (e[k].w.exactlyZero()) {
      continue;
    }
    mag2[k] = e[k].w.toValue().mag2();
    topMag2 = std::max(topMag2, mag2[k]);
  }
  if (topMag2 == 0.) {
    return mEdge::zero();
  }
  // First index within tolerance of the maximal magnitude (see
  // normalizeLargest for why the tolerance is essential for canonicity).
  std::size_t top = 0;
  for (std::size_t k = 0; k < 4; ++k) {
    if (!e[k].w.exactlyZero() && mag2[k] + tolerance() >= topMag2) {
      top = k;
      break;
    }
  }
  const ComplexValue topWeight = e[top].w.toValue();
  // Canonical-pointer fast path, same argument as in normalizeLargest.
  const Complex topCanonical = e[top].w;
  const bool topOne = topCanonical.exactlyOne();
  for (std::size_t k = 0; k < 4; ++k) {
    if (k == top) {
      e[k].w = Complex::one;
    } else if (e[k].w.exactlyZero()) {
      // keep the 0-stub
    } else if (e[k].w == topCanonical) {
      // same-value division is IEEE-exact one (see normalizeLargest)
      e[k].w = Complex::one;
    } else if (topOne) {
      // dividing a canonical weight by exact one: already canonical
    } else {
      e[k].w = lookup(e[k].w.toValue() / topWeight);
      if (e[k].w.exactlyZero()) {
        e[k] = mEdge::zero();
      }
    }
  }

  mNode* candidate = mTable.getNode();
  candidate->v = v;
  candidate->e = e;
  candidate->ref = 0;
  bool inserted = false;
  mNode* node = mTable.lookup(candidate, inserted);
  if (inserted) {
    for (const auto& child : node->e) {
      incRefEdge(child);
    }
  }
  return {node, topCanonical};
}

// --- states -------------------------------------------------------------------

vEdge Package::makeZeroState(std::size_t n) {
  return makeBasisState(n, std::vector<bool>(n, false));
}

vEdge Package::makeBasisState(std::size_t n, const std::vector<bool>& bits) {
  if (n == 0 || bits.size() != n) {
    throw std::invalid_argument("makeBasisState: invalid qubit count");
  }
  resize(n);
  vEdge e = vEdge::one();
  for (std::size_t k = 0; k < n; ++k) {
    const auto v = static_cast<Qubit>(k);
    if (bits[k]) {
      e = makeVecNode(v, {vEdge::zero(), e});
    } else {
      e = makeVecNode(v, {e, vEdge::zero()});
    }
  }
  return e;
}

vEdge Package::makeGHZState(std::size_t n) {
  if (n == 0) {
    throw std::invalid_argument("makeGHZState: need at least one qubit");
  }
  resize(n);
  vEdge zeros = vEdge::one();
  vEdge ones = vEdge::one();
  for (std::size_t k = 0; k + 1 < n; ++k) {
    const auto v = static_cast<Qubit>(k);
    zeros = makeVecNode(v, {zeros, vEdge::zero()});
    ones = makeVecNode(v, {vEdge::zero(), ones});
  }
  const auto top = static_cast<Qubit>(n - 1);
  vEdge z = zeros;
  z.w = lookup(z.w.toValue() * SQRT2_2);
  vEdge o = ones;
  o.w = lookup(o.w.toValue() * SQRT2_2);
  return makeVecNode(top, {z, o});
}

vEdge Package::makeWState(std::size_t n) {
  if (n == 0) {
    throw std::invalid_argument("makeWState: need at least one qubit");
  }
  resize(n);
  const double amp = 1. / std::sqrt(static_cast<double>(n));
  // W = sum_k amp * |0..010..0>; build recursively: W_k spans levels 0..k-1.
  // wPart[k]: superposition of single-excitation states on k qubits
  // (unnormalized with amplitude `amp` each); zPart[k]: |0...0> on k qubits.
  vEdge w = vEdge::zero();
  vEdge z = vEdge::one();
  for (std::size_t k = 0; k < n; ++k) {
    const auto v = static_cast<Qubit>(k);
    vEdge excited = z;
    excited.w = lookup(excited.w.toValue() * amp);
    const vEdge newW = (k == 0) ? makeVecNode(v, {vEdge::zero(), excited})
                                : makeVecNode(v, {w, excited});
    if (k + 1 < n) {
      z = makeVecNode(v, {z, vEdge::zero()});
    }
    w = newW;
  }
  return w;
}

vEdge Package::makeStateFromVector(
    const std::vector<std::complex<double>>& vec) {
  const std::size_t len = vec.size();
  if (len < 2 || (len & (len - 1)) != 0) {
    throw std::invalid_argument(
        "makeStateFromVector: length must be a power of two >= 2");
  }
  std::size_t n = 0;
  while ((1ULL << n) < len) {
    ++n;
  }
  resize(n);
  return makeStateFromVector(vec.data(), vec.data() + len,
                             static_cast<Qubit>(n - 1));
}

vEdge Package::makeStateFromVector(const std::complex<double>* begin,
                                   const std::complex<double>* end,
                                   Qubit level) {
  if (level == TERMINAL_LEVEL) {
    assert(end - begin == 1);
    const ComplexValue w{begin->real(), begin->imag()};
    if (w.approximatelyZero(tolerance())) {
      return vEdge::zero();
    }
    return vEdge::terminal(lookup(w));
  }
  const auto* mid = begin + (end - begin) / 2;
  const vEdge lo = makeStateFromVector(begin, mid, level - 1);
  const vEdge hi = makeStateFromVector(mid, end, level - 1);
  return makeVecNode(level, {lo, hi});
}

// --- matrices --------------------------------------------------------------

mEdge Package::makeIdent(std::size_t n) {
  resize(n);
  if (idMode == IdentityMode::Strip) {
    // The identity is pure skip structure: a bare terminal edge of weight
    // one, on any number of qubits.
    return mEdge::one();
  }
  while (idTable.size() <= n) {
    const auto v = static_cast<Qubit>(idTable.size() - 1);
    const mEdge below = idTable.back();
    const mEdge id =
        makeMatNode(v, {below, mEdge::zero(), mEdge::zero(), below});
    incRef(id); // pin: identity DDs survive garbage collection
    idTable.push_back(id);
  }
  return idTable[n];
}

mEdge Package::makeGateDD(const GateMatrix& mat, std::size_t n, Qubit target) {
  return makeGateDD(mat, n, QubitControls{}, target);
}

mEdge Package::makeGateDD(const GateMatrix& mat, std::size_t n,
                          const QubitControls& controls, Qubit target) {
  if (n == 0 || target < 0 || static_cast<std::size_t>(target) >= n) {
    throw std::invalid_argument("makeGateDD: invalid target/qubit count");
  }
  resize(n);
  QubitControls ctrls = controls;
  std::sort(ctrls.begin(), ctrls.end());
  for (const auto& c : ctrls) {
    if (c.qubit == target || c.qubit < 0 ||
        static_cast<std::size_t>(c.qubit) >= n) {
      throw std::invalid_argument("makeGateDD: invalid control qubit");
    }
  }

  // Blocks of the target-level matrix, propagated bottom-up (paper Ex. 7:
  // successor order [U00, U01, U10, U11]).
  std::array<mEdge, 4> em{};
  for (std::size_t k = 0; k < 4; ++k) {
    if (mat[k].approximatelyZero(tolerance())) {
      em[k] = mEdge::zero();
    } else {
      em[k] = mEdge::terminal(lookup(mat[k]));
    }
  }

  auto ctrlIt = ctrls.begin();
  // Levels below the target.
  for (Qubit z = 0; z < target; ++z) {
    const bool isControl = ctrlIt != ctrls.end() && ctrlIt->qubit == z;
    const bool positive = isControl && ctrlIt->positive;
    for (std::size_t k = 0; k < 4; ++k) {
      const bool diagonal = (k == 0 || k == 3);
      if (isControl) {
        // Control below the target: the control-inactive branch contributes
        // identity (only on diagonal target blocks); the active branch
        // continues the gate block.
        const mEdge inactive = diagonal ? makeIdent(z) : mEdge::zero();
        if (positive) {
          em[k] = makeMatNode(
              z, {inactive, mEdge::zero(), mEdge::zero(), em[k]});
        } else {
          em[k] = makeMatNode(
              z, {em[k], mEdge::zero(), mEdge::zero(), inactive});
        }
      } else {
        em[k] =
            makeMatNode(z, {em[k], mEdge::zero(), mEdge::zero(), em[k]});
      }
    }
    if (isControl) {
      ++ctrlIt;
    }
  }

  mEdge e = makeMatNode(target, em);

  // Levels above the target.
  for (Qubit z = target + 1; z < static_cast<Qubit>(n); ++z) {
    const bool isControl = ctrlIt != ctrls.end() && ctrlIt->qubit == z;
    if (isControl) {
      // Control above the target: inactive branch is the full identity on
      // all lower qubits (including the target).
      const mEdge inactive = makeIdent(static_cast<std::size_t>(z));
      if (ctrlIt->positive) {
        e = makeMatNode(z, {inactive, mEdge::zero(), mEdge::zero(), e});
      } else {
        e = makeMatNode(z, {e, mEdge::zero(), mEdge::zero(), inactive});
      }
      ++ctrlIt;
    } else {
      e = makeMatNode(z, {e, mEdge::zero(), mEdge::zero(), e});
    }
  }
  return e;
}

mEdge Package::makeSWAPDD(std::size_t n, const QubitControls& controls,
                          Qubit t1, Qubit t2) {
  if (t1 == t2) {
    throw std::invalid_argument("makeSWAPDD: identical targets");
  }
  // SWAP = CX(t1->t2) . CX(t2->t1) . CX(t1->t2); attaching the extra
  // controls to the middle CX yields the controlled SWAP, since the outer
  // pair cancels when the controls are inactive.
  const mEdge outer = makeGateDD(X_MAT, n, {{t1, true}}, t2);
  QubitControls middleControls = controls;
  middleControls.push_back({t2, true});
  const mEdge middle = makeGateDD(X_MAT, n, middleControls, t1);
  return multiply(outer, multiply(middle, outer));
}

mEdge Package::makeTwoQubitGateDD(const TwoQubitGateMatrix& mat, std::size_t n,
                                  Qubit t1, Qubit t0) {
  if (t1 == t0) {
    throw std::invalid_argument("makeTwoQubitGateDD: identical targets");
  }
  resize(n);
  // U = sum_{i,k} sum_{j,l} U[(2i+j),(2k+l)] |i><k|_{t1} (x) |j><l|_{t0}.
  // Each term is the product of two single-qubit "transition matrix" DDs
  // acting on disjoint qubits (so their product equals their tensor
  // extension), scaled by the matrix entry.
  mEdge result = mEdge::zero();
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t k = 0; k < 2; ++k) {
      GateMatrix e1{};
      e1[2 * i + k] = ComplexValue{1., 0.};
      const mEdge dd1 = makeGateDD(e1, n, t1);
      for (std::size_t j = 0; j < 2; ++j) {
        for (std::size_t l = 0; l < 2; ++l) {
          const ComplexValue entry = mat[(2 * i + j) * 4 + (2 * k + l)];
          if (entry.approximatelyZero(tolerance())) {
            continue;
          }
          GateMatrix e0{};
          e0[2 * j + l] = ComplexValue{1., 0.};
          const mEdge dd0 = makeGateDD(e0, n, t0);
          mEdge term = multiply(dd1, dd0);
          term.w = lookup(term.w.toValue() * entry);
          result = result.w.exactlyZero() ? term : add(result, term);
        }
      }
    }
  }
  return result;
}

mEdge Package::makeMatrixFromDense(const std::vector<std::complex<double>>& mat,
                                   std::size_t n) {
  const std::size_t dim = 1ULL << n;
  if (n == 0 || mat.size() != dim * dim) {
    throw std::invalid_argument("makeMatrixFromDense: bad dimensions");
  }
  resize(n);
  return makeMatrixFromDense(mat, dim, 0, 0, dim, static_cast<Qubit>(n - 1));
}

mEdge Package::makeMatrixFromDense(const std::vector<std::complex<double>>& mat,
                                   std::size_t dim, std::size_t rowOff,
                                   std::size_t colOff, std::size_t blockDim,
                                   Qubit level) {
  if (level == TERMINAL_LEVEL) {
    assert(blockDim == 1);
    const auto entry = mat[rowOff * dim + colOff];
    const ComplexValue w{entry.real(), entry.imag()};
    if (w.approximatelyZero(tolerance())) {
      return mEdge::zero();
    }
    return mEdge::terminal(lookup(w));
  }
  const std::size_t half = blockDim / 2;
  std::array<mEdge, 4> e{};
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      e[2 * i + j] =
          makeMatrixFromDense(mat, dim, rowOff + i * half, colOff + j * half,
                              half, level - 1);
    }
  }
  return makeMatNode(level, e);
}

// --- statistics -----------------------------------------------------------

namespace {
template <class Node>
void countNodes(const Node* p, std::unordered_set<const Node*>& seen) {
  if (p->isTerminal() || seen.contains(p)) {
    return;
  }
  seen.insert(p);
  for (const auto& child : p->e) {
    if (!child.w.exactlyZero()) {
      countNodes(child.p, seen);
    }
  }
}
} // namespace

std::size_t Package::size(const vEdge& e) {
  std::unordered_set<const vNode*> seen;
  countNodes(e.p, seen);
  return seen.size();
}

std::size_t Package::size(const mEdge& e) {
  std::unordered_set<const mNode*> seen;
  countNodes(e.p, seen);
  return seen.size();
}

namespace {
template <class Node>
std::vector<std::size_t> tallyByLevel(const std::unordered_set<const Node*>& seen) {
  std::vector<std::size_t> perLevel;
  for (const Node* p : seen) {
    const auto v = static_cast<std::size_t>(p->v);
    if (v >= perLevel.size()) {
      perLevel.resize(v + 1, 0);
    }
    ++perLevel[v];
  }
  return perLevel;
}
} // namespace

std::vector<std::size_t> Package::sizeByLevel(const vEdge& e) {
  std::unordered_set<const vNode*> seen;
  countNodes(e.p, seen);
  return tallyByLevel(seen);
}

std::vector<std::size_t> Package::sizeByLevel(const mEdge& e) {
  std::unordered_set<const mNode*> seen;
  countNodes(e.p, seen);
  return tallyByLevel(seen);
}

mem::StatsRegistry Package::statistics() const {
  mem::StatsRegistry reg;
  reg.vectorTable = vTable.stats();
  reg.matrixTable = mTable.stats();
  reg.reals = cTable.realTable().stats();
  reg.computeTables.push_back(addVecTable.stats("addVector"));
  reg.computeTables.push_back(addMatTable.stats("addMatrix"));
  reg.computeTables.push_back(multMatVecTable.stats("multiplyMatVec"));
  reg.computeTables.push_back(multMatMatTable.stats("multiplyMatMat"));
  reg.computeTables.push_back(conjTransTable.stats("conjugateTranspose"));
  reg.computeTables.push_back(innerProductTable.stats("innerProduct"));
  reg.computeTables.push_back(mulWeightTable.stats("mulWeight"));
  reg.computeTables.push_back(mulWeight3Table.stats("mulWeight3"));
  reg.apply = applyCounters;
  reg.parallel = parallelStats;
  reg.gc.runs = gcRuns;
  reg.gc.generation = generation;
  reg.gc.collectedVectorNodes = collectedVectorNodes;
  reg.gc.collectedMatrixNodes = collectedMatrixNodes;
  reg.gc.collectedReals = collectedReals;
  return reg;
}

mem::TablePressure Package::tablePressure() const {
  mem::TablePressure p;
  p.vectorNodes = vTable.size();
  p.matrixNodes = mTable.size();
  p.realEntries = cTable.realTable().size();
  // Deliberately counts only the DD-operation caches: the scalar weight
  // memos see an order of magnitude more traffic and would drown the
  // per-operation hit-rate series they feed.
  p.cacheLookups = addVecTable.lookups() + addMatTable.lookups() +
                   multMatVecTable.lookups() + multMatMatTable.lookups() +
                   conjTransTable.lookups() + innerProductTable.lookups();
  p.cacheHits = addVecTable.hits() + addMatTable.hits() +
                multMatVecTable.hits() + multMatMatTable.hits() +
                conjTransTable.hits() + innerProductTable.hits();
  p.gcRuns = gcRuns;
  return p;
}

} // namespace qdd
