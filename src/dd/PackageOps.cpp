#include "DDOpSpan.hpp"
#include "qdd/complex/Simd.hpp"
#include "qdd/dd/Package.hpp"
#include "qdd/obs/Obs.hpp"

#include <cassert>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <unordered_map>

namespace qdd {

namespace detail {
thread_local int ddOpDepth = 0;
} // namespace detail

using detail::DDOpSpan;

// --- weight products ---------------------------------------------------------

namespace {

/// Deterministic operand order for the weight-product memos. Complex
/// multiplication commutes bit-exactly — every partial product is a single
/// IEEE multiply, and the swap only exchanges the two addends of one IEEE
/// addition — so mirrored queries may share a cache slot.
bool weightOrderedAfter(const Complex& a, const Complex& b) noexcept {
  const auto ar = reinterpret_cast<std::uintptr_t>(a.r);
  const auto br = reinterpret_cast<std::uintptr_t>(b.r);
  if (ar != br) {
    return ar > br;
  }
  return reinterpret_cast<std::uintptr_t>(a.i) >
         reinterpret_cast<std::uintptr_t>(b.i);
}

} // namespace

Complex Package::mulWeightsCached(const Complex& a, const Complex& b) {
  const bool swap = weightOrderedAfter(a, b);
  const Complex& l = swap ? b : a;
  const Complex& r = swap ? a : b;
  if (computeTablesEnabled) {
    Complex hit;
    if (mulWeightTable.lookup(l, r, hit)) {
      return hit;
    }
  }
  const ComplexValue w = simd::mul(l.toValue(), r.toValue());
  const Complex out =
      w.approximatelyZero(tolerance()) ? Complex::zero : lookup(w);
  if (computeTablesEnabled) {
    mulWeightTable.insert(l, r, out, generation);
  }
  return out;
}

Complex Package::mulWeights(const Complex& a, const Complex& b) {
  if (a.exactlyOne()) {
    return b;
  }
  if (b.exactlyOne()) {
    return a;
  }
  return mulWeightsCached(a, b);
}

Complex Package::mulWeights3(const Complex& a, const Complex& b,
                             const Complex& c) {
  const bool aOne = a.exactlyOne();
  const bool bOne = b.exactlyOne();
  const bool cOne = c.exactlyOne();
  // <= 1 non-one factor: the product is that factor's canonical pointer.
  // (Multiplying by an exact one is value-exact, so this matches the value
  // path bit for bit; a canonical non-zero weight has a component entry
  // farther than `tol` from zero, so it can never fall in the zero window.)
  if (bOne && cOne) {
    return a;
  }
  if (aOne && cOne) {
    return b;
  }
  if (aOne && bOne) {
    return c;
  }
  // Elide exact-one factors from the left-associated product (a * b) * c;
  // dropping a one-factor leaves the remaining rounding sequence unchanged,
  // so the two-factor cases share the binary product memo.
  if (aOne) {
    return mulWeightsCached(b, c);
  }
  if (bOne) {
    return mulWeightsCached(a, c);
  }
  if (cOne) {
    return mulWeightsCached(a, b);
  }
  // All three factors non-trivial: memoize under the ordered triple. Only
  // the inner pair may be canonicalized — its product commutes bit-exactly —
  // while the outer multiply must keep its association, (a * b) * c.
  const bool swap = weightOrderedAfter(a, b);
  const Complex& l = swap ? b : a;
  const Complex& m = swap ? a : b;
  const WeightPair rest{m, c};
  if (computeTablesEnabled) {
    Complex hit;
    if (mulWeight3Table.lookup(l, rest, hit)) {
      return hit;
    }
  }
  const ComplexValue w = simd::mul3(l.toValue(), m.toValue(), c.toValue());
  const Complex out =
      w.approximatelyZero(tolerance()) ? Complex::zero : lookup(w);
  if (computeTablesEnabled) {
    mulWeight3Table.insert(l, rest, out, generation);
  }
  return out;
}

// --- addition (paper Fig. 4, right) -----------------------------------------

vEdge Package::add(const vEdge& x, const vEdge& y) {
  const ParallelRegion region(*this);
  return add(x, y, region.budget());
}

vEdge Package::addVecChild(const vEdge& a, const vEdge& b, std::size_t k,
                           int fork) {
  vEdge ea = a.p->e[k];
  if (!ea.w.exactlyZero()) {
    ea.w = mulWeights(a.w, ea.w);
  }
  vEdge eb = b.p->e[k];
  if (!eb.w.exactlyZero()) {
    eb.w = mulWeights(b.w, eb.w);
  }
  return add(ea, eb, fork);
}

vEdge Package::add(const vEdge& x, const vEdge& y, int fork) {
  const DDOpSpan span("add");
  if (x.w.exactlyZero()) {
    return y;
  }
  if (y.w.exactlyZero()) {
    return x;
  }
  if (x.p == y.p) {
    const ComplexValue sum = x.w.toValue() + y.w.toValue();
    if (sum.approximatelyZero(tolerance())) {
      return vEdge::zero();
    }
    return {x.p, lookup(sum)};
  }
  // Addition is commutative; canonicalize the operand order for the cache.
  const vEdge& a = (x.p < y.p) ? x : y;
  const vEdge& b = (x.p < y.p) ? y : x;
  if (computeTablesEnabled) {
    vEdge cached;
    if (addVecTable.lookup(a, b, cached)) {
      return cached;
    }
  }

  assert(!a.isTerminal() && !b.isTerminal() && a.p->v == b.p->v &&
         "add: level misalignment");
  const Qubit v = a.p->v;
  std::array<vEdge, 2> r{};
  if (fork > 0 && taskForker != nullptr) {
    checkCancelled();
    std::array<std::function<void()>, 2> tasks;
    for (std::size_t k = 0; k < 2; ++k) {
      tasks[k] = [this, &a, &b, &r, k, fork] {
        checkCancelled();
        r[k] = addVecChild(a, b, k, fork - 1);
      };
    }
    noteForks(tasks.size());
    taskForker->runAll(tasks.data(), tasks.size());
  } else {
    for (std::size_t k = 0; k < 2; ++k) {
      r[k] = addVecChild(a, b, k, 0);
    }
  }
  const vEdge result = makeVecNode(v, r);
  if (computeTablesEnabled) {
    addVecTable.insert(a, b, result, generation);
  }
  return result;
}

mEdge Package::add(const mEdge& x, const mEdge& y) {
  const ParallelRegion region(*this);
  return add(x, y, region.budget());
}

mEdge Package::addMatChild(const mEdge& a, const mEdge& b, Qubit va, Qubit vb,
                           Qubit v, std::size_t k, int fork) {
  mEdge ea;
  if (va == v) {
    ea = a.p->e[k];
    if (!ea.w.exactlyZero()) {
      ea.w = mulWeights(a.w, ea.w);
    }
  } else {
    ea = (k == 0 || k == 3) ? a : mEdge::zero();
  }
  mEdge eb;
  if (vb == v) {
    eb = b.p->e[k];
    if (!eb.w.exactlyZero()) {
      eb.w = mulWeights(b.w, eb.w);
    }
  } else {
    eb = (k == 0 || k == 3) ? b : mEdge::zero();
  }
  return add(ea, eb, fork);
}

mEdge Package::add(const mEdge& x, const mEdge& y, int fork) {
  const DDOpSpan span("add");
  if (x.w.exactlyZero()) {
    return y;
  }
  if (y.w.exactlyZero()) {
    return x;
  }
  if (x.p == y.p) {
    const ComplexValue sum = x.w.toValue() + y.w.toValue();
    if (sum.approximatelyZero(tolerance())) {
      return mEdge::zero();
    }
    return {x.p, lookup(sum)};
  }
  const mEdge& a = (x.p < y.p) ? x : y;
  const mEdge& b = (x.p < y.p) ? y : x;
  if (computeTablesEnabled) {
    mEdge cached;
    if (addMatTable.lookup(a, b, cached)) {
      return cached;
    }
  }

  assert((idMode == IdentityMode::Strip ||
          (!a.isTerminal() && !b.isTerminal() && a.p->v == b.p->v)) &&
         "add: level misalignment");
  // Align the operands at the higher of the two levels. An operand whose
  // node sits below that level (or is terminal) is an implicit identity
  // there: its virtual successors are [a, 0, 0, a]. Both-terminal operands
  // never reach this point (x.p == y.p is handled above).
  const Qubit va = a.isTerminal() ? TERMINAL_LEVEL : a.p->v;
  const Qubit vb = b.isTerminal() ? TERMINAL_LEVEL : b.p->v;
  const Qubit v = std::max(va, vb);
  assert(v >= 0 && "add: two terminal operands with distinct nodes");
  std::array<mEdge, 4> r{};
  if (fork > 0 && taskForker != nullptr) {
    checkCancelled();
    std::array<std::function<void()>, 4> tasks;
    for (std::size_t k = 0; k < 4; ++k) {
      tasks[k] = [this, &a, &b, &r, va, vb, v, k, fork] {
        checkCancelled();
        r[k] = addMatChild(a, b, va, vb, v, k, fork - 1);
      };
    }
    noteForks(tasks.size());
    taskForker->runAll(tasks.data(), tasks.size());
  } else {
    for (std::size_t k = 0; k < 4; ++k) {
      r[k] = addMatChild(a, b, va, vb, v, k, 0);
    }
  }
  const mEdge result = makeMatNode(v, r);
  if (computeTablesEnabled) {
    addMatTable.insert(a, b, result, generation);
  }
  return result;
}

// --- multiplication (paper Ex. 9 / Fig. 4) ----------------------------------

vEdge Package::multiply(const mEdge& x, const vEdge& y) {
  const DDOpSpan span("multiply");
  if (x.w.exactlyZero() || y.w.exactlyZero()) {
    return vEdge::zero();
  }
  const ParallelRegion region(*this);
  const vEdge r = multiply2(x.p, y.p, region.budget());
  if (r.w.exactlyZero()) {
    return vEdge::zero();
  }
  const Complex w = mulWeights3(x.w, y.w, r.w);
  if (w.exactlyZero()) {
    return vEdge::zero();
  }
  return {r.p, w};
}

vEdge Package::multVecChildSum(mNode* x, vNode* y, bool xAligned,
                               std::size_t i, int fork) {
  vEdge sum = vEdge::zero();
  for (std::size_t j = 0; j < 2; ++j) {
    const mEdge xe = xAligned ? x->e[2 * i + j]
                              : (i == j ? mEdge{x, Complex::one}
                                        : mEdge::zero());
    const vEdge& ye = y->e[j];
    if (xe.w.exactlyZero() || ye.w.exactlyZero()) {
      continue;
    }
    vEdge m = multiply2(xe.p, ye.p, fork);
    if (m.w.exactlyZero()) {
      continue;
    }
    const Complex mw = mulWeights3(m.w, xe.w, ye.w);
    if (mw.exactlyZero()) {
      continue;
    }
    const vEdge term{m.p, mw};
    sum = sum.w.exactlyZero() ? term : add(sum, term, fork);
  }
  return sum;
}

vEdge Package::multiply2(mNode* x, vNode* y, int fork) {
  if (x->isTerminal()) {
    if (idMode == IdentityMode::Strip) {
      // Terminal matrix = identity on every remaining level: U|phi> = |phi>.
      return y->isTerminal() ? vEdge::one() : vEdge{y, Complex::one};
    }
    assert(y->isTerminal() && "multiply: level misalignment");
    return vEdge::one();
  }
  assert(!y->isTerminal() &&
         (idMode == IdentityMode::Strip ? x->v <= y->v : x->v == y->v) &&
         "multiply: level misalignment");
  if (computeTablesEnabled) {
    vEdge cached;
    if (multMatVecTable.lookup(x, y, cached)) {
      return cached;
    }
  }

  // The state is always fully expanded, so its root level sets the pace;
  // when the matrix skips this level it acts as identity here and its
  // virtual successors are [x, 0, 0, x] with weight one.
  const Qubit v = y->v;
  const bool xAligned = x->v == v;
  if (computeTablesEnabled && xAligned) {
    // Warm the child pairs' compute-table lines before descending: while the
    // first recursion runs, the remaining slots stream in.
    for (std::size_t i = 0; i < 2; ++i) {
      for (std::size_t j = 0; j < 2; ++j) {
        const mEdge& xe = x->e[2 * i + j];
        const vEdge& ye = y->e[j];
        if (!xe.w.exactlyZero() && !ye.w.exactlyZero() &&
            !xe.p->isTerminal()) {
          multMatVecTable.prefetch(xe.p, ye.p);
        }
      }
    }
  }
  std::array<vEdge, 2> r{};
  if (fork > 0 && taskForker != nullptr) {
    // Fork the two independent result children. Each child's arithmetic is
    // the exact serial sequence (multVecChildSum), so the joined result is
    // pointer-identical to the serial one.
    checkCancelled();
    std::array<std::function<void()>, 2> tasks;
    for (std::size_t i = 0; i < 2; ++i) {
      tasks[i] = [this, x, y, xAligned, &r, i, fork] {
        checkCancelled();
        r[i] = multVecChildSum(x, y, xAligned, i, fork - 1);
      };
    }
    noteForks(tasks.size());
    taskForker->runAll(tasks.data(), tasks.size());
  } else {
    for (std::size_t i = 0; i < 2; ++i) {
      r[i] = multVecChildSum(x, y, xAligned, i, 0);
    }
  }
  const vEdge result = makeVecNode(v, r);
  if (computeTablesEnabled) {
    multMatVecTable.insert(x, y, result, generation);
  }
  return result;
}

mEdge Package::multiply(const mEdge& x, const mEdge& y) {
  const DDOpSpan span("multiply");
  if (x.w.exactlyZero() || y.w.exactlyZero()) {
    return mEdge::zero();
  }
  const ParallelRegion region(*this);
  const mEdge r = multiply2(x.p, y.p, region.budget());
  if (r.w.exactlyZero()) {
    return mEdge::zero();
  }
  const Complex w = mulWeights3(x.w, y.w, r.w);
  if (w.exactlyZero()) {
    return mEdge::zero();
  }
  return {r.p, w};
}

mEdge Package::multMatChildSum(mNode* x, mNode* y, bool xAligned,
                               bool yAligned, std::size_t i, std::size_t k,
                               int fork) {
  mEdge sum = mEdge::zero();
  for (std::size_t j = 0; j < 2; ++j) {
    const mEdge xe = xAligned ? x->e[2 * i + j]
                              : (i == j ? mEdge{x, Complex::one}
                                        : mEdge::zero());
    const mEdge ye = yAligned ? y->e[2 * j + k]
                              : (j == k ? mEdge{y, Complex::one}
                                        : mEdge::zero());
    if (xe.w.exactlyZero() || ye.w.exactlyZero()) {
      continue;
    }
    mEdge m = multiply2(xe.p, ye.p, fork);
    if (m.w.exactlyZero()) {
      continue;
    }
    const Complex mw = mulWeights3(m.w, xe.w, ye.w);
    if (mw.exactlyZero()) {
      continue;
    }
    const mEdge term{m.p, mw};
    sum = sum.w.exactlyZero() ? term : add(sum, term, fork);
  }
  return sum;
}

mEdge Package::multiply2(mNode* x, mNode* y, int fork) {
  if (x->isTerminal() || y->isTerminal()) {
    if (idMode == IdentityMode::Strip) {
      // Terminal operand = identity on every remaining level, which is the
      // multiplicative unit: the product is the other operand.
      if (x->isTerminal() && y->isTerminal()) {
        return mEdge::one();
      }
      return x->isTerminal() ? mEdge{y, Complex::one}
                             : mEdge{x, Complex::one};
    }
    assert(x->isTerminal() && y->isTerminal() &&
           "multiply: level misalignment");
    return mEdge::one();
  }
  assert((idMode == IdentityMode::Strip || x->v == y->v) &&
         "multiply: level misalignment");
  if (computeTablesEnabled) {
    mEdge cached;
    if (multMatMatTable.lookup(x, y, cached)) {
      return cached;
    }
  }

  // Align at the higher level; the lower operand acts as identity there
  // (virtual successors [e, 0, 0, e]). The result depends only on the two
  // nodes, so the (x, y)-keyed compute table stays context-free.
  const Qubit v = std::max(x->v, y->v);
  const bool xAligned = x->v == v;
  const bool yAligned = y->v == v;
  if (computeTablesEnabled && xAligned && yAligned) {
    // Warm the child pairs' compute-table lines before descending.
    for (std::size_t i = 0; i < 2; ++i) {
      for (std::size_t j = 0; j < 2; ++j) {
        for (std::size_t k = 0; k < 2; ++k) {
          const mEdge& xe = x->e[2 * i + j];
          const mEdge& ye = y->e[2 * j + k];
          if (!xe.w.exactlyZero() && !ye.w.exactlyZero() &&
              !xe.p->isTerminal() && !ye.p->isTerminal()) {
            multMatMatTable.prefetch(xe.p, ye.p);
          }
        }
      }
    }
  }
  std::array<mEdge, 4> r{};
  if (fork > 0 && taskForker != nullptr) {
    // Fork the four independent result blocks (i, k).
    checkCancelled();
    std::array<std::function<void()>, 4> tasks;
    for (std::size_t i = 0; i < 2; ++i) {
      for (std::size_t k = 0; k < 2; ++k) {
        tasks[2 * i + k] = [this, x, y, xAligned, yAligned, &r, i, k, fork] {
          checkCancelled();
          r[2 * i + k] = multMatChildSum(x, y, xAligned, yAligned, i, k,
                                         fork - 1);
        };
      }
    }
    noteForks(tasks.size());
    taskForker->runAll(tasks.data(), tasks.size());
  } else {
    for (std::size_t i = 0; i < 2; ++i) {
      for (std::size_t k = 0; k < 2; ++k) {
        r[2 * i + k] = multMatChildSum(x, y, xAligned, yAligned, i, k, 0);
      }
    }
  }
  const mEdge result = makeMatNode(v, r);
  if (computeTablesEnabled) {
    multMatMatTable.insert(x, y, result, generation);
  }
  return result;
}

// --- tensor product (paper Ex. 8 / Fig. 3) ----------------------------------

namespace {
/// Terminal replacement: walk `top`, re-label its levels `shift` levels up,
/// and replace its (non-zero) terminal edges by the root of `bottom`.
template <class Node, class MakeNode, class Lookup>
Edge<Node> kronRec(const Edge<Node>& topEdge, Node* bottomRoot, Qubit shift,
                   std::unordered_map<const Node*, Edge<Node>>& memo,
                   MakeNode&& makeNode, Lookup&& lookup) {
  if (topEdge.w.exactlyZero()) {
    return Edge<Node>::zero();
  }
  if (topEdge.isTerminal()) {
    return {bottomRoot, topEdge.w};
  }
  // The memo stores the replacement edge per *node*; the incoming edge
  // weight is composed on top afterwards.
  Edge<Node> nodeResult;
  if (const auto it = memo.find(topEdge.p); it != memo.end()) {
    nodeResult = it->second;
  } else {
    std::array<Edge<Node>, RADIX<Node>> children{};
    for (std::size_t k = 0; k < RADIX<Node>; ++k) {
      children[k] = kronRec(topEdge.p->e[k], bottomRoot, shift, memo, makeNode,
                            lookup);
    }
    nodeResult = makeNode(static_cast<Qubit>(topEdge.p->v + shift), children);
    memo.emplace(topEdge.p, nodeResult);
  }
  if (topEdge.w.exactlyOne()) {
    return nodeResult;
  }
  return {nodeResult.p, lookup(nodeResult.w.toValue() * topEdge.w.toValue())};
}
} // namespace

mEdge Package::kron(const mEdge& top, const mEdge& bottom) {
  // Span inferred from the bottom root: exact under Materialize; under
  // Strip a bottom whose top levels are skipped identity needs the
  // explicit-span overload to land `top` at the right level.
  return kron(top, bottom,
              bottom.isTerminal() ? 0
                                  : static_cast<std::size_t>(bottom.p->v) + 1);
}

mEdge Package::kron(const mEdge& top, const mEdge& bottom,
                    std::size_t bottomQubits) {
  const DDOpSpan span("kron");
  if (top.w.exactlyZero() || bottom.w.exactlyZero()) {
    return mEdge::zero();
  }
  if (!bottom.isTerminal() &&
      static_cast<std::size_t>(bottom.p->v) >= bottomQubits) {
    throw std::invalid_argument("kron: bottom exceeds its declared span");
  }
  if (idMode == IdentityMode::Materialize &&
      bottomQubits != (bottom.isTerminal()
                           ? 0
                           : static_cast<std::size_t>(bottom.p->v) + 1)) {
    // Materialized DDs cannot leave a level gap between `top` and `bottom`.
    throw std::invalid_argument(
        "kron: declared span does not match the materialized bottom");
  }
  const auto shift = static_cast<Qubit>(bottomQubits);
  if (!top.isTerminal()) {
    resize(static_cast<std::size_t>(top.p->v + shift) + 1);
  }
  std::unordered_map<const mNode*, mEdge> memo;
  const mEdge r = kronRec(
      mEdge{top.p, Complex::one}, bottom.p, shift, memo,
      [this](Qubit v, const std::array<mEdge, 4>& es) {
        return makeMatNode(v, es);
      },
      [this](const ComplexValue& c) { return lookup(c); });
  const ComplexValue w = top.w.toValue() * bottom.w.toValue() * r.w.toValue();
  if (w.approximatelyZero(tolerance())) {
    return mEdge::zero();
  }
  return {r.p, lookup(w)};
}

vEdge Package::kron(const vEdge& top, const vEdge& bottom) {
  const DDOpSpan span("kron");
  if (top.w.exactlyZero() || bottom.w.exactlyZero()) {
    return vEdge::zero();
  }
  const Qubit shift =
      bottom.isTerminal() ? 0 : static_cast<Qubit>(bottom.p->v + 1);
  if (!top.isTerminal()) {
    resize(static_cast<std::size_t>(top.p->v + shift) + 1);
  }
  std::unordered_map<const vNode*, vEdge> memo;
  const vEdge r = kronRec(
      vEdge{top.p, Complex::one}, bottom.p, shift, memo,
      [this](Qubit v, const std::array<vEdge, 2>& es) {
        return makeVecNode(v, es);
      },
      [this](const ComplexValue& c) { return lookup(c); });
  const ComplexValue w = top.w.toValue() * bottom.w.toValue() * r.w.toValue();
  if (w.approximatelyZero(tolerance())) {
    return vEdge::zero();
  }
  return {r.p, lookup(w)};
}

// --- conjugate transpose -----------------------------------------------------

mEdge Package::conjugateTranspose(const mEdge& a) {
  const DDOpSpan span("conjugateTranspose");
  if (a.w.exactlyZero()) {
    return mEdge::zero();
  }
  const ComplexValue wConj = a.w.toValue().conj();
  if (a.isTerminal()) {
    return mEdge::terminal(lookup(wConj));
  }
  if (computeTablesEnabled) {
    mEdge cached;
    if (conjTransTable.lookup(a.p, a.p, cached)) {
      return {cached.p, lookup(wConj * cached.w.toValue())};
    }
  }
  // transpose: swap the off-diagonal successors; conjugate recursively
  std::array<mEdge, 4> r{};
  r[0] = conjugateTranspose({a.p->e[0].p, a.p->e[0].w});
  r[1] = conjugateTranspose({a.p->e[2].p, a.p->e[2].w});
  r[2] = conjugateTranspose({a.p->e[1].p, a.p->e[1].w});
  r[3] = conjugateTranspose({a.p->e[3].p, a.p->e[3].w});
  const mEdge result = makeMatNode(a.p->v, r);
  if (computeTablesEnabled) {
    conjTransTable.insert(a.p, a.p, result, generation);
  }
  return {result.p, lookup(wConj * result.w.toValue())};
}

// --- inner product / fidelity -------------------------------------------------

ComplexValue Package::innerProduct(const vEdge& x, const vEdge& y) {
  const DDOpSpan span("innerProduct");
  if (x.w.exactlyZero() || y.w.exactlyZero()) {
    return {0., 0.};
  }
  const ComplexValue sub = innerProduct2(x.p, y.p);
  return x.w.toValue().conj() * y.w.toValue() * sub;
}

ComplexValue Package::innerProduct2(vNode* x, vNode* y) {
  if (x->isTerminal()) {
    assert(y->isTerminal() && "innerProduct: level misalignment");
    return {1., 0.};
  }
  assert(!y->isTerminal() && x->v == y->v &&
         "innerProduct: level misalignment");
  if (computeTablesEnabled) {
    ComplexValue cached;
    if (innerProductTable.lookup(x, y, cached)) {
      return cached;
    }
  }
  ComplexValue sum{0., 0.};
  for (std::size_t k = 0; k < 2; ++k) {
    const vEdge& xe = x->e[k];
    const vEdge& ye = y->e[k];
    if (xe.w.exactlyZero() || ye.w.exactlyZero()) {
      continue;
    }
    sum += xe.w.toValue().conj() * ye.w.toValue() *
           innerProduct2(xe.p, ye.p);
  }
  if (computeTablesEnabled) {
    innerProductTable.insert(x, y, sum, generation);
  }
  return sum;
}

double Package::fidelity(const vEdge& x, const vEdge& y) {
  return innerProduct(x, y).mag2();
}

// --- trace ----------------------------------------------------------------------

namespace {
/// `expect` is the level the edge leaves from minus one (i.e. the top level
/// of the sub-matrix the edge points into). Every skipped identity level
/// doubles the trace: tr(I_k (x) M) = 2^k * tr(M).
ComplexValue traceRec(const mEdge& e, Qubit expect,
                      std::unordered_map<const mNode*, ComplexValue>& memo) {
  if (e.w.exactlyZero()) {
    return {0., 0.};
  }
  const Qubit v = e.isTerminal() ? TERMINAL_LEVEL : e.p->v;
  assert(v <= expect && "trace: node above its expected level");
  const double factor = std::ldexp(1., expect - v);
  if (e.isTerminal()) {
    // terminal = w * I on the remaining `expect + 1` levels
    return e.w.toValue() * factor;
  }
  ComplexValue sub;
  if (const auto it = memo.find(e.p); it != memo.end()) {
    sub = it->second;
  } else {
    sub = traceRec(e.p->e[0], static_cast<Qubit>(v - 1), memo) +
          traceRec(e.p->e[3], static_cast<Qubit>(v - 1), memo);
    memo.emplace(e.p, sub);
  }
  return e.w.toValue() * factor * sub;
}
} // namespace

ComplexValue Package::trace(const mEdge& a) {
  return trace(a, a.isTerminal() ? 0
                                 : static_cast<std::size_t>(a.p->v) + 1);
}

ComplexValue Package::trace(const mEdge& a, std::size_t nq) {
  if (!a.isTerminal() && static_cast<std::size_t>(a.p->v) >= nq) {
    throw std::invalid_argument("trace: matrix exceeds the declared span");
  }
  std::unordered_map<const mNode*, ComplexValue> memo;
  return traceRec(a, static_cast<Qubit>(nq) - 1, memo);
}

// --- element access / export --------------------------------------------------

ComplexValue Package::getValueByIndex(const vEdge& e, std::uint64_t i) {
  ComplexValue amp = e.w.toValue();
  const vNode* p = e.p;
  while (!p->isTerminal()) {
    if (amp.exactlyZero()) {
      return {0., 0.};
    }
    // Levels >= 64 are out of range for a 64-bit index: that bit is 0.
    const auto shift = static_cast<unsigned>(p->v);
    const std::size_t bit = shift < 64U ? (i >> shift) & 1ULL : 0ULL;
    const vEdge& child = p->e[bit];
    amp *= child.w.toValue();
    p = child.p;
  }
  return amp;
}

ComplexValue Package::getMatrixEntry(const mEdge& e, std::uint64_t row,
                                     std::uint64_t col) {
  ComplexValue amp = e.w.toValue();
  const mNode* p = e.p;
  // Bits addressing a skipped identity level must agree between row and
  // column — the off-diagonal blocks of the implicit identity are zero.
  const auto identityBitsAgree = [&](Qubit below, Qubit above) {
    // checks bits in the open interval (below, above)
    for (Qubit lev = static_cast<Qubit>(below + 1); lev < above; ++lev) {
      const auto shift = static_cast<unsigned>(lev);
      if (shift < 64U && (((row ^ col) >> shift) & 1ULL) != 0ULL) {
        return false;
      }
    }
    return true;
  };
  if (idMode == IdentityMode::Strip) {
    const Qubit top = p->isTerminal() ? TERMINAL_LEVEL : p->v;
    if (!identityBitsAgree(top, 64)) {
      return {0., 0.};
    }
  }
  while (!p->isTerminal()) {
    if (amp.exactlyZero()) {
      return {0., 0.};
    }
    const auto shift = static_cast<unsigned>(p->v);
    const std::size_t rbit = shift < 64U ? (row >> shift) & 1ULL : 0ULL;
    const std::size_t cbit = shift < 64U ? (col >> shift) & 1ULL : 0ULL;
    const mEdge& child = p->e[2 * rbit + cbit];
    if (idMode == IdentityMode::Strip) {
      const Qubit childTop =
          child.p->isTerminal() ? TERMINAL_LEVEL : child.p->v;
      if (!identityBitsAgree(childTop, p->v)) {
        return {0., 0.};
      }
    }
    amp *= child.w.toValue();
    p = child.p;
  }
  return amp;
}

void Package::getVectorRec(const vEdge& e, ComplexValue amp,
                           std::uint64_t index,
                           std::vector<std::complex<double>>& out) {
  const ComplexValue w = amp * e.w.toValue();
  if (w.exactlyZero()) {
    return;
  }
  if (e.isTerminal()) {
    out[index] = w.toStdComplex();
    return;
  }
  const auto v = static_cast<unsigned>(e.p->v);
  getVectorRec(e.p->e[0], w, index, out);
  getVectorRec(e.p->e[1], w, index | (1ULL << v), out);
}

std::vector<std::complex<double>> Package::getVector(const vEdge& e) {
  if (e.isTerminal()) {
    throw std::invalid_argument("getVector: terminal edge has no qubits");
  }
  const auto n = static_cast<std::size_t>(e.p->v) + 1;
  if (n > 26) {
    throw std::invalid_argument("getVector: state too large for dense export");
  }
  std::vector<std::complex<double>> out(1ULL << n, {0., 0.});
  getVectorRec(e, ComplexValue{1., 0.}, 0, out);
  return out;
}

void Package::getMatrixRec(const mEdge& e, ComplexValue amp, std::uint64_t row,
                           std::uint64_t col, std::uint64_t dim, Qubit expect,
                           std::vector<std::complex<double>>& out) {
  if (e.w.exactlyZero() || amp.exactlyZero()) {
    return;
  }
  const Qubit v = e.isTerminal() ? TERMINAL_LEVEL : e.p->v;
  if (v < expect) {
    // `expect` is a skipped identity level: expand its diagonal explicitly.
    const std::uint64_t bit = 1ULL << static_cast<unsigned>(expect);
    getMatrixRec(e, amp, row, col, dim, static_cast<Qubit>(expect - 1), out);
    getMatrixRec(e, amp, row | bit, col | bit, dim,
                 static_cast<Qubit>(expect - 1), out);
    return;
  }
  const ComplexValue w = amp * e.w.toValue();
  if (w.exactlyZero()) {
    return;
  }
  if (e.isTerminal()) {
    out[row * dim + col] = w.toStdComplex();
    return;
  }
  const auto b = 1ULL << static_cast<unsigned>(v);
  const auto below = static_cast<Qubit>(v - 1);
  getMatrixRec(e.p->e[0], w, row, col, dim, below, out);
  getMatrixRec(e.p->e[1], w, row, col | b, dim, below, out);
  getMatrixRec(e.p->e[2], w, row | b, col, dim, below, out);
  getMatrixRec(e.p->e[3], w, row | b, col | b, dim, below, out);
}

std::vector<std::complex<double>> Package::getMatrix(const mEdge& e) {
  if (e.isTerminal()) {
    throw std::invalid_argument("getMatrix: terminal edge has no qubits");
  }
  return getMatrix(e, static_cast<std::size_t>(e.p->v) + 1);
}

std::vector<std::complex<double>> Package::getMatrix(const mEdge& e,
                                                     std::size_t n) {
  if (n == 0) {
    throw std::invalid_argument("getMatrix: need at least one qubit");
  }
  if (!e.isTerminal() && static_cast<std::size_t>(e.p->v) >= n) {
    throw std::invalid_argument("getMatrix: matrix exceeds the declared span");
  }
  if (n > 13) {
    throw std::invalid_argument("getMatrix: matrix too large for dense export");
  }
  const std::uint64_t dim = 1ULL << n;
  std::vector<std::complex<double>> out(dim * dim, {0., 0.});
  getMatrixRec(e, ComplexValue{1., 0.}, 0, 0, dim, static_cast<Qubit>(n - 1),
               out);
  return out;
}

double Package::norm(const vEdge& e) {
  std::map<vNode*, double> cache;
  return e.w.toValue().mag2() * nodeNorm(e.p, cache);
}

// --- partial trace (paper Sec. IV-B: reset "corresponds to taking the
// --- partial trace of the whole state") ---------------------------------------

mEdge Package::partialTrace(const mEdge& a,
                            const std::vector<bool>& eliminate) {
  const DDOpSpan span("partialTrace");
  const auto rootSpan =
      a.isTerminal() ? 0 : static_cast<std::size_t>(a.p->v) + 1;
  std::size_t n = rootSpan;
  if (idMode == IdentityMode::Strip) {
    // The mask declares the span: skipped top levels are real (identity)
    // qubits and tracing one of them out doubles the result.
    n = eliminate.size();
    if (rootSpan > n) {
      throw std::invalid_argument("partialTrace: eliminate mask too short");
    }
    if (n == 0) {
      return a;
    }
  } else {
    if (a.isTerminal()) {
      return a;
    }
    if (eliminate.size() < n) {
      throw std::invalid_argument("partialTrace: eliminate mask too short");
    }
  }
  // new level of each kept qubit = number of kept qubits below it
  std::vector<Qubit> levelMap(n, TERMINAL_LEVEL);
  Qubit next = 0;
  for (std::size_t v = 0; v < n; ++v) {
    if (!eliminate[v]) {
      levelMap[v] = next++;
    }
  }
  std::map<const mNode*, mEdge> memo;
  return partialTraceRec(a, static_cast<Qubit>(n - 1), eliminate, levelMap,
                         memo);
}

mEdge Package::partialTraceRec(const mEdge& a, Qubit expect,
                               const std::vector<bool>& eliminate,
                               const std::vector<Qubit>& levelMap,
                               std::map<const mNode*, mEdge>& memo) {
  if (a.w.exactlyZero()) {
    return mEdge::zero();
  }
  const Qubit v = a.isTerminal() ? TERMINAL_LEVEL : a.p->v;
  // Skipped identity levels on the way down: each eliminated one is
  // tr(I_1) = 2; kept ones stay implicit (identity is position-independent,
  // so the level remap is automatic).
  double factor = 1.;
  for (Qubit lev = expect; lev > v; --lev) {
    if (eliminate[static_cast<std::size_t>(lev)]) {
      factor *= 2.;
    }
  }
  if (a.isTerminal()) {
    return mEdge::terminal(lookup(a.w.toValue() * factor));
  }
  mEdge nodeResult;
  if (const auto it = memo.find(a.p); it != memo.end()) {
    nodeResult = it->second;
  } else {
    const auto lv = static_cast<std::size_t>(v);
    const auto below = static_cast<Qubit>(v - 1);
    if (eliminate[lv]) {
      // trace this level out: sum the diagonal blocks
      const mEdge d0 =
          partialTraceRec(a.p->e[0], below, eliminate, levelMap, memo);
      const mEdge d3 =
          partialTraceRec(a.p->e[3], below, eliminate, levelMap, memo);
      nodeResult = add(d0, d3);
    } else {
      std::array<mEdge, 4> children{};
      for (std::size_t k = 0; k < 4; ++k) {
        children[k] =
            partialTraceRec(a.p->e[k], below, eliminate, levelMap, memo);
      }
      nodeResult = makeMatNode(levelMap[lv], children);
    }
    memo.emplace(a.p, nodeResult);
  }
  if (nodeResult.w.exactlyZero()) {
    return mEdge::zero();
  }
  if (a.w.exactlyOne() && factor == 1.) {
    return nodeResult;
  }
  return {nodeResult.p,
          lookup(nodeResult.w.toValue() * a.w.toValue() * factor)};
}

// --- expectation values ---------------------------------------------------------

ComplexValue Package::expectationValue(const mEdge& u, const vEdge& phi) {
  return innerProduct(phi, multiply(u, phi));
}

// --- qubit permutations ----------------------------------------------------------

namespace {
/// Decomposes `permutation` into transpositions and reports each via `swap`.
/// permutation[k] = original qubit that should end up at position k.
template <class SwapFn>
void applyPermutationAsSwaps(const std::vector<Qubit>& permutation,
                             SwapFn&& swap) {
  const auto n = permutation.size();
  // current[k] = original qubit currently sitting at position k
  std::vector<Qubit> current(n);
  for (std::size_t k = 0; k < n; ++k) {
    current[k] = static_cast<Qubit>(k);
  }
  for (std::size_t target = 0; target < n; ++target) {
    if (current[target] == permutation[target]) {
      continue;
    }
    std::size_t from = target;
    for (std::size_t k = target + 1; k < n; ++k) {
      if (current[k] == permutation[target]) {
        from = k;
        break;
      }
    }
    swap(static_cast<Qubit>(target), static_cast<Qubit>(from));
    std::swap(current[target], current[from]);
  }
}

std::vector<Qubit> validatePermutation(const std::vector<Qubit>& permutation,
                                       std::size_t n) {
  if (permutation.size() != n) {
    throw std::invalid_argument("permuteQubits: permutation size mismatch");
  }
  std::vector<bool> seen(n, false);
  for (const Qubit q : permutation) {
    if (q < 0 || static_cast<std::size_t>(q) >= n || seen[static_cast<std::size_t>(q)]) {
      throw std::invalid_argument("permuteQubits: not a permutation");
    }
    seen[static_cast<std::size_t>(q)] = true;
  }
  return permutation;
}
} // namespace

vEdge Package::permuteQubits(const vEdge& e,
                             const std::vector<Qubit>& permutation) {
  if (e.isTerminal()) {
    return e;
  }
  const auto n = static_cast<std::size_t>(e.p->v) + 1;
  validatePermutation(permutation, n);
  vEdge result = e;
  applyPermutationAsSwaps(permutation, [&](Qubit a, Qubit b) {
    result = multiply(makeSWAPDD(n, {}, a, b), result);
  });
  return result;
}

mEdge Package::permuteQubits(const mEdge& e,
                             const std::vector<Qubit>& permutation) {
  if (e.isTerminal()) {
    // identity (Strip) or scalar (Materialize): invariant under relabeling
    return e;
  }
  const auto rootSpan = static_cast<std::size_t>(e.p->v) + 1;
  // Under Strip, the permutation's size declares the span; it may exceed
  // the root level (skipped top levels permute trivially). Materialized
  // matrices must match exactly, as before.
  const std::size_t n =
      idMode == IdentityMode::Strip ? permutation.size() : rootSpan;
  if (n < rootSpan) {
    throw std::invalid_argument("permuteQubits: permutation size mismatch");
  }
  validatePermutation(permutation, n);
  mEdge result = e;
  applyPermutationAsSwaps(permutation, [&](Qubit a, Qubit b) {
    const mEdge swap = makeSWAPDD(n, {}, a, b);
    // conjugate: P U P^T with P a (self-inverse) SWAP
    result = multiply(swap, multiply(result, swap));
  });
  return result;
}

} // namespace qdd
