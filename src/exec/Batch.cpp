#include "qdd/exec/Batch.hpp"

#include "qdd/exec/ThreadPool.hpp"
#include "qdd/obs/Obs.hpp"
#include "qdd/parser/qasm/Parser.hpp"
#include "qdd/parser/real/RealParser.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <memory>
#include <stdexcept>

namespace qdd::exec {

std::uint64_t taskSeed(std::uint64_t seed, std::uint64_t taskIndex) noexcept {
  // splitmix64 finalizer over seed XOR an odd multiple of the index. The
  // +1 keeps task 0 with user seed 0 away from the all-zero fixed point.
  std::uint64_t z = seed ^ ((taskIndex + 1) * 0x9E3779B97F4A7C15ULL);
  z ^= z >> 30U;
  z *= 0xBF58476D1CE4E5B9ULL;
  z ^= z >> 27U;
  z *= 0x94D049BB133111EBULL;
  z ^= z >> 31U;
  return z;
}

namespace {

using Clock = std::chrono::steady_clock;

double msSince(const Clock::time_point& t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// Per-worker engine state: the private package plus a final-state sampler
/// cached for sampleParallel (all chunks of one circuit share the strong
/// simulation their worker already paid for).
struct WorkerState {
  std::unique_ptr<Package> pkg;
  std::unique_ptr<sim::CircuitSampler> sampler;

  Package& package(std::size_t qubits) {
    if (!pkg) {
      // Explicitly Serial even under QDD_APPLY=parallel: each worker owns
      // its package outright, so sharded tables and atomic refcounts would
      // be pure overhead here (task-level parallelism, not intra-circuit).
      pkg = std::make_unique<Package>(
          std::max<std::size_t>(qubits, 1), NormalizationScheme::Largest,
          RealTable::DEFAULT_TOLERANCE, globalIdentityMode(),
          ConcurrencyMode::Serial);
    }
    return *pkg;
  }
};

/// Simulates (and optionally samples) one circuit on the worker's package.
/// Fills every CircuitResult field except name/worker/error handling, which
/// the callers own.
void runCircuitTask(const ir::QuantumComputation& qc, Package& pkg,
                    std::uint64_t seed, std::size_t shots,
                    CircuitResult& out) {
  obs::ScopedSpan span("exec", "task");
  const auto t0 = Clock::now();
  out.qubits = qc.numQubits();
  out.operations = qc.size();
  if (shots > 0) {
    out.sampling = sim::sampleCircuit(qc, shots, seed, pkg);
  } else {
    sim::SimulationSession session(qc, pkg, seed);
    while (session.stepForward()) {
    }
    out.finalNodes = Package::size(session.state());
    out.peakNodes = session.peakNodes();
  }
  out.wallMs = msSince(t0);
  span.arg("qubits", out.qubits);
  span.arg("operations", out.operations);
  span.arg("wallMs", out.wallMs);
}

void mergeWorkerStats(BatchResult& result,
                      const std::vector<WorkerState>& workers) {
  for (const auto& state : workers) {
    if (state.pkg) {
      result.stats.merge(state.pkg->statistics());
    }
  }
}

} // namespace

BatchResult simulateBatch(const std::vector<ir::QuantumComputation>& circuits,
                          const BatchOptions& options) {
  obs::ScopedSpan span("exec", "simulateBatch");
  const auto t0 = Clock::now();
  BatchResult result;
  result.circuits.resize(circuits.size());

  std::size_t maxQubits = 1;
  for (const auto& qc : circuits) {
    maxQubits = std::max(maxQubits, qc.numQubits());
  }

  ThreadPool pool(options.workers);
  result.workers = pool.workerCount();
  std::vector<WorkerState> workers(pool.workerCount());

  pool.parallelFor(circuits.size(), [&](std::size_t i, std::size_t w) {
    CircuitResult& out = result.circuits[i];
    out.name = circuits[i].name();
    out.worker = w;
    if (options.cancel.cancelled()) {
      out.cancelled = true;
      return;
    }
    try {
      runCircuitTask(circuits[i], workers[w].package(maxQubits),
                     taskSeed(options.seed, i), options.shots, out);
    } catch (const std::exception& e) {
      out.error = e.what();
    }
  });

  mergeWorkerStats(result, workers);
  result.wallMs = msSince(t0);
  span.arg("circuits", circuits.size());
  span.arg("workers", result.workers);
  span.arg("wallMs", result.wallMs);
  return result;
}

sim::SamplingResult sampleParallel(const ir::QuantumComputation& qc,
                                   std::size_t shots,
                                   const BatchOptions& options) {
  obs::ScopedSpan span("exec", "sampleParallel");
  // Fixed chunk granularity: the chunk list (and every chunk's seed) depends
  // only on the shot count, so merged counts are identical for any worker
  // count. 512 shots amortize the per-chunk sampler setup while still giving
  // an 8-worker pool parallelism from ~4k shots upward.
  constexpr std::size_t CHUNK = 512;
  sim::SamplingResult merged;
  if (shots == 0) {
    return merged;
  }
  const std::size_t numChunks = (shots + CHUNK - 1) / CHUNK;

  ThreadPool pool(options.workers);
  std::vector<WorkerState> workers(pool.workerCount());
  std::vector<sim::SamplingResult> chunks(numChunks);

  pool.parallelFor(numChunks, [&](std::size_t i, std::size_t w) {
    if (options.cancel.cancelled()) {
      return;
    }
    const std::size_t chunkShots = std::min(CHUNK, shots - i * CHUNK);
    WorkerState& state = workers[w];
    Package& pkg = state.package(qc.numQubits());
    if (!state.sampler) {
      // One strong simulation per worker; every chunk it executes samples
      // from that cached final state (dynamic circuits fall back to
      // per-shot execution inside the sampler).
      state.sampler = std::make_unique<sim::CircuitSampler>(qc, pkg);
    }
    chunks[i] = state.sampler->sample(chunkShots, taskSeed(options.seed, i));
  });

  // Deterministic merge in chunk order.
  for (const auto& chunk : chunks) {
    merged.shots += chunk.shots;
    for (const auto& [bits, count] : chunk.counts) {
      merged.counts[bits] += count;
    }
  }
  span.arg("shots", merged.shots);
  span.arg("chunks", numChunks);
  return merged;
}

std::vector<std::string> collectCircuitFiles(const std::string& directory) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(directory, ec)) {
    throw std::runtime_error("not a directory: " + directory);
  }
  std::vector<std::string> files;
  for (const auto& entry : fs::directory_iterator(directory, ec)) {
    if (!entry.is_regular_file()) {
      continue;
    }
    const std::string ext = entry.path().extension().string();
    if (ext == ".qasm" || ext == ".real") {
      files.push_back(entry.path().string());
    }
  }
  if (ec) {
    throw std::runtime_error("cannot read directory: " + directory);
  }
  std::sort(files.begin(), files.end());
  return files;
}

namespace {

ir::QuantumComputation loadCircuit(const std::string& path) {
  if (path.size() >= 5 && path.compare(path.size() - 5, 5, ".real") == 0) {
    return real::parseFile(path);
  }
  return qasm::parseFile(path);
}

} // namespace

BatchResult runSuite(const std::vector<std::string>& files,
                     const BatchOptions& options) {
  obs::ScopedSpan span("exec", "runSuite");
  const auto t0 = Clock::now();
  BatchResult result;
  result.circuits.resize(files.size());

  ThreadPool pool(options.workers);
  result.workers = pool.workerCount();
  std::vector<WorkerState> workers(pool.workerCount());

  pool.parallelFor(files.size(), [&](std::size_t i, std::size_t w) {
    CircuitResult& out = result.circuits[i];
    out.name = files[i];
    out.worker = w;
    if (options.cancel.cancelled()) {
      out.cancelled = true;
      return;
    }
    try {
      const ir::QuantumComputation qc = loadCircuit(files[i]);
      runCircuitTask(qc, workers[w].package(qc.numQubits()),
                     taskSeed(options.seed, i), options.shots, out);
    } catch (const std::exception& e) {
      out.error = e.what();
    }
  });

  mergeWorkerStats(result, workers);
  result.wallMs = msSince(t0);
  span.arg("files", files.size());
  span.arg("workers", result.workers);
  span.arg("failures", result.failures());
  return result;
}

} // namespace qdd::exec
