#include "qdd/exec/Portfolio.hpp"

#include "qdd/exec/ThreadPool.hpp"
#include "qdd/obs/Obs.hpp"

#include <chrono>

namespace qdd::exec {

namespace {

using Clock = std::chrono::steady_clock;

double msSince(const Clock::time_point& t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

enum class EntryKind { AlternatingLR, AlternatingRL, Simulation };

struct EntrySpec {
  const char* name;
  EntryKind kind;
};

} // namespace

PortfolioResult checkPortfolio(const ir::QuantumComputation& g1,
                               const ir::QuantumComputation& g2,
                               const PortfolioOptions& options) {
  obs::ScopedSpan span("exec", "portfolio");
  const auto t0 = Clock::now();

  // Constructing the checkers up front validates the circuit pair once
  // (same qubit count, purely unitary) before any thread is spawned.
  const verify::EquivalenceChecker forward(g1, g2, options.tolerance);
  const verify::EquivalenceChecker backward(g2, g1, options.tolerance);

  std::vector<EntrySpec> specs{
      {"alternating/left-right", EntryKind::AlternatingLR},
      {"alternating/right-left", EntryKind::AlternatingRL},
  };
  if (options.includeSimulation) {
    specs.push_back({"simulation", EntryKind::Simulation});
  }

  PortfolioResult out;
  out.entries.resize(specs.size());
  std::atomic<int> winner{-1};
  const CancellationToken& race = options.cancel;

  ThreadPool pool(options.workers == 0 ? specs.size() : options.workers);
  pool.parallelFor(specs.size(), [&](std::size_t i, std::size_t /*worker*/) {
    PortfolioResult::Entry& entry = out.entries[i];
    entry.name = specs[i].name;
    if (race.cancelled()) {
      entry.result.cancelled = true;
      return;
    }
    obs::ScopedSpan entrySpan("exec", "portfolioEntry");
    entrySpan.arg("entry", entry.name);
    const auto entryStart = Clock::now();
    // Serial even under QDD_APPLY=parallel: portfolio entries are the
    // task-level axis, each with a private package.
    Package pkg(g1.numQubits(), NormalizationScheme::Largest,
                RealTable::DEFAULT_TOLERANCE, globalIdentityMode(),
                ConcurrencyMode::Serial);
    switch (specs[i].kind) {
    case EntryKind::AlternatingLR:
      entry.result =
          forward.checkAlternating(pkg, options.strategy, race.flag());
      entry.conclusive = !entry.result.cancelled;
      break;
    case EntryKind::AlternatingRL:
      entry.result =
          backward.checkAlternating(pkg, options.strategy, race.flag());
      entry.conclusive = !entry.result.cancelled;
      break;
    case EntryKind::Simulation:
      entry.result = forward.checkBySimulation(
          pkg, options.simulationStimuli, options.seed, race.flag());
      // Simulation runs can only ever *disprove* equivalence conclusively.
      entry.conclusive =
          !entry.result.cancelled &&
          entry.result.equivalence == verify::Equivalence::NotEquivalent;
      break;
    }
    entry.wallMs = msSince(entryStart);
    if (entry.conclusive) {
      int expected = -1;
      if (winner.compare_exchange_strong(expected, static_cast<int>(i))) {
        race.cancel(); // first conclusive result stops the losers
      }
    }
  });

  const int winnerIndex = winner.load();
  if (winnerIndex >= 0) {
    const auto index = static_cast<std::size_t>(winnerIndex);
    out.result = out.entries[index].result;
    out.winner = out.entries[index].name;
  } else {
    // Only reachable when the caller cancelled before any entry concluded
    // (alternating entries always conclude unless cancelled).
    out.cancelled = true;
    out.result.cancelled = true;
  }
  out.wallMs = msSince(t0);
  span.arg("winner", out.winner);
  span.arg("wallMs", out.wallMs);
  return out;
}

} // namespace qdd::exec
