#include "qdd/exec/ThreadPool.hpp"

#include "qdd/obs/Obs.hpp"

#include <algorithm>
#include <chrono>
#include <string>

namespace qdd::exec {

namespace {
// Identity of the calling thread within *some* pool: set once per worker
// thread at startup. waitAndWork/tryRunOneTask compare the pool pointer so
// a worker of pool A helping inside pool B is treated as external there.
thread_local const ThreadPool* tlWorkerPool = nullptr;
thread_local std::size_t tlWorkerId = 0;
} // namespace

std::size_t ThreadPool::defaultWorkers() {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(std::size_t workers) {
  const std::size_t count = workers == 0 ? defaultWorkers() : workers;
  queues.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    queues.push_back(std::make_unique<WorkerQueue>());
  }
  threads.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    threads.emplace_back([this, i] { workerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(wakeMutex);
    stopping.store(true, std::memory_order_relaxed);
  }
  wakeCv.notify_all();
  for (auto& thread : threads) {
    thread.join();
  }
}

bool ThreadPool::popLocal(std::size_t id, Item& item) {
  WorkerQueue& q = *queues[id];
  const std::lock_guard<std::mutex> lock(q.mutex);
  if (q.tasks.empty()) {
    return false;
  }
  // LIFO on the own deque: the most recently dealt task is the one whose
  // distribution round is least likely to have been stolen already.
  item = std::move(q.tasks.back());
  q.tasks.pop_back();
  queued.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

bool ThreadPool::stealTask(std::size_t thief, Item& item) {
  const std::size_t count = queues.size();
  for (std::size_t k = 1; k < count; ++k) {
    WorkerQueue& victim = *queues[(thief + k) % count];
    const std::lock_guard<std::mutex> lock(victim.mutex);
    if (victim.tasks.empty()) {
      continue;
    }
    // FIFO from the victim: take the task the owner would reach last.
    item = std::move(victim.tasks.front());
    victim.tasks.pop_front();
    queued.fetch_sub(1, std::memory_order_relaxed);
    stealCount.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void ThreadPool::runTask(Item&& item, std::size_t worker) {
  // Install the submitter's trace context for the duration of the task
  // (invalid contexts clear the slot rather than leaking the previous
  // task's identity).
  const obs::TraceScope traceScope(item.trace);
  const auto countExecuted = [this, worker] {
    if (worker == EXTERNAL_THREAD) {
      externalHelped.fetch_add(1, std::memory_order_relaxed);
    } else {
      queues[worker]->executed.fetch_add(1, std::memory_order_relaxed);
    }
  };
  if (item.batch == nullptr) {
    if (TaskGroup* g = item.group) {
      try {
        item.fn();
      } catch (...) {
        const std::lock_guard<std::mutex> lock(g->errorMutex);
        if (!g->error) {
          g->error = std::current_exception();
        }
      }
      countExecuted();
      if (g->pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Wake joiners parked in waitAndWork (they wait on the pool-wide
        // wakeCv so that new task enqueues also rouse them to help).
        { const std::lock_guard<std::mutex> lock(wakeMutex); }
        wakeCv.notify_all();
      }
      return;
    }
    try {
      item.fn();
    } catch (...) {
      detachedErrorCount.fetch_add(1, std::memory_order_relaxed);
    }
    countExecuted();
    return;
  }
  Batch* b = item.batch;
  try {
    (*b->body)(item.index, worker);
  } catch (...) {
    const std::lock_guard<std::mutex> lock(b->errorMutex);
    if (!b->error) {
      b->error = std::current_exception();
    }
  }
  countExecuted();
  if (b->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    const std::lock_guard<std::mutex> lock(b->doneMutex);
    b->doneCv.notify_all();
  }
}

void ThreadPool::workerLoop(std::size_t id) {
  tlWorkerPool = this;
  tlWorkerId = id;
  obs::Registry::labelCurrentThread("worker-" + std::to_string(id));
  while (true) {
    Item item;
    if (popLocal(id, item) || stealTask(id, item)) {
      runTask(std::move(item), id);
      continue;
    }
    std::unique_lock<std::mutex> lock(wakeMutex);
    wakeCv.wait(lock, [this] {
      return stopping.load(std::memory_order_relaxed) ||
             queued.load(std::memory_order_relaxed) > 0;
    });
    if (stopping.load(std::memory_order_relaxed) &&
        queued.load(std::memory_order_relaxed) == 0) {
      return;
    }
  }
}

void ThreadPool::parallelFor(
    std::size_t numTasks,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (numTasks == 0) {
    return;
  }
  const std::lock_guard<std::mutex> serialize(batchMutex);
  Batch current;
  current.body = &body;
  current.remaining.store(numTasks, std::memory_order_relaxed);

  // Deal tasks round-robin: task i starts on queue i % W. Deterministic, so
  // the 1-worker run and the 8-worker run enumerate identical task sets per
  // queue before stealing redistributes them.
  const std::size_t count = queues.size();
  const obs::TraceContext trace = obs::currentTrace();
  for (std::size_t i = 0; i < numTasks; ++i) {
    WorkerQueue& q = *queues[i % count];
    const std::lock_guard<std::mutex> lock(q.mutex);
    q.tasks.push_back(Item{&current, i, {}, nullptr, trace});
    // Incremented under the queue lock that also guards the matching pop,
    // so `queued` can never be decremented before its increment.
    queued.fetch_add(1, std::memory_order_relaxed);
  }
  {
    // Empty critical section: any worker currently between evaluating the
    // wait predicate and blocking finishes doing so before the notify.
    const std::lock_guard<std::mutex> lock(wakeMutex);
  }
  wakeCv.notify_all();

  {
    std::unique_lock<std::mutex> lock(current.doneMutex);
    current.doneCv.wait(lock, [&current] {
      return current.remaining.load(std::memory_order_acquire) == 0;
    });
  }
  if (current.error) {
    std::rethrow_exception(current.error);
  }
}

void ThreadPool::enqueue(Item&& item) {
  const std::size_t target =
      submitCursor.fetch_add(1, std::memory_order_relaxed) % queues.size();
  {
    WorkerQueue& q = *queues[target];
    const std::lock_guard<std::mutex> lock(q.mutex);
    q.tasks.push_back(std::move(item));
    queued.fetch_add(1, std::memory_order_relaxed);
  }
  {
    // Empty critical section, same as parallelFor: a worker between
    // evaluating the wait predicate and blocking finishes doing so first.
    const std::lock_guard<std::mutex> lock(wakeMutex);
  }
  wakeCv.notify_all();
}

void ThreadPool::submit(std::function<void()> task) {
  enqueue(Item{nullptr, 0, std::move(task), nullptr, obs::currentTrace()});
}

void ThreadPool::fork(TaskGroup& group, std::function<void()> task) {
  group.pending.fetch_add(1, std::memory_order_relaxed);
  forkCount.fetch_add(1, std::memory_order_relaxed);
  enqueue(Item{nullptr, 0, std::move(task), &group, obs::currentTrace()});
}

bool ThreadPool::takeExternal(Item& item) {
  // External helpers scan every deque FIFO but must not take parallelFor
  // batch tasks: batch bodies receive a workerId that indexes per-worker
  // resources, and an external thread has none.
  const std::size_t count = queues.size();
  for (std::size_t i = 0; i < count; ++i) {
    WorkerQueue& victim = *queues[i];
    const std::lock_guard<std::mutex> lock(victim.mutex);
    if (victim.tasks.empty() || victim.tasks.front().batch != nullptr) {
      continue;
    }
    item = std::move(victim.tasks.front());
    victim.tasks.pop_front();
    queued.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

bool ThreadPool::tryRunOneTask() {
  Item item;
  if (tlWorkerPool == this) {
    const std::size_t self = tlWorkerId;
    if (popLocal(self, item) || stealTask(self, item)) {
      runTask(std::move(item), self);
      return true;
    }
    return false;
  }
  if (takeExternal(item)) {
    runTask(std::move(item), EXTERNAL_THREAD);
    return true;
  }
  return false;
}

void ThreadPool::waitAndWork(TaskGroup& group) {
  using namespace std::chrono_literals;
  while (group.pending.load(std::memory_order_acquire) != 0) {
    if (tryRunOneTask()) {
      continue;
    }
    // Nothing runnable right now: the remaining group tasks are in flight
    // on other threads. Park on the pool-wide wakeCv — woken by the last
    // group completion and by every enqueue (a newly forked grandchild may
    // be work we can help with). The timeout covers the one unnotified
    // case: queued work exists that this (external) thread may not take.
    std::unique_lock<std::mutex> lock(wakeMutex);
    wakeCv.wait_for(lock, 200us, [this, &group] {
      return group.pending.load(std::memory_order_acquire) == 0 ||
             queued.load(std::memory_order_relaxed) > 0;
    });
  }
  if (group.error) {
    std::exception_ptr err;
    std::swap(err, group.error);
    std::rethrow_exception(err);
  }
}

ThreadPool::Stats ThreadPool::stats() const {
  Stats s;
  s.executedPerWorker.reserve(queues.size());
  for (const auto& q : queues) {
    s.executedPerWorker.push_back(q->executed.load(std::memory_order_relaxed));
  }
  s.steals = stealCount.load(std::memory_order_relaxed);
  s.detachedErrors = detachedErrorCount.load(std::memory_order_relaxed);
  s.forked = forkCount.load(std::memory_order_relaxed);
  s.helpedExternal = externalHelped.load(std::memory_order_relaxed);
  return s;
}

} // namespace qdd::exec
