#include "qdd/exec/ThreadPool.hpp"

#include "qdd/obs/Obs.hpp"

#include <algorithm>
#include <string>

namespace qdd::exec {

std::size_t ThreadPool::defaultWorkers() {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(std::size_t workers) {
  const std::size_t count = workers == 0 ? defaultWorkers() : workers;
  queues.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    queues.push_back(std::make_unique<WorkerQueue>());
  }
  threads.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    threads.emplace_back([this, i] { workerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(wakeMutex);
    stopping.store(true, std::memory_order_relaxed);
  }
  wakeCv.notify_all();
  for (auto& thread : threads) {
    thread.join();
  }
}

bool ThreadPool::popLocal(std::size_t id, std::size_t& task) {
  WorkerQueue& q = *queues[id];
  const std::lock_guard<std::mutex> lock(q.mutex);
  if (q.tasks.empty()) {
    return false;
  }
  // LIFO on the own deque: the most recently dealt task is the one whose
  // distribution round is least likely to have been stolen already.
  task = q.tasks.back();
  q.tasks.pop_back();
  queued.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

bool ThreadPool::stealTask(std::size_t thief, std::size_t& task) {
  const std::size_t count = queues.size();
  for (std::size_t k = 1; k < count; ++k) {
    WorkerQueue& victim = *queues[(thief + k) % count];
    const std::lock_guard<std::mutex> lock(victim.mutex);
    if (victim.tasks.empty()) {
      continue;
    }
    // FIFO from the victim: take the task the owner would reach last.
    task = victim.tasks.front();
    victim.tasks.pop_front();
    queued.fetch_sub(1, std::memory_order_relaxed);
    stealCount.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void ThreadPool::runTask(std::size_t task, std::size_t worker) {
  Batch* b = batch.load(std::memory_order_acquire);
  try {
    (*b->body)(task, worker);
  } catch (...) {
    const std::lock_guard<std::mutex> lock(b->errorMutex);
    if (!b->error) {
      b->error = std::current_exception();
    }
  }
  queues[worker]->executed.fetch_add(1, std::memory_order_relaxed);
  if (b->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    const std::lock_guard<std::mutex> lock(b->doneMutex);
    b->doneCv.notify_all();
  }
}

void ThreadPool::workerLoop(std::size_t id) {
  obs::Registry::labelCurrentThread("worker-" + std::to_string(id));
  while (true) {
    std::size_t task = 0;
    if (popLocal(id, task) || stealTask(id, task)) {
      runTask(task, id);
      continue;
    }
    std::unique_lock<std::mutex> lock(wakeMutex);
    wakeCv.wait(lock, [this] {
      return stopping.load(std::memory_order_relaxed) ||
             queued.load(std::memory_order_relaxed) > 0;
    });
    if (stopping.load(std::memory_order_relaxed) &&
        queued.load(std::memory_order_relaxed) == 0) {
      return;
    }
  }
}

void ThreadPool::parallelFor(
    std::size_t numTasks,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (numTasks == 0) {
    return;
  }
  const std::lock_guard<std::mutex> serialize(batchMutex);
  Batch current;
  current.body = &body;
  current.remaining.store(numTasks, std::memory_order_relaxed);
  batch.store(&current, std::memory_order_release);

  // Deal tasks round-robin: task i starts on queue i % W. Deterministic, so
  // the 1-worker run and the 8-worker run enumerate identical task sets per
  // queue before stealing redistributes them.
  const std::size_t count = queues.size();
  for (std::size_t i = 0; i < numTasks; ++i) {
    WorkerQueue& q = *queues[i % count];
    const std::lock_guard<std::mutex> lock(q.mutex);
    q.tasks.push_back(i);
    // Incremented under the queue lock that also guards the matching pop,
    // so `queued` can never be decremented before its increment.
    queued.fetch_add(1, std::memory_order_relaxed);
  }
  {
    // Empty critical section: any worker currently between evaluating the
    // wait predicate and blocking finishes doing so before the notify.
    const std::lock_guard<std::mutex> lock(wakeMutex);
  }
  wakeCv.notify_all();

  {
    std::unique_lock<std::mutex> lock(current.doneMutex);
    current.doneCv.wait(lock, [&current] {
      return current.remaining.load(std::memory_order_acquire) == 0;
    });
  }
  batch.store(nullptr, std::memory_order_release);
  if (current.error) {
    std::rethrow_exception(current.error);
  }
}

ThreadPool::Stats ThreadPool::stats() const {
  Stats s;
  s.executedPerWorker.reserve(queues.size());
  for (const auto& q : queues) {
    s.executedPerWorker.push_back(q->executed.load(std::memory_order_relaxed));
  }
  s.steals = stealCount.load(std::memory_order_relaxed);
  return s;
}

} // namespace qdd::exec
