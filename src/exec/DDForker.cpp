#include "qdd/exec/DDForker.hpp"

#include <cstdlib>
#include <string>

namespace qdd::exec {

namespace {

std::size_t sharedPoolWorkers() {
  if (const char* env = std::getenv("QDD_WORKERS")) {
    try {
      const long parsed = std::stol(env);
      if (parsed > 0) {
        return static_cast<std::size_t>(parsed);
      }
    } catch (const std::exception&) {
      // fall through to the default
    }
  }
  return ThreadPool::defaultWorkers();
}

int forkDepthFromEnv() {
  if (const char* env = std::getenv("QDD_FORK_DEPTH")) {
    try {
      const long parsed = std::stol(env);
      if (parsed >= 0) {
        return static_cast<int>(parsed);
      }
    } catch (const std::exception&) {
      // fall through to the default
    }
  }
  return Package::DEFAULT_FORK_DEPTH;
}

} // namespace

ThreadPool& sharedPool() {
  // Leaked on purpose: concurrent packages (and their forkers) may outlive
  // main(), and joining workers during static destruction is a classic
  // shutdown deadlock.
  static ThreadPool* pool = new ThreadPool(sharedPoolWorkers());
  return *pool;
}

bool attachSharedForker(Package& pkg) {
  if (!pkg.isConcurrent() || pkg.forker() != nullptr) {
    return false;
  }
  // One forker per process is enough: it is stateless apart from the pool
  // pointer and the (initially unset) cancellation flag, and packages only
  // read it. Leaked for the same reason as the pool.
  static PoolForker* forker = new PoolForker(sharedPool());
  pkg.setForker(forker, forkDepthFromEnv());
  return true;
}

} // namespace qdd::exec
