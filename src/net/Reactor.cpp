#include "qdd/net/Reactor.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#if defined(__linux__)
#include <sys/epoll.h>
#define QDD_NET_HAS_EPOLL 1
#else
#define QDD_NET_HAS_EPOLL 0
#endif

namespace qdd::net {

namespace {

constexpr std::uint64_t WAKE_TOKEN = 0;
constexpr std::uint64_t LISTEN_TOKEN = 1;
constexpr std::size_t READ_CHUNK = 16U * 1024U;

bool setNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

} // namespace

std::int64_t Reactor::nowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Reactor::Reactor(ReactorOptions options, Dispatch dispatch,
                 ParseErrorResponder onParseError)
    : options(options), dispatch(std::move(dispatch)),
      onParseError(std::move(onParseError)) {}

Reactor::~Reactor() { stop(); }

void Reactor::start(int listenSocket) {
  listenFd = listenSocket;
  if (!setNonBlocking(listenFd)) {
    throw std::runtime_error("Reactor: cannot make listen socket "
                             "non-blocking");
  }

  int pipeFds[2];
  if (::pipe(pipeFds) != 0) {
    throw std::runtime_error("Reactor: pipe() failed");
  }
  wakeRead = pipeFds[0];
  wakeWrite = pipeFds[1];
  setNonBlocking(wakeRead);
  setNonBlocking(wakeWrite);

  effectiveBackend = Backend::Poll;
#if QDD_NET_HAS_EPOLL
  if (options.backend == Backend::Epoll) {
    epollFd = ::epoll_create1(0);
    if (epollFd >= 0) {
      effectiveBackend = Backend::Epoll;
      epoll_event ev{};
      // wake pipe and listen socket stay level-triggered: they are drained
      // opportunistically, not to EAGAIN on every edge
      ev.events = EPOLLIN;
      ev.data.u64 = WAKE_TOKEN;
      ::epoll_ctl(epollFd, EPOLL_CTL_ADD, wakeRead, &ev);
      ev.events = EPOLLIN;
      ev.data.u64 = LISTEN_TOKEN;
      ::epoll_ctl(epollFd, EPOLL_CTL_ADD, listenFd, &ev);
    }
  }
#endif

  lastSweepMs = nowMs();
  thread = std::thread([this] { loop(); });
}

void Reactor::wake() {
  const char byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(wakeWrite, &byte, 1);
}

std::shared_ptr<Reactor::Conn> Reactor::lookup(std::uint64_t token) {
  const std::lock_guard<std::mutex> lock(connsMutex);
  const auto it = conns.find(token);
  return it == conns.end() ? nullptr : it->second;
}

void Reactor::complete(std::uint64_t token, std::string bytes,
                       bool closeAfter) {
  if (stopping.load(std::memory_order_acquire)) {
    return; // reactor is gone; the connection is already closed
  }
  const auto conn = lookup(token);
  if (conn != nullptr) {
    const std::lock_guard<std::mutex> lock(conn->ioMutex);
    if (!conn->alive) {
      return; // closed while the worker was busy
    }
    conn->closeAfterWrite = conn->closeAfterWrite || closeAfter;
    std::size_t written = 0;
    if (conn->out.empty()) {
      // direct-write fast path: the socket usually takes the whole
      // response in one non-blocking send, so the client never waits for
      // the reactor wakeup. A full buffer hands the remainder to the
      // reactor's EPOLLOUT writeout — the worker never blocks.
      while (written < bytes.size()) {
        const ssize_t sent = ::send(conn->fd, bytes.data() + written,
                                    bytes.size() - written, MSG_NOSIGNAL);
        if (sent > 0) {
          written += static_cast<std::size_t>(sent);
          continue;
        }
        if (sent < 0 && errno == EINTR) {
          continue;
        }
        // EAGAIN or a dead peer: leave the rest to the reactor (which
        // also owns error handling / teardown)
        break;
      }
    }
    conn->out.append(bytes, written, bytes.size() - written);
  }

  // the reactor still runs the post-response bookkeeping: clear the
  // in-flight flag, parse pipelined input, arm EPOLLOUT, or close
  bool needWake = false;
  {
    const std::lock_guard<std::mutex> lock(completionMutex);
    if (stopping.load(std::memory_order_relaxed)) {
      return;
    }
    completions.push_back({token});
    if (!wakePending) {
      wakePending = true;
      needWake = true;
    }
  }
  if (needWake) {
    wake();
  }
}

void Reactor::loop() {
  const int sweepEveryMs =
      options.idleTimeoutMs > 0
          ? std::clamp(options.idleTimeoutMs / 4, 20, 1000)
          : 500;

#if QDD_NET_HAS_EPOLL
  epoll_event events[64];
#endif

  while (!stopping.load(std::memory_order_acquire)) {
#if QDD_NET_HAS_EPOLL
    if (effectiveBackend == Backend::Epoll) {
      const int n = ::epoll_wait(epollFd, events, 64, sweepEveryMs);
      for (int i = 0; i < n; ++i) {
        const std::uint64_t token = events[i].data.u64;
        if (token == WAKE_TOKEN) {
          char buf[64];
          while (::read(wakeRead, buf, sizeof(buf)) > 0) {
          }
        } else if (token == LISTEN_TOKEN) {
          acceptReady();
        } else {
          if ((events[i].events & (EPOLLIN | EPOLLERR | EPOLLHUP)) != 0) {
            readable(token);
          }
          if ((events[i].events & EPOLLOUT) != 0) {
            writable(token);
          }
        }
      }
    } else
#endif
    {
      std::vector<pollfd> pfds;
      std::vector<std::uint64_t> tokens;
      {
        const std::lock_guard<std::mutex> lock(connsMutex);
        pfds.reserve(conns.size() + 2);
        tokens.reserve(conns.size() + 2);
        pfds.push_back({wakeRead, POLLIN, 0});
        tokens.push_back(WAKE_TOKEN);
        pfds.push_back({listenFd, POLLIN, 0});
        tokens.push_back(LISTEN_TOKEN);
        for (const auto& [token, conn] : conns) {
          short ev = POLLIN;
          if (conn->wantWrite) {
            ev |= POLLOUT;
          }
          pfds.push_back({conn->fd, ev, 0});
          tokens.push_back(token);
        }
      }
      const int n =
          ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), sweepEveryMs);
      if (n > 0) {
        for (std::size_t i = 0; i < pfds.size(); ++i) {
          if (pfds[i].revents == 0) {
            continue;
          }
          if (tokens[i] == WAKE_TOKEN) {
            char buf[64];
            while (::read(wakeRead, buf, sizeof(buf)) > 0) {
            }
          } else if (tokens[i] == LISTEN_TOKEN) {
            acceptReady();
          } else {
            if ((pfds[i].revents & (POLLIN | POLLERR | POLLHUP)) != 0) {
              readable(tokens[i]);
            }
            if ((pfds[i].revents & POLLOUT) != 0 &&
                lookup(tokens[i]) != nullptr) {
              writable(tokens[i]);
            }
          }
        }
      }
    }

    drainCompletions();

    const std::int64_t now = nowMs();
    if (now - lastSweepMs >= sweepEveryMs) {
      lastSweepMs = now;
      sweepIdle();
    }
  }
}

void Reactor::acceptReady() {
  for (;;) {
    const int fd = ::accept(listenFd, nullptr, nullptr);
    if (fd < 0) {
      return; // EAGAIN (drained) or transient error — either way, done
    }
    if (stopping.load(std::memory_order_relaxed)) {
      ::close(fd);
      return;
    }
    setNonBlocking(fd);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    const std::uint64_t token = nextToken++;
    auto conn = std::make_shared<Conn>();
    conn->fd = fd;
    conn->lastActivityMs = nowMs();
    {
      const std::lock_guard<std::mutex> lock(connsMutex);
      conns.emplace(token, std::move(conn));
    }
    openCount.fetch_add(1, std::memory_order_relaxed);
    acceptedN.fetch_add(1, std::memory_order_relaxed);

#if QDD_NET_HAS_EPOLL
    if (effectiveBackend == Backend::Epoll) {
      epoll_event ev{};
      // edge-triggered: readable() always drains to EAGAIN, so no edge is
      // ever lost and the loop never spins on level-ready sockets
      ev.events = EPOLLIN | EPOLLET;
      ev.data.u64 = token;
      ::epoll_ctl(epollFd, EPOLL_CTL_ADD, fd, &ev);
    }
#endif
  }
}

void Reactor::readable(std::uint64_t token) {
  auto conn = lookup(token);
  if (conn == nullptr) {
    return;
  }
  bool sawEof = false;
  char chunk[READ_CHUNK];
  for (;;) {
    const ssize_t got = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    if (got > 0) {
      conn->in.append(chunk, static_cast<std::size_t>(got));
      conn->lastActivityMs = nowMs();
      // abuse guard: a client pipelining unbounded data while a request is
      // in flight must not grow the buffer without limit
      if (conn->in.size() >
          options.maxBodyBytes + MAX_HTTP_HEADER_BYTES + READ_CHUNK) {
        destroy(token);
        return;
      }
      continue;
    }
    if (got == 0) {
      sawEof = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      break;
    }
    if (errno == EINTR) {
      continue;
    }
    destroy(token);
    return;
  }

  maybeParse(token);

  if (sawEof && lookup(token) != nullptr) {
    // peer finished sending; flush whatever response is (or becomes) due,
    // then close — a busy connection closes when its completion lands
    bool idle = false;
    {
      const std::lock_guard<std::mutex> lock(conn->ioMutex);
      conn->closeAfterWrite = true;
      idle = !conn->busy && conn->out.empty();
    }
    if (idle) {
      destroy(token);
    }
  }
}

void Reactor::maybeParse(std::uint64_t token) {
  const auto conn = lookup(token);
  if (conn == nullptr) {
    return;
  }
  if (conn->busy) {
    return; // one request in flight per connection; pipelined bytes wait
  }
  {
    const std::lock_guard<std::mutex> lock(conn->ioMutex);
    if (conn->closeAfterWrite) {
      return; // draining towards close; no further requests
    }
  }
  service::HttpRequest request;
  const ParseStatus status =
      tryParseHttpRequest(conn->in, request, options.maxBodyBytes);
  switch (status) {
  case ParseStatus::NeedMore:
    return;
  case ParseStatus::Ok:
    conn->busy = true;
    conn->lastActivityMs = nowMs();
    dispatch(token, std::move(request));
    return;
  case ParseStatus::Malformed:
  case ParseStatus::TooLarge:
  case ParseStatus::Unsupported:
    {
      const std::lock_guard<std::mutex> lock(conn->ioMutex);
      conn->out += onParseError(status);
      conn->closeAfterWrite = true;
    }
    flushWrite(token);
    return;
  }
}

void Reactor::flushWrite(std::uint64_t token) {
  const auto conn = lookup(token);
  if (conn == nullptr) {
    return;
  }
  bool shouldDestroy = false;
  {
    const std::lock_guard<std::mutex> lock(conn->ioMutex);
    std::size_t written = 0;
    while (written < conn->out.size()) {
      const ssize_t sent = ::send(conn->fd, conn->out.data() + written,
                                  conn->out.size() - written, MSG_NOSIGNAL);
      if (sent > 0) {
        written += static_cast<std::size_t>(sent);
        conn->lastActivityMs = nowMs();
        continue;
      }
      if (sent < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        break;
      }
      if (sent < 0 && errno == EINTR) {
        continue;
      }
      shouldDestroy = true; // dead peer
      break;
    }
    conn->out.erase(0, written);
    shouldDestroy =
        shouldDestroy || (conn->out.empty() && conn->closeAfterWrite);
  }
  if (shouldDestroy) {
    destroy(token);
    return;
  }
  updateWriteInterest(token);
}

void Reactor::updateWriteInterest(std::uint64_t token) {
  const auto conn = lookup(token);
  if (conn == nullptr) {
    return;
  }
  bool want = false;
  {
    const std::lock_guard<std::mutex> lock(conn->ioMutex);
    want = !conn->out.empty();
  }
  if (want == conn->wantWrite) {
    return;
  }
  conn->wantWrite = want;
#if QDD_NET_HAS_EPOLL
  if (effectiveBackend == Backend::Epoll) {
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLET | (want ? EPOLLOUT : 0U);
    ev.data.u64 = token;
    ::epoll_ctl(epollFd, EPOLL_CTL_MOD, conn->fd, &ev);
  }
#endif
  // poll backend: the per-iteration pollfd rebuild picks wantWrite up
}

void Reactor::writable(std::uint64_t token) { flushWrite(token); }

void Reactor::drainCompletions() {
  std::vector<Completion> batch;
  {
    const std::lock_guard<std::mutex> lock(completionMutex);
    batch.swap(completions);
    wakePending = false;
  }
  for (auto& completion : batch) {
    const auto conn = lookup(completion.token);
    if (conn == nullptr) {
      continue; // connection closed while the worker was busy
    }
    conn->busy = false;
    conn->lastActivityMs = nowMs();
    // the response bytes already sit in conn->out (or went out on the
    // worker's direct write); flush the remainder / arm EPOLLOUT / close
    flushWrite(completion.token);
    // a pipelined follow-up request may already sit in the read buffer
    maybeParse(completion.token);
  }
}

void Reactor::sweepIdle() {
  if (options.idleTimeoutMs <= 0) {
    return;
  }
  const std::int64_t now = nowMs();
  std::vector<std::uint64_t> stale;
  {
    const std::lock_guard<std::mutex> lock(connsMutex);
    for (const auto& [token, conn] : conns) {
      if (!conn->busy &&
          now - conn->lastActivityMs > options.idleTimeoutMs) {
        stale.push_back(token);
      }
    }
  }
  for (const std::uint64_t token : stale) {
    idleClosedN.fetch_add(1, std::memory_order_relaxed);
    destroy(token);
  }
}

void Reactor::destroy(std::uint64_t token) {
  std::shared_ptr<Conn> conn;
  {
    const std::lock_guard<std::mutex> lock(connsMutex);
    const auto it = conns.find(token);
    if (it == conns.end()) {
      return;
    }
    conn = it->second;
    conns.erase(it);
  }
  {
    // fence off complete()'s direct write before the fd number can be
    // reused: a worker holding the shared_ptr sees alive == false
    const std::lock_guard<std::mutex> lock(conn->ioMutex);
    conn->alive = false;
#if QDD_NET_HAS_EPOLL
    if (effectiveBackend == Backend::Epoll) {
      ::epoll_ctl(epollFd, EPOLL_CTL_DEL, conn->fd, nullptr);
    }
#endif
    ::close(conn->fd);
  }
  openCount.fetch_sub(1, std::memory_order_relaxed);
}

void Reactor::stop() {
  {
    const std::lock_guard<std::mutex> lock(completionMutex);
    if (stopping.exchange(true, std::memory_order_acq_rel)) {
      return;
    }
  }
  if (thread.joinable()) {
    wake();
    thread.join();
  }
  std::vector<std::shared_ptr<Conn>> remaining;
  {
    const std::lock_guard<std::mutex> lock(connsMutex);
    remaining.reserve(conns.size());
    for (auto& [token, conn] : conns) {
      remaining.push_back(conn);
    }
    conns.clear();
  }
  for (const auto& conn : remaining) {
    const std::lock_guard<std::mutex> lock(conn->ioMutex);
    conn->alive = false;
    ::close(conn->fd);
  }
  openCount.store(0, std::memory_order_relaxed);
  {
    // drop completions that raced the shutdown
    const std::lock_guard<std::mutex> lock(completionMutex);
    completions.clear();
  }
  if (epollFd >= 0) {
    ::close(epollFd);
    epollFd = -1;
  }
  if (wakeRead >= 0) {
    ::close(wakeRead);
    wakeRead = -1;
  }
  if (wakeWrite >= 0) {
    ::close(wakeWrite);
    wakeWrite = -1;
  }
}

} // namespace qdd::net
