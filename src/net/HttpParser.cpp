#include "qdd/net/HttpParser.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <map>

namespace qdd::net {

namespace {

std::string toLower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) {
    ++b;
  }
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r')) {
    --e;
  }
  return s.substr(b, e - b);
}

void parseQuery(const std::string& raw,
                std::map<std::string, std::string>& query) {
  std::size_t pos = 0;
  while (pos < raw.size()) {
    const std::size_t amp = raw.find('&', pos);
    const std::string pair =
        raw.substr(pos, amp == std::string::npos ? std::string::npos
                                                 : amp - pos);
    const std::size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      if (!pair.empty()) {
        query[pair] = "";
      }
    } else {
      query[pair.substr(0, eq)] = pair.substr(eq + 1);
    }
    if (amp == std::string::npos) {
      break;
    }
    pos = amp + 1;
  }
}

} // namespace

ParseStatus tryParseHttpRequest(std::string& buffer,
                                service::HttpRequest& out,
                                std::size_t maxBodyBytes) {
  // 1. the header terminator must be inside the first 16 KiB
  const std::size_t headerEnd = buffer.find("\r\n\r\n");
  if (headerEnd == std::string::npos) {
    return buffer.size() > MAX_HTTP_HEADER_BYTES ? ParseStatus::TooLarge
                                                 : ParseStatus::NeedMore;
  }
  if (headerEnd > MAX_HTTP_HEADER_BYTES) {
    return ParseStatus::TooLarge;
  }

  // 2. request line
  const std::size_t lineEnd = buffer.find("\r\n");
  const std::string line = buffer.substr(0, lineEnd);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = line.rfind(' ');
  if (sp1 == std::string::npos || sp2 == sp1) {
    return ParseStatus::Malformed;
  }
  service::HttpRequest request;
  request.method = line.substr(0, sp1);
  request.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string version = line.substr(sp2 + 1);
  if (version != "HTTP/1.1" && version != "HTTP/1.0") {
    return ParseStatus::Malformed;
  }
  request.keepAlive = version == "HTTP/1.1";

  const std::size_t qmark = request.target.find('?');
  request.path = request.target.substr(0, qmark);
  if (qmark != std::string::npos) {
    parseQuery(request.target.substr(qmark + 1), request.query);
  }

  // 3. headers
  std::size_t pos = lineEnd + 2;
  while (pos < headerEnd) {
    const std::size_t eol = buffer.find("\r\n", pos);
    const std::string header = buffer.substr(pos, eol - pos);
    pos = eol + 2;
    const std::size_t colon = header.find(':');
    if (colon == std::string::npos) {
      return ParseStatus::Malformed;
    }
    request.headers[toLower(trim(header.substr(0, colon)))] =
        trim(header.substr(colon + 1));
  }

  if (request.headers.count("transfer-encoding") > 0) {
    return ParseStatus::Unsupported;
  }
  const auto conn = request.headers.find("connection");
  if (conn != request.headers.end()) {
    const std::string v = toLower(conn->second);
    if (v == "close") {
      request.keepAlive = false;
    } else if (v == "keep-alive") {
      request.keepAlive = true;
    }
  }

  // 4. body
  std::size_t contentLength = 0;
  const auto cl = request.headers.find("content-length");
  if (cl != request.headers.end()) {
    char* end = nullptr;
    const unsigned long long n = std::strtoull(cl->second.c_str(), &end, 10);
    if (end == nullptr || *end != '\0') {
      return ParseStatus::Malformed;
    }
    contentLength = static_cast<std::size_t>(n);
  }
  if (contentLength > maxBodyBytes) {
    return ParseStatus::TooLarge; // body is never waited for
  }
  const std::size_t bodyStart = headerEnd + 4;
  if (buffer.size() - bodyStart < contentLength) {
    return ParseStatus::NeedMore;
  }
  request.body = buffer.substr(bodyStart, contentLength);
  // keep pipelined bytes for the next request on this connection
  buffer.erase(0, bodyStart + contentLength);
  out = std::move(request);
  return ParseStatus::Ok;
}

} // namespace qdd::net
