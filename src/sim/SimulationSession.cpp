#include "qdd/sim/SimulationSession.hpp"

#include "qdd/obs/Obs.hpp"

#include <chrono>
#include <numeric>
#include <stdexcept>

namespace qdd::sim {

SimulationSession::SimulationSession(const ir::QuantumComputation& circuit,
                                     Package& package, std::uint64_t seed)
    : qc(circuit), pkg(package), cache(package), rng(seed) {
  if (qc.numQubits() == 0) {
    throw std::invalid_argument("SimulationSession: circuit has no qubits");
  }
  pkg.resize(qc.numQubits());
  current = pkg.makeZeroState(qc.numQubits());
  pkg.incRef(current);
  classicals.assign(qc.numClbits(), false);
  peak = Package::size(current);
}

SimulationSession::~SimulationSession() {
  pkg.decRef(current);
  for (const auto& snap : snapshots) {
    pkg.decRef(snap.state);
  }
}

const ir::Operation* SimulationSession::nextOperation() const {
  return atEnd() ? nullptr : &qc.at(pos);
}

std::size_t SimulationSession::currentNodes() const {
  return Package::size(current);
}

bool SimulationSession::isSpecial(const ir::Operation& op) {
  switch (op.type()) {
  case ir::OpType::Barrier:
  case ir::OpType::Measure:
  case ir::OpType::Reset:
    return true;
  default:
    return false;
  }
}

void SimulationSession::pushSnapshot() {
  pkg.incRef(current);
  snapshots.push_back({current, classicals});
}

int SimulationSession::chooseOutcome(Qubit q, double p1) {
  const double tol = pkg.tolerance();
  if (p1 <= tol) {
    return 0; // deterministic, no dialog (as in the tool)
  }
  if (p1 >= 1. - tol) {
    return 1;
  }
  if (outcomeChooser) {
    const int outcome = outcomeChooser(q, 1. - p1, p1);
    if (outcome != 0 && outcome != 1) {
      throw std::invalid_argument("outcome chooser must return 0 or 1");
    }
    return outcome;
  }
  std::uniform_real_distribution<double> dist(0., 1.);
  return dist(rng) < p1 ? 1 : 0;
}

void SimulationSession::applyUnitary(const ir::Operation& op) {
  const vEdge next =
      bridge::applyOperation(op, qc.numQubits(), current, pkg, mode, &cache);
  pkg.incRef(next);
  pkg.decRef(current);
  current = next;
}

void SimulationSession::applyMeasurement(const ir::NonUnitaryOperation& op) {
  const auto& qubits = op.targets();
  const auto& clbits = op.classics();
  for (std::size_t k = 0; k < qubits.size(); ++k) {
    const Qubit q = qubits[k];
    const double p1 = pkg.probabilityOfOne(current, q);
    const int outcome = chooseOutcome(q, p1);
    pkg.forceMeasureOne(current, q, outcome == 1);
    classicals.at(clbits[k]) = (outcome == 1);
  }
}

void SimulationSession::applyReset(const ir::NonUnitaryOperation& op) {
  for (const Qubit q : op.targets()) {
    const double p1 = pkg.probabilityOfOne(current, q);
    const int outcome = chooseOutcome(q, p1);
    pkg.resetQubitTo(current, q, outcome == 1);
  }
}

bool SimulationSession::stepForward() {
  if (atEnd()) {
    return false;
  }
  const ir::Operation& op = qc.at(pos);
  obs::ScopedSpan span("sim", "step");
  const auto t0 = std::chrono::steady_clock::now();
  pushSnapshot();
  switch (op.type()) {
  case ir::OpType::Barrier:
    break; // no-op; serves as breakpoint only
  case ir::OpType::Measure:
    applyMeasurement(static_cast<const ir::NonUnitaryOperation&>(op));
    break;
  case ir::OpType::Reset:
    applyReset(static_cast<const ir::NonUnitaryOperation&>(op));
    break;
  case ir::OpType::ClassicControlled: {
    const auto& cc = static_cast<const ir::ClassicControlledOperation&>(op);
    if (cc.conditionSatisfied(classicals)) {
      applyUnitary(cc.operation());
    }
    break;
  }
  default:
    applyUnitary(op);
    break;
  }
  ++pos;
  StepProfile profile;
  profile.nodesPerLevel = Package::sizeByLevel(current);
  const std::size_t nodes =
      std::accumulate(profile.nodesPerLevel.begin(),
                      profile.nodesPerLevel.end(), std::size_t{0});
  peak = std::max(peak, nodes);
  history.push_back(nodes);
  pkg.garbageCollect();
  const mem::TablePressure before =
      pressures.empty() ? mem::TablePressure{} : pressures.back();
  const mem::TablePressure now = pkg.tablePressure();
  pressures.push_back(now);
  profile.durationUs = std::chrono::duration<double, std::micro>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  profiles.push_back(profile);
  if (span.active()) {
    const std::size_t lookupDelta = now.cacheLookups - before.cacheLookups;
    const std::size_t hitDelta = now.cacheHits - before.cacheHits;
    const double hitRatioDelta =
        lookupDelta == 0 ? 0.
                         : static_cast<double>(hitDelta) /
                               static_cast<double>(lookupDelta);
    std::string opName = op.name(); // formats params — do it once
    span.arg("op", opName);
    span.arg("index", pos - 1);
    span.arg("nodes", nodes);
    span.arg("cacheHitRatioDelta", hitRatioDelta);
    span.arg("gcRuns", now.gcRuns);
    obs::StepMetrics metrics;
    metrics.index = pos - 1;
    metrics.op = std::move(opName);
    metrics.nodes = nodes;
    metrics.nodesPerLevel = profile.nodesPerLevel;
    metrics.cacheLookups = now.cacheLookups;
    metrics.cacheHits = now.cacheHits;
    metrics.cacheHitRatioDelta = hitRatioDelta;
    metrics.realEntries = now.realEntries;
    metrics.gcRuns = now.gcRuns;
    metrics.tsUs = obs::Registry::instance().nowUs();
    metrics.durUs = profile.durationUs;
    obs::Registry::instance().recordStep(std::move(metrics));
  }
  return true;
}

bool SimulationSession::stepBackward() {
  // snapshots can be empty with pos > 0 after a spill/restore cycle (the
  // history is not part of the spill image) — there is nothing to undo to
  if (atStart() || snapshots.empty()) {
    return false;
  }
  Snapshot snap = snapshots.back();
  snapshots.pop_back();
  pkg.decRef(current);
  current = snap.state; // snapshot already holds a reference
  classicals = std::move(snap.classicals);
  --pos;
  if (!history.empty()) {
    history.pop_back();
  }
  if (!pressures.empty()) {
    pressures.pop_back();
  }
  if (!profiles.empty()) {
    profiles.pop_back();
  }
  return true;
}

std::size_t SimulationSession::runToEnd(const std::atomic<bool>* cancel) {
  std::size_t steps = 0;
  while (!atEnd()) {
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
      break; // deadline/cancellation: stop at the gate boundary
    }
    const ir::Operation& op = qc.at(pos);
    stepForward();
    ++steps;
    if (isSpecial(op)) {
      // barriers, measurements, and resets act as breakpoints (Sec. IV-B)
      break;
    }
  }
  return steps;
}

std::size_t SimulationSession::runToStart() {
  std::size_t steps = 0;
  while (stepBackward()) {
    ++steps;
  }
  if (pos > 0) {
    // snapshot history was dropped by a spill/restore cycle: jump straight
    // to the initial state instead of replaying snapshots
    const vEdge zero = pkg.makeZeroState(qc.numQubits());
    pkg.incRef(zero);
    pkg.decRef(current);
    current = zero;
    classicals.assign(qc.numClbits(), false);
    steps += pos;
    pos = 0;
    history.clear();
    pressures.clear();
    profiles.clear();
  }
  return steps;
}

void SimulationSession::restoreTo(const vEdge& state, std::size_t position,
                                  std::vector<bool> classicalBits,
                                  std::size_t peakNodes) {
  if (position > qc.size()) {
    throw std::invalid_argument(
        "SimulationSession::restoreTo: position beyond circuit end");
  }
  pkg.incRef(state);
  pkg.decRef(current);
  current = state;
  for (const auto& snap : snapshots) {
    pkg.decRef(snap.state);
  }
  snapshots.clear();
  classicals = std::move(classicalBits);
  classicals.resize(qc.numClbits(), false);
  pos = position;
  peak = std::max(peakNodes, Package::size(current));
  history.clear();
  pressures.clear();
  profiles.clear();
}

// --- sampling ([16]) ------------------------------------------------------------

namespace {

bool isDynamic(const ir::QuantumComputation& qc) {
  bool seenMeasure = false;
  for (const auto& op : qc) {
    switch (op->type()) {
    case ir::OpType::Reset:
    case ir::OpType::ClassicControlled:
      return true;
    case ir::OpType::Measure:
      seenMeasure = true;
      break;
    case ir::OpType::Barrier:
      break;
    default:
      if (seenMeasure) {
        return true; // unitary after measurement: mid-circuit measurement
      }
      break;
    }
  }
  return false;
}

} // namespace

CircuitSampler::CircuitSampler(const ir::QuantumComputation& circuit,
                               Package& package)
    : qc(circuit), pkg(package), dynamic(isDynamic(qc)) {
  // Collect the (final) measurement map qubit -> classical bit.
  for (const auto& op : qc) {
    if (op->type() == ir::OpType::Measure) {
      const auto& m = static_cast<const ir::NonUnitaryOperation&>(*op);
      for (std::size_t k = 0; k < m.targets().size(); ++k) {
        measurements.emplace_back(m.targets()[k], m.classics()[k]);
      }
    }
  }
  if (dynamic) {
    return;
  }
  // Weak simulation: one strong pass now; sample() then draws repeatedly and
  // non-destructively from the final decision diagram.
  pkg.resize(qc.numQubits());
  // strip measurements (they are all final)
  ir::QuantumComputation stripped(qc.numQubits(), qc.numClbits(), qc.name());
  for (const auto& op : qc) {
    if (op->type() != ir::OpType::Measure) {
      stripped.emplaceBack(op->clone());
    }
  }
  finalState =
      bridge::simulate(stripped, pkg.makeZeroState(qc.numQubits()), pkg);
  pkg.incRef(finalState);
}

CircuitSampler::~CircuitSampler() {
  if (!dynamic) {
    pkg.decRef(finalState);
  }
}

SamplingResult CircuitSampler::sample(std::size_t shots, std::uint64_t seed) {
  SamplingResult result;
  result.shots = shots;
  std::mt19937_64 rng(seed);

  if (!dynamic) {
    for (std::size_t s = 0; s < shots; ++s) {
      const std::string qubitString = pkg.sample(finalState, rng);
      if (measurements.empty()) {
        ++result.counts[qubitString];
        continue;
      }
      const std::size_t n = qc.numQubits();
      std::string bits(qc.numClbits(), '0');
      for (const auto& [q, c] : measurements) {
        bits[qc.numClbits() - 1 - c] =
            qubitString[n - 1 - static_cast<std::size_t>(q)];
      }
      ++result.counts[bits];
    }
    return result;
  }

  // Dynamic circuit: execute shot by shot on the shared package —
  // constructing the unique/compute tables per shot would dominate.
  std::uniform_int_distribution<std::uint64_t> seeder;
  for (std::size_t s = 0; s < shots; ++s) {
    SimulationSession session(qc, pkg, seeder(rng));
    while (session.stepForward()) {
    }
    if (measurements.empty()) {
      std::mt19937_64 sampleRng(seeder(rng));
      ++result.counts[pkg.sample(session.state(), sampleRng)];
      continue;
    }
    std::string bits(qc.numClbits(), '0');
    for (std::size_t c = 0; c < qc.numClbits(); ++c) {
      if (session.classicalBits()[c]) {
        bits[qc.numClbits() - 1 - c] = '1';
      }
    }
    ++result.counts[bits];
  }
  return result;
}

SamplingResult sampleCircuit(const ir::QuantumComputation& qc,
                             std::size_t shots, std::uint64_t seed,
                             Package& pkg) {
  CircuitSampler sampler(qc, pkg);
  return sampler.sample(shots, seed);
}

SamplingResult sampleCircuit(const ir::QuantumComputation& qc,
                             std::size_t shots, std::uint64_t seed) {
  Package pkg(qc.numQubits());
  return sampleCircuit(qc, shots, seed, pkg);
}

} // namespace qdd::sim
