#include "qdd/sim/NoiseModel.hpp"

#include <cmath>
#include <stdexcept>

namespace qdd::sim {

bool KrausChannel::isTracePreserving(double tol) const {
  // sum_k E_k^dagger E_k == I
  double s00r = 0.;
  double s00i = 0.;
  double s01r = 0.;
  double s01i = 0.;
  double s11r = 0.;
  double s11i = 0.;
  for (const auto& e : operators) {
    // (E^dagger E)_{ij} = sum_m conj(E_{mi}) E_{mj}
    const ComplexValue e00 = e[0];
    const ComplexValue e01 = e[1];
    const ComplexValue e10 = e[2];
    const ComplexValue e11 = e[3];
    const ComplexValue d00 = e00.conj() * e00 + e10.conj() * e10;
    const ComplexValue d01 = e00.conj() * e01 + e10.conj() * e11;
    const ComplexValue d11 = e01.conj() * e01 + e11.conj() * e11;
    s00r += d00.re;
    s00i += d00.im;
    s01r += d01.re;
    s01i += d01.im;
    s11r += d11.re;
    s11i += d11.im;
  }
  return std::abs(s00r - 1.) <= tol && std::abs(s00i) <= tol &&
         std::abs(s01r) <= tol && std::abs(s01i) <= tol &&
         std::abs(s11r - 1.) <= tol && std::abs(s11i) <= tol;
}

namespace {
void checkProbability(double p, const char* what) {
  if (p < 0. || p > 1.) {
    throw std::invalid_argument(std::string(what) +
                                ": probability must be in [0, 1]");
  }
}
} // namespace

KrausChannel depolarizing(double p) {
  checkProbability(p, "depolarizing");
  const double keep = std::sqrt(1. - 3. * p / 4.);
  const double err = std::sqrt(p / 4.);
  KrausChannel ch{"depolarizing", {}};
  ch.operators.push_back({ComplexValue{keep, 0.}, ComplexValue{},
                          ComplexValue{}, ComplexValue{keep, 0.}});
  ch.operators.push_back({ComplexValue{}, ComplexValue{err, 0.},
                          ComplexValue{err, 0.}, ComplexValue{}}); // X
  ch.operators.push_back({ComplexValue{}, ComplexValue{0., -err},
                          ComplexValue{0., err}, ComplexValue{}}); // Y
  ch.operators.push_back({ComplexValue{err, 0.}, ComplexValue{},
                          ComplexValue{}, ComplexValue{-err, 0.}}); // Z
  return ch;
}

KrausChannel amplitudeDamping(double gamma) {
  checkProbability(gamma, "amplitudeDamping");
  KrausChannel ch{"amplitude-damping", {}};
  ch.operators.push_back({ComplexValue{1., 0.}, ComplexValue{},
                          ComplexValue{},
                          ComplexValue{std::sqrt(1. - gamma), 0.}});
  ch.operators.push_back({ComplexValue{}, ComplexValue{std::sqrt(gamma), 0.},
                          ComplexValue{}, ComplexValue{}});
  return ch;
}

KrausChannel phaseDamping(double lambda) {
  checkProbability(lambda, "phaseDamping");
  KrausChannel ch{"phase-damping", {}};
  ch.operators.push_back({ComplexValue{1., 0.}, ComplexValue{},
                          ComplexValue{},
                          ComplexValue{std::sqrt(1. - lambda), 0.}});
  ch.operators.push_back({ComplexValue{}, ComplexValue{}, ComplexValue{},
                          ComplexValue{std::sqrt(lambda), 0.}});
  return ch;
}

KrausChannel bitFlip(double p) {
  checkProbability(p, "bitFlip");
  const double keep = std::sqrt(1. - p);
  const double flip = std::sqrt(p);
  KrausChannel ch{"bit-flip", {}};
  ch.operators.push_back({ComplexValue{keep, 0.}, ComplexValue{},
                          ComplexValue{}, ComplexValue{keep, 0.}});
  ch.operators.push_back({ComplexValue{}, ComplexValue{flip, 0.},
                          ComplexValue{flip, 0.}, ComplexValue{}});
  return ch;
}

KrausChannel phaseFlip(double p) {
  checkProbability(p, "phaseFlip");
  const double keep = std::sqrt(1. - p);
  const double flip = std::sqrt(p);
  KrausChannel ch{"phase-flip", {}};
  ch.operators.push_back({ComplexValue{keep, 0.}, ComplexValue{},
                          ComplexValue{}, ComplexValue{keep, 0.}});
  ch.operators.push_back({ComplexValue{flip, 0.}, ComplexValue{},
                          ComplexValue{}, ComplexValue{-flip, 0.}});
  return ch;
}

} // namespace qdd::sim
