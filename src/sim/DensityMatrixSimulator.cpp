#include "qdd/sim/DensityMatrixSimulator.hpp"

#include "qdd/bridge/DDBuilder.hpp"

#include <cmath>
#include <stdexcept>

namespace qdd::sim {

namespace {
constexpr double PROB_EPS = 1e-12;
} // namespace

DensityMatrixSimulator::DensityMatrixSimulator(
    const ir::QuantumComputation& circuit, Package& package)
    : qc(circuit), pkg(package) {
  if (qc.numQubits() == 0) {
    throw std::invalid_argument("DensityMatrixSimulator: empty circuit");
  }
  pkg.resize(qc.numQubits());
  // rho = |0...0><0...0| = product of the per-qubit |0><0| projectors
  GateMatrix p0{};
  p0[0] = ComplexValue{1., 0.};
  mEdge rho = pkg.makeGateDD(p0, qc.numQubits(), 0);
  for (std::size_t q = 1; q < qc.numQubits(); ++q) {
    rho = pkg.multiply(
        pkg.makeGateDD(p0, qc.numQubits(), static_cast<Qubit>(q)), rho);
  }
  pkg.incRef(rho);
  branches.push_back({rho, std::vector<bool>(qc.numClbits(), false)});
}

DensityMatrixSimulator::~DensityMatrixSimulator() {
  for (auto& branch : branches) {
    pkg.decRef(branch.rho);
  }
}

mEdge DensityMatrixSimulator::projector(Qubit q, bool outcome) {
  GateMatrix p{};
  p[outcome ? 3 : 0] = ComplexValue{1., 0.};
  return pkg.makeGateDD(p, qc.numQubits(), q);
}

void DensityMatrixSimulator::applyUnitary(const ir::Operation& op,
                                          Branch& branch) {
  const mEdge u = bridge::getDD(op, qc.numQubits(), pkg);
  const mEdge udg = pkg.conjugateTranspose(u);
  const mEdge next = pkg.multiply(u, pkg.multiply(branch.rho, udg));
  pkg.incRef(next);
  pkg.decRef(branch.rho);
  branch.rho = next;
}

void DensityMatrixSimulator::setNoiseModel(NoiseModel model) {
  if (executed) {
    throw std::logic_error("setNoiseModel: simulation already executed");
  }
  for (const auto& channel : model.afterGate) {
    if (!channel.isTracePreserving()) {
      throw std::invalid_argument("setNoiseModel: channel '" + channel.name +
                                  "' is not trace preserving");
    }
  }
  noise = std::move(model);
}

void DensityMatrixSimulator::applyChannel(const KrausChannel& channel,
                                          Qubit q, Branch& branch) {
  // rho -> sum_k E_k rho E_k^dagger
  mEdge sum = mEdge::zero();
  for (const auto& kraus : channel.operators) {
    const mEdge e = pkg.makeGateDD(kraus, qc.numQubits(), q);
    const mEdge edg = pkg.conjugateTranspose(e);
    sum = pkg.add(sum, pkg.multiply(e, pkg.multiply(branch.rho, edg)));
  }
  pkg.incRef(sum);
  pkg.decRef(branch.rho);
  branch.rho = sum;
}

void DensityMatrixSimulator::applyNoiseAfter(const ir::Operation& op,
                                             Branch& branch) {
  if (noise.empty()) {
    return;
  }
  for (const Qubit q : op.usedQubits()) {
    for (const auto& channel : noise.afterGate) {
      applyChannel(channel, q, branch);
    }
  }
}

void DensityMatrixSimulator::applyReset(Qubit q, Branch& branch) {
  // rho -> P0 rho P0 + X P1 rho P1 X   (exact, no dialog required)
  const mEdge p0 = projector(q, false);
  const mEdge p1 = projector(q, true);
  const mEdge x = pkg.makeGateDD(X_MAT, qc.numQubits(), q);
  const mEdge keep = pkg.multiply(p0, pkg.multiply(branch.rho, p0));
  const mEdge flip = pkg.multiply(
      x, pkg.multiply(p1, pkg.multiply(branch.rho, pkg.multiply(p1, x))));
  const mEdge next = pkg.add(keep, flip);
  pkg.incRef(next);
  pkg.decRef(branch.rho);
  branch.rho = next;
}

std::vector<DensityMatrixSimulator::Branch>
DensityMatrixSimulator::applyMeasure(const ir::NonUnitaryOperation& op,
                                     Branch branch) {
  std::vector<Branch> current;
  current.push_back(std::move(branch));
  for (std::size_t k = 0; k < op.targets().size(); ++k) {
    const Qubit q = op.targets()[k];
    const std::size_t clbit = op.classics()[k];
    std::vector<Branch> next;
    for (auto& b : current) {
      for (const bool outcome : {false, true}) {
        const mEdge p = projector(q, outcome);
        const mEdge projected =
            pkg.multiply(p, pkg.multiply(b.rho, p));
        const double prob = pkg.trace(projected, qc.numQubits()).re;
        if (prob <= PROB_EPS) {
          continue;
        }
        Branch nb;
        nb.rho = projected;
        pkg.incRef(nb.rho);
        nb.classicals = b.classicals;
        if (clbit < nb.classicals.size()) {
          nb.classicals[clbit] = outcome;
        }
        next.push_back(std::move(nb));
      }
      pkg.decRef(b.rho);
    }
    current = std::move(next);
  }
  return current;
}

void DensityMatrixSimulator::run() {
  if (executed) {
    throw std::logic_error("DensityMatrixSimulator: already executed");
  }
  executed = true;
  for (const auto& op : qc) {
    switch (op->type()) {
    case ir::OpType::Barrier:
      break;
    case ir::OpType::Measure: {
      const auto& m = static_cast<const ir::NonUnitaryOperation&>(*op);
      std::vector<Branch> next;
      for (auto& branch : branches) {
        auto split = applyMeasure(m, std::move(branch));
        for (auto& b : split) {
          next.push_back(std::move(b));
        }
      }
      branches = std::move(next);
      break;
    }
    case ir::OpType::Reset: {
      for (auto& branch : branches) {
        for (const Qubit q : op->targets()) {
          applyReset(q, branch);
        }
      }
      break;
    }
    case ir::OpType::ClassicControlled: {
      const auto& cc =
          static_cast<const ir::ClassicControlledOperation&>(*op);
      for (auto& branch : branches) {
        if (cc.conditionSatisfied(branch.classicals)) {
          applyUnitary(cc.operation(), branch);
        }
      }
      break;
    }
    default:
      for (auto& branch : branches) {
        applyUnitary(*op, branch);
        applyNoiseAfter(*op, branch);
      }
      break;
    }
    pkg.garbageCollect();
  }
}

mEdge DensityMatrixSimulator::densityMatrix() {
  mEdge sum = mEdge::zero();
  for (const auto& branch : branches) {
    sum = pkg.add(sum, branch.rho);
  }
  const double total = pkg.trace(sum, qc.numQubits()).re;
  if (total > PROB_EPS && std::abs(total - 1.) > PROB_EPS) {
    sum.w = pkg.lookup(sum.w.toValue() * (1. / total));
  }
  return sum;
}

double DensityMatrixSimulator::probabilityOfOne(Qubit q) {
  double p = 0.;
  double total = 0.;
  const mEdge p1 = projector(q, true);
  for (const auto& branch : branches) {
    p += pkg.trace(pkg.multiply(p1, branch.rho), qc.numQubits()).re;
    total += pkg.trace(branch.rho, qc.numQubits()).re;
  }
  return total > PROB_EPS ? p / total : 0.;
}

std::map<std::string, double>
DensityMatrixSimulator::classicalDistribution() {
  std::map<std::string, double> dist;
  if (qc.numClbits() == 0) {
    return dist;
  }
  for (const auto& branch : branches) {
    std::string bits(qc.numClbits(), '0');
    for (std::size_t c = 0; c < qc.numClbits(); ++c) {
      if (branch.classicals[c]) {
        bits[qc.numClbits() - 1 - c] = '1';
      }
    }
    dist[bits] += pkg.trace(branch.rho, qc.numQubits()).re;
  }
  return dist;
}

double DensityMatrixSimulator::purity() {
  const mEdge rho = densityMatrix();
  return pkg.trace(pkg.multiply(rho, rho), qc.numQubits()).re;
}

} // namespace qdd::sim
