#include "qdd/viz/TraceExporter.hpp"

#include "qdd/viz/JsonExporter.hpp"
#include "qdd/viz/TextDump.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace qdd::viz {

namespace {

// (string escaping lives in JsonExporter.hpp: viz::jsonEscape handles
// quotes, backslashes, and every control character)

/// Indents every line of a JSON fragment for embedding.
std::string indent(const std::string& text, const std::string& pad) {
  std::istringstream in(text);
  std::ostringstream out;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (!first) {
      out << "\n";
    }
    out << pad << line;
    first = false;
  }
  return out.str();
}

} // namespace

std::string exportSimulationTrace(const ir::QuantumComputation& qc,
                                  Package& pkg, TraceOptions options) {
  sim::SimulationSession session(qc, pkg, options.seed);
  const JsonExporter diagrams(options.precision);

  std::ostringstream ss;
  ss << "{\n";
  ss << "  \"circuit\": \"" << jsonEscape(qc.name()) << "\",\n";
  ss << "  \"qubits\": " << qc.numQubits() << ",\n";
  ss << "  \"clbits\": " << qc.numClbits() << ",\n";
  ss << "  \"operations\": " << qc.size() << ",\n";
  ss << "  \"steps\": [\n";

  const auto emitStep = [&](std::size_t index, const std::string& opName,
                            bool last) {
    ss << "    {\n";
    ss << "      \"index\": " << index << ",\n";
    ss << "      \"operation\": \"" << jsonEscape(opName) << "\",\n";
    ss << "      \"state\": \""
       << jsonEscape(toDirac(pkg, session.state(), 4)) << "\",\n";
    // Applied steps (index >= 1) carry the table-pressure snapshot and the
    // step profile (wall time, active nodes per level) the session recorded
    // right after the operation.
    if (index > 0 && index <= session.pressureHistory().size()) {
      const auto& p = session.pressureHistory()[index - 1];
      ss << "      \"tablePressure\": {\"vectorNodes\": " << p.vectorNodes
         << ", \"matrixNodes\": " << p.matrixNodes
         << ", \"realEntries\": " << p.realEntries
         << ", \"cacheLookups\": " << p.cacheLookups
         << ", \"cacheHits\": " << p.cacheHits << ", \"gcRuns\": " << p.gcRuns
         << "},\n";
    }
    if (index > 0 && index <= session.stepProfiles().size()) {
      const auto& profile = session.stepProfiles()[index - 1];
      char durBuf[32];
      std::snprintf(durBuf, sizeof(durBuf), "%.1f", profile.durationUs);
      ss << "      \"durationUs\": " << durBuf << ",\n";
      ss << "      \"nodesPerLevel\": [";
      for (std::size_t k = 0; k < profile.nodesPerLevel.size(); ++k) {
        ss << (k > 0 ? ", " : "") << profile.nodesPerLevel[k];
      }
      ss << "],\n";
    }
    ss << "      \"nodes\": " << session.currentNodes();
    if (options.includeDiagrams) {
      ss << ",\n      \"dd\":\n"
         << indent(diagrams.toJson(buildGraph(session.state())), "      ");
    } else {
      ss << "\n";
    }
    ss << "    }" << (last ? "" : ",") << "\n";
  };

  emitStep(0, "(initial state)", qc.size() == 0);
  std::size_t index = 1;
  while (!session.atEnd()) {
    const std::string opName = session.nextOperation()->name();
    session.stepForward();
    emitStep(index, opName, index == qc.size());
    ++index;
  }

  ss << "  ],\n";
  ss << "  \"peakNodes\": " << session.peakNodes() << ",\n";
  ss << "  \"classicalBits\": \"";
  for (std::size_t c = qc.numClbits(); c-- > 0;) {
    ss << (session.classicalBits()[c] ? '1' : '0');
  }
  ss << "\",\n";
  ss << "  \"stats\":\n" << indent(pkg.statistics().toJson(), "  ") << "\n";
  ss << "}\n";
  return ss.str();
}

void writeSimulationTrace(const ir::QuantumComputation& qc, Package& pkg,
                          const std::string& path, TraceOptions options) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot open file for writing: " + path);
  }
  out << exportSimulationTrace(qc, pkg, options);
}

} // namespace qdd::viz
