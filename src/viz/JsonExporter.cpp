#include "qdd/viz/JsonExporter.hpp"

#include "qdd/viz/Color.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace qdd::viz {

namespace {

std::string num(double v, int precision) {
  std::ostringstream ss;
  ss.precision(precision);
  ss << v;
  return ss.str();
}

std::string weightJson(const ComplexValue& w, int precision) {
  std::ostringstream ss;
  ss << "{\"re\": " << num(w.re, precision) << ", \"im\": "
     << num(w.im, precision) << ", \"mag\": " << num(w.mag(), precision)
     << ", \"phase\": " << num(w.arg(), precision) << ", \"color\": \""
     << weightToColor(w).toHex() << "\", \"thickness\": "
     << num(magnitudeToThickness(w.mag()), 3) << "}";
  return ss.str();
}

} // namespace

std::string JsonExporter::toJson(const Graph& g) const {
  std::ostringstream ss;
  ss << "{\n";
  ss << "  \"kind\": \"" << (g.isMatrix ? "matrix" : "vector") << "\",\n";
  ss << "  \"radix\": " << g.radix << ",\n";
  if (g.empty()) {
    ss << "  \"zero\": true,\n  \"nodes\": [],\n  \"edges\": []\n}\n";
    return ss.str();
  }
  ss << "  \"root\": {\"node\": " << g.rootNode
     << ", \"weight\": " << weightJson(g.rootWeight, precision) << "},\n";
  ss << "  \"nodes\": [\n";
  for (std::size_t k = 0; k < g.nodes.size(); ++k) {
    ss << "    {\"id\": " << g.nodes[k].id
       << ", \"level\": " << g.nodes[k].level << ", \"label\": \"q"
       << g.nodes[k].level << "\"}" << (k + 1 < g.nodes.size() ? "," : "")
       << "\n";
  }
  ss << "  ],\n";
  ss << "  \"edges\": [\n";
  for (std::size_t k = 0; k < g.edges.size(); ++k) {
    const auto& e = g.edges[k];
    ss << "    {\"from\": " << e.from << ", \"port\": " << e.port;
    if (e.zeroStub) {
      ss << ", \"zeroStub\": true";
    } else {
      ss << ", \"to\": "
         << (e.to == Graph::TERMINAL_ID ? std::string("\"terminal\"")
                                        : std::to_string(e.to))
         << ", \"weight\": " << weightJson(e.weight, precision);
    }
    ss << "}" << (k + 1 < g.edges.size() ? "," : "") << "\n";
  }
  ss << "  ]\n}\n";
  return ss.str();
}

void JsonExporter::writeFile(const std::string& path, const Graph& g) const {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot open file for writing: " + path);
  }
  out << toJson(g);
}

} // namespace qdd::viz
