#include "qdd/viz/JsonExporter.hpp"

#include "qdd/viz/Color.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace qdd::viz {

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
    case '"':
      out += "\\\"";
      break;
    case '\\':
      out += "\\\\";
      break;
    case '\n':
      out += "\\n";
      break;
    case '\r':
      out += "\\r";
      break;
    case '\t':
      out += "\\t";
      break;
    case '\b':
      out += "\\b";
      break;
    case '\f':
      out += "\\f";
      break;
    default:
      if (static_cast<unsigned char>(c) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof(buf), "\\u%04x",
                      static_cast<unsigned>(static_cast<unsigned char>(c)));
        out += buf;
      } else {
        out += c;
      }
      break;
    }
  }
  return out;
}

std::string jsonNumber(double v, int precision) {
  if (!std::isfinite(v)) {
    return "null"; // NaN/Inf have no JSON literal; never emit them bare
  }
  std::ostringstream ss;
  ss.precision(precision);
  ss << v;
  return ss.str();
}

namespace {

std::string weightJson(const ComplexValue& w, int precision) {
  std::ostringstream ss;
  ss << "{\"re\": " << jsonNumber(w.re, precision) << ", \"im\": "
     << jsonNumber(w.im, precision) << ", \"mag\": "
     << jsonNumber(w.mag(), precision) << ", \"phase\": "
     << jsonNumber(w.arg(), precision) << ", \"color\": \""
     << weightToColor(w).toHex() << "\", \"thickness\": "
     << jsonNumber(magnitudeToThickness(w.mag()), 3) << "}";
  return ss.str();
}

} // namespace

std::string JsonExporter::toJson(const Graph& g) const {
  // Layout strings: newline + indentation collapse to nothing in compact
  // mode; the emitted structure is identical either way.
  const char* nl = compact ? "" : "\n";
  const char* ind = compact ? "" : "  ";
  const char* ind2 = compact ? "" : "    ";
  const char* sp = compact ? "" : " ";

  std::ostringstream ss;
  ss << "{" << nl;
  ss << ind << "\"kind\":" << sp << "\""
     << (g.isMatrix ? "matrix" : "vector") << "\"," << nl;
  ss << ind << "\"radix\":" << sp << g.radix << "," << nl;
  if (g.isMatrix && g.span > 0) {
    ss << ind << "\"span\":" << sp << g.span << "," << nl;
  }
  if (g.empty()) {
    if (g.isMatrix && !(g.rootWeight.re == 0. && g.rootWeight.im == 0.)) {
      // identity-skipping: w * I_span collapses to a bare terminal
      ss << ind << "\"root\":" << sp << "{\"node\": \"terminal\""
         << ", \"skippedLevels\": " << g.rootSkippedLevels
         << ", \"weight\": " << weightJson(g.rootWeight, precision) << "},"
         << nl << ind << "\"nodes\":" << sp << "[]," << nl << ind
         << "\"edges\":" << sp << "[]" << nl << "}" << nl;
      return ss.str();
    }
    ss << ind << "\"zero\":" << sp << "true," << nl << ind << "\"nodes\":"
       << sp << "[]," << nl << ind << "\"edges\":" << sp << "[]" << nl << "}"
       << nl;
    return ss.str();
  }
  ss << ind << "\"root\":" << sp << "{\"node\": " << g.rootNode;
  if (g.rootSkippedLevels > 0) {
    ss << ", \"skippedLevels\": " << g.rootSkippedLevels;
  }
  ss << ", \"weight\": " << weightJson(g.rootWeight, precision) << "}," << nl;
  ss << ind << "\"nodes\":" << sp << "[" << nl;
  for (std::size_t k = 0; k < g.nodes.size(); ++k) {
    ss << ind2 << "{\"id\": " << g.nodes[k].id
       << ", \"level\": " << g.nodes[k].level << ", \"label\": \""
       << jsonEscape("q" + std::to_string(g.nodes[k].level)) << "\"}"
       << (k + 1 < g.nodes.size() ? "," : "") << nl;
  }
  ss << ind << "]," << nl;
  ss << ind << "\"edges\":" << sp << "[" << nl;
  for (std::size_t k = 0; k < g.edges.size(); ++k) {
    const auto& e = g.edges[k];
    ss << ind2 << "{\"from\": " << e.from << ", \"port\": " << e.port;
    if (e.zeroStub) {
      ss << ", \"zeroStub\": true";
    } else {
      ss << ", \"to\": "
         << (e.to == Graph::TERMINAL_ID ? std::string("\"terminal\"")
                                        : std::to_string(e.to));
      if (e.skippedLevels > 0) {
        ss << ", \"skippedLevels\": " << e.skippedLevels;
      }
      ss << ", \"weight\": " << weightJson(e.weight, precision);
    }
    ss << "}" << (k + 1 < g.edges.size() ? "," : "") << nl;
  }
  ss << ind << "]" << nl << "}";
  if (!compact) {
    ss << "\n";
  }
  return ss.str();
}

void JsonExporter::writeFile(const std::string& path, const Graph& g) const {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot open file for writing: " + path);
  }
  out << toJson(g);
}

} // namespace qdd::viz
