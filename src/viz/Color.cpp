#include "qdd/viz/Color.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace qdd::viz {

std::string Rgb::toHex() const {
  char buf[8];
  std::snprintf(buf, sizeof(buf), "#%02x%02x%02x", r, g, b);
  return buf;
}

namespace {
double hueToChannel(double p, double q, double t) {
  if (t < 0.) {
    t += 1.;
  }
  if (t > 1.) {
    t -= 1.;
  }
  if (t < 1. / 6.) {
    return p + (q - p) * 6. * t;
  }
  if (t < 1. / 2.) {
    return q;
  }
  if (t < 2. / 3.) {
    return p + (q - p) * (2. / 3. - t) * 6.;
  }
  return p;
}

std::uint8_t toByte(double v) {
  return static_cast<std::uint8_t>(
      std::lround(std::clamp(v, 0., 1.) * 255.));
}
} // namespace

Rgb hlsToRgb(double hue, double lightness, double saturation) {
  hue = hue - std::floor(hue); // wrap into [0,1)
  lightness = std::clamp(lightness, 0., 1.);
  saturation = std::clamp(saturation, 0., 1.);
  if (saturation == 0.) {
    const std::uint8_t g = toByte(lightness);
    return {g, g, g};
  }
  const double q = lightness < 0.5
                       ? lightness * (1. + saturation)
                       : lightness + saturation - lightness * saturation;
  const double p = 2. * lightness - q;
  return {toByte(hueToChannel(p, q, hue + 1. / 3.)),
          toByte(hueToChannel(p, q, hue)),
          toByte(hueToChannel(p, q, hue - 1. / 3.))};
}

Rgb phaseToColor(double phase) {
  double normalized = phase / (2. * PI);
  normalized -= std::floor(normalized); // [0, 1)
  return hlsToRgb(normalized, 0.5, 1.);
}

Rgb weightToColor(const ComplexValue& w) { return phaseToColor(w.arg()); }

double magnitudeToThickness(double magnitude, double min, double span) {
  return min + span * std::clamp(magnitude, 0., 1.);
}

} // namespace qdd::viz
