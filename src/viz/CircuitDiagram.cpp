#include "qdd/viz/CircuitDiagram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

namespace qdd::viz {

namespace {

constexpr double PI_LOCAL = 3.14159265358979323846;

std::string angleLabel(double angle) {
  constexpr double EPS = 1e-9;
  for (int den = 1; den <= 32; den *= 2) {
    for (int num = -8 * den; num <= 8 * den; ++num) {
      if (num == 0) {
        continue;
      }
      if (std::abs(angle - PI_LOCAL * num / den) < EPS) {
        std::ostringstream label;
        if (num == -1) {
          label << "-pi";
        } else if (num == 1) {
          label << "pi";
        } else {
          label << num << "pi";
        }
        if (den > 1) {
          label << "/" << den;
        }
        return label.str();
      }
    }
  }
  std::ostringstream ss;
  ss.precision(3);
  ss << angle;
  return ss.str();
}

std::string gateLabel(const ir::Operation& op) {
  using ir::OpType;
  switch (op.type()) {
  case OpType::Phase:
    return "P(" + angleLabel(op.parameters()[0]) + ")";
  case OpType::RX:
  case OpType::RY:
  case OpType::RZ: {
    std::string base = ir::toString(op.type());
    base[0] = 'R';
    return base + "(" + angleLabel(op.parameters()[0]) + ")";
  }
  case OpType::U2:
    return "U2";
  case OpType::U3:
    return "U3";
  case OpType::S:
    return "S";
  case OpType::Sdg:
    return "S+";
  case OpType::T:
    return "T";
  case OpType::Tdg:
    return "T+";
  default: {
    std::string s = ir::toString(op.type());
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return std::toupper(c); });
    return s;
  }
  }
}

struct Column {
  /// per-qubit cell text (empty = plain wire)
  std::vector<std::string> cells;
  /// per-qubit flag: part of the vertical connector span
  std::vector<bool> connected;
  bool barrier = false;
  std::size_t width = 1;
};

Column makeColumn(const ir::Operation& op, std::size_t n) {
  Column col;
  col.cells.assign(n, "");
  col.connected.assign(n, false);

  using ir::OpType;
  if (op.type() == OpType::Barrier) {
    col.barrier = true;
    for (const Qubit q : op.targets()) {
      col.connected[static_cast<std::size_t>(q)] = true;
    }
    col.width = 1;
    return col;
  }
  if (const auto* comp = dynamic_cast<const ir::CompoundOperation*>(&op)) {
    std::string label = "[";
    label += comp->label().empty() ? "GRP" : comp->label();
    label += "]";
    for (const Qubit q : comp->usedQubits()) {
      col.cells[static_cast<std::size_t>(q)] = label;
    }
  } else if (const auto* cc =
                 dynamic_cast<const ir::ClassicControlledOperation*>(&op)) {
    std::string label = "[if ";
    label += gateLabel(cc->operation());
    label += "]";
    for (const Qubit q : cc->usedQubits()) {
      col.cells[static_cast<std::size_t>(q)] = label;
    }
  } else if (op.type() == OpType::Measure) {
    for (const Qubit q : op.targets()) {
      col.cells[static_cast<std::size_t>(q)] = "[M]";
    }
  } else if (op.type() == OpType::Reset) {
    for (const Qubit q : op.targets()) {
      col.cells[static_cast<std::size_t>(q)] = "[|0>]";
    }
  } else {
    // standard gate: controls and targets
    for (const auto& c : op.controls()) {
      col.cells[static_cast<std::size_t>(c.qubit)].assign(
          1, c.positive ? '*' : 'o');
    }
    if (op.type() == OpType::SWAP) {
      col.cells[static_cast<std::size_t>(op.targets()[0])].assign(1, 'x');
      col.cells[static_cast<std::size_t>(op.targets()[1])].assign(1, 'x');
    } else if (op.targets().size() == 2) {
      std::string label = "[";
      label += gateLabel(op);
      label += "]";
      col.cells[static_cast<std::size_t>(op.targets()[0])] = label;
      col.cells[static_cast<std::size_t>(op.targets()[1])] = label;
    } else if (op.type() == OpType::X && !op.controls().empty()) {
      col.cells[static_cast<std::size_t>(op.targets()[0])] = "(+)";
    } else {
      std::string label = "[";
      label += gateLabel(op);
      label += "]";
      col.cells[static_cast<std::size_t>(op.targets()[0])] = label;
    }
  }

  // connector span over all involved qubits
  const auto used = op.usedQubits();
  if (!used.empty()) {
    const auto lo = static_cast<std::size_t>(
        *std::min_element(used.begin(), used.end()));
    const auto hi = static_cast<std::size_t>(
        *std::max_element(used.begin(), used.end()));
    for (std::size_t q = lo; q <= hi; ++q) {
      col.connected[q] = true;
    }
  }
  for (const auto& cell : col.cells) {
    col.width = std::max(col.width, cell.size());
  }
  return col;
}

} // namespace

std::string circuitToAscii(const ir::QuantumComputation& qc,
                           std::size_t maxWidth) {
  const std::size_t n = qc.numQubits();
  if (n == 0) {
    return "(empty circuit)\n";
  }
  std::vector<Column> columns;
  columns.reserve(qc.size());
  for (const auto& op : qc) {
    columns.push_back(makeColumn(*op, n));
  }

  // row indices: qubit q lives on text row 2*(n-1-q); gap rows in between
  const std::size_t rows = 2 * n - 1;
  std::ostringstream out;
  std::size_t begin = 0;
  const std::size_t labelWidth = 6; // "q127: "
  while (begin < columns.size() || begin == 0) {
    // select columns fitting into maxWidth
    std::size_t width = labelWidth;
    std::size_t end = begin;
    while (end < columns.size() && width + columns[end].width + 2 <= maxWidth) {
      width += columns[end].width + 2;
      ++end;
    }
    if (end == begin && begin < columns.size()) {
      end = begin + 1; // at least one column per bank
    }

    std::vector<std::string> lines(rows);
    for (std::size_t q = 0; q < n; ++q) {
      std::string label = "q";
      label += std::to_string(n - 1 - q);
      label += ":";
      label.resize(labelWidth, ' ');
      lines[2 * q] = label;
    }
    for (std::size_t r = 1; r < rows; r += 2) {
      lines[r] = std::string(labelWidth, ' ');
    }

    for (std::size_t c = begin; c < end; ++c) {
      const Column& col = columns[c];
      for (std::size_t q = 0; q < n; ++q) {
        const std::size_t row = 2 * (n - 1 - q);
        std::string cell = col.cells[q];
        const char pad = col.barrier ? '-' : '-';
        if (cell.empty()) {
          if (col.barrier && col.connected[q]) {
            cell.assign(1, '!');
          } else if (col.connected[q]) {
            cell.assign(1, '|'); // connector crossing an uninvolved wire
          }
        }
        // center the cell in the column
        std::string field(col.width + 2, pad);
        const std::size_t off = (field.size() - cell.size()) / 2;
        for (std::size_t k = 0; k < cell.size(); ++k) {
          field[off + k] = cell[k];
        }
        lines[row] += field;
      }
      for (std::size_t q = 0; q + 1 < n; ++q) {
        // gap row between display rows q and q+1 (qubits n-1-q, n-2-q)
        const std::size_t row = 2 * q + 1;
        const bool connect =
            (col.barrier || (col.connected[n - 1 - q] &&
                             col.connected[n - 2 - q]));
        std::string field(col.width + 2, ' ');
        if (connect) {
          field[(field.size()) / 2] = col.barrier ? '!' : '|';
        }
        lines[row] += field;
      }
    }
    for (const auto& line : lines) {
      out << line << "\n";
    }
    if (end >= columns.size()) {
      break;
    }
    out << "\n";
    begin = end;
  }
  return out.str();
}

} // namespace qdd::viz
