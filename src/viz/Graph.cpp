#include "qdd/viz/Graph.hpp"

#include <deque>
#include <unordered_map>

namespace qdd::viz {

namespace {

template <class Node> Graph build(const Edge<Node>& root, bool isMatrix) {
  Graph g;
  g.isMatrix = isMatrix;
  g.radix = RADIX<Node>;
  g.rootWeight = root.w.toValue();
  if (root.isTerminal() || root.w.exactlyZero()) {
    return g;
  }
  std::unordered_map<const Node*, std::size_t> ids;
  std::deque<const Node*> queue;
  const auto idOf = [&](const Node* p) {
    const auto it = ids.find(p);
    if (it != ids.end()) {
      return it->second;
    }
    const std::size_t id = g.nodes.size();
    ids.emplace(p, id);
    g.nodes.push_back({id, p->v});
    queue.push_back(p);
    return id;
  };
  g.rootNode = idOf(root.p);
  while (!queue.empty()) {
    const Node* p = queue.front();
    queue.pop_front();
    const std::size_t from = ids.at(p);
    for (std::size_t k = 0; k < RADIX<Node>; ++k) {
      const auto& child = p->e[k];
      Graph::Edge edge;
      edge.from = from;
      edge.port = k;
      edge.weight = child.w.toValue();
      edge.zeroStub = child.w.exactlyZero();
      edge.to = (edge.zeroStub || child.isTerminal()) ? Graph::TERMINAL_ID
                                                      : idOf(child.p);
      g.edges.push_back(edge);
    }
  }
  return g;
}

} // namespace

Graph buildGraph(const vEdge& root) { return build(root, false); }
Graph buildGraph(const mEdge& root) { return build(root, true); }

} // namespace qdd::viz
