#include "qdd/viz/Graph.hpp"

#include <stdexcept>

#include <deque>
#include <unordered_map>

namespace qdd::viz {

namespace {

template <class Node>
Graph build(const Edge<Node>& root, bool isMatrix, std::size_t span) {
  Graph g;
  g.isMatrix = isMatrix;
  g.radix = RADIX<Node>;
  g.rootWeight = root.w.toValue();
  g.span = span;
  if (root.isTerminal() || root.w.exactlyZero()) {
    if (isMatrix && !root.w.exactlyZero()) {
      // w * I_span: the whole diagram is skipped identity levels
      g.rootSkippedLevels = span;
    }
    return g;
  }
  std::unordered_map<const Node*, std::size_t> ids;
  std::deque<const Node*> queue;
  const auto idOf = [&](const Node* p) {
    const auto it = ids.find(p);
    if (it != ids.end()) {
      return it->second;
    }
    const std::size_t id = g.nodes.size();
    ids.emplace(p, id);
    g.nodes.push_back({id, p->v});
    queue.push_back(p);
    return id;
  };
  g.rootNode = idOf(root.p);
  if (isMatrix && span > static_cast<std::size_t>(root.p->v) + 1) {
    g.rootSkippedLevels = span - 1 - static_cast<std::size_t>(root.p->v);
  }
  while (!queue.empty()) {
    const Node* p = queue.front();
    queue.pop_front();
    const std::size_t from = ids.at(p);
    for (std::size_t k = 0; k < RADIX<Node>; ++k) {
      const auto& child = p->e[k];
      Graph::Edge edge;
      edge.from = from;
      edge.port = k;
      edge.weight = child.w.toValue();
      edge.zeroStub = child.w.exactlyZero();
      edge.to = (edge.zeroStub || child.isTerminal()) ? Graph::TERMINAL_ID
                                                      : idOf(child.p);
      if (isMatrix && !edge.zeroStub) {
        const long childLevel = child.isTerminal() ? -1 : child.p->v;
        edge.skippedLevels = static_cast<std::size_t>(p->v - 1 - childLevel);
      }
      g.edges.push_back(edge);
    }
  }
  return g;
}

} // namespace

Graph buildGraph(const vEdge& root) {
  const std::size_t span =
      root.isTerminal() ? 0 : static_cast<std::size_t>(root.p->v) + 1;
  return build(root, false, span);
}
Graph buildGraph(const mEdge& root) {
  const std::size_t span =
      root.isTerminal() ? 0 : static_cast<std::size_t>(root.p->v) + 1;
  return build(root, true, span);
}
Graph buildGraph(const mEdge& root, std::size_t span) {
  if (!root.isTerminal() && static_cast<std::size_t>(root.p->v) >= span) {
    throw std::invalid_argument("buildGraph: root level exceeds the span");
  }
  return build(root, true, span);
}

} // namespace qdd::viz
