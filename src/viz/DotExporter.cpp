#include "qdd/viz/DotExporter.hpp"

#include "qdd/viz/Color.hpp"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace qdd::viz {

namespace {

std::string weightLabel(const ComplexValue& w, int precision) {
  // recognize the ubiquitous 1/sqrt(2)^k magnitudes for compact labels
  std::ostringstream ss;
  ss << std::setprecision(precision) << w.toString(precision);
  return ss.str();
}

bool weightIsOne(const ComplexValue& w) {
  return w.re == 1. && w.im == 0.;
}

std::string edgeAttributes(const ComplexValue& w, const ExportOptions& opts,
                           std::size_t skipped = 0) {
  std::ostringstream ss;
  bool first = true;
  const auto add = [&](const std::string& attr) {
    ss << (first ? "" : ", ") << attr;
    first = false;
  };
  // identity-skipping edges carry an explicit (x)I^k marker so skipped
  // levels stay visible in the rendering (arXiv:2406.11959)
  std::string label;
  if (opts.edgeLabels && !weightIsOne(w)) {
    label = weightLabel(w, opts.precision);
  }
  if (skipped > 0) {
    label += (label.empty() ? "" : " ") + std::string("(x)I^") +
             std::to_string(skipped);
  }
  if (!label.empty()) {
    add("label=\"" + label + "\"");
  }
  if (!weightIsOne(w) && !opts.colored) {
    // "Edges with a corresponding weight not equal to 1 are drawn using
    // dashed lines" (Sec. IV-A)
    add("style=dashed");
  }
  if (opts.colored) {
    add("color=\"" + weightToColor(w).toHex() + "\"");
  }
  if (opts.magnitudeThickness) {
    std::ostringstream pw;
    pw << std::setprecision(3) << magnitudeToThickness(w.mag());
    add("penwidth=" + pw.str());
  }
  if (first) {
    return "";
  }
  return " [" + ss.str() + "]";
}

} // namespace

std::string DotExporter::toDot(const Graph& g) const {
  std::ostringstream ss;
  write(ss, g);
  return ss.str();
}

void DotExporter::write(std::ostream& os, const Graph& g) const {
  os << "digraph dd {\n";
  os << "  rankdir=TB;\n";
  os << "  node [fontname=\"Helvetica\"];\n";
  os << "  edge [arrowsize=0.6];\n";

  if (g.empty()) {
    if (g.isMatrix && !(g.rootWeight.re == 0. && g.rootWeight.im == 0.)) {
      // identity-skipping: w * I_span collapses to a bare terminal
      os << "  root [shape=point, style=invis];\n";
      os << "  terminal [shape=box, label=\"1\"];\n";
      os << "  root -> terminal"
         << edgeAttributes(g.rootWeight, opts, g.rootSkippedLevels) << ";\n";
    } else {
      os << "  zero [shape=box, label=\"0\"];\n";
    }
    os << "}\n";
    return;
  }

  // invisible entry point for the root edge
  os << "  root [shape=point, style=invis];\n";

  // nodes
  for (const auto& node : g.nodes) {
    if (opts.style == Style::Classic) {
      os << "  n" << node.id << " [shape=circle, label=\"q" << node.level
         << "\"];\n";
    } else {
      // Modern: a box with one port cell per successor.
      os << "  n" << node.id
         << " [shape=none, margin=0, label=<\n"
            "    <TABLE BORDER=\"0\" CELLBORDER=\"1\" CELLSPACING=\"0\" "
            "CELLPADDING=\"4\">\n"
            "      <TR><TD COLSPAN=\""
         << g.radix << "\" BGCOLOR=\"#e8e8f8\"><B>q" << node.level
         << "</B></TD></TR>\n      <TR>";
      for (std::size_t k = 0; k < g.radix; ++k) {
        os << "<TD PORT=\"p" << k << "\">";
        if (g.isMatrix) {
          os << "U" << (k / 2) << (k % 2);
        } else {
          os << "|" << k << ">";
        }
        os << "</TD>";
      }
      os << "</TR>\n    </TABLE>>];\n";
    }
  }
  os << "  terminal [shape=box, label=\"1\"];\n";

  // root edge
  os << "  root -> n" << g.rootNode
     << edgeAttributes(g.rootWeight, opts, g.rootSkippedLevels) << ";\n";

  // edges
  std::size_t stubId = 0;
  const auto writeTail = [&](const Graph::Edge& edge) {
    os << "n" << edge.from;
    if (opts.style == Style::Modern) {
      os << ":p" << edge.port << ":s";
    }
  };
  for (const auto& edge : g.edges) {
    if (edge.zeroStub) {
      if (opts.style == Style::Classic) {
        // 0-stubs "retracted into the nodes themselves": a tiny stub mark
        os << "  stub" << stubId
           << " [shape=point, width=0.05, label=\"\"];\n";
        os << "  ";
        writeTail(edge);
        os << " -> stub" << stubId << " [style=dotted, arrowhead=none];\n";
        ++stubId;
      }
      // Modern style omits zero edges entirely (the cell stays empty).
      continue;
    }
    os << "  ";
    writeTail(edge);
    os << " -> ";
    if (edge.to == Graph::TERMINAL_ID) {
      os << "terminal";
    } else {
      os << "n" << edge.to;
    }
    os << edgeAttributes(edge.weight, opts, edge.skippedLevels);
    if (opts.style == Style::Classic && g.radix == 2) {
      // preserve the left/right successor order visually
      os << (edge.port == 0 ? " [tailport=sw]" : " [tailport=se]");
    }
    os << ";\n";
  }
  os << "}\n";
}

void DotExporter::writeFile(const std::string& path, const Graph& g) const {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot open file for writing: " + path);
  }
  write(out, g);
}

} // namespace qdd::viz
