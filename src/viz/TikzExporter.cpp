#include "qdd/viz/TikzExporter.hpp"

#include "qdd/viz/Color.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace qdd::viz {

namespace {

std::string tikzWeight(const ComplexValue& w, int precision) {
  // LaTeX-friendly rendering of the frequent 1/sqrt(2)^k weights
  constexpr double TOL = 1e-9;
  double mag = w.mag();
  if (std::abs(w.im) <= TOL) {
    const char* sign = w.re < 0 ? "-" : "";
    for (int k = 1; k <= 6; ++k) {
      if (std::abs(mag - std::pow(2., -k / 2.)) <= TOL) {
        if (k % 2 == 0) {
          return std::string(sign) + "\\nicefrac{1}{" +
                 std::to_string(1 << (k / 2)) + "}";
        }
        return std::string(sign) + "\\nicefrac{1}{\\sqrt{" +
               std::to_string(1 << k) + "}}";
      }
    }
  }
  std::ostringstream ss;
  ss.precision(precision);
  ss << "$" << w.toString(precision) << "$";
  return ss.str();
}

std::string colorDef(const Rgb& c, const std::string& name) {
  std::ostringstream ss;
  ss << "\\definecolor{" << name << "}{RGB}{" << static_cast<int>(c.r) << ","
     << static_cast<int>(c.g) << "," << static_cast<int>(c.b) << "}\n";
  return ss.str();
}

} // namespace

std::string TikzExporter::toTikz(const Graph& g) const {
  std::ostringstream ss;
  ss << "\\begin{tikzpicture}[\n"
        "  ddnode/.style={circle, draw, minimum size=7mm, inner sep=0pt},\n"
        "  terminal/.style={rectangle, draw, minimum size=5mm},\n"
        "  >=stealth]\n";
  if (g.empty()) {
    ss << "  \\node[terminal] (zero) {$0$};\n\\end{tikzpicture}\n";
    return ss.str();
  }

  // layout: one row per level (top = highest), evenly spaced columns
  std::map<Qubit, std::vector<std::size_t>, std::greater<>> byLevel;
  for (const auto& node : g.nodes) {
    byLevel[node.level].push_back(node.id);
  }
  std::map<std::size_t, std::pair<double, double>> pos;
  double y = 0.;
  for (const auto& [level, ids] : byLevel) {
    double x = -(static_cast<double>(ids.size()) - 1.) / 2. * 2.;
    for (const std::size_t id : ids) {
      pos[id] = {x, y};
      x += 2.;
    }
    y -= 1.8;
  }

  // color preamble (one definition per distinct edge color)
  std::map<std::string, std::string> colorNames;
  const auto colorOf = [&](const ComplexValue& w) {
    const std::string hex = weightToColor(w).toHex();
    auto it = colorNames.find(hex);
    if (it == colorNames.end()) {
      const std::string name = "ddc" + std::to_string(colorNames.size());
      it = colorNames.emplace(hex, name).first;
      ss << "  " << colorDef(weightToColor(w), name);
    }
    return it->second;
  };

  // nodes
  for (const auto& node : g.nodes) {
    const auto [x, ny] = pos.at(node.id);
    ss << "  \\node[ddnode] (n" << node.id << ") at (" << x << "," << ny
       << ") {$q_" << node.level << "$};\n";
  }
  ss << "  \\node[terminal] (t) at (0," << (y - 0.2) << ") {$1$};\n";

  const auto edgeStyle = [&](const ComplexValue& w) {
    std::string style;
    if (opts.colored) {
      style += colorOf(w);
    }
    if (!(w.re == 1. && w.im == 0.) && !opts.colored) {
      style += std::string(style.empty() ? "" : ", ") + "dashed";
    }
    if (opts.magnitudeThickness) {
      std::ostringstream t;
      t.precision(2);
      t << std::fixed << "line width=" << 0.3 + 1.0 * std::min(w.mag(), 1.)
        << "pt";
      style += std::string(style.empty() ? "" : ", ") + t.str();
    }
    return style;
  };

  // root edge from above the root node
  {
    const auto& [x, ry] = pos.at(g.rootNode);
    ss << "  \\draw[->" << (edgeStyle(g.rootWeight).empty() ? "" : ", ")
       << edgeStyle(g.rootWeight) << "] (" << x << "," << (ry + 1.2)
       << ") -- (n" << g.rootNode << ")";
    if (opts.edgeLabels && !(g.rootWeight.re == 1. && g.rootWeight.im == 0.)) {
      ss << " node[midway, right] {" << tikzWeight(g.rootWeight, opts.precision)
         << "}";
    }
    ss << ";\n";
  }

  // edges; 0-stubs as short lines ending in a dot
  for (const auto& edge : g.edges) {
    const double frac =
        g.radix == 2 ? (edge.port == 0 ? -0.3 : 0.3)
                     : (-0.45 + 0.3 * static_cast<double>(edge.port));
    if (edge.zeroStub) {
      ss << "  \\draw (n" << edge.from << ".south) ++(" << frac
         << ",0) -- ++(" << frac * 0.6 << ",-0.35) node[circle, fill, inner "
            "sep=0.6pt] {};\n";
      continue;
    }
    std::string target = "t";
    if (edge.to != Graph::TERMINAL_ID) {
      target = "n";
      target += std::to_string(edge.to);
    }
    const std::string style = edgeStyle(edge.weight);
    ss << "  \\draw[->" << (style.empty() ? "" : ", ") << style << "] (n"
       << edge.from << ".south) ++(" << frac << ",0) .. controls +(" << frac
       << ",-0.6) .. (" << target << ")";
    if (opts.edgeLabels && !(edge.weight.re == 1. && edge.weight.im == 0.)) {
      ss << " node[midway, " << (frac < 0 ? "left" : "right") << "] {"
         << tikzWeight(edge.weight, opts.precision) << "}";
    }
    ss << ";\n";
  }
  ss << "\\end{tikzpicture}\n";
  return ss.str();
}

std::string TikzExporter::toStandaloneDocument(const Graph& g) const {
  std::ostringstream ss;
  ss << "\\documentclass[tikz,border=5pt]{standalone}\n"
        "\\usepackage{nicefrac}\n"
        "\\begin{document}\n"
     << toTikz(g) << "\\end{document}\n";
  return ss.str();
}

void TikzExporter::writeFile(const std::string& path, const Graph& g) const {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot open file for writing: " + path);
  }
  out << toStandaloneDocument(g);
}

} // namespace qdd::viz
