#include "qdd/viz/SvgExporter.hpp"

#include "qdd/viz/Color.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace qdd::viz {

namespace {

constexpr double NODE_RADIUS = 18.;
constexpr double LEVEL_HEIGHT = 90.;
constexpr double NODE_SPACING = 90.;
constexpr double MARGIN = 40.;

struct Placed {
  double x = 0.;
  double y = 0.;
};

std::string fmt(double v) {
  std::ostringstream ss;
  ss << std::fixed;
  ss.precision(1);
  ss << v;
  return ss.str();
}

} // namespace

std::string SvgExporter::toSvg(const Graph& g) const {
  std::ostringstream body;

  if (g.empty()) {
    const bool identity =
        g.isMatrix && !(g.rootWeight.re == 0. && g.rootWeight.im == 0.);
    const std::string label =
        identity ? "I^" + std::to_string(g.rootSkippedLevels) : "0";
    return "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"120\" "
           "height=\"80\"><rect x=\"35\" y=\"30\" width=\"50\" height=\"24\" "
           "fill=\"none\" stroke=\"black\"/><text x=\"60\" y=\"47\" "
           "text-anchor=\"middle\" font-size=\"13\">" +
           label + "</text></svg>\n";
  }

  // Group nodes by level; levels sorted descending (top = highest qubit).
  std::map<Qubit, std::vector<std::size_t>, std::greater<>> byLevel;
  for (const auto& node : g.nodes) {
    byLevel[node.level].push_back(node.id);
  }
  std::size_t maxPerLevel = 1;
  for (const auto& [level, ids] : byLevel) {
    maxPerLevel = std::max(maxPerLevel, ids.size());
  }

  const double width =
      2. * MARGIN + static_cast<double>(maxPerLevel - 1) * NODE_SPACING +
      2. * NODE_RADIUS;
  const double height = 2. * MARGIN +
                        (static_cast<double>(byLevel.size()) + 1.5) *
                            LEVEL_HEIGHT;

  std::vector<Placed> pos(g.nodes.size());
  double y = MARGIN + LEVEL_HEIGHT; // leave room for the root edge
  for (const auto& [level, ids] : byLevel) {
    const double rowWidth = static_cast<double>(ids.size() - 1) * NODE_SPACING;
    double x = width / 2. - rowWidth / 2.;
    for (const std::size_t id : ids) {
      pos[id] = {x, y};
      x += NODE_SPACING;
    }
    y += LEVEL_HEIGHT;
  }
  const Placed terminalPos{width / 2., y};

  const auto strokeFor = [&](const ComplexValue& w) {
    std::string attrs;
    if (opts.colored) {
      attrs += " stroke=\"" + weightToColor(w).toHex() + "\"";
    } else {
      attrs += " stroke=\"black\"";
      if (!(w.re == 1. && w.im == 0.)) {
        attrs += " stroke-dasharray=\"5,3\"";
      }
    }
    attrs += " stroke-width=\"" +
             fmt(opts.magnitudeThickness ? magnitudeToThickness(w.mag())
                                         : 1.2) +
             "\"";
    return attrs;
  };

  const auto drawEdge = [&](double x1, double y1, double x2, double y2,
                            const ComplexValue& w, std::size_t skipped = 0) {
    body << "  <line x1=\"" << fmt(x1) << "\" y1=\"" << fmt(y1) << "\" x2=\""
         << fmt(x2) << "\" y2=\"" << fmt(y2) << "\"" << strokeFor(w)
         << "/>\n";
    std::string label;
    if (opts.edgeLabels && !(w.re == 1. && w.im == 0.)) {
      label = w.toString(opts.precision);
    }
    if (skipped > 0) {
      // identity-skipping marker (arXiv:2406.11959)
      label += (label.empty() ? "" : " ") + std::string("(x)I^") +
               std::to_string(skipped);
    }
    if (!label.empty()) {
      body << "  <text x=\"" << fmt((x1 + x2) / 2. + 6.) << "\" y=\""
           << fmt((y1 + y2) / 2.) << "\" font-size=\"10\">" << label
           << "</text>\n";
    }
  };

  // root edge
  const Placed rootPos = pos[g.rootNode];
  drawEdge(rootPos.x, rootPos.y - LEVEL_HEIGHT, rootPos.x,
           rootPos.y - NODE_RADIUS, g.rootWeight, g.rootSkippedLevels);

  // edges
  for (const auto& edge : g.edges) {
    const Placed from = pos[edge.from];
    const double offset =
        (static_cast<double>(edge.port) -
         (static_cast<double>(g.radix) - 1.) / 2.) *
        (2. * NODE_RADIUS / static_cast<double>(g.radix));
    const double x1 = from.x + offset;
    const double y1 = from.y + NODE_RADIUS;
    if (edge.zeroStub) {
      // 0-stub: short stroke ending in a small bar
      body << "  <line x1=\"" << fmt(x1) << "\" y1=\"" << fmt(y1)
           << "\" x2=\"" << fmt(x1) << "\" y2=\"" << fmt(y1 + 10.)
           << "\" stroke=\"#666666\" stroke-width=\"1\"/>\n";
      body << "  <line x1=\"" << fmt(x1 - 4.) << "\" y1=\"" << fmt(y1 + 10.)
           << "\" x2=\"" << fmt(x1 + 4.) << "\" y2=\"" << fmt(y1 + 10.)
           << "\" stroke=\"#666666\" stroke-width=\"1\"/>\n";
      continue;
    }
    const Placed to =
        edge.to == Graph::TERMINAL_ID ? terminalPos : pos[edge.to];
    drawEdge(x1, y1, to.x, to.y - NODE_RADIUS, edge.weight,
             edge.skippedLevels);
  }

  // nodes on top of edges
  for (const auto& node : g.nodes) {
    const Placed p = pos[node.id];
    if (opts.style == Style::Classic) {
      body << "  <circle cx=\"" << fmt(p.x) << "\" cy=\"" << fmt(p.y)
           << "\" r=\"" << fmt(NODE_RADIUS)
           << "\" fill=\"white\" stroke=\"black\"/>\n";
    } else {
      body << "  <rect x=\"" << fmt(p.x - NODE_RADIUS) << "\" y=\""
           << fmt(p.y - NODE_RADIUS * 0.7) << "\" width=\""
           << fmt(2. * NODE_RADIUS) << "\" height=\""
           << fmt(1.4 * NODE_RADIUS)
           << "\" rx=\"4\" fill=\"#eef\" stroke=\"#446\"/>\n";
    }
    body << "  <text x=\"" << fmt(p.x) << "\" y=\"" << fmt(p.y + 4.)
         << "\" text-anchor=\"middle\" font-size=\"12\">q" << node.level
         << "</text>\n";
  }
  // terminal
  body << "  <rect x=\"" << fmt(terminalPos.x - 14.) << "\" y=\""
       << fmt(terminalPos.y - 12.)
       << "\" width=\"28\" height=\"24\" fill=\"white\" stroke=\"black\"/>\n";
  body << "  <text x=\"" << fmt(terminalPos.x) << "\" y=\""
       << fmt(terminalPos.y + 4.)
       << "\" text-anchor=\"middle\" font-size=\"12\">1</text>\n";

  std::ostringstream svg;
  svg << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\""
      << fmt(width) << "\" height=\"" << fmt(height + 30.)
      << "\" font-family=\"Helvetica\">\n";
  svg << body.str();
  svg << "</svg>\n";
  return svg.str();
}

void SvgExporter::writeFile(const std::string& path, const Graph& g) const {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot open file for writing: " + path);
  }
  out << toSvg(g);
}

} // namespace qdd::viz
