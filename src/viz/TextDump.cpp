#include "qdd/viz/TextDump.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

namespace qdd::viz {

std::string toDirac(Package& pkg, const vEdge& state, int precision,
                    double cutoff) {
  if (state.isTerminal()) {
    return "0";
  }
  const auto n = static_cast<std::size_t>(state.p->v) + 1;
  const auto vec = pkg.getVector(state);
  std::ostringstream ss;
  ss << std::setprecision(precision);
  bool first = true;
  for (std::size_t idx = 0; idx < vec.size(); ++idx) {
    const std::complex<double> amp = vec[idx];
    if (std::abs(amp) <= cutoff) {
      continue;
    }
    if (!first) {
      ss << " + ";
    }
    first = false;
    const ComplexValue a{amp.real(), amp.imag()};
    if (a.im == 0. && a.re == 1.) {
      // amplitude 1: omit
    } else if (a.im != 0. && a.re != 0.) {
      ss << "(" << a.toString(precision) << ")";
    } else {
      ss << a.toString(precision);
    }
    ss << "|";
    for (std::size_t k = n; k-- > 0;) {
      ss << ((idx >> k) & 1ULL);
    }
    ss << ">";
  }
  if (first) {
    return "0";
  }
  return ss.str();
}

std::string formatMatrixOmega(const std::vector<std::complex<double>>& mat,
                              std::size_t n, int precision) {
  const std::size_t dim = 1ULL << n;
  const double scale = std::sqrt(static_cast<double>(dim));
  // omega for an n-qubit QFT-style matrix: e^{2 pi i / 2^n}
  const double omegaPhase = 2. * PI / static_cast<double>(dim);
  constexpr double TOL = 1e-9;

  // check whether every entry is (a power of omega) / sqrt(dim) or zero
  bool omegaForm = true;
  for (const auto& entry : mat) {
    const double mag = std::abs(entry);
    if (mag <= TOL) {
      continue;
    }
    if (std::abs(mag * scale - 1.) > 1e-6) {
      omegaForm = false;
      break;
    }
    const double k = std::arg(entry) / omegaPhase;
    const double rounded = std::round(k);
    if (std::abs(k - rounded) > 1e-6) {
      omegaForm = false;
      break;
    }
  }

  std::ostringstream ss;
  if (omegaForm) {
    ss << "1/sqrt(" << dim << ") *  [w = e^(i*pi/" << (dim / 2) << ")]\n";
    for (std::size_t r = 0; r < dim; ++r) {
      ss << "  [";
      for (std::size_t c = 0; c < dim; ++c) {
        const auto entry = mat[r * dim + c];
        std::string cell;
        if (std::abs(entry) <= TOL) {
          cell = "0";
        } else {
          auto k = static_cast<long>(
              std::llround(std::arg(entry) / omegaPhase));
          k = ((k % static_cast<long>(dim)) + static_cast<long>(dim)) %
              static_cast<long>(dim);
          if (k == 0) {
            cell = "1";
          } else if (k == 1) {
            cell = "w";
          } else {
            cell = "w^" + std::to_string(k);
          }
        }
        ss << std::setw(4) << cell << (c + 1 < dim ? " " : "");
      }
      ss << "]\n";
    }
    return ss.str();
  }

  ss << std::setprecision(precision);
  for (std::size_t r = 0; r < dim; ++r) {
    ss << "  [";
    for (std::size_t c = 0; c < dim; ++c) {
      const ComplexValue v{mat[r * dim + c].real(), mat[r * dim + c].imag()};
      ss << std::setw(precision * 2 + 6) << v.toString(precision)
         << (c + 1 < dim ? " " : "");
    }
    ss << "]\n";
  }
  return ss.str();
}

std::string asciiDump(const Graph& g, int precision) {
  std::ostringstream ss;
  if (g.empty()) {
    if (g.isMatrix && !(g.rootWeight.re == 0. && g.rootWeight.im == 0.)) {
      // identity-skipping: the whole diagram is w * I_span
      ss << "root --[" << g.rootWeight.toString(precision) << "]--[I^"
         << g.rootSkippedLevels << "]--> T\n";
      return ss.str();
    }
    return "(zero)\n";
  }
  ss << "root --[" << g.rootWeight.toString(precision) << "]--";
  if (g.rootSkippedLevels > 0) {
    ss << "[I^" << g.rootSkippedLevels << "]--";
  }
  ss << "> n" << g.rootNode << "\n";
  for (const auto& node : g.nodes) {
    ss << "n" << node.id << " (q" << node.level << "):";
    for (const auto& edge : g.edges) {
      if (edge.from != node.id) {
        continue;
      }
      ss << "  [" << edge.port << "]";
      if (edge.zeroStub) {
        ss << "0-stub";
      } else {
        ss << "--(" << edge.weight.toString(precision) << ")--";
        if (edge.skippedLevels > 0) {
          ss << "[I^" << edge.skippedLevels << "]--";
        }
        ss << ">";
        if (edge.to == Graph::TERMINAL_ID) {
          ss << "T";
        } else {
          ss << "n" << edge.to;
        }
      }
    }
    ss << "\n";
  }
  return ss.str();
}

} // namespace qdd::viz
