#include "qdd/ir/Mapping.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

namespace qdd::ir {

// --- CouplingMap -------------------------------------------------------------

CouplingMap::CouplingMap(std::size_t numPhysical,
                         std::vector<std::pair<Qubit, Qubit>> edges)
    : n(numPhysical), edgeList(std::move(edges)), adjacency(numPhysical) {
  if (n == 0) {
    throw std::invalid_argument("CouplingMap: no physical qubits");
  }
  for (const auto& [a, b] : edgeList) {
    if (a < 0 || b < 0 || static_cast<std::size_t>(a) >= n ||
        static_cast<std::size_t>(b) >= n || a == b) {
      throw std::invalid_argument("CouplingMap: invalid edge");
    }
    adjacency[static_cast<std::size_t>(a)].push_back(b);
    adjacency[static_cast<std::size_t>(b)].push_back(a);
  }
}

CouplingMap CouplingMap::linear(std::size_t n) {
  std::vector<std::pair<Qubit, Qubit>> edges;
  for (std::size_t k = 0; k + 1 < n; ++k) {
    edges.emplace_back(static_cast<Qubit>(k), static_cast<Qubit>(k + 1));
  }
  return {n, std::move(edges)};
}

CouplingMap CouplingMap::ring(std::size_t n) {
  if (n < 3) {
    return linear(n);
  }
  std::vector<std::pair<Qubit, Qubit>> edges;
  for (std::size_t k = 0; k < n; ++k) {
    edges.emplace_back(static_cast<Qubit>(k),
                       static_cast<Qubit>((k + 1) % n));
  }
  return {n, std::move(edges)};
}

CouplingMap CouplingMap::grid(std::size_t rows, std::size_t cols) {
  std::vector<std::pair<Qubit, Qubit>> edges;
  const auto at = [cols](std::size_t r, std::size_t c) {
    return static_cast<Qubit>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        edges.emplace_back(at(r, c), at(r, c + 1));
      }
      if (r + 1 < rows) {
        edges.emplace_back(at(r, c), at(r + 1, c));
      }
    }
  }
  return {rows * cols, std::move(edges)};
}

bool CouplingMap::connected(Qubit a, Qubit b) const {
  const auto& neighbours = adjacency[static_cast<std::size_t>(a)];
  return std::find(neighbours.begin(), neighbours.end(), b) !=
         neighbours.end();
}

std::vector<Qubit> CouplingMap::shortestPath(Qubit a, Qubit b) const {
  if (a == b) {
    return {a};
  }
  std::vector<Qubit> parent(n, -1);
  std::deque<Qubit> queue{a};
  parent[static_cast<std::size_t>(a)] = a;
  while (!queue.empty()) {
    const Qubit cur = queue.front();
    queue.pop_front();
    for (const Qubit next : adjacency[static_cast<std::size_t>(cur)]) {
      if (parent[static_cast<std::size_t>(next)] != -1) {
        continue;
      }
      parent[static_cast<std::size_t>(next)] = cur;
      if (next == b) {
        std::vector<Qubit> path{b};
        Qubit walk = b;
        while (walk != a) {
          walk = parent[static_cast<std::size_t>(walk)];
          path.push_back(walk);
        }
        std::reverse(path.begin(), path.end());
        return path;
      }
      queue.push_back(next);
    }
  }
  return {};
}

// --- mapping -------------------------------------------------------------------

namespace {

/// Tracks the logical<->physical correspondence during routing.
struct Layout {
  std::vector<Qubit> logToPhys; ///< position of each logical qubit
  std::vector<Qubit> physToLog; ///< logical qubit on each physical wire

  explicit Layout(std::size_t n) : logToPhys(n), physToLog(n) {
    for (std::size_t k = 0; k < n; ++k) {
      logToPhys[k] = static_cast<Qubit>(k);
      physToLog[k] = static_cast<Qubit>(k);
    }
  }
  void swapPhysical(Qubit a, Qubit b) {
    const Qubit la = physToLog[static_cast<std::size_t>(a)];
    const Qubit lb = physToLog[static_cast<std::size_t>(b)];
    std::swap(physToLog[static_cast<std::size_t>(a)],
              physToLog[static_cast<std::size_t>(b)]);
    logToPhys[static_cast<std::size_t>(la)] = b;
    logToPhys[static_cast<std::size_t>(lb)] = a;
  }
};

} // namespace

QuantumComputation MappingResult::mappedWithRestore() const {
  QuantumComputation restored = mapped;
  // outputPosition[q] = physical wire of logical qubit q; append SWAPs to
  // bring every logical qubit back to wire q.
  std::vector<Qubit> position = outputPosition;
  for (Qubit q = 0; q < static_cast<Qubit>(position.size()); ++q) {
    if (position[static_cast<std::size_t>(q)] == q) {
      continue;
    }
    const Qubit from = position[static_cast<std::size_t>(q)];
    restored.swap(from, q);
    // the logical qubit previously on wire q moves to `from`
    for (auto& p : position) {
      if (p == q) {
        p = from;
        break;
      }
    }
    position[static_cast<std::size_t>(q)] = q;
  }
  return restored;
}

MappingResult mapToCoupling(const QuantumComputation& qc,
                            const CouplingMap& coupling) {
  const std::size_t n = qc.numQubits();
  if (coupling.size() < n) {
    throw std::invalid_argument(
        "mapToCoupling: device has fewer qubits than the circuit");
  }
  MappingResult result;
  result.mapped =
      QuantumComputation(coupling.size(), qc.numClbits(),
                         qc.name().empty() ? "mapped" : qc.name() + "_mapped");
  Layout layout(coupling.size());

  const auto emitSwapChainTo = [&](Qubit physA, Qubit physB) -> Qubit {
    // move the qubit on physA adjacent to physB; returns its new position
    const auto path = coupling.shortestPath(physA, physB);
    if (path.empty()) {
      throw std::invalid_argument("mapToCoupling: disconnected device");
    }
    for (std::size_t k = 0; k + 2 < path.size(); ++k) {
      result.mapped.swap(path[k], path[k + 1]);
      layout.swapPhysical(path[k], path[k + 1]);
      ++result.addedSwaps;
    }
    return path.size() >= 2 ? path[path.size() - 2] : physA;
  };

  for (const auto& op : qc) {
    const auto used = op->usedQubits();
    if (op->type() == OpType::Barrier) {
      std::vector<Qubit> physQubits;
      for (const Qubit q : op->targets()) {
        physQubits.push_back(layout.logToPhys[static_cast<std::size_t>(q)]);
      }
      result.mapped.barrier(std::move(physQubits));
      continue;
    }
    if (const auto* nu =
            dynamic_cast<const NonUnitaryOperation*>(op.get())) {
      std::vector<Qubit> physQubits;
      for (const Qubit q : nu->targets()) {
        physQubits.push_back(layout.logToPhys[static_cast<std::size_t>(q)]);
      }
      if (nu->type() == OpType::Measure) {
        result.mapped.emplaceBack(std::make_unique<NonUnitaryOperation>(
            std::move(physQubits), nu->classics()));
      } else {
        result.mapped.emplaceBack(std::make_unique<NonUnitaryOperation>(
            nu->type(), std::move(physQubits)));
      }
      continue;
    }
    if (!op->isStandardOperation()) {
      throw std::invalid_argument("mapToCoupling: unsupported operation '" +
                                  op->name() + "' (decompose first)");
    }
    if (used.size() > 2) {
      throw std::invalid_argument(
          "mapToCoupling: gate acts on more than two qubits (decompose "
          "first)");
    }
    if (used.size() == 1) {
      const Qubit phys = layout.logToPhys[static_cast<std::size_t>(used[0])];
      result.mapped.addStandard(op->type(), {}, {phys}, op->parameters());
      continue;
    }
    // two-qubit gate: route the first operand next to the second
    const bool twoTargets = op->targets().size() == 2;
    Qubit physA;
    Qubit physB;
    if (twoTargets) {
      physA = layout.logToPhys[static_cast<std::size_t>(op->targets()[0])];
      physB = layout.logToPhys[static_cast<std::size_t>(op->targets()[1])];
    } else {
      physA = layout.logToPhys[static_cast<std::size_t>(
          op->controls()[0].qubit)];
      physB = layout.logToPhys[static_cast<std::size_t>(op->targets()[0])];
    }
    if (!coupling.connected(physA, physB)) {
      physA = emitSwapChainTo(physA, physB);
    }
    if (twoTargets) {
      result.mapped.addStandard(op->type(), {}, {physA, physB},
                                op->parameters());
    } else {
      result.mapped.addStandard(op->type(),
                                {{physA, op->controls()[0].positive}},
                                {physB}, op->parameters());
    }
  }

  result.outputPosition.assign(n, 0);
  for (std::size_t q = 0; q < n; ++q) {
    result.outputPosition[q] = layout.logToPhys[q];
  }
  return result;
}

} // namespace qdd::ir
