#include "qdd/ir/Builders.hpp"

#include <cmath>
#include <random>
#include <stdexcept>

namespace qdd::ir {

namespace {
constexpr double PI_LOCAL = 3.14159265358979323846;
}

namespace builders {

QuantumComputation bell() {
  QuantumComputation qc(2, 0, "bell");
  qc.h(1);
  qc.cx(1, 0);
  return qc;
}

QuantumComputation ghz(std::size_t n) {
  if (n == 0) {
    throw std::invalid_argument("ghz: need at least one qubit");
  }
  QuantumComputation qc(n, 0, "ghz" + std::to_string(n));
  const auto top = static_cast<Qubit>(n - 1);
  qc.h(top);
  for (Qubit q = top; q > 0; --q) {
    qc.cx(q, q - 1);
  }
  return qc;
}

QuantumComputation qft(std::size_t n, bool includeSwaps) {
  if (n == 0) {
    throw std::invalid_argument("qft: need at least one qubit");
  }
  QuantumComputation qc(n, 0, "qft" + std::to_string(n));
  // Paper Fig. 5(a) (n = 3): H on q2, S(q2) controlled by q1, T(q2)
  // controlled by q0; H on q1, S(q1) controlled by q0; H on q0; SWAP q2,q0.
  for (Qubit i = static_cast<Qubit>(n - 1); i >= 0; --i) {
    qc.h(i);
    for (Qubit j = static_cast<Qubit>(i - 1); j >= 0; --j) {
      const double theta = PI_LOCAL / static_cast<double>(1ULL << (i - j));
      qc.cphase(theta, j, i);
    }
  }
  if (includeSwaps) {
    for (std::size_t k = 0; k < n / 2; ++k) {
      qc.swap(static_cast<Qubit>(k), static_cast<Qubit>(n - 1 - k));
    }
  }
  return qc;
}

QuantumComputation wState(std::size_t n) {
  if (n == 0) {
    throw std::invalid_argument("wState: need at least one qubit");
  }
  QuantumComputation qc(n, 0, "wstate" + std::to_string(n));
  const auto top = static_cast<Qubit>(n - 1);
  qc.x(top);
  // Spread the excitation down the register: moving from qubit k to k-1
  // with amplitude split sqrt(k/(k+1)) leaves amplitude 1/sqrt(k+1) behind.
  for (Qubit k = top; k > 0; --k) {
    const double frac =
        static_cast<double>(k) / static_cast<double>(k + 1);
    const double theta = 2. * std::asin(std::sqrt(frac));
    qc.cry(theta, k, k - 1);
    qc.cx(k - 1, k);
  }
  return qc;
}

QuantumComputation grover(std::size_t n, std::uint64_t marked,
                          std::size_t iterations) {
  if (n == 0 || n > 63) {
    throw std::invalid_argument("grover: invalid qubit count");
  }
  if (marked >= (1ULL << n)) {
    throw std::invalid_argument("grover: marked state out of range");
  }
  if (iterations == 0) {
    iterations = static_cast<std::size_t>(
        std::floor(PI_LOCAL / 4. * std::sqrt(static_cast<double>(1ULL << n))));
    iterations = std::max<std::size_t>(iterations, 1);
  }
  QuantumComputation qc(n, 0, "grover" + std::to_string(n));
  for (std::size_t q = 0; q < n; ++q) {
    qc.h(static_cast<Qubit>(q));
  }
  for (std::size_t round = 0; round < iterations; ++round) {
    // Oracle: phase-flip the marked state via a multi-controlled Z with
    // negative controls where the marked bit is 0.
    QubitControls oracleControls;
    for (std::size_t q = 0; q + 1 < n; ++q) {
      oracleControls.push_back(
          {static_cast<Qubit>(q), ((marked >> q) & 1ULL) != 0});
    }
    const auto top = static_cast<Qubit>(n - 1);
    if (((marked >> (n - 1)) & 1ULL) == 0) {
      qc.x(top);
    }
    qc.addStandard(OpType::Z, oracleControls, {top});
    if (((marked >> (n - 1)) & 1ULL) == 0) {
      qc.x(top);
    }
    // Diffusion operator: H^n X^n (MCZ) X^n H^n.
    for (std::size_t q = 0; q < n; ++q) {
      qc.h(static_cast<Qubit>(q));
    }
    for (std::size_t q = 0; q < n; ++q) {
      qc.x(static_cast<Qubit>(q));
    }
    QubitControls diffControls;
    for (std::size_t q = 0; q + 1 < n; ++q) {
      diffControls.push_back({static_cast<Qubit>(q), true});
    }
    qc.addStandard(OpType::Z, diffControls, {static_cast<Qubit>(n - 1)});
    for (std::size_t q = 0; q < n; ++q) {
      qc.x(static_cast<Qubit>(q));
    }
    for (std::size_t q = 0; q < n; ++q) {
      qc.h(static_cast<Qubit>(q));
    }
  }
  return qc;
}

QuantumComputation bernsteinVazirani(std::size_t n, std::uint64_t s) {
  if (n == 0 || n > 62) {
    throw std::invalid_argument("bernsteinVazirani: invalid qubit count");
  }
  if (s >= (1ULL << n)) {
    throw std::invalid_argument("bernsteinVazirani: hidden string too long");
  }
  // data qubits 0..n-1, ancilla qubit n (prepared in |->)
  QuantumComputation qc(n + 1, 0, "bv" + std::to_string(n));
  const auto anc = static_cast<Qubit>(n);
  qc.x(anc);
  qc.h(anc);
  for (std::size_t q = 0; q < n; ++q) {
    qc.h(static_cast<Qubit>(q));
  }
  for (std::size_t q = 0; q < n; ++q) {
    if (((s >> q) & 1ULL) != 0) {
      qc.cx(static_cast<Qubit>(q), anc);
    }
  }
  for (std::size_t q = 0; q < n; ++q) {
    qc.h(static_cast<Qubit>(q));
  }
  return qc;
}

QuantumComputation randomCliffordT(std::size_t n, std::size_t depth,
                                   std::uint64_t seed) {
  if (n == 0) {
    throw std::invalid_argument("randomCliffordT: invalid qubit count");
  }
  QuantumComputation qc(n, 0, "random" + std::to_string(n));
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> gateDist(0, 5);
  std::uniform_int_distribution<std::size_t> qubitDist(0, n - 1);
  for (std::size_t layer = 0; layer < depth; ++layer) {
    const auto q = static_cast<Qubit>(qubitDist(rng));
    switch (gateDist(rng)) {
    case 0:
      qc.h(q);
      break;
    case 1:
      qc.s(q);
      break;
    case 2:
      qc.t(q);
      break;
    case 3:
      qc.x(q);
      break;
    case 4:
      qc.z(q);
      break;
    default: {
      if (n == 1) {
        qc.h(q);
        break;
      }
      Qubit tgt = q;
      while (tgt == q) {
        tgt = static_cast<Qubit>(qubitDist(rng));
      }
      qc.cx(q, tgt);
      break;
    }
    }
  }
  return qc;
}

QuantumComputation phaseEstimation(std::size_t precision, std::uint64_t k) {
  if (precision == 0 || precision > 62) {
    throw std::invalid_argument("phaseEstimation: invalid precision");
  }
  if (k >= (1ULL << precision)) {
    throw std::invalid_argument("phaseEstimation: k out of range");
  }
  const double theta = static_cast<double>(k) /
                       static_cast<double>(1ULL << precision);
  // counting qubits 0..precision-1, eigenstate qubit = precision
  QuantumComputation qc(precision + 1, 0, "qpe" + std::to_string(precision));
  const auto eigen = static_cast<Qubit>(precision);
  qc.x(eigen); // |1> is the P(phi) eigenstate with eigenvalue e^{i phi}
  for (std::size_t j = 0; j < precision; ++j) {
    qc.h(static_cast<Qubit>(j));
  }
  // controlled-U^{2^j}: U = P(2 pi theta)
  for (std::size_t j = 0; j < precision; ++j) {
    const double angle = 2. * PI_LOCAL * theta *
                         static_cast<double>(1ULL << j);
    qc.cphase(angle, static_cast<Qubit>(j), eigen);
  }
  // inverse QFT on the counting register: the counting state is
  // (1/sqrt(2^m)) sum_x e^{2 pi i theta x} |x>, which the inverse of the
  // (swap-including) QFT maps exactly onto |k>
  const QuantumComputation iqft = qft(precision, true).inverted();
  for (const auto& op : iqft) {
    qc.emplaceBack(op->clone());
  }
  return qc;
}

QuantumComputation deutschJozsa(std::size_t n, bool balanced) {
  if (n == 0) {
    throw std::invalid_argument("deutschJozsa: invalid qubit count");
  }
  QuantumComputation qc(n + 1, 0, "dj" + std::to_string(n));
  const auto anc = static_cast<Qubit>(n);
  qc.x(anc);
  qc.h(anc);
  for (std::size_t q = 0; q < n; ++q) {
    qc.h(static_cast<Qubit>(q));
  }
  if (balanced) {
    qc.cx(0, anc); // f(x) = x_0
  }
  // constant oracle: nothing to do
  for (std::size_t q = 0; q < n; ++q) {
    qc.h(static_cast<Qubit>(q));
  }
  return qc;
}

QuantumComputation rippleCarryAdder(std::size_t n) {
  if (n == 0 || n > 15) {
    throw std::invalid_argument("rippleCarryAdder: invalid operand size");
  }
  // Cuccaro adder without the final carry-out qubit: b <- (a + b) mod 2^n.
  // Layout: q0 = incoming carry (|0>), a_i = q_{2i+1}, b_i = q_{2i+2}.
  QuantumComputation qc(2 * n + 1, 0, "adder" + std::to_string(n));
  const auto a = [](std::size_t i) { return static_cast<Qubit>(2 * i + 1); };
  const auto b = [](std::size_t i) { return static_cast<Qubit>(2 * i + 2); };
  const auto c = [&](std::size_t i) {
    return i == 0 ? Qubit{0} : a(i - 1);
  };
  // MAJ cascade
  for (std::size_t i = 0; i < n; ++i) {
    qc.cx(a(i), b(i));
    qc.cx(a(i), c(i));
    qc.ccx(c(i), b(i), a(i));
  }
  // (no carry-out qubit: the topmost majority result stays on a_{n-1})
  // UMA cascade (2-CNOT variant)
  for (std::size_t i = n; i-- > 0;) {
    qc.ccx(c(i), b(i), a(i));
    qc.cx(a(i), c(i));
    qc.cx(c(i), b(i));
  }
  return qc;
}

} // namespace builders

namespace {

std::unique_ptr<Operation> remapOperation(const Operation& op,
                                          const std::vector<Qubit>& perm) {
  const auto mapQubit = [&](Qubit q) {
    if (q < 0 || static_cast<std::size_t>(q) >= perm.size()) {
      throw std::invalid_argument("remapQubits: qubit out of range");
    }
    return perm[static_cast<std::size_t>(q)];
  };
  const auto mapTargets = [&](const std::vector<Qubit>& ts) {
    std::vector<Qubit> out;
    out.reserve(ts.size());
    for (const Qubit t : ts) {
      out.push_back(mapQubit(t));
    }
    return out;
  };

  if (op.isStandardOperation()) {
    QubitControls controls;
    for (const auto& c : op.controls()) {
      controls.push_back({mapQubit(c.qubit), c.positive});
    }
    return std::make_unique<StandardOperation>(
        op.type(), controls, mapTargets(op.targets()), op.parameters());
  }
  if (const auto* nu = dynamic_cast<const NonUnitaryOperation*>(&op)) {
    if (nu->type() == OpType::Measure) {
      return std::make_unique<NonUnitaryOperation>(mapTargets(nu->targets()),
                                                   nu->classics());
    }
    return std::make_unique<NonUnitaryOperation>(nu->type(),
                                                 mapTargets(nu->targets()));
  }
  if (const auto* cc = dynamic_cast<const ClassicControlledOperation*>(&op)) {
    return std::make_unique<ClassicControlledOperation>(
        remapOperation(cc->operation(), perm), cc->firstClbit(),
        cc->numClbits(), cc->expectedValue());
  }
  if (const auto* comp = dynamic_cast<const CompoundOperation*>(&op)) {
    auto out = std::make_unique<CompoundOperation>(comp->label());
    for (const auto& sub : comp->operations()) {
      out->emplaceBack(remapOperation(*sub, perm));
    }
    return out;
  }
  throw std::invalid_argument("remapQubits: unsupported operation type");
}

} // namespace

QuantumComputation remapQubits(const QuantumComputation& qc,
                               const std::vector<Qubit>& permutation) {
  if (permutation.size() != qc.numQubits()) {
    throw std::invalid_argument("remapQubits: permutation size mismatch");
  }
  std::vector<bool> seen(permutation.size(), false);
  for (const Qubit q : permutation) {
    if (q < 0 || static_cast<std::size_t>(q) >= permutation.size() ||
        seen[static_cast<std::size_t>(q)]) {
      throw std::invalid_argument("remapQubits: not a permutation");
    }
    seen[static_cast<std::size_t>(q)] = true;
  }
  QuantumComputation out(qc.numQubits(), qc.numClbits(),
                         qc.name().empty() ? "" : qc.name() + "_remapped");
  for (const auto& op : qc) {
    out.emplaceBack(remapOperation(*op, permutation));
  }
  return out;
}

QuantumComputation decomposeToNativeGates(const QuantumComputation& qc,
                                          bool insertBarriers) {
  QuantumComputation out(qc.numQubits(), qc.numClbits(),
                         qc.name().empty() ? "compiled"
                                           : qc.name() + "_compiled");
  const auto emitBarrier = [&] {
    if (insertBarriers) {
      out.barrier();
    }
  };
  for (const auto& op : qc) {
    if (!op->isStandardOperation()) {
      out.emplaceBack(op->clone());
      emitBarrier();
      continue;
    }
    const auto& controls = op->controls();
    const auto& targets = op->targets();
    const auto& params = op->parameters();

    if (op->type() == OpType::SWAP && controls.empty()) {
      // SWAP -> 3 CNOTs (Ex. 10: "not native to any current quantum
      // computer")
      out.cx(targets[0], targets[1]);
      out.cx(targets[1], targets[0]);
      out.cx(targets[0], targets[1]);
      emitBarrier();
      continue;
    }
    if (controls.size() == 1 && controls[0].positive &&
        (op->type() == OpType::Phase || op->type() == OpType::S ||
         op->type() == OpType::Sdg || op->type() == OpType::T ||
         op->type() == OpType::Tdg || op->type() == OpType::Z)) {
      // controlled phase rotation -> CNOTs + phase gates (Fig. 5(b))
      double theta = 0.;
      switch (op->type()) {
      case OpType::Phase:
        theta = params[0];
        break;
      case OpType::S:
        theta = PI_LOCAL / 2.;
        break;
      case OpType::Sdg:
        theta = -PI_LOCAL / 2.;
        break;
      case OpType::T:
        theta = PI_LOCAL / 4.;
        break;
      case OpType::Tdg:
        theta = -PI_LOCAL / 4.;
        break;
      case OpType::Z:
        theta = PI_LOCAL;
        break;
      default:
        break;
      }
      const Qubit c = controls[0].qubit;
      const Qubit t = targets[0];
      out.phase(theta / 2., c);
      out.cx(c, t);
      out.phase(-theta / 2., t);
      out.cx(c, t);
      out.phase(theta / 2., t);
      emitBarrier();
      continue;
    }
    out.emplaceBack(op->clone());
    emitBarrier();
  }
  return out;
}

} // namespace qdd::ir
