#include "qdd/ir/OpType.hpp"

#include <stdexcept>

namespace qdd::ir {

std::string toString(OpType t) {
  switch (t) {
  case OpType::None:
    return "none";
  case OpType::I:
    return "id";
  case OpType::H:
    return "h";
  case OpType::X:
    return "x";
  case OpType::Y:
    return "y";
  case OpType::Z:
    return "z";
  case OpType::S:
    return "s";
  case OpType::Sdg:
    return "sdg";
  case OpType::T:
    return "t";
  case OpType::Tdg:
    return "tdg";
  case OpType::V:
    return "v";
  case OpType::Vdg:
    return "vdg";
  case OpType::SX:
    return "sx";
  case OpType::SXdg:
    return "sxdg";
  case OpType::RX:
    return "rx";
  case OpType::RY:
    return "ry";
  case OpType::RZ:
    return "rz";
  case OpType::Phase:
    return "p";
  case OpType::U2:
    return "u2";
  case OpType::U3:
    return "u3";
  case OpType::SWAP:
    return "swap";
  case OpType::iSWAP:
    return "iswap";
  case OpType::iSWAPdg:
    return "iswapdg";
  case OpType::DCX:
    return "dcx";
  case OpType::Measure:
    return "measure";
  case OpType::Reset:
    return "reset";
  case OpType::Barrier:
    return "barrier";
  case OpType::ClassicControlled:
    return "if";
  case OpType::Compound:
    return "compound";
  }
  throw std::invalid_argument("unknown OpType");
}

std::size_t numParameters(OpType t) {
  switch (t) {
  case OpType::RX:
  case OpType::RY:
  case OpType::RZ:
  case OpType::Phase:
    return 1;
  case OpType::U2:
    return 2;
  case OpType::U3:
    return 3;
  default:
    return 0;
  }
}

std::size_t numTargets(OpType t) {
  switch (t) {
  case OpType::SWAP:
  case OpType::iSWAP:
  case OpType::iSWAPdg:
  case OpType::DCX:
    return 2;
  default:
    return 1;
  }
}

bool isUnitaryType(OpType t) {
  switch (t) {
  case OpType::None:
  case OpType::Measure:
  case OpType::Reset:
  case OpType::Barrier:
  case OpType::ClassicControlled:
  case OpType::Compound:
    return false;
  default:
    return true;
  }
}

bool isSelfInverse(OpType t) {
  switch (t) {
  case OpType::I:
  case OpType::H:
  case OpType::X:
  case OpType::Y:
  case OpType::Z:
  case OpType::SWAP:
    return true;
  default:
    return false;
  }
}

} // namespace qdd::ir
