#include "qdd/ir/ClassicControlledOperation.hpp"
#include "qdd/ir/CompoundOperation.hpp"
#include "qdd/ir/NonUnitaryOperation.hpp"
#include "qdd/ir/Operation.hpp"
#include "qdd/ir/StandardOperation.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace qdd::ir {

namespace {

/// Pretty-prints an angle, recognizing simple multiples/fractions of pi.
/// Hot: operation names are rebuilt for step displays and trace records, so
/// the pi-fraction match computes the candidate numerator per denominator
/// directly instead of scanning all of them.
std::string angleToString(double angle) {
  constexpr double PI_LOCAL = 3.14159265358979323846;
  constexpr double EPS = 1e-12;
  if (std::abs(angle) < EPS) {
    return "0";
  }
  for (int den = 1; den <= 64; den *= 2) {
    const double scaled = angle * den / PI_LOCAL;
    const int num = static_cast<int>(std::lround(scaled));
    if (num == 0 || std::abs(num) > 8 * den ||
        std::abs(angle - PI_LOCAL * num / den) >= EPS) {
      continue;
    }
    char buf[32];
    if (num == 1) {
      std::snprintf(buf, sizeof(buf), den == 1 ? "pi" : "pi/%d", den);
    } else if (num == -1) {
      std::snprintf(buf, sizeof(buf), den == 1 ? "-pi" : "-pi/%d", den);
    } else if (den == 1) {
      std::snprintf(buf, sizeof(buf), "%d*pi", num);
    } else {
      std::snprintf(buf, sizeof(buf), "%d*pi/%d", num, den);
    }
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.15g", angle);
  // keep output locale-independent (snprintf honors the C locale's decimal
  // separator)
  for (char* c = buf; *c != '\0'; ++c) {
    if (*c == ',') {
      *c = '.';
    }
  }
  return buf;
}

std::string paramList(const std::vector<double>& params) {
  if (params.empty()) {
    return "";
  }
  std::string out = "(";
  for (std::size_t k = 0; k < params.size(); ++k) {
    if (k > 0) {
      out += ",";
    }
    out += angleToString(params[k]);
  }
  out += ")";
  return out;
}

} // namespace

// --- Operation ---------------------------------------------------------------

std::vector<Qubit> Operation::usedQubits() const {
  std::vector<Qubit> qs;
  qs.reserve(controlQubits.size() + targetQubits.size());
  for (const auto& c : controlQubits) {
    qs.push_back(c.qubit);
  }
  for (const auto t : targetQubits) {
    qs.push_back(t);
  }
  std::sort(qs.begin(), qs.end());
  qs.erase(std::unique(qs.begin(), qs.end()), qs.end());
  return qs;
}

std::string Operation::name() const {
  std::string out = toString(opType) + paramList(params);
  for (const auto& c : controlQubits) {
    out += " c" + std::string(c.positive ? "" : "~") +
           std::to_string(c.qubit);
  }
  for (const auto t : targetQubits) {
    out += " q" + std::to_string(t);
  }
  return out;
}

// --- StandardOperation ----------------------------------------------------------

StandardOperation::StandardOperation(OpType t, QubitControls controls,
                                     std::vector<Qubit> targets,
                                     std::vector<double> parameters) {
  opType = t;
  controlQubits = std::move(controls);
  targetQubits = std::move(targets);
  params = std::move(parameters);
  std::sort(controlQubits.begin(), controlQubits.end());
  checkConsistency();
}

void StandardOperation::checkConsistency() const {
  if (!isUnitaryType(opType)) {
    throw std::invalid_argument(
        "StandardOperation: type is not a unitary gate");
  }
  if (targetQubits.size() != numTargets(opType)) {
    throw std::invalid_argument("StandardOperation: wrong number of targets");
  }
  if (params.size() != numParameters(opType)) {
    throw std::invalid_argument(
        "StandardOperation: wrong number of parameters");
  }
  for (const auto& c : controlQubits) {
    for (const auto t : targetQubits) {
      if (c.qubit == t) {
        throw std::invalid_argument(
            "StandardOperation: control coincides with target");
      }
    }
  }
  for (std::size_t k = 1; k < controlQubits.size(); ++k) {
    if (controlQubits[k].qubit == controlQubits[k - 1].qubit) {
      throw std::invalid_argument("StandardOperation: duplicate control");
    }
  }
  if (targetQubits.size() == 2 && targetQubits[0] == targetQubits[1]) {
    throw std::invalid_argument("StandardOperation: duplicate target");
  }
}

void StandardOperation::invert() {
  switch (opType) {
  case OpType::I:
  case OpType::H:
  case OpType::X:
  case OpType::Y:
  case OpType::Z:
  case OpType::SWAP:
    break; // self-inverse
  case OpType::S:
    opType = OpType::Sdg;
    break;
  case OpType::Sdg:
    opType = OpType::S;
    break;
  case OpType::T:
    opType = OpType::Tdg;
    break;
  case OpType::Tdg:
    opType = OpType::T;
    break;
  case OpType::V:
    opType = OpType::Vdg;
    break;
  case OpType::Vdg:
    opType = OpType::V;
    break;
  case OpType::SX:
    opType = OpType::SXdg;
    break;
  case OpType::SXdg:
    opType = OpType::SX;
    break;
  case OpType::iSWAP:
    opType = OpType::iSWAPdg;
    break;
  case OpType::iSWAPdg:
    opType = OpType::iSWAP;
    break;
  case OpType::DCX:
    // DCX(a,b)^-1 = DCX(b,a)
    std::swap(targetQubits[0], targetQubits[1]);
    break;
  case OpType::RX:
  case OpType::RY:
  case OpType::RZ:
  case OpType::Phase:
    params[0] = -params[0];
    break;
  case OpType::U2:
    // U2(phi, lambda)^-1 = U3(-pi/2, -lambda, -phi)
    opType = OpType::U3;
    params = {-3.14159265358979323846 / 2., -params[1], -params[0]};
    break;
  case OpType::U3: {
    // U3(theta, phi, lambda)^-1 = U3(-theta, -lambda, -phi)
    const double theta = params[0];
    const double phi = params[1];
    const double lambda = params[2];
    params = {-theta, -lambda, -phi};
    break;
  }
  default:
    throw std::logic_error("invert: unsupported operation type");
  }
}

void StandardOperation::dumpOpenQASM(
    std::ostream& os, const std::vector<std::string>& qubitNames,
    const std::vector<std::string>& clbitNames) const {
  (void)clbitNames;
  // Emit the gate under the qelib1-compatible name for the given number of
  // controls where one exists; otherwise fall back to a generic
  // (multi-)controlled decomposition comment.
  std::string gate = toString(opType);
  const std::size_t nc = controlQubits.size();
  std::vector<QubitControl> negs;
  for (const auto& c : controlQubits) {
    if (!c.positive) {
      negs.push_back(c);
    }
  }
  // Negative controls: wrap in X conjugation.
  for (const auto& c : negs) {
    os << "x " << qubitNames[static_cast<std::size_t>(c.qubit)] << ";\n";
  }
  if (nc == 0) {
    os << gate << paramList(params);
  } else if (nc == 1) {
    if (opType == OpType::Phase) {
      os << "cp" << paramList(params);
    } else if (opType == OpType::SWAP) {
      os << "cswap";
    } else {
      os << "c" << gate << paramList(params);
    }
  } else if (nc == 2 && opType == OpType::X) {
    os << "ccx";
  } else {
    // No qelib1 primitive: emit with a custom multi-control prefix; the
    // bundled parser accepts this form.
    os << "c(" << nc << ") " << gate << paramList(params);
  }
  bool firstOperand = true;
  os << " ";
  for (const auto& c : controlQubits) {
    if (!firstOperand) {
      os << ", ";
    }
    os << qubitNames[static_cast<std::size_t>(c.qubit)];
    firstOperand = false;
  }
  for (const auto t : targetQubits) {
    if (!firstOperand) {
      os << ", ";
    }
    os << qubitNames[static_cast<std::size_t>(t)];
    firstOperand = false;
  }
  os << ";\n";
  for (const auto& c : negs) {
    os << "x " << qubitNames[static_cast<std::size_t>(c.qubit)] << ";\n";
  }
}

// --- NonUnitaryOperation ----------------------------------------------------------

NonUnitaryOperation::NonUnitaryOperation(std::vector<Qubit> qubits,
                                         std::vector<std::size_t> clbits)
    : classicBits(std::move(clbits)) {
  opType = OpType::Measure;
  targetQubits = std::move(qubits);
  if (targetQubits.size() != classicBits.size() || targetQubits.empty()) {
    throw std::invalid_argument("measure: qubit/clbit count mismatch");
  }
}

NonUnitaryOperation::NonUnitaryOperation(OpType t, std::vector<Qubit> qubits) {
  if (t != OpType::Reset && t != OpType::Barrier) {
    throw std::invalid_argument(
        "NonUnitaryOperation: type must be Reset or Barrier");
  }
  if (t == OpType::Reset && qubits.empty()) {
    throw std::invalid_argument("reset: no qubits given");
  }
  opType = t;
  targetQubits = std::move(qubits);
}

void NonUnitaryOperation::invert() {
  if (opType == OpType::Barrier) {
    return; // barriers are trivially invertible (no-ops)
  }
  throw std::logic_error("invert: " + toString(opType) +
                         " is not invertible");
}

void NonUnitaryOperation::dumpOpenQASM(
    std::ostream& os, const std::vector<std::string>& qubitNames,
    const std::vector<std::string>& clbitNames) const {
  switch (opType) {
  case OpType::Measure:
    for (std::size_t k = 0; k < targetQubits.size(); ++k) {
      os << "measure "
         << qubitNames[static_cast<std::size_t>(targetQubits[k])] << " -> "
         << clbitNames[classicBits[k]] << ";\n";
    }
    break;
  case OpType::Reset:
    for (const auto q : targetQubits) {
      os << "reset " << qubitNames[static_cast<std::size_t>(q)] << ";\n";
    }
    break;
  case OpType::Barrier: {
    os << "barrier";
    for (std::size_t k = 0; k < targetQubits.size(); ++k) {
      os << (k == 0 ? " " : ", ")
         << qubitNames[static_cast<std::size_t>(targetQubits[k])];
    }
    os << ";\n";
    break;
  }
  default:
    assert(false);
  }
}

std::string NonUnitaryOperation::name() const {
  std::string out = toString(opType);
  for (const auto t : targetQubits) {
    out += " q" + std::to_string(t);
  }
  return out;
}

// --- ClassicControlledOperation ---------------------------------------------------

ClassicControlledOperation::ClassicControlledOperation(
    std::unique_ptr<Operation> operation, std::size_t firstClbit,
    std::size_t numClbits, std::uint64_t expectedVal)
    : op(std::move(operation)), first(firstClbit), count(numClbits),
      expected(expectedVal) {
  opType = OpType::ClassicControlled;
  if (op == nullptr) {
    throw std::invalid_argument("classic-controlled: null operation");
  }
  if (count == 0 || count > 64) {
    throw std::invalid_argument("classic-controlled: invalid register size");
  }
  if (!op->isUnitary()) {
    throw std::invalid_argument(
        "classic-controlled: inner operation must be unitary");
  }
}

ClassicControlledOperation::ClassicControlledOperation(
    const ClassicControlledOperation& other)
    : Operation(other), op(other.op->clone()), first(other.first),
      count(other.count), expected(other.expected) {}

ClassicControlledOperation& ClassicControlledOperation::operator=(
    const ClassicControlledOperation& other) {
  if (this != &other) {
    Operation::operator=(other);
    op = other.op->clone();
    first = other.first;
    count = other.count;
    expected = other.expected;
  }
  return *this;
}

bool ClassicControlledOperation::conditionSatisfied(
    const std::vector<bool>& classicalBits) const {
  std::uint64_t value = 0;
  for (std::size_t k = 0; k < count; ++k) {
    if (first + k < classicalBits.size() && classicalBits[first + k]) {
      value |= (1ULL << k);
    }
  }
  return value == expected;
}

void ClassicControlledOperation::invert() {
  throw std::logic_error("invert: classically controlled operations are not "
                         "invertible");
}

void ClassicControlledOperation::dumpOpenQASM(
    std::ostream& os, const std::vector<std::string>& qubitNames,
    const std::vector<std::string>& clbitNames) const {
  // derive the register name from the first classical bit ("c[3]" -> "c")
  std::string reg = clbitNames.at(first);
  if (const auto pos = reg.find('['); pos != std::string::npos) {
    reg.resize(pos);
  }
  os << "if (" << reg << " == " << expected << ") ";
  op->dumpOpenQASM(os, qubitNames, clbitNames);
}

std::string ClassicControlledOperation::name() const {
  return "if(c==" + std::to_string(expected) + ") " + op->name();
}

// --- CompoundOperation -----------------------------------------------------------

CompoundOperation::CompoundOperation(std::string label)
    : groupLabel(std::move(label)) {
  opType = OpType::Compound;
}

CompoundOperation::CompoundOperation(const CompoundOperation& other)
    : Operation(other), groupLabel(other.groupLabel) {
  ops.reserve(other.ops.size());
  for (const auto& op : other.ops) {
    ops.emplace_back(op->clone());
  }
}

CompoundOperation&
CompoundOperation::operator=(const CompoundOperation& other) {
  if (this != &other) {
    Operation::operator=(other);
    groupLabel = other.groupLabel;
    ops.clear();
    ops.reserve(other.ops.size());
    for (const auto& op : other.ops) {
      ops.emplace_back(op->clone());
    }
  }
  return *this;
}

bool CompoundOperation::isUnitary() const {
  return std::all_of(ops.begin(), ops.end(),
                     [](const auto& op) { return op->isUnitary(); });
}

std::vector<Qubit> CompoundOperation::usedQubits() const {
  std::vector<Qubit> qs;
  for (const auto& op : ops) {
    const auto sub = op->usedQubits();
    qs.insert(qs.end(), sub.begin(), sub.end());
  }
  std::sort(qs.begin(), qs.end());
  qs.erase(std::unique(qs.begin(), qs.end()), qs.end());
  return qs;
}

void CompoundOperation::invert() {
  for (auto& op : ops) {
    op->invert();
  }
  std::reverse(ops.begin(), ops.end());
}

void CompoundOperation::dumpOpenQASM(
    std::ostream& os, const std::vector<std::string>& qubitNames,
    const std::vector<std::string>& clbitNames) const {
  for (const auto& op : ops) {
    op->dumpOpenQASM(os, qubitNames, clbitNames);
  }
}

std::string CompoundOperation::name() const {
  std::string out = groupLabel.empty() ? "compound" : groupLabel;
  out += " [" + std::to_string(ops.size()) + " ops]";
  return out;
}

} // namespace qdd::ir
