#include "qdd/ir/QuantumComputation.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace qdd::ir {

QuantumComputation::QuantumComputation(std::size_t nq, std::size_t nc,
                                       std::string name)
    : circuitName(std::move(name)) {
  if (nq > 0) {
    addQubitRegister(nq);
  }
  if (nc > 0) {
    addClassicalRegister(nc);
  }
}

QuantumComputation::QuantumComputation(const QuantumComputation& other)
    : nqubits(other.nqubits), nclbits(other.nclbits),
      circuitName(other.circuitName), qregs(other.qregs), cregs(other.cregs) {
  ops.reserve(other.ops.size());
  for (const auto& op : other.ops) {
    ops.emplace_back(op->clone());
  }
}

QuantumComputation&
QuantumComputation::operator=(const QuantumComputation& other) {
  if (this != &other) {
    *this = QuantumComputation(other);
  }
  return *this;
}

std::size_t QuantumComputation::addQubitRegister(std::size_t size,
                                                 const std::string& name) {
  for (const auto& r : qregs) {
    if (r.name == name) {
      throw std::invalid_argument("duplicate quantum register: " + name);
    }
  }
  const std::size_t start = nqubits;
  qregs.push_back({name, start, size});
  nqubits += size;
  return start;
}

std::size_t QuantumComputation::addClassicalRegister(std::size_t size,
                                                     const std::string& name) {
  for (const auto& r : cregs) {
    if (r.name == name) {
      throw std::invalid_argument("duplicate classical register: " + name);
    }
  }
  const std::size_t start = nclbits;
  cregs.push_back({name, start, size});
  nclbits += size;
  return start;
}

const Register*
QuantumComputation::classicalRegister(const std::string& n) const {
  for (const auto& r : cregs) {
    if (r.name == n) {
      return &r;
    }
  }
  return nullptr;
}

void QuantumComputation::emplaceBack(std::unique_ptr<Operation> op) {
  for (const auto q : op->usedQubits()) {
    ensureQubit(q);
  }
  ops.emplace_back(std::move(op));
}

void QuantumComputation::ensureQubit(Qubit q) {
  if (q < 0) {
    throw std::invalid_argument("negative qubit index");
  }
  if (static_cast<std::size_t>(q) >= nqubits) {
    throw std::invalid_argument("operation references qubit " +
                                std::to_string(q) + " but circuit has only " +
                                std::to_string(nqubits) + " qubits");
  }
}

namespace {
std::size_t countRecursive(const Operation& op) {
  if (op.type() == OpType::Barrier) {
    return 0;
  }
  if (const auto* comp = dynamic_cast<const CompoundOperation*>(&op)) {
    std::size_t count = 0;
    for (const auto& sub : comp->operations()) {
      count += countRecursive(*sub);
    }
    return count;
  }
  return 1;
}
} // namespace

std::size_t QuantumComputation::gateCount(bool flatten) const {
  if (!flatten) {
    return ops.size();
  }
  std::size_t count = 0;
  for (const auto& op : ops) {
    count += countRecursive(*op);
  }
  return count;
}

bool QuantumComputation::isPurelyUnitary() const {
  return std::all_of(ops.begin(), ops.end(),
                     [](const auto& op) { return op->isUnitary(); });
}

void QuantumComputation::addStandard(OpType t, const QubitControls& controls,
                                     std::vector<Qubit> targets,
                                     std::vector<double> params) {
  emplaceBack(std::make_unique<StandardOperation>(
      t, controls, std::move(targets), std::move(params)));
}

void QuantumComputation::measure(Qubit q, std::size_t clbit) {
  if (clbit >= nclbits) {
    throw std::invalid_argument("measure: classical bit out of range");
  }
  emplaceBack(std::make_unique<NonUnitaryOperation>(
      std::vector<Qubit>{q}, std::vector<std::size_t>{clbit}));
}

void QuantumComputation::measureAll() {
  if (nclbits < nqubits) {
    addClassicalRegister(nqubits - nclbits, "meas");
  }
  std::vector<Qubit> qs;
  std::vector<std::size_t> cs;
  for (std::size_t k = 0; k < nqubits; ++k) {
    qs.push_back(static_cast<Qubit>(k));
    cs.push_back(k);
  }
  emplaceBack(std::make_unique<NonUnitaryOperation>(std::move(qs),
                                                    std::move(cs)));
}

void QuantumComputation::reset(Qubit q) {
  emplaceBack(std::make_unique<NonUnitaryOperation>(OpType::Reset,
                                                    std::vector<Qubit>{q}));
}

void QuantumComputation::barrier() {
  std::vector<Qubit> qs;
  for (std::size_t k = 0; k < nqubits; ++k) {
    qs.push_back(static_cast<Qubit>(k));
  }
  barrier(std::move(qs));
}

void QuantumComputation::barrier(std::vector<Qubit> qs) {
  emplaceBack(
      std::make_unique<NonUnitaryOperation>(OpType::Barrier, std::move(qs)));
}

void QuantumComputation::classicControlled(std::unique_ptr<Operation> op,
                                           std::size_t firstClbit,
                                           std::size_t numClbits,
                                           std::uint64_t expected) {
  emplaceBack(std::make_unique<ClassicControlledOperation>(
      std::move(op), firstClbit, numClbits, expected));
}

QuantumComputation QuantumComputation::inverted() const {
  QuantumComputation inv;
  inv.nqubits = nqubits;
  inv.nclbits = nclbits;
  inv.qregs = qregs;
  inv.cregs = cregs;
  inv.circuitName = circuitName.empty() ? "" : circuitName + "_inv";
  for (auto it = ops.rbegin(); it != ops.rend(); ++it) {
    const auto& op = *it;
    if (op->type() == OpType::Barrier) {
      continue;
    }
    if (!op->isUnitary()) {
      throw std::logic_error("inverted: circuit contains non-unitary "
                             "operation '" +
                             op->name() + "'");
    }
    auto copy = op->clone();
    copy->invert();
    inv.ops.emplace_back(std::move(copy));
  }
  return inv;
}

std::vector<std::string> QuantumComputation::qubitNames() const {
  std::vector<std::string> names(nqubits);
  for (const auto& r : qregs) {
    for (std::size_t k = 0; k < r.size; ++k) {
      names[r.start + k] = r.name + "[" + std::to_string(k) + "]";
    }
  }
  return names;
}

std::vector<std::string> QuantumComputation::clbitNames() const {
  std::vector<std::string> names(nclbits);
  for (const auto& r : cregs) {
    for (std::size_t k = 0; k < r.size; ++k) {
      names[r.start + k] = r.name + "[" + std::to_string(k) + "]";
    }
  }
  return names;
}

void QuantumComputation::dumpOpenQASM(std::ostream& os) const {
  os << "OPENQASM 2.0;\n";
  os << "include \"qelib1.inc\";\n";
  for (const auto& r : qregs) {
    os << "qreg " << r.name << "[" << r.size << "];\n";
  }
  for (const auto& r : cregs) {
    os << "creg " << r.name << "[" << r.size << "];\n";
  }
  const auto qn = qubitNames();
  const auto cn = clbitNames();
  for (const auto& op : ops) {
    op->dumpOpenQASM(os, qn, cn);
  }
}

std::string QuantumComputation::toOpenQASM() const {
  std::ostringstream ss;
  dumpOpenQASM(ss);
  return ss.str();
}

} // namespace qdd::ir
