#include "qdd/verify/VerificationSession.hpp"

#include "qdd/bridge/DDBuilder.hpp"

#include <stdexcept>

namespace qdd::verify {

VerificationSession::VerificationSession(const ir::QuantumComputation& l,
                                         const ir::QuantumComputation& r,
                                         Package& package)
    : left(l), right(r), pkg(package), tol(1e-9) {
  if (left.numQubits() != right.numQubits() || left.numQubits() == 0) {
    throw std::invalid_argument(
        "VerificationSession: circuits must act on the same qubits");
  }
  if (!left.isPurelyUnitary() || !right.isPurelyUnitary()) {
    throw std::invalid_argument(
        "VerificationSession: non-unitary operations are not supported "
        "(Sec. IV-C)");
  }
  pkg.resize(left.numQubits());
  current = pkg.makeIdent(left.numQubits());
  pkg.incRef(current);
  peak = Package::size(current);
}

VerificationSession::~VerificationSession() {
  pkg.decRef(current);
  for (const auto& snap : snapshots) {
    pkg.decRef(snap.state);
  }
}

void VerificationSession::replace(const mEdge& next) {
  pkg.incRef(current);
  snapshots.push_back({current, posL, posR});
  pkg.incRef(next);
  pkg.decRef(current);
  current = next;
}

void VerificationSession::record() {
  const std::size_t nodes = Package::size(current);
  peak = std::max(peak, nodes);
  history.push_back(nodes);
  pkg.garbageCollect();
  pressures.push_back(pkg.tablePressure());
}

bool VerificationSession::stepLeft() {
  while (posL < left.size() &&
         left.at(posL).type() == ir::OpType::Barrier) {
    ++posL;
  }
  if (posL == left.size()) {
    return false;
  }
  const mEdge gate = bridge::getDD(left.at(posL), left.numQubits(), pkg);
  replace(pkg.multiply(gate, current));
  ++posL;
  record();
  return true;
}

bool VerificationSession::stepRight() {
  while (posR < right.size() &&
         right.at(posR).type() == ir::OpType::Barrier) {
    ++posR;
  }
  if (posR == right.size()) {
    return false;
  }
  const mEdge gate =
      bridge::getInverseDD(right.at(posR), right.numQubits(), pkg);
  replace(pkg.multiply(current, gate));
  ++posR;
  record();
  return true;
}

bool VerificationSession::stepBack() {
  if (snapshots.empty()) {
    return false;
  }
  Snapshot snap = snapshots.back();
  snapshots.pop_back();
  pkg.decRef(current);
  current = snap.state;
  posL = snap.posL;
  posR = snap.posR;
  if (!history.empty()) {
    history.pop_back();
  }
  if (!pressures.empty()) {
    pressures.pop_back();
  }
  return true;
}

std::size_t VerificationSession::rewindToStart() {
  std::size_t steps = 0;
  while (stepBack()) {
    ++steps;
  }
  if (posL > 0 || posR > 0) {
    // snapshot history was dropped by a spill/restore cycle: jump straight
    // back to the identity instead of replaying snapshots
    const mEdge ident = pkg.makeIdent(left.numQubits());
    pkg.incRef(ident);
    pkg.decRef(current);
    current = ident;
    steps += posL + posR;
    posL = 0;
    posR = 0;
    history.clear();
    pressures.clear();
  }
  return steps;
}

void VerificationSession::restoreTo(const mEdge& state, std::size_t leftPos,
                                    std::size_t rightPos,
                                    std::size_t peakNodes) {
  if (leftPos > left.size() || rightPos > right.size()) {
    throw std::invalid_argument(
        "VerificationSession::restoreTo: position beyond circuit end");
  }
  pkg.incRef(state);
  pkg.decRef(current);
  current = state;
  for (const auto& snap : snapshots) {
    pkg.decRef(snap.state);
  }
  snapshots.clear();
  posL = leftPos;
  posR = rightPos;
  peak = std::max(peakNodes, Package::size(current));
  history.clear();
  pressures.clear();
}

std::size_t VerificationSession::runRightToBarrier() {
  std::size_t steps = 0;
  while (posR < right.size()) {
    if (right.at(posR).type() == ir::OpType::Barrier) {
      ++posR; // consume the barrier; it is the breakpoint
      break;
    }
    if (!stepRight()) {
      break;
    }
    ++steps;
  }
  return steps;
}

CheckResult VerificationSession::runToCompletion(
    const std::atomic<bool>* cancel) {
  CheckResult result;
  result.method = "session/barrier-sync";
  while (!finished()) {
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
      result.cancelled = true;
      break; // deadline/cancellation: stop at the gate boundary
    }
    const std::size_t before = history.size();
    stepLeft();
    runRightToBarrier();
    if (history.size() == before && !finished()) {
      // neither side progressed (no barriers left): drain the right side
      if (!stepRight()) {
        break;
      }
    }
  }
  result.maxNodes = peak;
  result.finalNodes = currentNodes();
  result.gatesApplied = history.size();
  result.equivalence = currentVerdict();
  return result;
}

Equivalence VerificationSession::currentVerdict() {
  const mEdge id = pkg.makeIdent(left.numQubits());
  if (current.p != id.p) {
    return Equivalence::NotEquivalent;
  }
  const ComplexValue w = current.w.toValue();
  if (w.approximatelyEquals(ComplexValue{1., 0.}, tol)) {
    return Equivalence::Equivalent;
  }
  if (std::abs(w.mag() - 1.) <= tol) {
    return Equivalence::EquivalentUpToGlobalPhase;
  }
  return Equivalence::NotEquivalent;
}

std::size_t VerificationSession::currentNodes() const {
  return Package::size(current);
}

} // namespace qdd::verify
