#include "qdd/verify/EquivalenceChecker.hpp"

#include "qdd/bridge/DDBuilder.hpp"
#include "qdd/bridge/GateDDCache.hpp"
#include "qdd/obs/Obs.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>

namespace qdd::verify {

std::string toString(Equivalence e) {
  switch (e) {
  case Equivalence::Equivalent:
    return "equivalent";
  case Equivalence::EquivalentUpToGlobalPhase:
    return "equivalent up to global phase";
  case Equivalence::NotEquivalent:
    return "not equivalent";
  case Equivalence::ProbablyEquivalent:
    return "probably equivalent";
  }
  return "?";
}

std::string toString(Strategy s) {
  switch (s) {
  case Strategy::Sequential:
    return "sequential";
  case Strategy::OneToOne:
    return "one-to-one";
  case Strategy::Proportional:
    return "proportional";
  case Strategy::BarrierSync:
    return "barrier-sync";
  }
  return "?";
}

EquivalenceChecker::EquivalenceChecker(const ir::QuantumComputation& first,
                                       const ir::QuantumComputation& second,
                                       double tolerance)
    : g1(first), g2(second), tol(tolerance) {
  if (g1.numQubits() != g2.numQubits()) {
    // Same restriction as the paper's tool (Sec. IV-C); circuits with
    // differing ancillary/garbage qubits are referred to full-fledged QCEC.
    throw std::invalid_argument(
        "EquivalenceChecker: circuits must have the same number of qubits");
  }
  if (g1.numQubits() == 0) {
    throw std::invalid_argument("EquivalenceChecker: empty circuits");
  }
  if (!g1.isPurelyUnitary() || !g2.isPurelyUnitary()) {
    // "Measurement, Reset, and Classically-Controlled Operations are
    // currently not supported due to their non-unitary nature" (Sec. IV-C).
    throw std::invalid_argument(
        "EquivalenceChecker: circuits must be purely unitary");
  }
}

Equivalence EquivalenceChecker::classifyAgainstIdentity(Package& pkg,
                                                        const mEdge& e) const {
  const mEdge id = pkg.makeIdent(g1.numQubits());
  if (e.p != id.p) {
    return Equivalence::NotEquivalent;
  }
  const ComplexValue w = e.w.toValue();
  if (w.approximatelyEquals(ComplexValue{1., 0.}, tol)) {
    return Equivalence::Equivalent;
  }
  if (std::abs(w.mag() - 1.) <= tol) {
    return Equivalence::EquivalentUpToGlobalPhase;
  }
  return Equivalence::NotEquivalent;
}

CheckResult EquivalenceChecker::checkByConstruction(Package& pkg) const {
  obs::ScopedSpan span("verify", "construction");
  CheckResult result;
  result.method = "construction";
  bridge::BuildStats s1;
  bridge::BuildStats s2;
  const mEdge u1 = bridge::buildFunctionality(g1, pkg, s1);
  pkg.incRef(u1);
  const mEdge u2 = bridge::buildFunctionality(g2, pkg, s2);
  pkg.incRef(u2);
  result.maxNodes = std::max(s1.maxNodes, s2.maxNodes);
  result.gatesApplied = s1.appliedGates + s2.appliedGates;
  result.finalNodes = std::max(s1.finalNodes, s2.finalNodes);
  // Canonicity (paper Sec. III-C): "the equivalence of two decision diagrams
  // can be concluded by comparing their root pointers".
  if (u1.p == u2.p) {
    const ComplexValue ratio = u1.w.toValue() / u2.w.toValue();
    if (ratio.approximatelyEquals(ComplexValue{1., 0.}, tol)) {
      result.equivalence = Equivalence::Equivalent;
    } else if (std::abs(ratio.mag() - 1.) <= tol) {
      result.equivalence = Equivalence::EquivalentUpToGlobalPhase;
    }
  }
  pkg.decRef(u1);
  pkg.decRef(u2);
  pkg.garbageCollect();
  span.arg("maxNodes", result.maxNodes);
  span.arg("gatesApplied", result.gatesApplied);
  span.arg("result", toString(result.equivalence));
  return result;
}

CheckResult
EquivalenceChecker::checkAlternating(Package& pkg, Strategy strategy,
                                     const std::atomic<bool>* cancel) const {
  obs::ScopedSpan span("verify", "alternating");
  CheckResult result;
  result.method = "alternating/" + toString(strategy);
  const std::size_t n = g1.numQubits();
  pkg.resize(n);

  // Gate sequences; for G2 remember the barrier-delimited chunk boundaries.
  std::vector<const ir::Operation*> first;
  for (const auto& op : g1) {
    if (op->type() != ir::OpType::Barrier) {
      first.push_back(op.get());
    }
  }
  std::vector<const ir::Operation*> second;
  std::vector<std::size_t> chunkEnds; // indices into `second`
  for (const auto& op : g2) {
    if (op->type() == ir::OpType::Barrier) {
      if (chunkEnds.empty() || chunkEnds.back() != second.size()) {
        chunkEnds.push_back(second.size());
      }
      continue;
    }
    second.push_back(op.get());
  }
  if (chunkEnds.empty() || chunkEnds.back() != second.size()) {
    chunkEnds.push_back(second.size());
  }

  // One gate-DD cache shared across the whole alternating run: the scheme
  // applies the same gate set from both sides, so left-side entries pay off
  // again on the right (and vice versa for self-inverse gates). Disabled
  // under the QDD_APPLY=general ablation to keep that baseline pristine.
  const bool useCache = bridge::globalApplyMode() != bridge::ApplyMode::General;
  bridge::GateDDCache gateCache(pkg);

  mEdge e = pkg.makeIdent(n);
  pkg.incRef(e);
  result.maxNodes = Package::size(e);

  std::size_t i1 = 0; // next gate of G1 (applied from the left)
  std::size_t i2 = 0; // next gate of G2^{-1} (applied from the right)
  std::size_t chunk = 0;

  // Polled at every gate boundary; relaxed is enough — the flag is sticky
  // and missing it by one gate only costs one extra multiplication.
  const auto stop = [cancel] {
    return cancel != nullptr && cancel->load(std::memory_order_relaxed);
  };

  // Each alternating iteration gets its own span so traces show how the
  // intermediate DD breathes around the identity (paper Ex. 12).
  const auto record = [&](const char* side, std::size_t gateIndex) {
    obs::ScopedSpan iteration("verify", "iteration");
    const std::size_t nodes = Package::size(e);
    result.maxNodes = std::max(result.maxNodes, nodes);
    ++result.gatesApplied;
    pkg.garbageCollect();
    iteration.arg("side", std::string(side));
    iteration.arg("gate", gateIndex);
    iteration.arg("nodes", nodes);
  };
  const auto applyFromLeft = [&] {
    const mEdge gate = useCache ? gateCache.getDD(*first[i1], n)
                                : bridge::getDD(*first[i1], n, pkg);
    const mEdge next = pkg.multiply(gate, e);
    pkg.incRef(next);
    pkg.decRef(e);
    e = next;
    ++i1;
    record("left", i1 - 1);
  };
  const auto applyFromRight = [&] {
    const mEdge gate = useCache ? gateCache.getInverseDD(*second[i2], n)
                                : bridge::getInverseDD(*second[i2], n, pkg);
    const mEdge next = pkg.multiply(e, gate);
    pkg.incRef(next);
    pkg.decRef(e);
    e = next;
    ++i2;
    record("right", i2 - 1);
  };

  switch (strategy) {
  case Strategy::Sequential:
    while (!stop() && i1 < first.size()) {
      applyFromLeft();
    }
    while (!stop() && i2 < second.size()) {
      applyFromRight();
    }
    break;
  case Strategy::OneToOne:
    while (!stop() && (i1 < first.size() || i2 < second.size())) {
      if (i1 < first.size()) {
        applyFromLeft();
      }
      if (!stop() && i2 < second.size()) {
        applyFromRight();
      }
    }
    break;
  case Strategy::Proportional: {
    const std::size_t m1 = std::max<std::size_t>(first.size(), 1);
    const std::size_t m2 = second.size();
    // apply ~m2/m1 gates of G2^{-1} per gate of G1, distributed evenly
    std::size_t applied2Target = 0;
    while (!stop() && i1 < first.size()) {
      applyFromLeft();
      applied2Target = (i1 * m2) / m1;
      while (!stop() && i2 < std::min(applied2Target, m2)) {
        applyFromRight();
      }
    }
    while (!stop() && i2 < second.size()) {
      applyFromRight();
    }
    break;
  }
  case Strategy::BarrierSync:
    // Paper Ex. 12: one gate from G, then all gates from G' up to the next
    // barrier.
    while (!stop() && (i1 < first.size() || i2 < second.size())) {
      if (i1 < first.size()) {
        applyFromLeft();
      }
      const std::size_t end =
          chunk < chunkEnds.size() ? chunkEnds[chunk] : second.size();
      while (!stop() && i2 < end) {
        applyFromRight();
      }
      ++chunk;
    }
    break;
  }

  result.finalNodes = Package::size(e);
  if (stop() && (i1 < first.size() || i2 < second.size())) {
    // Abandoned mid-run: the intermediate DD proves nothing, so skip the
    // identity classification and report the partial run as cancelled.
    result.cancelled = true;
  } else {
    result.equivalence = classifyAgainstIdentity(pkg, e);
  }
  result.gateCacheLookups = gateCache.lookups();
  result.gateCacheHits = gateCache.hits();
  pkg.decRef(e);
  gateCache.clear(); // release pinned gate DDs before collecting
  pkg.garbageCollect();
  span.arg("strategy", toString(strategy));
  span.arg("maxNodes", result.maxNodes);
  span.arg("gatesApplied", result.gatesApplied);
  span.arg("gateCacheHitRatio", result.gateCacheHitRatio());
  span.arg("result", toString(result.equivalence));
  return result;
}

CheckResult
EquivalenceChecker::checkBySimulation(Package& pkg, std::size_t numStimuli,
                                      std::uint64_t seed,
                                      const std::atomic<bool>* cancel) const {
  obs::ScopedSpan span("verify", "simulation");
  CheckResult result;
  result.method = "simulation";
  const std::size_t n = g1.numQubits();
  pkg.resize(n);
  std::mt19937_64 rng(seed);
  std::bernoulli_distribution bit(0.5);

  result.equivalence = Equivalence::ProbablyEquivalent;
  for (std::size_t s = 0; s < numStimuli; ++s) {
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
      result.cancelled = true;
      break;
    }
    std::vector<bool> bits(n);
    for (std::size_t k = 0; k < n; ++k) {
      // include the all-zero state as the first stimulus
      bits[k] = s == 0 ? false : bit(rng);
    }
    const vEdge input = pkg.makeBasisState(n, bits);
    pkg.incRef(input);
    bridge::BuildStats s1;
    bridge::BuildStats s2;
    const vEdge out1 = bridge::simulate(g1, input, pkg, s1);
    pkg.incRef(out1);
    const vEdge out2 = bridge::simulate(g2, input, pkg, s2);
    pkg.incRef(out2);
    result.gatesApplied += s1.appliedGates + s2.appliedGates;
    result.maxNodes =
        std::max({result.maxNodes, s1.maxNodes, s2.maxNodes});
    const double fid = pkg.fidelity(out1, out2);
    pkg.decRef(input);
    pkg.decRef(out1);
    pkg.decRef(out2);
    if (std::abs(fid - 1.) > tol) {
      result.equivalence = Equivalence::NotEquivalent;
      break;
    }
  }
  pkg.garbageCollect();
  span.arg("maxNodes", result.maxNodes);
  span.arg("gatesApplied", result.gatesApplied);
  span.arg("result", toString(result.equivalence));
  return result;
}

} // namespace qdd::verify
