#include "qdd/service/Deadline.hpp"

namespace qdd::service {

DeadlineTimer::DeadlineTimer() : worker([this] { loop(); }) {}

DeadlineTimer::~DeadlineTimer() {
  {
    const std::lock_guard<std::mutex> lock(mutex);
    stopping = true;
  }
  cv.notify_all();
  worker.join();
}

exec::CancellationToken DeadlineTimer::arm(std::int64_t deadlineMs) {
  exec::CancellationToken token;
  {
    const std::lock_guard<std::mutex> lock(mutex);
    ++armed;
    if (deadlineMs <= 0) {
      token.cancel();
      return token;
    }
    heap.push(Entry{Clock::now() + std::chrono::milliseconds(deadlineMs),
                    token});
  }
  cv.notify_all();
  return token;
}

std::size_t DeadlineTimer::armedCount() const {
  const std::lock_guard<std::mutex> lock(mutex);
  return armed;
}

void DeadlineTimer::loop() {
  std::unique_lock<std::mutex> lock(mutex);
  while (!stopping) {
    if (heap.empty()) {
      cv.wait(lock, [this] { return stopping || !heap.empty(); });
      continue;
    }
    const Clock::time_point next = heap.top().fireAt;
    if (Clock::now() >= next) {
      heap.top().token.cancel();
      heap.pop();
      continue;
    }
    cv.wait_until(lock, next);
  }
}

} // namespace qdd::service
