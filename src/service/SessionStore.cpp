#include "qdd/service/SessionStore.hpp"

#include "qdd/dd/Serialization.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace qdd::service {

namespace {

std::size_t roundUpPow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) {
    p <<= 1U;
  }
  return p;
}

/// FNV-1a — cheap, well-distributed for short "s<n>" ids, and dependency-
/// free (std::hash<std::string> is not guaranteed stable across libstdc++
/// versions, and shard assignment shows up in metrics).
std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

} // namespace

SessionStore::SessionStore(SessionStoreOptions opts) : options(std::move(opts)) {
  const std::size_t n =
      std::min<std::size_t>(roundUpPow2(std::max<std::size_t>(1, options.shards)),
                            256);
  shards.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards.push_back(std::make_unique<Shard>());
  }
}

SessionStore::SessionStore(std::size_t maxSessions, std::int64_t ttlMs)
    : SessionStore([&] {
        SessionStoreOptions opts;
        opts.maxSessions = maxSessions;
        opts.ttlMs = ttlMs;
        return opts;
      }()) {}

SessionStore::Shard& SessionStore::shardOf(const std::string& id) {
  return *shards[fnv1a(id) & (shards.size() - 1)];
}

const SessionStore::Shard& SessionStore::shardOf(const std::string& id) const {
  return *shards[fnv1a(id) & (shards.size() - 1)];
}

std::int64_t SessionStore::nowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::shared_ptr<SessionStore::Entry> SessionStore::create(std::string kind) {
  evictExpired();
  {
    const std::lock_guard<std::mutex> lock(admissionMutex);
    if (liveN.load(std::memory_order_relaxed) + pendingN >=
        options.maxSessions) {
      return nullptr;
    }
    ++pendingN;
  }
  auto entry = std::make_shared<Entry>();
  entry->id = "s" + std::to_string(nextId.fetch_add(1));
  entry->kind = std::move(kind);
  entry->lastUsedMs.store(nowMs(), std::memory_order_relaxed);
  return entry;
}

void SessionStore::publish(const std::shared_ptr<Entry>& entry) {
  {
    Shard& shard = shardOf(entry->id);
    const std::lock_guard<std::mutex> lock(shard.mutex);
    shard.entries[entry->id] = entry;
  }
  {
    const std::lock_guard<std::mutex> lock(admissionMutex);
    --pendingN;
  }
  liveN.fetch_add(1, std::memory_order_relaxed);
  createdN.fetch_add(1, std::memory_order_relaxed);
  residentN.fetch_add(1, std::memory_order_relaxed);
  enforceBudget();
}

void SessionStore::abandon(const std::shared_ptr<Entry>& entry) {
  mem::StatsRegistry stats;
  if (entry->package) {
    stats = entry->package->statistics();
  }
  {
    const std::lock_guard<std::mutex> lock(admissionMutex);
    --pendingN;
  }
  Shard& shard = shardOf(entry->id);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  shard.retired.merge(stats);
}

std::shared_ptr<SessionStore::Entry>
SessionStore::find(const std::string& id) {
  Shard& shard = shardOf(id);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.entries.find(id);
  if (it == shard.entries.end()) {
    return nullptr;
  }
  it->second->lastUsedMs.store(nowMs(), std::memory_order_relaxed);
  return it->second;
}

bool SessionStore::erase(const std::string& id) {
  std::shared_ptr<Entry> removed;
  {
    Shard& shard = shardOf(id);
    const std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.entries.find(id);
    if (it == shard.entries.end()) {
      return false;
    }
    removed = it->second;
    shard.entries.erase(it);
  }
  liveN.fetch_sub(1, std::memory_order_relaxed);
  evictedN.fetch_add(1, std::memory_order_relaxed);
  retire(removed);
  return true;
}

std::size_t SessionStore::evictExpired() {
  std::size_t evictedHere = 0;
  if (options.ttlMs > 0) {
    const std::int64_t now = nowMs();
    std::vector<std::shared_ptr<Entry>> expired;
    for (const auto& shard : shards) {
      const std::lock_guard<std::mutex> lock(shard->mutex);
      for (auto it = shard->entries.begin(); it != shard->entries.end();) {
        const std::int64_t idle =
            now - it->second->lastUsedMs.load(std::memory_order_relaxed);
        if (idle > options.ttlMs) {
          expired.push_back(it->second);
          it = shard->entries.erase(it);
        } else {
          ++it;
        }
      }
    }
    liveN.fetch_sub(expired.size(), std::memory_order_relaxed);
    evictedN.fetch_add(expired.size(), std::memory_order_relaxed);
    evictedHere = expired.size();
    // oldest first, for a deterministic retirement order
    std::sort(expired.begin(), expired.end(),
              [](const auto& a, const auto& b) {
                return a->lastUsedMs.load(std::memory_order_relaxed) <
                       b->lastUsedMs.load(std::memory_order_relaxed);
              });
    for (const auto& entry : expired) {
      retire(entry);
    }
  }

  // idle-driven spilling: cold-but-not-yet-expired sessions go to disk
  if (spillEnabled() && options.spillAfterMs > 0) {
    const std::int64_t now = nowMs();
    std::vector<std::shared_ptr<Entry>> cold;
    for (const auto& shard : shards) {
      const std::lock_guard<std::mutex> lock(shard->mutex);
      for (const auto& [id, entry] : shard->entries) {
        if (!entry->spilled.load(std::memory_order_relaxed) &&
            now - entry->lastUsedMs.load(std::memory_order_relaxed) >
                options.spillAfterMs) {
          cold.push_back(entry);
        }
      }
    }
    for (const auto& entry : cold) {
      trySpill(entry);
    }
  }

  enforceBudget();
  return evictedHere;
}

std::size_t SessionStore::enforceBudget() {
  if (!spillEnabled() || options.maxResident == 0) {
    return 0;
  }
  if (residentN.load(std::memory_order_relaxed) <= options.maxResident) {
    return 0;
  }
  // snapshot resident entries, coldest first
  std::vector<std::shared_ptr<Entry>> resident;
  for (const auto& shard : shards) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    for (const auto& [id, entry] : shard->entries) {
      if (!entry->spilled.load(std::memory_order_relaxed)) {
        resident.push_back(entry);
      }
    }
  }
  std::sort(resident.begin(), resident.end(),
            [](const auto& a, const auto& b) {
              return a->lastUsedMs.load(std::memory_order_relaxed) <
                     b->lastUsedMs.load(std::memory_order_relaxed);
            });
  std::size_t spilledHere = 0;
  for (const auto& entry : resident) {
    if (residentN.load(std::memory_order_relaxed) <= options.maxResident) {
      break;
    }
    if (trySpill(entry)) {
      ++spilledHere;
    }
    // busy entries (try_lock failed) are simply skipped — a session
    // currently serving a request is by definition not cold
  }
  return spilledHere;
}

bool SessionStore::spillNow(const std::string& id) {
  if (!spillEnabled()) {
    return false;
  }
  const auto entry = find(id);
  if (entry == nullptr) {
    return false;
  }
  return trySpill(entry);
}

bool SessionStore::trySpill(const std::shared_ptr<Entry>& entry) {
  mem::StatsRegistry stats;
  bool didSpill = false;
  {
    std::unique_lock<std::mutex> lock(entry->mutex, std::try_to_lock);
    if (!lock.owns_lock()) {
      return false;
    }
    didSpill = spillLocked(*entry, stats);
  }
  if (didSpill) {
    Shard& shard = shardOf(entry->id);
    const std::lock_guard<std::mutex> lock(shard.mutex);
    shard.retired.merge(stats);
  }
  return didSpill;
}

bool SessionStore::spillLocked(Entry& entry, mem::StatsRegistry& stats) {
  if (!entry.package || entry.spilled.load(std::memory_order_relaxed)) {
    return false;
  }

  auto image = std::make_unique<SpillImage>();
  std::string text;
  if (entry.simulation) {
    const sim::SimulationSession& s = *entry.simulation;
    text = serializeToString(s.state());
    image->circuit =
        std::make_unique<ir::QuantumComputation>(s.circuit());
    image->position = s.position();
    image->classicals = s.classicalBits();
    image->peak = s.peakNodes();
  } else if (entry.verification) {
    const verify::VerificationSession& v = *entry.verification;
    text = serializeToString(v.state(), entry.qubits);
    image->left =
        std::make_unique<ir::QuantumComputation>(v.leftCircuit());
    image->right =
        std::make_unique<ir::QuantumComputation>(v.rightCircuit());
    image->posL = v.leftPosition();
    image->posR = v.rightPosition();
    image->peak = v.peakNodes();
  } else {
    return false;
  }

  image->path = options.spillDir + "/" + entry.id + ".qdds";
  image->bytes = text.size();
  {
    std::ofstream out(image->path, std::ios::trunc);
    if (!out) {
      return false; // unwritable spill dir: stay resident
    }
    out << text;
    if (!out.flush()) {
      std::remove(image->path.c_str());
      return false;
    }
  }

  stats = entry.package->statistics();
  // session first (it decRefs into the package), then the package
  entry.simulation.reset();
  entry.verification.reset();
  entry.package.reset();
  entry.spill = std::move(image);
  entry.spilled.store(true, std::memory_order_release);

  residentN.fetch_sub(1, std::memory_order_relaxed);
  spilledNowN.fetch_add(1, std::memory_order_relaxed);
  spilledTotalN.fetch_add(1, std::memory_order_relaxed);
  spillBytesN.fetch_add(text.size(), std::memory_order_relaxed);
  return true;
}

void SessionStore::ensureResident(Entry& entry) {
  if (!entry.spilled.load(std::memory_order_acquire)) {
    return;
  }
  const SpillImage& image = *entry.spill;

  std::string text;
  {
    std::ifstream in(image.path);
    if (!in) {
      restoreFailuresN.fetch_add(1, std::memory_order_relaxed);
      throw RestoreError("session " + entry.id +
                         ": spill file unreadable: " + image.path);
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    text = buf.str();
  }

  std::unique_ptr<Package> package;
  std::unique_ptr<sim::SimulationSession> simulation;
  std::unique_ptr<verify::VerificationSession> verification;
  try {
    package = packageFactory ? packageFactory(entry.qubits)
                             : std::make_unique<Package>(entry.qubits);
    if (image.circuit) {
      simulation = std::make_unique<sim::SimulationSession>(
          *image.circuit, *package, entry.seed);
      // deserialization re-interns through the normalizing constructors,
      // so the adopted root is this package's canonical representative
      const vEdge root = deserializeVectorFromString(*package, text);
      simulation->restoreTo(root, image.position, image.classicals,
                            image.peak);
    } else {
      verification = std::make_unique<verify::VerificationSession>(
          *image.left, *image.right, *package);
      const mEdge root = deserializeMatrixFromString(*package, text);
      verification->restoreTo(root, image.posL, image.posR, image.peak);
    }
  } catch (const std::exception& e) {
    // destroy in dependency order, keep the entry spilled for a retry
    simulation.reset();
    verification.reset();
    package.reset();
    restoreFailuresN.fetch_add(1, std::memory_order_relaxed);
    throw RestoreError("session " + entry.id +
                       ": spill restore failed: " + e.what());
  }

  std::remove(image.path.c_str());
  entry.package = std::move(package);
  entry.simulation = std::move(simulation);
  entry.verification = std::move(verification);
  entry.spill.reset();
  entry.spilled.store(false, std::memory_order_release);

  residentN.fetch_add(1, std::memory_order_relaxed);
  spilledNowN.fetch_sub(1, std::memory_order_relaxed);
  restoresN.fetch_add(1, std::memory_order_relaxed);
}

void SessionStore::retire(const std::shared_ptr<Entry>& entry) {
  // A request may still be mid-flight on this session (it holds a shared_ptr
  // through the map snapshot it took); its mutex serializes us behind it.
  mem::StatsRegistry stats;
  bool wasResident = false;
  {
    const std::lock_guard<std::mutex> entryLock(entry->mutex);
    if (entry->package) {
      stats = entry->package->statistics();
      wasResident = true;
    }
    if (entry->spill) {
      std::remove(entry->spill->path.c_str());
      entry->spill.reset();
      entry->spilled.store(false, std::memory_order_relaxed);
      spilledNowN.fetch_sub(1, std::memory_order_relaxed);
    }
  }
  if (wasResident) {
    residentN.fetch_sub(1, std::memory_order_relaxed);
  }
  Shard& shard = shardOf(entry->id);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  shard.retired.merge(stats);
}

std::size_t SessionStore::size() const {
  return liveN.load(std::memory_order_relaxed);
}

std::size_t SessionStore::created() const {
  return createdN.load(std::memory_order_relaxed);
}

std::size_t SessionStore::evicted() const {
  return evictedN.load(std::memory_order_relaxed);
}

std::vector<std::size_t> SessionStore::shardSizes() const {
  std::vector<std::size_t> sizes;
  sizes.reserve(shards.size());
  for (const auto& shard : shards) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    sizes.push_back(shard->entries.size());
  }
  return sizes;
}

std::vector<std::shared_ptr<SessionStore::Entry>> SessionStore::list() const {
  std::vector<std::shared_ptr<Entry>> out;
  for (const auto& shard : shards) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    for (const auto& [id, entry] : shard->entries) {
      out.push_back(entry);
    }
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a->id < b->id;
  });
  return out;
}

mem::StatsRegistry SessionStore::retiredStats() const {
  mem::StatsRegistry merged;
  for (const auto& shard : shards) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    merged.merge(shard->retired);
  }
  return merged;
}

} // namespace qdd::service
