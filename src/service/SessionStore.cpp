#include "qdd/service/SessionStore.hpp"

#include <algorithm>

namespace qdd::service {

SessionStore::SessionStore(std::size_t maxSessions, std::int64_t ttlMs)
    : maxSessions(maxSessions), ttlMs(ttlMs) {}

std::shared_ptr<SessionStore::Entry> SessionStore::create(std::string kind) {
  evictExpired();
  const std::lock_guard<std::mutex> lock(mutex);
  if (entries.size() + pendingN >= maxSessions) {
    return nullptr;
  }
  auto entry = std::make_shared<Entry>();
  entry->id = "s" + std::to_string(nextId++);
  entry->kind = std::move(kind);
  entry->lastUsed = std::chrono::steady_clock::now();
  ++pendingN;
  return entry;
}

void SessionStore::publish(const std::shared_ptr<Entry>& entry) {
  const std::lock_guard<std::mutex> lock(mutex);
  entries[entry->id] = entry;
  --pendingN;
  ++createdN;
}

void SessionStore::abandon(const std::shared_ptr<Entry>& entry) {
  mem::StatsRegistry stats;
  if (entry->package) {
    stats = entry->package->statistics();
  }
  const std::lock_guard<std::mutex> lock(mutex);
  --pendingN;
  retired.merge(stats);
}

std::shared_ptr<SessionStore::Entry>
SessionStore::find(const std::string& id) {
  const std::lock_guard<std::mutex> lock(mutex);
  const auto it = entries.find(id);
  if (it == entries.end()) {
    return nullptr;
  }
  it->second->lastUsed = std::chrono::steady_clock::now();
  return it->second;
}

bool SessionStore::erase(const std::string& id) {
  std::shared_ptr<Entry> removed;
  {
    const std::lock_guard<std::mutex> lock(mutex);
    const auto it = entries.find(id);
    if (it == entries.end()) {
      return false;
    }
    removed = it->second;
    entries.erase(it);
    ++evictedN;
  }
  retire(removed);
  return true;
}

std::size_t SessionStore::evictExpired() {
  if (ttlMs <= 0) {
    return 0;
  }
  const auto now = std::chrono::steady_clock::now();
  std::vector<std::shared_ptr<Entry>> expired;
  {
    const std::lock_guard<std::mutex> lock(mutex);
    for (auto it = entries.begin(); it != entries.end();) {
      const auto idle = std::chrono::duration_cast<std::chrono::milliseconds>(
                            now - it->second->lastUsed)
                            .count();
      if (idle > ttlMs) {
        expired.push_back(it->second);
        it = entries.erase(it);
      } else {
        ++it;
      }
    }
    evictedN += expired.size();
  }
  // oldest first, for a deterministic retirement order
  std::sort(expired.begin(), expired.end(),
            [](const auto& a, const auto& b) {
              return a->lastUsed < b->lastUsed;
            });
  for (const auto& entry : expired) {
    retire(entry);
  }
  return expired.size();
}

void SessionStore::retire(const std::shared_ptr<Entry>& entry) {
  // A request may still be mid-flight on this session (it holds a shared_ptr
  // through the map snapshot it took); its mutex serializes us behind it.
  mem::StatsRegistry stats;
  {
    const std::lock_guard<std::mutex> entryLock(entry->mutex);
    if (entry->package) {
      stats = entry->package->statistics();
    }
  }
  const std::lock_guard<std::mutex> lock(mutex);
  retired.merge(stats);
}

std::size_t SessionStore::size() const {
  const std::lock_guard<std::mutex> lock(mutex);
  return entries.size();
}

std::size_t SessionStore::created() const {
  const std::lock_guard<std::mutex> lock(mutex);
  return createdN;
}

std::size_t SessionStore::evicted() const {
  const std::lock_guard<std::mutex> lock(mutex);
  return evictedN;
}

std::vector<std::shared_ptr<SessionStore::Entry>> SessionStore::list() const {
  const std::lock_guard<std::mutex> lock(mutex);
  std::vector<std::shared_ptr<Entry>> out;
  out.reserve(entries.size());
  for (const auto& [id, entry] : entries) {
    out.push_back(entry);
  }
  return out;
}

mem::StatsRegistry SessionStore::retiredStats() const {
  const std::lock_guard<std::mutex> lock(mutex);
  return retired;
}

} // namespace qdd::service
