#include "qdd/service/Api.hpp"

#include "qdd/exec/DDForker.hpp"
#include "qdd/exec/Portfolio.hpp"
#include "qdd/ir/Builders.hpp"
#include "qdd/obs/Obs.hpp"
#include "qdd/parser/qasm/Parser.hpp"
#include "qdd/dd/Serialization.hpp"
#include "qdd/service/RequestContext.hpp"
#include "qdd/viz/DotExporter.hpp"
#include "qdd/viz/Graph.hpp"
#include "qdd/viz/JsonExporter.hpp"
#include "qdd/viz/SvgExporter.hpp"
#include "qdd/viz/TextDump.hpp"

#include <algorithm>

namespace qdd::service {

namespace {

json::Value num(std::size_t n) {
  return json::Value::number(static_cast<double>(n));
}

/// Flattened DD of the session's current state as a json::Value (round-trip
/// through the compact exporter, so the service and the file exporters emit
/// the exact same document shape).
json::Value ddValue(const viz::Graph& graph) {
  const viz::JsonExporter exporter(10, /*compact=*/true);
  return json::Value::parse(exporter.toJson(graph));
}

viz::Graph sessionGraph(SessionStore::Entry& entry) {
  if (entry.simulation) {
    return viz::buildGraph(entry.simulation->state());
  }
  return viz::buildGraph(entry.verification->state());
}

/// Live DD node count of the session's current state (for the access-log
/// node-delta annotation). Caller holds the entry mutex.
std::int64_t liveNodes(SessionStore::Entry& entry) {
  const std::size_t n = entry.simulation
                            ? entry.simulation->currentNodes()
                            : entry.verification->currentNodes();
  return static_cast<std::int64_t>(n);
}

/// Export options from ?style=modern&labels=0&colored=1&thickness=1.
viz::ExportOptions exportOptions(const HttpRequest& request) {
  viz::ExportOptions opts;
  const auto get = [&request](const char* key,
                              const std::string& fallback) -> std::string {
    const auto it = request.query.find(key);
    return it == request.query.end() ? fallback : it->second;
  };
  if (get("style", "classic") == "modern") {
    opts.style = viz::Style::Modern;
  }
  opts.edgeLabels = get("labels", "1") != "0";
  opts.colored = get("colored", "0") == "1";
  opts.magnitudeThickness = get("thickness", "0") == "1";
  return opts;
}

json::Value parseBody(const HttpRequest& request) {
  if (request.body.empty()) {
    return json::Value::object();
  }
  try {
    return json::Value::parse(request.body);
  } catch (const json::ParseError& e) {
    throw ApiError(400, "invalid_json", e.what());
  }
}

HttpResponse ok(const json::Value& doc, int status = 200) {
  return HttpResponse::json(status, doc.dump());
}

/// 408 body: the uniform error object plus where the work stopped.
HttpResponse deadlineResponse(std::size_t stepsApplied,
                              const std::string& detail) {
  json::Value error = json::Value::object();
  error.set("code", json::Value::string("deadline_exceeded"));
  error.set("message",
            json::Value::string("deadline expired; " + detail +
                                " (work stopped at a gate boundary)"));
  error.set("status", json::Value::number(408));
  json::Value doc = json::Value::object();
  doc.set("error", std::move(error));
  doc.set("stepsApplied", num(stepsApplied));
  return HttpResponse::json(408, doc.dump());
}

SessionStoreOptions storeOptions(const ApiOptions& options) {
  SessionStoreOptions opts;
  opts.maxSessions = options.maxSessions;
  opts.ttlMs = options.sessionTtlMs;
  opts.shards = options.sessionShards;
  opts.spillDir = options.spillDir;
  opts.spillAfterMs = options.spillAfterMs;
  opts.maxResident = options.maxResidentSessions;
  return opts;
}

} // namespace

Api::Api(ApiOptions options, ServiceMetrics& metrics)
    : options(options), metrics(metrics), store(storeOptions(options)),
      incidentLog(options.maxIncidents, options.incidentDir) {
  // restored packages get the same construction as createSession's
  store.setPackageFactory([](std::size_t qubits) {
    auto package = std::make_unique<Package>(qubits);
    exec::attachSharedForker(*package);
    return package;
  });
}

void Api::install(Router& router) {
  const auto wrap = [this](auto method) {
    return [this, method](const HttpRequest& request,
                          const PathParams& params) -> HttpResponse {
      try {
        return method(*this, request, params);
      } catch (const ApiError& e) {
        return errorResponse(e.status, e.code, e.what());
      }
    };
  };

  router.add("POST", "/v1/sessions",
             wrap([](Api& api, const HttpRequest& r, const PathParams&) {
               return api.createSession(r);
             }));
  router.add("GET", "/v1/sessions",
             wrap([](Api& api, const HttpRequest&, const PathParams&) {
               return api.listSessions();
             }));
  router.add("GET", "/v1/sessions/{id}",
             wrap([](Api& api, const HttpRequest&, const PathParams& p) {
               return api.getSession(p.at("id"));
             }));
  router.add("DELETE", "/v1/sessions/{id}",
             wrap([](Api& api, const HttpRequest&, const PathParams& p) {
               return api.deleteSession(p.at("id"));
             }));
  router.add("POST", "/v1/sessions/{id}/step",
             wrap([](Api& api, const HttpRequest& r, const PathParams& p) {
               return api.stepSession(p.at("id"), r);
             }));
  router.add("POST", "/v1/sessions/{id}/back",
             wrap([](Api& api, const HttpRequest& r, const PathParams& p) {
               return api.backSession(p.at("id"), r);
             }));
  router.add("POST", "/v1/sessions/{id}/reset",
             wrap([](Api& api, const HttpRequest&, const PathParams& p) {
               return api.resetSession(p.at("id"));
             }));
  router.add("POST", "/v1/sessions/{id}/run",
             wrap([](Api& api, const HttpRequest& r, const PathParams& p) {
               return api.runSession(p.at("id"), r);
             }));
  router.add("GET", "/v1/sessions/{id}/dd",
             wrap([](Api& api, const HttpRequest& r, const PathParams& p) {
               return api.exportDd(p.at("id"), r);
             }));
  router.add("POST", "/v1/verify",
             wrap([](Api& api, const HttpRequest& r, const PathParams&) {
               return api.verifyOnce(r);
             }));
  router.add("GET", "/healthz",
             wrap([](Api& api, const HttpRequest&, const PathParams&) {
               return api.healthz();
             }));
  router.add("GET", "/metrics",
             wrap([](Api& api, const HttpRequest& r, const PathParams&) {
               return api.metricsDoc(r);
             }));
  router.add("GET", "/v1/incidents",
             wrap([](Api& api, const HttpRequest&, const PathParams&) {
               return api.listIncidents();
             }));
  router.add("GET", "/v1/incidents/{id}",
             wrap([](Api& api, const HttpRequest&, const PathParams& p) {
               return api.getIncident(p.at("id"));
             }));
}

// --- circuit admission -------------------------------------------------------

ir::QuantumComputation Api::buildCircuit(const json::Value& spec) const {
  if (!spec.isObject()) {
    throw ApiError(400, "invalid_request", "circuit spec must be an object");
  }

  ir::QuantumComputation qc;
  if (const json::Value* qasm = spec.find("qasm")) {
    if (!qasm->isString()) {
      throw ApiError(400, "invalid_request", "\"qasm\" must be a string");
    }
    try {
      qc = qasm::parse(qasm->asString(), "request");
    } catch (const std::exception& e) {
      throw ApiError(400, "invalid_qasm", e.what());
    }
  } else if (const json::Value* builder = spec.find("builder")) {
    const std::string name = builder->getString("name", "");
    const auto qubits =
        static_cast<std::size_t>(builder->getNumber("qubits", 3));
    if (qubits > options.maxQubits) {
      throw ApiError(413, "circuit_too_large",
                     "builder requests " + std::to_string(qubits) +
                         " qubits (limit " +
                         std::to_string(options.maxQubits) + ")");
    }
    namespace b = ir::builders;
    if (name == "bell") {
      qc = b::bell();
    } else if (name == "ghz") {
      qc = b::ghz(qubits);
    } else if (name == "qft") {
      qc = b::qft(qubits, builder->getBool("swaps", true));
    } else if (name == "wstate") {
      qc = b::wState(qubits);
    } else if (name == "grover") {
      qc = b::grover(
          qubits,
          static_cast<std::uint64_t>(builder->getNumber("marked", 0)),
          static_cast<std::size_t>(builder->getNumber("iterations", 0)));
    } else if (name == "bv") {
      qc = b::bernsteinVazirani(
          qubits, static_cast<std::uint64_t>(builder->getNumber("s", 1)));
    } else if (name == "random") {
      qc = b::randomCliffordT(
          qubits, static_cast<std::size_t>(builder->getNumber("depth", 10)),
          static_cast<std::uint64_t>(builder->getNumber("seed", 1)));
    } else if (name == "qpe") {
      qc = b::phaseEstimation(
          qubits, static_cast<std::uint64_t>(builder->getNumber("k", 1)));
    } else if (name == "dj") {
      qc = b::deutschJozsa(qubits, builder->getBool("balanced", true));
    } else if (name == "adder") {
      qc = b::rippleCarryAdder(qubits);
    } else {
      throw ApiError(400, "unknown_builder",
                     "unknown builder \"" + name + "\"");
    }

    // `repeat` concatenates R copies of the op list — the cheap way to make
    // a circuit of any length (the deadline tests rely on this to build
    // runs that provably cannot finish inside a millisecond budget).
    const auto repeat =
        static_cast<std::size_t>(builder->getNumber("repeat", 1));
    if (repeat > 1) {
      const std::size_t base = qc.size();
      // division instead of `base * repeat > max` — the product can wrap
      // std::size_t for absurd repeat values and sneak past the cap
      if (base != 0 && repeat > options.maxOperations / base) {
        throw ApiError(413, "circuit_too_large",
                       "repeat of " + std::to_string(repeat) + " x " +
                           std::to_string(base) +
                           " operations exceeds the limit (" +
                           std::to_string(options.maxOperations) + ")");
      }
      for (std::size_t r = 1; r < repeat; ++r) {
        for (std::size_t k = 0; k < base; ++k) {
          qc.emplaceBack(qc.at(k).clone());
        }
      }
    }
  } else {
    throw ApiError(400, "invalid_request",
                   "circuit spec needs \"qasm\" or \"builder\"");
  }

  if (spec.getBool("decompose", false)) {
    qc = ir::decomposeToNativeGates(qc, /*insertBarriers=*/true);
  }

  if (qc.numQubits() > options.maxQubits) {
    throw ApiError(413, "circuit_too_large",
                   "circuit has " + std::to_string(qc.numQubits()) +
                       " qubits (limit " +
                       std::to_string(options.maxQubits) + ")");
  }
  if (qc.size() > options.maxOperations) {
    throw ApiError(413, "circuit_too_large",
                   "circuit has " + std::to_string(qc.size()) +
                       " operations (limit " +
                       std::to_string(options.maxOperations) + ")");
  }
  return qc;
}

std::int64_t Api::clampDeadline(const json::Value& body) const {
  const auto requested = static_cast<std::int64_t>(body.getNumber(
      "deadlineMs", static_cast<double>(options.defaultDeadlineMs)));
  return std::min(requested, options.maxDeadlineMs);
}

std::shared_ptr<SessionStore::Entry> Api::require(const std::string& id) {
  auto entry = store.find(id);
  if (entry == nullptr) {
    throw ApiError(404, "session_not_found", "no session \"" + id + "\"");
  }
  return entry;
}

std::unique_lock<std::mutex> Api::lockSession(SessionStore::Entry& entry) {
  std::unique_lock<std::mutex> lock(entry.mutex);
  try {
    store.ensureResident(entry);
  } catch (const RestoreError& e) {
    throw ApiError(500, "restore_failed", e.what());
  }
  return lock;
}

// --- documents ---------------------------------------------------------------

json::Value Api::sessionDoc(SessionStore::Entry& entry,
                            bool includeDd) const {
  json::Value doc = json::Value::object();
  doc.set("id", json::Value::string(entry.id));
  doc.set("kind", json::Value::string(entry.kind));
  doc.set("name", json::Value::string(entry.name));
  doc.set("qubits", num(entry.qubits));
  if (entry.simulation) {
    const sim::SimulationSession& s = *entry.simulation;
    doc.set("operations", num(s.numOperations()));
    doc.set("position", num(s.position()));
    doc.set("atEnd", json::Value::boolean(s.atEnd()));
    doc.set("nodes", num(s.currentNodes()));
    doc.set("peakNodes", num(s.peakNodes()));
    if (!s.stepProfiles().empty()) {
      json::Value profile = json::Value::object();
      profile.set("durationUs",
                  json::Value::number(s.stepProfiles().back().durationUs));
      doc.set("lastStep", std::move(profile));
    }
    if (entry.qubits <= 10) {
      doc.set("state", json::Value::string(
                           viz::toDirac(*entry.package, s.state())));
    }
  } else {
    verify::VerificationSession& v = *entry.verification;
    doc.set("leftPosition", num(v.leftPosition()));
    doc.set("rightPosition", num(v.rightPosition()));
    doc.set("leftSize", num(v.leftSize()));
    doc.set("rightSize", num(v.rightSize()));
    doc.set("finished", json::Value::boolean(v.finished()));
    doc.set("nodes", num(v.currentNodes()));
    doc.set("peakNodes", num(v.peakNodes()));
    if (v.finished()) {
      doc.set("verdict",
              json::Value::string(verify::toString(v.currentVerdict())));
    }
  }
  if (includeDd) {
    doc.set("dd", ddValue(sessionGraph(entry)));
  }
  return doc;
}

// --- handlers ----------------------------------------------------------------

HttpResponse Api::createSession(const HttpRequest& request) {
  const json::Value body = parseBody(request);
  const std::string kind = body.getString("kind", "simulation");
  if (kind != "simulation" && kind != "verification") {
    throw ApiError(400, "invalid_request",
                   "\"kind\" must be \"simulation\" or \"verification\"");
  }

  // Build circuits before admission, so an over-limit request never burns a
  // session slot.
  ir::QuantumComputation left;
  ir::QuantumComputation right;
  if (kind == "simulation") {
    left = buildCircuit(body);
  } else {
    const json::Value* l = body.find("left");
    const json::Value* r = body.find("right");
    if (l == nullptr || r == nullptr) {
      throw ApiError(400, "invalid_request",
                     "verification needs \"left\" and \"right\" specs");
    }
    left = buildCircuit(*l);
    right = buildCircuit(*r);
    if (left.numQubits() != right.numQubits()) {
      throw ApiError(400, "invalid_request",
                     "left and right act on different qubit counts");
    }
  }

  // create() only reserves a slot + id; the entry stays invisible to
  // find()/list() until publish(), so no request can ever observe a
  // half-constructed session (null simulation AND null verification).
  auto entry = store.create(kind);
  if (entry == nullptr) {
    throw ApiError(429, "too_many_sessions",
                   "session limit of " + std::to_string(store.capacity()) +
                       " reached; delete a session or retry later");
  }

  try {
    entry->qubits = std::max<std::size_t>(left.numQubits(), 1);
    entry->package = std::make_unique<Package>(entry->qubits);
    // No-op for serial packages; under QDD_APPLY=parallel this forks DD
    // subproblems of this session onto the shared pool.
    exec::attachSharedForker(*entry->package);
    if (kind == "simulation") {
      entry->name = left.name().empty() ? "circuit" : left.name();
      // keep the seed on the entry: a spill/restore cycle reconstructs the
      // session with the same RNG stream
      entry->seed = static_cast<std::uint64_t>(body.getNumber("seed", 0));
      entry->simulation = std::make_unique<sim::SimulationSession>(
          left, *entry->package, entry->seed);
    } else {
      entry->name = (left.name().empty() ? "left" : left.name()) + " vs " +
                    (right.name().empty() ? "right" : right.name());
      entry->verification = std::make_unique<verify::VerificationSession>(
          left, right, *entry->package);
    }
  } catch (const std::exception& e) {
    store.abandon(entry);
    throw ApiError(400, "invalid_circuit", e.what());
  }

  // Snapshot the response while the entry is still private, then publish.
  json::Value doc = sessionDoc(*entry, /*includeDd=*/true);
  requestAnnotations().noteSession(entry->id);
  requestAnnotations().noteNodeDelta(liveNodes(*entry));
  store.publish(entry);
  metrics.countSessionCreated();
  QDD_OBS_COUNTER("service/sessions_created",
                  static_cast<double>(store.created()));
  return ok(doc, 201);
}

HttpResponse Api::listSessions() {
  store.evictExpired();
  json::Value list = json::Value::array();
  for (const auto& entry : store.list()) {
    json::Value item = json::Value::object();
    item.set("id", json::Value::string(entry->id));
    item.set("kind", json::Value::string(entry->kind));
    item.set("name", json::Value::string(entry->name));
    item.set("qubits", num(entry->qubits));
    list.push(std::move(item));
  }
  json::Value doc = json::Value::object();
  doc.set("sessions", std::move(list));
  doc.set("capacity", num(store.capacity()));
  return ok(doc);
}

HttpResponse Api::getSession(const std::string& id) {
  auto entry = require(id);
  const auto lock = lockSession(*entry);
  return ok(sessionDoc(*entry, /*includeDd=*/false));
}

HttpResponse Api::deleteSession(const std::string& id) {
  if (!store.erase(id)) {
    throw ApiError(404, "session_not_found", "no session \"" + id + "\"");
  }
  json::Value doc = json::Value::object();
  doc.set("deleted", json::Value::boolean(true));
  return ok(doc);
}

HttpResponse Api::stepSession(const std::string& id,
                              const HttpRequest& request) {
  const json::Value body = parseBody(request);
  const auto count =
      std::max<std::size_t>(1, static_cast<std::size_t>(
                                   body.getNumber("count", 1)));
  auto entry = require(id);
  const auto lock = lockSession(*entry);
  requestAnnotations().noteSession(id);
  const std::int64_t nodesBefore = liveNodes(*entry);
  std::size_t applied = 0;
  if (entry->simulation) {
    for (std::size_t k = 0; k < count; ++k) {
      if (!entry->simulation->stepForward()) {
        break;
      }
      ++applied;
    }
  } else {
    const std::string side = body.getString("side", "left");
    if (side != "left" && side != "right") {
      throw ApiError(400, "invalid_request",
                     "\"side\" must be \"left\" or \"right\"");
    }
    for (std::size_t k = 0; k < count; ++k) {
      const bool stepped = side == "left"
                               ? entry->verification->stepLeft()
                               : entry->verification->stepRight();
      if (!stepped) {
        break;
      }
      ++applied;
    }
  }
  ++entry->requests;
  requestAnnotations().noteNodeDelta(liveNodes(*entry) - nodesBefore);
  json::Value doc = sessionDoc(*entry, /*includeDd=*/true);
  doc.set("stepsApplied", num(applied));
  return ok(doc);
}

HttpResponse Api::backSession(const std::string& id,
                              const HttpRequest& request) {
  const json::Value body = parseBody(request);
  const auto count =
      std::max<std::size_t>(1, static_cast<std::size_t>(
                                   body.getNumber("count", 1)));
  auto entry = require(id);
  const auto lock = lockSession(*entry);
  requestAnnotations().noteSession(id);
  const std::int64_t nodesBefore = liveNodes(*entry);
  std::size_t undone = 0;
  for (std::size_t k = 0; k < count; ++k) {
    const bool stepped = entry->simulation
                             ? entry->simulation->stepBackward()
                             : entry->verification->stepBack();
    if (!stepped) {
      break;
    }
    ++undone;
  }
  ++entry->requests;
  requestAnnotations().noteNodeDelta(liveNodes(*entry) - nodesBefore);
  json::Value doc = sessionDoc(*entry, /*includeDd=*/true);
  doc.set("stepsUndone", num(undone));
  return ok(doc);
}

HttpResponse Api::resetSession(const std::string& id) {
  auto entry = require(id);
  const auto lock = lockSession(*entry);
  requestAnnotations().noteSession(id);
  const std::int64_t nodesBefore = liveNodes(*entry);
  if (entry->simulation) {
    entry->simulation->runToStart();
  } else {
    // rewindToStart (not a stepBack loop): it also rewinds sessions whose
    // snapshot history was dropped by a spill/restore cycle
    entry->verification->rewindToStart();
  }
  ++entry->requests;
  requestAnnotations().noteNodeDelta(liveNodes(*entry) - nodesBefore);
  return ok(sessionDoc(*entry, /*includeDd=*/true));
}

HttpResponse Api::runSession(const std::string& id,
                             const HttpRequest& request) {
  const json::Value body = parseBody(request);
  const std::int64_t deadlineMs = clampDeadline(body);
  auto entry = require(id);
  const auto lock = lockSession(*entry);
  ++entry->requests;
  requestAnnotations().noteSession(id);
  const std::int64_t nodesBefore = liveNodes(*entry);

  const exec::CancellationToken token = timer.arm(deadlineMs);
  if (entry->simulation) {
    sim::SimulationSession& s = *entry->simulation;
    std::size_t steps = 0;
    // runToEnd stops after "special" operations (barriers, measurements,
    // resets); keep going until the circuit ends or the deadline fires.
    while (!s.atEnd() && !token.cancelled()) {
      steps += s.runToEnd(token.flag());
    }
    requestAnnotations().noteNodeDelta(liveNodes(*entry) - nodesBefore);
    if (!s.atEnd() && token.cancelled()) {
      metrics.countDeadlineTimeout();
      QDD_OBS_COUNTER("service/deadline_timeouts",
                      static_cast<double>(metrics.deadlineTimeouts()));
      return deadlineResponse(steps, "simulation stopped at operation " +
                                         std::to_string(s.position()) +
                                         " of " +
                                         std::to_string(s.numOperations()));
    }
    json::Value doc = sessionDoc(*entry, /*includeDd=*/true);
    doc.set("stepsApplied", num(steps));
    return ok(doc);
  }

  verify::VerificationSession& v = *entry->verification;
  const std::size_t before = v.leftPosition() + v.rightPosition();
  const verify::CheckResult result = v.runToCompletion(token.flag());
  const std::size_t steps = v.leftPosition() + v.rightPosition() - before;
  requestAnnotations().noteNodeDelta(liveNodes(*entry) - nodesBefore);
  if (result.cancelled) {
    metrics.countDeadlineTimeout();
    QDD_OBS_COUNTER("service/deadline_timeouts",
                    static_cast<double>(metrics.deadlineTimeouts()));
    return deadlineResponse(
        steps, "verification stopped at " +
                   std::to_string(v.leftPosition()) + "/" +
                   std::to_string(v.rightPosition()) + " gates applied");
  }
  json::Value doc = sessionDoc(*entry, /*includeDd=*/true);
  doc.set("stepsApplied", num(steps));
  doc.set("equivalence",
          json::Value::string(verify::toString(result.equivalence)));
  doc.set("maxNodes", num(result.maxNodes));
  return ok(doc);
}

HttpResponse Api::exportDd(const std::string& id,
                           const HttpRequest& request) {
  auto entry = require(id);
  const auto fmtIt = request.query.find("fmt");
  const std::string fmt = fmtIt == request.query.end() ? "json"
                                                       : fmtIt->second;
  const auto lock = lockSession(*entry);
  ++entry->requests;
  requestAnnotations().noteSession(id);
  HttpResponse response;
  if (fmt == "bin") {
    // the dd::Serialization v2 encoding — the exact bytes a spill file
    // holds, and re-internable into any package via deserialize*FromString
    response.contentType = "application/x-qdd";
    response.body = entry->simulation
                        ? serializeToString(entry->simulation->state())
                        : serializeToString(entry->verification->state(),
                                            entry->qubits);
    return response;
  }
  const viz::Graph graph = sessionGraph(*entry);
  if (fmt == "json") {
    const bool compact = request.query.count("compact") > 0;
    response.body = viz::JsonExporter(10, compact).toJson(graph);
  } else if (fmt == "dot") {
    response.contentType = "text/vnd.graphviz";
    response.body = viz::DotExporter(exportOptions(request)).toDot(graph);
  } else if (fmt == "svg") {
    response.contentType = "image/svg+xml";
    response.body = viz::SvgExporter(exportOptions(request)).toSvg(graph);
  } else {
    throw ApiError(400, "invalid_request",
                   "fmt must be json, dot, svg, or bin (got \"" + fmt +
                       "\")");
  }
  return response;
}

HttpResponse Api::verifyOnce(const HttpRequest& request) {
  const json::Value body = parseBody(request);
  const json::Value* l = body.find("left");
  const json::Value* r = body.find("right");
  if (l == nullptr || r == nullptr) {
    throw ApiError(400, "invalid_request",
                   "/v1/verify needs \"left\" and \"right\" specs");
  }
  const ir::QuantumComputation left = buildCircuit(*l);
  const ir::QuantumComputation right = buildCircuit(*r);
  if (left.numQubits() != right.numQubits()) {
    throw ApiError(400, "invalid_request",
                   "left and right act on different qubit counts");
  }

  exec::PortfolioOptions popts;
  popts.workers =
      static_cast<std::size_t>(body.getNumber("workers", 0));
  popts.includeSimulation = body.getBool("simulation", true);
  popts.seed = static_cast<std::uint64_t>(body.getNumber("seed", 0));
  popts.cancel = timer.arm(clampDeadline(body));

  exec::PortfolioResult result;
  try {
    result = exec::checkPortfolio(left, right, popts);
  } catch (const std::exception& e) {
    throw ApiError(400, "invalid_circuit", e.what());
  }
  if (result.cancelled) {
    metrics.countDeadlineTimeout();
    QDD_OBS_COUNTER("service/deadline_timeouts",
                    static_cast<double>(metrics.deadlineTimeouts()));
    return deadlineResponse(0, "portfolio check abandoned after " +
                                   std::to_string(result.wallMs) + " ms");
  }

  json::Value doc = json::Value::object();
  doc.set("equivalence",
          json::Value::string(verify::toString(result.result.equivalence)));
  doc.set("winner", json::Value::string(result.winner));
  doc.set("wallMs", json::Value::number(result.wallMs));
  doc.set("maxNodes", num(result.result.maxNodes));
  doc.set("gatesApplied", num(result.result.gatesApplied));
  json::Value entries = json::Value::array();
  for (const auto& entry : result.entries) {
    json::Value e = json::Value::object();
    e.set("name", json::Value::string(entry.name));
    e.set("wallMs", json::Value::number(entry.wallMs));
    e.set("conclusive", json::Value::boolean(entry.conclusive));
    e.set("equivalence",
          json::Value::string(verify::toString(entry.result.equivalence)));
    entries.push(std::move(e));
  }
  doc.set("entries", std::move(entries));
  return ok(doc);
}

HttpResponse Api::healthz() {
  const bool draining = drainingProbe && drainingProbe();
  json::Value doc = json::Value::object();
  doc.set("status", json::Value::string(draining ? "draining" : "ok"));
  doc.set("sessions", num(store.size()));
  doc.set("capacity", num(store.capacity()));
  if (store.spillEnabled()) {
    doc.set("resident", num(store.residentCount()));
    doc.set("spilled", num(store.spilledCount()));
  }
  return ok(doc);
}

mem::StatsRegistry Api::ddStats() const {
  // Retired packages plus whichever live sessions are idle right now (busy
  // ones are skipped rather than blocked behind a long-running request).
  mem::StatsRegistry dd = store.retiredStats();
  for (const auto& entry : store.list()) {
    const std::unique_lock<std::mutex> lock(entry->mutex, std::try_to_lock);
    if (lock.owns_lock() && entry->package) {
      dd.merge(entry->package->statistics());
    }
  }
  return dd;
}

HttpResponse Api::metricsDoc(const HttpRequest& request) {
  const auto fmt = request.query.find("fmt");
  if (fmt != request.query.end() && fmt->second == "prom") {
    HttpResponse response;
    response.contentType = "text/plain; version=0.0.4";
    response.body = prometheusDoc();
    return response;
  }
  if (fmt != request.query.end() && fmt->second != "json") {
    throw ApiError(400, "invalid_request",
                   "fmt must be json or prom (got \"" + fmt->second + "\")");
  }

  json::Value doc = json::Value::object();
  doc.set("service", metrics.toJson());

  json::Value sess = json::Value::object();
  sess.set("live", num(store.size()));
  sess.set("created", num(store.created()));
  sess.set("evicted", num(store.evicted()));
  sess.set("deadlinesArmed", num(timer.armedCount()));
  sess.set("shards", num(store.shardCount()));
  sess.set("resident", num(store.residentCount()));
  sess.set("spilled", num(store.spilledCount()));
  sess.set("spilledTotal", num(store.spilledTotal()));
  sess.set("restores", num(store.restores()));
  sess.set("restoreFailures", num(store.restoreFailures()));
  sess.set("spillBytesTotal", num(store.spillBytesTotal()));
  doc.set("sessions", std::move(sess));

  json::Value inc = json::Value::object();
  inc.set("captured", num(incidentLog.captured()));
  inc.set("retained", num(incidentLog.retained()));
  doc.set("incidents", std::move(inc));

  doc.set("dd", json::Value::parse(ddStats().toJson(/*pretty=*/false)));

  if (aggregator) {
    doc.set("obs", json::Value::parse(aggregator->toJson()));
  }
  return ok(doc);
}

std::string Api::prometheusDoc() const {
  std::string out = metrics.prometheus();

  // --- session store ---
  prom::family(out, "qdd_sessions_live", "gauge",
               "Sessions currently stored.");
  prom::sample(out, "qdd_sessions_live", "",
               static_cast<double>(store.size()));
  prom::family(out, "qdd_sessions_capacity", "gauge",
               "Session admission cap.");
  prom::sample(out, "qdd_sessions_capacity", "",
               static_cast<double>(store.capacity()));
  prom::family(out, "qdd_deadlines_armed", "gauge",
               "Deadline timers currently armed.");
  prom::sample(out, "qdd_deadlines_armed", "",
               static_cast<double>(timer.armedCount()));

  // --- network front-end ---
  prom::family(out, "qdd_net_open_connections", "gauge",
               "Connections currently open on the network front-end.");
  prom::sample(out, "qdd_net_open_connections", "",
               openConnectionsProbe
                   ? static_cast<double>(openConnectionsProbe())
                   : 0.);

  // --- session spill tier ---
  prom::family(out, "qdd_service_sessions_resident", "gauge",
               "Sessions currently holding a live DD package.");
  prom::sample(out, "qdd_service_sessions_resident", "",
               static_cast<double>(store.residentCount()));
  prom::family(out, "qdd_service_sessions_spilled", "gauge",
               "Sessions currently spilled to disk.");
  prom::sample(out, "qdd_service_sessions_spilled", "",
               static_cast<double>(store.spilledCount()));
  prom::family(out, "qdd_service_sessions_spilled_total", "counter",
               "Sessions spilled to disk since start.");
  prom::sample(out, "qdd_service_sessions_spilled_total", "",
               static_cast<double>(store.spilledTotal()));
  prom::family(out, "qdd_service_session_restores_total", "counter",
               "Spilled sessions transparently restored on touch.");
  prom::sample(out, "qdd_service_session_restores_total", "",
               static_cast<double>(store.restores()));
  prom::family(out, "qdd_service_session_restore_failures_total", "counter",
               "Restore attempts that failed (unreadable/corrupt spill).");
  prom::sample(out, "qdd_service_session_restore_failures_total", "",
               static_cast<double>(store.restoreFailures()));
  prom::family(out, "qdd_service_spill_bytes_total", "counter",
               "Bytes written to spill files since start.");
  prom::sample(out, "qdd_service_spill_bytes_total", "",
               static_cast<double>(store.spillBytesTotal()));

  // --- per-shard occupancy ---
  prom::family(out, "qdd_service_shard_sessions", "gauge",
               "Sessions stored per SessionStore shard.");
  {
    const std::vector<std::size_t> sizes = store.shardSizes();
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      prom::sample(out, "qdd_service_shard_sessions",
                   "shard=\"" + std::to_string(i) + "\"",
                   static_cast<double>(sizes[i]));
    }
  }

  // --- per-session DD size (idle sessions only; busy ones are skipped) ---
  prom::family(out, "qdd_session_nodes", "gauge",
               "Current DD nodes of each idle session.");
  prom::family(out, "qdd_session_peak_nodes", "gauge",
               "Peak DD nodes of each idle session.");
  for (const auto& entry : store.list()) {
    const std::unique_lock<std::mutex> lock(entry->mutex, std::try_to_lock);
    if (!lock.owns_lock()) {
      continue;
    }
    std::size_t nodes = 0;
    std::size_t peak = 0;
    if (entry->simulation) {
      nodes = entry->simulation->currentNodes();
      peak = entry->simulation->peakNodes();
    } else if (entry->verification) {
      nodes = entry->verification->currentNodes();
      peak = entry->verification->peakNodes();
    } else {
      continue;
    }
    const std::string labels = "session=\"" + prom::escapeLabel(entry->id) +
                               "\",kind=\"" + entry->kind + "\"";
    prom::sample(out, "qdd_session_nodes", labels,
                 static_cast<double>(nodes));
    prom::sample(out, "qdd_session_peak_nodes", labels,
                 static_cast<double>(peak));
  }

  // --- DD unique/real/compute tables, apply engine, GC ---
  const mem::StatsRegistry dd = ddStats();
  prom::family(out, "qdd_dd_unique_table_entries", "gauge",
               "Nodes stored per unique table.");
  prom::sample(out, "qdd_dd_unique_table_entries", "table=\"vector\"",
               static_cast<double>(dd.vectorTable.entries));
  prom::sample(out, "qdd_dd_unique_table_entries", "table=\"matrix\"",
               static_cast<double>(dd.matrixTable.entries));
  prom::family(out, "qdd_dd_unique_table_lookups_total", "counter",
               "Unique-table lookups per table.");
  prom::sample(out, "qdd_dd_unique_table_lookups_total", "table=\"vector\"",
               static_cast<double>(dd.vectorTable.lookups));
  prom::sample(out, "qdd_dd_unique_table_lookups_total", "table=\"matrix\"",
               static_cast<double>(dd.matrixTable.lookups));
  prom::family(out, "qdd_dd_unique_table_hits_total", "counter",
               "Unique-table lookups answered by an existing node.");
  prom::sample(out, "qdd_dd_unique_table_hits_total", "table=\"vector\"",
               static_cast<double>(dd.vectorTable.hits));
  prom::sample(out, "qdd_dd_unique_table_hits_total", "table=\"matrix\"",
               static_cast<double>(dd.matrixTable.hits));
  prom::family(out, "qdd_dd_unique_table_probe_length_avg", "gauge",
               "Mean open-addressing slots inspected per unique-table "
               "lookup (1.0 = every lookup hit its home slot).");
  prom::sample(out, "qdd_dd_unique_table_probe_length_avg",
               "table=\"vector\"", dd.vectorTable.avgProbeLength());
  prom::sample(out, "qdd_dd_unique_table_probe_length_avg",
               "table=\"matrix\"", dd.matrixTable.avgProbeLength());
  prom::family(out, "qdd_dd_unique_table_probe_length_max", "gauge",
               "Longest open-addressing probe chain observed.");
  prom::sample(out, "qdd_dd_unique_table_probe_length_max",
               "table=\"vector\"",
               static_cast<double>(dd.vectorTable.longestChain));
  prom::sample(out, "qdd_dd_unique_table_probe_length_max",
               "table=\"matrix\"",
               static_cast<double>(dd.matrixTable.longestChain));
  prom::family(out, "qdd_dd_unique_table_hit_ratio", "gauge",
               "Fraction of unique-table lookups answered by an existing "
               "node.");
  prom::sample(out, "qdd_dd_unique_table_hit_ratio", "table=\"vector\"",
               dd.vectorTable.hitRatio());
  prom::sample(out, "qdd_dd_unique_table_hit_ratio", "table=\"matrix\"",
               dd.matrixTable.hitRatio());
  prom::family(out, "qdd_dd_real_table_entries", "gauge",
               "Canonical real numbers stored.");
  prom::sample(out, "qdd_dd_real_table_entries", "",
               static_cast<double>(dd.reals.entries));

  const mem::ComputeTableStats compute = dd.computeTotals();
  prom::family(out, "qdd_dd_compute_lookups_total", "counter",
               "Memoization lookups summed over all compute tables.");
  prom::sample(out, "qdd_dd_compute_lookups_total", "",
               static_cast<double>(compute.lookups));
  prom::family(out, "qdd_dd_compute_hits_total", "counter",
               "Memoization hits summed over all compute tables.");
  prom::sample(out, "qdd_dd_compute_hits_total", "",
               static_cast<double>(compute.hits));
  prom::family(out, "qdd_dd_compute_hit_ratio", "gauge",
               "Memoization hit ratio per compute table (includes the "
               "scalar weight-product memos mulWeight / mulWeight3).");
  for (const auto& table : dd.computeTables) {
    const double ratio =
        table.lookups == 0 ? 0.
                           : static_cast<double>(table.hits) /
                                 static_cast<double>(table.lookups);
    prom::sample(out, "qdd_dd_compute_hit_ratio",
                 "table=\"" + prom::escapeLabel(table.name) + "\"", ratio);
  }

  prom::family(out, "qdd_dd_apply_total", "counter",
               "Gate applications per apply-engine path.");
  prom::sample(out, "qdd_dd_apply_total", "path=\"diagonal\"",
               static_cast<double>(dd.apply.diagonal));
  prom::sample(out, "qdd_dd_apply_total", "path=\"permutation\"",
               static_cast<double>(dd.apply.permutation));
  prom::sample(out, "qdd_dd_apply_total", "path=\"generic\"",
               static_cast<double>(dd.apply.generic));
  prom::sample(out, "qdd_dd_apply_total", "path=\"fallback\"",
               static_cast<double>(dd.apply.fallback));
  prom::family(out, "qdd_dd_apply_fast_coverage", "gauge",
               "Fraction of gate applications served by a fast path.");
  prom::sample(out, "qdd_dd_apply_fast_coverage", "", dd.apply.coverage());
  prom::family(out, "qdd_dd_gc_runs_total", "counter",
               "Garbage-collection runs across all packages.");
  prom::sample(out, "qdd_dd_gc_runs_total", "",
               static_cast<double>(dd.gc.runs));

  // --- intra-circuit parallelism (QDD_APPLY=parallel; zero when serial) ---
  prom::family(out, "qdd_dd_unique_table_shard_contention", "counter",
               "Contended unique-table shard lock acquisitions.");
  prom::sample(out, "qdd_dd_unique_table_shard_contention", "table=\"vector\"",
               static_cast<double>(dd.vectorTable.shardContention));
  prom::sample(out, "qdd_dd_unique_table_shard_contention", "table=\"matrix\"",
               static_cast<double>(dd.matrixTable.shardContention));
  prom::family(out, "qdd_dd_parallel_forks_total", "counter",
               "DD subproblems forked onto the exec pool by "
               "multiply/add recursions.");
  prom::sample(out, "qdd_dd_parallel_forks_total", "",
               static_cast<double>(dd.parallel.forks));
  prom::family(out, "qdd_dd_realtable_cas_retries_total", "counter",
               "Lost CAS races on concurrent real-table bucket inserts.");
  prom::sample(out, "qdd_dd_realtable_cas_retries_total", "",
               static_cast<double>(dd.reals.casRetries));

  // --- incidents ---
  prom::family(out, "qdd_incidents_total", "counter",
               "Flight-recorder incidents captured, by trigger reason.");
  for (const auto& [reason, count] : incidentLog.byReason()) {
    prom::sample(out, "qdd_incidents_total",
                 "reason=\"" + prom::escapeLabel(reason) + "\"",
                 static_cast<double>(count));
  }
  prom::family(out, "qdd_incidents_retained", "gauge",
               "Incident traces currently retrievable via /v1/incidents.");
  prom::sample(out, "qdd_incidents_retained", "",
               static_cast<double>(incidentLog.retained()));
  return out;
}

HttpResponse Api::listIncidents() { return ok(incidentLog.listJson()); }

HttpResponse Api::getIncident(const std::string& id) {
  std::string traceJson;
  if (!incidentLog.find(id, traceJson)) {
    throw ApiError(404, "incident_not_found", "no incident \"" + id + "\"");
  }
  HttpResponse response;
  response.body = std::move(traceJson);
  return response;
}

} // namespace qdd::service
