#include "qdd/service/Incidents.hpp"

#include "qdd/obs/FlightRecorder.hpp"

#include <chrono>
#include <fstream>

#include <sys/stat.h>
#include <unistd.h>

namespace qdd::service {

namespace {

double wallNowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

json::Value num(double v) { return json::Value::number(v); }

/// Chrome-trace document for one captured trace. Events arrive sorted by
/// start time (ties: enclosing span first) from FlightRecorder::capture,
/// which is exactly the order qdd-trace-check requires.
std::string traceDocument(const std::vector<obs::FlightEvent>& events,
                          const std::string& traceId,
                          const json::Value& incident) {
  json::Value doc = json::Value::object();
  json::Value list = json::Value::array();
  for (const obs::FlightEvent& ev : events) {
    json::Value e = json::Value::object();
    e.set("name", json::Value::string(ev.name));
    e.set("cat", json::Value::string(ev.category));
    e.set("ph", json::Value::string("X"));
    e.set("pid", num(1));
    e.set("tid", num(static_cast<double>(ev.tid)));
    e.set("ts", num(ev.startUs));
    e.set("dur", num(ev.durUs));
    json::Value args = json::Value::object();
    args.set("trace_id", json::Value::string(traceId));
    args.set("depth", num(static_cast<double>(ev.depth)));
    e.set("args", std::move(args));
    list.push(std::move(e));
  }
  doc.set("traceEvents", std::move(list));
  doc.set("displayTimeUnit", json::Value::string("ms"));
  doc.set("traceId", json::Value::string(traceId));
  doc.set("incident", incident);
  return doc.dump();
}

} // namespace

IncidentLog::IncidentLog(std::size_t maxRetained, std::string dir)
    : maxRetained(maxRetained == 0 ? 1 : maxRetained), dir(std::move(dir)) {}

std::string IncidentLog::capture(const obs::TraceContext& ctx,
                                 const std::string& route, int status,
                                 double latencyMs,
                                 const std::string& sessionId,
                                 const char* reason) {
  const std::vector<obs::FlightEvent> events =
      obs::FlightRecorder::instance().capture(ctx.traceHi, ctx.traceLo);

  Entry entry;
  entry.traceId = ctx.traceIdHex();
  entry.route = route;
  entry.sessionId = sessionId;
  entry.reason = reason;
  entry.status = status;
  entry.latencyMs = latencyMs;
  entry.wallMs = wallNowMs();
  entry.spans = events.size();

  const std::lock_guard<std::mutex> lock(mutex);
  entry.id = "inc-" + std::to_string(++seq);

  json::Value meta = json::Value::object();
  meta.set("id", json::Value::string(entry.id));
  meta.set("route", json::Value::string(entry.route));
  meta.set("status", num(entry.status));
  meta.set("latencyMs", num(entry.latencyMs));
  meta.set("reason", json::Value::string(entry.reason));
  meta.set("tsMs", num(entry.wallMs));
  if (!entry.sessionId.empty()) {
    meta.set("session", json::Value::string(entry.sessionId));
  }
  entry.traceJson = traceDocument(events, entry.traceId, meta);

  ++capturedN;
  ++reasons[entry.reason];
  writeToDisk(entry);
  entries.push_back(std::move(entry));
  while (entries.size() > maxRetained) {
    entries.pop_front();
  }
  return entries.back().id;
}

void IncidentLog::writeToDisk(const Entry& entry) {
  if (dir.empty()) {
    return;
  }
  if (!dirReady) {
    // EEXIST is fine; any other failure silently disables the mirror for
    // this attempt (capture must never take a request down).
    ::mkdir(dir.c_str(), 0755);
    dirReady = true;
  }
  const std::string path = dir + "/" + entry.id + ".json";
  std::ofstream out(path);
  if (!out) {
    return;
  }
  out << entry.traceJson;
  out.close();
  diskFiles.push_back(path);
  while (diskFiles.size() > maxRetained) {
    ::unlink(diskFiles.front().c_str());
    diskFiles.pop_front();
  }
}

json::Value IncidentLog::listJson() const {
  const std::lock_guard<std::mutex> lock(mutex);
  json::Value list = json::Value::array();
  for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
    json::Value item = json::Value::object();
    item.set("id", json::Value::string(it->id));
    item.set("traceId", json::Value::string(it->traceId));
    item.set("route", json::Value::string(it->route));
    if (!it->sessionId.empty()) {
      item.set("session", json::Value::string(it->sessionId));
    }
    item.set("status", num(it->status));
    item.set("latencyMs", num(it->latencyMs));
    item.set("reason", json::Value::string(it->reason));
    item.set("spans", num(static_cast<double>(it->spans)));
    item.set("tsMs", num(it->wallMs));
    list.push(std::move(item));
  }
  json::Value doc = json::Value::object();
  doc.set("incidents", std::move(list));
  doc.set("captured", num(static_cast<double>(capturedN)));
  doc.set("retained", num(static_cast<double>(entries.size())));
  return doc;
}

bool IncidentLog::find(const std::string& id, std::string& traceJson) const {
  const std::lock_guard<std::mutex> lock(mutex);
  for (const Entry& entry : entries) {
    if (entry.id == id) {
      traceJson = entry.traceJson;
      return true;
    }
  }
  return false;
}

std::size_t IncidentLog::captured() const {
  const std::lock_guard<std::mutex> lock(mutex);
  return capturedN;
}

std::size_t IncidentLog::retained() const {
  const std::lock_guard<std::mutex> lock(mutex);
  return entries.size();
}

std::map<std::string, std::size_t> IncidentLog::byReason() const {
  const std::lock_guard<std::mutex> lock(mutex);
  return reasons;
}

} // namespace qdd::service
