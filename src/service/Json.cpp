#include "qdd/service/Json.hpp"

#include "qdd/viz/JsonExporter.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace qdd::service::json {

Value Value::boolean(bool b) {
  Value v;
  v.k = Kind::Bool;
  v.b = b;
  return v;
}

Value Value::number(double n) {
  Value v;
  v.k = Kind::Number;
  v.num = n;
  return v;
}

Value Value::string(std::string s) {
  Value v;
  v.k = Kind::String;
  v.str = std::move(s);
  return v;
}

Value Value::array() {
  Value v;
  v.k = Kind::Array;
  return v;
}

Value Value::object() {
  Value v;
  v.k = Kind::Object;
  return v;
}

bool Value::asBool(bool fallback) const {
  return k == Kind::Bool ? b : fallback;
}

double Value::asNumber(double fallback) const {
  return k == Kind::Number ? num : fallback;
}

const std::string& Value::asString() const {
  static const std::string empty;
  return k == Kind::String ? str : empty;
}

const std::vector<Value>& Value::asArray() const {
  static const std::vector<Value> empty;
  return k == Kind::Array ? arr : empty;
}

const std::map<std::string, Value>& Value::asObject() const {
  static const std::map<std::string, Value> empty;
  return k == Kind::Object ? obj : empty;
}

const Value* Value::find(const std::string& key) const {
  if (k != Kind::Object) {
    return nullptr;
  }
  const auto it = obj.find(key);
  return it == obj.end() ? nullptr : &it->second;
}

double Value::getNumber(const std::string& key, double fallback) const {
  const Value* v = find(key);
  return (v != nullptr && v->isNumber()) ? v->num : fallback;
}

std::string Value::getString(const std::string& key,
                             const std::string& fallback) const {
  const Value* v = find(key);
  return (v != nullptr && v->isString()) ? v->str : fallback;
}

bool Value::getBool(const std::string& key, bool fallback) const {
  const Value* v = find(key);
  return (v != nullptr && v->isBool()) ? v->b : fallback;
}

void Value::push(Value v) {
  if (k != Kind::Array) {
    throw std::logic_error("json::Value::push on non-array");
  }
  arr.push_back(std::move(v));
}

void Value::set(const std::string& key, Value v) {
  if (k != Kind::Object) {
    throw std::logic_error("json::Value::set on non-object");
  }
  obj[key] = std::move(v);
}

std::string Value::dump() const {
  std::ostringstream ss;
  switch (k) {
  case Kind::Null:
    ss << "null";
    break;
  case Kind::Bool:
    ss << (b ? "true" : "false");
    break;
  case Kind::Number:
    ss << viz::jsonNumber(num, 12);
    break;
  case Kind::String:
    ss << '"' << viz::jsonEscape(str) << '"';
    break;
  case Kind::Array: {
    ss << '[';
    bool first = true;
    for (const auto& v : arr) {
      ss << (first ? "" : ", ") << v.dump();
      first = false;
    }
    ss << ']';
    break;
  }
  case Kind::Object: {
    ss << '{';
    bool first = true;
    for (const auto& [key, v] : obj) {
      ss << (first ? "" : ", ") << '"' << viz::jsonEscape(key)
         << "\": " << v.dump();
      first = false;
    }
    ss << '}';
    break;
  }
  }
  return ss.str();
}

// --- parser ------------------------------------------------------------------

namespace {

constexpr std::size_t MAX_DEPTH = 64;

class Parser {
public:
  explicit Parser(const std::string& text) : text(text) {}

  Value run() {
    Value v = parseValue(0);
    skipWs();
    if (pos != text.size()) {
      fail("trailing characters after JSON document");
    }
    return v;
  }

private:
  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError("JSON parse error at offset " + std::to_string(pos) +
                     ": " + message);
  }

  void skipWs() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  char peek() {
    if (pos >= text.size()) {
      fail("unexpected end of input");
    }
    return text[pos];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos;
  }

  bool literal(const char* word) {
    std::size_t n = 0;
    while (word[n] != '\0') {
      ++n;
    }
    if (text.compare(pos, n, word) != 0) {
      return false;
    }
    pos += n;
    return true;
  }

  Value parseValue(std::size_t depth) {
    if (depth > MAX_DEPTH) {
      fail("nesting too deep");
    }
    skipWs();
    switch (peek()) {
    case '{':
      return parseObject(depth);
    case '[':
      return parseArray(depth);
    case '"':
      return Value::string(parseString());
    case 't':
      if (!literal("true")) {
        fail("invalid literal");
      }
      return Value::boolean(true);
    case 'f':
      if (!literal("false")) {
        fail("invalid literal");
      }
      return Value::boolean(false);
    case 'n':
      if (!literal("null")) {
        fail("invalid literal");
      }
      return Value::null();
    default:
      return parseNumber();
    }
  }

  Value parseObject(std::size_t depth) {
    expect('{');
    Value v = Value::object();
    skipWs();
    if (peek() == '}') {
      ++pos;
      return v;
    }
    while (true) {
      skipWs();
      if (peek() != '"') {
        fail("expected object key string");
      }
      std::string key = parseString();
      skipWs();
      expect(':');
      v.set(key, parseValue(depth + 1));
      skipWs();
      if (peek() == ',') {
        ++pos;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Value parseArray(std::size_t depth) {
    expect('[');
    Value v = Value::array();
    skipWs();
    if (peek() == ']') {
      ++pos;
      return v;
    }
    while (true) {
      v.push(parseValue(depth + 1));
      skipWs();
      if (peek() == ',') {
        ++pos;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parseString() {
    expect('"');
    std::string out;
    while (true) {
      if (pos >= text.size()) {
        fail("unterminated string");
      }
      const char c = text[pos++];
      if (c == '"') {
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos >= text.size()) {
        fail("unterminated escape");
      }
      const char e = text[pos++];
      switch (e) {
      case '"':
        out += '"';
        break;
      case '\\':
        out += '\\';
        break;
      case '/':
        out += '/';
        break;
      case 'b':
        out += '\b';
        break;
      case 'f':
        out += '\f';
        break;
      case 'n':
        out += '\n';
        break;
      case 'r':
        out += '\r';
        break;
      case 't':
        out += '\t';
        break;
      case 'u': {
        if (pos + 4 > text.size()) {
          fail("truncated \\u escape");
        }
        unsigned code = 0;
        for (int i = 0; i < 4; ++i) {
          const char h = text[pos++];
          code <<= 4U;
          if (h >= '0' && h <= '9') {
            code |= static_cast<unsigned>(h - '0');
          } else if (h >= 'a' && h <= 'f') {
            code |= static_cast<unsigned>(h - 'a' + 10);
          } else if (h >= 'A' && h <= 'F') {
            code |= static_cast<unsigned>(h - 'A' + 10);
          } else {
            fail("invalid hex digit in \\u escape");
          }
        }
        // UTF-8 encode the BMP code point (surrogate pairs collapse to one
        // replacement each — circuit sources are ASCII in practice).
        if (code < 0x80) {
          out += static_cast<char>(code);
        } else if (code < 0x800) {
          out += static_cast<char>(0xC0U | (code >> 6U));
          out += static_cast<char>(0x80U | (code & 0x3FU));
        } else {
          out += static_cast<char>(0xE0U | (code >> 12U));
          out += static_cast<char>(0x80U | ((code >> 6U) & 0x3FU));
          out += static_cast<char>(0x80U | (code & 0x3FU));
        }
        break;
      }
      default:
        fail("invalid escape character");
      }
    }
  }

  Value parseNumber() {
    const std::size_t start = pos;
    if (peek() == '-') {
      ++pos;
    }
    if (pos >= text.size() ||
        std::isdigit(static_cast<unsigned char>(text[pos])) == 0) {
      fail("invalid number");
    }
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) != 0 ||
            text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
            text[pos] == '+' || text[pos] == '-')) {
      ++pos;
    }
    const std::string token = text.substr(start, pos - start);
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || !std::isfinite(v)) {
      fail("invalid number '" + token + "'");
    }
    return Value::number(v);
  }

  const std::string& text;
  std::size_t pos = 0;
};

} // namespace

Value Value::parse(const std::string& text) { return Parser(text).run(); }

} // namespace qdd::service::json
