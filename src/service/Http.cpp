#include "qdd/service/Http.hpp"

#include "qdd/net/HttpParser.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace qdd::service {

namespace {

constexpr std::size_t MAX_HEADER_BYTES = net::MAX_HTTP_HEADER_BYTES;

std::string toLower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) {
    ++b;
  }
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r')) {
    --e;
  }
  return s.substr(b, e - b);
}

/// Appends up to `want` more bytes from fd into `buf`; false on EOF/error.
bool fill(int fd, std::string& buf, std::size_t want) {
  char chunk[4096];
  const std::size_t n = std::min(want, sizeof(chunk));
  const ssize_t got = ::recv(fd, chunk, n, 0);
  if (got <= 0) {
    return false;
  }
  buf.append(chunk, static_cast<std::size_t>(got));
  return true;
}

bool sendAll(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t sent = ::send(fd, data, len, MSG_NOSIGNAL);
    if (sent <= 0) {
      return false;
    }
    data += sent;
    len -= static_cast<std::size_t>(sent);
  }
  return true;
}

} // namespace

const char* statusReason(int status) {
  switch (status) {
  case 200:
    return "OK";
  case 201:
    return "Created";
  case 204:
    return "No Content";
  case 400:
    return "Bad Request";
  case 404:
    return "Not Found";
  case 405:
    return "Method Not Allowed";
  case 408:
    return "Request Timeout";
  case 413:
    return "Payload Too Large";
  case 422:
    return "Unprocessable Entity";
  case 429:
    return "Too Many Requests";
  case 431:
    return "Request Header Fields Too Large";
  case 500:
    return "Internal Server Error";
  case 501:
    return "Not Implemented";
  case 503:
    return "Service Unavailable";
  default:
    return "Unknown";
  }
}

ReadOutcome readHttpRequest(int fd, HttpRequest& out, std::string& carry,
                            std::size_t maxBodyBytes) {
  // fill-loop around the shared incremental parser (qdd::net): the blocking
  // path and the reactor accept byte-for-byte the same request language
  for (;;) {
    switch (net::tryParseHttpRequest(carry, out, maxBodyBytes)) {
    case net::ParseStatus::Ok:
      return ReadOutcome::Ok;
    case net::ParseStatus::Malformed:
      return ReadOutcome::Malformed;
    case net::ParseStatus::TooLarge:
      return ReadOutcome::TooLarge;
    case net::ParseStatus::Unsupported:
      return ReadOutcome::Unsupported;
    case net::ParseStatus::NeedMore:
      break;
    }
    if (!fill(fd, carry, MAX_HEADER_BYTES)) {
      return carry.empty() ? ReadOutcome::Closed : ReadOutcome::Malformed;
    }
  }
}

std::string serializeHttpResponse(const HttpResponse& response) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    statusReason(response.status) + "\r\n";
  out += "Content-Type: " + response.contentType + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  for (const auto& [name, value] : response.headers) {
    out += name + ": " + value + "\r\n";
  }
  out += response.close ? "Connection: close\r\n" : "Connection: keep-alive\r\n";
  out += "\r\n";
  out += response.body;
  return out;
}

bool writeHttpResponse(int fd, const HttpResponse& response) {
  const std::string bytes = serializeHttpResponse(response);
  return sendAll(fd, bytes.data(), bytes.size());
}

// --- client ------------------------------------------------------------------

HttpClient::HttpClient(std::string host, std::uint16_t port)
    : host(std::move(host)), port(port) {}

HttpClient::~HttpClient() { disconnect(); }

void HttpClient::disconnect() {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

void HttpClient::ensureConnected() {
  if (fd >= 0) {
    return;
  }
  fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error("HttpClient: socket() failed");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    disconnect();
    throw std::runtime_error("HttpClient: bad host '" + host + "'");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    disconnect();
    throw std::runtime_error("HttpClient: cannot connect to " + host + ":" +
                             std::to_string(port));
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

HttpClient::Result HttpClient::request(
    const std::string& method, const std::string& target,
    const std::string& body,
    const std::vector<std::pair<std::string, std::string>>& extraHeaders) {
  for (int attempt = 0; attempt < 2; ++attempt) {
    ensureConnected();
    std::string msg = method + " " + target + " HTTP/1.1\r\n";
    msg += "Host: " + host + "\r\n";
    if (!body.empty() || method == "POST" || method == "PUT") {
      msg += "Content-Type: application/json\r\n";
      msg += "Content-Length: " + std::to_string(body.size()) + "\r\n";
    }
    for (const auto& [name, value] : extraHeaders) {
      msg += name + ": " + value + "\r\n";
    }
    msg += "\r\n" + body;
    if (!sendAll(fd, msg.data(), msg.size())) {
      // stale keep-alive connection: reconnect once
      disconnect();
      continue;
    }

    std::string buf;
    std::size_t headerEnd = std::string::npos;
    while ((headerEnd = buf.find("\r\n\r\n")) == std::string::npos) {
      if (!fill(fd, buf, MAX_HEADER_BYTES)) {
        disconnect();
        if (buf.empty() && attempt == 0) {
          goto retry; // server closed the idle connection before our request
        }
        throw std::runtime_error("HttpClient: connection lost mid-response");
      }
    }
    {
      Result result;
      const std::size_t lineEnd = buf.find("\r\n");
      const std::string line = buf.substr(0, lineEnd);
      if (line.size() < 12 || line.compare(0, 5, "HTTP/") != 0) {
        disconnect();
        throw std::runtime_error("HttpClient: malformed status line");
      }
      result.status = std::atoi(line.substr(9, 3).c_str());

      std::size_t pos = lineEnd + 2;
      while (pos < headerEnd) {
        const std::size_t eol = buf.find("\r\n", pos);
        const std::string header = buf.substr(pos, eol - pos);
        pos = eol + 2;
        const std::size_t colon = header.find(':');
        if (colon != std::string::npos) {
          result.headers[toLower(trim(header.substr(0, colon)))] =
              trim(header.substr(colon + 1));
        }
      }
      std::size_t contentLength = 0;
      const auto cl = result.headers.find("content-length");
      if (cl != result.headers.end()) {
        contentLength = static_cast<std::size_t>(
            std::strtoull(cl->second.c_str(), nullptr, 10));
      }
      const std::size_t bodyStart = headerEnd + 4;
      while (buf.size() - bodyStart < contentLength) {
        if (!fill(fd, buf, contentLength - (buf.size() - bodyStart))) {
          disconnect();
          throw std::runtime_error("HttpClient: truncated response body");
        }
      }
      result.body = buf.substr(bodyStart, contentLength);
      const auto conn = result.headers.find("connection");
      if (conn != result.headers.end() && toLower(conn->second) == "close") {
        disconnect();
      }
      return result;
    }
  retry:
    continue;
  }
  throw std::runtime_error("HttpClient: request failed after reconnect");
}

} // namespace qdd::service
