#include "qdd/service/Metrics.hpp"

#include <algorithm>
#include <cstdio>

namespace qdd::service {

namespace prom {

std::string escapeLabel(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
    case '\\':
      out += "\\\\";
      break;
    case '"':
      out += "\\\"";
      break;
    case '\n':
      out += "\\n";
      break;
    default:
      out += c;
      break;
    }
  }
  return out;
}

std::string number(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  std::string s(buf);
  for (char& c : s) {
    if (c == ',') {
      c = '.';
    }
  }
  return s;
}

void family(std::string& out, const char* name, const char* type,
            const char* help) {
  out += "# HELP ";
  out += name;
  out += ' ';
  out += help;
  out += "\n# TYPE ";
  out += name;
  out += ' ';
  out += type;
  out += '\n';
}

void sample(std::string& out, const char* name, const std::string& labels,
            double value) {
  out += name;
  if (!labels.empty()) {
    out += '{';
    out += labels;
    out += '}';
  }
  out += ' ';
  out += number(value);
  out += '\n';
}

} // namespace prom

void ServiceMetrics::recordRequest(const std::string& pattern, int status,
                                   double ms) {
  const std::lock_guard<std::mutex> lock(mutex);
  ++total;
  ++byStatus[status];
  Route& route = routes[pattern];
  ++route.count;
  route.totalMs += ms;
  route.maxMs = std::max(route.maxMs, ms);
  route.latency.record(ms);
  allRoutes.record(ms);
}

void ServiceMetrics::recordTransportError(int status) {
  const std::lock_guard<std::mutex> lock(mutex);
  ++total;
  ++byStatus[status];
}

std::size_t ServiceMetrics::requests() const {
  const std::lock_guard<std::mutex> lock(mutex);
  return total;
}

std::size_t ServiceMetrics::statusCount(int status) const {
  const std::lock_guard<std::mutex> lock(mutex);
  const auto it = byStatus.find(status);
  return it == byStatus.end() ? 0 : it->second;
}

std::size_t ServiceMetrics::deadlineTimeouts() const {
  const std::lock_guard<std::mutex> lock(mutex);
  return deadlineTimeoutsN;
}

std::size_t ServiceMetrics::sessionsCreated() const {
  const std::lock_guard<std::mutex> lock(mutex);
  return sessionsCreatedN;
}

std::size_t ServiceMetrics::sessionsEvicted() const {
  const std::lock_guard<std::mutex> lock(mutex);
  return sessionsEvictedN;
}

std::size_t ServiceMetrics::drainRejected() const {
  const std::lock_guard<std::mutex> lock(mutex);
  return drainRejectedN;
}

json::Value ServiceMetrics::toJson() const {
  const std::lock_guard<std::mutex> lock(mutex);
  json::Value doc = json::Value::object();
  doc.set("requests", json::Value::number(static_cast<double>(total)));

  json::Value statuses = json::Value::object();
  for (const auto& [status, count] : byStatus) {
    statuses.set(std::to_string(status),
                 json::Value::number(static_cast<double>(count)));
  }
  doc.set("byStatus", std::move(statuses));

  json::Value routeDoc = json::Value::object();
  for (const auto& [pattern, route] : routes) {
    json::Value r = json::Value::object();
    r.set("count", json::Value::number(static_cast<double>(route.count)));
    r.set("totalMs", json::Value::number(route.totalMs));
    r.set("maxMs", json::Value::number(route.maxMs));
    // histogram estimates — O(buckets), no sample copies under the lock
    r.set("p50Ms", json::Value::number(route.latency.quantile(0.50)));
    r.set("p95Ms", json::Value::number(route.latency.quantile(0.95)));
    routeDoc.set(pattern, std::move(r));
  }
  doc.set("routes", std::move(routeDoc));

  doc.set("sessionsCreated",
          json::Value::number(static_cast<double>(sessionsCreatedN)));
  doc.set("sessionsEvicted",
          json::Value::number(static_cast<double>(sessionsEvictedN)));
  doc.set("deadlineTimeouts",
          json::Value::number(static_cast<double>(deadlineTimeoutsN)));
  doc.set("drainRejected",
          json::Value::number(static_cast<double>(drainRejectedN)));
  return doc;
}

std::string ServiceMetrics::prometheus() const {
  const std::lock_guard<std::mutex> lock(mutex);
  std::string out;
  out.reserve(8192);

  prom::family(out, "qdd_http_requests_total", "counter",
               "HTTP requests observed (routed and transport errors).");
  prom::sample(out, "qdd_http_requests_total", "",
               static_cast<double>(total));

  prom::family(out, "qdd_http_responses_total", "counter",
               "Responses by HTTP status code.");
  for (const auto& [status, count] : byStatus) {
    prom::sample(out, "qdd_http_responses_total",
                 "status=\"" + std::to_string(status) + "\"",
                 static_cast<double>(count));
  }

  prom::family(out, "qdd_http_route_requests_total", "counter",
               "Routed requests by route pattern.");
  for (const auto& [pattern, route] : routes) {
    prom::sample(out, "qdd_http_route_requests_total",
                 "route=\"" + prom::escapeLabel(pattern) + "\"",
                 static_cast<double>(route.count));
  }

  prom::family(out, "qdd_http_route_latency_ms", "gauge",
               "Per-route latency summary (histogram estimate), ms.");
  for (const auto& [pattern, route] : routes) {
    const std::string base = "route=\"" + prom::escapeLabel(pattern) + "\"";
    prom::sample(out, "qdd_http_route_latency_ms", base + ",stat=\"p50\"",
                 route.latency.quantile(0.50));
    prom::sample(out, "qdd_http_route_latency_ms", base + ",stat=\"p95\"",
                 route.latency.quantile(0.95));
    prom::sample(out, "qdd_http_route_latency_ms", base + ",stat=\"max\"",
                 route.maxMs);
  }

  // Aggregate latency histogram in seconds with cumulative `le` buckets.
  prom::family(out, "qdd_http_request_duration_seconds", "histogram",
               "Request latency across all routes.");
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < LatencyHistogram::BUCKETS; ++i) {
    cum += allRoutes.bucketCounts()[i];
    prom::sample(
        out, "qdd_http_request_duration_seconds_bucket",
        "le=\"" + prom::number(LatencyHistogram::upperBoundMs(i) / 1000.) +
            "\"",
        static_cast<double>(cum));
  }
  prom::sample(out, "qdd_http_request_duration_seconds_bucket", "le=\"+Inf\"",
               static_cast<double>(allRoutes.count()));
  prom::sample(out, "qdd_http_request_duration_seconds_sum", "",
               allRoutes.sumMs() / 1000.);
  prom::sample(out, "qdd_http_request_duration_seconds_count", "",
               static_cast<double>(allRoutes.count()));

  prom::family(out, "qdd_sessions_created_total", "counter",
               "Sessions ever created.");
  prom::sample(out, "qdd_sessions_created_total", "",
               static_cast<double>(sessionsCreatedN));
  prom::family(out, "qdd_sessions_evicted_total", "counter",
               "Sessions evicted by the TTL sweeper.");
  prom::sample(out, "qdd_sessions_evicted_total", "",
               static_cast<double>(sessionsEvictedN));
  prom::family(out, "qdd_deadline_timeouts_total", "counter",
               "Requests stopped by an expired deadline (408).");
  prom::sample(out, "qdd_deadline_timeouts_total", "",
               static_cast<double>(deadlineTimeoutsN));
  prom::family(out, "qdd_drain_rejected_total", "counter",
               "Requests rejected while draining (503).");
  prom::sample(out, "qdd_drain_rejected_total", "",
               static_cast<double>(drainRejectedN));
  return out;
}

} // namespace qdd::service
