#include "qdd/service/Metrics.hpp"

#include <algorithm>
#include <cmath>

namespace qdd::service {

namespace {

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) {
    return 0.;
  }
  std::sort(samples.begin(), samples.end());
  const double rank = p / 100. * static_cast<double>(samples.size());
  std::size_t idx =
      rank <= 1. ? 0 : static_cast<std::size_t>(std::ceil(rank)) - 1;
  idx = std::min(idx, samples.size() - 1);
  return samples[idx];
}

} // namespace

void ServiceMetrics::recordRequest(const std::string& pattern, int status,
                                   double ms) {
  const std::lock_guard<std::mutex> lock(mutex);
  ++total;
  ++byStatus[status];
  Route& route = routes[pattern];
  ++route.count;
  route.totalMs += ms;
  route.maxMs = std::max(route.maxMs, ms);
  if (route.samples.size() < MAX_SAMPLES) {
    route.samples.push_back(ms);
  }
}

void ServiceMetrics::recordTransportError(int status) {
  const std::lock_guard<std::mutex> lock(mutex);
  ++total;
  ++byStatus[status];
}

std::size_t ServiceMetrics::requests() const {
  const std::lock_guard<std::mutex> lock(mutex);
  return total;
}

std::size_t ServiceMetrics::statusCount(int status) const {
  const std::lock_guard<std::mutex> lock(mutex);
  const auto it = byStatus.find(status);
  return it == byStatus.end() ? 0 : it->second;
}

std::size_t ServiceMetrics::deadlineTimeouts() const {
  const std::lock_guard<std::mutex> lock(mutex);
  return deadlineTimeoutsN;
}

std::size_t ServiceMetrics::sessionsCreated() const {
  const std::lock_guard<std::mutex> lock(mutex);
  return sessionsCreatedN;
}

std::size_t ServiceMetrics::sessionsEvicted() const {
  const std::lock_guard<std::mutex> lock(mutex);
  return sessionsEvictedN;
}

std::size_t ServiceMetrics::drainRejected() const {
  const std::lock_guard<std::mutex> lock(mutex);
  return drainRejectedN;
}

json::Value ServiceMetrics::toJson() const {
  const std::lock_guard<std::mutex> lock(mutex);
  json::Value doc = json::Value::object();
  doc.set("requests", json::Value::number(static_cast<double>(total)));

  json::Value statuses = json::Value::object();
  for (const auto& [status, count] : byStatus) {
    statuses.set(std::to_string(status),
                 json::Value::number(static_cast<double>(count)));
  }
  doc.set("byStatus", std::move(statuses));

  json::Value routeDoc = json::Value::object();
  for (const auto& [pattern, route] : routes) {
    json::Value r = json::Value::object();
    r.set("count", json::Value::number(static_cast<double>(route.count)));
    r.set("totalMs", json::Value::number(route.totalMs));
    r.set("maxMs", json::Value::number(route.maxMs));
    r.set("p50Ms", json::Value::number(percentile(route.samples, 50.)));
    r.set("p95Ms", json::Value::number(percentile(route.samples, 95.)));
    routeDoc.set(pattern, std::move(r));
  }
  doc.set("routes", std::move(routeDoc));

  doc.set("sessionsCreated",
          json::Value::number(static_cast<double>(sessionsCreatedN)));
  doc.set("sessionsEvicted",
          json::Value::number(static_cast<double>(sessionsEvictedN)));
  doc.set("deadlineTimeouts",
          json::Value::number(static_cast<double>(deadlineTimeoutsN)));
  doc.set("drainRejected",
          json::Value::number(static_cast<double>(drainRejectedN)));
  return doc;
}

} // namespace qdd::service
