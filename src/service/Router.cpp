#include "qdd/service/Router.hpp"

#include "qdd/service/Json.hpp"

namespace qdd::service {

std::string errorBody(int status, const std::string& code,
                      const std::string& message) {
  json::Value error = json::Value::object();
  error.set("code", json::Value::string(code));
  error.set("message", json::Value::string(message));
  error.set("status", json::Value::number(status));
  json::Value doc = json::Value::object();
  doc.set("error", std::move(error));
  return doc.dump();
}

HttpResponse errorResponse(int status, const std::string& code,
                           const std::string& message) {
  return HttpResponse::json(status, errorBody(status, code, message));
}

std::vector<std::string> Router::split(const std::string& path) {
  std::vector<std::string> parts;
  std::size_t pos = 0;
  while (pos < path.size()) {
    if (path[pos] == '/') {
      ++pos;
      continue;
    }
    const std::size_t next = path.find('/', pos);
    parts.push_back(path.substr(
        pos, next == std::string::npos ? std::string::npos : next - pos));
    if (next == std::string::npos) {
      break;
    }
    pos = next;
  }
  return parts;
}

void Router::add(const std::string& method, const std::string& pattern,
                 Handler handler) {
  Route route;
  route.method = method;
  route.pattern = pattern;
  route.segments = split(pattern);
  route.handler = std::move(handler);
  routes.push_back(std::move(route));
}

bool Router::match(const Route& route, const std::vector<std::string>& parts,
                   PathParams& params) {
  if (route.segments.size() != parts.size()) {
    return false;
  }
  PathParams captured;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    const std::string& seg = route.segments[i];
    if (seg.size() >= 2 && seg.front() == '{' && seg.back() == '}') {
      captured[seg.substr(1, seg.size() - 2)] = parts[i];
    } else if (seg != parts[i]) {
      return false;
    }
  }
  params = std::move(captured);
  return true;
}

Router::Dispatch Router::dispatch(const HttpRequest& request) const {
  const std::vector<std::string> parts = split(request.path);
  bool pathExists = false;
  for (const Route& route : routes) {
    PathParams params;
    if (!match(route, parts, params)) {
      continue;
    }
    pathExists = true;
    if (route.method != request.method) {
      continue;
    }
    return Dispatch{route.handler(request, params), route.pattern};
  }
  if (pathExists) {
    return Dispatch{errorResponse(405, "method_not_allowed",
                                  "method " + request.method +
                                      " not allowed on " + request.path),
                    ""};
  }
  return Dispatch{
      errorResponse(404, "not_found", "no route for " + request.path), ""};
}

} // namespace qdd::service
