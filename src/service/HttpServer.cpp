#include "qdd/service/HttpServer.hpp"

#include "qdd/obs/FlightRecorder.hpp"
#include "qdd/obs/Obs.hpp"
#include "qdd/service/Incidents.hpp"
#include "qdd/service/RequestContext.hpp"

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace qdd::service {

NetMode defaultNetMode() {
  const char* env = std::getenv("QDD_NET");
  if (env != nullptr) {
    const std::string v(env);
    if (v == "threaded") {
      return NetMode::Threaded;
    }
    if (v == "poll") {
      return NetMode::Poll;
    }
  }
  return NetMode::Epoll;
}

HttpServer::HttpServer(ServerOptions options, Router& router,
                       ServiceMetrics& metrics)
    : options(std::move(options)), router(router), metrics(metrics),
      pool(this->options.workers) {}

HttpServer::~HttpServer() { stop(); }

void HttpServer::start() {
  listenFd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listenFd < 0) {
    throw std::runtime_error("HttpServer: socket() failed");
  }
  const int one = 1;
  ::setsockopt(listenFd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options.port);
  if (::inet_pton(AF_INET, options.bindAddress.c_str(), &addr.sin_addr) !=
      1) {
    throw std::runtime_error("HttpServer: bad bind address '" +
                             options.bindAddress + "'");
  }
  if (::bind(listenFd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    throw std::runtime_error("HttpServer: cannot bind " +
                             options.bindAddress + ":" +
                             std::to_string(options.port) + ": " +
                             std::strerror(errno));
  }
  if (::listen(listenFd, 64) != 0) {
    throw std::runtime_error("HttpServer: listen() failed");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(listenFd, reinterpret_cast<sockaddr*>(&bound), &len);
  boundPort = ntohs(bound.sin_port);

  if (options.tracing) {
    // Arming is process-wide and sticky on purpose: rings record only while
    // a valid TraceContext is installed, and only tracing servers install
    // one — so arming costs untraced code paths nothing.
    obs::FlightRecorder::setArmed(true);
  }
  if (!options.accessLogPath.empty()) {
    accessLog.open(options.accessLogPath, std::ios::app);
  }

  if (options.net == NetMode::Threaded) {
    acceptor = std::thread([this] { acceptLoop(); });
    return;
  }

  net::ReactorOptions reactorOptions;
  reactorOptions.backend = options.net == NetMode::Poll
                               ? net::Backend::Poll
                               : net::Backend::Epoll;
  reactorOptions.idleTimeoutMs = options.idleTimeoutMs;
  reactorOptions.maxBodyBytes = options.maxBodyBytes;
  reactor = std::make_unique<net::Reactor>(
      reactorOptions,
      [this](std::uint64_t token, HttpRequest&& request) {
        // reactor thread: queue and return — the worker runs the pipeline
        // and hands the serialized bytes back for reactor-owned writeout
        pool.submit([this, token, request = std::move(request)]() mutable {
          HttpResponse response = processRequest(request);
          response.close = response.close || !request.keepAlive;
          reactor->complete(token, serializeHttpResponse(response),
                            response.close);
        });
      },
      [this](net::ParseStatus status) {
        return serializeHttpResponse(parseFailureResponse(status));
      });
  reactor->start(listenFd);
}

void HttpServer::acceptLoop() {
  while (!stopping.load(std::memory_order_relaxed)) {
    pollfd pfd{};
    pfd.fd = listenFd;
    pfd.events = POLLIN;
    // short poll timeout so stop() is observed promptly
    const int ready = ::poll(&pfd, 1, 100);
    if (ready <= 0) {
      continue;
    }
    const int fd = ::accept(listenFd, nullptr, nullptr);
    if (fd < 0) {
      continue;
    }
    if (stopping.load(std::memory_order_relaxed)) {
      ::close(fd);
      continue;
    }
    trackOpen(fd);
    pool.submit([this, fd] { handleConnection(fd); });
  }
}

void HttpServer::handleConnection(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  // recv() on an idle keep-alive connection returns after this long, which
  // readHttpRequest reports as Closed — freeing the pool worker
  timeval tv{};
  tv.tv_sec = options.idleTimeoutMs / 1000;
  tv.tv_usec = (options.idleTimeoutMs % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));

  std::string carry;
  for (;;) {
    HttpRequest request;
    const ReadOutcome outcome =
        readHttpRequest(fd, request, carry, options.maxBodyBytes);
    if (outcome == ReadOutcome::Closed) {
      break;
    }
    if (outcome != ReadOutcome::Ok) {
      net::ParseStatus status = net::ParseStatus::Malformed;
      if (outcome == ReadOutcome::TooLarge) {
        status = net::ParseStatus::TooLarge;
      } else if (outcome == ReadOutcome::Unsupported) {
        status = net::ParseStatus::Unsupported;
      }
      writeHttpResponse(fd, parseFailureResponse(status));
      break;
    }

    HttpResponse response = processRequest(request);
    response.close = response.close || !request.keepAlive;
    if (!writeHttpResponse(fd, response) || response.close) {
      break;
    }
  }
  // Deregister BEFORE closing: once the fd number is closed the kernel may
  // reuse it, and stop() iterating openFds must never shutdown() a reused
  // descriptor belonging to someone else.
  trackClosed(fd);
  ::close(fd);
}

HttpResponse HttpServer::parseFailureResponse(net::ParseStatus status) {
  HttpResponse response;
  switch (status) {
  case net::ParseStatus::TooLarge:
    response = errorResponse(
        413, "payload_too_large",
        "request exceeds the " + std::to_string(options.maxBodyBytes) +
            "-byte body limit");
    break;
  case net::ParseStatus::Unsupported:
    response = errorResponse(501, "unsupported",
                             "Transfer-Encoding is not supported");
    break;
  default:
    response =
        errorResponse(400, "malformed_request", "unparseable HTTP request");
    break;
  }
  response.close = true;
  metrics.recordTransportError(response.status);
  return response;
}

HttpResponse HttpServer::processRequest(const HttpRequest& request) {
  if (drainingFlag.load(std::memory_order_relaxed) ||
      stopping.load(std::memory_order_relaxed)) {
    HttpResponse response = errorResponse(
        503, "draining", "server is draining; retry against a new server");
    response.close = true;
    // count before writing: once the client has the 503, the counters
    // already reflect it
    metrics.countDrainRejected();
    metrics.recordTransportError(503);
    return response;
  }

  {
    const std::lock_guard<std::mutex> lock(connMutex);
    ++inFlight;
  }

  // Request identity: continue the caller's trace (traceparent header,
  // fresh child span id) or start a new one. With tracing off the context
  // stays invalid, which turns every tracing hook below into a no-op.
  obs::TraceContext ctx;
  if (options.tracing) {
    const auto tp = request.headers.find("traceparent");
    if (tp == request.headers.end() ||
        !obs::TraceContext::parseTraceparent(tp->second, ctx)) {
      ctx = obs::TraceContext::make();
    } else {
      ctx.spanId = obs::TraceContext::nextId();
    }
  }

  const auto t0 = std::chrono::steady_clock::now();
  Router::Dispatch dispatched;
  {
    // Scope: the root span must close (and land in the flight ring)
    // before any incident capture below reads the ring.
    const obs::TraceScope traceScope(ctx);
    requestAnnotations().reset();
    obs::ScopedSpan rootSpan("service", "request", options.tracing);
    try {
      dispatched = router.dispatch(request);
    } catch (const std::exception& e) {
      dispatched.response = errorResponse(500, "internal_error", e.what());
    } catch (...) {
      dispatched.response =
          errorResponse(500, "internal_error", "unknown error");
    }
  }
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  const std::string routeKey = dispatched.pattern.empty()
                                   ? request.method + " " + request.path
                                   : request.method + " " + dispatched.pattern;
  const int status = dispatched.response.status;
  metrics.recordRequest(routeKey, status, ms);

  if (options.tracing) {
    dispatched.response.headers.emplace_back("traceparent",
                                             ctx.traceparent());
    if (incidents != nullptr) {
      const char* reason = nullptr;
      if (status >= 500) {
        reason = "error";
      } else if (status == 408) {
        reason = "deadline";
      } else if (options.slowRequestMs > 0. && ms >= options.slowRequestMs) {
        reason = "slow";
      }
      if (reason != nullptr) {
        incidents->capture(ctx, routeKey, status, ms,
                           requestAnnotations().sessionId, reason);
      }
    }
  }
  if (accessLog.is_open()) {
    logAccess(ctx, request, routeKey, status, ms,
              dispatched.response.body.size());
  }

  {
    const std::lock_guard<std::mutex> lock(connMutex);
    --inFlight;
  }
  connCv.notify_all();

  return std::move(dispatched.response);
}

void HttpServer::logAccess(const obs::TraceContext& ctx,
                           const HttpRequest& request,
                           const std::string& routeKey, int status, double ms,
                           std::size_t bytesOut) {
  const auto escape = [](const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
      if (c == '"' || c == '\\') {
        out += '\\';
        out += c;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        out += ' ';
      } else {
        out += c;
      }
    }
    return out;
  };
  const double wallMs =
      std::chrono::duration<double, std::milli>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  const RequestAnnotations& ann = requestAnnotations();

  std::string line = "{\"ts\":" + std::to_string(wallMs);
  if (ctx.valid()) {
    line += ",\"traceId\":\"" + ctx.traceIdHex() + "\"";
  }
  line += ",\"method\":\"" + escape(request.method) + "\"";
  line += ",\"route\":\"" + escape(routeKey) + "\"";
  line += ",\"status\":" + std::to_string(status);
  line += ",\"latencyMs\":" + std::to_string(ms);
  if (!ann.sessionId.empty()) {
    line += ",\"session\":\"" + escape(ann.sessionId) + "\"";
  }
  if (ann.hasNodeDelta) {
    line += ",\"ddNodeDelta\":" + std::to_string(ann.ddNodeDelta);
  }
  line += ",\"bytesOut\":" + std::to_string(bytesOut);
  line += "}\n";

  const std::lock_guard<std::mutex> lock(accessLogMutex);
  accessLog << line;
  accessLog.flush();
}

void HttpServer::trackOpen(int fd) {
  const std::lock_guard<std::mutex> lock(connMutex);
  openFds.insert(fd);
}

void HttpServer::trackClosed(int fd) {
  {
    const std::lock_guard<std::mutex> lock(connMutex);
    openFds.erase(fd);
  }
  connCv.notify_all();
}

std::size_t HttpServer::openConnections() const {
  if (reactor) {
    return reactor->openConnections();
  }
  const std::lock_guard<std::mutex> lock(connMutex);
  return openFds.size();
}

const char* HttpServer::netName() const noexcept {
  if (!reactor) {
    return "threaded";
  }
  return reactor->backend() == net::Backend::Epoll ? "epoll" : "poll";
}

bool HttpServer::awaitIdle(int timeoutMs) {
  std::unique_lock<std::mutex> lock(connMutex);
  return connCv.wait_for(lock, std::chrono::milliseconds(timeoutMs),
                         [this] { return inFlight == 0; });
}

void HttpServer::stop() {
  if (stopping.exchange(true)) {
    return;
  }
  if (reactor) {
    // Closes every connection and joins the event loop; pool workers still
    // in flight call complete() into the void (safe no-op), and the wait
    // below lets their pipelines finish before the caller reads metrics.
    reactor->stop();
    if (listenFd >= 0) {
      ::close(listenFd);
      listenFd = -1;
    }
    std::unique_lock<std::mutex> lock(connMutex);
    connCv.wait_for(lock, std::chrono::seconds(10),
                    [this] { return inFlight == 0; });
    return;
  }
  if (acceptor.joinable()) {
    acceptor.join();
  }
  if (listenFd >= 0) {
    ::close(listenFd);
    listenFd = -1;
  }
  // Unblock handlers sitting in recv(); they observe EOF, answer nothing,
  // and exit their loops. The pool destructor would wait for them anyway —
  // shutdown just makes that wait short.
  {
    const std::lock_guard<std::mutex> lock(connMutex);
    for (const int fd : openFds) {
      ::shutdown(fd, SHUT_RDWR);
    }
  }
  {
    std::unique_lock<std::mutex> lock(connMutex);
    connCv.wait_for(lock, std::chrono::seconds(10),
                    [this] { return openFds.empty(); });
  }
}

} // namespace qdd::service
