#include "qdd/baseline/StabilizerSimulator.hpp"

#include <stdexcept>

namespace qdd::baseline {

StabilizerSimulator::StabilizerSimulator(std::size_t nqubits)
    : n(nqubits), stride(2 * nqubits), table(2 * nqubits * stride, false),
      phase(2 * nqubits, false) {
  if (n == 0) {
    throw std::invalid_argument("StabilizerSimulator: no qubits");
  }
  // destabilizer i = X_i, stabilizer i = Z_i (the |0...0> state)
  for (std::size_t i = 0; i < n; ++i) {
    table[i * stride + i] = true;             // X part of destabilizer i
    table[(n + i) * stride + n + i] = true;   // Z part of stabilizer i
  }
}

void StabilizerSimulator::h(Qubit q) {
  const auto qi = static_cast<std::size_t>(q);
  for (std::size_t row = 0; row < 2 * n; ++row) {
    const bool x = table[row * stride + qi];
    const bool z = table[row * stride + n + qi];
    if (x && z) {
      phase[row] = !phase[row];
    }
    table[row * stride + qi] = z;
    table[row * stride + n + qi] = x;
  }
}

void StabilizerSimulator::s(Qubit q) {
  const auto qi = static_cast<std::size_t>(q);
  for (std::size_t row = 0; row < 2 * n; ++row) {
    const bool x = table[row * stride + qi];
    const bool z = table[row * stride + n + qi];
    if (x && z) {
      phase[row] = !phase[row];
    }
    table[row * stride + n + qi] = x != z;
  }
}

void StabilizerSimulator::cx(Qubit control, Qubit target) {
  const auto c = static_cast<std::size_t>(control);
  const auto t = static_cast<std::size_t>(target);
  for (std::size_t row = 0; row < 2 * n; ++row) {
    const bool xc = table[row * stride + c];
    const bool zc = table[row * stride + n + c];
    const bool xt = table[row * stride + t];
    const bool zt = table[row * stride + n + t];
    if (xc && zt && (xt == zc)) {
      phase[row] = !phase[row];
    }
    table[row * stride + t] = xt != xc;
    table[row * stride + n + c] = zc != zt;
  }
}

void StabilizerSimulator::apply(const ir::Operation& op) {
  using ir::OpType;
  if (op.type() == OpType::Barrier) {
    return;
  }
  if (const auto* comp = dynamic_cast<const ir::CompoundOperation*>(&op)) {
    for (const auto& sub : comp->operations()) {
      apply(*sub);
    }
    return;
  }
  if (!op.isStandardOperation()) {
    throw std::invalid_argument("StabilizerSimulator: cannot apply '" +
                                op.name() + "'");
  }
  const auto& controls = op.controls();
  const auto& targets = op.targets();
  if (controls.empty()) {
    switch (op.type()) {
    case OpType::I:
      return;
    case OpType::H:
      h(targets[0]);
      return;
    case OpType::S:
      s(targets[0]);
      return;
    case OpType::Sdg:
      sdg(targets[0]);
      return;
    case OpType::X:
      x(targets[0]);
      return;
    case OpType::Y:
      y(targets[0]);
      return;
    case OpType::Z:
      z(targets[0]);
      return;
    case OpType::SWAP:
      swap(targets[0], targets[1]);
      return;
    case OpType::iSWAP:
      // iSWAP = SWAP . CZ . (S (x) S)
      s(targets[0]);
      s(targets[1]);
      h(targets[1]);
      cx(targets[0], targets[1]);
      h(targets[1]);
      swap(targets[0], targets[1]);
      return;
    case OpType::iSWAPdg:
      // inverse of the above
      swap(targets[0], targets[1]);
      h(targets[1]);
      cx(targets[0], targets[1]);
      h(targets[1]);
      sdg(targets[0]);
      sdg(targets[1]);
      return;
    case OpType::DCX:
      cx(targets[0], targets[1]);
      cx(targets[1], targets[0]);
      return;
    default:
      break;
    }
  } else if (controls.size() == 1 && controls[0].positive) {
    switch (op.type()) {
    case OpType::X:
      cx(controls[0].qubit, targets[0]);
      return;
    case OpType::Z: // CZ = H_t CX H_t
      h(targets[0]);
      cx(controls[0].qubit, targets[0]);
      h(targets[0]);
      return;
    default:
      break;
    }
  }
  throw std::invalid_argument("StabilizerSimulator: non-Clifford gate '" +
                              op.name() + "'");
}

void StabilizerSimulator::run(const ir::QuantumComputation& qc) {
  if (qc.numQubits() != n) {
    throw std::invalid_argument("StabilizerSimulator: qubit count mismatch");
  }
  for (const auto& op : qc) {
    apply(*op);
  }
}

void StabilizerSimulator::rowsum(std::size_t dst, std::size_t src) {
  // phase arithmetic: sum the CHP g(x1,z1,x2,z2) exponents (mod 4)
  int g = 0;
  for (std::size_t q = 0; q < n; ++q) {
    const int x1 = table[src * stride + q] ? 1 : 0;
    const int z1 = table[src * stride + n + q] ? 1 : 0;
    const int x2 = table[dst * stride + q] ? 1 : 0;
    const int z2 = table[dst * stride + n + q] ? 1 : 0;
    if (x1 == 0 && z1 == 0) {
      continue;
    }
    if (x1 == 1 && z1 == 1) {
      g += z2 - x2;
    } else if (x1 == 1) {
      g += z2 * (2 * x2 - 1);
    } else {
      g += x2 * (1 - 2 * z2);
    }
  }
  const int r = 2 * (phase[dst] ? 1 : 0) + 2 * (phase[src] ? 1 : 0) + g;
  phase[dst] = ((r % 4) + 4) % 4 == 2;
  for (std::size_t q = 0; q < 2 * n; ++q) {
    table[dst * stride + q] =
        table[dst * stride + q] != table[src * stride + q];
  }
}

StabilizerSimulator::Outcome StabilizerSimulator::peek(Qubit q) const {
  const auto qi = static_cast<std::size_t>(q);
  for (std::size_t i = n; i < 2 * n; ++i) {
    if (table[i * stride + qi]) {
      return Outcome::Random;
    }
  }
  // deterministic: reproduce the CHP scratch-row computation
  StabilizerSimulator copy = *this;
  const std::size_t scratch = 2 * n; // virtual extra row
  copy.table.resize((2 * n + 1) * stride, false);
  copy.phase.resize(2 * n + 1, false);
  for (std::size_t i = 0; i < n; ++i) {
    if (copy.table[i * stride + qi]) {
      copy.rowsum(scratch, i + n);
    }
  }
  return copy.phase[scratch] ? Outcome::One : Outcome::Zero;
}

double StabilizerSimulator::probabilityOfOne(Qubit q) const {
  switch (peek(q)) {
  case Outcome::Zero:
    return 0.;
  case Outcome::One:
    return 1.;
  case Outcome::Random:
    return 0.5;
  }
  return 0.;
}

int StabilizerSimulator::measure(Qubit q, std::mt19937_64& rng) {
  const auto qi = static_cast<std::size_t>(q);
  std::size_t p = 2 * n;
  for (std::size_t i = n; i < 2 * n; ++i) {
    if (table[i * stride + qi]) {
      p = i;
      break;
    }
  }
  if (p < 2 * n) {
    // random outcome
    for (std::size_t i = 0; i < 2 * n; ++i) {
      if (i != p && table[i * stride + qi]) {
        rowsum(i, p);
      }
    }
    // destabilizer p-n := old stabilizer p; stabilizer p := +-Z_q
    for (std::size_t k = 0; k < stride; ++k) {
      table[(p - n) * stride + k] = table[p * stride + k];
      table[p * stride + k] = false;
    }
    phase[p - n] = phase[p];
    std::uniform_int_distribution<int> coin(0, 1);
    const int outcome = coin(rng);
    phase[p] = outcome == 1;
    table[p * stride + n + qi] = true;
    return outcome;
  }
  // deterministic outcome
  return peek(q) == Outcome::One ? 1 : 0;
}

std::string StabilizerSimulator::sample(std::mt19937_64& rng) const {
  StabilizerSimulator copy = *this;
  std::string bits(n, '0');
  for (std::size_t q = 0; q < n; ++q) {
    if (copy.measure(static_cast<Qubit>(q), rng) == 1) {
      bits[n - 1 - q] = '1';
    }
  }
  return bits;
}

} // namespace qdd::baseline
