#include "qdd/baseline/DenseSimulator.hpp"

#include <cmath>
#include <stdexcept>

namespace qdd::baseline {

namespace {

GateMatrix matrixFor(ir::OpType t, const std::vector<double>& p) {
  switch (t) {
  case ir::OpType::I:
    return I_MAT;
  case ir::OpType::H:
    return H_MAT;
  case ir::OpType::X:
    return X_MAT;
  case ir::OpType::Y:
    return Y_MAT;
  case ir::OpType::Z:
    return Z_MAT;
  case ir::OpType::S:
    return S_MAT;
  case ir::OpType::Sdg:
    return SDG_MAT;
  case ir::OpType::T:
    return T_MAT;
  case ir::OpType::Tdg:
    return TDG_MAT;
  case ir::OpType::V:
    return V_MAT;
  case ir::OpType::Vdg:
    return VDG_MAT;
  case ir::OpType::SX:
    return SX_MAT;
  case ir::OpType::SXdg:
    return SXDG_MAT;
  case ir::OpType::RX:
    return rxMatrix(p.at(0));
  case ir::OpType::RY:
    return ryMatrix(p.at(0));
  case ir::OpType::RZ:
    return rzMatrix(p.at(0));
  case ir::OpType::Phase:
    return phaseMatrix(p.at(0));
  case ir::OpType::U2:
    return u2Matrix(p.at(0), p.at(1));
  case ir::OpType::U3:
    return u3Matrix(p.at(0), p.at(1), p.at(2));
  default:
    throw std::invalid_argument("DenseSimulator: no matrix for '" +
                                ir::toString(t) + "'");
  }
}

} // namespace

// --- DenseStateVector ----------------------------------------------------------

DenseStateVector::DenseStateVector(std::size_t numQubits)
    : nqubits(numQubits), amps(1ULL << numQubits, {0., 0.}) {
  if (numQubits == 0 || numQubits > 28) {
    throw std::invalid_argument("DenseStateVector: unsupported qubit count");
  }
  amps[0] = {1., 0.};
}

DenseStateVector::DenseStateVector(
    std::vector<std::complex<double>> amplitudes)
    : nqubits(0), amps(std::move(amplitudes)) {
  const std::size_t len = amps.size();
  if (len < 2 || (len & (len - 1)) != 0) {
    throw std::invalid_argument("DenseStateVector: length not a power of 2");
  }
  while ((1ULL << nqubits) < len) {
    ++nqubits;
  }
}

bool DenseStateVector::controlsSatisfied(
    std::size_t index, const QubitControls& controls) const {
  for (const auto& c : controls) {
    const bool set = (index >> static_cast<unsigned>(c.qubit)) & 1ULL;
    if (set != c.positive) {
      return false;
    }
  }
  return true;
}

void DenseStateVector::applyGate(const GateMatrix& mat, Qubit target,
                                 const QubitControls& controls) {
  const std::uint64_t tBit = 1ULL << static_cast<unsigned>(target);
  const std::uint64_t dim = amps.size();
  for (std::uint64_t i = 0; i < dim; ++i) {
    if ((i & tBit) != 0 || !controlsSatisfied(i, controls)) {
      continue;
    }
    const std::uint64_t j = i | tBit;
    const std::complex<double> a0 = amps[i];
    const std::complex<double> a1 = amps[j];
    amps[i] = mat[0].toStdComplex() * a0 + mat[1].toStdComplex() * a1;
    amps[j] = mat[2].toStdComplex() * a0 + mat[3].toStdComplex() * a1;
  }
}

void DenseStateVector::applySwap(Qubit a, Qubit b,
                                 const QubitControls& controls) {
  const std::uint64_t aBit = 1ULL << static_cast<unsigned>(a);
  const std::uint64_t bBit = 1ULL << static_cast<unsigned>(b);
  const std::uint64_t dim = amps.size();
  for (std::uint64_t i = 0; i < dim; ++i) {
    if ((i & aBit) != 0 || (i & bBit) == 0 ||
        !controlsSatisfied(i, controls)) {
      continue;
    }
    std::swap(amps[i], (amps[(i | aBit) & ~bBit])); // |..0a..1b..> <-> |..1..0..>
  }
}

void DenseStateVector::applyTwoQubit(const TwoQubitGateMatrix& mat, Qubit t1,
                                     Qubit t0) {
  const std::uint64_t b1 = 1ULL << static_cast<unsigned>(t1);
  const std::uint64_t b0 = 1ULL << static_cast<unsigned>(t0);
  const std::uint64_t dim = amps.size();
  for (std::uint64_t i = 0; i < dim; ++i) {
    if ((i & b1) != 0 || (i & b0) != 0) {
      continue; // handle each 4-tuple once, anchored at t1 = t0 = 0
    }
    const std::uint64_t i00 = i;
    const std::uint64_t i01 = i | b0;
    const std::uint64_t i10 = i | b1;
    const std::uint64_t i11 = i | b1 | b0;
    const std::complex<double> a[4] = {amps[i00], amps[i01], amps[i10],
                                       amps[i11]};
    const std::uint64_t idx[4] = {i00, i01, i10, i11};
    for (int r = 0; r < 4; ++r) {
      std::complex<double> sum = 0.;
      for (int c = 0; c < 4; ++c) {
        sum += mat[static_cast<std::size_t>(r * 4 + c)].toStdComplex() * a[c];
      }
      amps[idx[r]] = sum;
    }
  }
}

void DenseStateVector::apply(const ir::Operation& op) {
  if (op.type() == ir::OpType::Barrier) {
    return;
  }
  if (const auto* comp = dynamic_cast<const ir::CompoundOperation*>(&op)) {
    for (const auto& sub : comp->operations()) {
      apply(*sub);
    }
    return;
  }
  if (!op.isStandardOperation()) {
    throw std::invalid_argument("DenseStateVector: cannot apply '" +
                                op.name() + "'");
  }
  if (op.type() == ir::OpType::SWAP) {
    applySwap(op.targets().at(0), op.targets().at(1), op.controls());
    return;
  }
  if (op.type() == ir::OpType::iSWAP || op.type() == ir::OpType::iSWAPdg ||
      op.type() == ir::OpType::DCX) {
    if (!op.controls().empty()) {
      throw std::invalid_argument("DenseStateVector: controlled " +
                                  ir::toString(op.type()) +
                                  " is not supported");
    }
    const TwoQubitGateMatrix& mat =
        op.type() == ir::OpType::iSWAP
            ? ISWAP_MAT
            : (op.type() == ir::OpType::iSWAPdg ? ISWAPDG_MAT : DCX_MAT);
    applyTwoQubit(mat, op.targets().at(0), op.targets().at(1));
    return;
  }
  applyGate(matrixFor(op.type(), op.parameters()), op.targets().at(0),
            op.controls());
}

void DenseStateVector::run(const ir::QuantumComputation& qc) {
  if (qc.numQubits() != nqubits) {
    throw std::invalid_argument("DenseStateVector: qubit count mismatch");
  }
  for (const auto& op : qc) {
    apply(*op);
  }
}

double DenseStateVector::norm() const {
  double n2 = 0.;
  for (const auto& a : amps) {
    n2 += std::norm(a);
  }
  return n2;
}

double DenseStateVector::probabilityOfOne(Qubit q) const {
  const std::uint64_t bit = 1ULL << static_cast<unsigned>(q);
  double p = 0.;
  for (std::uint64_t i = 0; i < amps.size(); ++i) {
    if ((i & bit) != 0) {
      p += std::norm(amps[i]);
    }
  }
  return p / norm();
}

int DenseStateVector::measure(Qubit q, std::mt19937_64& rng) {
  const double p1 = probabilityOfOne(q);
  std::uniform_real_distribution<double> dist(0., 1.);
  const bool outcome = dist(rng) < p1;
  collapse(q, outcome);
  return outcome ? 1 : 0;
}

void DenseStateVector::collapse(Qubit q, bool outcome) {
  const std::uint64_t bit = 1ULL << static_cast<unsigned>(q);
  const double p1 = probabilityOfOne(q);
  const double p = outcome ? p1 : 1. - p1;
  if (p <= 1e-12) {
    throw std::invalid_argument("collapse: outcome has zero probability");
  }
  const double scale = 1. / std::sqrt(p);
  for (std::uint64_t i = 0; i < amps.size(); ++i) {
    const bool set = (i & bit) != 0;
    if (set == outcome) {
      amps[i] *= scale;
    } else {
      amps[i] = {0., 0.};
    }
  }
}

std::string DenseStateVector::sample(std::mt19937_64& rng) const {
  std::uniform_real_distribution<double> dist(0., norm());
  double u = dist(rng);
  std::uint64_t chosen = amps.size() - 1;
  for (std::uint64_t i = 0; i < amps.size(); ++i) {
    u -= std::norm(amps[i]);
    if (u <= 0.) {
      chosen = i;
      break;
    }
  }
  std::string bits(nqubits, '0');
  for (std::size_t k = 0; k < nqubits; ++k) {
    if ((chosen >> k) & 1ULL) {
      bits[nqubits - 1 - k] = '1';
    }
  }
  return bits;
}

// --- DenseUnitary ----------------------------------------------------------------

DenseUnitary::DenseUnitary(std::size_t numQubits)
    : nqubits(numQubits), dim(1ULL << numQubits),
      mat(dim * dim, {0., 0.}) {
  if (numQubits == 0 || numQubits > 13) {
    throw std::invalid_argument("DenseUnitary: unsupported qubit count");
  }
  for (std::uint64_t k = 0; k < dim; ++k) {
    mat[k * dim + k] = {1., 0.};
  }
}

void DenseUnitary::applyGate(const GateMatrix& gate, Qubit target,
                             const QubitControls& controls) {
  // Left-multiplication acts on the rows; apply per column.
  const std::uint64_t tBit = 1ULL << static_cast<unsigned>(target);
  for (std::uint64_t col = 0; col < dim; ++col) {
    for (std::uint64_t r = 0; r < dim; ++r) {
      if ((r & tBit) != 0) {
        continue;
      }
      bool satisfied = true;
      for (const auto& c : controls) {
        const bool set = (r >> static_cast<unsigned>(c.qubit)) & 1ULL;
        if (set != c.positive) {
          satisfied = false;
          break;
        }
      }
      if (!satisfied) {
        continue;
      }
      const std::uint64_t r1 = r | tBit;
      const auto a0 = mat[r * dim + col];
      const auto a1 = mat[r1 * dim + col];
      mat[r * dim + col] =
          gate[0].toStdComplex() * a0 + gate[1].toStdComplex() * a1;
      mat[r1 * dim + col] =
          gate[2].toStdComplex() * a0 + gate[3].toStdComplex() * a1;
    }
  }
}

void DenseUnitary::applySwap(Qubit a, Qubit b, const QubitControls& controls) {
  const std::uint64_t aBit = 1ULL << static_cast<unsigned>(a);
  const std::uint64_t bBit = 1ULL << static_cast<unsigned>(b);
  for (std::uint64_t col = 0; col < dim; ++col) {
    for (std::uint64_t r = 0; r < dim; ++r) {
      if ((r & aBit) != 0 || (r & bBit) == 0) {
        continue;
      }
      bool satisfied = true;
      for (const auto& c : controls) {
        const bool set = (r >> static_cast<unsigned>(c.qubit)) & 1ULL;
        if (set != c.positive) {
          satisfied = false;
          break;
        }
      }
      if (!satisfied) {
        continue;
      }
      std::swap(mat[r * dim + col], mat[((r | aBit) & ~bBit) * dim + col]);
    }
  }
}

void DenseUnitary::apply(const ir::Operation& op) {
  if (op.type() == ir::OpType::Barrier) {
    return;
  }
  if (const auto* comp = dynamic_cast<const ir::CompoundOperation*>(&op)) {
    for (const auto& sub : comp->operations()) {
      apply(*sub);
    }
    return;
  }
  if (!op.isStandardOperation()) {
    throw std::invalid_argument("DenseUnitary: cannot apply '" + op.name() +
                                "'");
  }
  if (op.type() == ir::OpType::SWAP) {
    applySwap(op.targets().at(0), op.targets().at(1), op.controls());
    return;
  }
  applyGate(matrixFor(op.type(), op.parameters()), op.targets().at(0),
            op.controls());
}

void DenseUnitary::run(const ir::QuantumComputation& qc) {
  if (qc.numQubits() != nqubits) {
    throw std::invalid_argument("DenseUnitary: qubit count mismatch");
  }
  for (const auto& op : qc) {
    apply(*op);
  }
}

double DenseUnitary::distance(const DenseUnitary& other) const {
  if (other.dim != dim) {
    throw std::invalid_argument("DenseUnitary: dimension mismatch");
  }
  double maxDiff = 0.;
  for (std::uint64_t k = 0; k < dim * dim; ++k) {
    maxDiff = std::max(maxDiff, std::abs(mat[k] - other.mat[k]));
  }
  return maxDiff;
}

} // namespace qdd::baseline
