#include "qdd/complex/Simd.hpp"

#include <cstdlib>
#include <cstring>

namespace qdd::simd {

namespace {

/// QDD_SIMD=scalar (case-sensitive, matching the other QDD_* switches)
/// forces the scalar fallback; anything else — unset, empty, "auto" — keeps
/// the compiled-in mode.
bool envForcesScalar() noexcept {
  const char* env = std::getenv("QDD_SIMD");
  return env != nullptr && std::strcmp(env, "scalar") == 0;
}

} // namespace

namespace detail {
bool envScalar = envForcesScalar();
std::atomic<int> overrideDepth{0};
} // namespace detail

const char* toString(Mode mode) noexcept {
  switch (mode) {
  case Mode::Scalar:
    return "scalar";
  case Mode::SSE2:
    return "sse2";
  case Mode::AVX2:
    return "avx2";
  }
  return "unknown";
}

ScopedScalarOverride::ScopedScalarOverride() {
  detail::overrideDepth.fetch_add(1, std::memory_order_relaxed);
}

ScopedScalarOverride::~ScopedScalarOverride() {
  detail::overrideDepth.fetch_sub(1, std::memory_order_relaxed);
}

} // namespace qdd::simd
