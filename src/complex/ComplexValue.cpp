#include "qdd/complex/ComplexValue.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>

namespace qdd {

std::string ComplexValue::toString(int precision) const {
  std::ostringstream ss;
  ss << std::setprecision(precision);
  if (im == 0.) {
    ss << re;
  } else if (re == 0.) {
    ss << im << "i";
  } else {
    ss << re << (im < 0. ? "-" : "+") << std::abs(im) << "i";
  }
  return ss.str();
}

std::ostream& operator<<(std::ostream& os, const ComplexValue& c) {
  return os << c.toString();
}

} // namespace qdd
