#include "qdd/complex/RealTable.hpp"

#include "qdd/complex/ComplexValue.hpp"
#include "qdd/complex/Simd.hpp"

#include <algorithm>
#include <cmath>

namespace qdd {

RealTable::Entry RealTable::zeroEntry = [] {
  Entry e{0.};
  e.immortal = true;
  return e;
}();
RealTable::Entry RealTable::oneEntry = [] {
  Entry e{1.};
  e.immortal = true;
  return e;
}();
RealTable::Entry RealTable::sqrt2Entry = [] {
  Entry e{SQRT2_2};
  e.immortal = true;
  return e;
}();

RealTable::RealTable(double tolerance) : tol(tolerance) {}

RealTable::~RealTable() = default;

std::size_t RealTable::bucketOf(double val,
                                std::size_t nbuckets) const noexcept {
  // Values are predominantly in [0, 1]; everything >= 1 shares the top
  // buckets via a compressed logarithmic mapping so large magnitudes do not
  // all collide in a single bucket.
  if (val < 1.) {
    return static_cast<std::size_t>(val * static_cast<double>(nbuckets / 2));
  }
  const double l = std::log2(val) * 64.;
  const auto idx = nbuckets / 2 + static_cast<std::size_t>(l);
  return std::min(idx, nbuckets - 1);
}

void RealTable::grow() {
  std::vector<Entry*> next(table.size() * 2, nullptr);
  for (Entry* bucket : table) {
    while (bucket != nullptr) {
      Entry* e = bucket;
      bucket = e->next;
      const std::size_t key = bucketOf(e->value, next.size());
      e->next = next[key];
      next[key] = e;
    }
  }
  table = std::move(next);
  ++numRehashes;
}

RealTable::Entry* RealTable::lookup(double val) {
  assert(val >= 0. && "RealTable only stores non-negative values");
  if (concurrent) {
    return lookupConcurrent(val);
  }
  ++numLookups;

  // Fast paths for the three immortal constants. The two non-zero ones are
  // classified in a single lane-parallel compare (same priority order and
  // exact comparisons as the branch chain it replaces).
  if (std::abs(val) <= tol) {
    ++numHits;
    return &zeroEntry;
  }
  switch (simd::classifyImmortal(val, tol)) {
  case 1:
    ++numHits;
    return &oneEntry;
  case 2:
    ++numHits;
    return &sqrt2Entry;
  default:
    break;
  }

  const std::size_t key = bucketOf(val, table.size());
  // The tolerance window may straddle a bucket boundary; probe neighbours.
  const std::size_t lo = bucketOf(std::max(val - tol, 0.), table.size());
  const std::size_t hi = bucketOf(val + tol, table.size());
  for (std::size_t k = lo; k <= hi; ++k) {
    for (Entry* e = table[k]; e != nullptr; e = e->next) {
      if (std::abs(e->value - val) <= tol) {
        ++numHits;
        return e;
      }
    }
  }

  Entry* e = allocate(val);
  e->next = table[key];
  table[key] = e;
  ++numEntries;
  peakEntries = std::max(peakEntries, numEntries);
  if (e->next != nullptr) {
    ++numCollisions;
  }
  if (numEntries > table.size()) {
    grow();
  }
  return e;
}

RealTable::Entry* RealTable::lookupConcurrent(double val) {
  __atomic_fetch_add(&numLookups, 1, __ATOMIC_RELAXED);

  if (std::abs(val) <= tol) {
    __atomic_fetch_add(&numHits, 1, __ATOMIC_RELAXED);
    return &zeroEntry;
  }
  switch (simd::classifyImmortal(val, tol)) {
  case 1:
    __atomic_fetch_add(&numHits, 1, __ATOMIC_RELAXED);
    return &oneEntry;
  case 2:
    __atomic_fetch_add(&numHits, 1, __ATOMIC_RELAXED);
    return &sqrt2Entry;
  default:
    break;
  }

  // Growth is deferred to quiescent points in concurrent mode, so the
  // bucket array is pinned for the whole fork/join region and the chain
  // heads are stable CAS targets. Chain links of *published* entries are
  // immutable until the next quiescent GC/grow, so an acquire walk is safe.
  const std::size_t key = bucketOf(val, table.size());
  const std::size_t lo = bucketOf(std::max(val - tol, 0.), table.size());
  const std::size_t hi = bucketOf(val + tol, table.size());
  for (std::size_t k = lo; k <= hi; ++k) {
    for (Entry* e = __atomic_load_n(&table[k], __ATOMIC_ACQUIRE);
         e != nullptr; e = __atomic_load_n(&e->next, __ATOMIC_ACQUIRE)) {
      if (std::abs(e->value - val) <= tol) {
        __atomic_fetch_add(&numHits, 1, __ATOMIC_RELAXED);
        return e;
      }
    }
  }

  Entry* e = allocate(val);
  Entry* head = __atomic_load_n(&table[key], __ATOMIC_ACQUIRE);
  for (;;) {
    // Re-walk the key bucket from the freshly observed head: a racing
    // worker may have inserted an equal value since our scan above (the
    // neighbour buckets' race window is accepted — it can only produce a
    // duplicate within tolerance, never a wrong value; see
    // docs/PARALLELISM.md on the tolerance-aliasing caveat).
    for (Entry* c = head; c != nullptr;
         c = __atomic_load_n(&c->next, __ATOMIC_ACQUIRE)) {
      if (std::abs(c->value - val) <= tol) {
        pool.release(e);
        __atomic_fetch_add(&numHits, 1, __ATOMIC_RELAXED);
        return c;
      }
    }
    e->next = head;
    if (__atomic_compare_exchange_n(&table[key], &head, e, false,
                                    __ATOMIC_RELEASE, __ATOMIC_ACQUIRE)) {
      break;
    }
    __atomic_fetch_add(&numCasRetries, 1, __ATOMIC_RELAXED);
  }
  const std::size_t now = __atomic_add_fetch(&numEntries, 1, __ATOMIC_RELAXED);
  std::size_t peak = __atomic_load_n(&peakEntries, __ATOMIC_RELAXED);
  while (now > peak &&
         !__atomic_compare_exchange_n(&peakEntries, &peak, now, true,
                                      __ATOMIC_RELAXED, __ATOMIC_RELAXED)) {
  }
  if (e->next != nullptr) {
    __atomic_fetch_add(&numCollisions, 1, __ATOMIC_RELAXED);
  }
  return e;
}

RealTable::Entry* RealTable::allocate(double val) {
  Entry* e = pool.get();
  // Reinitialize everything except the generation the pool just stamped.
  e->value = val;
  e->next = nullptr;
  e->ref = 0;
  e->immortal = false;
  return e;
}

void RealTable::incRef(Entry* e) noexcept {
  if (e == nullptr || e->immortal) {
    return;
  }
  ++e->ref;
}

void RealTable::decRef(Entry* e) noexcept {
  if (e == nullptr || e->immortal) {
    return;
  }
  assert(e->ref > 0 && "reference count underflow in RealTable");
  --e->ref;
}

void RealTable::incRefAtomic(Entry* e) noexcept {
  if (e == nullptr || e->immortal) {
    return;
  }
  __atomic_fetch_add(&e->ref, 1, __ATOMIC_RELAXED);
}

void RealTable::decRefAtomic(Entry* e) noexcept {
  if (e == nullptr || e->immortal) {
    return;
  }
  assert(__atomic_load_n(&e->ref, __ATOMIC_RELAXED) > 0 &&
         "reference count underflow in RealTable");
  __atomic_fetch_sub(&e->ref, 1, __ATOMIC_RELAXED);
}

std::size_t RealTable::garbageCollect() {
  std::size_t collected = 0;
  for (auto& bucket : table) {
    Entry** link = &bucket;
    while (*link != nullptr) {
      Entry* e = *link;
      if (!e->immortal && e->ref == 0) {
        *link = e->next;
        pool.release(e);
        ++collected;
      } else {
        link = &e->next;
      }
    }
  }
  numEntries -= collected;
  // Grow the threshold if collection freed little, so we do not thrash.
  if (collected < numEntries / 8) {
    gcThreshold *= 2;
  }
  return collected;
}

void RealTable::clear() {
  for (auto& bucket : table) {
    Entry* e = bucket;
    while (e != nullptr) {
      Entry* next = e->next;
      pool.release(e);
      e = next;
    }
    bucket = nullptr;
  }
  numEntries = 0;
  gcThreshold = GC_INITIAL_THRESHOLD;
}

mem::RealTableStats RealTable::stats() const noexcept {
  mem::RealTableStats s;
  s.entries = numEntries;
  s.peakEntries = peakEntries;
  s.lookups = numLookups;
  s.hits = numHits;
  s.collisions = numCollisions;
  s.buckets = table.size();
  s.rehashes = numRehashes;
  s.casRetries = numCasRetries;
  s.memory = pool.stats();
  return s;
}

} // namespace qdd
