// Tests for the stabilizer-tableau baseline: agreement with the DD
// simulator on Clifford circuits, measurement semantics, and the gate-set
// restriction that defines it.

#include "qdd/baseline/StabilizerSimulator.hpp"
#include "qdd/bridge/DDBuilder.hpp"
#include "qdd/ir/Builders.hpp"

#include <gtest/gtest.h>

namespace qdd::baseline {
namespace {

ir::QuantumComputation randomClifford(std::size_t n, std::size_t depth,
                                      std::uint64_t seed) {
  // restriction of randomCliffordT to Clifford-only gates
  ir::QuantumComputation qc(n, 0, "clifford");
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> gateDist(0, 4);
  std::uniform_int_distribution<std::size_t> qubitDist(0, n - 1);
  for (std::size_t k = 0; k < depth; ++k) {
    const auto q = static_cast<Qubit>(qubitDist(rng));
    switch (gateDist(rng)) {
    case 0:
      qc.h(q);
      break;
    case 1:
      qc.s(q);
      break;
    case 2:
      qc.x(q);
      break;
    case 3:
      qc.z(q);
      break;
    default: {
      if (n == 1) {
        qc.h(q);
        break;
      }
      Qubit t = q;
      while (t == q) {
        t = static_cast<Qubit>(qubitDist(rng));
      }
      qc.cx(q, t);
      break;
    }
    }
  }
  return qc;
}

TEST(Stabilizer, InitialState) {
  StabilizerSimulator sim(3);
  for (Qubit q = 0; q < 3; ++q) {
    EXPECT_EQ(sim.peek(q), StabilizerSimulator::Outcome::Zero);
    EXPECT_DOUBLE_EQ(sim.probabilityOfOne(q), 0.);
  }
}

TEST(Stabilizer, XFlipsDeterministically) {
  StabilizerSimulator sim(2);
  sim.x(0);
  EXPECT_EQ(sim.peek(0), StabilizerSimulator::Outcome::One);
  EXPECT_EQ(sim.peek(1), StabilizerSimulator::Outcome::Zero);
}

TEST(Stabilizer, HadamardGivesRandomOutcome) {
  StabilizerSimulator sim(1);
  sim.h(0);
  EXPECT_EQ(sim.peek(0), StabilizerSimulator::Outcome::Random);
  EXPECT_DOUBLE_EQ(sim.probabilityOfOne(0), 0.5);
}

TEST(Stabilizer, BellPairCorrelations) {
  StabilizerSimulator sim(2);
  sim.h(1);
  sim.cx(1, 0);
  EXPECT_EQ(sim.peek(0), StabilizerSimulator::Outcome::Random);
  std::mt19937_64 rng(7);
  for (int round = 0; round < 20; ++round) {
    StabilizerSimulator copy = sim;
    const int first = copy.measure(0, rng);
    // entanglement: the second measurement is now deterministic
    EXPECT_EQ(copy.peek(1), first == 1
                                ? StabilizerSimulator::Outcome::One
                                : StabilizerSimulator::Outcome::Zero);
    EXPECT_EQ(copy.measure(1, rng), first);
  }
}

TEST(Stabilizer, SEquivalenceSSIsZ) {
  StabilizerSimulator a(1);
  a.h(0);
  a.s(0);
  a.s(0);
  a.h(0); // H Z H = X
  EXPECT_EQ(a.peek(0), StabilizerSimulator::Outcome::One);
}

TEST(Stabilizer, GhzSampling) {
  StabilizerSimulator sim(5);
  sim.h(4);
  for (Qubit q = 4; q > 0; --q) {
    sim.cx(q, q - 1);
  }
  std::mt19937_64 rng(3);
  for (int s = 0; s < 50; ++s) {
    const std::string bits = sim.sample(rng);
    EXPECT_TRUE(bits == "00000" || bits == "11111") << bits;
  }
}

TEST(Stabilizer, AgreesWithDDSimulatorOnRandomCliffords) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const std::size_t n = 5;
    const auto qc = randomClifford(n, 80, seed);
    StabilizerSimulator stab(n);
    stab.run(qc);
    Package pkg(n);
    const vEdge dd = bridge::simulate(qc, pkg.makeZeroState(n), pkg);
    for (Qubit q = 0; q < static_cast<Qubit>(n); ++q) {
      EXPECT_NEAR(stab.probabilityOfOne(q), pkg.probabilityOfOne(dd, q),
                  1e-9)
          << "seed " << seed << " qubit " << q;
    }
  }
}

TEST(Stabilizer, MeasurementCollapseAgreesWithDD) {
  const auto qc = randomClifford(4, 60, 42);
  std::mt19937_64 rng(11);
  for (int round = 0; round < 10; ++round) {
    StabilizerSimulator stab(4);
    stab.run(qc);
    Package pkg(4);
    vEdge dd = bridge::simulate(qc, pkg.makeZeroState(4), pkg);
    pkg.incRef(dd);
    for (Qubit q = 0; q < 4; ++q) {
      const int outcome = stab.measure(q, rng);
      // force the same outcome on the DD side and compare the remaining
      // qubit probabilities
      pkg.forceMeasureOne(dd, q, outcome == 1);
      for (Qubit r = 0; r < 4; ++r) {
        EXPECT_NEAR(stab.probabilityOfOne(r), pkg.probabilityOfOne(dd, r),
                    1e-9);
      }
    }
    pkg.decRef(dd);
  }
}

TEST(Stabilizer, DerivedGatesMatchDefinitions) {
  // Y = i X Z (phases irrelevant): check expectation behaviour on |0>, |1>
  StabilizerSimulator sim(1);
  sim.y(0);
  EXPECT_EQ(sim.peek(0), StabilizerSimulator::Outcome::One);
  StabilizerSimulator sw(2);
  sw.x(0);
  sw.swap(0, 1);
  EXPECT_EQ(sw.peek(0), StabilizerSimulator::Outcome::Zero);
  EXPECT_EQ(sw.peek(1), StabilizerSimulator::Outcome::One);
}

TEST(Stabilizer, CliffordOnlyRestriction) {
  StabilizerSimulator sim(2);
  ir::QuantumComputation qc(2);
  qc.t(0);
  EXPECT_THROW(sim.run(qc), std::invalid_argument);
  ir::QuantumComputation ccx(3);
  ccx.ccx(0, 1, 2);
  StabilizerSimulator sim3(3);
  EXPECT_THROW(sim3.run(ccx), std::invalid_argument);
}

TEST(Stabilizer, CzViaConjugation) {
  ir::QuantumComputation qc(2);
  qc.h(0);
  qc.h(1);
  qc.cz(0, 1);
  qc.h(1);
  // equivalent to CX(0,1) sandwich: |+>|0> -> Bell
  StabilizerSimulator sim(2);
  sim.run(qc);
  std::mt19937_64 rng(5);
  for (int s = 0; s < 20; ++s) {
    const std::string bits = sim.sample(rng);
    EXPECT_TRUE(bits == "00" || bits == "11") << bits;
  }
}

} // namespace
} // namespace qdd::baseline
