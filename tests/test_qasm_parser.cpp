#include "qdd/parser/qasm/Parser.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace qdd::qasm {
namespace {

constexpr double PI_T = 3.14159265358979323846;

TEST(QasmParser, MinimalProgram) {
  const auto qc = parse("OPENQASM 2.0;\nqreg q[2];\n");
  EXPECT_EQ(qc.numQubits(), 2U);
  EXPECT_EQ(qc.size(), 0U);
}

TEST(QasmParser, BellCircuit) {
  const auto qc = parse(R"(
OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
creg c[2];
h q[1];
cx q[1], q[0];
)");
  ASSERT_EQ(qc.size(), 2U);
  EXPECT_EQ(qc.at(0).type(), ir::OpType::H);
  EXPECT_EQ(qc.at(0).targets()[0], 1);
  EXPECT_EQ(qc.at(1).type(), ir::OpType::X);
  EXPECT_EQ(qc.at(1).controls()[0].qubit, 1);
}

TEST(QasmParser, BuiltinUAndCX) {
  const auto qc = parse(R"(
OPENQASM 2.0;
qreg q[2];
U(pi/2, 0, pi) q[0];
CX q[0], q[1];
)");
  ASSERT_EQ(qc.size(), 2U);
  EXPECT_EQ(qc.at(0).type(), ir::OpType::U3);
  EXPECT_NEAR(qc.at(0).parameters()[0], PI_T / 2., 1e-12);
  EXPECT_NEAR(qc.at(0).parameters()[2], PI_T, 1e-12);
  EXPECT_EQ(qc.at(1).type(), ir::OpType::X);
}

TEST(QasmParser, ParameterExpressions) {
  const auto qc = parse(R"(
OPENQASM 2.0;
qreg q[1];
rz(2*pi/4 + 1.5 - 0.5) q[0];
rx(-pi^2/pi) q[0];
ry(sin(pi/2)) q[0];
p(sqrt(4)) q[0];
)");
  ASSERT_EQ(qc.size(), 4U);
  EXPECT_NEAR(qc.at(0).parameters()[0], PI_T / 2. + 1., 1e-12);
  EXPECT_NEAR(qc.at(1).parameters()[0], -PI_T, 1e-12);
  EXPECT_NEAR(qc.at(2).parameters()[0], 1., 1e-12);
  EXPECT_NEAR(qc.at(3).parameters()[0], 2., 1e-12);
}

TEST(QasmParser, RegisterBroadcast) {
  const auto qc = parse(R"(
OPENQASM 2.0;
qreg q[3];
h q;
)");
  ASSERT_EQ(qc.size(), 3U);
  for (std::size_t k = 0; k < 3; ++k) {
    EXPECT_EQ(qc.at(k).type(), ir::OpType::H);
    EXPECT_EQ(qc.at(k).targets()[0], static_cast<Qubit>(k));
  }
}

TEST(QasmParser, TwoRegisterBroadcast) {
  const auto qc = parse(R"(
OPENQASM 2.0;
qreg a[2];
qreg b[2];
cx a, b;
)");
  ASSERT_EQ(qc.size(), 2U);
  EXPECT_EQ(qc.at(0).controls()[0].qubit, 0);
  EXPECT_EQ(qc.at(0).targets()[0], 2);
  EXPECT_EQ(qc.at(1).controls()[0].qubit, 1);
  EXPECT_EQ(qc.at(1).targets()[0], 3);
}

TEST(QasmParser, MeasureBroadcastAndSingle) {
  const auto qc = parse(R"(
OPENQASM 2.0;
qreg q[2];
creg c[2];
measure q -> c;
measure q[0] -> c[1];
)");
  ASSERT_EQ(qc.size(), 2U);
  const auto* m0 =
      dynamic_cast<const ir::NonUnitaryOperation*>(&qc.at(0));
  ASSERT_NE(m0, nullptr);
  EXPECT_EQ(m0->targets().size(), 2U);
  const auto* m1 =
      dynamic_cast<const ir::NonUnitaryOperation*>(&qc.at(1));
  ASSERT_NE(m1, nullptr);
  EXPECT_EQ(m1->classics()[0], 1U);
}

TEST(QasmParser, ResetAndBarrier) {
  const auto qc = parse(R"(
OPENQASM 2.0;
qreg q[2];
reset q[0];
barrier q;
barrier;
)");
  ASSERT_EQ(qc.size(), 3U);
  EXPECT_EQ(qc.at(0).type(), ir::OpType::Reset);
  EXPECT_EQ(qc.at(1).type(), ir::OpType::Barrier);
  EXPECT_EQ(qc.at(2).type(), ir::OpType::Barrier);
  EXPECT_EQ(qc.at(2).targets().size(), 2U);
}

TEST(QasmParser, ClassicControlled) {
  const auto qc = parse(R"(
OPENQASM 2.0;
qreg q[2];
creg c[2];
measure q[0] -> c[0];
if (c == 1) x q[1];
)");
  ASSERT_EQ(qc.size(), 2U);
  const auto* cc =
      dynamic_cast<const ir::ClassicControlledOperation*>(&qc.at(1));
  ASSERT_NE(cc, nullptr);
  EXPECT_EQ(cc->expectedValue(), 1U);
  EXPECT_EQ(cc->numClbits(), 2U);
  EXPECT_EQ(cc->operation().type(), ir::OpType::X);
}

TEST(QasmParser, GateDefinitionExpansion) {
  const auto qc = parse(R"(
OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
gate mygate(theta) a, b {
  h a;
  cx a, b;
  rz(theta/2) b;
}
mygate(pi) q[0], q[1];
)");
  ASSERT_EQ(qc.size(), 1U);
  const auto* comp = dynamic_cast<const ir::CompoundOperation*>(&qc.at(0));
  ASSERT_NE(comp, nullptr);
  EXPECT_EQ(comp->label(), "mygate");
  ASSERT_EQ(comp->size(), 3U);
  EXPECT_EQ(comp->operations()[0]->type(), ir::OpType::H);
  EXPECT_EQ(comp->operations()[1]->type(), ir::OpType::X);
  EXPECT_NEAR(comp->operations()[2]->parameters()[0], PI_T / 2., 1e-12);
}

TEST(QasmParser, NestedGateDefinitions) {
  const auto qc = parse(R"(
OPENQASM 2.0;
qreg q[2];
gate inner a { U(0,0,pi) a; }
gate outer a, b { inner a; CX a, b; inner b; }
outer q[0], q[1];
)");
  ASSERT_EQ(qc.size(), 1U);
  const auto* comp = dynamic_cast<const ir::CompoundOperation*>(&qc.at(0));
  ASSERT_NE(comp, nullptr);
  EXPECT_EQ(comp->size(), 3U);
}

TEST(QasmParser, QelibGateZoo) {
  const auto qc = parse(R"(
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
id q[0]; x q[0]; y q[0]; z q[0]; h q[0]; s q[0]; sdg q[0];
t q[0]; tdg q[0]; sx q[0]; sxdg q[0];
rx(0.1) q[0]; ry(0.2) q[0]; rz(0.3) q[0];
u1(0.4) q[0]; u2(0.5,0.6) q[0]; u3(0.7,0.8,0.9) q[0]; p(1.0) q[0];
cx q[0],q[1]; cy q[0],q[1]; cz q[0],q[1]; ch q[0],q[1];
crx(0.1) q[0],q[1]; cry(0.2) q[0],q[1]; crz(0.3) q[0],q[1];
cp(0.4) q[0],q[1]; cu1(0.5) q[0],q[1]; cu3(0.6,0.7,0.8) q[0],q[1];
ccx q[0],q[1],q[2]; swap q[0],q[1]; cswap q[0],q[1],q[2];
)");
  EXPECT_EQ(qc.size(), 31U);
}

TEST(QasmParser, Comments) {
  const auto qc = parse(R"(
// leading comment
OPENQASM 2.0; // trailing comment
qreg q[1];
// h q[0]; (commented out)
x q[0];
)");
  ASSERT_EQ(qc.size(), 1U);
  EXPECT_EQ(qc.at(0).type(), ir::OpType::X);
}

TEST(QasmParser, ErrorMissingSemicolon) {
  try {
    (void)parse("OPENQASM 2.0;\nqreg q[1]\nx q[0];\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 3U);
  }
}

TEST(QasmParser, ErrorUnknownGate) {
  EXPECT_THROW((void)parse("OPENQASM 2.0;\nqreg q[1];\nfrobnicate q[0];\n"),
               ParseError);
}

TEST(QasmParser, ErrorUnknownRegister) {
  EXPECT_THROW((void)parse("OPENQASM 2.0;\nqreg q[1];\nx r[0];\n"),
               ParseError);
}

TEST(QasmParser, ErrorIndexOutOfRange) {
  EXPECT_THROW((void)parse("OPENQASM 2.0;\nqreg q[2];\nx q[2];\n"),
               ParseError);
}

TEST(QasmParser, ErrorDuplicateOperand) {
  EXPECT_THROW((void)parse("OPENQASM 2.0;\nqreg q[2];\ncx q[0], q[0];\n"),
               ParseError);
}

TEST(QasmParser, ErrorWrongVersion) {
  EXPECT_THROW((void)parse("OPENQASM 3.0;\nqreg q[1];\n"), ParseError);
}

TEST(QasmParser, ErrorBadInclude) {
  EXPECT_THROW((void)parse("OPENQASM 2.0;\ninclude \"other.inc\";\n"),
               ParseError);
}

TEST(QasmParser, ErrorOpaqueUse) {
  EXPECT_THROW((void)parse(R"(
OPENQASM 2.0;
qreg q[1];
opaque blackbox a;
blackbox q[0];
)"),
               ParseError);
}

TEST(QasmParser, ErrorParamCountMismatch) {
  EXPECT_THROW((void)parse("OPENQASM 2.0;\nqreg q[1];\nrx() q[0];\n"),
               ParseError);
  EXPECT_THROW((void)parse("OPENQASM 2.0;\nqreg q[1];\nh(0.5) q[0];\n"),
               ParseError);
}

TEST(QasmParser, ErrorBroadcastSizeMismatch) {
  EXPECT_THROW((void)parse(R"(
OPENQASM 2.0;
qreg a[2];
qreg b[3];
cx a, b;
)"),
               ParseError);
}

TEST(QasmParser, RoundTripThroughDump) {
  const auto original = parse(R"(
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg c[3];
h q[2];
cp(pi/2) q[1], q[2];
cp(pi/4) q[0], q[2];
h q[1];
cp(pi/2) q[0], q[1];
h q[0];
swap q[0], q[2];
measure q -> c;
)");
  // Dumping is a fixed point under reparsing (a broadcast measure dumps as
  // per-qubit statements, so op counts may differ on the first round trip,
  // but the textual form stabilizes).
  const auto reparsed = parse(original.toOpenQASM());
  EXPECT_EQ(original.toOpenQASM(), reparsed.toOpenQASM());
}

} // namespace
} // namespace qdd::qasm
