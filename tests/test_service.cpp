// Loopback protocol tests of qdd::service: session lifecycle over real
// sockets, admission control (413/429), deadline enforcement (structured
// 408 with the work stopped at a gate boundary), TTL eviction, drain mode,
// and concurrent session isolation.

#include "qdd/dd/Package.hpp"
#include "qdd/dd/Serialization.hpp"
#include "qdd/ir/Builders.hpp"
#include "qdd/obs/TraceCheck.hpp"
#include "qdd/obs/TraceContext.hpp"
#include "qdd/service/Api.hpp"
#include "qdd/service/HttpServer.hpp"
#include "qdd/service/Json.hpp"
#include "qdd/service/Router.hpp"
#include "qdd/service/SessionStore.hpp"
#include "qdd/sim/SimulationSession.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/time.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

namespace {

using namespace qdd;
using service::json::Value;

// --- json unit ---------------------------------------------------------------

TEST(ServiceJsonTest, RoundTripsDocuments) {
  const std::string doc =
      R"({"a": [1, 2.5, -3e2], "b": {"nested": true}, "s": "x\ny", "z": null})";
  const Value v = Value::parse(doc);
  EXPECT_DOUBLE_EQ(v.find("a")->asArray()[2].asNumber(), -300.);
  EXPECT_TRUE(v.find("b")->getBool("nested", false));
  EXPECT_EQ(v.find("s")->asString(), "x\ny");
  EXPECT_TRUE(v.find("z")->isNull());
  // dump -> parse -> dump is a fixed point
  const std::string dumped = Value::parse(v.dump()).dump();
  EXPECT_EQ(dumped, v.dump());
}

TEST(ServiceJsonTest, RejectsMalformedInput) {
  EXPECT_THROW(Value::parse(""), service::json::ParseError);
  EXPECT_THROW(Value::parse("{\"a\": 1,}"), service::json::ParseError);
  EXPECT_THROW(Value::parse("{} trailing"), service::json::ParseError);
  EXPECT_THROW(Value::parse("\"unterminated"), service::json::ParseError);
  EXPECT_THROW(Value::parse("\"bad \x01 control\""),
               service::json::ParseError);
  EXPECT_THROW(Value::parse("+1"), service::json::ParseError);
  EXPECT_THROW(Value::parse("1e999"), service::json::ParseError); // Inf
  std::string deep;
  for (int i = 0; i < 100; ++i) {
    deep += "[";
  }
  EXPECT_THROW(Value::parse(deep), service::json::ParseError);
}

TEST(ServiceJsonTest, DecodesUnicodeEscapes) {
  const Value v = Value::parse(R"("pi: π, tab: \t")");
  EXPECT_EQ(v.asString(), "pi: \xcf\x80, tab: \t");
}

TEST(ServiceJsonTest, NonFiniteNumbersSerializeAsNull) {
  EXPECT_EQ(Value::number(std::numeric_limits<double>::quiet_NaN()).dump(),
            "null");
  EXPECT_EQ(Value::number(std::numeric_limits<double>::infinity()).dump(),
            "null");
}

// --- router unit -------------------------------------------------------------

TEST(ServiceRouterTest, MatchesPatternsAndCaptures) {
  service::Router router;
  std::string seen;
  router.add("GET", "/v1/sessions/{id}/dd",
             [&seen](const service::HttpRequest&,
                     const service::PathParams& params) {
               seen = params.at("id");
               return service::HttpResponse::json(200, "{}");
             });
  service::HttpRequest request;
  request.method = "GET";
  request.path = "/v1/sessions/s42/dd";
  const auto hit = router.dispatch(request);
  EXPECT_EQ(hit.response.status, 200);
  EXPECT_EQ(hit.pattern, "/v1/sessions/{id}/dd");
  EXPECT_EQ(seen, "s42");

  request.path = "/v1/unknown";
  EXPECT_EQ(router.dispatch(request).response.status, 404);
  request.path = "/v1/sessions/s42/dd";
  request.method = "DELETE";
  EXPECT_EQ(router.dispatch(request).response.status, 405);
}

// --- loopback fixture --------------------------------------------------------

struct TestServer {
  explicit TestServer(service::ApiOptions apiOpts = {},
                      service::ServerOptions serverOpts = {}) {
    api = std::make_unique<service::Api>(apiOpts, metrics);
    api->install(router);
    server =
        std::make_unique<service::HttpServer>(serverOpts, router, metrics);
    api->setDrainingProbe([this] { return server->draining(); });
    if (serverOpts.tracing) {
      server->setIncidentLog(&api->incidents());
    }
    server->start();
  }

  [[nodiscard]] service::HttpClient client() const {
    return service::HttpClient("127.0.0.1", server->port());
  }

  service::ServiceMetrics metrics;
  service::Router router;
  std::unique_ptr<service::Api> api;
  std::unique_ptr<service::HttpServer> server;
};

Value parsed(const service::HttpClient::Result& result) {
  return Value::parse(result.body);
}

std::string errorCode(const service::HttpClient::Result& result) {
  return parsed(result).find("error")->getString("code", "");
}

// --- lifecycle ---------------------------------------------------------------

TEST(ServiceApiTest, SimulationSessionLifecycle) {
  TestServer ts;
  auto client = ts.client();

  auto created = client.request("POST", "/v1/sessions",
                                R"({"builder": {"name": "bell"}})");
  ASSERT_EQ(created.status, 201);
  Value doc = parsed(created);
  const std::string id = doc.getString("id", "");
  EXPECT_EQ(id, "s1");
  EXPECT_EQ(doc.getNumber("operations", 0), 2);
  EXPECT_EQ(doc.getNumber("position", -1), 0);
  ASSERT_NE(doc.find("dd"), nullptr);
  EXPECT_EQ(doc.find("dd")->getString("kind", ""), "vector");

  // step forward: H puts q1 in superposition -> 2 nodes along the spine
  auto stepped =
      client.request("POST", "/v1/sessions/" + id + "/step", "{}");
  ASSERT_EQ(stepped.status, 200);
  doc = parsed(stepped);
  EXPECT_EQ(doc.getNumber("position", -1), 1);
  EXPECT_EQ(doc.getNumber("stepsApplied", -1), 1);
  EXPECT_FALSE(doc.getBool("atEnd", true));

  // run to the end -> Bell state
  auto ran = client.request("POST", "/v1/sessions/" + id + "/run", "{}");
  ASSERT_EQ(ran.status, 200);
  doc = parsed(ran);
  EXPECT_TRUE(doc.getBool("atEnd", false));
  const std::string state = doc.getString("state", "");
  EXPECT_NE(state.find("|00>"), std::string::npos) << state;
  EXPECT_NE(state.find("|11>"), std::string::npos) << state;

  // step backward
  auto back = client.request("POST", "/v1/sessions/" + id + "/back", "{}");
  ASSERT_EQ(back.status, 200);
  EXPECT_EQ(parsed(back).getNumber("position", -1), 1);

  // reset
  auto reset = client.request("POST", "/v1/sessions/" + id + "/reset", "{}");
  ASSERT_EQ(reset.status, 200);
  EXPECT_EQ(parsed(reset).getNumber("position", -1), 0);

  // export formats
  auto dot =
      client.request("GET", "/v1/sessions/" + id + "/dd?fmt=dot");
  ASSERT_EQ(dot.status, 200);
  EXPECT_NE(dot.body.find("digraph dd"), std::string::npos);
  auto svg =
      client.request("GET", "/v1/sessions/" + id + "/dd?fmt=svg&colored=1");
  ASSERT_EQ(svg.status, 200);
  EXPECT_NE(svg.body.find("<svg"), std::string::npos);
  auto ddJson = client.request("GET", "/v1/sessions/" + id + "/dd");
  ASSERT_EQ(ddJson.status, 200);
  EXPECT_EQ(Value::parse(ddJson.body).getString("kind", ""), "vector");

  // delete, then 404
  EXPECT_EQ(client.request("DELETE", "/v1/sessions/" + id).status, 200);
  EXPECT_EQ(client.request("GET", "/v1/sessions/" + id).status, 404);
}

TEST(ServiceApiTest, CreatesSessionFromQasm) {
  TestServer ts;
  auto client = ts.client();
  Value body = Value::object();
  body.set("qasm", Value::string("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n"
                                 "qreg q[2];\nh q[0];\ncx q[0],q[1];\n"));
  auto created = client.request("POST", "/v1/sessions", body.dump());
  ASSERT_EQ(created.status, 201);
  EXPECT_EQ(parsed(created).getNumber("qubits", 0), 2);
}

TEST(ServiceApiTest, VerificationSessionStepsAndRuns) {
  TestServer ts;
  auto client = ts.client();
  const std::string spec =
      R"({"kind": "verification",
          "left": {"builder": {"name": "ghz", "qubits": 4}},
          "right": {"builder": {"name": "ghz", "qubits": 4},
                    "decompose": true}})";
  auto created = client.request("POST", "/v1/sessions", spec);
  ASSERT_EQ(created.status, 201);
  const std::string id = parsed(created).getString("id", "");

  auto stepped = client.request("POST", "/v1/sessions/" + id + "/step",
                                R"({"side": "left"})");
  ASSERT_EQ(stepped.status, 200);
  EXPECT_EQ(parsed(stepped).getNumber("leftPosition", 0), 1);

  auto ran = client.request("POST", "/v1/sessions/" + id + "/run", "{}");
  ASSERT_EQ(ran.status, 200);
  Value doc = parsed(ran);
  EXPECT_TRUE(doc.getBool("finished", false));
  EXPECT_EQ(doc.getString("equivalence", ""), "equivalent");
}

// --- error paths -------------------------------------------------------------

TEST(ServiceApiTest, MalformedJsonIs400) {
  TestServer ts;
  auto client = ts.client();
  auto response =
      client.request("POST", "/v1/sessions", "{\"builder\": nope}");
  EXPECT_EQ(response.status, 400);
  EXPECT_EQ(errorCode(response), "invalid_json");

  auto badQasm = client.request("POST", "/v1/sessions",
                                R"({"qasm": "this is not qasm"})");
  EXPECT_EQ(badQasm.status, 400);
  EXPECT_EQ(errorCode(badQasm), "invalid_qasm");
}

TEST(ServiceApiTest, UnknownSessionIs404) {
  TestServer ts;
  auto client = ts.client();
  auto response = client.request("POST", "/v1/sessions/nope/step", "{}");
  EXPECT_EQ(response.status, 404);
  EXPECT_EQ(errorCode(response), "session_not_found");
}

TEST(ServiceApiTest, OversizeBodyIs413WithoutReadingIt) {
  service::ServerOptions serverOpts;
  serverOpts.maxBodyBytes = 256;
  TestServer ts({}, serverOpts);
  auto client = ts.client();
  const std::string big(4096, 'x');
  auto response = client.request("POST", "/v1/sessions",
                                 R"({"qasm": ")" + big + R"("})");
  EXPECT_EQ(response.status, 413);
  EXPECT_EQ(errorCode(response), "payload_too_large");
  EXPECT_EQ(ts.metrics.statusCount(413), 1U);
}

TEST(ServiceApiTest, OversizeCircuitIs413) {
  service::ApiOptions apiOpts;
  apiOpts.maxQubits = 10;
  TestServer ts(apiOpts);
  auto client = ts.client();
  auto response = client.request(
      "POST", "/v1/sessions", R"({"builder": {"name": "ghz", "qubits": 20}})");
  EXPECT_EQ(response.status, 413);
  EXPECT_EQ(errorCode(response), "circuit_too_large");
}

TEST(ServiceApiTest, SessionCapIs429) {
  service::ApiOptions apiOpts;
  apiOpts.maxSessions = 2;
  TestServer ts(apiOpts);
  auto client = ts.client();
  const std::string spec = R"({"builder": {"name": "bell"}})";
  EXPECT_EQ(client.request("POST", "/v1/sessions", spec).status, 201);
  EXPECT_EQ(client.request("POST", "/v1/sessions", spec).status, 201);
  auto third = client.request("POST", "/v1/sessions", spec);
  EXPECT_EQ(third.status, 429);
  EXPECT_EQ(errorCode(third), "too_many_sessions");
  // freeing a slot lifts the limit again
  EXPECT_EQ(client.request("DELETE", "/v1/sessions/s1").status, 200);
  EXPECT_EQ(client.request("POST", "/v1/sessions", spec).status, 201);
}

TEST(ServiceApiTest, RawGarbageIs400) {
  TestServer ts;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(ts.server->port());
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string garbage = "THIS IS NOT HTTP\r\n\r\n";
  ASSERT_EQ(::send(fd, garbage.data(), garbage.size(), 0),
            static_cast<ssize_t>(garbage.size()));
  char buf[256];
  const ssize_t got = ::recv(fd, buf, sizeof(buf) - 1, 0);
  ::close(fd);
  ASSERT_GT(got, 0);
  buf[got] = '\0';
  EXPECT_NE(std::string(buf).find("400 Bad Request"), std::string::npos);
}

// --- TTL eviction ------------------------------------------------------------

TEST(ServiceApiTest, IdleSessionsAreEvicted) {
  service::ApiOptions apiOpts;
  apiOpts.sessionTtlMs = 1;
  TestServer ts(apiOpts);
  auto client = ts.client();
  auto created = client.request("POST", "/v1/sessions",
                                R"({"builder": {"name": "bell"}})");
  ASSERT_EQ(created.status, 201);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  // listing triggers eviction of the idle session
  auto list = client.request("GET", "/v1/sessions");
  ASSERT_EQ(list.status, 200);
  EXPECT_TRUE(parsed(list).find("sessions")->asArray().empty());
  EXPECT_EQ(ts.api->sessions().evicted(), 1U);
  EXPECT_EQ(client.request("GET", "/v1/sessions/s1").status, 404);
}

// --- deadlines ---------------------------------------------------------------

TEST(ServiceApiTest, ExpiredDeadlineIs408BeforeAnyGate) {
  TestServer ts;
  auto client = ts.client();
  auto created = client.request(
      "POST", "/v1/sessions", R"({"builder": {"name": "qft", "qubits": 8}})");
  ASSERT_EQ(created.status, 201);
  const std::string id = parsed(created).getString("id", "");

  // deadlineMs = 0 expires before the first gate boundary poll
  auto ran = client.request("POST", "/v1/sessions/" + id + "/run",
                            R"({"deadlineMs": 0})");
  EXPECT_EQ(ran.status, 408);
  Value doc = parsed(ran);
  EXPECT_EQ(doc.find("error")->getString("code", ""), "deadline_exceeded");
  EXPECT_EQ(doc.getNumber("stepsApplied", -1), 0);
  EXPECT_EQ(ts.metrics.deadlineTimeouts(), 1U);

  // the session survives the timeout and finishes on a second run
  auto again = client.request("POST", "/v1/sessions/" + id + "/run", "{}");
  ASSERT_EQ(again.status, 200);
  EXPECT_TRUE(parsed(again).getBool("atEnd", false));
}

TEST(ServiceApiTest, MidRunDeadlineStopsAtGateBoundary) {
  TestServer ts;
  auto client = ts.client();
  // ~34k cheap operations: cannot finish inside a 3 ms deadline even at
  // sub-microsecond per gate, so the cancellation deterministically lands
  // mid-run at a gate boundary.
  auto created = client.request(
      "POST", "/v1/sessions",
      R"({"builder": {"name": "qft", "qubits": 12, "repeat": 400}})");
  ASSERT_EQ(created.status, 201);
  Value doc = parsed(created);
  const std::string id = doc.getString("id", "");
  const double operations = doc.getNumber("operations", 0);
  ASSERT_GT(operations, 30000);

  auto ran = client.request("POST", "/v1/sessions/" + id + "/run",
                            R"({"deadlineMs": 3})");
  ASSERT_EQ(ran.status, 408);
  EXPECT_EQ(parsed(ran).find("error")->getString("code", ""),
            "deadline_exceeded");
  EXPECT_EQ(ts.metrics.deadlineTimeouts(), 1U);

  // the applied prefix is still inspectable and the session still works
  auto info = client.request("GET", "/v1/sessions/" + id);
  ASSERT_EQ(info.status, 200);
  const double position = parsed(info).getNumber("position", -1);
  EXPECT_LT(position, operations);
  auto step = client.request("POST", "/v1/sessions/" + id + "/step", "{}");
  EXPECT_EQ(step.status, 200);
}

TEST(ServiceApiTest, VerifyEndpointHonorsDeadline) {
  TestServer ts;
  auto client = ts.client();
  const std::string spec =
      R"({"left": {"builder": {"name": "qft", "qubits": 10, "repeat": 40}},
          "right": {"builder": {"name": "qft", "qubits": 10, "repeat": 40}},
          "simulation": false,
          "deadlineMs": 0})";
  auto response = client.request("POST", "/v1/verify", spec);
  EXPECT_EQ(response.status, 408);
  EXPECT_EQ(errorCode(response), "deadline_exceeded");
  EXPECT_GE(ts.metrics.deadlineTimeouts(), 1U);
}

TEST(ServiceApiTest, VerifyEndpointDecidesEquivalence) {
  TestServer ts;
  auto client = ts.client();
  auto equal = client.request(
      "POST", "/v1/verify",
      R"({"left": {"builder": {"name": "ghz", "qubits": 4}},
          "right": {"builder": {"name": "ghz", "qubits": 4},
                    "decompose": true}})");
  ASSERT_EQ(equal.status, 200);
  EXPECT_EQ(parsed(equal).getString("equivalence", ""), "equivalent");
  EXPECT_FALSE(parsed(equal).find("entries")->asArray().empty());

  auto unequal = client.request(
      "POST", "/v1/verify",
      R"({"left": {"builder": {"name": "ghz", "qubits": 3}},
          "right": {"builder": {"name": "qft", "qubits": 3}}})");
  ASSERT_EQ(unequal.status, 200);
  EXPECT_EQ(parsed(unequal).getString("equivalence", ""), "not equivalent");
}

// --- health / metrics --------------------------------------------------------

TEST(ServiceApiTest, HealthAndMetricsReport) {
  TestServer ts;
  auto client = ts.client();
  auto health = client.request("GET", "/healthz");
  ASSERT_EQ(health.status, 200);
  EXPECT_EQ(parsed(health).getString("status", ""), "ok");

  client.request("POST", "/v1/sessions", R"({"builder": {"name": "bell"}})");
  client.request("POST", "/v1/sessions/s1/run", "{}");

  auto metrics = client.request("GET", "/metrics");
  ASSERT_EQ(metrics.status, 200);
  Value doc = parsed(metrics);
  const Value* svc = doc.find("service");
  ASSERT_NE(svc, nullptr);
  EXPECT_GE(svc->getNumber("requests", 0), 3.);
  EXPECT_EQ(svc->find("byStatus")->getNumber("201", 0), 1.);
  const Value* routes = svc->find("routes");
  ASSERT_NE(routes, nullptr);
  EXPECT_EQ(routes->find("POST /v1/sessions")->getNumber("count", 0), 1.);
  // DD table stats of the live session are folded in
  ASSERT_NE(doc.find("dd"), nullptr);
  EXPECT_TRUE(doc.find("dd")->isObject());
  EXPECT_FALSE(doc.find("dd")->asObject().empty());
  EXPECT_EQ(doc.find("sessions")->getNumber("live", -1), 1.);
}

// --- drain -------------------------------------------------------------------

TEST(ServiceApiTest, DrainRejectsNewRequestsWith503) {
  TestServer ts;
  auto client = ts.client();
  EXPECT_EQ(client.request("GET", "/healthz").status, 200);
  ts.server->drain();
  auto rejected = client.request("GET", "/healthz");
  EXPECT_EQ(rejected.status, 503);
  EXPECT_EQ(errorCode(rejected), "draining");
  EXPECT_EQ(ts.metrics.drainRejected(), 1U);
}

// --- concurrency -------------------------------------------------------------

TEST(ServiceApiTest, ConcurrentSessionsStayIsolated) {
  service::ServerOptions serverOpts;
  serverOpts.workers = 4;
  TestServer ts({}, serverOpts);

  constexpr std::size_t CLIENTS = 4;
  std::vector<std::thread> threads;
  std::vector<std::string> failures(CLIENTS);
  for (std::size_t c = 0; c < CLIENTS; ++c) {
    threads.emplace_back([&ts, &failures, c] {
      try {
        auto client = ts.client();
        // distinct circuit per client: GHZ on 3 + c qubits
        const std::string qubits = std::to_string(3 + c);
        auto created = client.request(
            "POST", "/v1/sessions",
            R"({"builder": {"name": "ghz", "qubits": )" + qubits + "}}");
        if (created.status != 201) {
          failures[c] = "create: " + created.body;
          return;
        }
        const std::string id = parsed(created).getString("id", "");
        auto ran =
            client.request("POST", "/v1/sessions/" + id + "/run", "{}");
        if (ran.status != 200) {
          failures[c] = "run: " + ran.body;
          return;
        }
        const Value doc = parsed(ran);
        // GHZ on n qubits -> the state contains the all-ones ket; a wrong
        // qubit count (cross-session leakage) would change its width
        const std::string ones = "|" + std::string(3 + c, '1') + ">";
        if (doc.getString("state", "").find(ones) == std::string::npos) {
          failures[c] = "state: " + ran.body;
          return;
        }
        if (doc.getNumber("nodes", 0) <= 0.) {
          failures[c] = "nodes: " + ran.body;
          return;
        }
        if (!doc.getBool("atEnd", false)) {
          failures[c] = "not at end: " + ran.body;
        }
      } catch (const std::exception& e) {
        failures[c] = e.what();
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  for (std::size_t c = 0; c < CLIENTS; ++c) {
    EXPECT_TRUE(failures[c].empty()) << "client " << c << ": " << failures[c];
  }
  EXPECT_EQ(ts.api->sessions().size(), CLIENTS);
  EXPECT_EQ(ts.metrics.statusCount(201), CLIENTS);
}

// --- request tracing & incidents ---------------------------------------------

TEST(ServiceTracingTest, TraceparentIsEchoedWithFreshSpanId) {
  TestServer ts;
  auto client = ts.client();
  const std::string inbound =
      "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01";
  auto response =
      client.request("GET", "/healthz", "", {{"traceparent", inbound}});
  ASSERT_EQ(response.status, 200);
  const auto tp = response.headers.find("traceparent");
  ASSERT_NE(tp, response.headers.end());
  obs::TraceContext ctx;
  ASSERT_TRUE(obs::TraceContext::parseTraceparent(tp->second, ctx));
  // same trace id as the caller's, but a fresh span id for this hop
  EXPECT_EQ(ctx.traceIdHex(), "0af7651916cd43dd8448eb211c80319c");
  EXPECT_NE(ctx.spanIdHex(), "b7ad6b7169203331");
}

TEST(ServiceTracingTest, MissingOrMalformedTraceparentStartsNewTrace) {
  TestServer ts;
  auto client = ts.client();
  auto bare = client.request("GET", "/healthz");
  const auto tp1 = bare.headers.find("traceparent");
  ASSERT_NE(tp1, bare.headers.end());
  obs::TraceContext ctx;
  ASSERT_TRUE(obs::TraceContext::parseTraceparent(tp1->second, ctx));
  EXPECT_TRUE(ctx.valid());

  auto garbled =
      client.request("GET", "/healthz", "", {{"traceparent", "garbage"}});
  const auto tp2 = garbled.headers.find("traceparent");
  ASSERT_NE(tp2, garbled.headers.end());
  obs::TraceContext ctx2;
  ASSERT_TRUE(obs::TraceContext::parseTraceparent(tp2->second, ctx2));
  EXPECT_TRUE(ctx2.valid());
  EXPECT_NE(ctx2.traceIdHex(), ctx.traceIdHex());
}

TEST(ServiceTracingTest, NoTracingMeansNoTraceparentHeader) {
  service::ServerOptions serverOpts;
  serverOpts.tracing = false;
  TestServer ts({}, serverOpts);
  auto client = ts.client();
  auto response = client.request("GET", "/healthz");
  ASSERT_EQ(response.status, 200);
  EXPECT_EQ(response.headers.count("traceparent"), 0U);
  auto incidents = client.request("GET", "/v1/incidents");
  ASSERT_EQ(incidents.status, 200);
  EXPECT_EQ(parsed(incidents).getNumber("captured", -1), 0.);
}

TEST(ServiceTracingTest, DeadlineRunProducesValidatableIncident) {
  TestServer ts;
  auto client = ts.client();
  auto created = client.request(
      "POST", "/v1/sessions",
      R"({"builder": {"name": "qft", "qubits": 12, "repeat": 400}})");
  ASSERT_EQ(created.status, 201);
  const std::string id = parsed(created).getString("id", "");

  auto ran = client.request("POST", "/v1/sessions/" + id + "/run",
                            R"({"deadlineMs": 3})");
  ASSERT_EQ(ran.status, 408);
  const auto tp = ran.headers.find("traceparent");
  ASSERT_NE(tp, ran.headers.end());
  obs::TraceContext ctx;
  ASSERT_TRUE(obs::TraceContext::parseTraceparent(tp->second, ctx));

  auto list = client.request("GET", "/v1/incidents");
  ASSERT_EQ(list.status, 200);
  const Value listDoc = parsed(list);
  EXPECT_GE(listDoc.getNumber("captured", 0), 1.);
  const auto& items = listDoc.find("incidents")->asArray();
  ASSERT_FALSE(items.empty());
  // newest first; the deadline incident carries the run's trace id
  const Value& newest = items.front();
  EXPECT_EQ(newest.getString("reason", ""), "deadline");
  EXPECT_EQ(newest.getNumber("status", 0), 408.);
  EXPECT_EQ(newest.getString("traceId", ""), ctx.traceIdHex());
  EXPECT_EQ(newest.getString("session", ""), id);
  EXPECT_EQ(newest.getString("route", ""), "POST /v1/sessions/{id}/run");
  EXPECT_GE(newest.getNumber("spans", 0), 1.);

  const std::string incId = newest.getString("id", "");
  auto dump = client.request("GET", "/v1/incidents/" + incId);
  ASSERT_EQ(dump.status, 200);
  const auto check = obs::validateIncidentTrace(dump.body);
  EXPECT_TRUE(check.valid) << check.error;
  EXPECT_EQ(Value::parse(dump.body).getString("traceId", ""),
            ctx.traceIdHex());

  EXPECT_EQ(client.request("GET", "/v1/incidents/inc-999").status, 404);
}

TEST(ServiceTracingTest, SlowRequestsAreCapturedAndRetentionIsBounded) {
  service::ApiOptions apiOpts;
  apiOpts.maxIncidents = 2;
  service::ServerOptions serverOpts;
  serverOpts.slowRequestMs = 0.0001; // everything is "slow"
  TestServer ts(apiOpts, serverOpts);
  auto client = ts.client();
  for (int k = 0; k < 5; ++k) {
    ASSERT_EQ(client.request("GET", "/healthz").status, 200);
  }
  auto list = client.request("GET", "/v1/incidents");
  ASSERT_EQ(list.status, 200);
  const Value doc = parsed(list);
  EXPECT_GE(doc.getNumber("captured", 0), 5.);
  EXPECT_LE(doc.getNumber("retained", 99), 2.);
  EXPECT_LE(doc.find("incidents")->asArray().size(), 2U);
  for (const Value& item : doc.find("incidents")->asArray()) {
    EXPECT_EQ(item.getString("reason", ""), "slow");
  }
}

TEST(ServiceTracingTest, PrometheusExpositionIsServed) {
  TestServer ts;
  auto client = ts.client();
  client.request("POST", "/v1/sessions", R"({"builder": {"name": "bell"}})");
  client.request("POST", "/v1/sessions/s1/run", "{}");

  auto prom = client.request("GET", "/metrics?fmt=prom");
  ASSERT_EQ(prom.status, 200);
  const auto ct = prom.headers.find("content-type");
  ASSERT_NE(ct, prom.headers.end());
  EXPECT_NE(ct->second.find("text/plain"), std::string::npos);
  const std::string& body = prom.body;
  for (const char* needle :
       {"# TYPE qdd_http_requests_total counter",
        "# TYPE qdd_http_request_duration_seconds histogram",
        "qdd_http_request_duration_seconds_bucket{le=\"+Inf\"}",
        "qdd_http_request_duration_seconds_sum",
        "qdd_http_request_duration_seconds_count",
        "qdd_http_responses_total{status=\"201\"} 1",
        "qdd_http_route_requests_total{route=\"POST /v1/sessions\"} 1",
        "# TYPE qdd_sessions_live gauge", "qdd_sessions_live 1",
        "# TYPE qdd_dd_unique_table_entries gauge",
        "qdd_session_nodes{session=\"s1\",kind=\"simulation\"}",
        "# TYPE qdd_incidents_total counter",
        "# TYPE qdd_dd_apply_total counter"}) {
    EXPECT_NE(body.find(needle), std::string::npos)
        << "missing: " << needle << "\nin:\n"
        << body;
  }
  // the JSON document still works, and an unknown fmt is rejected
  EXPECT_EQ(client.request("GET", "/metrics?fmt=json").status, 200);
  EXPECT_EQ(client.request("GET", "/metrics?fmt=xml").status, 400);
}

TEST(ServiceTracingTest, MetricsJsonServesHistogramPercentiles) {
  TestServer ts;
  auto client = ts.client();
  for (int k = 0; k < 20; ++k) {
    ASSERT_EQ(client.request("GET", "/healthz").status, 200);
  }
  auto metrics = client.request("GET", "/metrics");
  ASSERT_EQ(metrics.status, 200);
  const Value doc = parsed(metrics);
  const Value* route =
      doc.find("service")->find("routes")->find("GET /healthz");
  ASSERT_NE(route, nullptr);
  EXPECT_EQ(route->getNumber("count", 0), 20.);
  const double p50 = route->getNumber("p50Ms", -1);
  const double p95 = route->getNumber("p95Ms", -1);
  const double maxMs = route->getNumber("maxMs", -1);
  EXPECT_GT(p50, 0.);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, maxMs * 1.0001);
}

TEST(ServiceTracingTest, AccessLogWritesOneJsonLinePerRequest) {
  const std::string path =
      ::testing::TempDir() + "qdd_access_log_test.jsonl";
  ::unlink(path.c_str());
  {
    service::ServerOptions serverOpts;
    serverOpts.accessLogPath = path;
    TestServer ts({}, serverOpts);
    auto client = ts.client();
    auto created = client.request("POST", "/v1/sessions",
                                  R"({"builder": {"name": "bell"}})");
    ASSERT_EQ(created.status, 201);
    ASSERT_EQ(
        client.request("POST", "/v1/sessions/s1/run", "{}").status, 200);
    ts.server->stop();
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  std::vector<Value> lines;
  while (std::getline(in, line)) {
    if (!line.empty()) {
      lines.push_back(Value::parse(line));
    }
  }
  ASSERT_EQ(lines.size(), 2U);
  const Value& create = lines[0];
  EXPECT_EQ(create.getString("method", ""), "POST");
  EXPECT_EQ(create.getString("route", ""), "POST /v1/sessions");
  EXPECT_EQ(create.getNumber("status", 0), 201.);
  EXPECT_EQ(create.getString("session", ""), "s1");
  EXPECT_EQ(create.getString("traceId", "").size(), 32U);
  EXPECT_GT(create.getNumber("ts", 0), 0.);
  EXPECT_GE(create.getNumber("latencyMs", -1), 0.);
  EXPECT_GT(create.getNumber("bytesOut", 0), 0.);
  // creating the Bell session materializes DD nodes
  EXPECT_GT(create.getNumber("ddNodeDelta", -1), 0.);
  const Value& run = lines[1];
  EXPECT_EQ(run.getString("route", ""), "POST /v1/sessions/{id}/run");
  EXPECT_EQ(run.getString("session", ""), "s1");
  // both lines belong to different traces
  EXPECT_NE(run.getString("traceId", ""), create.getString("traceId", ""));
  ::unlink(path.c_str());
}

// --- network core (reactor) --------------------------------------------------

/// Raw TCP connect to the test server, with a receive timeout so a test
/// can never hang on a dead connection.
int rawConnect(std::uint16_t port, int recvTimeoutSec = 10) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  timeval tv{};
  tv.tv_sec = recvTimeoutSec;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  return fd;
}

TEST(ServiceNetTest, ReactorServesSessionLifecycle) {
  service::ServerOptions serverOpts;
  serverOpts.net = service::NetMode::Epoll; // poll fallback off-Linux
  TestServer ts({}, serverOpts);
  const std::string mode = ts.server->netName();
  EXPECT_TRUE(mode == "epoll" || mode == "poll") << mode;
  auto client = ts.client();
  auto created = client.request("POST", "/v1/sessions",
                                R"({"builder": {"name": "bell"}})");
  ASSERT_EQ(created.status, 201);
  EXPECT_EQ(client.request("POST", "/v1/sessions/s1/step", "{}").status, 200);
  auto ran = client.request("POST", "/v1/sessions/s1/run", "{}");
  ASSERT_EQ(ran.status, 200);
  EXPECT_TRUE(parsed(ran).getBool("atEnd", false));
  // keep-alive: the whole lifecycle rode one reactor connection
  EXPECT_EQ(ts.server->openConnections(), 1U);
  EXPECT_EQ(client.request("DELETE", "/v1/sessions/s1").status, 200);
}

TEST(ServiceNetTest, ThreadedModeStillServes) {
  service::ServerOptions serverOpts;
  serverOpts.net = service::NetMode::Threaded;
  TestServer ts({}, serverOpts);
  EXPECT_STREQ(ts.server->netName(), "threaded");
  auto client = ts.client();
  auto created = client.request("POST", "/v1/sessions",
                                R"({"builder": {"name": "ghz", "qubits": 4}})");
  ASSERT_EQ(created.status, 201);
  auto ran = client.request("POST", "/v1/sessions/s1/run", "{}");
  ASSERT_EQ(ran.status, 200);
  EXPECT_TRUE(parsed(ran).getBool("atEnd", false));
}

TEST(ServiceNetTest, SilentClientDoesNotBlockOtherRequests) {
  // One pool worker: under the old thread-per-connection model a silent
  // client pinned a thread for the whole SO_RCVTIMEO window; the reactor
  // must only hand *complete* requests to the pool, so the worker stays
  // free for everyone else.
  service::ServerOptions serverOpts;
  serverOpts.net = service::NetMode::Epoll;
  serverOpts.workers = 1;
  TestServer ts({}, serverOpts);

  // connection 1: opens, sends a request *prefix*, then goes silent
  const int silent = rawConnect(ts.server->port());
  const std::string partial =
      "POST /v1/sessions HTTP/1.1\r\nContent-Length: 512\r\n\r\n{\"buil";
  ASSERT_EQ(::send(silent, partial.data(), partial.size(), 0),
            static_cast<ssize_t>(partial.size()));

  // connection 2: a full lifecycle must complete while 1 stays parked
  const auto t0 = std::chrono::steady_clock::now();
  auto client = ts.client();
  auto created = client.request("POST", "/v1/sessions",
                                R"({"builder": {"name": "bell"}})");
  ASSERT_EQ(created.status, 201);
  ASSERT_EQ(client.request("POST", "/v1/sessions/s1/run", "{}").status, 200);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  // generous bound: failure mode is waiting out a read timeout (seconds)
  EXPECT_LT(elapsed.count(), 5000);
  ::close(silent);
}

TEST(ServiceNetTest, IdleTimeoutClosesSilentConnections) {
  service::ServerOptions serverOpts;
  serverOpts.net = service::NetMode::Epoll;
  serverOpts.idleTimeoutMs = 100;
  TestServer ts({}, serverOpts);
  const int fd = rawConnect(ts.server->port());
  // never send a byte; the reactor's idle sweep must close us (EOF)
  char buf[16];
  const ssize_t got = ::recv(fd, buf, sizeof(buf), 0);
  ::close(fd);
  EXPECT_EQ(got, 0);
  EXPECT_GE(ts.server->idleClosedConnections(), 1U);
  EXPECT_EQ(ts.server->openConnections(), 0U);
}

// --- binary DD export --------------------------------------------------------

TEST(ServiceApiTest, BinaryDdExportRoundTripsAgainstJson) {
  TestServer ts;
  auto client = ts.client();
  auto created = client.request("POST", "/v1/sessions",
                                R"({"builder": {"name": "ghz", "qubits": 3}})");
  ASSERT_EQ(created.status, 201);
  auto ran = client.request("POST", "/v1/sessions/s1/run", "{}");
  ASSERT_EQ(ran.status, 200);
  const auto nodes = static_cast<std::size_t>(parsed(ran).getNumber("nodes", 0));
  ASSERT_GT(nodes, 0U);

  auto bin = client.request("GET", "/v1/sessions/s1/dd?fmt=bin");
  ASSERT_EQ(bin.status, 200);
  EXPECT_EQ(bin.headers.at("content-type"), "application/x-qdd");
  EXPECT_EQ(bin.headers.at("content-length"),
            std::to_string(bin.body.size()));

  // the payload re-interns into a fresh package as the same state
  Package pkg(3);
  const vEdge root = deserializeVectorFromString(pkg, bin.body);
  EXPECT_EQ(Package::size(root), nodes);
  EXPECT_EQ(serializeToString(root), bin.body); // byte-stable round trip

  // and agrees with the JSON exporter's view of the same DD
  auto jsonExport = client.request("GET", "/v1/sessions/s1/dd?fmt=json");
  ASSERT_EQ(jsonExport.status, 200);
  const Value graph = parsed(jsonExport);
  ASSERT_NE(graph.find("nodes"), nullptr);
  // both exporters walk the same DD: decision-node counts agree
  EXPECT_EQ(graph.find("nodes")->asArray().size(), nodes);
}

// --- spill tier --------------------------------------------------------------

std::string makeSpillDir(const char* tag) {
  const std::string dir = ::testing::TempDir() + "qdd_spill_" + tag + "_" +
                          std::to_string(::getpid());
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

TEST(ServiceSpillTest, SpilledSessionRestoresIdentically) {
  service::ApiOptions apiOpts;
  apiOpts.spillDir = makeSpillDir("restore");
  TestServer ts(apiOpts);
  auto client = ts.client();
  auto created = client.request("POST", "/v1/sessions",
                                R"({"builder": {"name": "ghz", "qubits": 4}})");
  ASSERT_EQ(created.status, 201);
  ASSERT_EQ(client.request("POST", "/v1/sessions/s1/step", "{}").status, 200);
  ASSERT_EQ(client.request("POST", "/v1/sessions/s1/step", "{}").status, 200);
  const auto before = client.request("GET", "/v1/sessions/s1");
  ASSERT_EQ(before.status, 200);
  const std::string binBefore =
      client.request("GET", "/v1/sessions/s1/dd?fmt=bin").body;

  auto& store = ts.api->sessions();
  ASSERT_TRUE(store.spillNow("s1"));
  EXPECT_EQ(store.spilledCount(), 1U);
  EXPECT_EQ(store.residentCount(), 0U);
  EXPECT_EQ(store.spilledTotal(), 1U);
  EXPECT_GT(store.spillBytesTotal(), 0U);

  // the next touch transparently restores: same position, same state bytes
  // (deserialization re-interns through the normalizing constructors, so
  // the restored root serializes to the identical canonical form)
  const auto after = client.request("GET", "/v1/sessions/s1");
  ASSERT_EQ(after.status, 200);
  EXPECT_EQ(parsed(after).getNumber("position", -1),
            parsed(before).getNumber("position", -2));
  EXPECT_EQ(parsed(after).getNumber("nodes", -1),
            parsed(before).getNumber("nodes", -2));
  EXPECT_EQ(client.request("GET", "/v1/sessions/s1/dd?fmt=bin").body,
            binBefore);
  EXPECT_EQ(store.restores(), 1U);
  EXPECT_EQ(store.spilledCount(), 0U);
  EXPECT_EQ(store.restoreFailures(), 0U);

  // the restored session keeps working: step to the end, then rewind
  auto ran = client.request("POST", "/v1/sessions/s1/run", "{}");
  ASSERT_EQ(ran.status, 200);
  EXPECT_TRUE(parsed(ran).getBool("atEnd", false));
  EXPECT_EQ(client.request("POST", "/v1/sessions/s1/reset", "{}").status,
            200);
}

TEST(ServiceSpillTest, VerificationSessionSurvivesSpill) {
  service::ApiOptions apiOpts;
  apiOpts.spillDir = makeSpillDir("verif");
  TestServer ts(apiOpts);
  auto client = ts.client();
  const std::string spec =
      R"({"kind": "verification",
          "left": {"builder": {"name": "ghz", "qubits": 3}},
          "right": {"builder": {"name": "ghz", "qubits": 3}}})";
  auto created = client.request("POST", "/v1/sessions", spec);
  ASSERT_EQ(created.status, 201);
  ASSERT_EQ(client.request("POST", "/v1/sessions/s1/step",
                           R"({"side": "left"})")
                .status,
            200);
  ASSERT_TRUE(ts.api->sessions().spillNow("s1"));
  auto ran = client.request("POST", "/v1/sessions/s1/run", "{}");
  ASSERT_EQ(ran.status, 200);
  EXPECT_EQ(parsed(ran).getString("equivalence", ""), "equivalent");
  EXPECT_EQ(ts.api->sessions().restores(), 1U);
}

TEST(ServiceSpillTest, ConcurrentTouchesRestoreOnce) {
  service::ApiOptions apiOpts;
  apiOpts.spillDir = makeSpillDir("concurrent");
  service::ServerOptions serverOpts;
  serverOpts.workers = 4;
  TestServer ts(apiOpts, serverOpts);
  auto setup = ts.client();
  ASSERT_EQ(setup
                .request("POST", "/v1/sessions",
                         R"({"builder": {"name": "ghz", "qubits": 4}})")
                .status,
            201);
  ASSERT_EQ(setup.request("POST", "/v1/sessions/s1/run", "{}").status, 200);
  ASSERT_TRUE(ts.api->sessions().spillNow("s1"));

  constexpr std::size_t TOUCHES = 8;
  std::vector<std::thread> threads;
  std::atomic<std::size_t> ok{0};
  for (std::size_t t = 0; t < TOUCHES; ++t) {
    threads.emplace_back([&ts, &ok] {
      try {
        auto client = ts.client();
        if (client.request("GET", "/v1/sessions/s1/dd?fmt=bin").status ==
            200) {
          ok.fetch_add(1, std::memory_order_relaxed);
        }
      } catch (const std::exception&) {
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(ok.load(), TOUCHES);
  // the entry mutex is the restore-once guard: 8 racing touches, 1 restore
  EXPECT_EQ(ts.api->sessions().restores(), 1U);
  EXPECT_EQ(ts.api->sessions().restoreFailures(), 0U);
}

TEST(ServiceSpillTest, BudgetSpillsColdestSessions) {
  service::ApiOptions apiOpts;
  apiOpts.spillDir = makeSpillDir("budget");
  apiOpts.maxSessions = 32;
  apiOpts.maxResidentSessions = 2;
  TestServer ts(apiOpts);
  auto client = ts.client();
  for (int i = 0; i < 6; ++i) {
    ASSERT_EQ(client
                  .request("POST", "/v1/sessions",
                           R"({"builder": {"name": "bell"}})")
                  .status,
              201);
  }
  auto& store = ts.api->sessions();
  EXPECT_EQ(store.size(), 6U);
  EXPECT_LE(store.residentCount(), 2U);
  EXPECT_GE(store.spilledCount(), 4U);
  // every session — spilled or not — still answers
  for (int i = 1; i <= 6; ++i) {
    const std::string id = "s" + std::to_string(i);
    EXPECT_EQ(client.request("GET", "/v1/sessions/" + id).status, 200)
        << id;
  }
}

TEST(ServiceSpillTest, ShardedStoreSurvivesParallelChurn) {
  // Direct store-level stress: create/publish/find/spill/restore/erase
  // racing across shards. Run under TSan in CI (the per-shard mutexes,
  // atomic LRU stamps, and the entry-mutex restore guard are the units
  // under test).
  service::SessionStoreOptions opts;
  opts.maxSessions = 64;
  opts.shards = 8;
  opts.spillDir = makeSpillDir("churn");
  opts.maxResident = 8;
  service::SessionStore store(opts);

  constexpr std::size_t THREADS = 4;
  constexpr std::size_t ITERATIONS = 25;
  std::vector<std::thread> threads;
  std::atomic<std::size_t> failures{0};
  for (std::size_t t = 0; t < THREADS; ++t) {
    threads.emplace_back([&store, &failures] {
      const ir::QuantumComputation circuit = ir::builders::bell();
      for (std::size_t i = 0; i < ITERATIONS; ++i) {
        auto entry = store.create("simulation");
        if (entry == nullptr) {
          store.evictExpired();
          continue;
        }
        entry->qubits = circuit.numQubits();
        entry->name = "bell";
        entry->package = std::make_unique<Package>(entry->qubits);
        entry->simulation = std::make_unique<sim::SimulationSession>(
            circuit, *entry->package);
        const std::string id = entry->id;
        store.publish(entry);
        entry.reset();

        auto found = store.find(id);
        if (found == nullptr) {
          failures.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        store.spillNow(id);
        {
          // touch: transparently restore, then advance one gate
          const std::lock_guard<std::mutex> lock(found->mutex);
          try {
            store.ensureResident(*found);
          } catch (const service::RestoreError&) {
            failures.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          if (found->simulation == nullptr ||
              found->package == nullptr) {
            failures.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          found->simulation->stepForward();
        }
        found.reset();
        if (i % 3 == 0) {
          store.erase(id);
        }
        store.evictExpired();
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(failures.load(), 0U);
  EXPECT_EQ(store.residentCount() + store.spilledCount(), store.size());
  EXPECT_EQ(store.shardSizes().size(), 8U);
  std::size_t acrossShards = 0;
  for (const std::size_t n : store.shardSizes()) {
    acrossShards += n;
  }
  EXPECT_EQ(acrossShards, store.size());
  // stats from every retired package were folded exactly once, never lost
  EXPECT_GT(store.created(), 0U);
}

} // namespace
