// Tests for the TikZ exporter, the ASCII circuit renderer, and the
// JSON-exporter wire-format guarantees the qdd::service API relies on.

#include "qdd/dd/Package.hpp"
#include "qdd/ir/Builders.hpp"
#include "qdd/viz/CircuitDiagram.hpp"
#include "qdd/viz/JsonExporter.hpp"
#include "qdd/viz/TikzExporter.hpp"

#include <cmath>
#include <limits>

namespace qdd::viz {
using qdd::Package; // for brevity in the tests below
using qdd::SQRT2_2;
using qdd::vEdge;
using qdd::X_MAT;
} // namespace qdd::viz

#include <gtest/gtest.h>

namespace qdd::viz {
namespace {

TEST(VizTikz, BellStateClassicFigure) {
  Package pkg(2);
  const Graph g = buildGraph(pkg.makeGHZState(2));
  const TikzExporter exporter({.style = Style::Classic});
  const std::string tikz = exporter.toTikz(g);
  EXPECT_NE(tikz.find("\\begin{tikzpicture}"), std::string::npos);
  EXPECT_NE(tikz.find("\\end{tikzpicture}"), std::string::npos);
  EXPECT_NE(tikz.find("{$q_1$}"), std::string::npos);
  EXPECT_NE(tikz.find("{$q_0$}"), std::string::npos);
  EXPECT_NE(tikz.find("terminal"), std::string::npos);
  // the 1/sqrt2 root weight renders as \nicefrac
  EXPECT_NE(tikz.find("\\nicefrac{1}{\\sqrt{2}}"), std::string::npos);
}

TEST(VizTikz, StandaloneDocumentCompilesStructurally) {
  Package pkg(2);
  const Graph g = buildGraph(pkg.makeGateDD(X_MAT, 2, {{1, true}}, 0));
  const TikzExporter exporter;
  const std::string doc = exporter.toStandaloneDocument(g);
  EXPECT_EQ(doc.rfind("\\documentclass", 0), 0U);
  EXPECT_NE(doc.find("\\begin{document}"), std::string::npos);
  EXPECT_NE(doc.find("\\end{document}"), std::string::npos);
  // balanced environment
  EXPECT_EQ(doc.find("\\begin{tikzpicture}") != std::string::npos,
            doc.find("\\end{tikzpicture}") != std::string::npos);
}

TEST(VizTikz, ColoredModeDefinesColors) {
  Package pkg(1);
  const vEdge state =
      pkg.makeStateFromVector({{SQRT2_2, 0.}, {0., SQRT2_2}});
  const TikzExporter exporter({.style = Style::Classic,
                               .edgeLabels = false,
                               .colored = true,
                               .magnitudeThickness = true});
  const std::string tikz = exporter.toTikz(buildGraph(state));
  EXPECT_NE(tikz.find("\\definecolor{ddc0}"), std::string::npos);
  EXPECT_NE(tikz.find("line width="), std::string::npos);
}

TEST(VizTikz, ZeroDiagram) {
  const TikzExporter exporter;
  const std::string tikz = exporter.toTikz(buildGraph(vEdge::zero()));
  EXPECT_NE(tikz.find("{$0$}"), std::string::npos);
}

TEST(VizCircuit, BellMatchesFig1cLayout) {
  const std::string art = circuitToAscii(ir::builders::bell());
  // q1 (top wire): H box then control dot
  const auto q1pos = art.find("q1:");
  const auto q0pos = art.find("q0:");
  ASSERT_NE(q1pos, std::string::npos);
  ASSERT_NE(q0pos, std::string::npos);
  EXPECT_LT(q1pos, q0pos); // most significant on top (paper convention)
  const std::string q1line = art.substr(q1pos, art.find('\n', q1pos) - q1pos);
  EXPECT_NE(q1line.find("[H]"), std::string::npos);
  EXPECT_NE(q1line.find("*"), std::string::npos);
  const std::string q0line = art.substr(q0pos, art.find('\n', q0pos) - q0pos);
  EXPECT_NE(q0line.find("(+)"), std::string::npos);
}

TEST(VizCircuit, QftShowsPhaseLabelsAndSwap) {
  const std::string art = circuitToAscii(ir::builders::qft(3));
  EXPECT_NE(art.find("[P(pi/2)]"), std::string::npos);
  EXPECT_NE(art.find("[P(pi/4)]"), std::string::npos);
  EXPECT_NE(art.find("x"), std::string::npos); // SWAP ends
}

TEST(VizCircuit, CrossingConnectorsDrawn) {
  // cp between q0 and q2 must cross the q1 wire with '|'
  ir::QuantumComputation qc(3);
  qc.cphase(1.0, 0, 2);
  const std::string art = circuitToAscii(qc);
  const auto q1pos = art.find("q1:");
  const std::string q1line = art.substr(q1pos, art.find('\n', q1pos) - q1pos);
  EXPECT_NE(q1line.find("|"), std::string::npos);
}

TEST(VizCircuit, SpecialOperations) {
  ir::QuantumComputation qc(2, 2);
  qc.measure(0, 0);
  qc.reset(1);
  qc.barrier();
  const std::string art = circuitToAscii(qc);
  EXPECT_NE(art.find("[M]"), std::string::npos);
  EXPECT_NE(art.find("[|0>]"), std::string::npos);
  EXPECT_NE(art.find("!"), std::string::npos);
}

TEST(VizCircuit, NegativeControlsAndCompound) {
  ir::QuantumComputation qc(2);
  qc.addStandard(ir::OpType::X, {{1, false}}, {0});
  auto comp = std::make_unique<ir::CompoundOperation>("mygate");
  comp->emplaceBack(
      std::make_unique<ir::StandardOperation>(ir::OpType::H, Qubit{0}));
  comp->emplaceBack(
      std::make_unique<ir::StandardOperation>(ir::OpType::H, Qubit{1}));
  qc.emplaceBack(std::move(comp));
  const std::string art = circuitToAscii(qc);
  EXPECT_NE(art.find("o"), std::string::npos); // negative control
  EXPECT_NE(art.find("[mygate]"), std::string::npos);
}

TEST(VizCircuit, WrapsLongCircuits) {
  ir::QuantumComputation qc(2);
  for (int k = 0; k < 60; ++k) {
    qc.h(0);
  }
  const std::string art = circuitToAscii(qc, 60);
  // multiple banks: the q1 label appears more than once
  std::size_t occurrences = 0;
  std::size_t pos = 0;
  while ((pos = art.find("q1:", pos)) != std::string::npos) {
    ++occurrences;
    pos += 3;
  }
  EXPECT_GT(occurrences, 1U);
}

TEST(VizCircuit, EmptyCircuit) {
  EXPECT_EQ(circuitToAscii(ir::QuantumComputation{}), "(empty circuit)\n");
}

TEST(VizJsonWire, EscapesControlCharactersAndQuotes) {
  EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(jsonEscape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(jsonEscape("tab\tnl\ncr\r"), "tab\\tnl\\ncr\\r");
  // other control characters become \u00XX, never raw bytes
  EXPECT_EQ(jsonEscape(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(jsonEscape(std::string(1, '\x1f')), "\\u001f");
}

TEST(VizJsonWire, NonFiniteNumbersNeverEmitBare) {
  EXPECT_EQ(jsonNumber(std::numeric_limits<double>::quiet_NaN(), 6), "null");
  EXPECT_EQ(jsonNumber(std::numeric_limits<double>::infinity(), 6), "null");
  EXPECT_EQ(jsonNumber(-std::numeric_limits<double>::infinity(), 6), "null");
  EXPECT_EQ(jsonNumber(0.5, 6), "0.5");
}

TEST(VizJsonWire, CompactModeIsOneLineAndSameDocument) {
  Package pkg(3);
  const Graph g = buildGraph(pkg.makeGHZState(3));
  const std::string pretty = JsonExporter(10).toJson(g);
  const std::string compact = JsonExporter(10, /*compact=*/true).toJson(g);
  EXPECT_EQ(compact.find('\n'), std::string::npos);
  EXPECT_LT(compact.size(), pretty.size());
  // same document once whitespace is ignored
  std::string strippedPretty;
  std::string strippedCompact;
  for (const char c : pretty) {
    if (c != ' ' && c != '\n') {
      strippedPretty += c;
    }
  }
  for (const char c : compact) {
    if (c != ' ' && c != '\n') {
      strippedCompact += c;
    }
  }
  EXPECT_EQ(strippedPretty, strippedCompact);
}

} // namespace
} // namespace qdd::viz
