#include "qdd/complex/Complex.hpp"
#include "qdd/complex/ComplexValue.hpp"
#include "qdd/complex/RealTable.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

namespace qdd {
namespace {

TEST(ComplexValue, BasicArithmetic) {
  const ComplexValue a{1., 2.};
  const ComplexValue b{3., -1.};
  EXPECT_EQ(a + b, ComplexValue(4., 1.));
  EXPECT_EQ(a - b, ComplexValue(-2., 3.));
  EXPECT_EQ(a * b, ComplexValue(5., 5.));
  const ComplexValue q = a / b;
  EXPECT_NEAR(q.re, 0.1, 1e-12);
  EXPECT_NEAR(q.im, 0.7, 1e-12);
}

TEST(ComplexValue, MagnitudeAndArgument) {
  const ComplexValue c{3., 4.};
  EXPECT_DOUBLE_EQ(c.mag2(), 25.);
  EXPECT_DOUBLE_EQ(c.mag(), 5.);
  const ComplexValue i{0., 1.};
  EXPECT_NEAR(i.arg(), PI / 2., 1e-12);
}

TEST(ComplexValue, SelfDivisionIsExactlyOne) {
  // The normalization code relies on w/w == 1 exactly.
  std::mt19937_64 rng(42);
  std::uniform_real_distribution<double> dist(-2., 2.);
  for (int k = 0; k < 1000; ++k) {
    const ComplexValue w{dist(rng), dist(rng)};
    if (w.mag2() < 1e-12) {
      continue;
    }
    const ComplexValue r = w / w;
    EXPECT_EQ(r.re, 1.);
    EXPECT_EQ(r.im, 0.);
  }
}

TEST(ComplexValue, Conjugate) {
  const ComplexValue c{1., -2.};
  EXPECT_EQ(c.conj(), ComplexValue(1., 2.));
  EXPECT_EQ((-c), ComplexValue(-1., 2.));
}

TEST(ComplexValue, FromPolar) {
  const ComplexValue c = ComplexValue::fromPolar(2., PI / 2.);
  EXPECT_NEAR(c.re, 0., 1e-12);
  EXPECT_NEAR(c.im, 2., 1e-12);
}

TEST(ComplexValue, ToString) {
  EXPECT_EQ(ComplexValue(1., 0.).toString(), "1");
  EXPECT_EQ(ComplexValue(0., -1.).toString(), "-1i");
  EXPECT_EQ(ComplexValue(0.5, 0.25).toString(), "0.5+0.25i");
  EXPECT_EQ(ComplexValue(0.5, -0.25).toString(), "0.5-0.25i");
}

TEST(RealTable, ImmortalConstants) {
  RealTable table;
  EXPECT_EQ(table.lookup(0.), &RealTable::zero());
  EXPECT_EQ(table.lookup(1.), &RealTable::one());
  EXPECT_EQ(table.lookup(SQRT2_2), &RealTable::sqrt2over2());
  // within tolerance of the constants
  EXPECT_EQ(table.lookup(1e-12), &RealTable::zero());
  EXPECT_EQ(table.lookup(1. - 1e-12), &RealTable::one());
  EXPECT_EQ(table.size(), 0U);
}

TEST(RealTable, CanonicalWithinTolerance) {
  RealTable table;
  auto* a = table.lookup(0.3);
  auto* b = table.lookup(0.3 + 1e-12);
  auto* c = table.lookup(0.3 - 1e-12);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
  EXPECT_EQ(table.size(), 1U);
  auto* d = table.lookup(0.300001);
  EXPECT_NE(a, d);
  EXPECT_EQ(table.size(), 2U);
}

TEST(RealTable, ManyDistinctValues) {
  RealTable table;
  std::vector<RealTable::Entry*> entries;
  for (int k = 1; k <= 10000; ++k) {
    entries.push_back(table.lookup(static_cast<double>(k) / 10001.));
  }
  EXPECT_EQ(table.size(), 10000U);
  // all lookups resolve to the same entries again
  for (int k = 1; k <= 10000; ++k) {
    EXPECT_EQ(table.lookup(static_cast<double>(k) / 10001.),
              entries[static_cast<std::size_t>(k - 1)]);
  }
}

TEST(RealTable, ValuesAboveOne) {
  RealTable table;
  auto* a = table.lookup(2.);
  auto* b = table.lookup(123456.789);
  EXPECT_NE(a, b);
  EXPECT_EQ(table.lookup(2.), a);
  EXPECT_EQ(table.lookup(123456.789), b);
  EXPECT_DOUBLE_EQ(a->value, 2.);
}

TEST(RealTable, BucketBoundaryStraddling) {
  RealTable table(1e-6);
  // Values whose tolerance window crosses a bucket boundary must still be
  // identified.
  const double boundary = 0.5; // bucket edges are multiples of 1/32768
  auto* a = table.lookup(boundary - 1e-7);
  auto* b = table.lookup(boundary + 1e-7);
  EXPECT_EQ(a, b);
}

TEST(RealTable, RefCountingAndGarbageCollection) {
  RealTable table;
  auto* a = table.lookup(0.123);
  auto* b = table.lookup(0.456);
  RealTable::incRef(a);
  EXPECT_EQ(table.size(), 2U);
  const std::size_t collected = table.garbageCollect();
  EXPECT_EQ(collected, 1U); // only b collected
  EXPECT_EQ(table.size(), 1U);
  EXPECT_EQ(table.lookup(0.123), a);
  RealTable::decRef(a);
  table.garbageCollect();
  EXPECT_EQ(table.size(), 0U);
  (void)b;
}

TEST(RealTable, ImmortalsSurviveGC) {
  RealTable table;
  table.garbageCollect();
  EXPECT_EQ(table.lookup(1.), &RealTable::one());
  EXPECT_EQ(table.lookup(0.), &RealTable::zero());
}

TEST(Complex, SignTagging) {
  RealTable table;
  auto* half = table.lookup(0.5);
  EXPECT_FALSE(Complex::isNegative(half));
  auto* negHalf = Complex::flipSign(half);
  EXPECT_TRUE(Complex::isNegative(negHalf));
  EXPECT_EQ(Complex::aligned(negHalf), half);
  EXPECT_DOUBLE_EQ(Complex::val(negHalf), -0.5);
  EXPECT_DOUBLE_EQ(Complex::val(half), 0.5);
  EXPECT_EQ(Complex::flipSign(negHalf), half);
}

TEST(Complex, ZeroHasNoNegative) {
  auto* zero = &RealTable::zero();
  EXPECT_EQ(Complex::flipSign(zero), zero);
}

TEST(Complex, Constants) {
  EXPECT_TRUE(Complex::zero.exactlyZero());
  EXPECT_TRUE(Complex::one.exactlyOne());
  EXPECT_FALSE(Complex::one.exactlyZero());
  EXPECT_FALSE(Complex::zero.exactlyOne());
  EXPECT_EQ(Complex::zero.toValue(), ComplexValue(0., 0.));
  EXPECT_EQ(Complex::one.toValue(), ComplexValue(1., 0.));
}

TEST(Complex, NegationAndConjugationArePointerOps) {
  ComplexTable table;
  const Complex c = table.lookup(0.25, 0.75);
  const Complex neg = -c;
  EXPECT_DOUBLE_EQ(neg.real(), -0.25);
  EXPECT_DOUBLE_EQ(neg.imag(), -0.75);
  EXPECT_EQ(Complex::aligned(neg.r), Complex::aligned(c.r));
  const Complex cc = c.conj();
  EXPECT_DOUBLE_EQ(cc.real(), 0.25);
  EXPECT_DOUBLE_EQ(cc.imag(), -0.75);
  EXPECT_EQ(cc.r, c.r);
}

TEST(ComplexTable, CanonicalLookup) {
  ComplexTable table;
  const Complex a = table.lookup(0.6, -0.8);
  const Complex b = table.lookup(0.6 + 1e-12, -0.8 - 1e-12);
  EXPECT_EQ(a, b);
  const Complex c = table.lookup(-0.6, 0.8);
  EXPECT_EQ(c, -a);
}

TEST(ComplexTable, NegativeValuesShareMagnitudeEntries) {
  ComplexTable table;
  const Complex a = table.lookup(0.37, 0.);
  const Complex b = table.lookup(-0.37, 0.);
  EXPECT_EQ(Complex::aligned(a.r), Complex::aligned(b.r));
  EXPECT_EQ(table.realTable().size(), 1U);
}

TEST(ComplexTable, RoundTripRandomValues) {
  ComplexTable table;
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> dist(-1., 1.);
  for (int k = 0; k < 1000; ++k) {
    const ComplexValue v{dist(rng), dist(rng)};
    const Complex c = table.lookup(v);
    EXPECT_TRUE(c.toValue().approximatelyEquals(v, 1e-9));
  }
}

} // namespace
} // namespace qdd
