#include "qdd/baseline/DenseSimulator.hpp"
#include "qdd/bridge/DDBuilder.hpp"
#include "qdd/ir/Builders.hpp"
#include "qdd/parser/qasm/Parser.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <complex>

namespace qdd {
namespace {

constexpr double EPS = 1e-9;

void expectStatesMatch(Package& pkg, const vEdge& dd,
                       const baseline::DenseStateVector& dense) {
  const auto a = pkg.getVector(dd);
  const auto& b = dense.amplitudes();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t k = 0; k < a.size(); ++k) {
    EXPECT_NEAR(a[k].real(), b[k].real(), EPS) << "index " << k;
    EXPECT_NEAR(a[k].imag(), b[k].imag(), EPS) << "index " << k;
  }
}

TEST(Bridge, BellCircuitSimulation) {
  // Paper Ex. 5 / Ex. 13 precondition.
  Package pkg(2);
  const auto qc = ir::builders::bell();
  const vEdge result = bridge::simulate(qc, pkg.makeZeroState(2), pkg);
  const auto vec = pkg.getVector(result);
  EXPECT_NEAR(vec[0].real(), SQRT2_2, EPS);
  EXPECT_NEAR(vec[3].real(), SQRT2_2, EPS);
  EXPECT_NEAR(std::abs(vec[1]), 0., EPS);
  EXPECT_NEAR(std::abs(vec[2]), 0., EPS);
}

TEST(Bridge, QftFunctionalityMatchesFig5c) {
  // Paper Fig. 5(c): QFT_3 matrix entries are omega^(r*c)/sqrt(8) with
  // omega = e^{i pi/4}.
  Package pkg(3);
  const auto qc = ir::builders::qft(3);
  const mEdge u = bridge::buildFunctionality(qc, pkg);
  const auto mat = pkg.getMatrix(u);
  const double amp = 1. / std::sqrt(8.);
  for (std::size_t r = 0; r < 8; ++r) {
    for (std::size_t c = 0; c < 8; ++c) {
      const double phase = PI / 4. * static_cast<double>((r * c) % 8);
      EXPECT_NEAR(mat[r * 8 + c].real(), amp * std::cos(phase), EPS)
          << r << "," << c;
      EXPECT_NEAR(mat[r * 8 + c].imag(), amp * std::sin(phase), EPS)
          << r << "," << c;
    }
  }
}

TEST(Bridge, QftMatrixDDHas21Nodes) {
  // Paper Ex. 12: "building the entire system matrix" for the 3-qubit QFT
  // requires 21 nodes (the maximum 1 + 4 + 16).
  Package pkg(3);
  const auto qc = ir::builders::qft(3);
  const mEdge u = bridge::buildFunctionality(qc, pkg);
  EXPECT_EQ(Package::size(u), 21U);
}

TEST(Bridge, CompiledQftHasSameFunctionality) {
  // Paper Ex. 11: the decision diagrams of Fig. 5(a) and Fig. 5(b) coincide
  // (canonicity!), so both circuits are equivalent.
  Package pkg(3);
  const auto qft = ir::builders::qft(3);
  const auto compiled = ir::decomposeToNativeGates(qft, true);
  const mEdge u1 = bridge::buildFunctionality(qft, pkg);
  const mEdge u2 = bridge::buildFunctionality(compiled, pkg);
  EXPECT_EQ(u1.p, u2.p); // canonical: same root pointer
  EXPECT_TRUE(u1.w.approximatelyEquals(u2.w, EPS));
}

TEST(Bridge, SimulationMatchesDenseBaselineOnRandomCircuits) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto qc = ir::builders::randomCliffordT(5, 60, seed);
    Package pkg(5);
    const vEdge result = bridge::simulate(qc, pkg.makeZeroState(5), pkg);
    baseline::DenseStateVector dense(5);
    dense.run(qc);
    expectStatesMatch(pkg, result, dense);
  }
}

TEST(Bridge, FunctionalityMatchesDenseUnitary) {
  const auto qc = ir::builders::randomCliffordT(4, 40, 7);
  Package pkg(4);
  const mEdge u = bridge::buildFunctionality(qc, pkg);
  baseline::DenseUnitary dense(4);
  dense.run(qc);
  const auto mat = pkg.getMatrix(u);
  const auto& expected = dense.matrix();
  for (std::size_t k = 0; k < mat.size(); ++k) {
    EXPECT_NEAR(mat[k].real(), expected[k].real(), EPS);
    EXPECT_NEAR(mat[k].imag(), expected[k].imag(), EPS);
  }
}

TEST(Bridge, GroverAmplifiesMarkedState) {
  const std::uint64_t marked = 5;
  const auto qc = ir::builders::grover(4, marked);
  Package pkg(4);
  const vEdge result = bridge::simulate(qc, pkg.makeZeroState(4), pkg);
  const auto vec = pkg.getVector(result);
  double pMarked = std::norm(vec[marked]);
  EXPECT_GT(pMarked, 0.9);
}

TEST(Bridge, BernsteinVaziraniRecoversHiddenString) {
  const std::uint64_t hidden = 0b1011;
  const auto qc = ir::builders::bernsteinVazirani(4, hidden);
  Package pkg(5);
  const vEdge result = bridge::simulate(qc, pkg.makeZeroState(5), pkg);
  const auto vec = pkg.getVector(result);
  // data qubits should deterministically read the hidden string
  double pHidden = 0.;
  for (std::size_t k = 0; k < vec.size(); ++k) {
    if ((k & 0xFULL) == hidden) {
      pHidden += std::norm(vec[k]);
    }
  }
  EXPECT_NEAR(pHidden, 1., EPS);
}

TEST(Bridge, WStateBuilderMatchesDirectConstruction) {
  for (std::size_t n = 2; n <= 6; ++n) {
    const auto qc = ir::builders::wState(n);
    Package pkg(n);
    const vEdge circuitState =
        bridge::simulate(qc, pkg.makeZeroState(n), pkg);
    const vEdge direct = pkg.makeWState(n);
    EXPECT_GT(pkg.fidelity(circuitState, direct), 1. - 1e-9) << "n=" << n;
  }
}

TEST(Bridge, GhzDDStaysSmallWhileDenseIsExponential) {
  // The compactness claim of Sec. III-A, on the paper's own example state.
  const std::size_t n = 20;
  const auto qc = ir::builders::ghz(n);
  Package pkg(n);
  bridge::BuildStats stats;
  const vEdge result =
      bridge::simulate(qc, pkg.makeZeroState(n), pkg, stats);
  EXPECT_EQ(Package::size(result), 2 * n - 1); // linear, not 2^n
  EXPECT_LE(stats.maxNodes, 2 * n);
}

TEST(Bridge, NonUnitaryOperationRejected) {
  ir::QuantumComputation qc(1, 1);
  qc.h(0);
  qc.measure(0, 0);
  Package pkg(1);
  EXPECT_THROW((void)bridge::simulate(qc, pkg.makeZeroState(1), pkg),
               std::invalid_argument);
}

TEST(Bridge, CompoundOperationFromParser) {
  const auto qc = qasm::parse(R"(
OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
gate bellpair a, b { h a; cx a, b; }
bellpair q[1], q[0];
)");
  Package pkg(2);
  const vEdge result = bridge::simulate(qc, pkg.makeZeroState(2), pkg);
  const auto vec = pkg.getVector(result);
  EXPECT_NEAR(vec[0].real(), SQRT2_2, EPS);
  EXPECT_NEAR(vec[3].real(), SQRT2_2, EPS);
}

TEST(Bridge, InverseDDUndoesGate) {
  Package pkg(3);
  const ir::StandardOperation op(ir::OpType::T, {{2, true}}, {0});
  const mEdge g = bridge::getDD(op, 3, pkg);
  const mEdge gInv = bridge::getInverseDD(op, 3, pkg);
  const mEdge prod = pkg.multiply(gInv, g);
  const mEdge id = pkg.makeIdent(3);
  EXPECT_EQ(prod.p, id.p);
  EXPECT_TRUE(prod.w.approximatelyOne(EPS));
}

TEST(BaselineDense, MeasurementCollapse) {
  baseline::DenseStateVector sv(2);
  sv.applyGate(H_MAT, 1);
  sv.applyGate(X_MAT, 0, {{1, true}});
  EXPECT_NEAR(sv.probabilityOfOne(0), 0.5, EPS);
  sv.collapse(0, true);
  EXPECT_NEAR(std::norm(sv.amplitudes()[3]), 1., EPS);
}

TEST(BaselineDense, SwapGate) {
  baseline::DenseStateVector sv(2);
  sv.applyGate(X_MAT, 0); // |01>
  sv.applySwap(0, 1);     // -> |10>
  EXPECT_NEAR(std::norm(sv.amplitudes()[2]), 1., EPS);
}

TEST(BaselineDense, UnitaryDistance) {
  const auto qft = ir::builders::qft(3);
  const auto compiled = ir::decomposeToNativeGates(qft);
  baseline::DenseUnitary u1(3);
  baseline::DenseUnitary u2(3);
  u1.run(qft);
  u2.run(compiled);
  EXPECT_LT(u1.distance(u2), 1e-10);
}

} // namespace
} // namespace qdd
