#include "qdd/dd/GateMatrix.hpp"
#include "qdd/dd/Package.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <random>

namespace qdd {
namespace {

constexpr double EPS = 1e-10;

void expectVectorNear(const std::vector<std::complex<double>>& a,
                      const std::vector<std::complex<double>>& b,
                      double eps = EPS) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t k = 0; k < a.size(); ++k) {
    EXPECT_NEAR(a[k].real(), b[k].real(), eps) << "index " << k;
    EXPECT_NEAR(a[k].imag(), b[k].imag(), eps) << "index " << k;
  }
}

TEST(PackageStates, ZeroState) {
  Package pkg(2);
  const vEdge e = pkg.makeZeroState(2);
  const auto vec = pkg.getVector(e);
  expectVectorNear(vec, {{1., 0.}, {0., 0.}, {0., 0.}, {0., 0.}});
  EXPECT_EQ(Package::size(e), 2U);
}

TEST(PackageStates, BasisState) {
  Package pkg(3);
  // |q2 q1 q0> = |101> -> index 5
  const vEdge e = pkg.makeBasisState(3, {true, false, true});
  const auto vec = pkg.getVector(e);
  for (std::size_t k = 0; k < 8; ++k) {
    EXPECT_NEAR(vec[k].real(), k == 5 ? 1. : 0., EPS);
  }
}

TEST(PackageStates, BellStateStructureMatchesFig2a) {
  // Paper Ex. 6 / Fig. 2(a): |phi> = (|00> + |11>)/sqrt(2) has 3 nodes,
  // a root edge weight of 1/sqrt(2), and inner edge weights 1.
  Package pkg(2);
  const vEdge e = pkg.makeGHZState(2);
  EXPECT_EQ(Package::size(e), 3U);
  EXPECT_NEAR(e.w.real(), SQRT2_2, EPS);
  EXPECT_NEAR(e.w.imag(), 0., EPS);
  // both successors of the root carry weight 1
  EXPECT_TRUE(e.p->e[0].w.exactlyOne());
  EXPECT_TRUE(e.p->e[1].w.exactlyOne());
  // paths reconstruct amplitudes 1/sqrt(2) (Ex. 6)
  EXPECT_NEAR(pkg.getValueByIndex(e, 0).re, SQRT2_2, EPS);
  EXPECT_NEAR(pkg.getValueByIndex(e, 3).re, SQRT2_2, EPS);
  EXPECT_NEAR(pkg.getValueByIndex(e, 1).mag(), 0., EPS);
  EXPECT_NEAR(pkg.getValueByIndex(e, 2).mag(), 0., EPS);
}

TEST(PackageStates, GHZLinearGrowth) {
  Package pkg(16);
  for (std::size_t n = 2; n <= 16; ++n) {
    const vEdge e = pkg.makeGHZState(n);
    // GHZ decision diagrams grow linearly: 2n - 1 nodes.
    EXPECT_EQ(Package::size(e), 2 * n - 1) << "n=" << n;
    EXPECT_NEAR(pkg.norm(e), 1., EPS);
  }
}

TEST(PackageStates, WState) {
  Package pkg(4);
  const vEdge e = pkg.makeWState(4);
  const auto vec = pkg.getVector(e);
  const double amp = 0.5;
  for (std::size_t k = 0; k < 16; ++k) {
    const bool singleExcitation = k != 0 && (k & (k - 1)) == 0;
    EXPECT_NEAR(vec[k].real(), singleExcitation ? amp : 0., EPS)
        << "index " << k;
  }
  EXPECT_NEAR(pkg.norm(e), 1., EPS);
}

TEST(PackageStates, StateFromVectorRoundTrip) {
  Package pkg(3);
  std::mt19937_64 rng(11);
  std::uniform_real_distribution<double> dist(-1., 1.);
  std::vector<std::complex<double>> vec(8);
  double n2 = 0.;
  for (auto& a : vec) {
    a = {dist(rng), dist(rng)};
    n2 += std::norm(a);
  }
  for (auto& a : vec) {
    a /= std::sqrt(n2);
  }
  const vEdge e = pkg.makeStateFromVector(vec);
  expectVectorNear(pkg.getVector(e), vec);
}

TEST(PackageStates, CanonicityPointerEquality) {
  // Same state built two different ways must yield the same node pointer.
  Package pkg(4);
  const vEdge a = pkg.makeGHZState(4);
  std::vector<std::complex<double>> vec(16, {0., 0.});
  vec[0] = {SQRT2_2, 0.};
  vec[15] = {SQRT2_2, 0.};
  const vEdge b = pkg.makeStateFromVector(vec);
  EXPECT_EQ(a.p, b.p);
  EXPECT_TRUE(a.w.approximatelyEquals(b.w, EPS));
}

TEST(PackageMatrices, HadamardDDIsSingleNode) {
  // Paper Fig. 2(b): the Hadamard DD is a single node with weights
  // (1, 1, 1, -1) and a root weight of 1/sqrt(2).
  Package pkg(1);
  const mEdge h = pkg.makeGateDD(H_MAT, 1, 0);
  EXPECT_EQ(Package::size(h), 1U);
  EXPECT_NEAR(h.w.real(), SQRT2_2, EPS);
  EXPECT_TRUE(h.p->e[0].w.exactlyOne());
  EXPECT_TRUE(h.p->e[1].w.exactlyOne());
  EXPECT_TRUE(h.p->e[2].w.exactlyOne());
  EXPECT_NEAR(h.p->e[3].w.real(), -1., EPS);
}

TEST(PackageMatrices, CNOTDDMatchesFig2c) {
  // Paper Fig. 2(c): controlled-NOT with control q1 and target q0.
  // The figure shows 3 nodes; with identity-skipping edges the explicit
  // identity successor under the pass-through branch collapses into the
  // terminal, leaving 2 nodes (root + X block).
  Package pkg(2);
  const mEdge cx = pkg.makeGateDD(X_MAT, 2, {{1, true}}, 0);
  EXPECT_EQ(Package::size(cx), 2U);
  EXPECT_TRUE(cx.w.exactlyOne());
  EXPECT_TRUE(cx.p->e[1].w.exactlyZero());
  EXPECT_TRUE(cx.p->e[2].w.exactlyZero());
  const auto mat = pkg.getMatrix(cx);
  // Fig. 1(b) matrix
  const std::vector<std::complex<double>> expected{
      {1, 0}, {0, 0}, {0, 0}, {0, 0}, //
      {0, 0}, {1, 0}, {0, 0}, {0, 0}, //
      {0, 0}, {0, 0}, {0, 0}, {1, 0}, //
      {0, 0}, {0, 0}, {1, 0}, {0, 0}};
  expectVectorNear(mat, expected);
}

TEST(PackageMatrices, IdentityStructure) {
  // Identity-skipping: the identity is the weight-1 terminal edge, no nodes.
  Package pkg(5);
  const mEdge id = pkg.makeIdent(5);
  EXPECT_TRUE(id.isTerminal());
  EXPECT_EQ(Package::size(id), 0U);
  EXPECT_TRUE(id.w.exactlyOne());
  const auto mat = pkg.getMatrix(id, 5);
  for (std::size_t r = 0; r < 32; ++r) {
    for (std::size_t c = 0; c < 32; ++c) {
      EXPECT_NEAR(mat[r * 32 + c].real(), r == c ? 1. : 0., EPS);
    }
  }
}

TEST(PackageMatrices, KronByTerminalReplacement) {
  // Paper Ex. 8 / Fig. 3: H (x) I2 via decision diagrams. A stripped
  // identity is terminal and carries no span, so the explicit-span kron
  // overload places H above one implicit identity level.
  Package pkg(2);
  const mEdge h = pkg.makeGateDD(H_MAT, 1, 0);
  const mEdge id = pkg.makeIdent(1);
  const mEdge hi = pkg.kron(h, id, 1);
  EXPECT_EQ(Package::size(hi), 1U);
  // must equal the directly constructed H on qubit 1 of a 2-qubit system
  const mEdge direct = pkg.makeGateDD(H_MAT, 2, 1);
  EXPECT_EQ(hi.p, direct.p);
  EXPECT_TRUE(hi.w.approximatelyEquals(direct.w, EPS));
}

TEST(PackageMatrices, KronVectors) {
  Package pkg(4);
  const vEdge plus = pkg.makeStateFromVector({{SQRT2_2, 0.}, {SQRT2_2, 0.}});
  const vEdge one = pkg.makeStateFromVector({{0., 0.}, {1., 0.}});
  const vEdge combined = pkg.kron(plus, one);
  const auto vec = pkg.getVector(combined);
  // |+> (x) |1> = (|01> + |11>)/sqrt2
  expectVectorNear(vec, {{0., 0.}, {SQRT2_2, 0.}, {0., 0.}, {SQRT2_2, 0.}});
}

TEST(PackageMatrices, GateOnUpperQubitEqualsKron) {
  // Paper Ex. 3: H applied to the most-significant qubit of |00> yields
  // (|00> + |10>)/sqrt(2).
  Package pkg(2);
  const mEdge h1 = pkg.makeGateDD(H_MAT, 2, 1);
  const vEdge zero = pkg.makeZeroState(2);
  const vEdge result = pkg.multiply(h1, zero);
  expectVectorNear(pkg.getVector(result),
                   {{SQRT2_2, 0.}, {0., 0.}, {SQRT2_2, 0.}, {0., 0.}});
}

TEST(PackageMatrices, BellCircuitEvolution) {
  // Paper Ex. 5: CNOT * (H (x) I) |00> = (|00> + |11>)/sqrt(2).
  Package pkg(2);
  vEdge state = pkg.makeZeroState(2);
  state = pkg.multiply(pkg.makeGateDD(H_MAT, 2, 1), state);
  state = pkg.multiply(pkg.makeGateDD(X_MAT, 2, {{1, true}}, 0), state);
  const vEdge ghz = pkg.makeGHZState(2);
  EXPECT_EQ(state.p, ghz.p);
  EXPECT_TRUE(state.w.approximatelyEquals(ghz.w, EPS));
}

TEST(PackageMatrices, ControlAboveAndBelowTarget) {
  Package pkg(3);
  // CX with control q0 (below target q2)
  const mEdge cxBelow = pkg.makeGateDD(X_MAT, 3, {{0, true}}, 2);
  const auto mat = pkg.getMatrix(cxBelow);
  // |q2 q1 q0>: states with q0=1 get q2 flipped
  for (std::size_t col = 0; col < 8; ++col) {
    const std::size_t row = (col & 1ULL) != 0 ? (col ^ 4ULL) : col;
    for (std::size_t r = 0; r < 8; ++r) {
      EXPECT_NEAR(mat[r * 8 + col].real(), r == row ? 1. : 0., EPS)
          << "col " << col << " row " << r;
    }
  }
}

TEST(PackageMatrices, NegativeControl) {
  Package pkg(2);
  const mEdge cx0 = pkg.makeGateDD(X_MAT, 2, {{1, false}}, 0);
  const auto mat = pkg.getMatrix(cx0);
  // flips q0 when q1 == 0
  const std::vector<std::complex<double>> expected{
      {0, 0}, {1, 0}, {0, 0}, {0, 0}, //
      {1, 0}, {0, 0}, {0, 0}, {0, 0}, //
      {0, 0}, {0, 0}, {1, 0}, {0, 0}, //
      {0, 0}, {0, 0}, {0, 0}, {1, 0}};
  expectVectorNear(mat, expected);
}

TEST(PackageMatrices, Toffoli) {
  Package pkg(3);
  const mEdge ccx = pkg.makeGateDD(X_MAT, 3, {{2, true}, {1, true}}, 0);
  const auto mat = pkg.getMatrix(ccx);
  for (std::size_t col = 0; col < 8; ++col) {
    const std::size_t row = (col & 6ULL) == 6ULL ? (col ^ 1ULL) : col;
    EXPECT_NEAR(mat[row * 8 + col].real(), 1., EPS) << "col " << col;
  }
}

TEST(PackageMatrices, SwapGate) {
  Package pkg(2);
  const mEdge swap = pkg.makeSWAPDD(2, {}, 0, 1);
  const auto mat = pkg.getMatrix(swap);
  const std::vector<std::complex<double>> expected{
      {1, 0}, {0, 0}, {0, 0}, {0, 0}, //
      {0, 0}, {0, 0}, {1, 0}, {0, 0}, //
      {0, 0}, {1, 0}, {0, 0}, {0, 0}, //
      {0, 0}, {0, 0}, {0, 0}, {1, 0}};
  expectVectorNear(mat, expected);
}

TEST(PackageMatrices, ControlledSwapIsFredkin) {
  Package pkg(3);
  const mEdge cswap = pkg.makeSWAPDD(3, {{2, true}}, 0, 1);
  const auto mat = pkg.getMatrix(cswap);
  for (std::size_t col = 0; col < 8; ++col) {
    std::size_t row = col;
    if ((col & 4ULL) != 0) { // control q2 set: swap bits 0 and 1
      const std::size_t b0 = col & 1ULL;
      const std::size_t b1 = (col >> 1) & 1ULL;
      row = (col & ~3ULL) | (b0 << 1) | b1;
    }
    EXPECT_NEAR(mat[row * 8 + col].real(), 1., EPS) << "col " << col;
  }
}

TEST(PackageMatrices, TwoQubitGateDDiSwap) {
  Package pkg(2);
  // iSWAP matrix
  TwoQubitGateMatrix iswap{};
  iswap[0 * 4 + 0] = {1., 0.};
  iswap[1 * 4 + 2] = {0., 1.};
  iswap[2 * 4 + 1] = {0., 1.};
  iswap[3 * 4 + 3] = {1., 0.};
  const mEdge e = pkg.makeTwoQubitGateDD(iswap, 2, 1, 0);
  const auto mat = pkg.getMatrix(e);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      const auto expected = iswap[r * 4 + c];
      EXPECT_NEAR(mat[r * 4 + c].real(), expected.re, EPS);
      EXPECT_NEAR(mat[r * 4 + c].imag(), expected.im, EPS);
    }
  }
}

TEST(PackageMatrices, MatrixFromDenseRoundTrip) {
  Package pkg(2);
  std::mt19937_64 rng(3);
  std::uniform_real_distribution<double> dist(-1., 1.);
  std::vector<std::complex<double>> mat(16);
  for (auto& v : mat) {
    v = {dist(rng), dist(rng)};
  }
  const mEdge e = pkg.makeMatrixFromDense(mat, 2);
  expectVectorNear(pkg.getMatrix(e), mat);
}

TEST(PackageOps, AdditionMatchesDense) {
  Package pkg(3);
  std::mt19937_64 rng(5);
  std::uniform_real_distribution<double> dist(-1., 1.);
  std::vector<std::complex<double>> a(8);
  std::vector<std::complex<double>> b(8);
  for (std::size_t k = 0; k < 8; ++k) {
    a[k] = {dist(rng), dist(rng)};
    b[k] = {dist(rng), dist(rng)};
  }
  const vEdge ea = pkg.makeStateFromVector(a);
  const vEdge eb = pkg.makeStateFromVector(b);
  const vEdge sum = pkg.add(ea, eb);
  auto expected = a;
  for (std::size_t k = 0; k < 8; ++k) {
    expected[k] += b[k];
  }
  expectVectorNear(pkg.getVector(sum), expected);
}

TEST(PackageOps, AdditionCancellationYieldsZero) {
  Package pkg(2);
  const vEdge a = pkg.makeGHZState(2);
  vEdge minusA = a;
  minusA.w = pkg.lookup(-a.w.toValue());
  const vEdge sum = pkg.add(a, minusA);
  EXPECT_TRUE(sum.w.exactlyZero());
}

TEST(PackageOps, MultiplyMatchesDense) {
  Package pkg(3);
  std::mt19937_64 rng(17);
  std::uniform_real_distribution<double> dist(-1., 1.);
  std::vector<std::complex<double>> mat(64);
  std::vector<std::complex<double>> vec(8);
  for (auto& v : mat) {
    v = {dist(rng), dist(rng)};
  }
  for (auto& v : vec) {
    v = {dist(rng), dist(rng)};
  }
  const mEdge em = pkg.makeMatrixFromDense(mat, 3);
  const vEdge ev = pkg.makeStateFromVector(vec);
  const vEdge prod = pkg.multiply(em, ev);
  std::vector<std::complex<double>> expected(8, {0., 0.});
  for (std::size_t r = 0; r < 8; ++r) {
    for (std::size_t c = 0; c < 8; ++c) {
      expected[r] += mat[r * 8 + c] * vec[c];
    }
  }
  expectVectorNear(pkg.getVector(prod), expected, 1e-9);
}

TEST(PackageOps, MatrixMatrixMultiplyMatchesDense) {
  Package pkg(2);
  std::mt19937_64 rng(23);
  std::uniform_real_distribution<double> dist(-1., 1.);
  std::vector<std::complex<double>> a(16);
  std::vector<std::complex<double>> b(16);
  for (std::size_t k = 0; k < 16; ++k) {
    a[k] = {dist(rng), dist(rng)};
    b[k] = {dist(rng), dist(rng)};
  }
  const mEdge ea = pkg.makeMatrixFromDense(a, 2);
  const mEdge eb = pkg.makeMatrixFromDense(b, 2);
  const mEdge prod = pkg.multiply(ea, eb);
  std::vector<std::complex<double>> expected(16, {0., 0.});
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      for (std::size_t k = 0; k < 4; ++k) {
        expected[r * 4 + c] += a[r * 4 + k] * b[k * 4 + c];
      }
    }
  }
  expectVectorNear(pkg.getMatrix(prod), expected, 1e-9);
}

TEST(PackageOps, GateTimesAdjointIsIdentity) {
  Package pkg(3);
  const mEdge t = pkg.makeGateDD(T_MAT, 3, {{2, true}}, 0);
  const mEdge tdg = pkg.conjugateTranspose(t);
  const mEdge prod = pkg.multiply(t, tdg);
  const mEdge id = pkg.makeIdent(3);
  EXPECT_EQ(prod.p, id.p);
  EXPECT_TRUE(prod.w.approximatelyOne(EPS));
}

TEST(PackageOps, ConjugateTransposeMatchesDense) {
  Package pkg(2);
  std::mt19937_64 rng(29);
  std::uniform_real_distribution<double> dist(-1., 1.);
  std::vector<std::complex<double>> a(16);
  for (auto& v : a) {
    v = {dist(rng), dist(rng)};
  }
  const mEdge ea = pkg.makeMatrixFromDense(a, 2);
  const mEdge adj = pkg.conjugateTranspose(ea);
  const auto mat = pkg.getMatrix(adj);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_NEAR(mat[r * 4 + c].real(), a[c * 4 + r].real(), EPS);
      EXPECT_NEAR(mat[r * 4 + c].imag(), -a[c * 4 + r].imag(), EPS);
    }
  }
}

TEST(PackageOps, InnerProductAndFidelity) {
  Package pkg(2);
  const vEdge ghz = pkg.makeGHZState(2);
  const vEdge zero = pkg.makeZeroState(2);
  const ComplexValue ip = pkg.innerProduct(zero, ghz);
  EXPECT_NEAR(ip.re, SQRT2_2, EPS);
  EXPECT_NEAR(ip.im, 0., EPS);
  EXPECT_NEAR(pkg.fidelity(zero, ghz), 0.5, EPS);
  EXPECT_NEAR(pkg.fidelity(ghz, ghz), 1., EPS);
}

TEST(PackageOps, Trace) {
  Package pkg(3);
  const mEdge id = pkg.makeIdent(3);
  // a stripped identity is terminal: the span-aware overload supplies the
  // tr(I_k (x) M) = 2^k tr(M) context
  EXPECT_NEAR(pkg.trace(id, 3).re, 8., EPS);
  const mEdge z = pkg.makeGateDD(Z_MAT, 3, 0);
  EXPECT_NEAR(pkg.trace(z).re, 0., EPS);
  const mEdge t = pkg.makeGateDD(T_MAT, 1, 0);
  EXPECT_NEAR(pkg.trace(t).re, 1. + SQRT2_2, EPS);
  EXPECT_NEAR(pkg.trace(t).im, SQRT2_2, EPS);
}

TEST(PackageMeasure, ProbabilityOfOne) {
  Package pkg(2);
  const vEdge ghz = pkg.makeGHZState(2);
  EXPECT_NEAR(pkg.probabilityOfOne(ghz, 0), 0.5, EPS);
  EXPECT_NEAR(pkg.probabilityOfOne(ghz, 1), 0.5, EPS);
  const vEdge basis = pkg.makeBasisState(2, {true, false});
  EXPECT_NEAR(pkg.probabilityOfOne(basis, 0), 1., EPS);
  EXPECT_NEAR(pkg.probabilityOfOne(basis, 1), 0., EPS);
}

TEST(PackageMeasure, CollapseEntangledState) {
  // Paper Ex. 13: measuring q0 of the Bell state as |1> determines q1.
  Package pkg(2);
  vEdge state = pkg.makeGHZState(2);
  pkg.incRef(state);
  pkg.forceMeasureOne(state, 0, true);
  const auto vec = pkg.getVector(state);
  expectVectorNear(vec, {{0., 0.}, {0., 0.}, {0., 0.}, {1., 0.}});
}

TEST(PackageMeasure, CollapseToZeroBranch) {
  Package pkg(2);
  vEdge state = pkg.makeGHZState(2);
  pkg.incRef(state);
  pkg.forceMeasureOne(state, 0, false);
  const auto vec = pkg.getVector(state);
  expectVectorNear(vec, {{1., 0.}, {0., 0.}, {0., 0.}, {0., 0.}});
}

TEST(PackageMeasure, CollapseImpossibleOutcomeThrows) {
  Package pkg(2);
  vEdge state = pkg.makeZeroState(2);
  pkg.incRef(state);
  EXPECT_THROW(pkg.forceMeasureOne(state, 0, true), std::invalid_argument);
}

TEST(PackageMeasure, MeasurementStatistics) {
  Package pkg(2);
  vEdge state = pkg.makeGHZState(2);
  pkg.incRef(state);
  std::mt19937_64 rng(1234);
  std::size_t ones = 0;
  constexpr std::size_t SHOTS = 2000;
  for (std::size_t s = 0; s < SHOTS; ++s) {
    const std::string bits = pkg.sample(state, rng);
    ASSERT_TRUE(bits == "00" || bits == "11") << bits;
    if (bits == "11") {
      ++ones;
    }
  }
  EXPECT_GT(ones, SHOTS * 0.4);
  EXPECT_LT(ones, SHOTS * 0.6);
}

TEST(PackageMeasure, SamplingIsNonDestructive) {
  // Paper Sec. III-B: classical measurements "can be repeated on the same
  // state without having to repeat the whole calculation".
  Package pkg(2);
  const vEdge state = pkg.makeGHZState(2);
  std::mt19937_64 rng(99);
  const auto before = pkg.getVector(state);
  (void)pkg.sample(state, rng);
  (void)pkg.sample(state, rng);
  expectVectorNear(pkg.getVector(state), before);
}

TEST(PackageMeasure, MeasureAllCollapses) {
  Package pkg(3);
  vEdge state = pkg.makeGHZState(3);
  pkg.incRef(state);
  std::mt19937_64 rng(5);
  const std::string bits = pkg.measureAll(state, true, rng);
  ASSERT_TRUE(bits == "000" || bits == "111");
  const auto vec = pkg.getVector(state);
  const std::size_t idx = bits == "111" ? 7 : 0;
  for (std::size_t k = 0; k < 8; ++k) {
    EXPECT_NEAR(std::abs(vec[k]), k == idx ? 1. : 0., EPS);
  }
}

TEST(PackageMeasure, ResetMovesBranchToZero) {
  // Paper Sec. IV-B reset semantics: surviving |1> branch becomes |0>.
  Package pkg(2);
  vEdge state = pkg.makeBasisState(2, {true, true}); // |11>
  pkg.incRef(state);
  pkg.resetQubitTo(state, 0, true);
  const auto vec = pkg.getVector(state);
  // q0 reset to |0>, q1 untouched -> |10> (index 2)
  expectVectorNear(vec, {{0., 0.}, {0., 0.}, {1., 0.}, {0., 0.}});
}

TEST(PackageMeasure, ResetSuperposition) {
  Package pkg(2);
  // (|00> + |01>)/sqrt2: q0 in superposition, q1 = 0
  std::vector<std::complex<double>> vec{
      {SQRT2_2, 0.}, {SQRT2_2, 0.}, {0., 0.}, {0., 0.}};
  vEdge state = pkg.makeStateFromVector(vec);
  pkg.incRef(state);
  pkg.resetQubitTo(state, 0, true);
  expectVectorNear(pkg.getVector(state),
                   {{1., 0.}, {0., 0.}, {0., 0.}, {0., 0.}});
}

TEST(PackageGC, CollectsDeadNodes) {
  Package pkg(8);
  vEdge keep = pkg.makeGHZState(8);
  pkg.incRef(keep);
  // create garbage
  for (int k = 0; k < 50; ++k) {
    std::vector<std::complex<double>> vec(256, {0., 0.});
    vec[static_cast<std::size_t>(k)] = {1., 0.};
    vec[255 - static_cast<std::size_t>(k)] = {0., 1.};
    for (auto& a : vec) {
      a /= std::sqrt(2.);
    }
    (void)pkg.makeStateFromVector(vec);
  }
  const auto before = pkg.tablePressure();
  EXPECT_TRUE(pkg.garbageCollect(true));
  const auto after = pkg.tablePressure();
  EXPECT_LT(after.vectorNodes, before.vectorNodes);
  // the referenced state survives and is still intact
  EXPECT_NEAR(pkg.norm(keep), 1., EPS);
  EXPECT_EQ(Package::size(keep), 15U);
}

TEST(PackageGC, OperationsValidAfterCollection) {
  Package pkg(4);
  vEdge state = pkg.makeZeroState(4);
  pkg.incRef(state);
  const mEdge h = pkg.makeGateDD(H_MAT, 4, 0);
  for (int round = 0; round < 10; ++round) {
    const vEdge next = pkg.multiply(h, state);
    pkg.incRef(next);
    pkg.decRef(state);
    state = next;
    pkg.garbageCollect(true);
  }
  // H^10 = I on |0000>
  const auto vec = pkg.getVector(state);
  EXPECT_NEAR(vec[0].real(), 1., EPS);
}

TEST(PackageNormalization, NormSchemeProbabilisticWeights) {
  Package pkg(2, NormalizationScheme::Norm);
  const vEdge ghz = pkg.makeGHZState(2);
  // with 2-norm normalization, |w0|^2 + |w1|^2 == 1 at every node
  EXPECT_NEAR(ghz.p->e[0].w.toValue().mag2() +
                  ghz.p->e[1].w.toValue().mag2(),
              1., EPS);
  // and the root weight has unit magnitude for a normalized state
  EXPECT_NEAR(ghz.w.toValue().mag(), 1., EPS);
  // semantics identical to the Largest scheme
  const auto vec = pkg.getVector(ghz);
  EXPECT_NEAR(vec[0].real(), SQRT2_2, EPS);
  EXPECT_NEAR(vec[3].real(), SQRT2_2, EPS);
}

TEST(PackageNormalization, SchemesAgreeOnRandomStates) {
  Package largest(3, NormalizationScheme::Largest);
  Package norm(3, NormalizationScheme::Norm);
  std::mt19937_64 rng(31);
  std::uniform_real_distribution<double> dist(-1., 1.);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::complex<double>> vec(8);
    double n2 = 0.;
    for (auto& a : vec) {
      a = {dist(rng), dist(rng)};
      n2 += std::norm(a);
    }
    for (auto& a : vec) {
      a /= std::sqrt(n2);
    }
    const vEdge el = largest.makeStateFromVector(vec);
    const vEdge en = norm.makeStateFromVector(vec);
    expectVectorNear(largest.getVector(el), norm.getVector(en), 1e-9);
    EXPECT_EQ(Package::size(el), Package::size(en));
  }
}

TEST(PackageErrors, InvalidArguments) {
  Package pkg(2);
  EXPECT_THROW(pkg.makeBasisState(0, {}), std::invalid_argument);
  EXPECT_THROW(pkg.makeBasisState(2, {true}), std::invalid_argument);
  EXPECT_THROW(pkg.makeStateFromVector({{1., 0.}, {0., 0.}, {0., 0.}}),
               std::invalid_argument);
  EXPECT_THROW(pkg.makeGateDD(H_MAT, 2, 5), std::invalid_argument);
  EXPECT_THROW(pkg.makeGateDD(X_MAT, 2, {{0, true}}, 0),
               std::invalid_argument);
  EXPECT_THROW(pkg.makeSWAPDD(2, {}, 1, 1), std::invalid_argument);
  EXPECT_THROW(pkg.getVector(vEdge::one()), std::invalid_argument);
}

} // namespace
} // namespace qdd
