// Tests for the simulation-trace ("slide show") JSON exporter.

#include "qdd/ir/Builders.hpp"
#include "qdd/viz/TraceExporter.hpp"

#include <gtest/gtest.h>

namespace qdd::viz {
namespace {

TEST(TraceExport, BellCircuitTrace) {
  Package pkg(2);
  const std::string json =
      exportSimulationTrace(ir::builders::bell(), pkg);
  // header
  EXPECT_NE(json.find("\"circuit\": \"bell\""), std::string::npos);
  EXPECT_NE(json.find("\"qubits\": 2"), std::string::npos);
  // one step per operation plus the initial state
  EXPECT_NE(json.find("\"index\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"index\": 2"), std::string::npos);
  EXPECT_EQ(json.find("\"index\": 3"), std::string::npos);
  // states along the way (paper Fig. 8(a)-(b))
  EXPECT_NE(json.find("\"state\": \"|00>\""), std::string::npos);
  EXPECT_NE(json.find("0.7071|00> + 0.7071|10>"), std::string::npos);
  EXPECT_NE(json.find("0.7071|00> + 0.7071|11>"), std::string::npos);
  // embedded diagrams
  EXPECT_NE(json.find("\"dd\":"), std::string::npos);
  EXPECT_NE(json.find("\"peakNodes\": 3"), std::string::npos);
}

TEST(TraceExport, WithoutDiagrams) {
  Package pkg(2);
  const std::string json = exportSimulationTrace(
      ir::builders::bell(), pkg, {.includeDiagrams = false});
  EXPECT_EQ(json.find("\"dd\":"), std::string::npos);
  EXPECT_NE(json.find("\"nodes\": 3"), std::string::npos);
}

TEST(TraceExport, MeasurementOutcomeRecorded) {
  ir::QuantumComputation qc(1, 1);
  qc.x(0);
  qc.measure(0, 0);
  Package pkg(1);
  const std::string json = exportSimulationTrace(qc, pkg);
  EXPECT_NE(json.find("\"classicalBits\": \"1\""), std::string::npos);
}

TEST(TraceExport, ValidJsonBraceBalance) {
  Package pkg(3);
  const std::string json =
      exportSimulationTrace(ir::builders::qft(3), pkg);
  long depth = 0;
  bool inString = false;
  char prev = 0;
  for (const char c : json) {
    if (c == '"' && prev != '\\') {
      inString = !inString;
    }
    if (!inString) {
      if (c == '{' || c == '[') {
        ++depth;
      } else if (c == '}' || c == ']') {
        --depth;
        EXPECT_GE(depth, 0);
      }
    }
    prev = c;
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(inString);
}

} // namespace
} // namespace qdd::viz
