// Property-based / parameterized suites over the core invariants of the
// decision-diagram package: canonicity, normalization, unitarity, norm
// preservation, algebraic identities, and agreement between the two
// normalization schemes and the dense baseline.

#include "qdd/baseline/DenseSimulator.hpp"
#include "qdd/bridge/DDBuilder.hpp"
#include "qdd/ir/Builders.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <map>
#include <random>
#include <set>

namespace qdd {
namespace {

constexpr double EPS = 1e-9;

std::vector<std::complex<double>> randomState(std::size_t n,
                                              std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(-1., 1.);
  std::vector<std::complex<double>> vec(1ULL << n);
  double norm2 = 0.;
  for (auto& a : vec) {
    a = {dist(rng), dist(rng)};
    norm2 += std::norm(a);
  }
  for (auto& a : vec) {
    a /= std::sqrt(norm2);
  }
  return vec;
}

// --- canonicity across construction orders ------------------------------------

class CanonicityTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CanonicityTest, SameStateSamePointer) {
  const std::size_t n = GetParam();
  Package pkg(n);
  const auto vec = randomState(n, 17 * n);
  // build once from the full vector, once by summing basis components
  const vEdge direct = pkg.makeStateFromVector(vec);
  vEdge sum = vEdge::zero();
  for (std::size_t idx = 0; idx < vec.size(); ++idx) {
    if (std::abs(vec[idx]) < 1e-14) {
      continue;
    }
    std::vector<bool> bits(n);
    for (std::size_t k = 0; k < n; ++k) {
      bits[k] = (idx >> k) & 1ULL;
    }
    vEdge basis = pkg.makeBasisState(n, bits);
    basis.w = pkg.lookup(ComplexValue{vec[idx].real(), vec[idx].imag()});
    sum = pkg.add(sum, basis);
  }
  EXPECT_EQ(direct.p, sum.p);
  EXPECT_TRUE(direct.w.approximatelyEquals(sum.w, EPS));
}

TEST_P(CanonicityTest, SimulationPathIndependence) {
  // applying the same circuit twice yields pointer-identical DDs
  const std::size_t n = GetParam();
  const auto qc = ir::builders::randomCliffordT(n, 15 * n, n + 1);
  Package pkg(n);
  const vEdge a = bridge::simulate(qc, pkg.makeZeroState(n), pkg);
  const vEdge b = bridge::simulate(qc, pkg.makeZeroState(n), pkg);
  EXPECT_EQ(a.p, b.p);
  EXPECT_EQ(a.w, b.w); // table-canonical weights compare by pointer
}

INSTANTIATE_TEST_SUITE_P(Sizes, CanonicityTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

// --- normalization invariants --------------------------------------------------

struct NormCase {
  std::size_t n;
  NormalizationScheme scheme;
};

class NormalizationInvariants : public ::testing::TestWithParam<NormCase> {};

TEST_P(NormalizationInvariants, TopEdgeNormalized) {
  const auto [n, scheme] = GetParam();
  Package pkg(n, scheme);
  const auto vec = randomState(n, 23 * n + 1);
  const vEdge e = pkg.makeStateFromVector(vec);
  // walk every node: normalization invariant holds everywhere
  std::vector<const vNode*> stack{e.p};
  std::set<const vNode*> seen;
  while (!stack.empty()) {
    const vNode* p = stack.back();
    stack.pop_back();
    if (p->isTerminal() || !seen.insert(p).second) {
      continue;
    }
    const double m0 = p->e[0].w.toValue().mag2();
    const double m1 = p->e[1].w.toValue().mag2();
    if (scheme == NormalizationScheme::Largest) {
      // one outgoing weight is exactly 1 and none is larger
      EXPECT_TRUE(p->e[0].w.exactlyOne() || p->e[1].w.exactlyOne());
      EXPECT_LE(std::max(m0, m1), 1. + 1e-9);
    } else {
      // squared weights sum to 1 (branch probabilities, footnote 3)
      EXPECT_NEAR(m0 + m1, 1., 1e-9);
    }
    for (const auto& child : p->e) {
      if (!child.w.exactlyZero()) {
        stack.push_back(child.p);
      }
    }
  }
  // semantics preserved
  const auto exported = pkg.getVector(e);
  for (std::size_t k = 0; k < vec.size(); ++k) {
    EXPECT_NEAR(std::abs(exported[k] - vec[k]), 0., 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, NormalizationInvariants,
    ::testing::Values(NormCase{2, NormalizationScheme::Largest},
                      NormCase{4, NormalizationScheme::Largest},
                      NormCase{6, NormalizationScheme::Largest},
                      NormCase{2, NormalizationScheme::Norm},
                      NormCase{4, NormalizationScheme::Norm},
                      NormCase{6, NormalizationScheme::Norm}));

// --- unitarity & norm preservation --------------------------------------------

class UnitarityTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UnitarityTest, CircuitUnitaryTimesAdjointIsIdentity) {
  const std::uint64_t seed = GetParam();
  const std::size_t n = 4;
  const auto qc = ir::builders::randomCliffordT(n, 40, seed);
  Package pkg(n);
  const mEdge u = bridge::buildFunctionality(qc, pkg);
  const mEdge udg = pkg.conjugateTranspose(u);
  const mEdge prod = pkg.multiply(u, udg);
  EXPECT_EQ(prod.p, pkg.makeIdent(n).p);
  EXPECT_TRUE(prod.w.approximatelyOne(EPS));
}

TEST_P(UnitarityTest, NormPreservedUnderSimulation) {
  const std::uint64_t seed = GetParam();
  const std::size_t n = 5;
  const auto qc = ir::builders::randomCliffordT(n, 60, seed);
  Package pkg(n);
  const vEdge result = bridge::simulate(qc, pkg.makeZeroState(n), pkg);
  EXPECT_NEAR(pkg.norm(result), 1., EPS);
}

TEST_P(UnitarityTest, InverseCircuitRestoresInput) {
  const std::uint64_t seed = GetParam();
  const std::size_t n = 4;
  const auto qc = ir::builders::randomCliffordT(n, 30, seed);
  const auto inv = qc.inverted();
  Package pkg(n);
  const auto input = randomState(n, seed + 100);
  const vEdge in = pkg.makeStateFromVector(input);
  pkg.incRef(in);
  const vEdge mid = bridge::simulate(qc, in, pkg);
  pkg.incRef(mid);
  const vEdge out = bridge::simulate(inv, mid, pkg);
  EXPECT_GT(pkg.fidelity(in, out), 1. - EPS);
}

INSTANTIATE_TEST_SUITE_P(Seeds, UnitarityTest,
                         ::testing::Range<std::uint64_t>(0, 8));

// --- algebraic identities ------------------------------------------------------

class AlgebraTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AlgebraTest, AdditionCommutesAndAssociates) {
  const std::uint64_t seed = GetParam();
  Package pkg(3);
  const vEdge a = pkg.makeStateFromVector(randomState(3, seed));
  const vEdge b = pkg.makeStateFromVector(randomState(3, seed + 1));
  const vEdge c = pkg.makeStateFromVector(randomState(3, seed + 2));
  const vEdge ab = pkg.add(a, b);
  const vEdge ba = pkg.add(b, a);
  EXPECT_EQ(ab.p, ba.p);
  EXPECT_TRUE(ab.w.approximatelyEquals(ba.w, EPS));
  const vEdge abc1 = pkg.add(pkg.add(a, b), c);
  const vEdge abc2 = pkg.add(a, pkg.add(b, c));
  EXPECT_EQ(abc1.p, abc2.p);
  EXPECT_TRUE(abc1.w.approximatelyEquals(abc2.w, EPS));
}

TEST_P(AlgebraTest, MultiplicationDistributesOverAddition) {
  const std::uint64_t seed = GetParam();
  Package pkg(3);
  const auto qc = ir::builders::randomCliffordT(3, 20, seed);
  const mEdge u = bridge::buildFunctionality(qc, pkg);
  const vEdge a = pkg.makeStateFromVector(randomState(3, seed + 5));
  const vEdge b = pkg.makeStateFromVector(randomState(3, seed + 6));
  const vEdge lhs = pkg.multiply(u, pkg.add(a, b));
  const vEdge rhs = pkg.add(pkg.multiply(u, a), pkg.multiply(u, b));
  EXPECT_EQ(lhs.p, rhs.p);
  EXPECT_TRUE(lhs.w.approximatelyEquals(rhs.w, EPS));
}

TEST_P(AlgebraTest, MatrixMultiplicationAssociates) {
  const std::uint64_t seed = GetParam();
  Package pkg(3);
  const mEdge a =
      bridge::buildFunctionality(ir::builders::randomCliffordT(3, 10, seed),
                                 pkg);
  const mEdge b = bridge::buildFunctionality(
      ir::builders::randomCliffordT(3, 10, seed + 1), pkg);
  const mEdge c = bridge::buildFunctionality(
      ir::builders::randomCliffordT(3, 10, seed + 2), pkg);
  const mEdge lhs = pkg.multiply(pkg.multiply(a, b), c);
  const mEdge rhs = pkg.multiply(a, pkg.multiply(b, c));
  EXPECT_EQ(lhs.p, rhs.p);
  EXPECT_TRUE(lhs.w.approximatelyEquals(rhs.w, EPS));
}

TEST_P(AlgebraTest, ConjugateTransposeIsInvolution) {
  const std::uint64_t seed = GetParam();
  Package pkg(3);
  const mEdge u = bridge::buildFunctionality(
      ir::builders::randomCliffordT(3, 25, seed), pkg);
  const mEdge udd = pkg.conjugateTranspose(pkg.conjugateTranspose(u));
  EXPECT_EQ(udd.p, u.p);
  EXPECT_TRUE(udd.w.approximatelyEquals(u.w, EPS));
}

TEST_P(AlgebraTest, InnerProductConjugateSymmetry) {
  const std::uint64_t seed = GetParam();
  Package pkg(3);
  const vEdge a = pkg.makeStateFromVector(randomState(3, seed + 10));
  const vEdge b = pkg.makeStateFromVector(randomState(3, seed + 11));
  const ComplexValue ab = pkg.innerProduct(a, b);
  const ComplexValue ba = pkg.innerProduct(b, a);
  EXPECT_NEAR(ab.re, ba.re, EPS);
  EXPECT_NEAR(ab.im, -ba.im, EPS);
}

TEST_P(AlgebraTest, KronAssociates) {
  const std::uint64_t seed = GetParam();
  Package pkg(6);
  const mEdge a = pkg.makeGateDD(
      u3Matrix(0.3 + static_cast<double>(seed), 0.2, 0.1), 1, 0);
  const mEdge b = pkg.makeGateDD(H_MAT, 1, 0);
  const mEdge c = pkg.makeGateDD(T_MAT, 1, 0);
  const mEdge lhs = pkg.kron(pkg.kron(a, b), c);
  const mEdge rhs = pkg.kron(a, pkg.kron(b, c));
  EXPECT_EQ(lhs.p, rhs.p);
  EXPECT_TRUE(lhs.w.approximatelyEquals(rhs.w, EPS));
}

TEST_P(AlgebraTest, TraceCyclicProperty) {
  const std::uint64_t seed = GetParam();
  Package pkg(3);
  const mEdge a = bridge::buildFunctionality(
      ir::builders::randomCliffordT(3, 12, seed + 20), pkg);
  const mEdge b = bridge::buildFunctionality(
      ir::builders::randomCliffordT(3, 12, seed + 21), pkg);
  const ComplexValue tab = pkg.trace(pkg.multiply(a, b));
  const ComplexValue tba = pkg.trace(pkg.multiply(b, a));
  EXPECT_NEAR(tab.re, tba.re, EPS);
  EXPECT_NEAR(tab.im, tba.im, EPS);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlgebraTest,
                         ::testing::Range<std::uint64_t>(0, 6));

// --- measurement distribution agrees with amplitudes ---------------------------

class SamplingDistribution : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SamplingDistribution, MatchesBornRule) {
  const std::uint64_t seed = GetParam();
  const std::size_t n = 3;
  Package pkg(n);
  const auto vec = randomState(n, seed + 40);
  const vEdge state = pkg.makeStateFromVector(vec);
  pkg.incRef(state);
  std::mt19937_64 rng(seed);
  constexpr std::size_t SHOTS = 20000;
  std::map<std::string, std::size_t> counts;
  for (std::size_t s = 0; s < SHOTS; ++s) {
    ++counts[pkg.sample(state, rng)];
  }
  for (std::size_t idx = 0; idx < vec.size(); ++idx) {
    std::string bits(n, '0');
    for (std::size_t k = 0; k < n; ++k) {
      if ((idx >> k) & 1ULL) {
        bits[n - 1 - k] = '1';
      }
    }
    const double expected = std::norm(vec[idx]);
    const double measured =
        counts.contains(bits)
            ? static_cast<double>(counts.at(bits)) / SHOTS
            : 0.;
    EXPECT_NEAR(measured, expected, 0.02) << bits;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SamplingDistribution,
                         ::testing::Range<std::uint64_t>(0, 4));

// --- probabilities consistent between DD and dense -----------------------------

class ProbabilityAgreement : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(ProbabilityAgreement, ProbabilityOfOneMatchesDense) {
  const std::uint64_t seed = GetParam();
  const std::size_t n = 5;
  const auto qc = ir::builders::randomCliffordT(n, 50, seed + 60);
  Package pkg(n);
  const vEdge state = bridge::simulate(qc, pkg.makeZeroState(n), pkg);
  baseline::DenseStateVector dense(n);
  dense.run(qc);
  for (std::size_t q = 0; q < n; ++q) {
    EXPECT_NEAR(pkg.probabilityOfOne(state, static_cast<Qubit>(q)),
                dense.probabilityOfOne(static_cast<Qubit>(q)), EPS)
        << "qubit " << q;
  }
}

TEST_P(ProbabilityAgreement, CollapseMatchesDense) {
  const std::uint64_t seed = GetParam();
  const std::size_t n = 4;
  const auto qc = ir::builders::randomCliffordT(n, 40, seed + 70);
  Package pkg(n);
  vEdge state = bridge::simulate(qc, pkg.makeZeroState(n), pkg);
  pkg.incRef(state);
  baseline::DenseStateVector dense(n);
  dense.run(qc);
  const Qubit q = static_cast<Qubit>(seed % n);
  const double p1 = pkg.probabilityOfOne(state, q);
  const bool outcome = p1 > 0.5; // pick the likelier branch (never zero)
  pkg.forceMeasureOne(state, q, outcome);
  dense.collapse(q, outcome);
  const auto ddVec = pkg.getVector(state);
  for (std::size_t k = 0; k < ddVec.size(); ++k) {
    EXPECT_NEAR(std::abs(ddVec[k] - dense.amplitudes()[k]), 0., 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProbabilityAgreement,
                         ::testing::Range<std::uint64_t>(0, 6));

} // namespace
} // namespace qdd
