#include "qdd/ir/Builders.hpp"
#include "qdd/ir/QuantumComputation.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

namespace qdd::ir {
namespace {

constexpr double PI_T = 3.14159265358979323846;

TEST(IrQuantumComputation, BasicConstruction) {
  QuantumComputation qc(3, 3, "demo");
  qc.h(0);
  qc.cx(0, 1);
  qc.measure(1, 1);
  EXPECT_EQ(qc.numQubits(), 3U);
  EXPECT_EQ(qc.numClbits(), 3U);
  EXPECT_EQ(qc.size(), 3U);
  EXPECT_EQ(qc.gateCount(), 3U);
  EXPECT_FALSE(qc.isPurelyUnitary());
}

TEST(IrQuantumComputation, BarriersExcludedFromGateCount) {
  QuantumComputation qc(2);
  qc.h(0);
  qc.barrier();
  qc.x(1);
  EXPECT_EQ(qc.gateCount(), 2U);
  EXPECT_EQ(qc.size(), 3U);
  EXPECT_TRUE(qc.isPurelyUnitary());
}

TEST(IrQuantumComputation, RegistersAndNames) {
  QuantumComputation qc;
  qc.addQubitRegister(2, "a");
  qc.addQubitRegister(3, "b");
  qc.addClassicalRegister(2, "c");
  EXPECT_EQ(qc.numQubits(), 5U);
  const auto names = qc.qubitNames();
  EXPECT_EQ(names[0], "a[0]");
  EXPECT_EQ(names[2], "b[0]");
  EXPECT_EQ(names[4], "b[2]");
  EXPECT_THROW(qc.addQubitRegister(1, "a"), std::invalid_argument);
  EXPECT_NE(qc.classicalRegister("c"), nullptr);
  EXPECT_EQ(qc.classicalRegister("nope"), nullptr);
}

TEST(IrQuantumComputation, QubitOutOfRangeRejected) {
  QuantumComputation qc(2);
  EXPECT_THROW(qc.h(5), std::invalid_argument);
  EXPECT_THROW(qc.cx(0, 3), std::invalid_argument);
}

TEST(IrStandardOperation, Validation) {
  EXPECT_THROW(StandardOperation(OpType::X, {{0, true}}, {0}),
               std::invalid_argument);
  EXPECT_THROW(StandardOperation(OpType::RX, {}, {0}, {}),
               std::invalid_argument);
  EXPECT_THROW(StandardOperation(OpType::H, {}, {0, 1}),
               std::invalid_argument);
  EXPECT_THROW(StandardOperation(OpType::SWAP, {}, {1, 1}),
               std::invalid_argument);
  EXPECT_THROW(
      StandardOperation(OpType::X, {{1, true}, {1, false}}, {0}),
      std::invalid_argument);
  EXPECT_THROW(StandardOperation(OpType::Measure, {}, {0}),
               std::invalid_argument);
}

TEST(IrStandardOperation, InvertInvolution) {
  // inverting twice restores the original operation
  std::vector<StandardOperation> ops = {
      {OpType::H, 0},
      {OpType::S, 1},
      {OpType::Tdg, 0},
      {OpType::RX, 0, {0.7}},
      {OpType::Phase, 1, {1.3}},
      {OpType::U3, 0, {0.3, 0.5, 0.7}},
  };
  ops.emplace_back(OpType::SWAP, QubitControls{}, std::vector<Qubit>{0, 1});
  for (const auto& op : ops) {
    auto copy = op.clone();
    copy->invert();
    copy->invert();
    if (op.type() == OpType::U2) {
      continue; // U2 inverts into U3; double inversion is not syntactic
    }
    EXPECT_EQ(copy->type(), op.type());
    ASSERT_EQ(copy->parameters().size(), op.parameters().size());
    for (std::size_t k = 0; k < op.parameters().size(); ++k) {
      EXPECT_NEAR(copy->parameters()[k], op.parameters()[k], 1e-12);
    }
  }
}

TEST(IrOperations, UsedQubits) {
  const StandardOperation op(OpType::X, {{2, true}, {0, false}}, {1});
  const auto used = op.usedQubits();
  EXPECT_EQ(used, (std::vector<Qubit>{0, 1, 2}));
}

TEST(IrNonUnitary, MeasureValidation) {
  EXPECT_THROW(NonUnitaryOperation(std::vector<Qubit>{0, 1},
                                   std::vector<std::size_t>{0}),
               std::invalid_argument);
  EXPECT_THROW(NonUnitaryOperation(OpType::H, std::vector<Qubit>{0}),
               std::invalid_argument);
  NonUnitaryOperation reset(OpType::Reset, std::vector<Qubit>{0});
  EXPECT_FALSE(reset.isUnitary());
  EXPECT_THROW(reset.invert(), std::logic_error);
  NonUnitaryOperation barrier(OpType::Barrier, std::vector<Qubit>{0, 1});
  EXPECT_TRUE(barrier.isUnitary());
  EXPECT_NO_THROW(barrier.invert());
}

TEST(IrClassicControlled, ConditionEvaluation) {
  auto inner = std::make_unique<StandardOperation>(OpType::X, Qubit{0});
  const ClassicControlledOperation op(std::move(inner), 0, 2, 2);
  EXPECT_TRUE(op.conditionSatisfied({false, true}));
  EXPECT_FALSE(op.conditionSatisfied({true, false}));
  EXPECT_FALSE(op.conditionSatisfied({false, false}));
  EXPECT_FALSE(op.isUnitary());
  auto copy = op.clone();
  EXPECT_TRUE(copy->isClassicControlledOperation());
}

TEST(IrCompound, InvertReversesOrder) {
  CompoundOperation comp("grp");
  comp.emplaceBack(std::make_unique<StandardOperation>(OpType::S, Qubit{0}));
  comp.emplaceBack(std::make_unique<StandardOperation>(OpType::H, Qubit{1}));
  comp.invert();
  EXPECT_EQ(comp.operations()[0]->type(), OpType::H);
  EXPECT_EQ(comp.operations()[1]->type(), OpType::Sdg);
}

TEST(IrInversion, InvertedCircuitReversesGates) {
  QuantumComputation qc(2);
  qc.h(1);
  qc.cx(1, 0);
  qc.t(0);
  const QuantumComputation inv = qc.inverted();
  ASSERT_EQ(inv.size(), 3U);
  EXPECT_EQ(inv.at(0).type(), OpType::Tdg);
  EXPECT_EQ(inv.at(1).type(), OpType::X);
  EXPECT_EQ(inv.at(2).type(), OpType::H);
}

TEST(IrInversion, NonUnitaryRejected) {
  QuantumComputation qc(1, 1);
  qc.h(0);
  qc.measure(0, 0);
  EXPECT_THROW((void)qc.inverted(), std::logic_error);
}

TEST(IrBuilders, BellMatchesFig1c) {
  const auto qc = builders::bell();
  ASSERT_EQ(qc.size(), 2U);
  EXPECT_EQ(qc.at(0).type(), OpType::H);
  EXPECT_EQ(qc.at(0).targets()[0], 1);
  EXPECT_EQ(qc.at(1).type(), OpType::X);
  ASSERT_EQ(qc.at(1).controls().size(), 1U);
  EXPECT_EQ(qc.at(1).controls()[0].qubit, 1);
  EXPECT_EQ(qc.at(1).targets()[0], 0);
}

TEST(IrBuilders, QftThreeQubitsMatchesFig5a) {
  const auto qc = builders::qft(3);
  // H q2, cp(pi/2) q1->q2, cp(pi/4) q0->q2, H q1, cp(pi/2) q0->q1, H q0,
  // SWAP q0 q2
  ASSERT_EQ(qc.size(), 7U);
  EXPECT_EQ(qc.at(0).type(), OpType::H);
  EXPECT_EQ(qc.at(0).targets()[0], 2);
  EXPECT_EQ(qc.at(1).type(), OpType::Phase);
  EXPECT_NEAR(qc.at(1).parameters()[0], PI_T / 2., 1e-12); // S
  EXPECT_EQ(qc.at(2).type(), OpType::Phase);
  EXPECT_NEAR(qc.at(2).parameters()[0], PI_T / 4., 1e-12); // T
  EXPECT_EQ(qc.at(6).type(), OpType::SWAP);
}

TEST(IrBuilders, GhzGateCount) {
  const auto qc = builders::ghz(5);
  EXPECT_EQ(qc.gateCount(), 5U); // 1 H + 4 CX
  EXPECT_EQ(qc.numQubits(), 5U);
}

TEST(IrBuilders, GroverValidation) {
  EXPECT_THROW(builders::grover(2, 7), std::invalid_argument);
  const auto qc = builders::grover(3, 5);
  EXPECT_EQ(qc.numQubits(), 3U);
  EXPECT_GT(qc.gateCount(), 0U);
}

TEST(IrBuilders, RandomCliffordTDeterministic) {
  const auto a = builders::randomCliffordT(4, 50, 42);
  const auto b = builders::randomCliffordT(4, 50, 42);
  EXPECT_EQ(a.toOpenQASM(), b.toOpenQASM());
  const auto c = builders::randomCliffordT(4, 50, 43);
  EXPECT_NE(a.toOpenQASM(), c.toOpenQASM());
}

TEST(IrDecompose, SwapBecomesThreeCnots) {
  QuantumComputation qc(2);
  qc.swap(0, 1);
  const auto compiled = decomposeToNativeGates(qc);
  EXPECT_EQ(compiled.gateCount(), 3U);
  for (const auto& op : compiled) {
    EXPECT_EQ(op->type(), OpType::X);
    EXPECT_EQ(op->controls().size(), 1U);
  }
}

TEST(IrDecompose, ControlledPhaseBecomesNative) {
  QuantumComputation qc(2);
  qc.cphase(PI_T / 4., 0, 1);
  const auto compiled = decomposeToNativeGates(qc);
  // p(theta/2) c; cx; p(-theta/2) t; cx; p(theta/2) t  (Fig. 5(b))
  EXPECT_EQ(compiled.gateCount(), 5U);
  EXPECT_EQ(compiled.at(0).type(), OpType::Phase);
  EXPECT_NEAR(compiled.at(0).parameters()[0], PI_T / 8., 1e-12);
  EXPECT_EQ(compiled.at(1).type(), OpType::X);
  EXPECT_NEAR(compiled.at(2).parameters()[0], -PI_T / 8., 1e-12);
}

TEST(IrDecompose, BarriersMarkOriginalGateBoundaries) {
  const auto qft = builders::qft(3);
  const auto compiled = decomposeToNativeGates(qft, true);
  std::size_t barriers = 0;
  for (const auto& op : compiled) {
    if (op->type() == OpType::Barrier) {
      ++barriers;
    }
  }
  EXPECT_EQ(barriers, qft.size()); // one barrier per original gate
}

TEST(IrQasmDump, ContainsDeclarationsAndGates) {
  QuantumComputation qc(2, 2, "dump");
  qc.h(0);
  qc.cx(0, 1);
  qc.cphase(PI_T / 2., 0, 1);
  qc.measure(0, 0);
  qc.barrier();
  const std::string qasm = qc.toOpenQASM();
  EXPECT_NE(qasm.find("OPENQASM 2.0;"), std::string::npos);
  EXPECT_NE(qasm.find("qreg q[2];"), std::string::npos);
  EXPECT_NE(qasm.find("creg c[2];"), std::string::npos);
  EXPECT_NE(qasm.find("h q[0];"), std::string::npos);
  EXPECT_NE(qasm.find("cx q[0], q[1];"), std::string::npos);
  EXPECT_NE(qasm.find("cp(pi/2) q[0], q[1];"), std::string::npos);
  EXPECT_NE(qasm.find("measure q[0] -> c[0];"), std::string::npos);
  EXPECT_NE(qasm.find("barrier q[0], q[1];"), std::string::npos);
}

TEST(IrQasmDump, NegativeControlsWrappedInX) {
  QuantumComputation qc(2);
  qc.addStandard(OpType::X, {{1, false}}, {0});
  const std::string qasm = qc.toOpenQASM();
  // negative control emitted as x-conjugated positive control
  const auto firstX = qasm.find("x q[1];");
  ASSERT_NE(firstX, std::string::npos);
  const auto cx = qasm.find("cx q[1], q[0];");
  ASSERT_NE(cx, std::string::npos);
  const auto secondX = qasm.find("x q[1];", cx);
  EXPECT_NE(secondX, std::string::npos);
  EXPECT_LT(firstX, cx);
}

} // namespace
} // namespace qdd::ir
