// Round-trip and error-path tests for the decision-diagram serialization
// format.

#include "qdd/bridge/DDBuilder.hpp"
#include "qdd/dd/Serialization.hpp"
#include "qdd/ir/Builders.hpp"

#include <gtest/gtest.h>

#include <random>

namespace qdd {
namespace {

constexpr double EPS = 1e-9;

TEST(Serialization, VectorRoundTripSamePackage) {
  Package pkg(3);
  const vEdge original = pkg.makeGHZState(3);
  pkg.incRef(original);
  const std::string text = serializeToString(original);
  const vEdge restored = deserializeVectorFromString(pkg, text);
  // canonical: deserializing into the same package yields the same node
  EXPECT_EQ(restored.p, original.p);
  EXPECT_TRUE(restored.w.approximatelyEquals(original.w, EPS));
}

TEST(Serialization, VectorRoundTripFreshPackage) {
  Package source(4);
  std::mt19937_64 rng(5);
  std::uniform_real_distribution<double> dist(-1., 1.);
  std::vector<std::complex<double>> vec(16);
  double n2 = 0.;
  for (auto& a : vec) {
    a = {dist(rng), dist(rng)};
    n2 += std::norm(a);
  }
  for (auto& a : vec) {
    a /= std::sqrt(n2);
  }
  const vEdge original = source.makeStateFromVector(vec);
  const std::string text = serializeToString(original);

  Package target(4);
  const vEdge restored = deserializeVectorFromString(target, text);
  const auto restoredVec = target.getVector(restored);
  for (std::size_t k = 0; k < vec.size(); ++k) {
    EXPECT_NEAR(std::abs(restoredVec[k] - vec[k]), 0., 1e-8);
  }
}

TEST(Serialization, MatrixRoundTrip) {
  Package pkg(3);
  const auto qft = ir::builders::qft(3);
  const mEdge original = bridge::buildFunctionality(qft, pkg);
  pkg.incRef(original);
  const std::string text = serializeToString(original);

  Package target(3);
  const mEdge restored = deserializeMatrixFromString(target, text);
  EXPECT_EQ(Package::size(restored), 21U);
  const auto a = pkg.getMatrix(original);
  const auto b = target.getMatrix(restored);
  for (std::size_t k = 0; k < a.size(); ++k) {
    EXPECT_NEAR(std::abs(a[k] - b[k]), 0., 1e-9);
  }
}

TEST(Serialization, CrossSchemeRoundTrip) {
  // serialize under Largest normalization, deserialize into a Norm package
  Package source(3, NormalizationScheme::Largest);
  const vEdge original = source.makeWState(3);
  const std::string text = serializeToString(original);
  Package target(3, NormalizationScheme::Norm);
  const vEdge restored = deserializeVectorFromString(target, text);
  const auto a = source.getVector(original);
  const auto b = target.getVector(restored);
  for (std::size_t k = 0; k < a.size(); ++k) {
    EXPECT_NEAR(std::abs(a[k] - b[k]), 0., 1e-9);
  }
}

TEST(Serialization, ZeroAndTerminalEdges) {
  Package pkg(2);
  {
    const std::string text = serializeToString(vEdge::zero());
    const vEdge restored = deserializeVectorFromString(pkg, text);
    EXPECT_TRUE(restored.w.exactlyZero());
  }
  {
    const std::string text = serializeToString(vEdge::one());
    const vEdge restored = deserializeVectorFromString(pkg, text);
    EXPECT_TRUE(restored.isTerminal());
    EXPECT_TRUE(restored.w.exactlyOne());
  }
}

TEST(Serialization, SharedNodesSerializedOnce) {
  Package pkg(4);
  const vEdge ghz = pkg.makeGHZState(4);
  const std::string text = serializeToString(ghz);
  // GHZ_4 has 7 nodes; exactly 7 "node" lines expected
  std::size_t nodeLines = 0;
  std::size_t pos = 0;
  while ((pos = text.find("node ", pos)) != std::string::npos) {
    ++nodeLines;
    pos += 5;
  }
  EXPECT_EQ(nodeLines, 7U);
}

TEST(Serialization, MalformedInputsRejected) {
  Package pkg(2);
  EXPECT_THROW((void)deserializeVectorFromString(pkg, ""),
               std::runtime_error);
  EXPECT_THROW((void)deserializeVectorFromString(pkg, "qdd-matrix 1\n"),
               std::runtime_error);
  EXPECT_THROW((void)deserializeVectorFromString(pkg, "qdd-vector 2\n"),
               std::runtime_error);
  EXPECT_THROW(
      (void)deserializeVectorFromString(pkg, "qdd-vector 1\nroot 0 1 0\n"),
      std::runtime_error); // missing end + undefined node
  EXPECT_THROW((void)deserializeVectorFromString(
                   pkg, "qdd-vector 1\nroot 0 1 0\nnode 0 0 7 1 0 -1 0 0\n"
                        "end\n"),
               std::runtime_error); // child referenced before definition
  EXPECT_THROW((void)deserializeVectorFromString(
                   pkg, "qdd-vector 1\nroot 0 1 0\nbogus\nend\n"),
               std::runtime_error);
}

TEST(Serialization, StreamInterface) {
  Package pkg(2);
  const vEdge bell = pkg.makeGHZState(2);
  std::stringstream ss;
  serialize(bell, ss);
  const vEdge restored = deserializeVector(pkg, ss);
  EXPECT_EQ(restored.p, bell.p);
}


// property sweep: every builder circuit's final state round-trips
class SerializationSweep : public ::testing::TestWithParam<int> {};

TEST_P(SerializationSweep, BuilderStatesRoundTrip) {
  const int which = GetParam();
  ir::QuantumComputation qc;
  switch (which) {
  case 0:
    qc = ir::builders::bell();
    break;
  case 1:
    qc = ir::builders::ghz(6);
    break;
  case 2:
    qc = ir::builders::wState(5);
    break;
  case 3:
    qc = ir::builders::qft(5);
    break;
  case 4:
    qc = ir::builders::grover(5, 17);
    break;
  case 5:
    qc = ir::builders::phaseEstimation(4, 9);
    break;
  default:
    qc = ir::builders::randomCliffordT(5, 60, static_cast<std::uint64_t>(which));
    break;
  }
  Package source(qc.numQubits());
  const vEdge state =
      bridge::simulate(qc, source.makeZeroState(qc.numQubits()), source);
  source.incRef(state);
  const std::string text = serializeToString(state);

  Package target(qc.numQubits());
  const vEdge restored = deserializeVectorFromString(target, text);
  target.incRef(restored);
  EXPECT_EQ(Package::size(state), Package::size(restored)) << which;
  const auto a = source.getVector(state);
  const auto b = target.getVector(restored);
  for (std::size_t k = 0; k < a.size(); ++k) {
    EXPECT_NEAR(std::abs(a[k] - b[k]), 0., 1e-8) << which << ":" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Builders, SerializationSweep,
                         ::testing::Range(0, 10));

} // namespace
} // namespace qdd
