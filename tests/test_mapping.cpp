// Tests for coupling maps and the SWAP-routing mapper, including the
// verification of mapping results — the compilation-flow scenario the
// paper's Sec. III-C motivates (refs [23]-[28]).

#include "qdd/ir/Builders.hpp"
#include "qdd/ir/Mapping.hpp"
#include "qdd/verify/EquivalenceChecker.hpp"

#include <gtest/gtest.h>

namespace qdd::ir {
namespace {

bool respectsCoupling(const QuantumComputation& qc, const CouplingMap& cm) {
  for (const auto& op : qc) {
    const auto used = op->usedQubits();
    if (used.size() == 2 && op->isStandardOperation()) {
      if (!cm.connected(used[0], used[1])) {
        return false;
      }
    }
  }
  return true;
}

TEST(CouplingMap, Topologies) {
  const CouplingMap lin = CouplingMap::linear(4);
  EXPECT_TRUE(lin.connected(0, 1));
  EXPECT_TRUE(lin.connected(2, 1));
  EXPECT_FALSE(lin.connected(0, 3));
  const CouplingMap ring = CouplingMap::ring(4);
  EXPECT_TRUE(ring.connected(3, 0));
  const CouplingMap grid = CouplingMap::grid(2, 3);
  EXPECT_EQ(grid.size(), 6U);
  EXPECT_TRUE(grid.connected(0, 3));  // vertical
  EXPECT_TRUE(grid.connected(1, 2));  // horizontal
  EXPECT_FALSE(grid.connected(0, 4)); // diagonal
}

TEST(CouplingMap, ShortestPath) {
  const CouplingMap lin = CouplingMap::linear(5);
  const auto path = lin.shortestPath(0, 4);
  EXPECT_EQ(path, (std::vector<Qubit>{0, 1, 2, 3, 4}));
  const CouplingMap ring = CouplingMap::ring(6);
  EXPECT_EQ(ring.shortestPath(0, 5).size(), 2U); // around the back
  EXPECT_EQ(ring.shortestPath(2, 2), (std::vector<Qubit>{2}));
}

TEST(CouplingMap, Validation) {
  EXPECT_THROW(CouplingMap(0, {}), std::invalid_argument);
  EXPECT_THROW(CouplingMap(2, {{0, 5}}), std::invalid_argument);
  EXPECT_THROW(CouplingMap(2, {{1, 1}}), std::invalid_argument);
}

TEST(Mapping, AdjacentGatesPassThrough) {
  QuantumComputation qc(3);
  qc.h(0);
  qc.cx(0, 1);
  qc.cx(1, 2);
  const auto result = mapToCoupling(qc, CouplingMap::linear(3));
  EXPECT_EQ(result.addedSwaps, 0U);
  EXPECT_EQ(result.mapped.gateCount(), qc.gateCount());
  EXPECT_EQ(result.outputPosition, (std::vector<Qubit>{0, 1, 2}));
}

TEST(Mapping, DistantGateGetsRouted) {
  QuantumComputation qc(4);
  qc.cx(0, 3);
  const auto result = mapToCoupling(qc, CouplingMap::linear(4));
  EXPECT_GT(result.addedSwaps, 0U);
  EXPECT_TRUE(respectsCoupling(result.mapped, CouplingMap::linear(4)));
}

TEST(Mapping, MappedCircuitEquivalentAfterRestore) {
  // the [28] scenario: verify the result of the mapping flow with DDs
  for (const std::size_t n : {3U, 4U, 5U}) {
    const auto qft = builders::qft(n);
    const auto result = mapToCoupling(qft, CouplingMap::linear(n));
    EXPECT_TRUE(respectsCoupling(result.mapped, CouplingMap::linear(n)))
        << "n=" << n;
    const auto restored = result.mappedWithRestore();
    Package pkg(n);
    const verify::EquivalenceChecker checker(qft, restored);
    EXPECT_EQ(checker.checkByConstruction(pkg).equivalence,
              verify::Equivalence::Equivalent)
        << "n=" << n;
  }
}

TEST(Mapping, AlternatingSchemeVerifiesMappedCircuits) {
  const auto qc = builders::randomCliffordT(5, 60, 21);
  const auto result = mapToCoupling(qc, CouplingMap::ring(5));
  const auto restored = result.mappedWithRestore();
  Package pkg(5);
  const verify::EquivalenceChecker checker(qc, restored);
  const auto res = checker.checkAlternating(pkg, verify::Strategy::Proportional);
  EXPECT_EQ(res.equivalence, verify::Equivalence::Equivalent);
}

TEST(Mapping, DetectsBrokenMapping) {
  const auto qc = builders::qft(4);
  auto result = mapToCoupling(qc, CouplingMap::linear(4));
  auto broken = result.mappedWithRestore();
  broken.z(2); // inject an error into the "compiler output"
  Package pkg(4);
  const verify::EquivalenceChecker checker(qc, broken);
  EXPECT_EQ(checker.checkByConstruction(pkg).equivalence,
            verify::Equivalence::NotEquivalent);
}

TEST(Mapping, GridTopology) {
  const auto qc = builders::randomCliffordT(6, 80, 9);
  const CouplingMap grid = CouplingMap::grid(2, 3);
  const auto result = mapToCoupling(qc, grid);
  EXPECT_TRUE(respectsCoupling(result.mapped, grid));
  const auto restored = result.mappedWithRestore();
  Package pkg(6);
  const verify::EquivalenceChecker checker(qc, restored);
  EXPECT_EQ(checker.checkBySimulation(pkg, 8).equivalence,
            verify::Equivalence::ProbablyEquivalent);
}

TEST(Mapping, MeasurementsFollowTheirQubits) {
  QuantumComputation qc(3, 3);
  qc.cx(0, 2); // forces routing on a linear device
  qc.measure(0, 0);
  const auto result = mapToCoupling(qc, CouplingMap::linear(3));
  // find the measure operation and check it targets logical qubit 0's wire
  const Qubit expected = result.outputPosition[0];
  bool found = false;
  for (const auto& op : result.mapped) {
    if (op->type() == OpType::Measure) {
      EXPECT_EQ(op->targets()[0], expected);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Mapping, SwapGatesRoutedToo) {
  QuantumComputation qc(4);
  qc.swap(0, 3);
  const auto result = mapToCoupling(qc, CouplingMap::linear(4));
  EXPECT_TRUE(respectsCoupling(result.mapped, CouplingMap::linear(4)));
  const auto restored = result.mappedWithRestore();
  Package pkg(4);
  const verify::EquivalenceChecker checker(qc, restored);
  EXPECT_EQ(checker.checkByConstruction(pkg).equivalence,
            verify::Equivalence::Equivalent);
}

TEST(Mapping, RejectsUnsupportedInputs) {
  QuantumComputation toffoli(3);
  toffoli.ccx(0, 1, 2);
  EXPECT_THROW(mapToCoupling(toffoli, CouplingMap::linear(3)),
               std::invalid_argument);
  QuantumComputation big(5);
  big.h(4);
  EXPECT_THROW(mapToCoupling(big, CouplingMap::linear(3)),
               std::invalid_argument);
}

TEST(Mapping, DecomposeFirstThenMapWorks) {
  // the full flow: Toffoli-bearing circuit -> native gates -> mapped
  QuantumComputation qc(3);
  qc.h(2);
  qc.ccx(2, 1, 0); // not directly mappable
  qc.cphase(0.7, 0, 2);
  // decompose the Toffoli via controlled-phase identities? Our pass keeps
  // ccx; instead express it manually with the standard 2-qubit+T network.
  QuantumComputation flat(3);
  flat.h(2);
  flat.h(0);
  flat.cx(1, 0);
  flat.tdg(0);
  flat.cx(2, 0);
  flat.t(0);
  flat.cx(1, 0);
  flat.tdg(0);
  flat.cx(2, 0);
  flat.t(1);
  flat.t(0);
  flat.h(0);
  flat.cx(2, 1);
  flat.t(2);
  flat.tdg(1);
  flat.cx(2, 1);
  flat.cphase(0.7, 0, 2);
  {
    // sanity: `flat` realizes the same function as `qc`
    Package pkg(3);
    const verify::EquivalenceChecker checker(qc, flat);
    ASSERT_EQ(checker.checkByConstruction(pkg).equivalence,
              verify::Equivalence::Equivalent);
  }
  const auto result = mapToCoupling(flat, CouplingMap::linear(3));
  const auto restored = result.mappedWithRestore();
  Package pkg(3);
  const verify::EquivalenceChecker checker(qc, restored);
  EXPECT_EQ(checker.checkByConstruction(pkg).equivalence,
            verify::Equivalence::Equivalent);
}

} // namespace
} // namespace qdd::ir
