#include "qdd/ir/Builders.hpp"
#include "qdd/verify/EquivalenceChecker.hpp"
#include "qdd/verify/VerificationSession.hpp"

#include <gtest/gtest.h>

namespace qdd::verify {
namespace {

ir::QuantumComputation compiledQft(std::size_t n) {
  return ir::decomposeToNativeGates(ir::builders::qft(n), true);
}

TEST(VerifyConstruction, QftEquivalentToCompiledQft) {
  // Paper Ex. 11: both circuits produce the same canonical DD (Fig. 6).
  const auto qft = ir::builders::qft(3);
  const auto compiled = compiledQft(3);
  Package pkg(3);
  const EquivalenceChecker checker(qft, compiled);
  const CheckResult result = checker.checkByConstruction(pkg);
  EXPECT_EQ(result.equivalence, Equivalence::Equivalent);
  EXPECT_EQ(result.finalNodes, 21U); // full QFT_3 system matrix
}

TEST(VerifyConstruction, DetectsNonEquivalence) {
  const auto qft = ir::builders::qft(3);
  auto broken = compiledQft(3);
  broken.x(0); // inject an error
  Package pkg(3);
  const EquivalenceChecker checker(qft, broken);
  EXPECT_EQ(checker.checkByConstruction(pkg).equivalence,
            Equivalence::NotEquivalent);
}

TEST(VerifyConstruction, GlobalPhaseDetected) {
  auto a = ir::builders::bell();
  auto b = ir::builders::bell();
  // append a global phase: Z X Z X = -I on one qubit
  b.z(0);
  b.x(0);
  b.z(0);
  b.x(0);
  Package pkg(2);
  const EquivalenceChecker checker(a, b);
  EXPECT_EQ(checker.checkByConstruction(pkg).equivalence,
            Equivalence::EquivalentUpToGlobalPhase);
}

TEST(VerifyAlternating, Ex12NodeCountAdvantage) {
  // Paper Ex. 12: verifying the two QFT versions with the barrier-sync
  // schedule needs at most 9 nodes, versus 21 nodes when building the full
  // system matrix.
  const auto qft = ir::builders::qft(3);
  const auto compiled = compiledQft(3);
  Package pkg(3);
  const EquivalenceChecker checker(qft, compiled);

  const CheckResult full = checker.checkAlternating(pkg, Strategy::Sequential);
  EXPECT_EQ(full.equivalence, Equivalence::Equivalent);
  EXPECT_GE(full.maxNodes, 21U); // has to build the whole matrix

  const CheckResult sync =
      checker.checkAlternating(pkg, Strategy::BarrierSync);
  EXPECT_EQ(sync.equivalence, Equivalence::Equivalent);
  EXPECT_LE(sync.maxNodes, 9U);
  EXPECT_LT(sync.maxNodes, full.maxNodes);
}

TEST(VerifyAlternating, AllStrategiesAgree) {
  const auto qft = ir::builders::qft(4);
  const auto compiled = compiledQft(4);
  Package pkg(4);
  const EquivalenceChecker checker(qft, compiled);
  for (const auto strategy :
       {Strategy::Sequential, Strategy::OneToOne, Strategy::Proportional,
        Strategy::BarrierSync}) {
    const CheckResult result = checker.checkAlternating(pkg, strategy);
    EXPECT_EQ(result.equivalence, Equivalence::Equivalent)
        << toString(strategy);
  }
}

TEST(VerifyAlternating, DetectsInjectedErrors) {
  const auto base = ir::builders::randomCliffordT(4, 30, 5);
  for (const auto strategy :
       {Strategy::OneToOne, Strategy::Proportional, Strategy::BarrierSync}) {
    auto broken = base;
    broken.t(2); // extra gate
    Package pkg(4);
    const EquivalenceChecker checker(base, broken);
    EXPECT_EQ(checker.checkAlternating(pkg, strategy).equivalence,
              Equivalence::NotEquivalent)
        << toString(strategy);
  }
}

TEST(VerifyAlternating, IdenticalCircuitsStayAtIdentity) {
  const auto qc = ir::builders::randomCliffordT(5, 40, 9);
  Package pkg(5);
  const EquivalenceChecker checker(qc, qc);
  const CheckResult result = checker.checkAlternating(pkg, Strategy::OneToOne);
  EXPECT_EQ(result.equivalence, Equivalence::Equivalent);
  // with 1:1 alternation of an identical circuit, the DD returns to the
  // identity after every pair (U_i ... U_0) (U_0^-1 ... U_i^-1)? Not quite -
  // but it must end exactly at the identity, which identity-skipping edges
  // represent as the bare weight-1 terminal (0 nodes).
  EXPECT_EQ(result.finalNodes, 0U);
}

TEST(VerifySimulation, AgreesOnEquivalentCircuits) {
  const auto qft = ir::builders::qft(4);
  const auto compiled = compiledQft(4);
  Package pkg(4);
  const EquivalenceChecker checker(qft, compiled);
  EXPECT_EQ(checker.checkBySimulation(pkg, 8).equivalence,
            Equivalence::ProbablyEquivalent);
}

TEST(VerifySimulation, RefutesWithCounterexample) {
  const auto base = ir::builders::ghz(4);
  auto broken = base;
  broken.x(1);
  Package pkg(4);
  const EquivalenceChecker checker(base, broken);
  EXPECT_EQ(checker.checkBySimulation(pkg, 8).equivalence,
            Equivalence::NotEquivalent);
}

TEST(VerifyErrors, MismatchedQubitCounts) {
  const auto a = ir::builders::ghz(3);
  const auto b = ir::builders::ghz(4);
  EXPECT_THROW(EquivalenceChecker(a, b), std::invalid_argument);
}

TEST(VerifyErrors, NonUnitaryRejected) {
  auto a = ir::builders::bell();
  auto b = ir::builders::bell();
  b.addClassicalRegister(1, "c");
  b.measure(0, 0);
  // Sec. IV-C: "Measurement, Reset, and Classically-Controlled Operations
  // are currently not supported due to their non-unitary nature".
  EXPECT_THROW(EquivalenceChecker(a, b), std::invalid_argument);
}

TEST(VerifySession, InteractiveSteppingMirrorsFig9) {
  const auto qft = ir::builders::qft(3);
  const auto compiled = compiledQft(3);
  Package pkg(3);
  VerificationSession session(qft, compiled, pkg);
  // initially the identity (the weight-1 terminal under identity-skipping)
  EXPECT_EQ(session.currentNodes(), 0U);
  EXPECT_EQ(session.currentVerdict(), Equivalence::Equivalent);
  // apply one gate from the left: no longer the identity
  ASSERT_TRUE(session.stepLeft());
  EXPECT_EQ(session.currentVerdict(), Equivalence::NotEquivalent);
  // apply the corresponding compiled chunk from the right: identity again
  session.runRightToBarrier();
  EXPECT_EQ(session.currentVerdict(), Equivalence::Equivalent);
}

TEST(VerifySession, RunToCompletionStaysSmall) {
  const auto qft = ir::builders::qft(3);
  const auto compiled = compiledQft(3);
  Package pkg(3);
  VerificationSession session(qft, compiled, pkg);
  const CheckResult result = session.runToCompletion();
  EXPECT_EQ(result.equivalence, Equivalence::Equivalent);
  EXPECT_LE(result.maxNodes, 9U); // Ex. 12
}

TEST(VerifySession, StepBackUndoesEitherSide) {
  const auto qft = ir::builders::qft(3);
  const auto compiled = compiledQft(3);
  Package pkg(3);
  VerificationSession session(qft, compiled, pkg);
  session.stepLeft();
  session.stepRight();
  EXPECT_EQ(session.leftPosition(), 1U);
  ASSERT_TRUE(session.stepBack());
  EXPECT_EQ(session.rightPosition(), 0U);
  EXPECT_EQ(session.leftPosition(), 1U);
  ASSERT_TRUE(session.stepBack());
  EXPECT_EQ(session.leftPosition(), 0U);
  EXPECT_EQ(session.currentVerdict(), Equivalence::Equivalent);
  EXPECT_FALSE(session.stepBack());
}

TEST(VerifySession, BuildSingleCircuitFunctionality) {
  // Ex. 14: loading only one circuit and applying all operations yields the
  // DD of Fig. 6 — emulated by verifying against an empty circuit.
  const auto qft = ir::builders::qft(3);
  ir::QuantumComputation empty(3);
  Package pkg(3);
  VerificationSession session(qft, empty, pkg);
  while (session.stepLeft()) {
  }
  EXPECT_EQ(session.currentNodes(), 21U); // Fig. 6 / Ex. 12
}

} // namespace
} // namespace qdd::verify
