// Tests for identity-skipping matrix-DD edges (arXiv:2406.11959): node-count
// comparisons between Strip and Materialize packages, cross-mode agreement of
// every span-aware operation, serialization interop (v1 back-compat, v2
// span), and equivalence-checking parity.

#include "qdd/bridge/DDBuilder.hpp"
#include "qdd/dd/Package.hpp"
#include "qdd/dd/Serialization.hpp"
#include "qdd/ir/Builders.hpp"
#include "qdd/verify/EquivalenceChecker.hpp"

#include <gtest/gtest.h>

#include <complex>
#include <stdexcept>
#include <vector>

namespace qdd {
namespace {

constexpr double EPS = 1e-9;

Package makePkg(std::size_t n, IdentityMode mode) {
  return Package(n, NormalizationScheme::Largest, RealTable::DEFAULT_TOLERANCE,
                 mode);
}

void expectSameMatrix(const std::vector<std::complex<double>>& a,
                      const std::vector<std::complex<double>>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t k = 0; k < a.size(); ++k) {
    EXPECT_NEAR(std::abs(a[k] - b[k]), 0., 1e-8) << "entry " << k;
  }
}

TEST(IdentityMode, ParseAndToString) {
  EXPECT_EQ(parseIdentityMode("strip"), IdentityMode::Strip);
  EXPECT_EQ(parseIdentityMode("materialize"), IdentityMode::Materialize);
  EXPECT_EQ(parseIdentityMode("anything-else"), IdentityMode::Strip);
  EXPECT_EQ(parseIdentityMode(nullptr), IdentityMode::Strip);
  EXPECT_STREQ(toString(IdentityMode::Strip), "strip");
  EXPECT_STREQ(toString(IdentityMode::Materialize), "materialize");
}

TEST(IdentityMode, PackageModeFixedAtConstruction) {
  const Package strip = makePkg(2, IdentityMode::Strip);
  const Package mat = makePkg(2, IdentityMode::Materialize);
  EXPECT_EQ(strip.identityMode(), IdentityMode::Strip);
  EXPECT_EQ(mat.identityMode(), IdentityMode::Materialize);
}

TEST(IdentityNodes, MakeIdentIsTerminalUnderStrip) {
  Package pkg = makePkg(5, IdentityMode::Strip);
  const mEdge id = pkg.makeIdent(5);
  EXPECT_TRUE(id.isTerminal());
  EXPECT_EQ(Package::size(id), 0U);
  EXPECT_NEAR(pkg.trace(id, 5).re, 32., EPS);
}

TEST(IdentityNodes, MakeIdentIsTowerUnderMaterialize) {
  Package pkg = makePkg(5, IdentityMode::Materialize);
  const mEdge id = pkg.makeIdent(5);
  ASSERT_FALSE(id.isTerminal());
  EXPECT_EQ(id.p->v, 4);
  EXPECT_EQ(Package::size(id), 5U);
  EXPECT_NEAR(pkg.trace(id, 5).re, 32., EPS);
}

TEST(IdentityNodes, SingleQubitGateIsOneNodeUnderStrip) {
  Package strip = makePkg(8, IdentityMode::Strip);
  Package mat = makePkg(8, IdentityMode::Materialize);
  for (const Qubit target : {Qubit{0}, Qubit{3}, Qubit{7}}) {
    const mEdge s = strip.makeGateDD(H_MAT, 8, target);
    const mEdge m = mat.makeGateDD(H_MAT, 8, target);
    EXPECT_EQ(Package::size(s), 1U) << "target " << target;
    // legacy representation drags a full identity tower along
    EXPECT_EQ(Package::size(m), 8U) << "target " << target;
    expectSameMatrix(strip.getMatrix(s, 8), mat.getMatrix(m, 8));
  }
}

TEST(IdentityNodes, ControlledGatesAgreeAcrossModes) {
  Package strip = makePkg(4, IdentityMode::Strip);
  Package mat = makePkg(4, IdentityMode::Materialize);
  const mEdge cxS = strip.makeGateDD(X_MAT, 4, {{3, true}}, 0);
  const mEdge cxM = mat.makeGateDD(X_MAT, 4, {{3, true}}, 0);
  EXPECT_LT(Package::size(cxS), Package::size(cxM));
  expectSameMatrix(strip.getMatrix(cxS, 4), mat.getMatrix(cxM, 4));

  const mEdge ccxS = strip.makeGateDD(X_MAT, 4, {{2, true}, {1, false}}, 3);
  const mEdge ccxM = mat.makeGateDD(X_MAT, 4, {{2, true}, {1, false}}, 3);
  expectSameMatrix(strip.getMatrix(ccxS, 4), mat.getMatrix(ccxM, 4));
}

TEST(IdentityNodes, FunctionalityBuildAgreesAcrossModes) {
  const auto qc = ir::builders::qft(4);
  Package strip = makePkg(4, IdentityMode::Strip);
  Package mat = makePkg(4, IdentityMode::Materialize);
  const mEdge s = bridge::buildFunctionality(qc, strip);
  const mEdge m = bridge::buildFunctionality(qc, mat);
  expectSameMatrix(strip.getMatrix(s, 4), mat.getMatrix(m, 4));
  const auto trS = strip.trace(s, 4);
  const auto trM = mat.trace(m, 4);
  EXPECT_NEAR(trS.re, trM.re, EPS);
  EXPECT_NEAR(trS.im, trM.im, EPS);
}

TEST(IdentityNodes, CumulativeGateNodesShrinkUnderStrip) {
  // the paper's headline effect: per-gate operator DDs no longer carry
  // identity towers, so their cumulative size drops sharply
  const auto qc = ir::builders::qft(6);
  Package strip = makePkg(6, IdentityMode::Strip);
  Package mat = makePkg(6, IdentityMode::Materialize);
  std::size_t stripNodes = 0;
  std::size_t matNodes = 0;
  for (const auto& op : qc) {
    stripNodes += Package::size(bridge::getDD(*op, 6, strip));
    matNodes += Package::size(bridge::getDD(*op, 6, mat));
  }
  EXPECT_GE(matNodes, 2 * stripNodes)
      << "strip " << stripNodes << " vs materialize " << matNodes;
}

TEST(IdentitySpanOps, KronSupplySpanForStrippedBottom) {
  Package strip = makePkg(3, IdentityMode::Strip);
  Package mat = makePkg(3, IdentityMode::Materialize);
  const mEdge hS = strip.makeGateDD(H_MAT, 1, 0);
  const mEdge hM = mat.makeGateDD(H_MAT, 1, 0);
  // under Strip, makeIdent(2) is a bare terminal — the 3-arg kron carries
  // the span the terminal cannot
  const mEdge hiS = strip.kron(hS, strip.makeIdent(2), 2);
  const mEdge hiM = mat.kron(hM, mat.makeIdent(2), 2);
  EXPECT_EQ(Package::size(hiS), 1U);
  ASSERT_FALSE(hiS.isTerminal());
  EXPECT_EQ(hiS.p->v, 2);
  expectSameMatrix(strip.getMatrix(hiS, 3), mat.getMatrix(hiM, 3));
}

TEST(IdentitySpanOps, PartialTraceAgreesAcrossModes) {
  const auto qc = ir::builders::grover(3, 5, 1);
  Package strip = makePkg(3, IdentityMode::Strip);
  Package mat = makePkg(3, IdentityMode::Materialize);
  const mEdge s = bridge::buildFunctionality(qc, strip);
  const mEdge m = bridge::buildFunctionality(qc, mat);
  const std::vector<bool> eliminate{false, true, false};
  const mEdge ptS = strip.partialTrace(s, eliminate);
  const mEdge ptM = mat.partialTrace(m, eliminate);
  expectSameMatrix(strip.getMatrix(ptS, 2), mat.getMatrix(ptM, 2));
}

TEST(IdentitySpanOps, TraceScalesWithSkippedLevels) {
  Package pkg = makePkg(6, IdentityMode::Strip);
  // tr(I_5 (x) T) = 2^5 * (1 + e^{i pi/4})
  const mEdge t = pkg.makeGateDD(T_MAT, 6, 0);
  const auto tr = pkg.trace(t, 6);
  EXPECT_NEAR(tr.re, 32. * (1. + SQRT2_2), EPS);
  EXPECT_NEAR(tr.im, 32. * SQRT2_2, EPS);
}

TEST(IdentitySerialization, V2RoundTripPreservesCanonicalRoot) {
  Package pkg = makePkg(6, IdentityMode::Strip);
  const mEdge h = pkg.makeGateDD(H_MAT, 6, 2);
  pkg.incRef(h);
  const std::string text = serializeToString(h, 6);
  EXPECT_NE(text.find("qdd-matrix 2"), std::string::npos);
  EXPECT_NE(text.find("span 6"), std::string::npos);
  const mEdge back = deserializeMatrixFromString(pkg, text);
  EXPECT_EQ(back.p, h.p);
  EXPECT_TRUE(back.w.approximatelyEquals(h.w, EPS));
}

TEST(IdentitySerialization, V2StripToMaterializeRebuildsTowers) {
  Package strip = makePkg(6, IdentityMode::Strip);
  const mEdge h = strip.makeGateDD(H_MAT, 6, 0);
  const std::string text = serializeToString(h, 6);

  Package mat = makePkg(6, IdentityMode::Materialize);
  const mEdge restored = deserializeMatrixFromString(mat, text);
  EXPECT_EQ(Package::size(restored), 6U);
  EXPECT_EQ(restored.p, mat.makeGateDD(H_MAT, 6, 0).p);
  expectSameMatrix(strip.getMatrix(h, 6), mat.getMatrix(restored, 6));
}

TEST(IdentitySerialization, V1MaterializedTowerAutoStripsOnRead) {
  // hand-written v1 file: X at level 0 with an explicit identity node at
  // level 1 — the legacy on-disk shape for X (x) nothing-above on 2 qubits
  const std::string v1 = "qdd-matrix 1\n"
                         "root 1 1 0\n"
                         "node 0 0 -1 0 0 -1 1 0 -1 1 0 -1 0 0\n"
                         "node 1 1 0 1 0 -1 0 0 -1 0 0 0 1 0\n"
                         "end\n";
  Package strip = makePkg(2, IdentityMode::Strip);
  const mEdge s = deserializeMatrixFromString(strip, v1);
  EXPECT_EQ(Package::size(s), 1U);
  EXPECT_EQ(s.p, strip.makeGateDD(X_MAT, 2, 0).p);

  Package mat = makePkg(2, IdentityMode::Materialize);
  const mEdge m = deserializeMatrixFromString(mat, v1);
  EXPECT_EQ(Package::size(m), 2U);
  EXPECT_EQ(m.p, mat.makeGateDD(X_MAT, 2, 0).p);
}

TEST(IdentitySerialization, RootAboveSpanRejected) {
  Package pkg = makePkg(3, IdentityMode::Strip);
  const mEdge cx = pkg.makeGateDD(X_MAT, 3, {{2, true}}, 0);
  ASSERT_FALSE(cx.isTerminal());
  EXPECT_THROW((void)serializeToString(cx, 2), std::invalid_argument);
}

TEST(IdentityCrossValidation, RandomCircuitsMatchCanonically) {
  for (const std::uint64_t seed : {7ULL, 19ULL, 42ULL}) {
    const auto qc = ir::builders::randomCliffordT(5, 12, seed);
    Package strip = makePkg(5, IdentityMode::Strip);
    Package mat = makePkg(5, IdentityMode::Materialize);
    const mEdge s = bridge::buildFunctionality(qc, strip);
    const mEdge m = bridge::buildFunctionality(qc, mat);

    // serialize both and re-read into one fresh Strip package: canonicity
    // forces pointer equality iff the represented matrices are identical
    Package ref = makePkg(5, IdentityMode::Strip);
    const mEdge a =
        deserializeMatrixFromString(ref, serializeToString(s, 5));
    ref.incRef(a);
    const mEdge b =
        deserializeMatrixFromString(ref, serializeToString(m, 5));
    EXPECT_EQ(a.p, b.p) << "seed " << seed;
    EXPECT_TRUE(a.w.approximatelyEquals(b.w, EPS)) << "seed " << seed;
    ref.decRef(a);
  }
}

TEST(IdentityCrossValidation, SimulationUnaffectedByMode) {
  const auto qc = ir::builders::randomCliffordT(4, 10, 3);
  Package strip = makePkg(4, IdentityMode::Strip);
  Package mat = makePkg(4, IdentityMode::Materialize);
  const vEdge vs = bridge::simulate(qc, strip.makeZeroState(4), strip);
  const vEdge vm = bridge::simulate(qc, mat.makeZeroState(4), mat);
  expectSameMatrix(strip.getVector(vs), mat.getVector(vm));
}

TEST(IdentityEquivalence, VerdictParityAcrossModes) {
  const auto g1 = ir::builders::qft(3);
  auto g2 = ir::builders::qft(3);
  const verify::EquivalenceChecker checker(g1, g2);

  Package strip = makePkg(3, IdentityMode::Strip);
  Package mat = makePkg(3, IdentityMode::Materialize);
  const auto rs = checker.checkAlternating(strip);
  const auto rm = checker.checkAlternating(mat);
  EXPECT_EQ(rs.equivalence, verify::Equivalence::Equivalent);
  EXPECT_EQ(rm.equivalence, verify::Equivalence::Equivalent);
  // the alternating scheme hovers near the identity, which Strip represents
  // with no nodes at all
  EXPECT_LE(rs.maxNodes, rm.maxNodes);

  const auto cs = checker.checkByConstruction(strip);
  const auto cm = checker.checkByConstruction(mat);
  EXPECT_EQ(cs.equivalence, cm.equivalence);
  EXPECT_EQ(cs.equivalence, verify::Equivalence::Equivalent);
}

TEST(IdentityEquivalence, NonEquivalentStaysNonEquivalent) {
  const auto g1 = ir::builders::qft(3);
  auto g2 = ir::builders::qft(3);
  g2.x(0); // corrupt the compiled version
  const verify::EquivalenceChecker checker(g1, g2);
  Package strip = makePkg(3, IdentityMode::Strip);
  Package mat = makePkg(3, IdentityMode::Materialize);
  EXPECT_EQ(checker.checkAlternating(strip).equivalence,
            verify::Equivalence::NotEquivalent);
  EXPECT_EQ(checker.checkAlternating(mat).equivalence,
            verify::Equivalence::NotEquivalent);
}

} // namespace
} // namespace qdd
