// Tests for transformation-based synthesis: every synthesized cascade is
// verified against the specification through canonical decision diagrams
// (the synthesis <-> verification interplay of the paper's design tasks).

#include "qdd/bridge/DDBuilder.hpp"
#include "qdd/synth/Synthesis.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <random>

namespace qdd::synth {
namespace {

void expectRealizes(const ir::QuantumComputation& qc,
                    const std::vector<std::uint64_t>& permutation) {
  Package pkg(qc.numQubits());
  const mEdge spec = buildPermutationDD(pkg, permutation);
  const mEdge impl = bridge::buildFunctionality(qc, pkg);
  EXPECT_EQ(spec.p, impl.p); // canonicity: same function <=> same pointer
  EXPECT_TRUE(spec.w.approximatelyEquals(impl.w, 1e-9));
}

TEST(Synthesis, IdentityYieldsEmptyCascade) {
  std::vector<std::uint64_t> id(8);
  std::iota(id.begin(), id.end(), 0);
  const auto qc = synthesizePermutation(id);
  EXPECT_EQ(qc.gateCount(), 0U);
  expectRealizes(qc, id);
}

TEST(Synthesis, SingleNot) {
  // f(x) = x XOR 1 on one qubit
  const std::vector<std::uint64_t> perm{1, 0};
  const auto qc = synthesizePermutation(perm);
  EXPECT_EQ(qc.gateCount(), 1U);
  expectRealizes(qc, perm);
}

TEST(Synthesis, CnotFunction) {
  // f(q1 q0) = (q1, q0 XOR q1): CNOT with control q1
  const std::vector<std::uint64_t> perm{0, 1, 3, 2};
  const auto qc = synthesizePermutation(perm);
  expectRealizes(qc, perm);
  const auto stats = analyze(qc);
  EXPECT_LE(stats.gates, 2U);
}

TEST(Synthesis, ToffoliFunction) {
  // f flips bit 0 iff bits 1 and 2 are set
  std::vector<std::uint64_t> perm(8);
  std::iota(perm.begin(), perm.end(), 0);
  std::swap(perm[6], perm[7]);
  const auto qc = synthesizePermutation(perm);
  expectRealizes(qc, perm);
  const auto stats = analyze(qc);
  EXPECT_EQ(stats.gates, 1U); // exactly one Toffoli
  EXPECT_EQ(stats.maxControls, 2U);
}

TEST(Synthesis, CycleShift) {
  // f(x) = x + 1 mod 8 (the increment permutation)
  std::vector<std::uint64_t> perm(8);
  for (std::size_t x = 0; x < 8; ++x) {
    perm[x] = (x + 1) % 8;
  }
  const auto qc = synthesizePermutation(perm);
  expectRealizes(qc, perm);
}

class RandomPermutationSynthesis
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomPermutationSynthesis, RealizesSpecification) {
  const std::uint64_t seed = GetParam();
  const std::size_t n = 2 + seed % 3; // 2..4 qubits
  std::vector<std::uint64_t> perm(1ULL << n);
  std::iota(perm.begin(), perm.end(), 0);
  std::mt19937_64 rng(seed);
  std::shuffle(perm.begin(), perm.end(), rng);
  const auto qc = synthesizePermutation(perm);
  expectRealizes(qc, perm);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPermutationSynthesis,
                         ::testing::Range<std::uint64_t>(0, 12));

TEST(Synthesis, RoundTripThroughSimulation) {
  // basis-state semantics: simulating the cascade maps |x> to |f(x)>
  std::vector<std::uint64_t> perm{3, 0, 2, 1};
  const auto qc = synthesizePermutation(perm);
  Package pkg(2);
  for (std::size_t x = 0; x < 4; ++x) {
    const vEdge input = pkg.makeBasisState(
        2, {static_cast<bool>(x & 1ULL), static_cast<bool>(x & 2ULL)});
    const vEdge output = bridge::simulate(qc, input, pkg);
    EXPECT_NEAR(pkg.getValueByIndex(output, perm[x]).mag(), 1., 1e-9)
        << "x=" << x;
  }
}

TEST(Synthesis, InvalidInputsRejected) {
  EXPECT_THROW(synthesizePermutation({}), std::invalid_argument);
  EXPECT_THROW(synthesizePermutation({0, 1, 2}), std::invalid_argument);
  EXPECT_THROW(synthesizePermutation({0, 0}), std::invalid_argument);
  EXPECT_THROW(synthesizePermutation({0, 5}), std::invalid_argument);
  Package pkg(2);
  EXPECT_THROW((void)buildPermutationDD(pkg, {1, 1}),
               std::invalid_argument);
}

} // namespace
} // namespace qdd::synth
