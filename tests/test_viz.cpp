#include "qdd/bridge/DDBuilder.hpp"
#include "qdd/ir/Builders.hpp"
#include "qdd/viz/Color.hpp"
#include "qdd/viz/DotExporter.hpp"
#include "qdd/viz/JsonExporter.hpp"
#include "qdd/viz/SvgExporter.hpp"
#include "qdd/viz/TextDump.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace qdd::viz {
namespace {

Graph bellGraph(Package& pkg) { return buildGraph(pkg.makeGHZState(2)); }

TEST(VizColor, HlsPrimaries) {
  EXPECT_EQ(hlsToRgb(0., 0.5, 1.), (Rgb{255, 0, 0}));       // red
  EXPECT_EQ(hlsToRgb(1. / 3., 0.5, 1.), (Rgb{0, 255, 0}));  // green
  EXPECT_EQ(hlsToRgb(2. / 3., 0.5, 1.), (Rgb{0, 0, 255}));  // blue
  EXPECT_EQ(hlsToRgb(0.5, 0.5, 0.), (Rgb{128, 128, 128}));  // grey
}

TEST(VizColor, PhaseWheelMatchesFig7b) {
  // Fig. 7(b): the HLS wheel maps phase 0 -> red, and opposite phases to
  // complementary hues.
  EXPECT_EQ(phaseToColor(0.), (Rgb{255, 0, 0}));
  EXPECT_EQ(phaseToColor(2. * PI), (Rgb{255, 0, 0})); // wraps
  EXPECT_EQ(phaseToColor(PI), (Rgb{0, 255, 255}));    // cyan
  // negative phases wrap onto the wheel
  EXPECT_EQ(phaseToColor(-PI), phaseToColor(PI));
}

TEST(VizColor, WeightColorUsesArgument) {
  EXPECT_EQ(weightToColor(ComplexValue{1., 0.}), (Rgb{255, 0, 0}));
  EXPECT_EQ(weightToColor(ComplexValue{-0.5, 0.}), (Rgb{0, 255, 255}));
}

TEST(VizColor, HexFormat) {
  EXPECT_EQ((Rgb{255, 0, 0}).toHex(), "#ff0000");
  EXPECT_EQ((Rgb{0, 128, 255}).toHex(), "#0080ff");
}

TEST(VizColor, ThicknessMonotonic) {
  EXPECT_LT(magnitudeToThickness(0.1), magnitudeToThickness(0.9));
  EXPECT_DOUBLE_EQ(magnitudeToThickness(0.), 0.5);
  EXPECT_DOUBLE_EQ(magnitudeToThickness(1.), 3.5);
}

TEST(VizGraph, BellStateStructure) {
  Package pkg(2);
  const Graph g = bellGraph(pkg);
  EXPECT_FALSE(g.empty());
  EXPECT_FALSE(g.isMatrix);
  EXPECT_EQ(g.radix, 2U);
  EXPECT_EQ(g.nodes.size(), 3U); // Fig. 2(a)
  EXPECT_EQ(g.edges.size(), 6U); // 2 per node, including 0-stubs
  std::size_t stubs = 0;
  for (const auto& e : g.edges) {
    stubs += e.zeroStub ? 1U : 0U;
  }
  EXPECT_EQ(stubs, 2U);
  EXPECT_NEAR(g.rootWeight.re, SQRT2_2, 1e-10);
}

TEST(VizGraph, MatrixGraph) {
  Package pkg(2);
  const mEdge cx = pkg.makeGateDD(X_MAT, 2, {{1, true}}, 0);
  const Graph g = buildGraph(cx);
  EXPECT_TRUE(g.isMatrix);
  EXPECT_EQ(g.radix, 4U);
  EXPECT_EQ(g.nodes.size(), 2U); // Fig. 2(c), identity successor stripped
}

TEST(VizGraph, ZeroEdge) {
  const Graph g = buildGraph(vEdge::zero());
  EXPECT_TRUE(g.empty());
}

TEST(VizDot, ClassicStyleContainsExpectedElements) {
  Package pkg(2);
  const DotExporter exporter({.style = Style::Classic});
  const std::string dot = exporter.toDot(bellGraph(pkg));
  EXPECT_NE(dot.find("digraph dd"), std::string::npos);
  EXPECT_NE(dot.find("shape=circle"), std::string::npos);
  EXPECT_NE(dot.find("label=\"q1\""), std::string::npos);
  EXPECT_NE(dot.find("label=\"q0\""), std::string::npos);
  EXPECT_NE(dot.find("terminal [shape=box"), std::string::npos);
  // the root weight 1/sqrt(2) is annotated and the edge dashed
  EXPECT_NE(dot.find("0.7071"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
  // 0-stubs present
  EXPECT_NE(dot.find("stub0"), std::string::npos);
}

TEST(VizDot, LabelFreeColoredMode) {
  Package pkg(2);
  const DotExporter exporter({.style = Style::Classic,
                              .edgeLabels = false,
                              .colored = true,
                              .magnitudeThickness = true});
  const std::string dot = exporter.toDot(bellGraph(pkg));
  EXPECT_EQ(dot.find("label=\"0.7071"), std::string::npos);
  EXPECT_NE(dot.find("color=\"#"), std::string::npos);
  EXPECT_NE(dot.find("penwidth="), std::string::npos);
  // colored mode replaces dashing
  EXPECT_EQ(dot.find("style=dashed"), std::string::npos);
}

TEST(VizDot, ModernStyleUsesPorts) {
  Package pkg(2);
  const DotExporter exporter({.style = Style::Modern});
  const std::string dot = exporter.toDot(bellGraph(pkg));
  EXPECT_NE(dot.find("<TABLE"), std::string::npos);
  EXPECT_NE(dot.find("PORT=\"p0\""), std::string::npos);
  EXPECT_NE(dot.find(":p0:s"), std::string::npos);
}

TEST(VizDot, MatrixModernShowsBlockLabels) {
  Package pkg(1);
  const mEdge h = pkg.makeGateDD(H_MAT, 1, 0);
  const DotExporter exporter({.style = Style::Modern});
  const std::string dot = exporter.toDot(buildGraph(h));
  EXPECT_NE(dot.find("U00"), std::string::npos);
  EXPECT_NE(dot.find("U11"), std::string::npos);
}

TEST(VizDot, ZeroDiagram) {
  const DotExporter exporter;
  const std::string dot = exporter.toDot(buildGraph(vEdge::zero()));
  EXPECT_NE(dot.find("label=\"0\""), std::string::npos);
}

TEST(VizSvg, WellFormedAndContainsNodes) {
  Package pkg(2);
  const SvgExporter exporter;
  const std::string svg = exporter.toSvg(bellGraph(pkg));
  EXPECT_EQ(svg.rfind("<svg", 0), 0U);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("<circle"), std::string::npos);
  EXPECT_NE(svg.find(">q1<"), std::string::npos);
  EXPECT_NE(svg.find(">q0<"), std::string::npos);
  EXPECT_NE(svg.find(">1<"), std::string::npos); // terminal
}

TEST(VizSvg, ColoredEdges) {
  Package pkg(2);
  const SvgExporter exporter({.style = Style::Classic,
                              .edgeLabels = false,
                              .colored = true,
                              .magnitudeThickness = true});
  // use a state with a complex phase so a non-red color appears
  const vEdge state = pkg.makeStateFromVector(
      {{SQRT2_2, 0.}, {0., SQRT2_2}}); // |0> + i|1>
  const std::string svg = exporter.toSvg(buildGraph(state));
  EXPECT_NE(svg.find("stroke=\"#"), std::string::npos);
  // i has phase pi/2 -> not pure red
  EXPECT_EQ(svg.find("stroke=\"#ff0000\"") != std::string::npos &&
                svg.find("stroke-dasharray") != std::string::npos,
            false);
}

TEST(VizSvg, ZeroDiagram) {
  const SvgExporter exporter;
  const std::string svg = exporter.toSvg(buildGraph(vEdge::zero()));
  EXPECT_NE(svg.find(">0<"), std::string::npos);
}

TEST(VizJson, StructureAndFields) {
  Package pkg(2);
  const JsonExporter exporter;
  const std::string json = exporter.toJson(bellGraph(pkg));
  EXPECT_NE(json.find("\"kind\": \"vector\""), std::string::npos);
  EXPECT_NE(json.find("\"radix\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"root\""), std::string::npos);
  EXPECT_NE(json.find("\"mag\""), std::string::npos);
  EXPECT_NE(json.find("\"phase\""), std::string::npos);
  EXPECT_NE(json.find("\"color\": \"#"), std::string::npos);
  EXPECT_NE(json.find("\"zeroStub\": true"), std::string::npos);
}

TEST(VizJson, MatrixKind) {
  Package pkg(2);
  const mEdge cx = pkg.makeGateDD(X_MAT, 2, {{1, true}}, 0);
  const std::string json = JsonExporter().toJson(buildGraph(cx));
  EXPECT_NE(json.find("\"kind\": \"matrix\""), std::string::npos);
  EXPECT_NE(json.find("\"radix\": 4"), std::string::npos);
}

TEST(VizText, DiracNotation) {
  Package pkg(2);
  const std::string dirac = toDirac(pkg, pkg.makeGHZState(2));
  EXPECT_EQ(dirac, "0.7071|00> + 0.7071|11>");
  const std::string basis =
      toDirac(pkg, pkg.makeBasisState(2, {true, false}));
  EXPECT_EQ(basis, "|01>");
}

TEST(VizText, DiracWithComplexAmplitudes) {
  Package pkg(1);
  const vEdge state =
      pkg.makeStateFromVector({{SQRT2_2, 0.}, {0., -SQRT2_2}});
  const std::string dirac = toDirac(pkg, state);
  EXPECT_EQ(dirac, "0.7071|0> + -0.7071i|1>");
}

TEST(VizText, OmegaMatrixMatchesFig5c) {
  // The 8x8 QFT matrix prints in the omega-power notation of Fig. 5(c).
  Package pkg(3);
  const auto qft = ir::builders::qft(3);
  const mEdge u = bridge::buildFunctionality(qft, pkg);
  const std::string text = formatMatrixOmega(pkg.getMatrix(u), 3);
  EXPECT_NE(text.find("w = e^(i*pi/4)"), std::string::npos);
  // second row of Fig. 5(c): 1 w w^2 w^3 w^4 w^5 w^6 w^7
  EXPECT_NE(text.find("w^7"), std::string::npos);
  // first row all ones
  const auto firstRow = text.find("[   1    1    1    1    1    1    1    1");
  EXPECT_NE(firstRow, std::string::npos) << text;
}

TEST(VizText, OmegaFallbackForGenericMatrix) {
  Package pkg(1);
  const mEdge h = pkg.makeGateDD(H_MAT, 1, 0);
  const std::string text = formatMatrixOmega(pkg.getMatrix(h), 1);
  // H = [1 1; 1 -1]/sqrt2: -1 = omega^1 for n=1 (omega = e^{i pi}) -> omega
  // form applies with w = e^(i*pi/1)
  EXPECT_NE(text.find("1/sqrt(2)"), std::string::npos);
}

TEST(VizText, AsciiDump) {
  Package pkg(2);
  const std::string dump = asciiDump(bellGraph(pkg));
  EXPECT_NE(dump.find("root --[0.7071]--> n0"), std::string::npos);
  EXPECT_NE(dump.find("(q1)"), std::string::npos);
  EXPECT_NE(dump.find("0-stub"), std::string::npos);
  EXPECT_EQ(asciiDump(buildGraph(vEdge::zero())), "(zero)\n");
}

} // namespace
} // namespace qdd::viz
