// Intra-circuit parallelism (docs/PARALLELISM.md): a single concurrent
// dd::Package forks multiply/add subproblems onto the exec ThreadPool.
// Correctness is anchored by canonicity — hash-consing guarantees that a
// serial and a parallel evaluation of the same operation land on the very
// same node objects, so root-pointer equality is the oracle.

#include "qdd/bridge/DDBuilder.hpp"
#include "qdd/dd/Package.hpp"
#include "qdd/dd/TaskForker.hpp"
#include "qdd/exec/DDForker.hpp"
#include "qdd/exec/ThreadPool.hpp"
#include "qdd/ir/Builders.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

namespace qdd {
namespace {

Package makeConcurrentPackage(std::size_t nqubits) {
  return Package(nqubits, NormalizationScheme::Largest,
                 RealTable::DEFAULT_TOLERANCE, globalIdentityMode(),
                 ConcurrencyMode::Concurrent);
}

/// Forces the matrix-multiply apply path for the scope of a test, so
/// simulate() exercises the forked multiply/add recursion instead of the
/// in-place gate kernels.
class ScopedParallelApplyMode {
public:
  ScopedParallelApplyMode() : saved(bridge::globalApplyMode()) {
    bridge::setGlobalApplyMode(bridge::ApplyMode::Parallel);
  }
  ~ScopedParallelApplyMode() { bridge::setGlobalApplyMode(saved); }

private:
  bridge::ApplyMode saved;
};

struct Workload {
  const char* name;
  ir::QuantumComputation qc;
};

std::vector<Workload> workloads() {
  std::vector<Workload> out;
  out.push_back({"qft8", ir::builders::qft(8)});
  out.push_back({"grover6", ir::builders::grover(6, 0b101010, 2)});
  out.push_back({"cliffordT8", ir::builders::randomCliffordT(8, 24, 1234)});
  return out;
}

// --- canonicity: serial and parallel runs give pointer-identical roots -----

TEST(ConcurrentDD, SimulateRootsMatchSerialAcrossWorkerCounts) {
  const ScopedParallelApplyMode applyMode;
  for (const auto& w : workloads()) {
    for (const std::size_t workers : {1U, 2U, 4U, 8U}) {
      Package pkg = makeConcurrentPackage(w.qc.numQubits());
      // Serial baseline in the SAME package: no forker attached yet.
      const vEdge serial =
          bridge::simulate(w.qc, pkg.makeZeroState(w.qc.numQubits()), pkg);
      pkg.incRef(serial);

      exec::ThreadPool pool(workers);
      exec::PoolForker forker(pool);
      pkg.setForker(&forker);
      const vEdge parallel =
          bridge::simulate(w.qc, pkg.makeZeroState(w.qc.numQubits()), pkg);

      EXPECT_EQ(serial.p, parallel.p)
          << w.name << " with " << workers << " workers";
      EXPECT_EQ(serial.w, parallel.w)
          << w.name << " with " << workers << " workers";
      EXPECT_GT(pkg.statistics().parallel.regions, 0U);
      pkg.setForker(nullptr);
      pkg.decRef(serial);
    }
  }
}

TEST(ConcurrentDD, FunctionalityRootsMatchSerial) {
  const ScopedParallelApplyMode applyMode;
  for (const auto& w : workloads()) {
    if (!w.qc.isPurelyUnitary()) {
      continue;
    }
    Package pkg = makeConcurrentPackage(w.qc.numQubits());
    const mEdge serial = bridge::buildFunctionality(w.qc, pkg);
    pkg.incRef(serial);

    exec::ThreadPool pool(4);
    exec::PoolForker forker(pool);
    pkg.setForker(&forker);
    const mEdge parallel = bridge::buildFunctionality(w.qc, pkg);

    EXPECT_EQ(serial.p, parallel.p) << w.name;
    EXPECT_EQ(serial.w, parallel.w) << w.name;
    pkg.setForker(nullptr);
    pkg.decRef(serial);
  }
}

TEST(ConcurrentDD, ParallelRunsAreDeterministic) {
  const ScopedParallelApplyMode applyMode;
  const auto qc = ir::builders::randomCliffordT(7, 20, 99);
  Package pkg = makeConcurrentPackage(qc.numQubits());
  exec::ThreadPool pool(4);
  exec::PoolForker forker(pool);
  pkg.setForker(&forker);
  const vEdge first = bridge::simulate(qc, pkg.makeZeroState(7), pkg);
  pkg.incRef(first);
  const vEdge second = bridge::simulate(qc, pkg.makeZeroState(7), pkg);
  EXPECT_EQ(first.p, second.p);
  EXPECT_EQ(first.w, second.w);
  pkg.decRef(first);
}

TEST(ConcurrentDD, ParallelAmplitudesMatchIndependentSerialPackage) {
  const ScopedParallelApplyMode applyMode;
  const auto qc = ir::builders::qft(6);

  Package serialPkg(qc.numQubits());
  const auto reference =
      serialPkg.getVector(bridge::simulate(qc, serialPkg.makeZeroState(6),
                                           serialPkg));

  Package pkg = makeConcurrentPackage(qc.numQubits());
  exec::ThreadPool pool(4);
  exec::PoolForker forker(pool);
  pkg.setForker(&forker);
  const auto parallel =
      pkg.getVector(bridge::simulate(qc, pkg.makeZeroState(6), pkg));

  ASSERT_EQ(reference.size(), parallel.size());
  for (std::size_t k = 0; k < reference.size(); ++k) {
    EXPECT_NEAR(reference[k].real(), parallel[k].real(), 1e-12);
    EXPECT_NEAR(reference[k].imag(), parallel[k].imag(), 1e-12);
  }
}

// --- refcounts: concurrent inc/dec saturate instead of wrapping ------------

TEST(ConcurrentDD, RefcountSaturatesUnderContention) {
  Package pkg = makeConcurrentPackage(2);
  const vEdge state = pkg.makeGHZState(2);
  constexpr std::size_t THREADS = 4;
  constexpr std::size_t PER_THREAD = 20000; // 80k > IMMORTAL_REF = 0xFFFF

  std::vector<std::thread> threads;
  threads.reserve(THREADS);
  for (std::size_t t = 0; t < THREADS; ++t) {
    threads.emplace_back([&pkg, &state] {
      for (std::size_t k = 0; k < PER_THREAD; ++k) {
        pkg.incRef(state);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(state.p->ref, IMMORTAL_REF);

  // Saturated nodes are immortal: decrements (even past the increment
  // count) must never revive the counter into collectable range.
  threads.clear();
  for (std::size_t t = 0; t < THREADS; ++t) {
    threads.emplace_back([&pkg, &state] {
      for (std::size_t k = 0; k < PER_THREAD; ++k) {
        pkg.decRef(state);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(state.p->ref, IMMORTAL_REF);
}

// --- GC barrier: collection refuses to run inside a parallel region --------

/// Inline forker that attempts a forced garbage collection from inside the
/// fork/join of an operation — which the package must refuse (forked
/// subproblems hold unreferenced intermediate nodes).
class GcProbeForker final : public TaskForker {
public:
  explicit GcProbeForker(Package& package) : pkg(&package) {}

  void runAll(std::function<void()>* tasks, std::size_t n) override {
    gcRanInsideRegion = gcRanInsideRegion || pkg->garbageCollect(true);
    probed = true;
    for (std::size_t k = 0; k < n; ++k) {
      tasks[k]();
    }
  }

  bool probed = false;
  bool gcRanInsideRegion = false;

private:
  Package* pkg;
};

TEST(ConcurrentDD, GarbageCollectionBlockedInsideParallelRegion) {
  Package pkg = makeConcurrentPackage(6);
  GcProbeForker forker(pkg);
  pkg.setForker(&forker);

  const auto qc = ir::builders::qft(6);
  const mEdge u = bridge::buildFunctionality(qc, pkg);
  EXPECT_GT(Package::size(u), 1U);
  ASSERT_TRUE(forker.probed);
  EXPECT_FALSE(forker.gcRanInsideRegion);

  // At a quiescent point the same forced collection is allowed again.
  pkg.setForker(nullptr);
  EXPECT_TRUE(pkg.garbageCollect(true));
}

// --- cancellation: a flipped flag unwinds the in-flight operation ----------

TEST(ConcurrentDD, CancellationUnwindsMidOperation) {
  Package pkg = makeConcurrentPackage(8);
  exec::ThreadPool pool(2);
  std::atomic<bool> cancel{false};
  exec::PoolForker forker(pool, &cancel);
  pkg.setForker(&forker);

  const auto qc = ir::builders::qft(8);
  const mEdge gate = bridge::buildFunctionality(qc, pkg);
  pkg.incRef(gate);
  const vEdge state = pkg.makeZeroState(8);

  cancel.store(true);
  EXPECT_THROW(static_cast<void>(pkg.multiply(gate, state)),
               OperationCancelled);
  EXPECT_GT(pkg.statistics().parallel.cancelled, 0U);

  // The package stays usable: clearing the flag lets operations complete.
  cancel.store(false);
  const vEdge result = pkg.multiply(gate, state);
  EXPECT_NE(result.p, nullptr);
}

// --- plumbing --------------------------------------------------------------

TEST(ConcurrentDD, AttachSharedForkerRespectsMode) {
  // Explicitly serial: the default constructor would inherit QDD_APPLY.
  Package serial(3, NormalizationScheme::Largest, RealTable::DEFAULT_TOLERANCE,
                 globalIdentityMode(), ConcurrencyMode::Serial);
  EXPECT_FALSE(exec::attachSharedForker(serial));
  EXPECT_EQ(serial.forker(), nullptr);

  Package pkg = makeConcurrentPackage(3);
  EXPECT_TRUE(exec::attachSharedForker(pkg));
  EXPECT_NE(pkg.forker(), nullptr);
  EXPECT_FALSE(exec::attachSharedForker(pkg)); // already attached
}

TEST(ConcurrentDD, ConcurrencyModeParsing) {
  EXPECT_EQ(parseConcurrencyMode("parallel"), ConcurrencyMode::Concurrent);
  EXPECT_EQ(parseConcurrencyMode("fast"), ConcurrencyMode::Serial);
  EXPECT_EQ(parseConcurrencyMode(nullptr), ConcurrencyMode::Serial);
  EXPECT_STREQ(toString(ConcurrencyMode::Concurrent), "concurrent");
  EXPECT_STREQ(toString(ConcurrencyMode::Serial), "serial");
}

TEST(ConcurrentDD, ForkStatisticsAccumulate) {
  const ScopedParallelApplyMode applyMode;
  Package pkg = makeConcurrentPackage(8);
  exec::ThreadPool pool(4);
  exec::PoolForker forker(pool);
  pkg.setForker(&forker);
  const auto qc = ir::builders::qft(8);
  static_cast<void>(bridge::simulate(qc, pkg.makeZeroState(8), pkg));
  const auto stats = pkg.statistics();
  EXPECT_GT(stats.parallel.regions, 0U);
  EXPECT_GT(stats.parallel.forks, 0U);
  EXPECT_EQ(stats.vectorTable.shards, Package::CONCURRENT_SHARDS);
  EXPECT_GT(pool.stats().forked, 0U);
}

} // namespace
} // namespace qdd
