// Coverage for API corners not exercised elsewhere: enum helpers, stats,
// printer options, degenerate operands, and deep-copy semantics.

#include "qdd/baseline/DenseSimulator.hpp"
#include "qdd/bridge/DDBuilder.hpp"
#include "qdd/ir/Builders.hpp"
#include "qdd/ir/Mapping.hpp"
#include "qdd/parser/qasm/Parser.hpp"
#include "qdd/sim/SimulationSession.hpp"
#include "qdd/viz/TextDump.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace qdd {
namespace {

TEST(MiscGateMatrix, AdjointDefinition) {
  const GateMatrix m{ComplexValue{1., 2.}, ComplexValue{3., 4.},
                     ComplexValue{5., 6.}, ComplexValue{7., 8.}};
  const GateMatrix a = adjoint(m);
  EXPECT_EQ(a[0], ComplexValue(1., -2.));
  EXPECT_EQ(a[1], ComplexValue(5., -6.));
  EXPECT_EQ(a[2], ComplexValue(3., -4.));
  EXPECT_EQ(a[3], ComplexValue(7., -8.));
}

TEST(MiscGateMatrix, ParameterizedGatesAtSpecialAngles) {
  // RZ(0) = I, RX(2pi) = -I, u2(0, pi) = H
  const GateMatrix rz0 = rzMatrix(0.);
  EXPECT_TRUE(rz0[0].approximatelyEquals(ComplexValue{1., 0.}, 1e-12));
  const GateMatrix rx2pi = rxMatrix(2. * PI);
  EXPECT_TRUE(rx2pi[0].approximatelyEquals(ComplexValue{-1., 0.}, 1e-12));
  const GateMatrix h = u2Matrix(0., PI);
  for (std::size_t k = 0; k < 4; ++k) {
    EXPECT_TRUE(h[k].approximatelyEquals(H_MAT[k], 1e-12)) << k;
  }
}

TEST(MiscOpType, StringAndArityCoverage) {
  using ir::OpType;
  for (const auto t :
       {OpType::I,    OpType::H,     OpType::X,     OpType::Y,
        OpType::Z,    OpType::S,     OpType::Sdg,   OpType::T,
        OpType::Tdg,  OpType::V,     OpType::Vdg,   OpType::SX,
        OpType::SXdg, OpType::RX,    OpType::RY,    OpType::RZ,
        OpType::Phase, OpType::U2,   OpType::U3,    OpType::SWAP,
        OpType::Measure, OpType::Reset, OpType::Barrier}) {
    EXPECT_FALSE(ir::toString(t).empty());
  }
  EXPECT_EQ(ir::numParameters(OpType::U3), 3U);
  EXPECT_EQ(ir::numParameters(OpType::U2), 2U);
  EXPECT_EQ(ir::numParameters(OpType::Phase), 1U);
  EXPECT_EQ(ir::numParameters(OpType::H), 0U);
  EXPECT_EQ(ir::numTargets(OpType::SWAP), 2U);
  EXPECT_EQ(ir::numTargets(OpType::X), 1U);
  EXPECT_TRUE(ir::isUnitaryType(OpType::SWAP));
  EXPECT_FALSE(ir::isUnitaryType(OpType::Measure));
  EXPECT_TRUE(ir::isSelfInverse(OpType::H));
  EXPECT_FALSE(ir::isSelfInverse(OpType::T));
}

TEST(MiscComplex, StreamOutput) {
  std::ostringstream ss;
  ss << ComplexValue{0.25, -0.5};
  EXPECT_EQ(ss.str(), "0.25-0.5i");
}

TEST(MiscRealTable, Statistics) {
  RealTable table;
  (void)table.lookup(0.1);
  (void)table.lookup(0.1);
  (void)table.lookup(0.2);
  EXPECT_EQ(table.size(), 2U);
  EXPECT_GE(table.peakSize(), 2U);
  EXPECT_EQ(table.lookups(), 3U);
  EXPECT_EQ(table.hits(), 1U);
  table.clear();
  EXPECT_EQ(table.size(), 0U);
  // entries can be created again after clear
  (void)table.lookup(0.3);
  EXPECT_EQ(table.size(), 1U);
}

TEST(MiscPackage, StatsReflectActivity) {
  Package pkg(4);
  const auto before = pkg.statistics();
  const vEdge ghz = pkg.makeGHZState(4);
  pkg.incRef(ghz);
  // GHZ only uses the immortal weights (0, 1, 1/sqrt2); a W state interns
  // genuinely new real values
  const vEdge w = pkg.makeWState(4);
  pkg.incRef(w);
  const auto after = pkg.statistics();
  EXPECT_GT(after.vectorTable.entries, before.vectorTable.entries);
  EXPECT_GT(after.reals.entries, 0U);
  EXPECT_GT(after.vectorTable.lookups, before.vectorTable.lookups);
  EXPECT_GE(after.vectorTable.peakEntries, after.vectorTable.entries);
  EXPECT_GE(after.vectorTable.memory.live, after.vectorTable.entries);
}

TEST(MiscPackage, StatsJsonContainsAllSections) {
  Package pkg(3);
  const vEdge state = pkg.makeGHZState(3);
  pkg.incRef(state);
  const mEdge h = pkg.makeGateDD(H_MAT, 3, 0);
  const vEdge next = pkg.multiply(h, state);
  pkg.incRef(next);
  pkg.garbageCollect(true);

  const std::string json = pkg.statistics().toJson();
  for (const char* key :
       {"\"uniqueTables\"", "\"vector\"", "\"matrix\"", "\"realTable\"",
        "\"computeTables\"", "\"computeTotals\"", "\"gc\"", "\"hitRatio\"",
        "\"rehashes\"", "\"staleRejections\"", "\"generation\"",
        "\"memory\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  // compact mode fits on one line for grep-able benchmark records
  const std::string compact = pkg.statistics().toJson(false);
  EXPECT_EQ(compact.find('\n'), std::string::npos);
  EXPECT_NE(compact.find("\"multiplyMatVec\""), std::string::npos);

  const auto reg = pkg.statistics();
  const auto* mv = reg.computeTable("multiplyMatVec");
  ASSERT_NE(mv, nullptr);
  EXPECT_GT(mv->inserts, 0U);
  EXPECT_EQ(reg.computeTable("nonexistent"), nullptr);
}

TEST(MiscEdges, StaticHelpers) {
  EXPECT_TRUE(vEdge::zero().isZeroTerminal());
  EXPECT_TRUE(vEdge::one().isTerminal());
  EXPECT_TRUE(vEdge::one().w.exactlyOne());
  const Complex half = Complex::zero; // placeholder pointer semantics
  EXPECT_TRUE(mEdge::terminal(half).isTerminal());
}

TEST(MiscPackageOps, DegenerateOperands) {
  Package pkg(2);
  const vEdge ghz = pkg.makeGHZState(2);
  // add with zero
  const vEdge sum = pkg.add(vEdge::zero(), ghz);
  EXPECT_EQ(sum.p, ghz.p);
  // multiply by zero matrix edge
  EXPECT_TRUE(pkg.multiply(mEdge::zero(), ghz).w.exactlyZero());
  // kron with zero
  EXPECT_TRUE(pkg.kron(mEdge::zero(), pkg.makeIdent(1)).w.exactlyZero());
  // inner product with zero
  EXPECT_EQ(pkg.innerProduct(vEdge::zero(), ghz).mag2(), 0.);
  // trace of zero
  EXPECT_EQ(pkg.trace(mEdge::zero()).mag2(), 0.);
  // conjugate transpose of terminal
  const mEdge ct = pkg.conjugateTranspose(mEdge::terminal(pkg.lookup(
      ComplexValue{0., 1.})));
  EXPECT_NEAR(ct.w.imag(), -1., 1e-12);
}

TEST(MiscPackageOps, MatrixEntryAccess) {
  Package pkg(2);
  const mEdge cx = pkg.makeGateDD(X_MAT, 2, {{1, true}}, 0);
  EXPECT_NEAR(pkg.getMatrixEntry(cx, 0, 0).re, 1., 1e-12);
  EXPECT_NEAR(pkg.getMatrixEntry(cx, 2, 3).re, 1., 1e-12);
  EXPECT_NEAR(pkg.getMatrixEntry(cx, 2, 2).mag(), 0., 1e-12);
}

TEST(MiscDense, AmplitudeVectorConstructor) {
  baseline::DenseStateVector sv({{0., 0.}, {1., 0.}});
  EXPECT_EQ(sv.qubits(), 1U);
  EXPECT_NEAR(sv.probabilityOfOne(0), 1., 1e-12);
  EXPECT_THROW(baseline::DenseStateVector(
                   std::vector<std::complex<double>>{{1., 0.}}),
               std::invalid_argument);
  EXPECT_THROW(baseline::DenseStateVector(
                   std::vector<std::complex<double>>(3, {0., 0.})),
               std::invalid_argument);
}

TEST(MiscIr, RegisterContains) {
  const ir::Register reg{"q", 2, 3};
  EXPECT_FALSE(reg.contains(1));
  EXPECT_TRUE(reg.contains(2));
  EXPECT_TRUE(reg.contains(4));
  EXPECT_FALSE(reg.contains(5));
}

TEST(MiscIr, DeepCopySemantics) {
  auto original = ir::builders::bell();
  ir::QuantumComputation copy(original);
  copy.x(0);
  EXPECT_EQ(original.size(), 2U);
  EXPECT_EQ(copy.size(), 3U);
  ir::QuantumComputation assigned;
  assigned = original;
  EXPECT_EQ(assigned.size(), 2U);
  const ir::QuantumComputation moved(std::move(assigned));
  EXPECT_EQ(moved.size(), 2U);
}

TEST(MiscIr, OperationNames) {
  const ir::StandardOperation cp(ir::OpType::Phase, {{0, true}}, {1},
                                 {PI / 2.});
  EXPECT_EQ(cp.name(), "p(pi/2) c0 q1");
  const ir::NonUnitaryOperation m(std::vector<Qubit>{0},
                                  std::vector<std::size_t>{0});
  EXPECT_EQ(m.name(), "measure q0");
  auto inner = std::make_unique<ir::StandardOperation>(ir::OpType::X,
                                                       Qubit{1});
  const ir::ClassicControlledOperation cc(std::move(inner), 0, 1, 1);
  EXPECT_EQ(cc.name(), "if(c==1) x q1");
}

TEST(MiscIr, ClassicControlledQasmRoundTrip) {
  const auto qc = qasm::parse(R"(
OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
creg c[2];
measure q[0] -> c[0];
if (c == 2) h q[1];
)");
  const auto reparsed = qasm::parse(qc.toOpenQASM());
  EXPECT_EQ(qc.toOpenQASM(), reparsed.toOpenQASM());
}

TEST(MiscCoupling, EdgeAccessor) {
  const auto cm = ir::CouplingMap::linear(3);
  EXPECT_EQ(cm.edges().size(), 2U);
  EXPECT_TRUE(cm.shortestPath(0, 0).size() == 1);
}

TEST(MiscSampling, ZeroShots) {
  auto qc = ir::builders::bell();
  qc.measureAll();
  const auto result = sim::sampleCircuit(qc, 0, 1);
  EXPECT_EQ(result.shots, 0U);
  EXPECT_TRUE(result.counts.empty());
}

TEST(MiscText, DiracCutoffSuppressesNoise) {
  Package pkg(1);
  const vEdge state = pkg.makeStateFromVector(
      {{0.9999999999, 0.}, {1e-11, 0.}});
  EXPECT_EQ(viz::toDirac(pkg, state, 4, 1e-9), "1|0>");
}

TEST(MiscText, OmegaHandlesZeroEntries) {
  Package pkg(2);
  const mEdge cx = pkg.makeGateDD(X_MAT, 2, {{1, true}}, 0);
  const std::string text = viz::formatMatrixOmega(pkg.getMatrix(cx), 2);
  EXPECT_NE(text.find("0"), std::string::npos);
  EXPECT_NE(text.find("1"), std::string::npos);
}

TEST(MiscSession, SessionAccessors) {
  Package pkg(2);
  sim::SimulationSession session(ir::builders::bell(), pkg);
  EXPECT_EQ(session.numOperations(), 2U);
  EXPECT_EQ(session.circuit().name(), "bell");
  ASSERT_NE(session.nextOperation(), nullptr);
  EXPECT_EQ(session.nextOperation()->type(), ir::OpType::H);
  session.runToEnd();
  EXPECT_EQ(session.nextOperation(), nullptr);
  EXPECT_EQ(session.nodeHistory().size(), 2U);
}

} // namespace
} // namespace qdd
