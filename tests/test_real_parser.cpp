#include "qdd/parser/real/RealParser.hpp"

#include <gtest/gtest.h>

namespace qdd::real {
namespace {

TEST(RealParser, ToffoliNetwork) {
  const auto qc = parse(R"(
# a tiny reversible circuit
.version 2.0
.numvars 3
.variables a b c
.begin
t1 a
t2 a b
t3 a b c
.end
)");
  EXPECT_EQ(qc.numQubits(), 3U);
  ASSERT_EQ(qc.size(), 3U);
  // first variable 'a' maps to the most-significant qubit q2
  EXPECT_EQ(qc.at(0).type(), ir::OpType::X);
  EXPECT_TRUE(qc.at(0).controls().empty());
  EXPECT_EQ(qc.at(0).targets()[0], 2);
  EXPECT_EQ(qc.at(1).controls().size(), 1U);
  EXPECT_EQ(qc.at(1).controls()[0].qubit, 2);
  EXPECT_EQ(qc.at(1).targets()[0], 1);
  EXPECT_EQ(qc.at(2).controls().size(), 2U);
  EXPECT_EQ(qc.at(2).targets()[0], 0);
}

TEST(RealParser, NegativeControls) {
  const auto qc = parse(R"(
.numvars 2
.variables a b
.begin
t2 -a b
.end
)");
  ASSERT_EQ(qc.size(), 1U);
  EXPECT_FALSE(qc.at(0).controls()[0].positive);
}

TEST(RealParser, FredkinAndV) {
  const auto qc = parse(R"(
.numvars 3
.variables a b c
.begin
f2 a b
f3 a b c
v a b
v+ a b
.end
)");
  ASSERT_EQ(qc.size(), 4U);
  EXPECT_EQ(qc.at(0).type(), ir::OpType::SWAP);
  EXPECT_TRUE(qc.at(0).controls().empty());
  EXPECT_EQ(qc.at(1).type(), ir::OpType::SWAP);
  EXPECT_EQ(qc.at(1).controls().size(), 1U);
  EXPECT_EQ(qc.at(2).type(), ir::OpType::V);
  EXPECT_EQ(qc.at(3).type(), ir::OpType::Vdg);
}

TEST(RealParser, MetadataIgnored) {
  const auto qc = parse(R"(
.version 2.0
.numvars 2
.variables x y
.inputs x y
.outputs x y
.constants --
.garbage --
.begin
t1 x
.end
)");
  EXPECT_EQ(qc.size(), 1U);
}

TEST(RealParser, Errors) {
  EXPECT_THROW((void)parse(".numvars 0\n"), std::runtime_error);
  EXPECT_THROW((void)parse(".variables a\n"), std::runtime_error);
  EXPECT_THROW((void)parse(".numvars 2\n.variables a\n"), std::runtime_error);
  EXPECT_THROW((void)parse(".numvars 1\n.variables a\nt1 a\n"),
               std::runtime_error); // gate before .begin
  EXPECT_THROW(
      (void)parse(".numvars 1\n.variables a\n.begin\nt1 b\n.end\n"),
      std::runtime_error); // unknown variable
  EXPECT_THROW(
      (void)parse(".numvars 1\n.variables a\n.begin\nq1 a\n.end\n"),
      std::runtime_error); // unsupported gate
  EXPECT_THROW(
      (void)parse(".numvars 2\n.variables a b\n.begin\nt3 a b\n.end\n"),
      std::runtime_error); // arity mismatch
  EXPECT_THROW((void)parse(".numvars 1\n.variables a\n.begin\nt1 a\n"),
               std::runtime_error); // missing .end
}

} // namespace
} // namespace qdd::real
