// End-to-end semantic tests of the algorithm builders: phase estimation,
// Deutsch-Jozsa, and the Cuccaro ripple-carry adder, all verified via
// DD-based simulation (and, where feasible, the dense baseline).

#include "qdd/baseline/DenseSimulator.hpp"
#include "qdd/bridge/DDBuilder.hpp"
#include "qdd/ir/Builders.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <complex>

namespace qdd {
namespace {

constexpr double EPS = 1e-9;

class PhaseEstimationTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
};

TEST_P(PhaseEstimationTest, RecoversExactPhase) {
  const auto [precision, k] = GetParam();
  const auto qc = ir::builders::phaseEstimation(precision, k);
  Package pkg(qc.numQubits());
  const vEdge result =
      bridge::simulate(qc, pkg.makeZeroState(qc.numQubits()), pkg);
  // counting register must hold |k> with certainty; the eigenstate qubit
  // stays |1>
  const std::uint64_t expected = k | (1ULL << precision);
  const auto vec = pkg.getVector(result);
  for (std::size_t idx = 0; idx < vec.size(); ++idx) {
    EXPECT_NEAR(std::abs(vec[idx]), idx == expected ? 1. : 0., 1e-8)
        << "precision=" << precision << " k=" << k << " idx=" << idx;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, PhaseEstimationTest,
    ::testing::Values(std::make_tuple(1U, 0ULL), std::make_tuple(1U, 1ULL),
                      std::make_tuple(3U, 0ULL), std::make_tuple(3U, 1ULL),
                      std::make_tuple(3U, 5ULL), std::make_tuple(4U, 11ULL),
                      std::make_tuple(5U, 19ULL), std::make_tuple(6U, 42ULL)));

TEST(DeutschJozsa, ConstantOracleYieldsAllZero) {
  const auto qc = ir::builders::deutschJozsa(4, false);
  Package pkg(5);
  const vEdge result = bridge::simulate(qc, pkg.makeZeroState(5), pkg);
  // data register (qubits 0..3) reads |0000> with probability 1
  double p = 0.;
  const auto vec = pkg.getVector(result);
  for (std::size_t idx = 0; idx < vec.size(); ++idx) {
    if ((idx & 0xFULL) == 0) {
      p += std::norm(vec[idx]);
    }
  }
  EXPECT_NEAR(p, 1., EPS);
}

TEST(DeutschJozsa, BalancedOracleAvoidsAllZero) {
  const auto qc = ir::builders::deutschJozsa(4, true);
  Package pkg(5);
  const vEdge result = bridge::simulate(qc, pkg.makeZeroState(5), pkg);
  double p = 0.;
  const auto vec = pkg.getVector(result);
  for (std::size_t idx = 0; idx < vec.size(); ++idx) {
    if ((idx & 0xFULL) == 0) {
      p += std::norm(vec[idx]);
    }
  }
  EXPECT_NEAR(p, 0., EPS);
}

class AdderTest : public ::testing::TestWithParam<
                      std::tuple<std::size_t, std::uint64_t, std::uint64_t>> {
};

TEST_P(AdderTest, AddsBasisStates) {
  const auto [n, aVal, bVal] = GetParam();
  const auto qc = ir::builders::rippleCarryAdder(n);
  const std::size_t total = 2 * n + 1;
  Package pkg(total);
  // prepare |carry=0, a, b> with the interleaved layout
  std::vector<bool> bits(total, false);
  for (std::size_t i = 0; i < n; ++i) {
    bits[2 * i + 1] = ((aVal >> i) & 1ULL) != 0;
    bits[2 * i + 2] = ((bVal >> i) & 1ULL) != 0;
  }
  const vEdge input = pkg.makeBasisState(total, bits);
  const vEdge output = bridge::simulate(qc, input, pkg);
  // decode: expect b' = a + b (mod 2^n), a unchanged, carry 0
  const auto vec = pkg.getVector(output);
  std::size_t hot = vec.size();
  for (std::size_t idx = 0; idx < vec.size(); ++idx) {
    if (std::abs(vec[idx]) > 0.5) {
      hot = idx;
      break;
    }
  }
  ASSERT_NE(hot, vec.size());
  EXPECT_NEAR(std::abs(vec[hot]), 1., EPS);
  const std::uint64_t sum = (aVal + bVal) & ((1ULL << n) - 1);
  std::uint64_t aOut = 0;
  std::uint64_t bOut = 0;
  for (std::size_t i = 0; i < n; ++i) {
    aOut |= ((hot >> (2 * i + 1)) & 1ULL) << i;
    bOut |= ((hot >> (2 * i + 2)) & 1ULL) << i;
  }
  EXPECT_EQ(aOut, aVal);
  EXPECT_EQ(bOut, sum);
  EXPECT_EQ(hot & 1ULL, 0ULL); // carry restored to 0
}

INSTANTIATE_TEST_SUITE_P(
    Cases, AdderTest,
    ::testing::Values(std::make_tuple(2U, 1ULL, 2ULL),
                      std::make_tuple(2U, 3ULL, 3ULL),
                      std::make_tuple(3U, 5ULL, 6ULL),
                      std::make_tuple(3U, 7ULL, 7ULL),
                      std::make_tuple(4U, 9ULL, 9ULL),
                      std::make_tuple(4U, 15ULL, 1ULL),
                      std::make_tuple(5U, 21ULL, 13ULL)));

TEST(AdderTest, SuperpositionInputAddsInParallel) {
  // quantum advantage of reversible arithmetic: a superposition of inputs is
  // processed coherently
  const std::size_t n = 2;
  const auto qc = ir::builders::rippleCarryAdder(n);
  Package pkg(5);
  // a in equal superposition of 0..3, b = 1
  ir::QuantumComputation prep(5);
  prep.h(1);
  prep.h(3);
  prep.x(2); // b0 = 1
  const vEdge prepped =
      bridge::simulate(prep, pkg.makeZeroState(5), pkg);
  const vEdge output = bridge::simulate(qc, prepped, pkg);
  const auto vec = pkg.getVector(output);
  // expect 4 equally weighted outcomes with b' = a + 1 (mod 4)
  std::size_t nonzero = 0;
  for (std::size_t idx = 0; idx < vec.size(); ++idx) {
    if (std::abs(vec[idx]) < 1e-10) {
      continue;
    }
    ++nonzero;
    std::uint64_t aOut = ((idx >> 1) & 1ULL) | (((idx >> 3) & 1ULL) << 1);
    std::uint64_t bOut = ((idx >> 2) & 1ULL) | (((idx >> 4) & 1ULL) << 1);
    EXPECT_EQ(bOut, (aOut + 1) & 3ULL) << idx;
    EXPECT_NEAR(std::abs(vec[idx]), 0.5, EPS);
  }
  EXPECT_EQ(nonzero, 4U);
}

TEST(BuilderValidation, InvalidArguments) {
  EXPECT_THROW(ir::builders::phaseEstimation(0, 0), std::invalid_argument);
  EXPECT_THROW(ir::builders::phaseEstimation(3, 8), std::invalid_argument);
  EXPECT_THROW(ir::builders::deutschJozsa(0, true), std::invalid_argument);
  EXPECT_THROW(ir::builders::rippleCarryAdder(0), std::invalid_argument);
}

} // namespace
} // namespace qdd
