// Tests for the observability subsystem (qdd::obs): RAII span nesting
// (including exception unwinding), the disabled-mode no-op guarantee, the
// Chrome trace exporter and its validator, the aggregator's percentiles,
// the JSONL sink, and per-step DD metrics captured by a real simulation.

#include "qdd/exec/ThreadPool.hpp"
#include "qdd/ir/Builders.hpp"
#include "qdd/obs/FlightRecorder.hpp"
#include "qdd/obs/Obs.hpp"
#include "qdd/obs/Sinks.hpp"
#include "qdd/obs/TraceCheck.hpp"
#include "qdd/obs/TraceContext.hpp"
#include "qdd/sim/SimulationSession.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace qdd {
namespace {

/// Collects raw records for assertions.
class RecordingSink : public obs::Sink {
public:
  void onSpan(const obs::SpanRecord& span) override { spans.push_back(span); }
  void onCounter(const obs::CounterRecord& counter) override {
    counters.push_back(counter);
  }
  void onStep(const obs::StepMetrics& step) override {
    steps.push_back(step);
  }

  std::vector<obs::SpanRecord> spans;
  std::vector<obs::CounterRecord> counters;
  std::vector<obs::StepMetrics> steps;
};

/// RAII guard: every test leaves the registry disabled and sink-free.
class ObsTest : public ::testing::Test {
protected:
  void SetUp() override {
    obs::Registry::instance().clearSinks();
    obs::Registry::instance().setEnabled(false);
  }
  void TearDown() override {
    obs::Registry::instance().setEnabled(false);
    obs::Registry::instance().clearSinks();
  }

  std::shared_ptr<RecordingSink> attachRecorder() {
    auto sink = std::make_shared<RecordingSink>();
    obs::Registry::instance().addSink(sink);
    obs::Registry::instance().setEnabled(true);
    return sink;
  }
};

TEST_F(ObsTest, SpansNestAndCloseInOrder) {
  auto sink = attachRecorder();
  {
    obs::ScopedSpan outer("test", "outer");
    EXPECT_TRUE(outer.active());
    EXPECT_EQ(obs::Registry::currentDepth(), 1);
    {
      obs::ScopedSpan inner("test", "inner");
      EXPECT_EQ(obs::Registry::currentDepth(), 2);
    }
    EXPECT_EQ(obs::Registry::currentDepth(), 1);
  }
  EXPECT_EQ(obs::Registry::currentDepth(), 0);

  // children complete (and are recorded) before their parents
  ASSERT_EQ(sink->spans.size(), 2U);
  EXPECT_STREQ(sink->spans[0].name, "inner");
  EXPECT_EQ(sink->spans[0].depth, 1);
  EXPECT_STREQ(sink->spans[1].name, "outer");
  EXPECT_EQ(sink->spans[1].depth, 0);
  // the parent interval contains the child interval
  EXPECT_LE(sink->spans[1].startUs, sink->spans[0].startUs);
  EXPECT_GE(sink->spans[1].startUs + sink->spans[1].durUs,
            sink->spans[0].startUs + sink->spans[0].durUs);
}

TEST_F(ObsTest, SpansCloseDuringExceptionUnwinding) {
  auto sink = attachRecorder();
  EXPECT_EQ(obs::Registry::currentDepth(), 0);
  try {
    obs::ScopedSpan outer("test", "outer");
    obs::ScopedSpan inner("test", "inner");
    throw std::runtime_error("unwind");
  } catch (const std::runtime_error&) {
  }
  // both spans were closed and recorded despite the exception
  EXPECT_EQ(obs::Registry::currentDepth(), 0);
  ASSERT_EQ(sink->spans.size(), 2U);
  EXPECT_STREQ(sink->spans[0].name, "inner");
  EXPECT_STREQ(sink->spans[1].name, "outer");
}

TEST_F(ObsTest, DisabledModeRecordsNothing) {
  auto sink = std::make_shared<RecordingSink>();
  obs::Registry::instance().addSink(sink);
  // registry stays disabled
  {
    obs::ScopedSpan span("test", "quiet");
    EXPECT_FALSE(span.active());
    EXPECT_EQ(obs::Registry::currentDepth(), 0); // no depth bookkeeping
    span.arg("ignored", std::size_t{1});
    QDD_OBS_COUNTER("test.counter", 42);
  }
  EXPECT_TRUE(sink->spans.empty());
  EXPECT_TRUE(sink->counters.empty());
  EXPECT_FALSE(obs::enabled());
}

TEST_F(ObsTest, ConditionFalseDeactivatesSpan) {
  auto sink = attachRecorder();
  {
    obs::ScopedSpan span("test", "guarded", /*condition=*/false);
    EXPECT_FALSE(span.active());
    EXPECT_EQ(obs::Registry::currentDepth(), 0);
  }
  EXPECT_TRUE(sink->spans.empty());
}

TEST_F(ObsTest, RemoveSinkDetaches) {
  auto sink = attachRecorder();
  obs::Registry::instance().removeSink(sink);
  { obs::ScopedSpan span("test", "after-remove"); }
  EXPECT_TRUE(sink->spans.empty());
}

TEST_F(ObsTest, CountersCarryValueAndTimestamp) {
  auto sink = attachRecorder();
  QDD_OBS_COUNTER("test.counter", 7);
  QDD_OBS_COUNTER("test.counter", 9.5);
  ASSERT_EQ(sink->counters.size(), 2U);
  EXPECT_DOUBLE_EQ(sink->counters[0].value, 7.);
  EXPECT_DOUBLE_EQ(sink->counters[1].value, 9.5);
  EXPECT_LE(sink->counters[0].tsUs, sink->counters[1].tsUs);
}

TEST_F(ObsTest, AggregatorPercentilesNearestRank) {
  auto agg = std::make_shared<obs::AggregatorSink>();
  obs::Registry::instance().addSink(agg);
  obs::Registry::instance().setEnabled(true);
  for (int v = 1; v <= 100; ++v) {
    obs::SpanRecord span;
    span.category = "test";
    span.name = "latency";
    span.durUs = static_cast<double>(v);
    agg->onSpan(span);
  }
  EXPECT_DOUBLE_EQ(agg->percentileUs("test/latency", 50.), 50.);
  EXPECT_DOUBLE_EQ(agg->percentileUs("test/latency", 95.), 95.);
  EXPECT_DOUBLE_EQ(agg->percentileUs("test/latency", 99.), 99.);
  EXPECT_DOUBLE_EQ(agg->percentileUs("test/latency", 100.), 100.);
  EXPECT_DOUBLE_EQ(agg->percentileUs("test/latency", 0.), 1.);
  EXPECT_DOUBLE_EQ(agg->percentileUs("unknown/key", 50.), 0.);

  const auto s = agg->summary("test/latency");
  EXPECT_EQ(s.count, 100U);
  EXPECT_DOUBLE_EQ(s.totalUs, 5050.);
  EXPECT_DOUBLE_EQ(s.maxUs, 100.);
  EXPECT_DOUBLE_EQ(s.p50Us, 50.);
}

TEST_F(ObsTest, AggregatorTracksGcPauses) {
  auto agg = std::make_shared<obs::AggregatorSink>();
  obs::SpanRecord gc;
  gc.category = "dd";
  gc.name = "gc";
  gc.durUs = 123.;
  agg->onSpan(gc);
  ASSERT_EQ(agg->gcPausesUs().size(), 1U);
  EXPECT_DOUBLE_EQ(agg->gcPausesUs()[0], 123.);
}

TEST_F(ObsTest, JsonlSinkEmitsOneObjectPerLine) {
  std::ostringstream out;
  auto jsonl = std::make_shared<obs::JsonlSink>(out);
  obs::Registry::instance().addSink(jsonl);
  obs::Registry::instance().setEnabled(true);
  {
    obs::ScopedSpan span("test", "line");
    span.arg("n", std::size_t{3});
  }
  QDD_OBS_COUNTER("test.counter", 1);
  obs::Registry::instance().flush();

  std::istringstream in(out.str());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
  EXPECT_EQ(lines, 2U);
  EXPECT_NE(out.str().find("\"type\":\"span\""), std::string::npos);
  EXPECT_NE(out.str().find("\"type\":\"counter\""), std::string::npos);
}

TEST_F(ObsTest, ChromeTraceFromRealSimulationValidates) {
  auto chrome = std::make_shared<obs::ChromeTraceSink>();
  obs::Registry::instance().addSink(chrome);
  obs::Registry::instance().setEnabled(true);

  const auto qft = ir::builders::qft(4);
  Package pkg(4);
  sim::SimulationSession session(qft, pkg);
  while (session.stepForward()) {
  }
  obs::Registry::instance().setEnabled(false);
  chrome->setStatsJson(pkg.statistics().toJson(false));

  const std::string json = chrome->toJson();
  const auto result =
      obs::validateChromeTrace(json, /*requireStepMetrics=*/true);
  EXPECT_TRUE(result.valid) << result.error;
  EXPECT_GT(result.spans, 0U);
  EXPECT_EQ(result.stepInstants, qft.size());
  EXPECT_TRUE(result.hasStats);
  EXPECT_GT(chrome->eventCount(), qft.size());
}

TEST_F(ObsTest, StepMetricsCarryPerLevelNodeCounts) {
  auto sink = attachRecorder();
  const auto ghz = ir::builders::ghz(3);
  Package pkg(3);
  sim::SimulationSession session(ghz, pkg);
  while (session.stepForward()) {
  }
  ASSERT_EQ(sink->steps.size(), ghz.size());
  for (std::size_t k = 0; k < sink->steps.size(); ++k) {
    const auto& step = sink->steps[k];
    EXPECT_EQ(step.index, k);
    EXPECT_EQ(step.nodesPerLevel.size(), 3U);
    std::size_t total = 0;
    for (const std::size_t n : step.nodesPerLevel) {
      total += n;
    }
    EXPECT_EQ(total, step.nodes);
    EXPECT_GE(step.durUs, 0.);
  }
  // GHZ_3 state DD: 1 node at the top level, 2 at each level below
  EXPECT_EQ(sink->steps.back().nodes, 5U);
  EXPECT_EQ(sink->steps.back().nodesPerLevel[2], 1U);
  EXPECT_FALSE(sink->steps.front().op.empty());
}

TEST_F(ObsTest, ValidatorAcceptsMinimalTrace) {
  const std::string good = R"({"traceEvents":[
    {"name":"a","cat":"t","ph":"X","pid":1,"tid":1,"ts":0,"dur":10},
    {"name":"b","cat":"t","ph":"X","pid":1,"tid":1,"ts":2,"dur":3}
  ]})";
  const auto result = obs::validateChromeTrace(good);
  EXPECT_TRUE(result.valid) << result.error;
  EXPECT_EQ(result.spans, 2U);
}

TEST_F(ObsTest, ValidatorRejectsMalformedInput) {
  // not JSON at all
  EXPECT_FALSE(obs::validateChromeTrace("not json").valid);
  // missing traceEvents
  EXPECT_FALSE(obs::validateChromeTrace("{}").valid);
  // non-monotonic timestamps
  const std::string backwards = R"({"traceEvents":[
    {"name":"a","cat":"t","ph":"X","pid":1,"tid":1,"ts":10,"dur":1},
    {"name":"b","cat":"t","ph":"X","pid":1,"tid":1,"ts":5,"dur":1}
  ]})";
  EXPECT_FALSE(obs::validateChromeTrace(backwards).valid);
  // overlapping spans that violate stack discipline
  const std::string overlap = R"({"traceEvents":[
    {"name":"a","cat":"t","ph":"X","pid":1,"tid":1,"ts":0,"dur":5},
    {"name":"b","cat":"t","ph":"X","pid":1,"tid":1,"ts":3,"dur":10}
  ]})";
  EXPECT_FALSE(obs::validateChromeTrace(overlap).valid);
  // negative duration
  const std::string negative = R"({"traceEvents":[
    {"name":"a","cat":"t","ph":"X","pid":1,"tid":1,"ts":0,"dur":-1}
  ]})";
  EXPECT_FALSE(obs::validateChromeTrace(negative).valid);
  // spans missing entirely
  const std::string spanless = R"({"traceEvents":[
    {"name":"c","cat":"counter","ph":"C","pid":1,"tid":1,"ts":0}
  ]})";
  EXPECT_FALSE(obs::validateChromeTrace(spanless).valid);
  // step metrics required but absent
  const std::string noSteps = R"({"traceEvents":[
    {"name":"a","cat":"t","ph":"X","pid":1,"tid":1,"ts":0,"dur":5}
  ]})";
  EXPECT_FALSE(
      obs::validateChromeTrace(noSteps, /*requireStepMetrics=*/true).valid);
}

TEST_F(ObsTest, StatsJsonIsDeterministic) {
  Package pkg(3);
  const auto qft = ir::builders::qft(3);
  sim::SimulationSession session(qft, pkg);
  while (session.stepForward()) {
  }
  const std::string a = pkg.statistics().toJson(false);
  const std::string b = pkg.statistics().toJson(false);
  EXPECT_EQ(a, b);
  // stable key order and fixed float formatting: hitRatio appears with a
  // dot decimal separator (never a locale comma) and the same digits
  EXPECT_NE(a.find("\"uniqueTables\""), std::string::npos);
  EXPECT_EQ(a.find("nan"), std::string::npos);
  // embeddable into the Chrome trace without escaping issues
  auto chrome = std::make_shared<obs::ChromeTraceSink>();
  obs::Registry::instance().addSink(chrome);
  obs::Registry::instance().setEnabled(true);
  { obs::ScopedSpan span("test", "wrap"); }
  obs::Registry::instance().setEnabled(false);
  chrome->setStatsJson(a);
  const auto result = obs::validateChromeTrace(chrome->toJson());
  EXPECT_TRUE(result.valid) << result.error;
  EXPECT_TRUE(result.hasStats);
}

TEST_F(ObsTest, ConcurrentSpansCarryDistinctThreadIds) {
  auto sink = attachRecorder();
  constexpr std::size_t numThreads = 4;
  std::vector<std::thread> threads;
  threads.reserve(numThreads);
  for (std::size_t t = 0; t < numThreads; ++t) {
    threads.emplace_back([] {
      obs::ScopedSpan outer("test", "outer");
      EXPECT_EQ(obs::Registry::currentDepth(), 1); // depth is thread-local
      obs::ScopedSpan inner("test", "inner");
      EXPECT_EQ(obs::Registry::currentDepth(), 2);
    });
  }
  for (auto& th : threads) {
    th.join();
  }

  // every thread's two spans were recorded, each tagged with its thread id
  ASSERT_EQ(sink->spans.size(), 2 * numThreads);
  std::map<std::uint32_t, std::vector<const obs::SpanRecord*>> byTid;
  for (const auto& span : sink->spans) {
    byTid[span.tid].push_back(&span);
  }
  EXPECT_EQ(byTid.size(), numThreads); // distinct ids, one per thread
  for (const auto& [tid, spans] : byTid) {
    EXPECT_NE(tid, obs::Registry::currentThreadId()); // none is this thread
    ASSERT_EQ(spans.size(), 2U);
    // completion order within a thread: inner closes before outer
    EXPECT_STREQ(spans[0]->name, "inner");
    EXPECT_EQ(spans[0]->depth, 1);
    EXPECT_STREQ(spans[1]->name, "outer");
    EXPECT_EQ(spans[1]->depth, 0);
  }
}

TEST_F(ObsTest, ThreadIdIsStablePerThread) {
  const auto main1 = obs::Registry::currentThreadId();
  const auto main2 = obs::Registry::currentThreadId();
  EXPECT_EQ(main1, main2);
  std::uint32_t worker = main1;
  std::thread([&] { worker = obs::Registry::currentThreadId(); }).join();
  EXPECT_NE(worker, main1);
}

TEST_F(ObsTest, ChromeTraceSeparatesWorkerTracksAndNamesThem) {
  auto chrome = std::make_shared<obs::ChromeTraceSink>();
  obs::Registry::instance().addSink(chrome);
  obs::Registry::instance().setEnabled(true);

  constexpr std::size_t numThreads = 3;
  std::vector<std::thread> threads;
  threads.reserve(numThreads);
  for (std::size_t t = 0; t < numThreads; ++t) {
    threads.emplace_back([t] {
      obs::Registry::labelCurrentThread("worker-" + std::to_string(t));
      // overlapping spans across threads are fine — they live on separate
      // tracks; within a track they must still nest
      obs::ScopedSpan outer("test", "outer");
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      obs::ScopedSpan inner("test", "inner");
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  obs::Registry::instance().setEnabled(false);

  const std::string json = chrome->toJson();
  const auto result = obs::validateChromeTrace(json);
  EXPECT_TRUE(result.valid) << result.error;
  EXPECT_EQ(result.spans, 2 * numThreads);
  for (std::size_t t = 0; t < numThreads; ++t) {
    const std::string label =
        "\"name\":\"thread_name\"";
    EXPECT_NE(json.find("worker-" + std::to_string(t)), std::string::npos);
    EXPECT_NE(json.find(label), std::string::npos);
  }

  const auto labels = obs::Registry::instance().threadLabels();
  EXPECT_GE(labels.size(), numThreads);
}

TEST_F(ObsTest, ValidatorAllowsOverlapAcrossTidsButNotWithin) {
  // same interval overlap on two different tids: two parallel tracks, valid
  const std::string acrossTids = R"({"traceEvents":[
    {"name":"a","cat":"t","ph":"X","pid":1,"tid":1,"ts":0,"dur":5},
    {"name":"b","cat":"t","ph":"X","pid":1,"tid":2,"ts":3,"dur":10}
  ]})";
  EXPECT_TRUE(obs::validateChromeTrace(acrossTids).valid);
  // the same shape on one tid violates stack discipline
  const std::string withinTid = R"({"traceEvents":[
    {"name":"a","cat":"t","ph":"X","pid":1,"tid":1,"ts":0,"dur":5},
    {"name":"b","cat":"t","ph":"X","pid":1,"tid":1,"ts":3,"dur":10}
  ]})";
  EXPECT_FALSE(obs::validateChromeTrace(withinTid).valid);
}

TEST_F(ObsTest, OverheadGateCompilesToNoOpWhenDisabled) {
  // With the registry disabled the macros must not evaluate expensive
  // arguments' side effects beyond the value expression itself; verify the
  // guard path at least stays allocation-free by depth bookkeeping.
  EXPECT_EQ(obs::Registry::currentDepth(), 0);
  for (int k = 0; k < 1000; ++k) {
    QDD_OBS_SPAN("test", "noop");
    EXPECT_EQ(obs::Registry::currentDepth(), 0);
  }
}

// --- request-scoped tracing --------------------------------------------------

/// Leaves the flight recorder disarmed and the thread trace-free.
class TraceTest : public ObsTest {
protected:
  void SetUp() override {
    ObsTest::SetUp();
    obs::FlightRecorder::setArmed(false);
  }
  void TearDown() override {
    obs::FlightRecorder::setArmed(false);
    ObsTest::TearDown();
  }
};

TEST_F(TraceTest, TraceparentRoundTrip) {
  const std::string header =
      "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01";
  obs::TraceContext ctx;
  ASSERT_TRUE(obs::TraceContext::parseTraceparent(header, ctx));
  EXPECT_EQ(ctx.traceHi, 0x0af7651916cd43ddULL);
  EXPECT_EQ(ctx.traceLo, 0x8448eb211c80319cULL);
  EXPECT_EQ(ctx.spanId, 0xb7ad6b7169203331ULL);
  EXPECT_EQ(ctx.flags, 1);
  EXPECT_TRUE(ctx.valid());
  EXPECT_EQ(ctx.traceparent(), header);
  EXPECT_EQ(ctx.traceIdHex(), "0af7651916cd43dd8448eb211c80319c");
  EXPECT_EQ(ctx.spanIdHex(), "b7ad6b7169203331");
}

TEST_F(TraceTest, TraceparentRejectsMalformedHeaders) {
  obs::TraceContext ctx;
  const char* bad[] = {
      "",
      "00",
      // wrong length (one hex digit short)
      "00-0af7651916cd43dd8448eb211c80319-b7ad6b7169203331-01",
      // non-hex digit in the trace id
      "00-0af7651916cd43dd8448eb211c80319z-b7ad6b7169203331-01",
      // version ff is reserved
      "ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
      // all-zero trace id
      "00-00000000000000000000000000000000-b7ad6b7169203331-01",
      // all-zero span id
      "00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01",
      // wrong separators
      "00_0af7651916cd43dd8448eb211c80319c_b7ad6b7169203331_01",
  };
  for (const char* header : bad) {
    EXPECT_FALSE(obs::TraceContext::parseTraceparent(header, ctx))
        << "accepted: " << header;
  }
  // a rejected header must leave the output untouched
  ctx = obs::TraceContext{};
  EXPECT_FALSE(obs::TraceContext::parseTraceparent("junk", ctx));
  EXPECT_EQ(ctx.traceHi, 0U);
  EXPECT_EQ(ctx.spanId, 0U);
}

TEST_F(TraceTest, MakeGeneratesDistinctValidContexts) {
  const obs::TraceContext a = obs::TraceContext::make();
  const obs::TraceContext b = obs::TraceContext::make();
  EXPECT_TRUE(a.valid());
  EXPECT_TRUE(b.valid());
  EXPECT_FALSE(a.traceHi == b.traceHi && a.traceLo == b.traceLo);
  EXPECT_NE(obs::TraceContext::nextId(), 0U);
}

TEST_F(TraceTest, TraceScopeInstallsAndRestores) {
  EXPECT_FALSE(obs::currentTrace().valid());
  const obs::TraceContext outer = obs::TraceContext::make();
  {
    const obs::TraceScope scope(outer);
    EXPECT_EQ(obs::currentTrace().traceLo, outer.traceLo);
    {
      // installing an invalid context clears the slot (pool workers must
      // not leak the previous task's identity)
      const obs::TraceScope inner((obs::TraceContext()));
      EXPECT_FALSE(obs::currentTrace().valid());
    }
    EXPECT_EQ(obs::currentTrace().traceLo, outer.traceLo);
  }
  EXPECT_FALSE(obs::currentTrace().valid());
}

TEST_F(TraceTest, SpansAndCountersCarryCurrentTraceId) {
  auto sink = attachRecorder();
  const obs::TraceContext ctx = obs::TraceContext::make();
  {
    const obs::TraceScope scope(ctx);
    obs::ScopedSpan span("test", "traced");
    QDD_OBS_COUNTER("test/value", 7.);
  }
  {
    obs::ScopedSpan span("test", "untraced");
  }
  ASSERT_EQ(sink->spans.size(), 2U);
  EXPECT_EQ(sink->spans[0].traceHi, ctx.traceHi);
  EXPECT_EQ(sink->spans[0].traceLo, ctx.traceLo);
  EXPECT_EQ(sink->spans[1].traceHi, 0U);
  EXPECT_EQ(sink->spans[1].traceLo, 0U);
  ASSERT_EQ(sink->counters.size(), 1U);
  EXPECT_EQ(sink->counters[0].traceHi, ctx.traceHi);
  EXPECT_EQ(sink->counters[0].traceLo, ctx.traceLo);
}

TEST_F(TraceTest, FlightRecorderCapturesWithRegistryDisabled) {
  // The flight recorder must work even when the obs registry records
  // nothing — that is the whole point of tail-based capture.
  ASSERT_FALSE(obs::Registry::instance().enabled());
  obs::FlightRecorder::setArmed(true);
  const obs::TraceContext ctx = obs::TraceContext::make();
  {
    const obs::TraceScope scope(ctx);
    obs::ScopedSpan outer("test", "flight-outer");
    obs::ScopedSpan inner("test", "flight-inner");
  }
  const auto events =
      obs::FlightRecorder::instance().capture(ctx.traceHi, ctx.traceLo);
  ASSERT_EQ(events.size(), 2U);
  // sorted by start time, enclosing span first
  EXPECT_STREQ(events[0].name, "flight-outer");
  EXPECT_STREQ(events[1].name, "flight-inner");
  EXPECT_LE(events[0].startUs, events[1].startUs);
  EXPECT_EQ(events[0].depth, 0);
  EXPECT_EQ(events[1].depth, 1);
  for (const auto& ev : events) {
    EXPECT_EQ(ev.traceHi, ctx.traceHi);
    EXPECT_EQ(ev.traceLo, ctx.traceLo);
  }
}

TEST_F(TraceTest, FlightRecorderFiltersByTraceId) {
  obs::FlightRecorder::setArmed(true);
  const obs::TraceContext a = obs::TraceContext::make();
  const obs::TraceContext b = obs::TraceContext::make();
  {
    const obs::TraceScope scope(a);
    obs::ScopedSpan span("test", "span-a");
  }
  {
    const obs::TraceScope scope(b);
    obs::ScopedSpan span("test", "span-b");
  }
  const auto onlyA =
      obs::FlightRecorder::instance().capture(a.traceHi, a.traceLo);
  ASSERT_EQ(onlyA.size(), 1U);
  EXPECT_STREQ(onlyA[0].name, "span-a");
}

TEST_F(TraceTest, FlightRecorderIsInertWithoutTraceOrArming) {
  // disarmed + traced: nothing recorded
  const obs::TraceContext ctx = obs::TraceContext::make();
  {
    const obs::TraceScope scope(ctx);
    obs::ScopedSpan span("test", "disarmed");
  }
  EXPECT_TRUE(obs::FlightRecorder::instance()
                  .capture(ctx.traceHi, ctx.traceLo)
                  .empty());
  // armed + untraced: nothing recorded
  obs::FlightRecorder::setArmed(true);
  const std::uint64_t before =
      obs::FlightRecorder::instance().totalRecorded();
  {
    obs::ScopedSpan span("test", "untraced");
  }
  EXPECT_EQ(obs::FlightRecorder::instance().totalRecorded(), before);
}

TEST_F(TraceTest, FlightRecorderRingWrapsAround) {
  obs::FlightRecorder::setArmed(true);
  const obs::TraceContext ctx = obs::TraceContext::make();
  const std::size_t n = obs::FlightRecorder::RING_CAPACITY + 100;
  {
    const obs::TraceScope scope(ctx);
    for (std::size_t k = 0; k < n; ++k) {
      obs::ScopedSpan span("test", "wrap");
    }
  }
  const auto events =
      obs::FlightRecorder::instance().capture(ctx.traceHi, ctx.traceLo);
  // the ring keeps only the newest RING_CAPACITY events, never more
  EXPECT_LE(events.size(), obs::FlightRecorder::RING_CAPACITY);
  EXPECT_GE(events.size(), obs::FlightRecorder::RING_CAPACITY - 1);
  for (std::size_t k = 1; k < events.size(); ++k) {
    EXPECT_LE(events[k - 1].startUs, events[k].startUs);
  }
}

TEST_F(TraceTest, ThreadPoolPropagatesTraceToTasksAndParallelFor) {
  obs::FlightRecorder::setArmed(true);
  const obs::TraceContext ctx = obs::TraceContext::make();
  exec::ThreadPool pool(4);
  std::atomic<int> matches{0};
  std::atomic<int> finished{0};
  {
    const obs::TraceScope scope(ctx);
    for (int k = 0; k < 8; ++k) {
      pool.submit([&matches, &finished, &ctx] {
        if (obs::currentTrace().traceHi == ctx.traceHi &&
            obs::currentTrace().traceLo == ctx.traceLo) {
          matches.fetch_add(1, std::memory_order_relaxed);
        }
        {
          obs::ScopedSpan span("test", "pool-task");
        }
        finished.fetch_add(1, std::memory_order_release);
      });
    }
    pool.parallelFor(8, [&matches, &ctx](std::size_t, std::size_t) {
      if (obs::currentTrace().traceHi == ctx.traceHi &&
          obs::currentTrace().traceLo == ctx.traceLo) {
        matches.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // submit() is detached: wait for the tasks to drain
  while (finished.load(std::memory_order_acquire) < 8) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(matches.load(), 16);
  // the workers' flight events are tagged with the submitter's trace id
  const auto events =
      obs::FlightRecorder::instance().capture(ctx.traceHi, ctx.traceLo);
  EXPECT_EQ(events.size(), 8U);
  // ...and the workers' thread-locals were restored afterwards
  std::atomic<bool> leaked{false};
  pool.parallelFor(8, [&leaked](std::size_t, std::size_t) {
    if (obs::currentTrace().valid()) {
      leaked.store(true, std::memory_order_relaxed);
    }
  });
  EXPECT_FALSE(leaked.load());
}

TEST_F(TraceTest, ConcurrentRecordAndCaptureStaysConsistent) {
  // Hammer one trace id from several writers while a reader captures in a
  // loop; every captured event must be fully consistent (matching ids,
  // non-null names). Run under TSan, this also proves the ring is race-free.
  obs::FlightRecorder::setArmed(true);
  const obs::TraceContext ctx = obs::TraceContext::make();
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  writers.reserve(3);
  for (int w = 0; w < 3; ++w) {
    writers.emplace_back([&ctx, &stop] {
      const obs::TraceScope scope(ctx);
      while (!stop.load(std::memory_order_relaxed)) {
        obs::ScopedSpan span("test", "hammer");
      }
    });
  }
  for (int k = 0; k < 50; ++k) {
    const auto events =
        obs::FlightRecorder::instance().capture(ctx.traceHi, ctx.traceLo);
    for (const auto& ev : events) {
      ASSERT_NE(ev.name, nullptr);
      ASSERT_NE(ev.category, nullptr);
      EXPECT_EQ(ev.traceHi, ctx.traceHi);
      EXPECT_EQ(ev.traceLo, ctx.traceLo);
      EXPECT_GE(ev.durUs, 0.);
    }
  }
  stop.store(true);
  for (auto& t : writers) {
    t.join();
  }
}

TEST_F(TraceTest, IncidentValidatorChecksTraceIdConsistency) {
  const std::string good = R"({"traceEvents":[
    {"name":"request","cat":"service","ph":"X","pid":1,"tid":1,"ts":0,
     "dur":10,"args":{"trace_id":"0af7651916cd43dd8448eb211c80319c"}},
    {"name":"step","cat":"sim","ph":"X","pid":1,"tid":1,"ts":2,"dur":3,
     "args":{"trace_id":"0af7651916cd43dd8448eb211c80319c"}}
  ],"traceId":"0af7651916cd43dd8448eb211c80319c"})";
  EXPECT_TRUE(obs::validateIncidentTrace(good).valid);

  // span tagged with a different trace id
  const std::string mixed = R"({"traceEvents":[
    {"name":"request","cat":"service","ph":"X","pid":1,"tid":1,"ts":0,
     "dur":10,"args":{"trace_id":"ffffffffffffffffffffffffffffffff"}}
  ],"traceId":"0af7651916cd43dd8448eb211c80319c"})";
  EXPECT_FALSE(obs::validateIncidentTrace(mixed).valid);

  // missing top-level traceId
  const std::string untagged = R"({"traceEvents":[
    {"name":"request","cat":"service","ph":"X","pid":1,"tid":1,"ts":0,
     "dur":10,"args":{"trace_id":"0af7651916cd43dd8448eb211c80319c"}}
  ]})";
  EXPECT_FALSE(obs::validateIncidentTrace(untagged).valid);

  // all-zero trace id
  const std::string zeros = R"({"traceEvents":[
    {"name":"request","cat":"service","ph":"X","pid":1,"tid":1,"ts":0,
     "dur":10,"args":{"trace_id":"00000000000000000000000000000000"}}
  ],"traceId":"00000000000000000000000000000000"})";
  EXPECT_FALSE(obs::validateIncidentTrace(zeros).valid);

  // overlapping same-tid spans still fail via the chrome validation
  const std::string overlap = R"({"traceEvents":[
    {"name":"a","cat":"t","ph":"X","pid":1,"tid":1,"ts":0,"dur":5,
     "args":{"trace_id":"0af7651916cd43dd8448eb211c80319c"}},
    {"name":"b","cat":"t","ph":"X","pid":1,"tid":1,"ts":3,"dur":10,
     "args":{"trace_id":"0af7651916cd43dd8448eb211c80319c"}}
  ],"traceId":"0af7651916cd43dd8448eb211c80319c"})";
  EXPECT_FALSE(obs::validateIncidentTrace(overlap).valid);
}

} // namespace
} // namespace qdd
