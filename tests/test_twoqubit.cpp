// Tests for the native two-qubit gates (iSWAP, iSWAP^dagger, DCX) across
// every layer: matrix definitions, DD construction, dense baseline,
// stabilizer baseline, IR inversion, QASM round trip, and mapping.

#include "qdd/baseline/DenseSimulator.hpp"
#include "qdd/baseline/StabilizerSimulator.hpp"
#include "qdd/bridge/DDBuilder.hpp"
#include "qdd/ir/Builders.hpp"
#include "qdd/ir/Mapping.hpp"
#include "qdd/parser/qasm/Parser.hpp"
#include "qdd/sim/DensityMatrixSimulator.hpp"
#include "qdd/verify/EquivalenceChecker.hpp"

#include <gtest/gtest.h>

#include <complex>

namespace qdd {
namespace {

constexpr double EPS = 1e-10;

TEST(TwoQubit, IswapMatrixSemantics) {
  // |01> -> i|10>, |10> -> i|01>
  Package pkg(2);
  const mEdge u = pkg.makeTwoQubitGateDD(ISWAP_MAT, 2, 1, 0);
  EXPECT_NEAR(pkg.getMatrixEntry(u, 0, 0).re, 1., EPS);
  EXPECT_NEAR(pkg.getMatrixEntry(u, 2, 1).im, 1., EPS); // |01> -> i|10>
  EXPECT_NEAR(pkg.getMatrixEntry(u, 1, 2).im, 1., EPS);
  EXPECT_NEAR(pkg.getMatrixEntry(u, 3, 3).re, 1., EPS);
}

TEST(TwoQubit, DcxEqualsTwoCnots) {
  ir::QuantumComputation direct(2);
  direct.dcx(1, 0);
  ir::QuantumComputation decomposed(2);
  decomposed.cx(1, 0);
  decomposed.cx(0, 1);
  Package pkg(2);
  const verify::EquivalenceChecker checker(direct, decomposed);
  EXPECT_EQ(checker.checkByConstruction(pkg).equivalence,
            verify::Equivalence::Equivalent);
}

TEST(TwoQubit, IswapTimesInverseIsIdentity) {
  ir::QuantumComputation qc(3);
  qc.iswap(0, 2);
  qc.iswapdg(0, 2);
  Package pkg(3);
  const mEdge u = bridge::buildFunctionality(qc, pkg);
  EXPECT_EQ(u.p, pkg.makeIdent(3).p);
  EXPECT_TRUE(u.w.approximatelyOne(EPS));
}

TEST(TwoQubit, InvertedCircuitUndoesGates) {
  ir::QuantumComputation qc(3);
  qc.h(0);
  qc.iswap(0, 1);
  qc.dcx(1, 2);
  qc.t(2);
  const auto inv = qc.inverted();
  ir::QuantumComputation both(3);
  for (const auto& op : qc) {
    both.emplaceBack(op->clone());
  }
  for (const auto& op : inv) {
    both.emplaceBack(op->clone());
  }
  Package pkg(3);
  const mEdge u = bridge::buildFunctionality(both, pkg);
  EXPECT_EQ(u.p, pkg.makeIdent(3).p);
}

TEST(TwoQubit, DenseBaselineAgreesWithDD) {
  ir::QuantumComputation qc(3);
  qc.h(0);
  qc.h(2);
  qc.iswap(0, 1);
  qc.dcx(2, 0);
  qc.iswapdg(1, 2);
  Package pkg(3);
  const vEdge dd = bridge::simulate(qc, pkg.makeZeroState(3), pkg);
  baseline::DenseStateVector dense(3);
  dense.run(qc);
  const auto vec = pkg.getVector(dd);
  for (std::size_t k = 0; k < vec.size(); ++k) {
    EXPECT_NEAR(std::abs(vec[k] - dense.amplitudes()[k]), 0., 1e-9) << k;
  }
}

TEST(TwoQubit, StabilizerAgreesWithDD) {
  // iSWAP and DCX are Clifford gates
  ir::QuantumComputation qc(3);
  qc.h(0);
  qc.iswap(0, 1);
  qc.dcx(1, 2);
  qc.iswapdg(2, 0);
  qc.h(1);
  baseline::StabilizerSimulator stab(3);
  stab.run(qc);
  Package pkg(3);
  const vEdge dd = bridge::simulate(qc, pkg.makeZeroState(3), pkg);
  for (Qubit q = 0; q < 3; ++q) {
    EXPECT_NEAR(stab.probabilityOfOne(q), pkg.probabilityOfOne(dd, q), EPS)
        << "qubit " << q;
  }
}

TEST(TwoQubit, QasmRoundTrip) {
  ir::QuantumComputation qc(2);
  qc.iswap(0, 1);
  qc.iswapdg(1, 0);
  qc.dcx(0, 1);
  const std::string text = qc.toOpenQASM();
  EXPECT_NE(text.find("iswap q[0], q[1];"), std::string::npos);
  EXPECT_NE(text.find("iswapdg q[1], q[0];"), std::string::npos);
  EXPECT_NE(text.find("dcx q[0], q[1];"), std::string::npos);
  const auto reparsed = qasm::parse(text);
  EXPECT_EQ(reparsed.toOpenQASM(), text);
  Package pkg(2);
  const verify::EquivalenceChecker checker(qc, reparsed);
  EXPECT_EQ(checker.checkByConstruction(pkg).equivalence,
            verify::Equivalence::Equivalent);
}

TEST(TwoQubit, MappingRoutesIswap) {
  ir::QuantumComputation qc(4);
  qc.h(0);
  qc.iswap(0, 3);
  qc.dcx(3, 1);
  const auto result = ir::mapToCoupling(qc, ir::CouplingMap::linear(4));
  EXPECT_GT(result.addedSwaps, 0U);
  const auto restored = result.mappedWithRestore();
  Package pkg(4);
  const verify::EquivalenceChecker checker(qc, restored);
  EXPECT_EQ(checker.checkByConstruction(pkg).equivalence,
            verify::Equivalence::Equivalent);
}

TEST(TwoQubit, ControlledVariantsRejected) {
  ir::QuantumComputation qc(3);
  qc.addStandard(ir::OpType::iSWAP, {{2, true}}, {0, 1});
  Package pkg(3);
  EXPECT_THROW((void)bridge::buildFunctionality(qc, pkg),
               std::invalid_argument);
}

TEST(TwoQubit, DensitySimulatorHandlesIswap) {
  ir::QuantumComputation qc(2);
  qc.x(0);
  qc.iswap(0, 1); // |01> -> i|10>; density matrix kills the global phase
  Package pkg(2);
  sim::DensityMatrixSimulator dsim(qc, pkg);
  dsim.run();
  EXPECT_NEAR(dsim.probabilityOfOne(1), 1., EPS);
  EXPECT_NEAR(dsim.probabilityOfOne(0), 0., EPS);
  EXPECT_NEAR(dsim.purity(), 1., EPS);
}

} // namespace
} // namespace qdd
