// Tests for the extension features: partial trace, expectation values,
// qubit permutations (DD-level and IR-level), and the compute-table
// ablation toggle.

#include "qdd/baseline/DenseSimulator.hpp"
#include "qdd/bridge/DDBuilder.hpp"
#include "qdd/ir/Builders.hpp"
#include "qdd/verify/EquivalenceChecker.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <random>

namespace qdd {
namespace {

constexpr double EPS = 1e-9;

TEST(PartialTrace, FullTraceMatchesTrace) {
  Package pkg(3);
  const auto qc = ir::builders::randomCliffordT(3, 25, 3);
  const mEdge u = bridge::buildFunctionality(qc, pkg);
  const mEdge traced = pkg.partialTrace(u, {true, true, true});
  ASSERT_TRUE(traced.isTerminal());
  const ComplexValue full = pkg.trace(u);
  EXPECT_NEAR(traced.w.real(), full.re, EPS);
  EXPECT_NEAR(traced.w.imag(), full.im, EPS);
}

TEST(PartialTrace, IdentityFactorsOut) {
  // tr_{q0}(A (x) I2) = 2 * A for A acting on the upper qubits
  Package pkg(3);
  const mEdge a = pkg.makeGateDD(H_MAT, 2, 1);
  const mEdge full = pkg.kron(a, pkg.makeIdent(1), 1);
  const mEdge reduced = pkg.partialTrace(full, {true, false, false});
  EXPECT_EQ(reduced.p, a.p);
  EXPECT_NEAR(reduced.w.toValue().mag(), 2. * a.w.toValue().mag(), EPS);
}

TEST(PartialTrace, AgainstDenseDefinition) {
  Package pkg(2);
  std::mt19937_64 rng(9);
  std::uniform_real_distribution<double> dist(-1., 1.);
  std::vector<std::complex<double>> mat(16);
  for (auto& v : mat) {
    v = {dist(rng), dist(rng)};
  }
  const mEdge e = pkg.makeMatrixFromDense(mat, 2);
  // trace out q0 (the least significant qubit / inner 2x2 blocks)
  const mEdge reduced = pkg.partialTrace(e, {true, false});
  const auto r = pkg.getMatrix(reduced);
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      const std::complex<double> expected =
          mat[(2 * i + 0) * 4 + (2 * j + 0)] +
          mat[(2 * i + 1) * 4 + (2 * j + 1)];
      EXPECT_NEAR(std::abs(r[i * 2 + j] - expected), 0., EPS);
    }
  }
  // trace out q1 (the most significant qubit / outer blocks)
  const mEdge reducedTop = pkg.partialTrace(e, {false, true});
  const auto rt = pkg.getMatrix(reducedTop);
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      const std::complex<double> expected =
          mat[(0 + i) * 4 + (0 + j)] + mat[(2 + i) * 4 + (2 + j)];
      EXPECT_NEAR(std::abs(rt[i * 2 + j] - expected), 0., EPS);
    }
  }
}

TEST(PartialTrace, MaskTooShortThrows) {
  // the mask length defines the operator span; it must cover the root level
  Package pkg(2);
  const mEdge cx = pkg.makeGateDD(X_MAT, 2, {{1, true}}, 0);
  EXPECT_THROW(pkg.partialTrace(cx, {true}), std::invalid_argument);
}

TEST(ExpectationValue, PauliZOnBellState) {
  Package pkg(2);
  const vEdge bell = pkg.makeGHZState(2);
  const mEdge z0 = pkg.makeGateDD(Z_MAT, 2, 0);
  // <Z_0> on the Bell state is 0
  EXPECT_NEAR(pkg.expectationValue(z0, bell).re, 0., EPS);
  // <Z_0 Z_1> = 1 (perfect correlation)
  const mEdge z1 = pkg.makeGateDD(Z_MAT, 2, 1);
  const mEdge zz = pkg.multiply(z0, z1);
  EXPECT_NEAR(pkg.expectationValue(zz, bell).re, 1., EPS);
}

TEST(ExpectationValue, EnergyOfBasisState) {
  Package pkg(1);
  const vEdge one = pkg.makeBasisState(1, {true});
  const mEdge z = pkg.makeGateDD(Z_MAT, 1, 0);
  EXPECT_NEAR(pkg.expectationValue(z, one).re, -1., EPS);
}

TEST(PermuteQubits, VectorReversal) {
  Package pkg(3);
  // |q2 q1 q0> = |011> -> reversed -> |110>
  const vEdge state = pkg.makeBasisState(3, {true, true, false});
  const vEdge reversed = pkg.permuteQubits(state, {2, 1, 0});
  const auto vec = pkg.getVector(reversed);
  // original index 3 (q0=1,q1=1,q2=0); reversed: q0=0,q1=1,q2=1 -> index 6
  EXPECT_NEAR(std::abs(vec[6]), 1., EPS);
}

TEST(PermuteQubits, IdentityPermutationIsNoop) {
  Package pkg(3);
  const vEdge state = pkg.makeGHZState(3);
  const vEdge same = pkg.permuteQubits(state, {0, 1, 2});
  EXPECT_EQ(same.p, state.p);
}

TEST(PermuteQubits, MatrixConjugation) {
  Package pkg(2);
  // CX(control q1, target q0) permuted by swapping qubits = CX(control q0,
  // target q1)
  const mEdge cx10 = pkg.makeGateDD(X_MAT, 2, {{1, true}}, 0);
  const mEdge permuted = pkg.permuteQubits(cx10, {1, 0});
  const mEdge cx01 = pkg.makeGateDD(X_MAT, 2, {{0, true}}, 1);
  EXPECT_EQ(permuted.p, cx01.p);
  EXPECT_TRUE(permuted.w.approximatelyEquals(cx01.w, EPS));
}

TEST(PermuteQubits, InvalidPermutationThrows) {
  Package pkg(2);
  const vEdge state = pkg.makeGHZState(2);
  EXPECT_THROW(pkg.permuteQubits(state, {0}), std::invalid_argument);
  EXPECT_THROW(pkg.permuteQubits(state, {0, 0}), std::invalid_argument);
  EXPECT_THROW(pkg.permuteQubits(state, {0, 5}), std::invalid_argument);
}

TEST(RemapQubits, RemappedCircuitMatchesPermutedFunctionality) {
  const auto qc = ir::builders::qft(3);
  const std::vector<Qubit> perm{2, 0, 1};
  const auto remapped = ir::remapQubits(qc, perm);
  Package pkg(3);
  const mEdge u = bridge::buildFunctionality(qc, pkg);
  const mEdge ur = bridge::buildFunctionality(remapped, pkg);
  // permuting the original functionality must reproduce the remapped one:
  // position k of the permuted operator carries original qubit inv(perm)[k]
  std::vector<Qubit> inverse(3);
  for (std::size_t k = 0; k < 3; ++k) {
    inverse[static_cast<std::size_t>(perm[k])] = static_cast<Qubit>(k);
  }
  const mEdge permuted = pkg.permuteQubits(u, inverse);
  EXPECT_EQ(permuted.p, ur.p);
  EXPECT_TRUE(permuted.w.approximatelyEquals(ur.w, EPS));
}

TEST(RemapQubits, EnablesCrossOrderingVerification) {
  // the "different variable ordering" scenario from Sec. IV-C: G2 is G1
  // written with its qubits relabelled; after remapping back, standard
  // equivalence checking succeeds.
  const auto g1 = ir::builders::qft(4);
  const std::vector<Qubit> perm{3, 2, 1, 0};
  const auto g2 = ir::remapQubits(g1, perm);
  {
    // naive check must fail (different orderings!)
    Package pkg(4);
    const verify::EquivalenceChecker naive(g1, g2);
    EXPECT_EQ(naive.checkByConstruction(pkg).equivalence,
              verify::Equivalence::NotEquivalent);
  }
  {
    // after undoing the relabelling, circuits match
    std::vector<Qubit> inverse(4);
    for (std::size_t k = 0; k < 4; ++k) {
      inverse[static_cast<std::size_t>(perm[k])] = static_cast<Qubit>(k);
    }
    const auto g2back = ir::remapQubits(g2, inverse);
    Package pkg(4);
    const verify::EquivalenceChecker checker(g1, g2back);
    EXPECT_EQ(checker.checkByConstruction(pkg).equivalence,
              verify::Equivalence::Equivalent);
  }
}

TEST(RemapQubits, HandlesAllOperationKinds) {
  ir::QuantumComputation qc(3, 2);
  qc.h(0);
  qc.ccx(0, 1, 2);
  qc.barrier();
  qc.measure(2, 0);
  qc.reset(1);
  qc.classicControlled(
      std::make_unique<ir::StandardOperation>(ir::OpType::X, Qubit{1}), 0, 2,
      1);
  const auto remapped = ir::remapQubits(qc, {2, 1, 0});
  ASSERT_EQ(remapped.size(), qc.size());
  EXPECT_EQ(remapped.at(0).targets()[0], 2);
  EXPECT_EQ(remapped.at(3).targets()[0], 0);   // measure q2 -> q0
  const auto* cc = dynamic_cast<const ir::ClassicControlledOperation*>(
      &remapped.at(5));
  ASSERT_NE(cc, nullptr);
  EXPECT_EQ(cc->operation().targets()[0], 1);
}

TEST(RemapQubits, InvalidPermutations) {
  const auto qc = ir::builders::bell();
  EXPECT_THROW(ir::remapQubits(qc, {0}), std::invalid_argument);
  EXPECT_THROW(ir::remapQubits(qc, {1, 1}), std::invalid_argument);
}

TEST(ComputeTableAblation, ResultsIdenticalWithoutMemoization) {
  const auto qc = ir::builders::qft(5);
  Package with(5);
  Package without(5);
  without.setComputeTablesEnabled(false);
  EXPECT_FALSE(without.computeTablesAreEnabled());
  const mEdge u1 = bridge::buildFunctionality(qc, with);
  const mEdge u2 = bridge::buildFunctionality(qc, without);
  EXPECT_EQ(Package::size(u1), Package::size(u2));
  const auto m1 = with.getMatrix(u1);
  const auto m2 = without.getMatrix(u2);
  for (std::size_t k = 0; k < m1.size(); ++k) {
    EXPECT_NEAR(std::abs(m1[k] - m2[k]), 0., EPS);
  }
}

} // namespace
} // namespace qdd
