// Stress and adversarial tests: table pressure, tolerance boundaries, wide
// registers, long-running sessions, and parser robustness against malformed
// input.

#include "qdd/bridge/DDBuilder.hpp"
#include "qdd/ir/Builders.hpp"
#include "qdd/parser/qasm/Parser.hpp"
#include "qdd/sim/SimulationSession.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace qdd {
namespace {

TEST(Stress, WideRegisters) {
  // 128 qubits: far beyond dense reach; linear structures must stay exact
  Package pkg(128);
  const vEdge ghz = pkg.makeGHZState(128);
  EXPECT_EQ(Package::size(ghz), 255U);
  EXPECT_NEAR(pkg.norm(ghz), 1., 1e-9);
  EXPECT_NEAR(pkg.getValueByIndex(ghz, 0).re, SQRT2_2, 1e-9);
  EXPECT_NEAR(pkg.probabilityOfOne(ghz, 127), 0.5, 1e-9);
  std::mt19937_64 rng(1);
  const std::string bits = pkg.sample(ghz, rng);
  EXPECT_EQ(bits.size(), 128U);
  EXPECT_TRUE(bits == std::string(128, '0') || bits == std::string(128, '1'));
}

TEST(Stress, ResizeOnDemand) {
  Package pkg(2);
  EXPECT_EQ(pkg.qubits(), 2U);
  const vEdge big = pkg.makeGHZState(40); // grows automatically
  EXPECT_EQ(pkg.qubits(), 40U);
  EXPECT_EQ(Package::size(big), 79U);
}

TEST(Stress, UniqueTablePressure) {
  // thousands of distinct random states; canonicity must hold throughout
  Package pkg(6);
  std::mt19937_64 rng(2);
  std::uniform_real_distribution<double> dist(-1., 1.);
  std::vector<vEdge> kept;
  for (int round = 0; round < 500; ++round) {
    std::vector<std::complex<double>> vec(64);
    double n2 = 0.;
    for (auto& a : vec) {
      a = {dist(rng), dist(rng)};
      n2 += std::norm(a);
    }
    for (auto& a : vec) {
      a /= std::sqrt(n2);
    }
    const vEdge e = pkg.makeStateFromVector(vec);
    if (round % 50 == 0) {
      pkg.incRef(e);
      kept.push_back(e);
    }
    // rebuilding the same vector must find the identical node
    const vEdge again = pkg.makeStateFromVector(vec);
    ASSERT_EQ(e.p, again.p);
    pkg.garbageCollect();
  }
  EXPECT_TRUE(pkg.garbageCollect(true));
  for (const auto& e : kept) {
    EXPECT_NEAR(pkg.norm(e), 1., 1e-9);
    pkg.decRef(e);
  }
}

TEST(Stress, ToleranceBoundary) {
  // amplitudes differing below the tolerance unify to the same node
  Package pkg(1, NormalizationScheme::Largest, 1e-6);
  const vEdge a = pkg.makeStateFromVector({{0.6, 0.}, {0.8, 0.}});
  const vEdge b = pkg.makeStateFromVector({{0.6 + 1e-9, 0.}, {0.8, 0.}});
  EXPECT_EQ(a.p, b.p);
  EXPECT_EQ(a.w, b.w);
  // well above the tolerance they must stay distinct
  const vEdge c = pkg.makeStateFromVector({{0.61, 0.}, {0.7923, 0.}});
  EXPECT_FALSE(a.p == c.p && a.w == c.w);
}

TEST(Stress, LongSimulationSessionMemoryBounded) {
  // 2000-gate session with snapshots; after rewinding and collecting, the
  // live node count returns to a small baseline
  const std::size_t n = 6;
  const auto qc = ir::builders::randomCliffordT(n, 2000, 8);
  Package pkg(n);
  sim::SimulationSession session(qc, pkg);
  while (session.stepForward()) {
  }
  EXPECT_NEAR(pkg.norm(session.state()), 1., 1e-8);
  session.runToStart();
  pkg.garbageCollect(true);
  const auto pressure = pkg.tablePressure();
  // only the |0...0> state and pinned identity DDs remain referenced
  EXPECT_LT(pressure.vectorNodes, 50U);
}

TEST(Stress, RepeatedCollapseAndReset) {
  Package pkg(4);
  std::mt19937_64 rng(3);
  vEdge state = pkg.makeGHZState(4);
  pkg.incRef(state);
  for (int round = 0; round < 200; ++round) {
    // re-superpose, then measure/reset a random qubit
    const mEdge h = pkg.makeGateDD(H_MAT, 4, static_cast<Qubit>(round % 4));
    const vEdge next = pkg.multiply(h, state);
    pkg.incRef(next);
    pkg.decRef(state);
    state = next;
    if (round % 2 == 0) {
      pkg.measureOneCollapsing(state, static_cast<Qubit>((round + 1) % 4),
                               rng);
    } else {
      pkg.resetQubit(state, static_cast<Qubit>((round + 1) % 4), rng);
    }
    ASSERT_NEAR(pkg.norm(state), 1., 1e-8) << "round " << round;
  }
}

TEST(Stress, ParserRejectsGarbageWithoutCrashing) {
  // deterministic fuzz: random printable garbage must raise ParseError (or
  // parse cleanly), never crash
  std::mt19937_64 rng(4);
  std::uniform_int_distribution<int> charDist(32, 126);
  std::uniform_int_distribution<int> lenDist(1, 200);
  for (int round = 0; round < 500; ++round) {
    std::string source = "OPENQASM 2.0;\nqreg q[3];\n";
    const int len = lenDist(rng);
    for (int k = 0; k < len; ++k) {
      source += static_cast<char>(charDist(rng));
    }
    try {
      (void)qasm::parse(source);
    } catch (const qasm::ParseError&) {
      // expected for almost every input
    }
  }
}

TEST(Stress, ParserTokenSoup) {
  // structured token soup built from valid lexemes in invalid orders
  const std::vector<std::string> tokens = {
      "qreg", "creg", "gate",  "measure", "->", "if", "(",  ")",   "[",
      "]",    "{",    "}",     ";",       ",",  "pi", "cx", "h",   "q",
      "c",    "2",    "0.5",   "==",      "+",  "-",  "*",  "/",   "^",
      "U",    "CX",   "reset", "barrier", "include", "\"qelib1.inc\""};
  std::mt19937_64 rng(5);
  std::uniform_int_distribution<std::size_t> pick(0, tokens.size() - 1);
  for (int round = 0; round < 500; ++round) {
    std::string source = "OPENQASM 2.0;\nqreg q[2];\ncreg c[2];\n";
    for (int k = 0; k < 30; ++k) {
      source += tokens[pick(rng)] + " ";
    }
    try {
      (void)qasm::parse(source);
    } catch (const qasm::ParseError&) {
    }
  }
}

TEST(Stress, LexerEdgeCases) {
  EXPECT_NO_THROW((void)qasm::parse("OPENQASM 2.0;\nqreg q[1];\n"
                                    "rx(1e2) q[0];\n"
                                    "ry(1.5e-3) q[0];\n"
                                    "rz(.5) q[0];\n"));
  EXPECT_THROW((void)qasm::parse("OPENQASM 2.0;\nqreg q[1];\nrx(1e) q[0];\n"),
               qasm::ParseError);
  EXPECT_THROW((void)qasm::parse("OPENQASM 2.0;\nqreg q[1];\nx q[0]"),
               qasm::ParseError); // missing final semicolon
  EXPECT_THROW((void)qasm::parse("OPENQASM 2.0;\nqreg q[1];\n\"unterminated"),
               qasm::ParseError);
  EXPECT_THROW((void)qasm::parse("OPENQASM 2.0;\nqreg q[1];\nx q[0]; @"),
               qasm::ParseError);
}

TEST(Stress, DeepGateDefinitionNesting) {
  std::string source = "OPENQASM 2.0;\nqreg q[1];\n";
  source += "gate g0 a { U(0,0,0.01) a; }\n";
  for (int k = 1; k <= 30; ++k) {
    source += "gate g" + std::to_string(k) + " a { g" +
              std::to_string(k - 1) + " a; g" + std::to_string(k - 1) +
              " a; }\n";
  }
  source += "g10 q[0];\n"; // 2^10 leaf operations
  const auto qc = qasm::parse(source);
  EXPECT_EQ(qc.gateCount(true), 1024U);
  // and it simulates fine
  Package pkg(1);
  const vEdge state = bridge::simulate(qc, pkg.makeZeroState(1), pkg);
  EXPECT_NEAR(pkg.norm(state), 1., 1e-9);
}

TEST(Stress, ManyPackagesCoexist) {
  // packages are independent; shared immortal constants must not conflict
  std::vector<std::unique_ptr<Package>> packages;
  for (int k = 0; k < 20; ++k) {
    packages.push_back(std::make_unique<Package>(4));
    const vEdge ghz = packages.back()->makeGHZState(4);
    EXPECT_EQ(Package::size(ghz), 7U);
  }
  for (auto& pkg : packages) {
    const vEdge w = pkg->makeWState(4);
    EXPECT_NEAR(pkg->norm(w), 1., 1e-9);
  }
}

} // namespace
} // namespace qdd
