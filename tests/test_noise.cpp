// Tests for the Kraus-channel noise model on the density-matrix engine.

#include "qdd/ir/Builders.hpp"
#include "qdd/sim/DensityMatrixSimulator.hpp"
#include "qdd/sim/NoiseModel.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace qdd::sim {
namespace {

constexpr double EPS = 1e-9;

TEST(NoiseChannels, AllBuiltinsAreTracePreserving) {
  for (const double p : {0., 0.1, 0.5, 1.}) {
    EXPECT_TRUE(depolarizing(p).isTracePreserving()) << p;
    EXPECT_TRUE(amplitudeDamping(p).isTracePreserving()) << p;
    EXPECT_TRUE(phaseDamping(p).isTracePreserving()) << p;
    EXPECT_TRUE(bitFlip(p).isTracePreserving()) << p;
    EXPECT_TRUE(phaseFlip(p).isTracePreserving()) << p;
  }
}

TEST(NoiseChannels, InvalidProbabilityRejected) {
  EXPECT_THROW(depolarizing(-0.1), std::invalid_argument);
  EXPECT_THROW(amplitudeDamping(1.5), std::invalid_argument);
}

TEST(NoiseChannels, NonTracePreservingChannelRejected) {
  KrausChannel bogus{"bogus", {H_MAT, H_MAT}}; // sums to 2I
  EXPECT_FALSE(bogus.isTracePreserving());
  Package pkg(1);
  ir::QuantumComputation qc(1);
  qc.x(0);
  DensityMatrixSimulator dsim(qc, pkg);
  EXPECT_THROW(dsim.setNoiseModel({{bogus}}), std::invalid_argument);
}

TEST(NoiseSim, ZeroStrengthNoiseIsNoiseless) {
  const auto qc = ir::builders::qft(3);
  Package pkg(3);
  DensityMatrixSimulator noisy(qc, pkg);
  noisy.setNoiseModel({{depolarizing(0.)}});
  noisy.run();
  EXPECT_NEAR(noisy.purity(), 1., EPS);
}

TEST(NoiseSim, BitFlipProbabilityOne) {
  // bitFlip(1) after an X gate flips it straight back
  ir::QuantumComputation qc(1);
  qc.x(0);
  Package pkg(1);
  DensityMatrixSimulator dsim(qc, pkg);
  dsim.setNoiseModel({{bitFlip(1.)}});
  dsim.run();
  EXPECT_NEAR(dsim.probabilityOfOne(0), 0., EPS);
  EXPECT_NEAR(dsim.purity(), 1., EPS); // deterministic flip stays pure
}

TEST(NoiseSim, AmplitudeDampingDecaysExcitedState) {
  // |1> through m idle gates with damping gamma: p1 = (1-gamma)^m
  const double gamma = 0.2;
  const std::size_t m = 5;
  ir::QuantumComputation qc(1);
  qc.x(0);
  for (std::size_t k = 0; k < m - 1; ++k) {
    qc.i(0); // identity gates just trigger the after-gate noise
  }
  Package pkg(1);
  DensityMatrixSimulator dsim(qc, pkg);
  dsim.setNoiseModel({{amplitudeDamping(gamma)}});
  dsim.run();
  EXPECT_NEAR(dsim.probabilityOfOne(0), std::pow(1. - gamma, m), 1e-9);
}

TEST(NoiseSim, DepolarizingDrivesToMaximallyMixed) {
  ir::QuantumComputation qc(1);
  qc.h(0);
  for (int k = 0; k < 40; ++k) {
    qc.i(0);
  }
  Package pkg(1);
  DensityMatrixSimulator dsim(qc, pkg);
  dsim.setNoiseModel({{depolarizing(0.3)}});
  dsim.run();
  EXPECT_NEAR(dsim.probabilityOfOne(0), 0.5, 1e-6);
  EXPECT_NEAR(dsim.purity(), 0.5, 1e-6); // fully mixed single qubit
}

TEST(NoiseSim, PhaseDampingKillsCoherenceNotPopulation) {
  // H|0> has p1 = 0.5; dephasing keeps populations but destroys the
  // off-diagonals, so purity decays toward 1/2
  ir::QuantumComputation qc(1);
  qc.h(0);
  for (int k = 0; k < 30; ++k) {
    qc.i(0);
  }
  Package pkg(1);
  DensityMatrixSimulator dsim(qc, pkg);
  dsim.setNoiseModel({{phaseDamping(0.25)}});
  dsim.run();
  EXPECT_NEAR(dsim.probabilityOfOne(0), 0.5, EPS); // populations untouched
  EXPECT_NEAR(dsim.purity(), 0.5, 1e-4);
  // off-diagonal of rho is (1-lambda)^(31/2)-ish small
  const auto rho = pkg.getMatrix(dsim.densityMatrix());
  EXPECT_LT(std::abs(rho[1]), 1e-2);
}

TEST(NoiseSim, NoisyGhzFidelityDecays) {
  const auto qc = ir::builders::ghz(3);
  Package pkg(3);
  DensityMatrixSimulator noisy(qc, pkg);
  noisy.setNoiseModel({{depolarizing(0.05)}});
  noisy.run();
  const double purity = noisy.purity();
  EXPECT_LT(purity, 1.);
  EXPECT_GT(purity, 0.5);
  // the GHZ correlation survives partially: p(q0=1) stays 1/2 by symmetry
  EXPECT_NEAR(noisy.probabilityOfOne(0), 0.5, 1e-6);
}

TEST(NoiseSim, SetNoiseAfterRunRejected) {
  Package pkg(1);
  ir::QuantumComputation qc(1);
  qc.x(0);
  DensityMatrixSimulator dsim(qc, pkg);
  dsim.run();
  EXPECT_THROW(dsim.setNoiseModel({{bitFlip(0.1)}}), std::logic_error);
}

} // namespace
} // namespace qdd::sim
