// Cache-conscious DD core layout: node geometry, open-addressed unique-table
// behaviour under growth and garbage collection, the weight-product memo, and
// bit-identity of the SIMD complex kernels against the scalar fallback
// (cross-validated via canonical root pointers — table canonicity turns any
// numeric drift into a different node identity).

#include "qdd/bridge/DDBuilder.hpp"
#include "qdd/complex/Simd.hpp"
#include "qdd/dd/Package.hpp"
#include "qdd/ir/Builders.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <cstring>
#include <random>
#include <vector>

namespace qdd {
namespace {

// --- node geometry -----------------------------------------------------------

// The packing is a compile-time contract; the static_asserts make any
// regression a build failure, the EXPECTs make it a readable test failure.
static_assert(sizeof(vNode) == 64, "vNode must fill exactly one cache line");
static_assert(alignof(vNode) == 64, "vNode must be cache-line aligned");
static_assert(sizeof(mNode) == 128, "mNode must fill exactly two cache lines");
static_assert(alignof(mNode) == 64, "mNode must be cache-line aligned");

TEST(NodeGeometry, PackedCacheLineSizes) {
  EXPECT_EQ(sizeof(vNode), 64U);
  EXPECT_EQ(alignof(vNode), 64U);
  EXPECT_EQ(sizeof(mNode), 128U);
  EXPECT_EQ(alignof(mNode), 64U);
}

TEST(NodeGeometry, AllocationsAreCacheLineAligned) {
  Package pkg(8);
  const vEdge state = pkg.makeGHZState(8);
  const mEdge gate = pkg.makeGateDD(H_MAT, 8, 3);
  const vNode* p = state.p;
  while (p != nullptr && p->v >= 0) {
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 64U, 0U);
    if (p->v == 0) {
      break;
    }
    p = p->e[0].w.exactlyZero() ? p->e[1].p : p->e[0].p;
  }
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(gate.p) % 64U, 0U);
}

// --- SIMD kernels ------------------------------------------------------------

std::vector<ComplexValue> randomValues(std::size_t count, unsigned seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(-2., 2.);
  std::vector<ComplexValue> out;
  out.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    out.push_back({dist(rng), dist(rng)});
  }
  // A few adversarial magnitudes on top of the uniform draw.
  out.push_back({1e-160, -1e-160});
  out.push_back({1e155, 1e-155});
  out.push_back({0., -0.});
  out.push_back({SQRT2_2, -SQRT2_2});
  return out;
}

bool bitIdentical(const ComplexValue& a, const ComplexValue& b) {
  return std::memcmp(&a, &b, sizeof(ComplexValue)) == 0;
}

TEST(SimdKernels, MulBitIdenticalToScalar) {
  const auto values = randomValues(64, 42);
  for (const auto& a : values) {
    for (const auto& b : values) {
      const ComplexValue vec = simd::mul(a, b);
      const ComplexValue ref = simd::mulScalar(a, b);
      ASSERT_TRUE(bitIdentical(vec, ref))
          << "(" << a.re << "," << a.im << ") * (" << b.re << "," << b.im
          << ")";
    }
  }
}

TEST(SimdKernels, Mul3AndMulAdd2BitIdenticalToScalar) {
  const auto values = randomValues(24, 7);
  for (const auto& a : values) {
    for (const auto& b : values) {
      for (const auto& c : values) {
        const ComplexValue vec3 = simd::mul3(a, b, c);
        const ComplexValue ref3 =
            simd::mulScalar(simd::mulScalar(a, b), c);
        ASSERT_TRUE(bitIdentical(vec3, ref3));
      }
      const ComplexValue fma = simd::mulAdd2(a, b, b, a);
      const ComplexValue refFma = [&] {
        const ComplexValue t0 = simd::mulScalar(a, b);
        const ComplexValue t1 = simd::mulScalar(b, a);
        return ComplexValue{t0.re + t1.re, t0.im + t1.im};
      }();
      ASSERT_TRUE(bitIdentical(fma, refFma));
    }
  }
}

TEST(SimdKernels, ClassifyImmortalMatchesScalarBranches) {
  const double tol = 1e-10;
  const auto classifyRef = [&](double v) {
    if (std::abs(v - 1.) <= tol) {
      return 1;
    }
    if (std::abs(v - SQRT2_2) <= tol) {
      return 2;
    }
    return 0;
  };
  std::mt19937_64 rng(99);
  std::uniform_real_distribution<double> dist(0., 2.);
  std::vector<double> probes{0.,       1.,        SQRT2_2,       1. + tol / 2,
                             1. - tol, SQRT2_2 + tol / 2, SQRT2_2 - tol,
                             0.5,      1. + 2 * tol,      SQRT2_2 + 2 * tol};
  for (int k = 0; k < 200; ++k) {
    probes.push_back(dist(rng));
  }
  for (const double v : probes) {
    EXPECT_EQ(simd::classifyImmortal(v, tol), classifyRef(v)) << "v=" << v;
  }
}

TEST(SimdKernels, ScopedScalarOverrideForcesScalarMode) {
  const simd::Mode before = simd::activeMode();
  {
    simd::ScopedScalarOverride scalarOnly;
    EXPECT_EQ(simd::activeMode(), simd::Mode::Scalar);
    {
      simd::ScopedScalarOverride nested;
      EXPECT_EQ(simd::activeMode(), simd::Mode::Scalar);
    }
    EXPECT_EQ(simd::activeMode(), simd::Mode::Scalar);
  }
  EXPECT_EQ(simd::activeMode(), before);
  EXPECT_STREQ(simd::toString(simd::Mode::Scalar), "scalar");
  EXPECT_STREQ(simd::toString(simd::Mode::SSE2), "sse2");
  EXPECT_STREQ(simd::toString(simd::Mode::AVX2), "avx2");
}

// --- open-addressed unique table under growth and GC -------------------------

std::vector<std::complex<double>> randomState(std::size_t n, unsigned seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> dist;
  std::vector<std::complex<double>> vec(1ULL << n);
  double norm = 0.;
  for (auto& amp : vec) {
    amp = {dist(rng), dist(rng)};
    norm += std::norm(amp);
  }
  norm = std::sqrt(norm);
  for (auto& amp : vec) {
    amp /= norm;
  }
  return vec;
}

TEST(OpenAddressing, GrowthKeepsHashConsingCanonical) {
  constexpr std::size_t n = 10;
  Package pkg(n);
  // Dense random states force thousands of distinct nodes per level, which
  // drives the flat tables through several resizes.
  std::vector<vEdge> roots;
  for (unsigned seed = 1; seed <= 6; ++seed) {
    roots.push_back(pkg.makeStateFromVector(randomState(n, seed)));
    pkg.incRef(roots.back());
  }
  // Hash consing must find the existing nodes after the resizes: rebuilding
  // any state lands on the identical root pointer.
  for (unsigned seed = 1; seed <= 6; ++seed) {
    const vEdge again = pkg.makeStateFromVector(randomState(n, seed));
    EXPECT_EQ(again.p, roots[seed - 1].p) << "seed " << seed;
    EXPECT_TRUE(again.w == roots[seed - 1].w) << "seed " << seed;
  }
  const auto stats = pkg.statistics();
  EXPECT_GT(stats.vectorTable.probes, 0U);
  EXPECT_LT(stats.vectorTable.avgProbeLength(), 4.0);
}

TEST(OpenAddressing, GarbageCollectionSweepsAndRebuildsCleanly) {
  constexpr std::size_t n = 9;
  Package pkg(n);
  const vEdge keep = pkg.makeStateFromVector(randomState(n, 77));
  pkg.incRef(keep);
  for (unsigned seed = 100; seed < 110; ++seed) {
    (void)pkg.makeStateFromVector(randomState(n, seed)); // dead on arrival
    pkg.garbageCollect();
  }
  // The kept state must survive every sweep, and rebuilding it must reuse
  // the surviving nodes rather than allocate duplicates.
  const vEdge again = pkg.makeStateFromVector(randomState(n, 77));
  EXPECT_EQ(again.p, keep.p);
  EXPECT_TRUE(again.w == keep.w);
  const auto vec = pkg.getVector(keep);
  const auto ref = randomState(n, 77);
  for (std::size_t idx = 0; idx < vec.size(); ++idx) {
    EXPECT_NEAR(std::abs(vec[idx] - ref[idx]), 0., 1e-12);
  }
}

// --- weight-product memo -----------------------------------------------------

TEST(WeightProductMemo, MatchesValuePathAndHits) {
  Package pkg(4);
  const Complex a = pkg.lookup(ComplexValue{0.6, 0.3});
  const Complex b = pkg.lookup(ComplexValue{-0.2, 0.7});
  const Complex ref = pkg.lookup(a.toValue() * b.toValue());
  const Complex viaMemo = pkg.mulWeights(a, b);
  EXPECT_TRUE(viaMemo == ref);
  // Same product again (and mirrored — multiplication commutes bit-exactly)
  // must be served from the memo.
  const auto before = pkg.statistics();
  const Complex repeat = pkg.mulWeights(a, b);
  const Complex mirrored = pkg.mulWeights(b, a);
  EXPECT_TRUE(repeat == ref);
  EXPECT_TRUE(mirrored == ref);
  const auto after = pkg.statistics();
  std::size_t hitsBefore = 0;
  std::size_t hitsAfter = 0;
  for (const auto& table : before.computeTables) {
    if (table.name == "mulWeight") {
      hitsBefore = table.hits;
    }
  }
  for (const auto& table : after.computeTables) {
    if (table.name == "mulWeight") {
      hitsAfter = table.hits;
    }
  }
  EXPECT_EQ(hitsAfter, hitsBefore + 2);
}

TEST(WeightProductMemo, ExactOneElisionReturnsCanonicalPointers) {
  Package pkg(4);
  const Complex a = pkg.lookup(ComplexValue{0.6, 0.3});
  EXPECT_TRUE(pkg.mulWeights(Complex::one, a) == a);
  EXPECT_TRUE(pkg.mulWeights(a, Complex::one) == a);
  EXPECT_TRUE(pkg.mulWeights3(a, Complex::one, Complex::one) == a);
  EXPECT_TRUE(pkg.mulWeights3(Complex::one, a, Complex::one) == a);
  EXPECT_TRUE(pkg.mulWeights3(Complex::one, Complex::one, a) == a);
}

TEST(WeightProductMemo, TripleProductMatchesLeftAssociatedValuePath) {
  Package pkg(4);
  const Complex a = pkg.lookup(ComplexValue{0.8, -0.1});
  const Complex b = pkg.lookup(ComplexValue{0.4, 0.5});
  const Complex c = pkg.lookup(ComplexValue{-0.3, 0.6});
  const Complex ref = pkg.lookup((a.toValue() * b.toValue()) * c.toValue());
  EXPECT_TRUE(pkg.mulWeights3(a, b, c) == ref);
  // Served from the memo on the repeat (and with the inner pair mirrored).
  EXPECT_TRUE(pkg.mulWeights3(a, b, c) == ref);
  EXPECT_TRUE(pkg.mulWeights3(b, a, c) == ref);
}

TEST(WeightProductMemo, ZeroWindowProductCanonicalizesToZero) {
  Package pkg(4);
  const Complex tiny = pkg.lookup(ComplexValue{1e-7, 0.});
  const Complex alsoTiny = pkg.lookup(ComplexValue{0., 1e-7});
  const Complex product = pkg.mulWeights(tiny, alsoTiny); // |w| ~ 1e-14 < tol
  EXPECT_TRUE(product.exactlyZero());
  EXPECT_TRUE(pkg.mulWeights(tiny, alsoTiny).exactlyZero()); // memo hit
}

// --- SIMD vs scalar cross-validation on full circuits ------------------------

class CrossValidation : public ::testing::Test {
protected:
  static void runBothModes(const ir::QuantumComputation& qc) {
    const std::size_t n = qc.numQubits();
    Package pkg(n);
    vEdge simdState = pkg.makeZeroState(n);
    vEdge scalarState = pkg.makeZeroState(n);
    std::size_t step = 0;
    for (const auto& op : qc) {
      simdState = bridge::applyOperation(*op, n, simdState, pkg,
                                         bridge::ApplyMode::Fast, nullptr);
      {
        simd::ScopedScalarOverride scalarOnly;
        scalarState = bridge::applyOperation(*op, n, scalarState, pkg,
                                             bridge::ApplyMode::Fast, nullptr);
      }
      // Same package, so hash consing makes equality exact pointer equality.
      ASSERT_EQ(simdState.p, scalarState.p) << "diverged at op " << step;
      ASSERT_TRUE(simdState.w == scalarState.w) << "diverged at op " << step;
      ++step;
    }
  }
};

TEST_F(CrossValidation, QftRootsArePointerIdentical) {
  runBothModes(ir::builders::qft(10));
}

TEST_F(CrossValidation, GroverRootsArePointerIdentical) {
  runBothModes(ir::builders::grover(8, 37));
}

TEST_F(CrossValidation, RandomCliffordTGatesArePointerIdentical) {
  constexpr std::size_t n = 8;
  Package pkg(n);
  vEdge simdState = pkg.makeZeroState(n);
  vEdge scalarState = pkg.makeZeroState(n);
  std::mt19937_64 rng(2024);
  std::uniform_int_distribution<std::size_t> pickGate(0, 4);
  std::uniform_int_distribution<Qubit> pickQubit(0, n - 1);
  const GateMatrix* gates[] = {&H_MAT, &T_MAT, &S_MAT, &X_MAT, &Z_MAT};
  for (int step = 0; step < 300; ++step) {
    const GateMatrix& mat = *gates[pickGate(rng)];
    const Qubit target = pickQubit(rng);
    Qubit control = pickQubit(rng);
    while (control == target) {
      control = pickQubit(rng);
    }
    const bool controlled = (step % 3) == 0;
    if (controlled) {
      simdState = pkg.applyGate(mat, target, {QubitControl{control, true}},
                                simdState);
    } else {
      simdState = pkg.applyGate(mat, target, simdState);
    }
    {
      simd::ScopedScalarOverride scalarOnly;
      if (controlled) {
        scalarState = pkg.applyGate(mat, target, {QubitControl{control, true}},
                                    scalarState);
      } else {
        scalarState = pkg.applyGate(mat, target, scalarState);
      }
    }
    ASSERT_EQ(simdState.p, scalarState.p) << "diverged at step " << step;
    ASSERT_TRUE(simdState.w == scalarState.w) << "diverged at step " << step;
  }
}

} // namespace
} // namespace qdd
