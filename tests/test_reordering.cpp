// Tests for variable reordering / sifting — the paper's "canonic
// representation (with respect to a given variable order)" made concrete:
// the same function can have linear or exponential DDs depending on the
// order, and sifting finds good orders automatically.

#include "qdd/bridge/DDBuilder.hpp"
#include "qdd/dd/Reordering.hpp"
#include "qdd/ir/Builders.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <complex>

namespace qdd {
namespace {

/// The classic order-sensitive function: the "copy" state
/// sum_x |x>|x> / sqrt(2^k) on 2k qubits. With pairs adjacent
/// (x_i next to its copy) the DD is linear; with all x qubits above all
/// copies it is exponential (~2^k nodes).
vEdge makeCopyState(Package& pkg, std::size_t k, bool interleaved) {
  const std::size_t n = 2 * k;
  std::vector<std::complex<double>> vec(1ULL << n, {0., 0.});
  const double amp = 1. / std::sqrt(static_cast<double>(1ULL << k));
  for (std::uint64_t x = 0; x < (1ULL << k); ++x) {
    std::uint64_t index = 0;
    for (std::size_t b = 0; b < k; ++b) {
      if ((x >> b) & 1ULL) {
        if (interleaved) {
          index |= 1ULL << (2 * b);       // x_b
          index |= 1ULL << (2 * b + 1);   // its copy right above
        } else {
          index |= 1ULL << b;             // x in the low half
          index |= 1ULL << (k + b);       // copy in the high half
        }
      }
    }
    vec[index] = {amp, 0.};
  }
  return pkg.makeStateFromVector(vec);
}

TEST(Reordering, OrderSensitivityOfCopyState) {
  const std::size_t k = 5;
  Package pkg(2 * k);
  const vEdge good = makeCopyState(pkg, k, true);
  const vEdge bad = makeCopyState(pkg, k, false);
  // interleaved: linear; separated: exponential
  EXPECT_LE(Package::size(good), 3 * 2 * k);
  EXPECT_GE(Package::size(bad), (1ULL << k));
}

TEST(Reordering, ExchangeAdjacentPreservesFunction) {
  Package pkg(3);
  const vEdge e = pkg.makeWState(3);
  pkg.incRef(e);
  OrderedVector state = withIdentityOrder(e);
  const auto before = pkg.getVector(e);
  exchangeAdjacent(pkg, state, 0);
  exchangeAdjacent(pkg, state, 1);
  // logical amplitudes unchanged under any order
  for (std::uint64_t idx = 0; idx < 8; ++idx) {
    const ComplexValue amp = state.amplitude(pkg, idx);
    EXPECT_NEAR(amp.re, before[idx].real(), 1e-10) << idx;
    EXPECT_NEAR(amp.im, before[idx].imag(), 1e-10) << idx;
  }
}

TEST(Reordering, MoveQubitToLevel) {
  Package pkg(4);
  const vEdge e = pkg.makeBasisState(4, {true, false, false, false});
  pkg.incRef(e);
  OrderedVector state = withIdentityOrder(e);
  moveQubitToLevel(pkg, state, 0, 3);
  EXPECT_EQ(state.levelOfQubit[0], 3);
  // logical q0 is still |1>
  EXPECT_NEAR(state.amplitude(pkg, 1).mag(), 1., 1e-10);
  moveQubitToLevel(pkg, state, 0, 0);
  EXPECT_EQ(state.levelOfQubit[0], 0);
}

TEST(Reordering, SiftingShrinksBadOrder) {
  const std::size_t k = 4;
  Package pkg(2 * k);
  const vEdge bad = makeCopyState(pkg, k, false);
  pkg.incRef(bad);
  OrderedVector state = withIdentityOrder(bad);
  const std::size_t before = Package::size(state.dd);
  ASSERT_GE(before, (1ULL << k));
  const std::size_t improvements = sift(pkg, state);
  const std::size_t after = Package::size(state.dd);
  EXPECT_GT(improvements, 0U);
  EXPECT_LT(after, before);
  EXPECT_LE(after, 4 * 2 * k); // near-linear after reordering
  // function preserved (spot-check a few amplitudes)
  const double amp = 1. / std::sqrt(static_cast<double>(1ULL << k));
  for (std::uint64_t x : {0ULL, 1ULL, 5ULL, 15ULL}) {
    std::uint64_t logicalIndex = 0;
    for (std::size_t b = 0; b < k; ++b) {
      if ((x >> b) & 1ULL) {
        logicalIndex |= 1ULL << b;
        logicalIndex |= 1ULL << (k + b);
      }
    }
    EXPECT_NEAR(state.amplitude(pkg, logicalIndex).re, amp, 1e-9) << x;
  }
}

TEST(Reordering, SiftingLeavesGoodOrderAlone) {
  Package pkg(6);
  const vEdge ghz = pkg.makeGHZState(6);
  pkg.incRef(ghz);
  OrderedVector state = withIdentityOrder(ghz);
  const std::size_t before = Package::size(state.dd);
  sift(pkg, state);
  EXPECT_LE(Package::size(state.dd), before); // GHZ is order-insensitive
}

TEST(Reordering, Validation) {
  Package pkg(2);
  const vEdge e = pkg.makeGHZState(2);
  pkg.incRef(e);
  OrderedVector state = withIdentityOrder(e);
  EXPECT_THROW(exchangeAdjacent(pkg, state, 1), std::invalid_argument);
  EXPECT_THROW(moveQubitToLevel(pkg, state, 5, 0), std::invalid_argument);
}


TEST(ReorderingMatrix, ConjugationPreservesEntries) {
  Package pkg(3);
  const auto qc = ir::builders::qft(3);
  const mEdge u = bridge::buildFunctionality(qc, pkg);
  pkg.incRef(u);
  OrderedMatrix state = withIdentityOrder(u);
  const auto before = pkg.getMatrix(u);
  exchangeAdjacent(pkg, state, 0);
  exchangeAdjacent(pkg, state, 1);
  exchangeAdjacent(pkg, state, 0);
  for (std::uint64_t r = 0; r < 8; ++r) {
    for (std::uint64_t c = 0; c < 8; ++c) {
      const ComplexValue e = state.entry(pkg, r, c);
      EXPECT_NEAR(e.re, before[r * 8 + c].real(), 1e-10) << r << "," << c;
      EXPECT_NEAR(e.im, before[r * 8 + c].imag(), 1e-10) << r << "," << c;
    }
  }
}

TEST(ReorderingMatrix, SiftingShrinksTransversalCnots) {
  // U = prod_i CX(x_i -> y_i) on 2k qubits: local (small) when pairs are
  // adjacent, large when the x block is separated from the y block.
  const std::size_t k = 4;
  ir::QuantumComputation separated(2 * k);
  for (std::size_t i = 0; i < k; ++i) {
    separated.cx(static_cast<Qubit>(i), static_cast<Qubit>(k + i));
  }
  Package pkg(2 * k);
  const mEdge bad = bridge::buildFunctionality(separated, pkg);
  pkg.incRef(bad);
  OrderedMatrix state = withIdentityOrder(bad);
  const std::size_t before = Package::size(state.dd);
  sift(pkg, state);
  const std::size_t after = Package::size(state.dd);
  EXPECT_LT(after, before);
  EXPECT_LE(after, 4 * 2 * k); // near-linear once pairs are adjacent
}

} // namespace
} // namespace qdd
