#include "qdd/ir/Builders.hpp"
#include "qdd/parser/qasm/Parser.hpp"
#include "qdd/sim/SimulationSession.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace qdd::sim {
namespace {

constexpr double EPS = 1e-10;

TEST(SimSession, StepThroughBellCircuit) {
  // Paper Ex. 13 / Fig. 8(a)-(b): stepping through the circuit of Fig. 1(c).
  Package pkg(2);
  SimulationSession session(ir::builders::bell(), pkg);
  // initial state |00>
  EXPECT_TRUE(session.atStart());
  EXPECT_NEAR(pkg.getValueByIndex(session.state(), 0).re, 1., EPS);
  // after H
  ASSERT_TRUE(session.stepForward());
  EXPECT_NEAR(pkg.getValueByIndex(session.state(), 0).re, SQRT2_2, EPS);
  EXPECT_NEAR(pkg.getValueByIndex(session.state(), 2).re, SQRT2_2, EPS);
  // after CNOT: Bell state
  ASSERT_TRUE(session.stepForward());
  EXPECT_NEAR(pkg.getValueByIndex(session.state(), 0).re, SQRT2_2, EPS);
  EXPECT_NEAR(pkg.getValueByIndex(session.state(), 3).re, SQRT2_2, EPS);
  EXPECT_TRUE(session.atEnd());
  EXPECT_FALSE(session.stepForward());
}

TEST(SimSession, StepBackwardRestoresState) {
  Package pkg(2);
  SimulationSession session(ir::builders::bell(), pkg);
  session.stepForward();
  session.stepForward();
  ASSERT_TRUE(session.stepBackward());
  EXPECT_NEAR(pkg.getValueByIndex(session.state(), 2).re, SQRT2_2, EPS);
  ASSERT_TRUE(session.stepBackward());
  EXPECT_NEAR(pkg.getValueByIndex(session.state(), 0).re, 1., EPS);
  EXPECT_TRUE(session.atStart());
  EXPECT_FALSE(session.stepBackward());
}

TEST(SimSession, MeasurementWithChooserCollapsesEntangledState) {
  // Paper Ex. 13 / Fig. 8(c)-(d): measuring q0 of the Bell state as |1>
  // determines q1 -> final state |11>.
  auto qc = ir::builders::bell();
  qc.addClassicalRegister(2, "c");
  qc.measure(0, 0);
  Package pkg(2);
  SimulationSession session(qc, pkg);
  double seenP0 = -1.;
  session.setOutcomeChooser([&](Qubit q, double p0, double p1) {
    EXPECT_EQ(q, 0);
    seenP0 = p0;
    EXPECT_NEAR(p1, 0.5, EPS);
    return 1; // the user clicks |1>
  });
  while (session.stepForward()) {
  }
  EXPECT_NEAR(seenP0, 0.5, EPS); // the dialog showed 50/50
  EXPECT_NEAR(pkg.getValueByIndex(session.state(), 3).mag(), 1., EPS);
  EXPECT_TRUE(session.classicalBits()[0]);
}

TEST(SimSession, DeterministicMeasurementSkipsChooser) {
  ir::QuantumComputation qc(1, 1);
  qc.x(0);
  qc.measure(0, 0);
  Package pkg(1);
  SimulationSession session(qc, pkg);
  bool chooserCalled = false;
  session.setOutcomeChooser([&](Qubit, double, double) {
    chooserCalled = true;
    return 0;
  });
  while (session.stepForward()) {
  }
  EXPECT_FALSE(chooserCalled); // |1> with certainty: no pop-up
  EXPECT_TRUE(session.classicalBits()[0]);
}

TEST(SimSession, StepBackwardAcrossMeasurement) {
  // Measurements are irreversible on a quantum computer, but the tool can
  // still step back because it snapshots the state.
  auto qc = ir::builders::bell();
  qc.addClassicalRegister(1, "c");
  qc.measure(0, 0);
  Package pkg(2);
  SimulationSession session(qc, pkg);
  session.setOutcomeChooser([](Qubit, double, double) { return 1; });
  while (session.stepForward()) {
  }
  ASSERT_TRUE(session.stepBackward());
  // back to the Bell state
  EXPECT_NEAR(pkg.getValueByIndex(session.state(), 0).re, SQRT2_2, EPS);
  EXPECT_NEAR(pkg.getValueByIndex(session.state(), 3).re, SQRT2_2, EPS);
  EXPECT_FALSE(session.classicalBits()[0]);
}

TEST(SimSession, RunToEndStopsAtBarrier) {
  ir::QuantumComputation qc(2);
  qc.h(0);
  qc.barrier();
  qc.x(1);
  Package pkg(2);
  SimulationSession session(qc, pkg);
  session.runToEnd();
  EXPECT_EQ(session.position(), 2U); // H + barrier consumed, stopped
  session.runToEnd();
  EXPECT_TRUE(session.atEnd());
}

TEST(SimSession, RunToEndStopsAfterMeasurement) {
  ir::QuantumComputation qc(2, 2);
  qc.h(0);
  qc.measure(0, 0);
  qc.x(1);
  Package pkg(2);
  SimulationSession session(qc, pkg);
  session.setOutcomeChooser([](Qubit, double, double) { return 0; });
  session.runToEnd();
  EXPECT_EQ(session.position(), 2U);
  session.runToEnd();
  EXPECT_TRUE(session.atEnd());
}

TEST(SimSession, ResetCollapsesAndRewrites) {
  // Paper Sec. IV-B: reset discards the measured branch and reinstalls the
  // survivor as the |0> branch.
  ir::QuantumComputation qc(2);
  qc.x(0);
  qc.x(1);
  qc.reset(0);
  Package pkg(2);
  SimulationSession session(qc, pkg);
  session.setOutcomeChooser([](Qubit, double, double) { return 1; });
  while (session.stepForward()) {
  }
  // |11> -> reset q0 -> |10>
  EXPECT_NEAR(pkg.getValueByIndex(session.state(), 2).mag(), 1., EPS);
}

TEST(SimSession, ClassicallyControlledOperation) {
  // teleport-style: measure, then conditionally flip
  const auto qc = qasm::parse(R"(
OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
creg c[1];
x q[0];
measure q[0] -> c[0];
if (c == 1) x q[1];
)");
  Package pkg(2);
  SimulationSession session(qc, pkg);
  while (session.stepForward()) {
  }
  // q0 measured as 1 (deterministic) -> q1 flipped -> |11>
  EXPECT_NEAR(pkg.getValueByIndex(session.state(), 3).mag(), 1., EPS);
}

TEST(SimSession, ClassicallyControlledNotTaken) {
  const auto qc = qasm::parse(R"(
OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
creg c[1];
measure q[0] -> c[0];
if (c == 1) x q[1];
)");
  Package pkg(2);
  SimulationSession session(qc, pkg);
  while (session.stepForward()) {
  }
  EXPECT_NEAR(pkg.getValueByIndex(session.state(), 0).mag(), 1., EPS);
}

TEST(SimSession, NodeHistoryTracksGrowth) {
  Package pkg(4);
  SimulationSession session(ir::builders::ghz(4), pkg);
  while (session.stepForward()) {
  }
  EXPECT_EQ(session.nodeHistory().size(), 4U);
  EXPECT_EQ(session.nodeHistory().back(), 7U); // 2n-1 for GHZ
  EXPECT_GE(session.peakNodes(), 7U);
}

TEST(SimSampling, BellDistribution) {
  auto qc = ir::builders::bell();
  qc.measureAll();
  const SamplingResult result = sampleCircuit(qc, 4000, 123);
  EXPECT_EQ(result.shots, 4000U);
  ASSERT_EQ(result.counts.size(), 2U);
  EXPECT_TRUE(result.counts.contains("00"));
  EXPECT_TRUE(result.counts.contains("11"));
  EXPECT_GT(result.counts.at("00"), 1600U);
  EXPECT_GT(result.counts.at("11"), 1600U);
}

TEST(SimSampling, NoMeasurementsSamplesAllQubits) {
  const auto qc = ir::builders::ghz(3);
  const SamplingResult result = sampleCircuit(qc, 500, 7);
  for (const auto& [bits, count] : result.counts) {
    EXPECT_TRUE(bits == "000" || bits == "111") << bits;
    EXPECT_GT(count, 0U);
  }
}

TEST(SimSampling, PartialMeasurementMapsToClassicalBits) {
  const auto qc = qasm::parse(R"(
OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
creg c[1];
x q[1];
measure q[1] -> c[0];
)");
  const SamplingResult result = sampleCircuit(qc, 100, 3);
  ASSERT_EQ(result.counts.size(), 1U);
  EXPECT_EQ(result.counts.begin()->first, "1");
}

TEST(SimSampling, DynamicCircuitFallback) {
  // mid-circuit measurement + classical control: per-shot execution
  const auto qc = qasm::parse(R"(
OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
creg c[2];
h q[0];
measure q[0] -> c[0];
if (c == 1) x q[1];
measure q[1] -> c[1];
)");
  const SamplingResult result = sampleCircuit(qc, 400, 11);
  // outcomes are perfectly correlated: c = 00 or c = 11
  std::size_t total = 0;
  for (const auto& [bits, count] : result.counts) {
    EXPECT_TRUE(bits == "00" || bits == "11") << bits;
    total += count;
  }
  EXPECT_EQ(total, 400U);
  EXPECT_EQ(result.counts.size(), 2U);
}

TEST(SimSampling, ResetReusesQubit) {
  const auto qc = qasm::parse(R"(
OPENQASM 2.0;
include "qelib1.inc";
qreg q[1];
creg c[1];
x q[0];
reset q[0];
measure q[0] -> c[0];
)");
  const SamplingResult result = sampleCircuit(qc, 50, 5);
  ASSERT_EQ(result.counts.size(), 1U);
  EXPECT_EQ(result.counts.begin()->first, "0");
}

} // namespace
} // namespace qdd::sim
