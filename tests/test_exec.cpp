// Tests for the multi-core execution subsystem (qdd::exec): the
// work-stealing thread pool, deterministic batch simulation with per-worker
// DD packages, chunked parallel sampling, suite execution over circuit
// files, cooperative cancellation, and the portfolio equivalence checker.

#include "qdd/exec/Batch.hpp"
#include "qdd/exec/CancellationToken.hpp"
#include "qdd/exec/Portfolio.hpp"
#include "qdd/exec/ThreadPool.hpp"
#include "qdd/ir/Builders.hpp"
#include "qdd/verify/EquivalenceChecker.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#ifndef QDD_CIRCUITS_DIR
#error "QDD_CIRCUITS_DIR must be defined by the build system"
#endif

namespace qdd {
namespace {

const std::string CIRCUITS = QDD_CIRCUITS_DIR;

// --- ThreadPool ------------------------------------------------------------

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  exec::ThreadPool pool(4);
  EXPECT_EQ(pool.workerCount(), 4U);

  constexpr std::size_t numTasks = 100;
  std::vector<std::atomic<int>> hits(numTasks);
  pool.parallelFor(numTasks, [&](std::size_t task, std::size_t worker) {
    EXPECT_LT(worker, pool.workerCount());
    hits[task].fetch_add(1);
  });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }

  const auto stats = pool.stats();
  ASSERT_EQ(stats.executedPerWorker.size(), 4U);
  const std::size_t executed =
      std::accumulate(stats.executedPerWorker.begin(),
                      stats.executedPerWorker.end(), std::size_t{0});
  EXPECT_EQ(executed, numTasks);
}

TEST(ThreadPoolTest, ZeroWorkersPicksDefault) {
  exec::ThreadPool pool(0);
  EXPECT_EQ(pool.workerCount(), exec::ThreadPool::defaultWorkers());
  EXPECT_GE(exec::ThreadPool::defaultWorkers(), 1U);
}

TEST(ThreadPoolTest, EmptyBatchReturnsImmediately) {
  exec::ThreadPool pool(2);
  bool ran = false;
  pool.parallelFor(0, [&](std::size_t, std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, SupportsConsecutiveBatches) {
  exec::ThreadPool pool(2);
  for (int round = 0; round < 5; ++round) {
    std::atomic<std::size_t> count{0};
    pool.parallelFor(10, [&](std::size_t, std::size_t) { ++count; });
    EXPECT_EQ(count.load(), 10U);
  }
}

TEST(ThreadPoolTest, FirstExceptionPropagatesAndBatchCompletes) {
  exec::ThreadPool pool(2);
  std::atomic<std::size_t> completed{0};
  EXPECT_THROW(
      pool.parallelFor(20,
                       [&](std::size_t task, std::size_t) {
                         if (task == 7) {
                           throw std::runtime_error("task 7 failed");
                         }
                         ++completed;
                       }),
      std::runtime_error);
  // the batch ran to completion: every non-throwing task executed
  EXPECT_EQ(completed.load(), 19U);

  // the pool stays usable after an exception
  std::atomic<std::size_t> after{0};
  pool.parallelFor(5, [&](std::size_t, std::size_t) { ++after; });
  EXPECT_EQ(after.load(), 5U);
}

TEST(ThreadPoolTest, IdleWorkersStealFromABlockedSibling) {
  exec::ThreadPool pool(2);
  // Round-robin dealing puts the even task indices on worker 0's deque,
  // which it pops LIFO — so the highest even index runs first. Make that
  // task slow: worker 0 blocks on it while worker 1 drains its own deque
  // and then steals worker 0's backlog.
  constexpr std::size_t numTasks = 16;
  constexpr std::size_t slowTask = 14;
  std::vector<std::atomic<int>> hits(numTasks);
  pool.parallelFor(numTasks, [&](std::size_t task, std::size_t) {
    if (task == slowTask) {
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
    }
    hits[task].fetch_add(1);
  });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
  const auto stats = pool.stats();
  EXPECT_GT(stats.steals, 0U);
  // the non-blocked worker picked up more than its original deal of 8
  EXPECT_GT(stats.executedPerWorker[1], 8U);
}

// --- per-task seeds --------------------------------------------------------

// --- fork/join -------------------------------------------------------------

TEST(ThreadPoolTest, ForkJoinCompletesAllTasks) {
  exec::ThreadPool pool(4);
  std::atomic<int> done{0};
  exec::TaskGroup group;
  for (int k = 0; k < 32; ++k) {
    pool.fork(group, [&done] { ++done; });
  }
  pool.waitAndWork(group);
  EXPECT_EQ(done.load(), 32);
  EXPECT_EQ(group.pendingCount(), 0U);
  EXPECT_GE(pool.stats().forked, 32U);
}

TEST(ThreadPoolTest, NestedForkJoinOnOneWorkerDoesNotDeadlock) {
  // Regression: a pool task blocking on subtasks it forked would deadlock a
  // classic pool (the only worker waits for work only it could run).
  // waitAndWork is help-first, so the waiter executes the subtasks itself.
  exec::ThreadPool pool(1);
  std::atomic<int> leaves{0};
  exec::TaskGroup outer;
  pool.fork(outer, [&pool, &leaves] {
    exec::TaskGroup inner;
    for (int k = 0; k < 4; ++k) {
      pool.fork(inner, [&pool, &leaves] {
        exec::TaskGroup innermost;
        pool.fork(innermost, [&leaves] { ++leaves; });
        pool.waitAndWork(innermost);
      });
    }
    pool.waitAndWork(inner);
  });
  pool.waitAndWork(outer);
  EXPECT_EQ(leaves.load(), 4);
}

TEST(ThreadPoolTest, ForkJoinRethrowsFirstTaskException) {
  exec::ThreadPool pool(2);
  std::atomic<int> completed{0};
  exec::TaskGroup group;
  for (int k = 0; k < 8; ++k) {
    pool.fork(group, [&completed, k] {
      if (k == 3) {
        throw std::runtime_error("task 3 failed");
      }
      ++completed;
    });
  }
  EXPECT_THROW(pool.waitAndWork(group), std::runtime_error);
  // The join's postcondition holds even on failure: nothing left pending.
  EXPECT_EQ(group.pendingCount(), 0U);
  EXPECT_EQ(completed.load(), 7);
}

TEST(ThreadPoolTest, ExternalThreadHelpsWhileJoining) {
  // Pin the pool's only worker inside a blocker task (tasks only ever run
  // on workers or inside a waitAndWork, so once `started` is set the worker
  // is the thread in it). The 8 tasks forked afterwards can then only be
  // executed by the joining main thread — the external-helper path.
  exec::ThreadPool pool(1);
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  exec::TaskGroup blocker;
  pool.fork(blocker, [&started, &release] {
    started.store(true);
    while (!release.load()) {
      std::this_thread::yield();
    }
  });
  while (!started.load()) {
    std::this_thread::yield();
  }
  exec::TaskGroup group;
  std::atomic<int> done{0};
  for (int k = 0; k < 8; ++k) {
    pool.fork(group, [&done] { ++done; });
  }
  pool.waitAndWork(group);
  EXPECT_EQ(done.load(), 8);
  EXPECT_GE(pool.stats().helpedExternal, 8U);
  release.store(true);
  pool.waitAndWork(blocker);
}

TEST(ThreadPoolTest, TaskGroupIsReusableAfterJoin) {
  exec::ThreadPool pool(2);
  exec::TaskGroup group;
  std::atomic<int> count{0};
  for (int round = 0; round < 3; ++round) {
    for (int k = 0; k < 4; ++k) {
      pool.fork(group, [&count] { ++count; });
    }
    pool.waitAndWork(group);
  }
  EXPECT_EQ(count.load(), 12);
}

TEST(ExecTest, TaskSeedsAreDecorrelatedAndDeterministic) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    seen.insert(exec::taskSeed(42, i));
  }
  EXPECT_EQ(seen.size(), 1000U); // no collisions across task indices
  EXPECT_EQ(exec::taskSeed(42, 3), exec::taskSeed(42, 3));
  EXPECT_NE(exec::taskSeed(42, 3), exec::taskSeed(43, 3));
  EXPECT_NE(exec::taskSeed(0, 0), 0U); // user seed 0 still decorrelates
}

// --- batch simulation ------------------------------------------------------

TEST(ExecTest, BatchResultsAreIndependentOfWorkerCount) {
  std::vector<ir::QuantumComputation> circuits;
  for (std::size_t i = 0; i < 8; ++i) {
    circuits.push_back(ir::builders::qft(5));
  }
  exec::BatchOptions serial;
  serial.workers = 1;
  serial.seed = 42;
  serial.shots = 64;
  const auto a = exec::simulateBatch(circuits, serial);

  exec::BatchOptions parallel = serial;
  parallel.workers = 8;
  const auto b = exec::simulateBatch(circuits, parallel);

  ASSERT_EQ(a.circuits.size(), circuits.size());
  ASSERT_EQ(b.circuits.size(), circuits.size());
  EXPECT_EQ(a.workers, 1U);
  EXPECT_EQ(b.workers, 8U);
  for (std::size_t i = 0; i < circuits.size(); ++i) {
    EXPECT_TRUE(a.circuits[i].ok()) << a.circuits[i].error;
    EXPECT_TRUE(b.circuits[i].ok()) << b.circuits[i].error;
    // bit-identical per-task results: node counts and sampled histograms
    EXPECT_EQ(a.circuits[i].finalNodes, b.circuits[i].finalNodes);
    EXPECT_EQ(a.circuits[i].peakNodes, b.circuits[i].peakNodes);
    EXPECT_EQ(a.circuits[i].sampling.counts, b.circuits[i].sampling.counts);
    EXPECT_EQ(a.circuits[i].sampling.shots, 64U);
  }
}

TEST(ExecTest, BatchCapturesPerTaskFailuresWithoutAborting) {
  std::vector<ir::QuantumComputation> circuits;
  circuits.push_back(ir::builders::ghz(3));
  circuits.push_back(ir::QuantumComputation(0)); // unsimulatable: no qubits
  circuits.push_back(ir::builders::ghz(3));

  exec::BatchOptions options;
  options.workers = 2;
  const auto result = exec::simulateBatch(circuits, options);
  ASSERT_EQ(result.circuits.size(), 3U);
  EXPECT_TRUE(result.circuits[0].ok());
  EXPECT_FALSE(result.circuits[1].error.empty()); // captured, not fatal
  EXPECT_TRUE(result.circuits[2].ok());
  EXPECT_EQ(result.circuits[0].finalNodes, result.circuits[2].finalNodes);
  EXPECT_EQ(result.failures(), 1U);
}

TEST(ExecTest, BatchMergesWorkerStatistics) {
  std::vector<ir::QuantumComputation> circuits;
  for (std::size_t i = 0; i < 4; ++i) {
    circuits.push_back(ir::builders::qft(4));
  }
  exec::BatchOptions options;
  options.workers = 2;
  const auto result = exec::simulateBatch(circuits, options);
  // the merged registry reflects real work from every worker's package
  EXPECT_GT(result.stats.vectorTable.lookups, 0U);
  EXPECT_GT(result.stats.apply.total(), 0U);
}

TEST(ExecTest, PreCancelledBatchSkipsAllTasks) {
  std::vector<ir::QuantumComputation> circuits;
  for (std::size_t i = 0; i < 4; ++i) {
    circuits.push_back(ir::builders::qft(4));
  }
  exec::BatchOptions options;
  options.workers = 2;
  options.cancel.cancel();
  const auto result = exec::simulateBatch(circuits, options);
  ASSERT_EQ(result.circuits.size(), 4U);
  for (const auto& c : result.circuits) {
    EXPECT_TRUE(c.cancelled);
    EXPECT_FALSE(c.ok());
  }
}

// --- chunked parallel sampling ---------------------------------------------

TEST(ExecTest, ParallelSamplingIsDeterministicAcrossWorkerCounts) {
  const auto qc = ir::builders::qft(5);
  constexpr std::size_t shots = 2048; // four 512-shot chunks
  exec::BatchOptions serial;
  serial.workers = 1;
  serial.seed = 7;
  const auto a = exec::sampleParallel(qc, shots, serial);

  exec::BatchOptions parallel = serial;
  parallel.workers = 4;
  const auto b = exec::sampleParallel(qc, shots, parallel);

  EXPECT_EQ(a.shots, shots);
  EXPECT_EQ(a.counts, b.counts);
  std::size_t total = 0;
  for (const auto& [bits, n] : a.counts) {
    EXPECT_EQ(bits.size(), 5U);
    total += n;
  }
  EXPECT_EQ(total, shots);
}

TEST(ExecTest, ParallelSamplingHandlesPartialFinalChunk) {
  const auto qc = ir::builders::ghz(3);
  exec::BatchOptions options;
  options.workers = 2;
  options.seed = 1;
  const auto result = exec::sampleParallel(qc, 700, options); // 512 + 188
  std::size_t total = 0;
  for (const auto& [bits, n] : result.counts) {
    total += n;
  }
  EXPECT_EQ(total, 700U);
  // GHZ: only the all-zeros and all-ones outcomes occur
  EXPECT_LE(result.counts.size(), 2U);
}

// --- suite execution over circuit files ------------------------------------

TEST(ExecTest, CollectCircuitFilesSortsAndFilters) {
  const auto files = exec::collectCircuitFiles(CIRCUITS);
  ASSERT_GE(files.size(), 5U);
  EXPECT_TRUE(std::is_sorted(files.begin(), files.end()));
  for (const auto& f : files) {
    const bool qasm = f.size() > 5 && f.rfind(".qasm") == f.size() - 5;
    const bool real = f.size() > 5 && f.rfind(".real") == f.size() - 5;
    EXPECT_TRUE(qasm || real) << f;
  }
  EXPECT_THROW(exec::collectCircuitFiles(CIRCUITS + "/nonexistent"),
               std::runtime_error);
}

TEST(ExecTest, SuiteRunMatchesSerialAndCapturesBadFiles) {
  auto files = exec::collectCircuitFiles(CIRCUITS);
  files.push_back(CIRCUITS + "/nonexistent.qasm");

  exec::BatchOptions serial;
  serial.workers = 1;
  serial.seed = 5;
  const auto a = exec::runSuite(files, serial);

  exec::BatchOptions parallel = serial;
  parallel.workers = 4;
  const auto b = exec::runSuite(files, parallel);

  ASSERT_EQ(a.circuits.size(), files.size());
  ASSERT_EQ(b.circuits.size(), files.size());
  EXPECT_EQ(a.failures(), 1U); // only the nonexistent file fails
  EXPECT_EQ(b.failures(), 1U);
  for (std::size_t i = 0; i < files.size(); ++i) {
    EXPECT_EQ(a.circuits[i].name, b.circuits[i].name);
    EXPECT_EQ(a.circuits[i].finalNodes, b.circuits[i].finalNodes);
    EXPECT_EQ(a.circuits[i].error.empty(), b.circuits[i].error.empty());
  }
  EXPECT_FALSE(a.circuits.back().error.empty());
}

// --- cooperative cancellation ----------------------------------------------

TEST(ExecTest, CancellationTokenSharesStateAcrossCopies) {
  exec::CancellationToken token;
  exec::CancellationToken copy = token;
  EXPECT_FALSE(token.cancelled());
  copy.cancel();
  EXPECT_TRUE(token.cancelled());
  ASSERT_NE(token.flag(), nullptr);
  EXPECT_TRUE(token.flag()->load());
}

TEST(ExecTest, PreCancelledFlagStopsAlternatingCheckAtFirstGate) {
  const auto g1 = ir::builders::qft(4);
  const auto g2 = ir::decomposeToNativeGates(g1, true);
  const verify::EquivalenceChecker checker(g1, g2);

  Package pkg(4);
  std::atomic<bool> cancel{true};
  const auto result =
      checker.checkAlternating(pkg, verify::Strategy::Proportional, &cancel);
  EXPECT_TRUE(result.cancelled);
  EXPECT_EQ(result.gatesApplied, 0U);

  // without the flag the same check concludes
  Package fresh(4);
  const auto full =
      checker.checkAlternating(fresh, verify::Strategy::Proportional);
  EXPECT_FALSE(full.cancelled);
  EXPECT_TRUE(full.consideredEquivalent());
}

// --- portfolio equivalence checking ----------------------------------------

TEST(PortfolioTest, AgreesWithSerialCheckerOnEquivalentPair) {
  const auto g1 = ir::builders::qft(4);
  const auto g2 = ir::decomposeToNativeGates(g1, true);

  Package pkg(4);
  const auto serial =
      verify::EquivalenceChecker(g1, g2).checkAlternating(pkg);
  ASSERT_TRUE(serial.consideredEquivalent());

  const auto portfolio = exec::checkPortfolio(g1, g2);
  EXPECT_FALSE(portfolio.cancelled);
  EXPECT_EQ(portfolio.result.equivalence, serial.equivalence);
  EXPECT_FALSE(portfolio.winner.empty());
  // both alternating directions plus the simulation prover were raced
  ASSERT_EQ(portfolio.entries.size(), 3U);
  std::size_t conclusive = 0;
  for (const auto& entry : portfolio.entries) {
    EXPECT_FALSE(entry.name.empty());
    if (entry.conclusive) {
      ++conclusive;
      EXPECT_FALSE(entry.result.cancelled);
    }
  }
  EXPECT_GE(conclusive, 1U);
}

TEST(PortfolioTest, DetectsNonEquivalentPair) {
  const auto g1 = ir::builders::qft(4);
  auto g2 = ir::decomposeToNativeGates(g1, true);
  g2.x(0); // corrupt the compiled circuit

  const auto portfolio = exec::checkPortfolio(g1, g2);
  EXPECT_FALSE(portfolio.cancelled);
  EXPECT_EQ(portfolio.result.equivalence, verify::Equivalence::NotEquivalent);
}

TEST(PortfolioTest, HonorsStrategyAndSimulationOptions) {
  const auto g1 = ir::builders::qft(3);
  const auto g2 = ir::decomposeToNativeGates(g1, true);
  exec::PortfolioOptions options;
  options.includeSimulation = false;
  options.strategy = verify::Strategy::OneToOne;
  const auto portfolio = exec::checkPortfolio(g1, g2, options);
  ASSERT_EQ(portfolio.entries.size(), 2U); // no simulation entry
  EXPECT_TRUE(portfolio.result.consideredEquivalent());
}

TEST(PortfolioTest, CallerCancellationStopsTheWholePortfolio) {
  const auto g1 = ir::builders::qft(4);
  const auto g2 = ir::decomposeToNativeGates(g1, true);
  exec::PortfolioOptions options;
  options.cancel.cancel(); // fired before the race starts
  const auto portfolio = exec::checkPortfolio(g1, g2, options);
  EXPECT_TRUE(portfolio.cancelled);
  EXPECT_TRUE(portfolio.winner.empty());
  for (const auto& entry : portfolio.entries) {
    EXPECT_FALSE(entry.conclusive);
  }
}

} // namespace
} // namespace qdd
