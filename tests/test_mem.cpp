// Tests for the memory & table subsystem: the chunked MemoryManager with
// generation stamping, growable unique/real tables, generation-stamped
// compute caches surviving garbage collection, and package shrinking.

#include "qdd/dd/ComputeTable.hpp"
#include "qdd/dd/Package.hpp"
#include "qdd/mem/MemoryManager.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <complex>
#include <vector>

namespace qdd {
namespace {

TEST(MemManager, RecyclesThroughFreeList) {
  mem::MemoryManager<vNode> mgr(4);
  vNode* a = mgr.get();
  vNode* b = mgr.get();
  EXPECT_NE(a, b);
  EXPECT_EQ(mgr.live(), 2U);
  EXPECT_EQ(a->gen, 0U);

  mgr.release(a);
  EXPECT_EQ(a->gen, mem::FREED_GENERATION);
  EXPECT_EQ(mgr.live(), 1U);

  // LIFO free list: the freed object is handed out again first.
  vNode* c = mgr.get();
  EXPECT_EQ(c, a);
  EXPECT_EQ(c->gen, 0U);
  EXPECT_EQ(mgr.live(), 2U);
}

TEST(MemManager, GenerationStampsNewAllocations) {
  mem::MemoryManager<vNode> mgr(4);
  vNode* a = mgr.get();
  EXPECT_EQ(a->gen, 0U);
  mgr.release(a);
  mgr.setGeneration(3);
  EXPECT_EQ(mgr.generation(), 3U);
  vNode* b = mgr.get();
  EXPECT_EQ(b, a); // recycled...
  EXPECT_EQ(b->gen, 3U); // ...but stamped with the new generation
}

TEST(MemManager, ChunksGrowAndStatsTrack) {
  mem::MemoryManager<vNode> mgr(2);
  std::vector<vNode*> nodes;
  for (int k = 0; k < 7; ++k) {
    nodes.push_back(mgr.get());
  }
  const auto s = mgr.stats();
  EXPECT_EQ(s.live, 7U);
  EXPECT_EQ(s.peakLive, 7U);
  // chunk sizes double: 2 + 4 + 8 slots over three chunks
  EXPECT_EQ(s.chunks, 3U);
  EXPECT_EQ(s.allocated, 14U);
  EXPECT_EQ(s.bytes, 14U * sizeof(vNode));
  for (vNode* n : nodes) {
    mgr.release(n);
  }
  EXPECT_EQ(mgr.live(), 0U);
  EXPECT_EQ(mgr.peak(), 7U);
}

TEST(MemComputeTable, RejectsFreedAndRecycledPointers) {
  mem::MemoryManager<vNode> mgr(8);
  ComputeTable<vNode*, vNode*, ComplexValue, (1U << 4U)> ct;

  vNode* n = mgr.get();
  ct.insert(n, n, ComplexValue{0.5, 0.}, /*generation=*/0);
  const ComplexValue* hit = ct.lookup(n, n);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->re, 0.5);
  EXPECT_EQ(ct.hits(), 1U);

  // Freed operand: the slot's key still matches the pointer, but the
  // FREED_GENERATION stamp invalidates the entry.
  mgr.release(n);
  EXPECT_EQ(ct.lookup(n, n), nullptr);
  EXPECT_EQ(ct.staleRejections(), 1U);

  // Recycled pointer in a newer epoch: same address, newer generation —
  // the pre-GC entry must not be served for the new node.
  mgr.setGeneration(1);
  vNode* reused = mgr.get();
  ASSERT_EQ(reused, n);
  EXPECT_EQ(ct.lookup(reused, reused), nullptr);
  EXPECT_EQ(ct.staleRejections(), 2U);

  // A fresh entry for the recycled node is served normally.
  ct.insert(reused, reused, ComplexValue{0.25, 0.}, /*generation=*/1);
  const ComplexValue* fresh = ct.lookup(reused, reused);
  ASSERT_NE(fresh, nullptr);
  EXPECT_EQ(fresh->re, 0.25);
}

TEST(MemUniqueTable, LevelBucketsRehash) {
  // > INITIAL_BUCKETS distinct nodes at one level force a bucket doubling.
  Package pkg(1);
  std::vector<vEdge> keep;
  const std::size_t count = UniqueTable<vNode>::INITIAL_BUCKETS + 32;
  keep.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    const double x = 1e-4 + static_cast<double>(k) * 1e-3;
    const double norm = std::sqrt(1. + x * x);
    const vEdge state =
        pkg.makeStateFromVector({{1. / norm, 0.}, {x / norm, 0.}});
    pkg.incRef(state);
    keep.push_back(state);
  }
  const auto s = pkg.statistics().vectorTable;
  EXPECT_GT(s.entries, UniqueTable<vNode>::INITIAL_BUCKETS);
  EXPECT_GE(s.rehashes, 1U);
  EXPECT_GT(s.buckets, UniqueTable<vNode>::INITIAL_BUCKETS);
  EXPECT_GE(s.longestChain, 1U);

  // canonicity is preserved across the rehash
  const vEdge again = pkg.makeStateFromVector(
      {{1. / std::sqrt(1. + 1e-8), 0.},
       {1e-4 / std::sqrt(1. + 1e-8), 0.}});
  EXPECT_EQ(again.p, keep.front().p);
}

TEST(MemRealTable, BucketsRehash) {
  RealTable table;
  const std::size_t count = 3000; // > initial bucket count (2048)
  for (std::size_t k = 0; k < count; ++k) {
    (void)table.lookup(1e-3 + static_cast<double>(k) * 1e-5);
  }
  EXPECT_EQ(table.size(), count);
  EXPECT_GE(table.rehashes(), 1U);
  EXPECT_GT(table.bucketCount(), 2048U);
  // canonicity preserved across the rehash
  RealTable::Entry* a = table.lookup(1e-3);
  RealTable::Entry* b = table.lookup(1e-3);
  EXPECT_EQ(a, b);
  EXPECT_EQ(table.size(), count);
}

TEST(MemGcCache, WarmEntriesSurviveCollection) {
  Package pkg(2);
  vEdge state = pkg.makeZeroState(2);
  pkg.incRef(state);
  const mEdge h = pkg.makeGateDD(H_MAT, 2, 0);
  pkg.incRef(h);
  const vEdge r1 = pkg.multiply(h, state);
  pkg.incRef(r1);

  const auto before = *pkg.statistics().computeTable("multiplyMatVec");
  ASSERT_TRUE(pkg.garbageCollect(true));
  // Operands and result all survived the collection, so the memoized entry
  // must still be served — no recomputation, no stale rejection.
  const vEdge r2 = pkg.multiply(h, state);
  const auto after = *pkg.statistics().computeTable("multiplyMatVec");
  EXPECT_EQ(r2.p, r1.p);
  EXPECT_GT(after.hits, before.hits);
  EXPECT_EQ(after.inserts, before.inserts);
}

TEST(MemGcCache, InterleavedOpsWithForcedCollectionStayCorrect) {
  // Interleaves multiply/add with forced collections so transient nodes are
  // recycled while cache entries referencing them linger, then checks the
  // final state numerically. An even number of H applications per qubit
  // returns |00> to itself.
  Package pkg(2);
  vEdge state = pkg.makeZeroState(2);
  pkg.incRef(state);
  const std::array<mEdge, 2> gates{pkg.makeGateDD(H_MAT, 2, 0),
                                   pkg.makeGateDD(H_MAT, 2, 1)};
  for (const auto& g : gates) {
    pkg.incRef(g);
  }
  for (int round = 0; round < 16; ++round) {
    const vEdge next = pkg.multiply(gates[round % 2], state);
    pkg.incRef(next);
    pkg.decRef(state);
    state = next;
    // transient sum, never referenced: becomes garbage immediately
    (void)pkg.add(state, state);
    ASSERT_TRUE(pkg.garbageCollect(true));
  }
  const auto vec = pkg.getVector(state);
  EXPECT_NEAR(vec[0].real(), 1., 1e-9);
  for (std::size_t k = 1; k < vec.size(); ++k) {
    EXPECT_NEAR(std::abs(vec[k]), 0., 1e-9);
  }
  const auto gc = pkg.statistics().gc;
  EXPECT_GE(gc.runs, 16U);
  EXPECT_GE(gc.generation, 16U);
}

TEST(MemShrink, ReleasesRemovedLevels) {
  Package pkg(6);
  (void)pkg.makeIdent(6);     // pins identities up to level 6
  (void)pkg.makeGHZState(6);  // unreferenced: garbage at levels 0..5
  vEdge keep = pkg.makeZeroState(2);
  pkg.incRef(keep);

  const auto before = pkg.statistics();
  EXPECT_EQ(before.vectorTable.levels, 6U);

  pkg.shrink(2);
  const auto after = pkg.statistics();
  EXPECT_EQ(pkg.qubits(), 2U);
  EXPECT_EQ(after.vectorTable.levels, 2U);
  EXPECT_EQ(after.matrixTable.levels, 2U);
  EXPECT_LT(after.matrixTable.entries, before.matrixTable.entries);
  EXPECT_GT(after.gc.generation, before.gc.generation);

  // the kept 2-qubit state is intact and the package is still usable
  EXPECT_NEAR(pkg.norm(keep), 1., 1e-12);
  const mEdge h = pkg.makeGateDD(H_MAT, 2, 1);
  const vEdge plus = pkg.multiply(h, keep);
  EXPECT_NEAR(pkg.norm(plus), 1., 1e-12);
  // growing again after a shrink works too
  pkg.resize(4);
  EXPECT_NEAR(pkg.norm(pkg.makeGHZState(4)), 1., 1e-12);
}

TEST(MemShrink, NoOpWhenNotSmaller) {
  Package pkg(3);
  vEdge keep = pkg.makeGHZState(3);
  pkg.incRef(keep);
  const auto gen = pkg.gcGeneration();
  pkg.shrink(3);
  pkg.shrink(5);
  EXPECT_EQ(pkg.qubits(), 3U);
  EXPECT_EQ(pkg.gcGeneration(), gen);
  EXPECT_NEAR(pkg.norm(keep), 1., 1e-12);
}

} // namespace
} // namespace qdd
