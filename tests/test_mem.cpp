// Tests for the memory & table subsystem: the chunked MemoryManager with
// generation stamping, growable unique/real tables, generation-stamped
// compute caches surviving garbage collection, and package shrinking.

#include "qdd/dd/ComputeTable.hpp"
#include "qdd/dd/Package.hpp"
#include "qdd/mem/MemoryManager.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <complex>
#include <vector>

namespace qdd {
namespace {

TEST(MemManager, RecyclesThroughFreeList) {
  mem::MemoryManager<vNode> mgr(4);
  vNode* a = mgr.get();
  vNode* b = mgr.get();
  EXPECT_NE(a, b);
  EXPECT_EQ(mgr.live(), 2U);
  EXPECT_EQ(a->gen, 0U);

  mgr.release(a);
  EXPECT_EQ(a->gen, mem::FREED_GENERATION);
  EXPECT_EQ(mgr.live(), 1U);

  // LIFO free list: the freed object is handed out again first.
  vNode* c = mgr.get();
  EXPECT_EQ(c, a);
  EXPECT_EQ(c->gen, 0U);
  EXPECT_EQ(mgr.live(), 2U);
}

TEST(MemManager, GenerationStampsNewAllocations) {
  mem::MemoryManager<vNode> mgr(4);
  vNode* a = mgr.get();
  EXPECT_EQ(a->gen, 0U);
  mgr.release(a);
  mgr.setGeneration(3);
  EXPECT_EQ(mgr.generation(), 3U);
  vNode* b = mgr.get();
  EXPECT_EQ(b, a); // recycled...
  EXPECT_EQ(b->gen, 3U); // ...but stamped with the new generation
}

TEST(MemManager, ChunksGrowAndStatsTrack) {
  mem::MemoryManager<vNode> mgr(2);
  std::vector<vNode*> nodes;
  for (int k = 0; k < 7; ++k) {
    nodes.push_back(mgr.get());
  }
  const auto s = mgr.stats();
  EXPECT_EQ(s.live, 7U);
  EXPECT_EQ(s.peakLive, 7U);
  // chunk sizes double: 2 + 4 + 8 slots over three chunks
  EXPECT_EQ(s.chunks, 3U);
  EXPECT_EQ(s.allocated, 14U);
  EXPECT_EQ(s.bytes, 14U * sizeof(vNode));
  for (vNode* n : nodes) {
    mgr.release(n);
  }
  EXPECT_EQ(mgr.live(), 0U);
  EXPECT_EQ(mgr.peak(), 7U);
}

TEST(MemComputeTable, RejectsFreedAndRecycledPointers) {
  mem::MemoryManager<vNode> mgr(8);
  ComputeTable<vNode*, vNode*, ComplexValue, (1U << 4U)> ct;

  vNode* n = mgr.get();
  ct.insert(n, n, ComplexValue{0.5, 0.}, /*generation=*/0);
  ComplexValue hit;
  ASSERT_TRUE(ct.lookup(n, n, hit));
  EXPECT_EQ(hit.re, 0.5);
  EXPECT_EQ(ct.hits(), 1U);

  // The package protocol advances the allocation generation (and publishes
  // it as the table's freshness epoch) BEFORE any published object may be
  // freed; entries stamped with the current epoch skip the per-pointer scan.
  // Follow that protocol here: open generation 1 first, then free.
  mgr.setGeneration(1);
  ct.setEpoch(1);

  // Freed operand: the slot's key still matches the pointer, but the
  // FREED_GENERATION stamp invalidates the entry.
  mgr.release(n);
  ComplexValue miss;
  EXPECT_FALSE(ct.lookup(n, n, miss));
  EXPECT_EQ(ct.staleRejections(), 1U);

  // Recycled pointer in a newer epoch: same address, newer generation —
  // the pre-GC entry must not be served for the new node.
  vNode* reused = mgr.get();
  ASSERT_EQ(reused, n);
  EXPECT_FALSE(ct.lookup(reused, reused, miss));
  EXPECT_EQ(ct.staleRejections(), 2U);

  // A fresh entry for the recycled node is served normally.
  ct.insert(reused, reused, ComplexValue{0.25, 0.}, /*generation=*/1);
  ComplexValue fresh;
  ASSERT_TRUE(ct.lookup(reused, reused, fresh));
  EXPECT_EQ(fresh.re, 0.25);
}

TEST(MemUniqueTable, LevelBucketsRehash) {
  // > INITIAL_BUCKETS distinct nodes at one level force a bucket doubling.
  Package pkg(1);
  std::vector<vEdge> keep;
  const std::size_t count = UniqueTable<vNode>::INITIAL_BUCKETS + 32;
  keep.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    const double x = 1e-4 + static_cast<double>(k) * 1e-3;
    const double norm = std::sqrt(1. + x * x);
    const vEdge state =
        pkg.makeStateFromVector({{1. / norm, 0.}, {x / norm, 0.}});
    pkg.incRef(state);
    keep.push_back(state);
  }
  const auto s = pkg.statistics().vectorTable;
  EXPECT_GT(s.entries, UniqueTable<vNode>::INITIAL_BUCKETS);
  EXPECT_GE(s.rehashes, 1U);
  EXPECT_GT(s.buckets, UniqueTable<vNode>::INITIAL_BUCKETS);
  EXPECT_GE(s.longestChain, 1U);

  // canonicity is preserved across the rehash
  const vEdge again = pkg.makeStateFromVector(
      {{1. / std::sqrt(1. + 1e-8), 0.},
       {1e-4 / std::sqrt(1. + 1e-8), 0.}});
  EXPECT_EQ(again.p, keep.front().p);
}

TEST(MemRealTable, BucketsRehash) {
  RealTable table;
  const std::size_t count = 3000; // > initial bucket count (2048)
  for (std::size_t k = 0; k < count; ++k) {
    (void)table.lookup(1e-3 + static_cast<double>(k) * 1e-5);
  }
  EXPECT_EQ(table.size(), count);
  EXPECT_GE(table.rehashes(), 1U);
  EXPECT_GT(table.bucketCount(), 2048U);
  // canonicity preserved across the rehash
  RealTable::Entry* a = table.lookup(1e-3);
  RealTable::Entry* b = table.lookup(1e-3);
  EXPECT_EQ(a, b);
  EXPECT_EQ(table.size(), count);
}

TEST(MemGcCache, WarmEntriesSurviveCollection) {
  Package pkg(2);
  vEdge state = pkg.makeZeroState(2);
  pkg.incRef(state);
  const mEdge h = pkg.makeGateDD(H_MAT, 2, 0);
  pkg.incRef(h);
  const vEdge r1 = pkg.multiply(h, state);
  pkg.incRef(r1);

  const auto before = *pkg.statistics().computeTable("multiplyMatVec");
  ASSERT_TRUE(pkg.garbageCollect(true));
  // Operands and result all survived the collection, so the memoized entry
  // must still be served — no recomputation, no stale rejection.
  const vEdge r2 = pkg.multiply(h, state);
  const auto after = *pkg.statistics().computeTable("multiplyMatVec");
  EXPECT_EQ(r2.p, r1.p);
  EXPECT_GT(after.hits, before.hits);
  EXPECT_EQ(after.inserts, before.inserts);
}

TEST(MemGcCache, InterleavedOpsWithForcedCollectionStayCorrect) {
  // Interleaves multiply/add with forced collections so transient nodes are
  // recycled while cache entries referencing them linger, then checks the
  // final state numerically. An even number of H applications per qubit
  // returns |00> to itself.
  Package pkg(2);
  vEdge state = pkg.makeZeroState(2);
  pkg.incRef(state);
  const std::array<mEdge, 2> gates{pkg.makeGateDD(H_MAT, 2, 0),
                                   pkg.makeGateDD(H_MAT, 2, 1)};
  for (const auto& g : gates) {
    pkg.incRef(g);
  }
  for (int round = 0; round < 16; ++round) {
    const vEdge next = pkg.multiply(gates[round % 2], state);
    pkg.incRef(next);
    pkg.decRef(state);
    state = next;
    // transient sum, never referenced: becomes garbage immediately
    (void)pkg.add(state, state);
    ASSERT_TRUE(pkg.garbageCollect(true));
  }
  const auto vec = pkg.getVector(state);
  EXPECT_NEAR(vec[0].real(), 1., 1e-9);
  for (std::size_t k = 1; k < vec.size(); ++k) {
    EXPECT_NEAR(std::abs(vec[k]), 0., 1e-9);
  }
  const auto gc = pkg.statistics().gc;
  EXPECT_GE(gc.runs, 16U);
  EXPECT_GE(gc.generation, 16U);
}

TEST(MemShrink, ReleasesRemovedLevels) {
  Package pkg(6);
  (void)pkg.makeGateDD(H_MAT, 6, 5);  // puts a matrix node at level 5
  (void)pkg.makeGHZState(6);          // unreferenced: garbage at levels 0..5
  vEdge keep = pkg.makeZeroState(2);
  pkg.incRef(keep);

  const auto before = pkg.statistics();
  EXPECT_EQ(before.vectorTable.levels, 6U);

  pkg.shrink(2);
  const auto after = pkg.statistics();
  EXPECT_EQ(pkg.qubits(), 2U);
  EXPECT_EQ(after.vectorTable.levels, 2U);
  EXPECT_EQ(after.matrixTable.levels, 2U);
  EXPECT_LT(after.matrixTable.entries, before.matrixTable.entries);
  EXPECT_GT(after.gc.generation, before.gc.generation);

  // the kept 2-qubit state is intact and the package is still usable
  EXPECT_NEAR(pkg.norm(keep), 1., 1e-12);
  const mEdge h = pkg.makeGateDD(H_MAT, 2, 1);
  const vEdge plus = pkg.multiply(h, keep);
  EXPECT_NEAR(pkg.norm(plus), 1., 1e-12);
  // growing again after a shrink works too
  pkg.resize(4);
  EXPECT_NEAR(pkg.norm(pkg.makeGHZState(4)), 1., 1e-12);
}

TEST(MemShrink, NoOpWhenNotSmaller) {
  Package pkg(3);
  vEdge keep = pkg.makeGHZState(3);
  pkg.incRef(keep);
  const auto gen = pkg.gcGeneration();
  pkg.shrink(3);
  pkg.shrink(5);
  EXPECT_EQ(pkg.qubits(), 3U);
  EXPECT_EQ(pkg.gcGeneration(), gen);
  EXPECT_NEAR(pkg.norm(keep), 1., 1e-12);
}

// --- StatsRegistry::merge (the aggregation step after a parallel batch) ----

TEST(MemStatsMerge, SumsCountersAndMaxesStructuralFields) {
  mem::StatsRegistry a;
  a.vectorTable.entries = 10;
  a.vectorTable.lookups = 100;
  a.vectorTable.hits = 60;
  a.vectorTable.longestChain = 3;
  a.vectorTable.levels = 4;
  a.vectorTable.memory.bytes = 1024;
  a.apply.diagonal = 5;
  a.apply.fallback = 1;
  a.gc.runs = 2;
  a.gc.generation = 7;

  mem::StatsRegistry b;
  b.vectorTable.entries = 4;
  b.vectorTable.lookups = 50;
  b.vectorTable.hits = 10;
  b.vectorTable.longestChain = 6;
  b.vectorTable.levels = 2;
  b.vectorTable.memory.bytes = 512;
  b.apply.diagonal = 2;
  b.apply.permutation = 3;
  b.gc.runs = 1;
  b.gc.generation = 3;

  a.merge(b);
  EXPECT_EQ(a.vectorTable.entries, 14U);
  EXPECT_EQ(a.vectorTable.lookups, 150U);
  EXPECT_EQ(a.vectorTable.hits, 70U);
  EXPECT_EQ(a.vectorTable.longestChain, 6U); // max, not sum
  EXPECT_EQ(a.vectorTable.levels, 4U);       // max, not sum
  EXPECT_EQ(a.vectorTable.memory.bytes, 1536U);
  EXPECT_EQ(a.apply.diagonal, 7U);
  EXPECT_EQ(a.apply.permutation, 3U);
  EXPECT_EQ(a.apply.fallback, 1U);
  EXPECT_EQ(a.gc.runs, 3U);
  EXPECT_EQ(a.gc.generation, 7U); // per-package epoch: max, not sum
}

TEST(MemStatsMerge, MatchesComputeTablesByNameAndAppendsUnknown) {
  mem::StatsRegistry a;
  a.computeTables.push_back({"mul", 100, 40, 60, 2});
  a.computeTables.push_back({"add", 10, 5, 5, 0});

  mem::StatsRegistry b;
  b.computeTables.push_back({"add", 30, 15, 15, 1});
  b.computeTables.push_back({"kron", 7, 0, 7, 0});

  a.merge(b);
  ASSERT_EQ(a.computeTables.size(), 3U);
  const auto* mul = a.computeTable("mul");
  ASSERT_NE(mul, nullptr);
  EXPECT_EQ(mul->lookups, 100U); // untouched: no "mul" in b
  const auto* add = a.computeTable("add");
  ASSERT_NE(add, nullptr);
  EXPECT_EQ(add->lookups, 40U);
  EXPECT_EQ(add->hits, 20U);
  EXPECT_EQ(add->staleRejections, 1U);
  const auto* kron = a.computeTable("kron");
  ASSERT_NE(kron, nullptr); // unknown name appended
  EXPECT_EQ(kron->inserts, 7U);
}

TEST(MemStatsMerge, OrderIndependentTotalsFromRealPackages) {
  // Merging real per-worker snapshots in either order yields the same
  // aggregate — the determinism contract of parallel batch statistics.
  Package p1(3);
  p1.incRef(p1.makeGHZState(3));
  Package p2(3);
  p2.incRef(p2.makeBasisState(3, {true, false, true}));
  p2.garbageCollect(true);

  mem::StatsRegistry ab = p1.statistics();
  ab.merge(p2.statistics());
  mem::StatsRegistry ba = p2.statistics();
  ba.merge(p1.statistics());

  EXPECT_EQ(ab.vectorTable.lookups, ba.vectorTable.lookups);
  EXPECT_EQ(ab.vectorTable.entries, ba.vectorTable.entries);
  EXPECT_EQ(ab.reals.entries, ba.reals.entries);
  EXPECT_EQ(ab.gc.runs, ba.gc.runs);
  EXPECT_EQ(ab.gc.generation, ba.gc.generation);
  EXPECT_EQ(ab.computeTotals().lookups, ba.computeTotals().lookups);
  EXPECT_EQ(ab.pressure().vectorNodes, ba.pressure().vectorNodes);
  // and the merge is reflected in the serialized form as well
  EXPECT_EQ(ab.toJson(false).size(), ba.toJson(false).size());
}

} // namespace
} // namespace qdd
