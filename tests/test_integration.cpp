// End-to-end integration tests over the sample circuit files shipped in
// examples/circuits/: parsing, simulation, verification, and the tool
// pipeline from file to exported diagram.

#include "qdd/baseline/DenseSimulator.hpp"
#include "qdd/bridge/DDBuilder.hpp"
#include "qdd/ir/Builders.hpp"
#include "qdd/parser/qasm/Parser.hpp"
#include "qdd/parser/real/RealParser.hpp"
#include "qdd/sim/SimulationSession.hpp"
#include "qdd/verify/EquivalenceChecker.hpp"
#include "qdd/viz/DotExporter.hpp"
#include "qdd/viz/TextDump.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#ifndef QDD_CIRCUITS_DIR
#error "QDD_CIRCUITS_DIR must be defined by the build system"
#endif

namespace qdd {
namespace {

const std::string CIRCUITS = QDD_CIRCUITS_DIR;

TEST(Integration, BellQasmFile) {
  const auto qc = qasm::parseFile(CIRCUITS + "/bell.qasm");
  EXPECT_EQ(qc.numQubits(), 2U);
  EXPECT_EQ(qc.name(), "bell");
  const auto result = sim::sampleCircuit(qc, 1000, 5);
  ASSERT_EQ(result.counts.size(), 2U);
  EXPECT_TRUE(result.counts.contains("00"));
  EXPECT_TRUE(result.counts.contains("11"));
}

TEST(Integration, QftFileMatchesBuilder) {
  const auto fromFile = qasm::parseFile(CIRCUITS + "/qft3.qasm");
  const auto fromBuilder = ir::builders::qft(3);
  Package pkg(3);
  const verify::EquivalenceChecker checker(fromFile, fromBuilder);
  EXPECT_EQ(checker.checkByConstruction(pkg).equivalence,
            verify::Equivalence::Equivalent);
}

TEST(Integration, HandWrittenCompiledQftReproducesEx12) {
  const auto qft = qasm::parseFile(CIRCUITS + "/qft3.qasm");
  const auto compiled = qasm::parseFile(CIRCUITS + "/qft3_compiled.qasm");
  Package pkg(3);
  const verify::EquivalenceChecker checker(qft, compiled);
  const auto result =
      checker.checkAlternating(pkg, verify::Strategy::BarrierSync);
  EXPECT_EQ(result.equivalence, verify::Equivalence::Equivalent);
  EXPECT_LE(result.maxNodes, 9U); // paper Ex. 12
}

TEST(Integration, TeleportationDeliversPayload) {
  const auto qc = qasm::parseFile(CIRCUITS + "/teleport.qasm");
  ASSERT_EQ(qc.numQubits(), 3U);
  // expected payload: ry(0.9) rz(0.4) |0>
  ir::QuantumComputation payload(1);
  payload.ry(0.9, 0);
  payload.rz(0.4, 0);
  baseline::DenseStateVector expected(1);
  expected.run(payload);
  const auto a = expected.amplitudes();

  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    Package pkg(3);
    sim::SimulationSession session(qc, pkg, seed);
    while (session.stepForward()) {
    }
    // after teleportation q0 carries the payload; q1, q2 are classical
    const auto vec = pkg.getVector(session.state());
    std::uint64_t base = 0; // index with q0 = 0 holding the amplitude mass
    double best = -1.;
    for (std::uint64_t idx = 0; idx < 8; idx += 2) {
      const double mass = std::norm(vec[idx]) + std::norm(vec[idx | 1ULL]);
      if (mass > best) {
        best = mass;
        base = idx;
      }
    }
    // fidelity between (vec[base], vec[base+1]) and the payload, up to a
    // global phase
    const std::complex<double> ip =
        std::conj(vec[base]) * a[0] + std::conj(vec[base | 1ULL]) * a[1];
    EXPECT_NEAR(std::abs(ip), 1., 1e-9) << "seed " << seed;
  }
}

TEST(Integration, ToffoliRealFileAgainstDense) {
  const auto qc = real::parseFile(CIRCUITS + "/toffoli.real");
  EXPECT_EQ(qc.numQubits(), 3U);
  Package pkg(3);
  const mEdge u = bridge::buildFunctionality(qc, pkg);
  baseline::DenseUnitary dense(3);
  dense.run(qc);
  const auto mat = pkg.getMatrix(u);
  const auto& expected = dense.matrix();
  for (std::size_t k = 0; k < mat.size(); ++k) {
    EXPECT_NEAR(std::abs(mat[k] - expected[k]), 0., 1e-10);
  }
  // reversible circuits map basis states to basis states: permutation matrix
  for (std::size_t c = 0; c < 8; ++c) {
    double colSum = 0.;
    for (std::size_t r = 0; r < 8; ++r) {
      colSum += std::abs(mat[r * 8 + c]);
    }
    EXPECT_NEAR(colSum, 1., 1e-10);
  }
}

TEST(Integration, FileToDiagramPipeline) {
  // the qdd-tool "show" pipeline: parse -> build -> export
  const auto qc = qasm::parseFile(CIRCUITS + "/qft3.qasm");
  Package pkg(3);
  const mEdge u = bridge::buildFunctionality(qc, pkg);
  const viz::Graph g = viz::buildGraph(u);
  EXPECT_EQ(g.nodes.size(), 21U);
  const std::string dot = viz::DotExporter().toDot(g);
  EXPECT_NE(dot.find("q2"), std::string::npos);
  const std::string omega = viz::formatMatrixOmega(pkg.getMatrix(u), 3);
  EXPECT_NE(omega.find("w = e^(i*pi/4)"), std::string::npos);
}

TEST(Integration, DumpedBuilderCircuitsReparse) {
  // every builder circuit survives a dump/parse round trip semantically
  const std::vector<ir::QuantumComputation> circuits = {
      ir::builders::bell(),         ir::builders::ghz(4),
      ir::builders::qft(4),         ir::builders::wState(4),
      ir::builders::grover(3, 5),   ir::builders::bernsteinVazirani(3, 5),
      ir::builders::randomCliffordT(4, 30, 2),
  };
  for (const auto& qc : circuits) {
    const auto reparsed = qasm::parse(qc.toOpenQASM(), qc.name());
    ASSERT_EQ(reparsed.numQubits(), qc.numQubits()) << qc.name();
    Package pkg(qc.numQubits());
    const verify::EquivalenceChecker checker(qc, reparsed);
    EXPECT_EQ(checker.checkByConstruction(pkg).equivalence,
              verify::Equivalence::Equivalent)
        << qc.name();
  }
}

TEST(Integration, GarbageCollectionUnderSustainedLoad) {
  // long-running session with frequent forced collections stays correct
  const std::size_t n = 8;
  Package pkg(n);
  vEdge state = pkg.makeZeroState(n);
  pkg.incRef(state);
  std::mt19937_64 rng(3);
  const auto qc = ir::builders::randomCliffordT(n, 400, 12);
  std::size_t step = 0;
  for (const auto& op : qc) {
    const mEdge gate = bridge::getDD(*op, n, pkg);
    const vEdge next = pkg.multiply(gate, state);
    pkg.incRef(next);
    pkg.decRef(state);
    state = next;
    if (++step % 10 == 0) {
      pkg.garbageCollect(true);
    }
  }
  EXPECT_NEAR(pkg.norm(state), 1., 1e-9);
  baseline::DenseStateVector dense(n);
  dense.run(qc);
  const auto vec = pkg.getVector(state);
  for (std::size_t k = 0; k < vec.size(); ++k) {
    EXPECT_NEAR(std::abs(vec[k] - dense.amplitudes()[k]), 0., 1e-8);
  }
}

} // namespace
} // namespace qdd
