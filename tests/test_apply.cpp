#include "qdd/baseline/DenseSimulator.hpp"
#include "qdd/dd/GateMatrix.hpp"
#include "qdd/dd/Package.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <complex>
#include <random>
#include <string>
#include <vector>

// Cross-validation of the direct gate-application kernels
// (Package::applyGate / applySwap) against the general makeGateDD + multiply
// path and the dense reference simulator. The fast and general paths must
// agree *bit-identically* — same root node pointer, same canonical weight —
// because both funnel through the same normalization and weight table; this
// is what lets benches compare the two modes structurally.

namespace qdd {
namespace {

constexpr double EPS = 1e-10;

struct NamedGate {
  std::string name;
  GateMatrix mat;
};

std::vector<NamedGate> standardGates(std::mt19937_64& rng) {
  std::uniform_real_distribution<double> angle(-2. * PI, 2. * PI);
  std::vector<NamedGate> gates{
      {"I", I_MAT},    {"H", H_MAT},     {"X", X_MAT},
      {"Y", Y_MAT},    {"Z", Z_MAT},     {"S", S_MAT},
      {"Sdg", SDG_MAT}, {"T", T_MAT},    {"Tdg", TDG_MAT},
      {"SX", SX_MAT},  {"SXdg", SXDG_MAT}};
  gates.push_back({"P", phaseMatrix(angle(rng))});
  gates.push_back({"RX", rxMatrix(angle(rng))});
  gates.push_back({"RY", ryMatrix(angle(rng))});
  gates.push_back({"RZ", rzMatrix(angle(rng))});
  gates.push_back({"U2", u2Matrix(angle(rng), angle(rng))});
  gates.push_back({"U3", u3Matrix(angle(rng), angle(rng), angle(rng))});
  return gates;
}

std::vector<std::complex<double>> randomAmplitudes(std::size_t n,
                                                   std::mt19937_64& rng) {
  std::normal_distribution<double> dist(0., 1.);
  std::vector<std::complex<double>> amps(1ULL << n);
  double norm = 0.;
  for (auto& a : amps) {
    a = {dist(rng), dist(rng)};
    norm += std::norm(a);
  }
  const double scale = 1. / std::sqrt(norm);
  for (auto& a : amps) {
    a *= scale;
  }
  return amps;
}

/// Sparse stimuli (zero-stub branches) exercise the kernel's zero handling,
/// which fully dense random states never reach.
std::vector<std::complex<double>> sparseAmplitudes(std::size_t n,
                                                   std::mt19937_64& rng) {
  std::vector<std::complex<double>> amps(1ULL << n, {0., 0.});
  std::uniform_int_distribution<std::size_t> index(0, amps.size() - 1);
  std::normal_distribution<double> dist(0., 1.);
  const std::size_t terms = 1 + index(rng) % 3;
  double norm = 0.;
  for (std::size_t k = 0; k < terms; ++k) {
    const std::complex<double> a{dist(rng), dist(rng)};
    amps[index(rng)] += a;
  }
  for (const auto& a : amps) {
    norm += std::norm(a);
  }
  const double scale = 1. / std::sqrt(norm);
  for (auto& a : amps) {
    a *= scale;
  }
  return amps;
}

QubitControls randomControls(std::size_t n, Qubit target, std::size_t count,
                             std::mt19937_64& rng) {
  std::vector<Qubit> candidates;
  for (Qubit q = 0; q < static_cast<Qubit>(n); ++q) {
    if (q != target) {
      candidates.push_back(q);
    }
  }
  std::shuffle(candidates.begin(), candidates.end(), rng);
  QubitControls ctrls;
  std::bernoulli_distribution polarity(0.5);
  for (std::size_t k = 0; k < count && k < candidates.size(); ++k) {
    ctrls.push_back({candidates[k], polarity(rng)});
  }
  return ctrls;
}

void expectBitIdentical(const vEdge& fast, const vEdge& general,
                        const std::string& context) {
  EXPECT_EQ(fast.p, general.p) << context << ": root node differs";
  EXPECT_TRUE(fast.w == general.w) << context << ": root weight differs";
  EXPECT_EQ(Package::size(fast), Package::size(general))
      << context << ": node count differs";
}

void expectMatchesDense(Package& pkg, const vEdge& e,
                        const baseline::DenseStateVector& dense,
                        const std::string& context) {
  const auto got = pkg.getVector(e);
  const auto& want = dense.amplitudes();
  ASSERT_EQ(got.size(), want.size()) << context;
  for (std::size_t k = 0; k < got.size(); ++k) {
    EXPECT_NEAR(got[k].real(), want[k].real(), EPS)
        << context << ": index " << k;
    EXPECT_NEAR(got[k].imag(), want[k].imag(), EPS)
        << context << ": index " << k;
  }
}

TEST(ApplyGate, RandomizedCrossValidationAllStandardGates) {
  std::mt19937_64 rng(20210907);
  for (std::size_t trial = 0; trial < 60; ++trial) {
    const std::size_t n = 1 + trial % 8;
    Package pkg(n);
    const auto gates = standardGates(rng);
    const auto amps = trial % 3 == 0 ? sparseAmplitudes(n, rng)
                                     : randomAmplitudes(n, rng);
    std::uniform_int_distribution<Qubit> targetDist(
        0, static_cast<Qubit>(n - 1));
    for (const auto& gate : gates) {
      const Qubit target = targetDist(rng);
      const std::size_t maxControls = std::min<std::size_t>(3, n - 1);
      const QubitControls ctrls =
          randomControls(n, target, trial % (maxControls + 1), rng);

      const vEdge v = pkg.makeStateFromVector(amps);
      pkg.incRef(v);
      const vEdge fast = pkg.applyGate(gate.mat, target, ctrls, v);
      const vEdge general =
          pkg.multiply(pkg.makeGateDD(gate.mat, n, ctrls, target), v);
      pkg.decRef(v);

      std::string context = gate.name + " n=" + std::to_string(n) +
                            " t=" + std::to_string(target) + " c=[";
      for (const auto& c : ctrls) {
        context += (c.positive ? "+" : "-") + std::to_string(c.qubit);
      }
      context += "]";
      expectBitIdentical(fast, general, context);

      baseline::DenseStateVector dense(amps);
      dense.applyGate(gate.mat, target, ctrls);
      expectMatchesDense(pkg, fast, dense, context);
    }
  }
}

TEST(ApplyGate, SwapMatchesGeneralPathAndDense) {
  std::mt19937_64 rng(42);
  for (std::size_t trial = 0; trial < 30; ++trial) {
    const std::size_t n = 2 + trial % 7;
    Package pkg(n);
    const auto amps = randomAmplitudes(n, rng);
    std::uniform_int_distribution<Qubit> qubit(0, static_cast<Qubit>(n - 1));
    const Qubit t1 = qubit(rng);
    Qubit t2 = qubit(rng);
    while (t2 == t1) {
      t2 = qubit(rng);
    }
    QubitControls ctrls;
    if (n > 2 && trial % 2 == 0) {
      for (Qubit q = 0; q < static_cast<Qubit>(n); ++q) {
        if (q != t1 && q != t2) {
          ctrls.push_back({q, trial % 4 == 0});
          break;
        }
      }
    }

    const vEdge v = pkg.makeStateFromVector(amps);
    pkg.incRef(v);
    const vEdge fast = pkg.applySwap(t1, t2, ctrls, v);
    const vEdge general = pkg.multiply(pkg.makeSWAPDD(n, ctrls, t1, t2), v);
    pkg.decRef(v);

    const std::string context = "SWAP(" + std::to_string(t1) + "," +
                                std::to_string(t2) + ") n=" +
                                std::to_string(n);
    expectBitIdentical(fast, general, context);

    baseline::DenseStateVector dense(amps);
    dense.applySwap(t1, t2, ctrls);
    expectMatchesDense(pkg, fast, dense, context);
  }
}

TEST(ApplyGate, MultiControlledZWithNegativeControls) {
  // The Grover oracle/diffusion shape: Z on the top qubit conditioned on a
  // mixed-polarity control pattern across all lower qubits.
  const std::size_t n = 6;
  std::mt19937_64 rng(7);
  Package pkg(n);
  const auto amps = randomAmplitudes(n, rng);
  const Qubit target = static_cast<Qubit>(n - 1);
  QubitControls ctrls;
  for (Qubit q = 0; q < target; ++q) {
    ctrls.push_back({q, q % 2 == 0});
  }

  const vEdge v = pkg.makeStateFromVector(amps);
  pkg.incRef(v);
  const vEdge fast = pkg.applyGate(Z_MAT, target, ctrls, v);
  const vEdge general = pkg.multiply(pkg.makeGateDD(Z_MAT, n, ctrls, target), v);
  pkg.decRef(v);
  expectBitIdentical(fast, general, "MCZ");

  baseline::DenseStateVector dense(amps);
  dense.applyGate(Z_MAT, target, ctrls);
  expectMatchesDense(pkg, fast, dense, "MCZ");
}

TEST(ApplyGate, StructuredStatesWithZeroBranches) {
  // Basis and GHZ states drive the kernel through zero-stub children and
  // control-inactive branches that random dense states cannot reach.
  const std::size_t n = 5;
  Package pkg(n);
  const std::vector<vEdge> states{
      pkg.makeZeroState(n),
      pkg.makeBasisState(n, {true, false, true, true, false}),
      pkg.makeGHZState(n), pkg.makeWState(n)};
  const std::vector<GateMatrix> gates{H_MAT, X_MAT, Z_MAT, T_MAT,
                                      phaseMatrix(0.3)};
  for (const vEdge& state : states) {
    pkg.incRef(state);
    for (const auto& mat : gates) {
      for (Qubit target = 0; target < static_cast<Qubit>(n); ++target) {
        const QubitControls ctrls =
            target == 0 ? QubitControls{{2, true}, {4, false}}
                        : QubitControls{{0, false}};
        const vEdge fast = pkg.applyGate(mat, target, ctrls, state);
        const vEdge general =
            pkg.multiply(pkg.makeGateDD(mat, n, ctrls, target), state);
        expectBitIdentical(fast, general,
                           "structured t=" + std::to_string(target));
      }
    }
    pkg.decRef(state);
  }
}

/// The acceptance-criterion check: a full 16-qubit QFT stepped through both
/// paths in lockstep stays bit-identical at every gate, including the final
/// qubit-reversal SWAPs.
TEST(ApplyGate, QFT16BitIdenticalToGeneralPath) {
  const std::size_t n = 16;
  Package pkg(n);
  vEdge fast = pkg.makeZeroState(n);
  vEdge general = fast;
  pkg.incRef(fast);
  pkg.incRef(general);

  const auto step = [&](const GateMatrix& mat, Qubit target,
                        const QubitControls& ctrls) {
    const vEdge f = pkg.applyGate(mat, target, ctrls, fast);
    pkg.incRef(f);
    pkg.decRef(fast);
    fast = f;
    const vEdge g = pkg.multiply(pkg.makeGateDD(mat, n, ctrls, target), general);
    pkg.incRef(g);
    pkg.decRef(general);
    general = g;
  };

  std::size_t gates = 0;
  for (Qubit i = static_cast<Qubit>(n) - 1; i >= 0; --i) {
    step(H_MAT, i, {});
    ++gates;
    for (Qubit j = static_cast<Qubit>(i) - 1; j >= 0; --j) {
      const double theta = PI / static_cast<double>(1ULL << (i - j));
      step(phaseMatrix(theta), i, {{j, true}});
      ++gates;
    }
    ASSERT_EQ(fast.p, general.p) << "after column " << i;
    ASSERT_TRUE(fast.w == general.w) << "after column " << i;
  }
  for (Qubit k = 0; k < static_cast<Qubit>(n / 2); ++k) {
    const Qubit other = static_cast<Qubit>(n - 1 - k);
    const vEdge f = pkg.applySwap(k, other, {}, fast);
    pkg.incRef(f);
    pkg.decRef(fast);
    fast = f;
    const vEdge g = pkg.multiply(pkg.makeSWAPDD(n, {}, k, other), general);
    pkg.incRef(g);
    pkg.decRef(general);
    general = g;
  }
  EXPECT_EQ(gates, n * (n + 1) / 2);
  expectBitIdentical(fast, general, "QFT16");
  pkg.decRef(fast);
  pkg.decRef(general);
}

TEST(ApplyGate, PathCountersClassifyKernels) {
  Package pkg(3);
  const vEdge v = pkg.makeGHZState(3);
  pkg.incRef(v);
  const auto before = pkg.applyPathCounters();
  (void)pkg.applyGate(Z_MAT, 0, v);
  (void)pkg.applyGate(phaseMatrix(0.5), 1, {{0, true}}, v);
  (void)pkg.applyGate(X_MAT, 2, v);
  (void)pkg.applyGate(H_MAT, 0, v);
  pkg.noteApplyFallback();
  const auto& after = pkg.applyPathCounters();
  EXPECT_EQ(after.diagonal, before.diagonal + 2);
  EXPECT_EQ(after.permutation, before.permutation + 1);
  EXPECT_EQ(after.generic, before.generic + 1);
  EXPECT_EQ(after.fallback, before.fallback + 1);
  EXPECT_EQ(after.total(), before.total() + 5);
  EXPECT_NEAR(after.coverage(),
              static_cast<double>(after.fast()) /
                  static_cast<double>(after.total()),
              EPS);
  pkg.decRef(v);
}

TEST(ApplyGate, RejectsInvalidArguments) {
  Package pkg(3);
  const vEdge v = pkg.makeZeroState(3);
  EXPECT_THROW((void)pkg.applyGate(H_MAT, 3, v), std::invalid_argument);
  EXPECT_THROW((void)pkg.applyGate(H_MAT, -1, v), std::invalid_argument);
  EXPECT_THROW((void)pkg.applyGate(H_MAT, 0, {{0, true}}, v),
               std::invalid_argument);
  EXPECT_THROW((void)pkg.applyGate(H_MAT, 0, {{1, true}, {1, false}}, v),
               std::invalid_argument);
  EXPECT_THROW((void)pkg.applyGate(H_MAT, 0, {{3, true}}, v),
               std::invalid_argument);
  EXPECT_THROW((void)pkg.applySwap(1, 1, {}, v), std::invalid_argument);
  EXPECT_THROW((void)pkg.applyGate(H_MAT, 0, vEdge::one()),
               std::invalid_argument);
}

} // namespace
} // namespace qdd
