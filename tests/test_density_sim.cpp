// Tests for the density-matrix simulator: agreement with pure-state
// simulation on unitary circuits, exact classical distributions on dynamic
// circuits, exact reset semantics, and the purity drop that motivates the
// paper's Sec. IV-B remark about partial traces and mixed states.

#include "qdd/bridge/DDBuilder.hpp"
#include "qdd/ir/Builders.hpp"
#include "qdd/parser/qasm/Parser.hpp"
#include "qdd/sim/DensityMatrixSimulator.hpp"
#include "qdd/sim/SimulationSession.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace qdd::sim {
namespace {

constexpr double EPS = 1e-9;

TEST(DensitySim, PureUnitaryCircuitMatchesStateVector) {
  const auto qc = ir::builders::randomCliffordT(4, 40, 11);
  Package pkg(4);
  DensityMatrixSimulator dsim(qc, pkg);
  dsim.run();
  EXPECT_EQ(dsim.numBranches(), 1U);
  EXPECT_NEAR(dsim.purity(), 1., EPS); // still a pure state

  // rho must equal |psi><psi| of the pure-state simulation
  const vEdge psi = bridge::simulate(qc, pkg.makeZeroState(4), pkg);
  const auto vec = pkg.getVector(psi);
  const auto rho = pkg.getMatrix(dsim.densityMatrix());
  for (std::size_t r = 0; r < vec.size(); ++r) {
    for (std::size_t c = 0; c < vec.size(); ++c) {
      const auto expected = vec[r] * std::conj(vec[c]);
      EXPECT_NEAR(std::abs(rho[r * vec.size() + c] - expected), 0., 1e-8);
    }
  }
}

TEST(DensitySim, ProbabilitiesMatchPureSimulation) {
  const auto qc = ir::builders::qft(4);
  Package pkg(4);
  DensityMatrixSimulator dsim(qc, pkg);
  dsim.run();
  const vEdge psi = bridge::simulate(qc, pkg.makeZeroState(4), pkg);
  for (Qubit q = 0; q < 4; ++q) {
    EXPECT_NEAR(dsim.probabilityOfOne(q), pkg.probabilityOfOne(psi, q), EPS);
  }
}

TEST(DensitySim, MeasurementBranchesExactDistribution) {
  // Bell measurement: exact 50/50 over {00, 11}
  auto qc = ir::builders::bell();
  qc.addClassicalRegister(2, "c");
  qc.measure(0, 0);
  qc.measure(1, 1);
  Package pkg(2);
  DensityMatrixSimulator dsim(qc, pkg);
  dsim.run();
  EXPECT_EQ(dsim.numBranches(), 2U); // impossible outcomes pruned
  const auto dist = dsim.classicalDistribution();
  ASSERT_EQ(dist.size(), 2U);
  EXPECT_NEAR(dist.at("00"), 0.5, EPS);
  EXPECT_NEAR(dist.at("11"), 0.5, EPS);
}

TEST(DensitySim, ClassicallyControlledCorrection) {
  // measure-and-correct: outcome distribution collapses onto |1> on q1
  const auto qc = qasm::parse(R"(
OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
creg c[2];
h q[0];
measure q[0] -> c[0];
if (c == 1) x q[1];
measure q[1] -> c[1];
)");
  Package pkg(2);
  DensityMatrixSimulator dsim(qc, pkg);
  dsim.run();
  const auto dist = dsim.classicalDistribution();
  ASSERT_EQ(dist.size(), 2U);
  EXPECT_NEAR(dist.at("00"), 0.5, EPS);
  EXPECT_NEAR(dist.at("11"), 0.5, EPS);
}

TEST(DensitySim, ResetIsExactAndDeterministic) {
  // reset of a superposed qubit: no dialog, no sampling — the |1> branch
  // is folded onto |0> exactly
  const auto qc = qasm::parse(R"(
OPENQASM 2.0;
include "qelib1.inc";
qreg q[1];
h q[0];
reset q[0];
)");
  Package pkg(1);
  DensityMatrixSimulator dsim(qc, pkg);
  dsim.run();
  EXPECT_EQ(dsim.numBranches(), 1U);
  EXPECT_NEAR(dsim.probabilityOfOne(0), 0., EPS);
  EXPECT_NEAR(dsim.purity(), 1., EPS); // |0><0| is pure
}

TEST(DensitySim, ResetOfEntangledQubitCreatesMixedState) {
  // The paper's Sec. IV-B: "the partial trace maps pure states to mixed
  // states". Resetting one half of a Bell pair leaves the other half
  // maximally mixed — purity drops to 1/2.
  auto qc = ir::builders::bell();
  qc.reset(0);
  Package pkg(2);
  DensityMatrixSimulator dsim(qc, pkg);
  dsim.run();
  EXPECT_NEAR(dsim.purity(), 0.5, EPS);
  // q0 is |0> again; q1 is maximally mixed
  EXPECT_NEAR(dsim.probabilityOfOne(0), 0., EPS);
  EXPECT_NEAR(dsim.probabilityOfOne(1), 0.5, EPS);
}

TEST(DensitySim, TeleportationExactDistribution) {
  const auto qc = qasm::parse(R"(
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg c0[1];
creg c1[1];
ry(0.9) q[2];
h q[1];
cx q[1], q[0];
cx q[2], q[1];
h q[2];
measure q[1] -> c0[0];
measure q[2] -> c1[0];
if (c0 == 1) x q[0];
if (c1 == 1) z q[0];
)");
  Package pkg(3);
  DensityMatrixSimulator dsim(qc, pkg);
  dsim.run();
  // all four outcome pairs occur with probability 1/4
  const auto dist = dsim.classicalDistribution();
  ASSERT_EQ(dist.size(), 4U);
  for (const auto& [bits, p] : dist) {
    EXPECT_NEAR(p, 0.25, EPS) << bits;
  }
  // payload delivered: p(q0 = 1) equals sin^2(0.45)
  const double expected = std::sin(0.45) * std::sin(0.45);
  EXPECT_NEAR(dsim.probabilityOfOne(0), expected, EPS);
}

TEST(DensitySim, AgreesWithSamplingStatistics) {
  // the exact distribution matches the sampling fallback statistically
  const auto qc = qasm::parse(R"(
OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
creg c[2];
ry(1.1) q[0];
measure q[0] -> c[0];
if (c == 1) h q[1];
measure q[1] -> c[1];
)");
  Package pkg(2);
  DensityMatrixSimulator dsim(qc, pkg);
  dsim.run();
  const auto exact = dsim.classicalDistribution();
  const auto sampled = sampleCircuit(qc, 20000, 77);
  for (const auto& [bits, p] : exact) {
    const double measured =
        sampled.counts.contains(bits)
            ? static_cast<double>(sampled.counts.at(bits)) / 20000.
            : 0.;
    EXPECT_NEAR(measured, p, 0.02) << bits;
  }
}

TEST(DensitySim, RunTwiceRejected) {
  Package pkg(2);
  DensityMatrixSimulator dsim(ir::builders::bell(), pkg);
  dsim.run();
  EXPECT_THROW(dsim.run(), std::logic_error);
}

} // namespace
} // namespace qdd::sim
