// The compilation-flow verification scenario of the paper's Sec. III-C and
// ref. [28] ("Verifying results of the IBM Qiskit quantum circuit
// compilation flow"): map circuits onto constrained devices (SWAP routing),
// then verify mapped vs original with decision diagrams, comparing the
// construction and alternating schemes.

#include "BenchUtil.hpp"

#include "qdd/ir/Builders.hpp"
#include "qdd/ir/Mapping.hpp"
#include "qdd/verify/EquivalenceChecker.hpp"

#include <cstdio>

using namespace qdd;

int main() {
  bench::heading("mapping overhead (trivial layout + greedy SWAP routing)");
  std::printf("%-10s %-10s %-8s %-12s %-12s %-10s\n", "circuit", "device",
              "n", "gates in", "gates out", "swaps");
  bench::rule();
  struct Case {
    const char* name;
    ir::QuantumComputation qc;
  };
  for (const std::size_t n : {4U, 6U, 8U}) {
    std::vector<Case> cases;
    cases.push_back({"qft", ir::builders::qft(n)});
    cases.push_back({"random", ir::builders::randomCliffordT(n, 20 * n, n)});
    for (const auto& c : cases) {
      for (const auto& [device, cm] :
           {std::pair{"linear", ir::CouplingMap::linear(n)},
            std::pair{"ring", ir::CouplingMap::ring(n)}}) {
        const auto result = ir::mapToCoupling(c.qc, cm);
        std::printf("%-10s %-10s %-8zu %-12zu %-12zu %-10zu\n", c.name,
                    device, n, c.qc.gateCount(),
                    result.mapped.gateCount(), result.addedSwaps);
      }
    }
  }

  bench::heading("verifying the flow: original vs mapped+restore");
  std::printf("%-10s %-8s %-16s %-22s %-22s\n", "circuit", "n", "verdict",
              "construction", "alternating");
  bench::rule();
  for (const std::size_t n : {4U, 6U, 8U}) {
    const auto qc = ir::builders::qft(n);
    const auto result = ir::mapToCoupling(qc, ir::CouplingMap::linear(n));
    const auto restored = result.mappedWithRestore();
    const verify::EquivalenceChecker checker(qc, restored);
    Package p1(n);
    verify::CheckResult cons;
    const double consMs =
        bench::timeMs([&] { cons = checker.checkByConstruction(p1); });
    Package p2(n);
    verify::CheckResult alt;
    const double altMs = bench::timeMs([&] {
      alt = checker.checkAlternating(p2, verify::Strategy::Proportional);
    });
    std::printf("%-10s %-8zu %-16s %8.2f ms (%6zu) %8.2f ms (%6zu)\n",
                "qft", n, toString(cons.equivalence).c_str(), consMs,
                cons.maxNodes, altMs, alt.maxNodes);
  }

  bench::heading("error detection: broken compiler output");
  for (const std::size_t n : {4U, 6U}) {
    const auto qc = ir::builders::randomCliffordT(n, 15 * n, 2 * n);
    auto broken =
        ir::mapToCoupling(qc, ir::CouplingMap::linear(n)).mappedWithRestore();
    broken.s(static_cast<Qubit>(n / 2));
    const verify::EquivalenceChecker checker(qc, broken);
    Package pkg(n);
    std::printf("n=%zu with injected S gate: %s\n", n,
                toString(checker.checkAlternating(pkg).equivalence).c_str());
  }
  return 0;
}
