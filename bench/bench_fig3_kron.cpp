// Reproduces paper Fig. 3 / Ex. 8: the tensor product H (x) I2 computed on
// decision diagrams by terminal replacement, and measures how DD kron cost
// scales with the size of the *diagram* rather than the 4^n dense matrix.

#include "BenchUtil.hpp"

#include "qdd/dd/Package.hpp"
#include "qdd/viz/TextDump.hpp"

#include <complex>
#include <vector>

using namespace qdd;

namespace {

// dense kron of row-major square matrices (baseline comparator)
std::vector<std::complex<double>>
denseKron(const std::vector<std::complex<double>>& a, std::size_t da,
          const std::vector<std::complex<double>>& b, std::size_t db) {
  const std::size_t d = da * db;
  std::vector<std::complex<double>> out(d * d);
  for (std::size_t i = 0; i < da; ++i) {
    for (std::size_t j = 0; j < da; ++j) {
      for (std::size_t k = 0; k < db; ++k) {
        for (std::size_t l = 0; l < db; ++l) {
          out[(i * db + k) * d + (j * db + l)] =
              a[i * da + j] * b[k * db + l];
        }
      }
    }
  }
  return out;
}

} // namespace

int main() {
  Package pkg(2);

  bench::heading("Fig. 3: H (x) I2 via terminal replacement");
  const mEdge h = pkg.makeGateDD(H_MAT, 1, 0);
  const mEdge id = pkg.makeIdent(1);
  std::printf("H (1 node):\n%s", viz::asciiDump(viz::buildGraph(h)).c_str());
  std::printf("I2 (identity-skipping: the weight-1 terminal):\n%s",
              viz::asciiDump(viz::buildGraph(id, 1)).c_str());
  const mEdge hi = pkg.kron(h, id, 1);
  std::printf("H (x) I2 (%zu nodes — the skipped level below H is implicit "
              "identity):\n%s",
              Package::size(hi),
              viz::asciiDump(viz::buildGraph(hi, 2)).c_str());
  const mEdge direct = pkg.makeGateDD(H_MAT, 2, 1);
  std::printf("canonical check: kron result %s directly-built H on q1\n",
              hi.p == direct.p ? "POINTER-EQUAL to" : "DIFFERS from");

  // verify against dense kron
  const auto dense =
      denseKron(pkg.getMatrix(h, 1), 2, pkg.getMatrix(id, 1), 2);
  const auto ddMat = pkg.getMatrix(hi, 2);
  double maxDiff = 0.;
  for (std::size_t k = 0; k < dense.size(); ++k) {
    maxDiff = std::max(maxDiff, std::abs(dense[k] - ddMat[k]));
  }
  std::printf("max |DD kron - dense kron| = %.3e\n", maxDiff);

  bench::heading("scaling: I_k (x) H — DD kron is O(diagram), dense is "
                 "O(4^n)");
  std::printf("%-6s %-14s %-14s %-14s\n", "n", "DD nodes", "DD time",
              "dense entries");
  bench::rule();
  Package big(24);
  for (std::size_t n = 2; n <= 24; n += 2) {
    const mEdge idK = big.makeIdent(n - 1);
    const mEdge hh = big.makeGateDD(H_MAT, 1, 0);
    mEdge result;
    const double ms =
        bench::timeMs([&] { result = big.kron(idK, hh); });
    std::printf("%-6zu %-14zu %-10.3f ms  4^%zu\n", n,
                Package::size(result), ms, n);
  }
  return 0;
}
