// Extension bench: exact mixed-state simulation vs per-shot sampling on
// dynamic circuits (measurements + classical control + reset). Quantifies
// the trade-off behind the paper's Sec. IV-B design decision: pure-state
// DDs need a dialog/sampling for non-unitary operations, while the
// density-matrix representation is exact but squares the representation.

#include "BenchUtil.hpp"

#include "qdd/ir/Builders.hpp"
#include "qdd/parser/qasm/Parser.hpp"
#include "qdd/sim/DensityMatrixSimulator.hpp"
#include "qdd/sim/SimulationSession.hpp"

#include <cstdio>

using namespace qdd;

namespace {

ir::QuantumComputation measureAndCorrectChain(std::size_t n) {
  // H, measure, conditional X on the next qubit — repeated down the register
  ir::QuantumComputation qc(n, n, "chain" + std::to_string(n));
  for (std::size_t q = 0; q + 1 < n; ++q) {
    qc.h(static_cast<Qubit>(q));
    qc.measure(static_cast<Qubit>(q), q);
    qc.classicControlled(std::make_unique<ir::StandardOperation>(
                             ir::OpType::X, static_cast<Qubit>(q + 1)),
                         q, 1, 1);
  }
  qc.measure(static_cast<Qubit>(n - 1), n - 1);
  return qc;
}

} // namespace

int main() {
  bench::heading("exact mixture vs sampling on dynamic circuits");
  std::printf("%-10s %-10s %-16s %-18s %-16s\n", "n", "branches",
              "exact (ms)", "1000 shots (ms)", "distribution");
  bench::rule();
  for (const std::size_t n : {2U, 4U, 6U, 8U}) {
    const auto qc = measureAndCorrectChain(n);
    double exactMs = 0.;
    std::size_t branches = 0;
    std::size_t support = 0;
    {
      Package pkg(n);
      sim::DensityMatrixSimulator dsim(qc, pkg);
      exactMs = bench::timeMs([&] { dsim.run(); });
      branches = dsim.numBranches();
      support = dsim.classicalDistribution().size();
    }
    const double sampleMs =
        bench::timeMs([&] { (void)sim::sampleCircuit(qc, 1000, 3); });
    std::printf("%-10zu %-10zu %-16.2f %-18.2f %zu outcomes\n", n, branches,
                exactMs, sampleMs, support);
  }
  std::printf("\nThe ensemble doubles per binary measurement (pruned for "
              "impossible outcomes); sampling cost scales with shots "
              "instead. Exact wins for few measurements, sampling for "
              "many.\n");

  bench::heading("reset purity (the Sec. IV-B partial-trace remark)");
  auto bellReset = ir::builders::bell();
  bellReset.reset(0);
  Package pkg(2);
  sim::DensityMatrixSimulator dsim(bellReset, pkg);
  dsim.run();
  std::printf("Bell pair + reset q0: purity tr(rho^2) = %.3f (pure = 1.0, "
              "maximally mixed qubit = 0.5)\n",
              dsim.purity());
  std::printf("=> the pure-state tool must resolve resets via the "
              "probability dialog; the density-matrix engine represents "
              "the mixture exactly.\n");
  return 0;
}
