// Reproduces paper Fig. 8 / Ex. 13: the interactive simulation of the
// circuit of Fig. 1(c) including the 50/50 measurement dialog and the
// collapse to |11>, followed by the simulation-scaling study behind
// Sec. III-B (DD-based simulation vs the dense baseline on GHZ, QFT, and
// Grover workloads).

#include "BenchUtil.hpp"

#include "qdd/baseline/DenseSimulator.hpp"
#include "qdd/bridge/DDBuilder.hpp"
#include "qdd/dd/Serialization.hpp"
#include "qdd/ir/Builders.hpp"
#include "qdd/sim/SimulationSession.hpp"
#include "qdd/viz/TextDump.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstring>
#include <string>

using namespace qdd;

namespace {

/// Times one full simulation of `qc` under the given apply mode on a fresh
/// package (so the apply-path counters belong to this run alone) and
/// reports the kernel coverage alongside. Best-of-`repeats` wall time.
struct AblationRun {
  double ms = 0.;
  double coverage = 0.;
  std::size_t peakNodes = 0;
};

AblationRun runAblation(const ir::QuantumComputation& qc,
                        bridge::ApplyMode mode, int repeats) {
  AblationRun run;
  run.ms = 1e300;
  const bridge::ApplyMode saved = bridge::globalApplyMode();
  bridge::setGlobalApplyMode(mode);
  for (int r = 0; r < repeats; ++r) {
    Package p(qc.numQubits());
    bridge::BuildStats stats;
    const double ms = bench::timeMs([&] {
      (void)bridge::simulate(qc, p.makeZeroState(qc.numQubits()), p, stats);
    });
    run.ms = std::min(run.ms, ms);
    run.coverage = p.applyPathCounters().coverage();
    run.peakNodes = stats.maxNodes;
  }
  bridge::setGlobalApplyMode(saved);
  return run;
}

} // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  bench::heading("Fig. 8: stepping through the Bell circuit with a "
                 "measurement");
  auto circuit = ir::builders::bell();
  circuit.addClassicalRegister(2, "c");
  circuit.measure(0, 0);

  Package pkg(2);
  sim::SimulationSession session(circuit, pkg);
  session.setOutcomeChooser([](Qubit q, double p0, double p1) {
    std::printf("  [Fig. 8(c)] measuring q%d: p(|0>) = %.0f%%, p(|1>) = "
                "%.0f%% -> user picks |1>\n",
                q, p0 * 100., p1 * 100.);
    return 1;
  });

  std::printf("(a) initial state: %s\n",
              viz::toDirac(pkg, session.state()).c_str());
  session.stepForward();
  session.stepForward();
  std::printf("(b) after H, CNOT: %s (%zu nodes)\n",
              viz::toDirac(pkg, session.state()).c_str(),
              session.currentNodes());
  session.stepForward();
  std::printf("(d) post-measurement state: %s (paper: |11> — \"the value "
              "of the second qubit is completely determined\")\n",
              viz::toDirac(pkg, session.state()).c_str());

  bench::heading("Sec. III-B scaling: DD simulation vs dense baseline");
  std::printf("%-22s %-6s %-8s %-13s %-13s %-10s\n", "workload", "n",
              "gates", "DD (ms)", "dense (ms)", "peak DD");
  bench::rule();

  struct Row {
    const char* name;
    ir::QuantumComputation qc;
  };
  std::vector<Row> rows;
  for (const std::size_t n : quick ? std::vector<std::size_t>{8, 12}
                                   : std::vector<std::size_t>{8, 12, 16, 20}) {
    rows.push_back({"ghz", ir::builders::ghz(n)});
  }
  for (const std::size_t n : quick ? std::vector<std::size_t>{8}
                                   : std::vector<std::size_t>{8, 12, 16}) {
    rows.push_back({"qft", ir::builders::qft(n)});
  }
  for (const std::size_t n : quick ? std::vector<std::size_t>{8}
                                   : std::vector<std::size_t>{8, 10, 12}) {
    rows.push_back({"grover", ir::builders::grover(n, (1ULL << n) - 2)});
  }

  for (const auto& row : rows) {
    const std::size_t n = row.qc.numQubits();
    Package p(n);
    bridge::BuildStats stats;
    const double ddMs = bench::timeMs(
        [&] { (void)bridge::simulate(row.qc, p.makeZeroState(n), p, stats); });
    double denseMs = 0.;
    if (n <= 20) {
      baseline::DenseStateVector dense(n);
      denseMs = bench::timeMs([&] { dense.run(row.qc); });
    }
    std::printf("%-22s %-6zu %-8zu %-13.2f %-13.2f %-10zu\n", row.name, n,
                row.qc.gateCount(), ddMs, denseMs, stats.maxNodes);
    bench::emitStatsJson(std::string(row.name) + "_" + std::to_string(n), p);
  }
  std::printf("\nGHZ: DD wins asymptotically (linear diagrams). QFT/Grover "
              "states are dense-ish: DDs pay overhead per node — matching "
              "the paper's \"strengths and limits\" framing.\n");

  bench::heading("apply-path ablation: direct kernels vs gate-DD multiply");
  std::printf("%-12s %-6s %-8s %-11s %-11s %-12s %-9s %-9s\n", "workload",
              "n", "gates", "fast (ms)", "cached(ms)", "general(ms)",
              "speedup", "coverage");
  bench::rule();
  const int repeats = 3;
  struct AblationRow {
    const char* name;
    ir::QuantumComputation qc;
  };
  std::vector<AblationRow> ablRows;
  if (quick) {
    // the same workloads as the full run (a subset), so the labels line up
    // with the committed BENCH_APPLY.json baseline in the CI perf smoke
    ablRows.push_back({"qft", ir::builders::qft(12)});
    ablRows.push_back({"ghz", ir::builders::ghz(16)});
  } else {
    ablRows.push_back({"qft", ir::builders::qft(12)});
    ablRows.push_back({"qft", ir::builders::qft(16)});
    ablRows.push_back({"ghz", ir::builders::ghz(16)});
    ablRows.push_back({"grover", ir::builders::grover(10, (1ULL << 10) - 2)});
  }
  for (const auto& row : ablRows) {
    const std::size_t n = row.qc.numQubits();
    const auto fast = runAblation(row.qc, bridge::ApplyMode::Fast, repeats);
    const auto cached =
        runAblation(row.qc, bridge::ApplyMode::Cached, repeats);
    const auto general =
        runAblation(row.qc, bridge::ApplyMode::General, repeats);
    const double speedup = fast.ms > 0. ? general.ms / fast.ms : 0.;
    std::printf("%-12s %-6zu %-8zu %-11.3f %-11.3f %-12.3f %-9.2f %-9.2f\n",
                row.name, n, row.qc.gateCount(), fast.ms, cached.ms,
                general.ms, speedup, fast.coverage);
    std::printf("BENCH_APPLY %s_%zu {\"n\": %zu, \"gates\": %zu, "
                "\"fastMs\": %.3f, \"cachedMs\": %.3f, \"generalMs\": %.3f, "
                "\"speedupFastVsGeneral\": %.3f, \"fastCoverage\": %.4f, "
                "\"peakNodes\": %zu, \"resources\": %s}\n",
                row.name, n, n, row.qc.gateCount(), fast.ms, cached.ms,
                general.ms, speedup, fast.coverage, fast.peakNodes,
                bench::ResourceUsage::sample().toJson().c_str());
  }
  std::printf("\nfast = direct kernels on the state DD; cached = gate-DD "
              "multiply with the gate-DD cache; general = gate-DD multiply "
              "rebuilt per gate (QDD_APPLY=general).\n");

  bench::heading("functionality build: identity-skipping vs materialized "
                 "identity towers (QDD_DD_IDENTITY)");
  std::printf("%-20s %-6s %-8s %-11s %-11s %-9s %-10s %-10s %-6s\n",
              "workload", "n", "gates", "strip gDD", "mat gDD", "reduce",
              "strip(ms)", "mat(ms)", "match");
  bench::rule();
  struct FuncRow {
    const char* name;
    ir::QuantumComputation qc;
  };
  std::vector<FuncRow> funcRows;
  funcRows.push_back({"funcbuild_qft", ir::builders::qft(8)});
  funcRows.push_back(
      {"funcbuild_grover", ir::builders::grover(10, (1ULL << 10) - 2)});
  for (const auto& row : funcRows) {
    const std::size_t n = row.qc.numQubits();
    struct ModeResult {
      std::size_t gateNodes = 0; ///< cumulative gate-operator DD sizes
      bridge::BuildStats stats;
      double ms = 0.;
      std::string serialized;
    };
    std::array<ModeResult, 2> res;
    const std::array<IdentityMode, 2> modes{IdentityMode::Strip,
                                            IdentityMode::Materialize};
    for (std::size_t m = 0; m < 2; ++m) {
      Package p(n, NormalizationScheme::Largest, RealTable::DEFAULT_TOLERANCE,
                modes[m]);
      mEdge u = mEdge::zero();
      res[m].ms = bench::timeMs(
          [&] { u = bridge::buildFunctionality(row.qc, p, res[m].stats); });
      res[m].serialized = serializeToString(u, n);
      for (const auto& op : row.qc) {
        res[m].gateNodes += Package::size(bridge::getDD(*op, n, p));
      }
    }
    // cross-validate: both modes must canonicalize to the same root in a
    // fresh identity-skipping package
    Package ref(n, NormalizationScheme::Largest, RealTable::DEFAULT_TOLERANCE,
                IdentityMode::Strip);
    const mEdge a = deserializeMatrixFromString(ref, res[0].serialized);
    const mEdge b = deserializeMatrixFromString(ref, res[1].serialized);
    const bool rootsMatch = a.p == b.p && a.w.approximatelyEquals(b.w, 1e-9);
    const double reduction =
        res[0].gateNodes > 0
            ? static_cast<double>(res[1].gateNodes) /
                  static_cast<double>(res[0].gateNodes)
            : 0.;
    std::printf("%-20s %-6zu %-8zu %-11zu %-11zu %-9.2f %-10.3f %-10.3f "
                "%-6s\n",
                row.name, n, row.qc.gateCount(), res[0].gateNodes,
                res[1].gateNodes, reduction, res[0].ms, res[1].ms,
                rootsMatch ? "yes" : "NO");
    std::printf(
        "BENCH_APPLY %s_%zu {\"n\": %zu, \"gates\": %zu, "
        "\"stripGateNodes\": %zu, \"materializeGateNodes\": %zu, "
        "\"nodeReduction\": %.3f, \"stripPeakNodes\": %zu, "
        "\"materializePeakNodes\": %zu, \"finalNodes\": %zu, "
        "\"stripMs\": %.3f, \"materializeMs\": %.3f, \"rootsMatch\": %s, "
        "\"resources\": %s}\n",
        row.name, n, n, row.qc.gateCount(), res[0].gateNodes,
        res[1].gateNodes, reduction, res[0].stats.maxNodes,
        res[1].stats.maxNodes, res[0].stats.finalNodes, res[0].ms, res[1].ms,
        rootsMatch ? "true" : "false",
        bench::ResourceUsage::sample().toJson().c_str());
  }
  std::printf("\nstrip/mat gDD = cumulative nodes of the per-gate operator "
              "DDs built during the functionality build: identity-skipping "
              "edges never materialize the identity tower above/below a "
              "gate's support. The accumulated product converges to the same "
              "canonical DD in both modes (match column).\n");

  if (quick) {
    return 0; // CI perf smoke: ablation records emitted, skip the slow rest
  }

  bench::heading("instrumented reference run (BENCH_PROFILE record)");
  const auto qft12 = ir::builders::qft(12);
  const double profMs = bench::profiledRun("fig8_qft12_sim", [&] {
    Package p(12);
    sim::SimulationSession s(qft12, p);
    while (s.stepForward()) {
    }
  });
  std::printf("stepwise QFT_12 with tracing enabled: %.2f ms\n", profMs);

  bench::heading("non-destructive repeated measurement ([16] weak "
                 "simulation)");
  auto ghz = ir::builders::ghz(16);
  ghz.measureAll();
  const double ms = bench::timeMs([&] {
    const auto result = sim::sampleCircuit(ghz, 10000, 99);
    std::printf("10000 shots on GHZ_16: %zu distinct outcomes (expect 2)\n",
                result.counts.size());
  });
  std::printf("one strong simulation + 10000 samples took %.2f ms\n", ms);
  return 0;
}
