// Intra-circuit parallelism: one concurrent dd::Package forking its
// multiply/add recursions onto the exec ThreadPool (docs/PARALLELISM.md),
// measured against the plain serial engine on QFT, Grover, and random
// Clifford+T workloads at 1/2/4/8 workers.
//
// Runs are interleaved (serial, then each worker count, per repetition) so
// frequency scaling and cache warmup hit every configuration alike, and
// every configuration gets a fresh package — timings are always cold-cache.
// Correctness rides along: every parallel run must agree with the serial
// run, both via canonical root-pointer equality inside a shared package and
// via amplitude comparison across independent packages.
//
// Emits one `BENCH_PARALLEL intra_circuit {json}` record, consumed by
// scripts/check_bench_parallel.py. The record carries hardwareConcurrency:
// the >= 2x speedup floor at 8 workers only fires on machines with >= 8
// cores (the rootsMatch gate fires everywhere).

#include "BenchUtil.hpp"

#include "qdd/bridge/DDBuilder.hpp"
#include "qdd/dd/Package.hpp"
#include "qdd/exec/DDForker.hpp"
#include "qdd/exec/ThreadPool.hpp"
#include "qdd/ir/Builders.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

using namespace qdd;

namespace {

const std::vector<std::size_t> WORKER_COUNTS{1, 2, 4, 8};

Package makePackage(std::size_t nqubits, ConcurrencyMode mode) {
  return Package(nqubits, NormalizationScheme::Largest,
                 RealTable::DEFAULT_TOLERANCE, globalIdentityMode(), mode);
}

vEdge run(const ir::QuantumComputation& qc, Package& pkg) {
  return bridge::simulate(qc, pkg.makeZeroState(qc.numQubits()), pkg);
}

/// Amplitude-level agreement between two runs in independent packages.
/// (Canonical representatives of tolerance-close reals may be interned in a
/// different order by concurrent insertion, so cross-package agreement is
/// numeric, not bitwise; the same-package pointer check below is exact.)
bool sameAmplitudes(const std::vector<std::complex<double>>& a,
                    const std::vector<std::complex<double>>& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (std::size_t k = 0; k < a.size(); ++k) {
    if (std::abs(a[k].real() - b[k].real()) > 1e-12 ||
        std::abs(a[k].imag() - b[k].imag()) > 1e-12) {
      return false;
    }
  }
  return true;
}

struct WorkloadResult {
  std::string name;
  double serialMs = 0.;
  std::vector<double> workerMs; // indexed like WORKER_COUNTS
  bool rootsMatch = true;
};

WorkloadResult benchWorkload(const std::string& name,
                             const ir::QuantumComputation& qc, int reps) {
  WorkloadResult result;
  result.name = name;
  result.serialMs = 1e300;
  result.workerMs.assign(WORKER_COUNTS.size(), 1e300);

  // Reference amplitudes from a plain serial package.
  std::vector<std::complex<double>> reference;
  {
    Package pkg = makePackage(qc.numQubits(), ConcurrencyMode::Serial);
    reference = pkg.getVector(run(qc, pkg));
  }

  for (int rep = 0; rep < reps; ++rep) {
    {
      Package pkg = makePackage(qc.numQubits(), ConcurrencyMode::Serial);
      result.serialMs = std::min(
          result.serialMs, bench::timeMs([&] { std::ignore = run(qc, pkg); }));
    }
    for (std::size_t i = 0; i < WORKER_COUNTS.size(); ++i) {
      Package pkg = makePackage(qc.numQubits(), ConcurrencyMode::Concurrent);
      exec::ThreadPool pool(WORKER_COUNTS[i]);
      exec::PoolForker forker(pool);
      pkg.setForker(&forker);
      vEdge root;
      result.workerMs[i] = std::min(
          result.workerMs[i], bench::timeMs([&] { root = run(qc, pkg); }));
      if (rep == 0) {
        // Cross-package numeric agreement of the cold parallel run...
        if (!sameAmplitudes(reference, pkg.getVector(root))) {
          result.rootsMatch = false;
        }
        // ...and exact canonical-root equality inside the same package:
        // the serial rerun must land on the very node object the parallel
        // run produced (hash-consing), pointer-identical.
        pkg.incRef(root);
        pkg.setForker(nullptr);
        const vEdge serialAgain = run(qc, pkg);
        if (serialAgain.p != root.p || !(serialAgain.w == root.w)) {
          result.rootsMatch = false;
        }
        pkg.decRef(root);
      }
    }
  }
  return result;
}

std::string jsonTimes(const std::vector<double>& ms) {
  std::string out = "{";
  for (std::size_t i = 0; i < WORKER_COUNTS.size(); ++i) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s\"%zu\": %.3f", i > 0 ? ", " : "",
                  WORKER_COUNTS[i], ms[i]);
    out += buf;
  }
  return out + "}";
}

double speedupAt(double serialMs, const std::vector<double>& ms,
                 std::size_t workers) {
  for (std::size_t i = 0; i < WORKER_COUNTS.size(); ++i) {
    if (WORKER_COUNTS[i] == workers && ms[i] > 0.) {
      return serialMs / ms[i];
    }
  }
  return 0.;
}

} // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  const unsigned cores = std::thread::hardware_concurrency();
  const int reps = quick ? 1 : 3;
  std::printf("hardware concurrency: %u\n", cores);

  // The matrix-multiply apply path is the one that forks; the in-place gate
  // kernels have no recursion to parallelize.
  bridge::setGlobalApplyMode(bridge::ApplyMode::Parallel);

  struct Spec {
    std::string name;
    ir::QuantumComputation qc;
  };
  std::vector<Spec> specs;
  if (quick) {
    specs.push_back({"qft10", ir::builders::qft(10)});
    specs.push_back({"grover8", ir::builders::grover(8, 0b10110101, 2)});
    specs.push_back({"cliffordT10",
                     ir::builders::randomCliffordT(10, 32, 4242)});
  } else {
    specs.push_back({"qft16", ir::builders::qft(16)});
    specs.push_back({"grover12", ir::builders::grover(12, 0b101101011010, 3)});
    specs.push_back({"cliffordT14",
                     ir::builders::randomCliffordT(14, 48, 4242)});
  }

  bench::heading("intra-circuit parallel DD: serial vs 1/2/4/8 workers");
  double serialTotal = 0.;
  std::vector<double> workerTotal(WORKER_COUNTS.size(), 0.);
  bool rootsMatch = true;
  std::string detail = "{";
  for (std::size_t s = 0; s < specs.size(); ++s) {
    const WorkloadResult r = benchWorkload(specs[s].name, specs[s].qc, reps);
    serialTotal += r.serialMs;
    for (std::size_t i = 0; i < WORKER_COUNTS.size(); ++i) {
      workerTotal[i] += r.workerMs[i];
    }
    rootsMatch = rootsMatch && r.rootsMatch;
    std::printf("  %-12s serial %8.2f ms |", r.name.c_str(), r.serialMs);
    for (std::size_t i = 0; i < WORKER_COUNTS.size(); ++i) {
      std::printf(" %zuw %8.2f ms", WORKER_COUNTS[i], r.workerMs[i]);
    }
    std::printf(" | roots %s\n", r.rootsMatch ? "match" : "MISMATCH");
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%s\"%s\": {\"serialMs\": %.3f, \"workerMs\": %s, "
                  "\"rootsMatch\": %s}",
                  s > 0 ? ", " : "", r.name.c_str(), r.serialMs,
                  jsonTimes(r.workerMs).c_str(),
                  r.rootsMatch ? "true" : "false");
    detail += buf;
  }
  detail += "}";

  const double s2 = speedupAt(serialTotal, workerTotal, 2);
  const double s4 = speedupAt(serialTotal, workerTotal, 4);
  const double s8 = speedupAt(serialTotal, workerTotal, 8);
  std::printf("  total: serial %.2f ms, speedup 2w %.2fx / 4w %.2fx / "
              "8w %.2fx, roots %s\n",
              serialTotal, s2, s4, s8, rootsMatch ? "match" : "MISMATCH");

  std::printf("BENCH_PARALLEL intra_circuit {\"serialMs\": %.3f, "
              "\"workerMs\": %s, \"speedup2\": %.3f, \"speedup4\": %.3f, "
              "\"speedup8\": %.3f, \"rootsMatch\": %s, \"workloads\": %s, "
              "\"hardwareConcurrency\": %u, \"usage\": %s}\n",
              serialTotal, jsonTimes(workerTotal).c_str(), s2, s4, s8,
              rootsMatch ? "true" : "false", detail.c_str(), cores,
              bench::ResourceUsage::sample().toJson().c_str());
  return rootsMatch ? 0 : 1;
}
