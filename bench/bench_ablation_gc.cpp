// Ablation: garbage-collection policy. Compares threshold-driven collection
// (default) against collecting after every gate and never collecting, on
// runtime and live-node footprint.

#include "BenchUtil.hpp"

#include "qdd/bridge/DDBuilder.hpp"
#include "qdd/ir/Builders.hpp"

#include <cstdio>

using namespace qdd;

namespace {

enum class GcPolicy { Default, EveryGate, Never };

struct Outcome {
  double ms = 0.;
  std::size_t liveNodes = 0;
  std::size_t gcRuns = 0;
  std::size_t staleRejections = 0;
};

Outcome run(const ir::QuantumComputation& qc, GcPolicy policy) {
  const std::size_t n = qc.numQubits();
  Package pkg(n);
  Outcome out;
  out.ms = bench::timeMs([&] {
    vEdge state = pkg.makeZeroState(n);
    pkg.incRef(state);
    for (const auto& op : qc) {
      if (op->type() == ir::OpType::Barrier) {
        continue;
      }
      const mEdge gate = bridge::getDD(*op, n, pkg);
      const vEdge next = pkg.multiply(gate, state);
      pkg.incRef(next);
      pkg.decRef(state);
      state = next;
      switch (policy) {
      case GcPolicy::Default:
        pkg.garbageCollect();
        break;
      case GcPolicy::EveryGate:
        pkg.garbageCollect(true);
        break;
      case GcPolicy::Never:
        break;
      }
    }
  });
  const auto pressure = pkg.tablePressure();
  out.liveNodes = pressure.vectorNodes + pressure.matrixNodes;
  out.gcRuns = pressure.gcRuns;
  out.staleRejections = pkg.statistics().computeTotals().staleRejections;
  return out;
}

} // namespace

int main() {
  bench::heading("garbage-collection policy ablation");
  std::printf("%-22s %-6s %-12s %-12s %-14s %-8s %-8s\n", "workload", "n",
              "policy", "time (ms)", "live nodes", "gc runs", "stale");
  bench::rule();
  struct Case {
    const char* name;
    ir::QuantumComputation qc;
  };
  std::vector<Case> cases;
  cases.push_back({"random", ir::builders::randomCliffordT(10, 400, 7)});
  cases.push_back({"grover", ir::builders::grover(10, 37)});
  cases.push_back({"qft", ir::builders::qft(12)});
  for (const auto& c : cases) {
    for (const auto& [policy, label] :
         {std::pair{GcPolicy::Default, "threshold"},
          std::pair{GcPolicy::EveryGate, "every-gate"},
          std::pair{GcPolicy::Never, "never"}}) {
      const Outcome o = run(c.qc, policy);
      std::printf("%-22s %-6zu %-12s %-12.2f %-14zu %-8zu %-8zu\n", c.name,
                  c.qc.numQubits(), label, o.ms, o.liveNodes, o.gcRuns,
                  o.staleRejections);
    }
    bench::rule();
  }
  std::printf("Collecting after every gate minimizes footprint; the "
              "generation-stamped caches keep entries for surviving operands "
              "warm, with stale entries rejected lazily (column 'stale'); "
              "never collecting leaks dead nodes; the threshold policy "
              "balances footprint and sweep cost.\n");
  return 0;
}
