// Cache-layout microbenchmarks for the DD core: node sizes/alignment, ns/op
// on the multiply/add hot paths (both the warm compute-cache path and the
// uncached recursion), unique-table probe behaviour, and RealTable traffic
// per operation. Emits one BENCH_LAYOUT <label> {json} record per workload,
// consumed by scripts/check_bench_layout.py (CI gate) and recorded in
// BENCH_LAYOUT.json together with the frozen pre-refactor seed baseline.

#include "BenchUtil.hpp"

#include "qdd/bridge/DDBuilder.hpp"
#include "qdd/complex/Simd.hpp"
#include "qdd/dd/Package.hpp"
#include "qdd/ir/Builders.hpp"

#include <algorithm>
#include <complex>
#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <vector>

using namespace qdd;

namespace {

/// Best-of-`reps` wall time of `fn` (each rep runs `iters` inner iterations);
/// returns ns per inner iteration.
double bestNsPerOp(int reps, std::size_t iters,
                   const std::function<void()>& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const double ms = bench::timeMs(fn);
    best = std::min(best, ms);
  }
  return best * 1e6 / static_cast<double>(iters);
}

void emit(const std::string& label, const std::string& payload) {
  std::printf("BENCH_LAYOUT %s {%s, \"resources\": %s}\n", label.c_str(),
              payload.c_str(), bench::ResourceUsage::sample().toJson().c_str());
}

std::vector<std::complex<double>> randomState(std::size_t n,
                                              std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(-1., 1.);
  std::vector<std::complex<double>> v(1ULL << n);
  double norm = 0.;
  for (auto& a : v) {
    a = {dist(rng), dist(rng)};
    norm += std::norm(a);
  }
  norm = std::sqrt(norm);
  for (auto& a : v) {
    a /= norm;
  }
  return v;
}

} // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  const int reps = quick ? 3 : 5;

  bench::heading("DD core data layout: node geometry");
  std::printf("vNode: %zu bytes (align %zu)   mNode: %zu bytes (align %zu)   "
              "RealTable::Entry: %zu bytes\n",
              sizeof(vNode), alignof(vNode), sizeof(mNode), alignof(mNode),
              sizeof(RealTable::Entry));
  std::printf("SIMD kernels: %s (compiled max: %s)\n",
              simd::toString(simd::activeMode()),
              simd::toString(simd::compiledMode()));
  {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "\"vNodeBytes\": %zu, \"vNodeAlign\": %zu, "
                  "\"mNodeBytes\": %zu, \"mNodeAlign\": %zu, "
                  "\"simdMode\": \"%s\"",
                  sizeof(vNode), alignof(vNode), sizeof(mNode), alignof(mNode),
                  simd::toString(simd::activeMode()));
    emit("node_layout", buf);
  }

  bench::heading("warm-path ns/op: compute-cache hits (bench_dd_ops "
                 "BM_ApplyGateGHZ / BM_AddStates shapes)");

  // multiply with a warm compute cache: after the first call every
  // iteration is one multMatVecTable hit plus the outer weight composition.
  {
    const std::size_t n = 32;
    const std::size_t iters = quick ? 200000 : 500000;
    Package pkg(n);
    const vEdge ghz = pkg.makeGHZState(n);
    pkg.incRef(ghz);
    const mEdge h = pkg.makeGateDD(H_MAT, n, static_cast<Qubit>(n / 2));
    pkg.incRef(h);
    (void)pkg.multiply(h, ghz); // warm the cache
    volatile const vNode* sink = nullptr;
    const double ns = bestNsPerOp(reps, iters, [&] {
      for (std::size_t k = 0; k < iters; ++k) {
        sink = pkg.multiply(h, ghz).p;
      }
    });
    (void)sink;
    std::printf("multiply (cached, GHZ-32 root hit): %.1f ns/op\n", ns);
    char buf[128];
    std::snprintf(buf, sizeof(buf), "\"nsPerOp\": %.2f, \"n\": %zu", ns, n);
    emit("multiply_cached_ghz32", buf);
  }

  {
    const std::size_t n = 32;
    const std::size_t iters = quick ? 200000 : 500000;
    Package pkg(n);
    const vEdge a = pkg.makeGHZState(n);
    const vEdge b = pkg.makeWState(n);
    pkg.incRef(a);
    pkg.incRef(b);
    (void)pkg.add(a, b);
    volatile const vNode* sink = nullptr;
    const double ns = bestNsPerOp(reps, iters, [&] {
      for (std::size_t k = 0; k < iters; ++k) {
        sink = pkg.add(a, b).p;
      }
    });
    (void)sink;
    std::printf("add (cached, GHZ+W-32 root hit): %.1f ns/op\n", ns);
    char buf[128];
    std::snprintf(buf, sizeof(buf), "\"nsPerOp\": %.2f, \"n\": %zu", ns, n);
    emit("add_cached_32", buf);
  }

  bench::heading("uncached recursion: full multiply/add work (node "
                 "construction, unique/real table traffic)");

  // Matrix-vector multiply through a full QFT simulation: fresh package per
  // repetition so every multiply2 does real work the first time around.
  {
    const std::size_t n = quick ? 12 : 14;
    const auto qc = ir::builders::qft(n);
    double bestMs = 1e300;
    std::size_t mults = 0;
    std::size_t uniqueLookups = 0;
    std::size_t realLookups = 0;
    double avgProbe = 0.;
    std::size_t maxProbe = 0;
    double uniqueHitRatio = 0.;
    double computeHitRatio = 0.;
    for (int r = 0; r < reps; ++r) {
      Package pkg(n);
      std::vector<mEdge> gates;
      gates.reserve(qc.gateCount());
      for (const auto& op : qc) {
        const mEdge g = bridge::getDD(*op, n, pkg);
        pkg.incRef(g);
        gates.push_back(g);
      }
      const auto before = pkg.statistics();
      vEdge state = pkg.makeZeroState(n);
      pkg.incRef(state);
      const double ms = bench::timeMs([&] {
        for (const mEdge& g : gates) {
          const vEdge next = pkg.multiply(g, state);
          pkg.incRef(next);
          pkg.decRef(state);
          state = next;
          pkg.garbageCollect();
        }
      });
      const auto after = pkg.statistics();
      if (ms < bestMs) {
        bestMs = ms;
        const auto* mv = after.computeTable("multiplyMatVec");
        const auto* mvBefore = before.computeTable("multiplyMatVec");
        mults = (mv != nullptr ? mv->lookups : 0) -
                (mvBefore != nullptr ? mvBefore->lookups : 0);
        uniqueLookups = after.vectorTable.lookups - before.vectorTable.lookups;
        realLookups = after.reals.lookups - before.reals.lookups;
        avgProbe = after.vectorTable.avgProbeLength();
        maxProbe = after.vectorTable.longestChain;
        uniqueHitRatio = after.vectorTable.hitRatio();
        computeHitRatio = mv != nullptr ? mv->hitRatio() : 0.;
      }
    }
    const double nsPerGate = bestMs * 1e6 / static_cast<double>(qc.gateCount());
    const double nsPerMult =
        mults > 0 ? bestMs * 1e6 / static_cast<double>(mults) : 0.;
    std::printf("multiply (QFT-%zu simulation): %.3f ms, %.0f ns/gate, "
                "%.0f ns/multiply2 (%zu multiply2 calls)\n",
                n, bestMs, nsPerGate, nsPerMult, mults);
    std::printf("  vector unique table: %zu lookups, avg probe %.2f, max "
                "probe %zu, hit ratio %.2f; real table: %zu lookups; "
                "matvec cache hit ratio %.2f\n",
                uniqueLookups, avgProbe, maxProbe, uniqueHitRatio, realLookups,
                computeHitRatio);
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "\"n\": %zu, \"ms\": %.3f, \"nsPerGate\": %.1f, "
        "\"nsPerMultiply2\": %.1f, \"multiply2Calls\": %zu, "
        "\"uniqueLookups\": %zu, \"realLookups\": %zu, "
        "\"avgProbeLength\": %.3f, \"maxProbeLength\": %zu, "
        "\"uniqueHitRatio\": %.4f, \"computeHitRatio\": %.4f",
        n, bestMs, nsPerGate, nsPerMult, mults, uniqueLookups, realLookups,
        avgProbe, maxProbe, uniqueHitRatio, computeHitRatio);
    emit(quick ? "multiply_qft_12" : "multiply_qft_14", buf);
  }

  // Addition of two dense random states with memoization disabled: every
  // iteration runs the full add recursion (2^n leaf pairs), normalizing and
  // hash-consing each result node — the densest unique-table workload here.
  {
    const std::size_t n = quick ? 10 : 12;
    const std::size_t iters = quick ? 20 : 30;
    Package pkg(n);
    const vEdge a = pkg.makeStateFromVector(randomState(n, 11));
    const vEdge b = pkg.makeStateFromVector(randomState(n, 23));
    pkg.incRef(a);
    pkg.incRef(b);
    pkg.setComputeTablesEnabled(false);
    volatile const vNode* sink = nullptr;
    const double ns = bestNsPerOp(reps, iters, [&] {
      for (std::size_t k = 0; k < iters; ++k) {
        sink = pkg.add(a, b).p;
        pkg.garbageCollect();
      }
    });
    (void)sink;
    pkg.setComputeTablesEnabled(true);
    const double nsPerNode = ns / static_cast<double>(2ULL << n);
    std::printf("add (uncached, dense random %zu-qubit): %.0f ns/add, "
                "%.1f ns per node pair\n",
                n, ns, nsPerNode);
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "\"nsPerOp\": %.1f, \"nsPerNodePair\": %.2f, \"n\": %zu",
                  ns, nsPerNode, n);
    emit(quick ? "add_uncached_10" : "add_uncached_12", buf);
  }

  // Cross-validation: the active SIMD kernels and the scalar fallback must
  // land on pointer-identical canonical roots (table canonicity turns any
  // numeric drift into a different node, so root equality is exact).
  {
    const std::size_t n = 10;
    const auto qft = ir::builders::qft(n);
    const auto grover = ir::builders::grover(n, (1ULL << n) - 2);
    bool match = true;
    for (const auto* qc : {&qft, &grover}) {
      Package pkg(n);
      vEdge simdState = pkg.makeZeroState(n);
      vEdge scalarState = pkg.makeZeroState(n);
      for (const auto& op : *qc) {
        simdState = bridge::applyOperation(*op, n, simdState, pkg,
                                           bridge::ApplyMode::Fast, nullptr);
        simd::ScopedScalarOverride scalarOnly;
        scalarState = bridge::applyOperation(*op, n, scalarState, pkg,
                                             bridge::ApplyMode::Fast, nullptr);
        if (!(simdState == scalarState)) {
          match = false;
          break;
        }
      }
    }
    std::printf("SIMD vs scalar canonical-root cross-validation: %s\n",
                match ? "match" : "MISMATCH");
    char buf[96];
    std::snprintf(buf, sizeof(buf), "\"rootsMatch\": %s, \"mode\": \"%s\"",
                  match ? "true" : "false",
                  simd::toString(simd::activeMode()));
    emit("simd_cross_validation", buf);
  }

  return 0;
}
