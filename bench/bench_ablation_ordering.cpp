// Ablation: the variable order. The paper's canonicity statement is
// explicitly "with respect to a given variable order" (Sec. III-C); this
// bench shows the same function swinging between linear and exponential DD
// sizes across orders, and greedy sifting recovering the good order
// automatically.

#include "BenchUtil.hpp"

#include "qdd/dd/Reordering.hpp"

#include <cmath>
#include <complex>
#include <cstdio>

using namespace qdd;

namespace {

vEdge makeCopyState(Package& pkg, std::size_t k, bool interleaved) {
  const std::size_t n = 2 * k;
  std::vector<std::complex<double>> vec(1ULL << n, {0., 0.});
  const double amp = 1. / std::sqrt(static_cast<double>(1ULL << k));
  for (std::uint64_t x = 0; x < (1ULL << k); ++x) {
    std::uint64_t index = 0;
    for (std::size_t b = 0; b < k; ++b) {
      if ((x >> b) & 1ULL) {
        index |= interleaved ? (1ULL << (2 * b)) | (1ULL << (2 * b + 1))
                             : (1ULL << b) | (1ULL << (k + b));
      }
    }
    vec[index] = {amp, 0.};
  }
  return pkg.makeStateFromVector(vec);
}

} // namespace

int main() {
  bench::heading("variable-order ablation on the copy state sum_x |x>|x>");
  std::printf("%-6s %-18s %-18s %-14s %-12s\n", "k", "interleaved order",
              "separated order", "after sifting", "sift (ms)");
  bench::rule();
  for (const std::size_t k : {3U, 4U, 5U, 6U, 7U}) {
    Package pkg(2 * k);
    const std::size_t good = Package::size(makeCopyState(pkg, k, true));
    const vEdge bad = makeCopyState(pkg, k, false);
    const std::size_t badSize = Package::size(bad);
    pkg.incRef(bad);
    OrderedVector state = withIdentityOrder(bad);
    std::size_t sifted = 0;
    const double ms = bench::timeMs([&] {
      sift(pkg, state);
      sifted = Package::size(state.dd);
    });
    std::printf("%-6zu %-18zu %-18zu %-14zu %-12.2f\n", k, good, badSize,
                sifted, ms);
  }
  std::printf("\nSame function, same canonicity — different orders: "
              "pairing related qubits keeps the DD linear (2 nodes per "
              "pair), separating them forces ~2^k nodes; sifting finds the "
              "pairing automatically.\n");
  return 0;
}
