// Ablation: the compute tables (operation memoization, footnote 4 of the
// paper). Runs identical workloads with memoization enabled and disabled
// and reports the speedup — quantifying why DD packages "employ unique
// tables and compute tables ... to reduce the number of computations
// necessary".

#include "BenchUtil.hpp"

#include "qdd/bridge/DDBuilder.hpp"
#include "qdd/ir/Builders.hpp"

#include <cstdio>

using namespace qdd;

int main() {
  bench::heading("compute-table ablation: simulation");
  std::printf("%-22s %-6s %-14s %-14s %-10s\n", "workload", "n", "with CT",
              "without CT", "speedup");
  bench::rule();

  struct Case {
    const char* name;
    ir::QuantumComputation qc;
  };
  std::vector<Case> cases;
  cases.push_back({"qft", ir::builders::qft(12)});
  cases.push_back({"grover", ir::builders::grover(10, 37)});
  cases.push_back({"ghz", ir::builders::ghz(24)});
  cases.push_back({"random", ir::builders::randomCliffordT(10, 300, 1)});

  for (auto& c : cases) {
    const std::size_t n = c.qc.numQubits();
    double withMs = 0.;
    double withoutMs = 0.;
    {
      Package pkg(n);
      withMs = bench::timeMs(
          [&] { (void)bridge::simulate(c.qc, pkg.makeZeroState(n), pkg); });
    }
    {
      Package pkg(n);
      pkg.setComputeTablesEnabled(false);
      withoutMs = bench::timeMs(
          [&] { (void)bridge::simulate(c.qc, pkg.makeZeroState(n), pkg); });
    }
    std::printf("%-22s %-6zu %10.2f ms %10.2f ms %9.1fx\n", c.name, n,
                withMs, withoutMs, withoutMs / withMs);
  }

  bench::heading("compute-table ablation: functionality construction");
  std::printf("%-22s %-6s %-14s %-14s %-10s\n", "workload", "n", "with CT",
              "without CT", "speedup");
  bench::rule();
  for (const std::size_t n : {4U, 6U, 8U}) {
    const auto qc = ir::builders::qft(n);
    double withMs = 0.;
    double withoutMs = 0.;
    {
      Package pkg(n);
      withMs =
          bench::timeMs([&] { (void)bridge::buildFunctionality(qc, pkg); });
    }
    {
      Package pkg(n);
      pkg.setComputeTablesEnabled(false);
      withoutMs =
          bench::timeMs([&] { (void)bridge::buildFunctionality(qc, pkg); });
    }
    std::printf("%-22s %-6zu %10.2f ms %10.2f ms %9.1fx\n", "qft matrix", n,
                withMs, withoutMs, withoutMs / withMs);
  }
  std::printf("\nWithout memoization, repeated sub-computations on shared "
              "nodes are recomputed exponentially often.\n");
  return 0;
}
